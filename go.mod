module ariesim

go 1.22
