GO ?= go

.PHONY: all build vet test race smoke sweep bench ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Crash-torture smoke under injected disk faults, torn log tails, and
# planted silent corruption: every fault class must be absorbed.
smoke:
	$(GO) run ./cmd/ariesim-crash -rounds 3 -workers 2 -ops 120 -faults -torn -bitflip

# Exhaustive crash-point sweep: every log record boundary, double recovery.
sweep:
	$(GO) run ./cmd/ariesim-crash -sweep

bench:
	$(GO) test -bench=. -benchmem ./...

ci: build vet race smoke
