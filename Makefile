GO ?= go

.PHONY: all build vet test race smoke sweep chaos bench ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Crash-torture smoke under injected disk faults, torn log tails, and
# planted silent corruption: every fault class must be absorbed.
smoke:
	$(GO) run ./cmd/ariesim-crash -rounds 3 -workers 2 -ops 120 -faults -torn -bitflip

# Exhaustive crash-point sweep: every log record boundary, double recovery.
sweep:
	$(GO) run ./cmd/ariesim-crash -sweep

# Crash-under-load chaos sweep: concurrent workers through RunTxn, injected
# faults, crashes at random points under live traffic, exact verification
# after every restart. Deterministic seed so CI failures reproduce.
chaos:
	$(GO) run ./cmd/ariesim-crash -chaos -workers 8 -crashes 20 -seed 1 -faults

bench:
	$(GO) test -bench=. -benchmem ./...

ci: build vet race smoke chaos
