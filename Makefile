GO ?= go

.PHONY: all build vet staticcheck test race smoke sweep chaos chaos-online chaos-standby chaos-mvcc chaos-index microbench bench bench-smoke ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Blocking static analysis: staticcheck when installed, otherwise the
# in-repo std-lib linter (gofmt cleanliness + a handful of AST checks)
# stands in, so the gate runs — and fails on findings — everywhere.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; running in-repo fallback linter"; \
		$(GO) run ./cmd/ariesim-lint ./...; \
	fi

test:
	$(GO) test ./...

# The ordinary race pass, then a 1000-iteration loop of the rollback
# torture test that used to flake with "undo chain broken: wal: no record
# at LSN" — the claim→publish race in the lock-free append path. The loop
# is the regression gate for that fix: any reintroduced window resurfaces
# as a flake well within 1000 schedules.
race:
	$(GO) test -race -short ./...
	$(GO) test -race -run 'TestRollbackNeverDeadlocks$$' -count=1000 ./internal/core

# Crash-torture smoke under injected disk faults, torn log tails, and
# planted silent corruption: every fault class must be absorbed.
smoke:
	$(GO) run ./cmd/ariesim-crash -rounds 3 -workers 2 -ops 120 -faults -torn -bitflip

# Exhaustive crash-point sweep: every log record boundary, double recovery.
sweep:
	$(GO) run ./cmd/ariesim-crash -sweep

# Crash-under-load chaos sweep: concurrent workers through RunTxn, injected
# faults, crashes at random points under live traffic, exact verification
# after every restart. Deterministic seed so CI failures reproduce.
chaos:
	$(GO) run ./cmd/ariesim-crash -chaos -workers 8 -crashes 20 -seed 1 -faults

# The same sweep with online restarts: the engine reopens the moment
# analysis finishes, workers race the background drain and loser undo,
# and a rotating subset of points re-crashes mid-recovery.
chaos-online:
	$(GO) run ./cmd/ariesim-crash -chaos -online -workers 8 -crashes 20 -seed 1 -faults -redo 8

# Hot-standby failover sweep under the race detector: live replicated
# traffic over a seeded lossy channel through the semi-sync gate, primary
# crashed mid-traffic, standby promoted, zombie segments fenced, and the
# promoted node verified byte-exactly — plus a promotion fork per record
# boundary of the standby's received window.
chaos-standby:
	$(GO) run -race ./cmd/ariesim-crash -standby -faults -workers 3 -commits 60 -seed 1

# Chaos sweep with lock-free snapshot readers racing the writers and the
# crash schedule: every reader observation must be exactly the committed
# state at some commit boundary (zero torn reads), verified against the
# LSN-keyed acked-commit ledger, with zero lock-manager calls by readers.
chaos-mvcc:
	$(GO) run ./cmd/ariesim-crash -chaos -online -workers 8 -crashes 20 -seed 1 -faults -redo 8 -mvcc 4

# Chaos sweep with a secondary index maintained through the whole run:
# every transaction updates both trees, snapshot readers alternate between
# primary-order and index-order scans, and after every crash+restart the
# secondary index is cross-verified entry-by-entry against the base table
# (no orphan entries, no missing entries, keys match the extractor).
chaos-index:
	$(GO) run ./cmd/ariesim-crash -chaos -online -workers 8 -crashes 20 -seed 1 -faults -redo 8 -mvcc 4 -index

microbench:
	$(GO) test -bench=. -benchmem ./...

# Concurrency benchmark: old (serial commit, single lock shard) vs new
# (group commit + early lock release, sharded locks) across workloads and
# worker counts. Writes BENCH_concurrency.json and fails if the hot-key
# write speedup at 16 workers is below 2x or the JSON is malformed.
# The -profile mutex pass then drives the append-burst workload with mutex
# profiling at full fraction and fails if the log append path (lock-free
# LSN reservation) shows up among the contended cycles; the pre-PR serial
# latch runs as a control the profiler must be able to see.
# The buffer benchmark does the same for the pool: old (single-mutex,
# serial I/O) vs new (sharded, clock sweep, I/O outside the lock) vs
# new-cleaner, gated on the 16-worker read speedup and the cleaner's
# dirty-eviction drop, with counter-consistency self-verification.
# The recovery benchmark crashes populated engines and measures restart
# time and redo throughput, serial vs page-partitioned parallel redo
# across 1-16 workers, gated on the 8-worker redo speedup and on
# byte-exact row verification after every restart.
bench:
	$(GO) run ./cmd/ariesim-perf -out BENCH_concurrency.json -minspeedup 2
	$(GO) run ./cmd/ariesim-perf -verify BENCH_concurrency.json
	$(GO) run ./cmd/ariesim-perf -profile mutex
	$(GO) run ./cmd/ariesim-perf -workload buffer -out BENCH_buffer.json -minspeedup 3 -mincleanerdrop 5
	$(GO) run ./cmd/ariesim-perf -verify BENCH_buffer.json
	$(GO) run ./cmd/ariesim-perf -workload recovery -out BENCH_recovery.json -minspeedup 2
	$(GO) run ./cmd/ariesim-perf -verify BENCH_recovery.json
	$(GO) run ./cmd/ariesim-perf -workload standby -out BENCH_standby.json
	$(GO) run ./cmd/ariesim-perf -verify BENCH_standby.json
	$(GO) run ./cmd/ariesim-perf -workload mvcc -out BENCH_mvcc.json -minspeedup 5
	$(GO) run ./cmd/ariesim-perf -verify BENCH_mvcc.json
	$(GO) run ./cmd/ariesim-perf -workload index -out BENCH_index.json -minspeedup 5
	$(GO) run ./cmd/ariesim-perf -verify BENCH_index.json

# Reduced run for CI: fewer transactions, same shape checks, and the
# committed BENCH_*.json files must exist and parse.
bench-smoke:
	$(GO) run ./cmd/ariesim-perf -smoke -out /tmp/ariesim_bench_smoke.json -minspeedup 2
	$(GO) run ./cmd/ariesim-perf -verify /tmp/ariesim_bench_smoke.json
	$(GO) run ./cmd/ariesim-perf -verify BENCH_concurrency.json
	$(GO) run ./cmd/ariesim-perf -profile mutex -smoke
	$(GO) run ./cmd/ariesim-perf -workload buffer -smoke -out /tmp/ariesim_bench_buffer_smoke.json
	$(GO) run ./cmd/ariesim-perf -verify /tmp/ariesim_bench_buffer_smoke.json
	$(GO) run ./cmd/ariesim-perf -verify BENCH_buffer.json
	$(GO) run ./cmd/ariesim-perf -workload recovery -smoke -out /tmp/ariesim_bench_recovery_smoke.json
	$(GO) run ./cmd/ariesim-perf -verify /tmp/ariesim_bench_recovery_smoke.json
	$(GO) run ./cmd/ariesim-perf -verify BENCH_recovery.json
	$(GO) run ./cmd/ariesim-perf -workload standby -smoke -out /tmp/ariesim_bench_standby_smoke.json
	$(GO) run ./cmd/ariesim-perf -verify /tmp/ariesim_bench_standby_smoke.json
	$(GO) run ./cmd/ariesim-perf -verify BENCH_standby.json
	$(GO) run ./cmd/ariesim-perf -workload mvcc -smoke -out /tmp/ariesim_bench_mvcc_smoke.json
	$(GO) run ./cmd/ariesim-perf -verify /tmp/ariesim_bench_mvcc_smoke.json
	$(GO) run ./cmd/ariesim-perf -verify BENCH_mvcc.json
	$(GO) run ./cmd/ariesim-perf -workload index -smoke -out /tmp/ariesim_bench_index_smoke.json
	$(GO) run ./cmd/ariesim-perf -verify /tmp/ariesim_bench_index_smoke.json
	$(GO) run ./cmd/ariesim-perf -verify BENCH_index.json

ci: build vet staticcheck race smoke chaos chaos-online chaos-standby chaos-mvcc chaos-index bench-smoke
