// Command bank runs the classic transfer workload on ariesim: many
// goroutines move money between accounts under serializable isolation,
// some transactions roll back, and contention aborts (deadlock victims,
// lock-wait timeouts) are repaired automatically by DB.RunTxn — the
// workers never see them. The total balance is conserved exactly. It then
// prints the lock-manager traffic that ARIES/IM needed, the paper's
// headline efficiency metric.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ariesim"
)

const (
	accounts  = 100
	initial   = 1_000
	workers   = 8
	transfers = 300 // per worker
)

func acct(i int) []byte   { return []byte(fmt.Sprintf("acct%04d", i)) }
func amount(n int) []byte { return []byte(strconv.Itoa(n)) }

var errInsufficient = errors.New("insufficient funds")

func main() {
	db := ariesim.Open(ariesim.Options{LockWaitTimeout: 50 * time.Millisecond})
	tbl, err := db.CreateTable("accounts")
	if err != nil {
		log.Fatal(err)
	}
	if err := db.RunTxn(func(tx *ariesim.Tx) error {
		for i := 0; i < accounts; i++ {
			if err := tbl.Insert(tx, acct(i), amount(initial)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	var committed, aborted atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < transfers; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				amt := rng.Intn(100) + 1
				seed := int64(w*transfers+i) + 1 // distinct retry jitter per txn
				err := transfer(db, tbl, from, to, amt, seed)
				switch {
				case err == nil:
					committed.Add(1)
				case errors.Is(err, errInsufficient):
					aborted.Add(1)
				default:
					log.Fatalf("transfer: %v", err) // RunTxn absorbed contention; this is a real bug
				}
			}
		}(w)
	}
	wg.Wait()

	// Verify conservation.
	total := 0
	if err := db.RunTxn(func(tx *ariesim.Tx) error {
		return tbl.Scan(tx, acct(0), nil, func(r ariesim.Row) (bool, error) {
			n, err := strconv.Atoi(string(r.Value))
			total += n
			return true, err
		})
	}); err != nil {
		log.Fatal(err)
	}

	sn := db.Stats().Snap()
	fmt.Printf("transfers committed: %d, insufficient-funds aborts: %d\n",
		committed.Load(), aborted.Load())
	fmt.Printf("contention repaired by RunTxn: %d deadlock retries, %d timeout retries (%d retried txns committed)\n",
		sn.TxnDeadlockRetries, sn.TxnTimeoutRetries, sn.TxnRetrySuccesses)
	fmt.Printf("total balance: %d (expected %d) — %s\n",
		total, accounts*initial, verdict(total == accounts*initial))

	if err := db.VerifyConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlock-manager traffic (ARIES/IM data-only locking):")
	fmt.Print(sn.FormatLockTable())
	fmt.Printf("tree traversals: %d, page splits: %d, SM_Bit waits: %d\n",
		sn.Traversals, sn.PageSplits, sn.SMBitWaits)
}

func verdict(ok bool) string {
	if ok {
		return "CONSERVED"
	}
	return "VIOLATED"
}

// transfer moves amt between two accounts inside one retried transaction.
// Deadlock and timeout aborts never escape RunTxn; the only errors that
// surface are genuine ones (here: insufficient funds).
func transfer(db *ariesim.DB, tbl *ariesim.Table, from, to, amt int, seed int64) error {
	return db.RunTxnWith(ariesim.RunTxnOpts{Seed: seed}, func(tx *ariesim.Tx) error {
		fb, err := tbl.Get(tx, acct(from))
		if err != nil {
			return err
		}
		balance, _ := strconv.Atoi(string(fb))
		if balance < amt {
			return errInsufficient
		}
		tb, err := tbl.Get(tx, acct(to))
		if err != nil {
			return err
		}
		tBalance, _ := strconv.Atoi(string(tb))
		if err := tbl.Update(tx, acct(from), amount(balance-amt)); err != nil {
			return err
		}
		return tbl.Update(tx, acct(to), amount(tBalance+amt))
	})
}
