// Command bank runs the classic transfer workload on ariesim: many
// goroutines move money between accounts under serializable isolation,
// some transactions roll back, deadlock victims retry — and the total
// balance is conserved exactly. It then prints the lock-manager traffic
// that ARIES/IM needed, the paper's headline efficiency metric.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"

	"ariesim"
)

const (
	accounts  = 100
	initial   = 1_000
	workers   = 8
	transfers = 300 // per worker
)

func acct(i int) []byte   { return []byte(fmt.Sprintf("acct%04d", i)) }
func amount(n int) []byte { return []byte(strconv.Itoa(n)) }

func main() {
	db := ariesim.Open(ariesim.Options{})
	tbl, err := db.CreateTable("accounts")
	if err != nil {
		log.Fatal(err)
	}
	setup := db.MustBegin()
	for i := 0; i < accounts; i++ {
		if err := tbl.Insert(setup, acct(i), amount(initial)); err != nil {
			log.Fatal(err)
		}
	}
	if err := setup.Commit(); err != nil {
		log.Fatal(err)
	}

	var committed, aborted, deadlocks atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < transfers; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				amt := rng.Intn(100) + 1
				if err := transfer(db, tbl, from, to, amt); err != nil {
					if errors.Is(err, ariesim.ErrDeadlock) {
						deadlocks.Add(1)
						i-- // retry
						continue
					}
					aborted.Add(1) // insufficient funds
					continue
				}
				committed.Add(1)
			}
		}(w)
	}
	wg.Wait()

	// Verify conservation.
	total := 0
	tx := db.MustBegin()
	if err := tbl.Scan(tx, acct(0), nil, func(r ariesim.Row) (bool, error) {
		n, err := strconv.Atoi(string(r.Value))
		total += n
		return true, err
	}); err != nil {
		log.Fatal(err)
	}
	_ = tx.Commit()

	fmt.Printf("transfers committed: %d, insufficient-funds aborts: %d, deadlock retries: %d\n",
		committed.Load(), aborted.Load(), deadlocks.Load())
	fmt.Printf("total balance: %d (expected %d) — %s\n",
		total, accounts*initial, verdict(total == accounts*initial))

	if err := db.VerifyConsistency(); err != nil {
		log.Fatal(err)
	}
	sn := db.Stats().Snap()
	fmt.Println("\nlock-manager traffic (ARIES/IM data-only locking):")
	fmt.Print(sn.FormatLockTable())
	fmt.Printf("tree traversals: %d, page splits: %d, SM_Bit waits: %d\n",
		sn.Traversals, sn.PageSplits, sn.SMBitWaits)
}

func verdict(ok bool) string {
	if ok {
		return "CONSERVED"
	}
	return "VIOLATED"
}

func transfer(db *ariesim.DB, tbl *ariesim.Table, from, to, amt int) error {
	tx := db.MustBegin()
	fail := func(err error) error {
		_ = tx.Rollback()
		return err
	}
	fb, err := tbl.Get(tx, acct(from))
	if err != nil {
		return fail(err)
	}
	balance, _ := strconv.Atoi(string(fb))
	if balance < amt {
		return fail(fmt.Errorf("insufficient funds"))
	}
	tb, err := tbl.Get(tx, acct(to))
	if err != nil {
		return fail(err)
	}
	tBalance, _ := strconv.Atoi(string(tb))
	if err := tbl.Update(tx, acct(from), amount(balance-amt)); err != nil {
		return fail(err)
	}
	if err := tbl.Update(tx, acct(to), amount(tBalance+amt)); err != nil {
		return fail(err)
	}
	return tx.Commit()
}
