// Command logshipping demonstrates what strictly page-oriented redo (§3)
// enables beyond crash restart: a hot standby. The primary streams its
// write-ahead log continuously as records harden — over a deliberately
// lossy channel — while the standby runs a restart that never ends:
// append, force, replay, acknowledge, forever. When the primary crashes
// mid-traffic, Promote finishes the pending restart (undoing whatever was
// in flight) and the standby becomes the serving primary; stragglers from
// the dead primary bounce off the epoch fence.
package main

import (
	"fmt"
	"log"
	"time"

	"ariesim/internal/db"
	"ariesim/internal/repl"
	"ariesim/internal/trace"
	"ariesim/internal/txn"
)

func key(i int) []byte { return []byte(fmt.Sprintf("event%05d", i)) }

func main() {
	primary := db.Open(db.Options{PageSize: 1024, Stats: &trace.Stats{}})
	if _, err := primary.CreateTable("events"); err != nil {
		log.Fatal(err)
	}

	// The wire: drops, duplicates, reordering, corruption — the protocol
	// (CRC frames, NAK/retransmit, bounded-retry re-seed) absorbs all of it.
	ch := repl.NewChannel(repl.ChannelFaults{
		Seed: 42, DropProb: 0.10, DupProb: 0.05, ReorderProb: 0.05, CorruptProb: 0.03,
	})
	standbyStats := &trace.Stats{}
	standby := repl.NewStandby(ch, primary.Disk().ReadMeta(), repl.StandbyOpts{
		DBOpts: db.Options{PageSize: 1024, RedoWorkers: 2, Stats: standbyStats},
		Epoch:  1, ApplyWorkers: 2,
	})
	standby.Start()
	shipper := repl.NewShipper(primary.Log(), ch, repl.ShipperOpts{
		Epoch:  1,
		MetaFn: func() []byte { return primary.Disk().ReadMeta() },
		Stats:  primary.Stats(),
	})
	shipper.Start()

	// Semi-synchronous commit: RunTxn does not return until the standby
	// has appended, forced, and replayed the commit record.
	primary.SetCommitGate(shipper.Gate(5 * time.Second))

	// Live traffic: every one of these commits crosses the lossy wire and
	// comes back acknowledged before the next batch starts.
	for lo := 0; lo < 400; lo += 50 {
		lo := lo
		if err := primary.RunTxn(func(tx *txn.Tx) error {
			events, err := primary.TableFor(tx, "events")
			if err != nil {
				return err
			}
			for i := lo; i < lo+50; i++ {
				if err := events.Insert(tx, key(i), []byte("payload")); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := primary.RunTxn(func(tx *txn.Tx) error {
		events, err := primary.TableFor(tx, "events")
		if err != nil {
			return err
		}
		for i := 100; i < 150; i++ {
			if err := events.Delete(tx, key(i)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// An in-flight transaction at crash time: its insert record ships (the
	// log force hardens it) but its commit never happens, so it must NOT
	// survive promotion.
	inflight := primary.MustBegin()
	etbl, err := primary.TableFor(inflight, "events")
	if err != nil {
		log.Fatal(err)
	}
	if err := etbl.Insert(inflight, []byte("zz-uncommitted"), []byte("ghost")); err != nil {
		log.Fatal(err)
	}
	primary.Log().ForceAll()
	if err := shipper.WaitAcked(primary.Log().StableLSN(), 5*time.Second); err != nil {
		log.Fatal(err)
	}
	cnt := primary.Stats().Snap()
	fmt.Printf("primary streamed %d segments (%d resent over %d channel faults), standby applied %d\n",
		cnt.SegmentsShipped, cnt.SegmentsResent,
		ch.Counts().Dropped+ch.Counts().Corrupted+ch.Counts().Reordered,
		standbyStats.SegmentsApplied.Load())

	// The primary dies; the standby finishes its perpetual restart and
	// takes over. Undo of the in-flight transaction happens here.
	primary.Crash()
	promoted, report, err := standby.Promote()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standby promoted: %d records analyzed, %d redone, %d in-flight rolled back\n",
		report.RecordsSeen, report.RedosApplied, report.LosersUndone)

	// A zombie gasp from the dead primary's shipper: the promoted node is
	// on a new epoch, so the frame is rejected, not applied.
	rejBefore := standbyStats.SegmentsRejected.Load()
	for deadline := time.Now().Add(2 * time.Second); standbyStats.SegmentsRejected.Load() == rejBefore; {
		if time.Now().After(deadline) {
			log.Fatal("zombie segment was never fenced")
		}
		shipper.ShipNow()
		time.Sleep(time.Millisecond)
	}
	fmt.Println("zombie segment from the dead primary fenced by epoch check")

	count := 0
	if err := promoted.RunTxn(func(r *txn.Tx) error {
		events, err := promoted.TableFor(r, "events")
		if err != nil {
			return err
		}
		count = 0
		if err := events.Scan(r, key(0), nil, func(db.Row) (bool, error) {
			count++
			return true, nil
		}); err != nil {
			return err
		}
		if _, err := events.Get(r, []byte("zz-uncommitted")); err == nil {
			return fmt.Errorf("uncommitted primary work visible after promotion")
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("promoted node holds %d rows (expected 350); uncommitted work absent ✓\n", count)

	// The promoted node is immediately a serving primary.
	if err := promoted.RunTxn(func(w *txn.Tx) error {
		events, err := promoted.TableFor(w, "events")
		if err != nil {
			return err
		}
		return events.Insert(w, []byte("written-after-failover"), []byte("promoted"))
	}); err != nil {
		log.Fatal(err)
	}
	if err := promoted.VerifyConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("failover complete: promoted node serving and verified")

	shipper.Stop()
	ch.Close()
	standby.Wait()
}
