// Command logshipping demonstrates what strictly page-oriented redo (§3)
// enables beyond crash restart: a warm standby. The primary runs
// transactions and ships its archived write-ahead log; the standby — an
// empty disk that never executed a transaction — replays the log with the
// shared page-oriented appliers and becomes an exact, writable copy of
// the primary's committed state.
package main

import (
	"bytes"
	"fmt"
	"log"

	"ariesim"
	"ariesim/internal/wal"
)

func key(i int) []byte { return []byte(fmt.Sprintf("event%05d", i)) }

func main() {
	primary := ariesim.Open(ariesim.Options{PageSize: 1024})
	events, err := primary.CreateTable("events")
	if err != nil {
		log.Fatal(err)
	}

	if err := primary.RunTxn(func(tx *ariesim.Tx) error {
		for i := 0; i < 400; i++ {
			if err := events.Insert(tx, key(i), []byte("payload")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	if err := primary.RunTxn(func(tx *ariesim.Tx) error {
		for i := 100; i < 150; i++ {
			if err := events.Delete(tx, key(i)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	// An in-flight transaction at ship time: it must NOT appear on the
	// standby (its commit record is not in the shipped log), so it needs a
	// raw handle that is never committed.
	inflight, err := primary.Begin()
	if err != nil {
		log.Fatal(err)
	}
	_ = events.Insert(inflight, []byte("zz-uncommitted"), []byte("ghost"))
	primary.Log().ForceAll()

	// "Ship" the log over the wire.
	var wire bytes.Buffer
	n, err := primary.ArchiveLog(&wire)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primary shipped %d log records (%d KiB)\n", n, wire.Len()/1024)

	// The standby restores the log stream and runs a standard ARIES
	// restart against an empty disk: analysis, page-oriented redo of
	// everything, undo of the in-flight transaction.
	shipped, err := wal.ReadArchive(bytes.NewReader(wire.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	standby, report, err := ariesim.OpenStandby(ariesim.Options{PageSize: 1024}, shipped, primary.Disk().ReadMeta())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standby replayed: %d records analyzed, %d redone, %d in-flight rolled back\n",
		report.RecordsSeen, report.RedosApplied, report.LosersUndone)

	stbl, err := standby.Table("events")
	if err != nil {
		log.Fatal(err)
	}
	count := 0
	if err := standby.RunTxn(func(r *ariesim.Tx) error {
		count = 0
		if err := stbl.Scan(r, key(0), nil, func(ariesim.Row) (bool, error) {
			count++
			return true, nil
		}); err != nil {
			return err
		}
		if _, err := stbl.Get(r, []byte("zz-uncommitted")); err == nil {
			return fmt.Errorf("uncommitted primary work visible on standby")
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standby holds %d rows (expected 350); uncommitted work absent ✓\n", count)

	// Promotion: the standby is immediately writable.
	if err := standby.RunTxn(func(w *ariesim.Tx) error {
		return stbl.Insert(w, []byte("written-on-standby"), []byte("promoted"))
	}); err != nil {
		log.Fatal(err)
	}
	if err := standby.VerifyConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("standby promoted and verified")
}
