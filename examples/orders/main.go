// Command orders demonstrates range scans, a secondary index, and
// ARIES/IM's phantom protection: a repeatable-read range scan blocks a
// concurrent insert into the scanned gap (via next-key locking) until the
// scanner commits — the paper's §2.2/§2.4 behavior, observed live.
package main

import (
	"fmt"
	"log"
	"time"

	"ariesim"
)

func orderKey(id int) []byte { return []byte(fmt.Sprintf("order%05d", id)) }

// row value: "<customer>|<item>"
func orderVal(customer, item string) []byte { return []byte(customer + "|" + item) }

func customerOf(value []byte) []byte {
	for i, b := range value {
		if b == '|' {
			return value[:i]
		}
	}
	return value
}

func main() {
	db := ariesim.Open(ariesim.Options{})
	orders, err := db.CreateTable("orders")
	if err != nil {
		log.Fatal(err)
	}
	if err := orders.AddSecondaryIndex("by_customer", customerOf); err != nil {
		log.Fatal(err)
	}

	customers := []string{"acme", "globex", "initech"}
	items := []string{"widget", "sprocket", "gear", "flange"}
	if err := db.RunTxn(func(seed *ariesim.Tx) error {
		for i := 0; i < 80; i += 2 { // even order ids only; odd ids arrive later
			c, it := customers[i%len(customers)], items[i%len(items)]
			if err := orders.Insert(seed, orderKey(i), orderVal(c, it)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// Primary range scan.
	tx, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("orders 10..14 by id:")
	_ = orders.Scan(tx, orderKey(10), orderKey(14), func(r ariesim.Row) (bool, error) {
		fmt.Printf("  %s -> %s\n", r.Key, r.Value)
		return true, nil
	})

	// Secondary scan: all of globex's orders, in one index range.
	fmt.Println("globex's orders via secondary index:")
	n := 0
	_ = orders.ScanSecondary(tx, "by_customer", []byte("globex"), []byte("globex"),
		func(sk []byte, r ariesim.Row) (bool, error) {
			n++
			if n <= 3 {
				fmt.Printf("  %s -> %s\n", r.Key, r.Value)
			}
			return true, nil
		})
	fmt.Printf("  ... %d globex orders total\n", n)
	_ = tx.Commit()

	// Phantom protection, live: a scanner counts orders 20..29; a writer
	// tries to insert order 25 mid-scan and is held until the scanner
	// commits. Both sides need raw handles — the point is observing the
	// block, so the writer must NOT sit inside a retry loop.
	scanner, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	count := 0
	_ = orders.Scan(scanner, orderKey(20), orderKey(29), func(ariesim.Row) (bool, error) {
		count++
		return true, nil
	})
	fmt.Printf("\nscanner counted %d orders in [20,29] (odd ids, like 25, do not exist yet)\n", count)

	writerDone := make(chan error, 1)
	start := time.Now()
	go func() {
		w, err := db.Begin()
		if err != nil {
			writerDone <- err
			return
		}
		if err := orders.Insert(w, orderKey(25), orderVal("acme", "phantom")); err != nil {
			writerDone <- err
			return
		}
		writerDone <- w.Commit()
	}()

	select {
	case <-writerDone:
		log.Fatal("phantom insert was NOT blocked — repeatable read violated")
	case <-time.After(100 * time.Millisecond):
		fmt.Println("writer inserting order 25 is blocked by the scanner's next-key lock ✓")
	}

	// Re-scan: repeatable read — same count.
	recount := 0
	_ = orders.Scan(scanner, orderKey(20), orderKey(29), func(ariesim.Row) (bool, error) {
		recount++
		return true, nil
	})
	fmt.Printf("scanner re-counted %d (repeatable) and commits\n", recount)
	if err := scanner.Commit(); err != nil {
		log.Fatal(err)
	}
	if err := <-writerDone; err != nil {
		log.Fatal(err)
	}
	fmt.Printf("writer completed after %v (released by the scanner's commit)\n",
		time.Since(start).Round(time.Millisecond))

	total := 0
	if err := db.RunTxn(func(final *ariesim.Tx) error {
		total = 0
		return orders.Scan(final, orderKey(20), orderKey(29), func(ariesim.Row) (bool, error) {
			total++
			return true, nil
		})
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("a later transaction sees %d orders in [20,29] (the phantom is now real)\n", total)

	if err := db.VerifyConsistency(); err != nil {
		log.Fatal(err)
	}
}
