// Command quickstart walks through the ariesim public API: open an
// engine, create a table, run transactions (including a rollback), range
// scan, then crash the engine and watch ARIES restart recovery bring back
// exactly the committed state.
package main

import (
	"errors"
	"fmt"
	"log"

	"ariesim"
)

func main() {
	db := ariesim.Open(ariesim.Options{})
	users, err := db.CreateTable("users")
	if err != nil {
		log.Fatal(err)
	}

	// A committed transaction. RunTxn runs the body, commits, and retries
	// automatically if the transaction loses a deadlock or times out on a
	// lock — the recommended way to run transactions.
	if err := db.RunTxn(func(tx *ariesim.Tx) error {
		for i, name := range []string{"alice", "bob", "carol", "dave"} {
			if err := users.Insert(tx, []byte(name), []byte(fmt.Sprintf("user #%d", i+1))); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed 4 users")

	// A rolled-back transaction: its work vanishes atomically. Explicit
	// Begin/Rollback gives manual control; Begin reports ErrCrashed when
	// the engine is down.
	tx, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	_ = users.Insert(tx, []byte("mallory"), []byte("intruder"))
	_ = users.Delete(tx, []byte("alice"))
	if err := tx.Rollback(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("rolled back mallory's transaction")

	// Range scan at repeatable-read isolation.
	if err := db.RunTxn(func(tx *ariesim.Tx) error {
		fmt.Println("scan a..d:")
		return users.Scan(tx, []byte("a"), []byte("d"), func(r ariesim.Row) (bool, error) {
			fmt.Printf("  %s = %s\n", r.Key, r.Value)
			return true, nil
		})
	}); err != nil {
		log.Fatal(err)
	}

	// Crash with an in-flight transaction; restart recovers committed
	// state and rolls the in-flight transaction back.
	inflight, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	_ = users.Insert(inflight, []byte("eve"), []byte("uncommitted"))
	db.Log().ForceAll() // the update records are stable, the commit is not
	db.Crash()

	// While down, the engine degrades gracefully instead of panicking.
	if _, err := db.Begin(); !errors.Is(err, ariesim.ErrCrashed) {
		log.Fatalf("expected ErrCrashed while down, got %v", err)
	}
	fmt.Println("engine down: Begin returns ErrCrashed until Restart")

	report, err := db.Restart()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restart: %d records analyzed, %d redone, %d losers undone\n",
		report.RecordsSeen, report.RedosApplied, report.LosersUndone)

	users, _ = db.Table("users")
	if err := db.RunTxn(func(tx *ariesim.Tx) error {
		if _, err := users.Get(tx, []byte("alice")); err != nil {
			return fmt.Errorf("alice lost: %w", err)
		}
		if _, err := users.Get(tx, []byte("eve")); err == nil {
			return fmt.Errorf("uncommitted eve survived the crash")
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after crash+restart: alice survives, eve (uncommitted) is gone")

	if err := db.VerifyConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("consistency verified")
}
