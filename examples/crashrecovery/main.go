// Command crashrecovery tortures the engine: a batch of transactions (some
// committed, some in flight) is interrupted by a crash; ARIES restart
// recovers exactly the committed state. It then simulates a media failure
// on index pages and repairs them page-by-page from a fuzzy image copy
// plus one pass of the log — the paper's §5 page-oriented media recovery —
// and finally plants silent bit-level corruption that the page checksums
// detect and the engine heals on its own.
package main

import (
	"errors"
	"fmt"
	"log"

	"ariesim"
	"ariesim/internal/recovery"
	"ariesim/internal/storage"
)

func key(i int) []byte { return []byte(fmt.Sprintf("row%05d", i)) }

func main() {
	db := ariesim.Open(ariesim.Options{PageSize: 1024})
	tbl, err := db.CreateTable("data")
	if err != nil {
		log.Fatal(err)
	}

	// Committed work, run through the retrying wrapper.
	if err := db.RunTxn(func(tx *ariesim.Tx) error {
		for i := 0; i < 500; i++ {
			if err := tbl.Insert(tx, key(i), []byte("committed")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	if err := db.RunTxn(func(tx *ariesim.Tx) error {
		for i := 100; i < 150; i++ {
			if err := tbl.Delete(tx, key(i)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// In-flight work, stable on the log but uncommitted. This transaction
	// is deliberately left open across the crash, so it needs a raw handle:
	// Begin, never Commit.
	loser, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	for i := 500; i < 560; i++ {
		_ = tbl.Insert(loser, key(i), []byte("in-flight"))
	}
	db.Log().ForceAll()

	fmt.Printf("before crash: %d log records, %d disk pages\n",
		db.Log().NumRecords(), db.Disk().NumPages())
	db.Crash()
	fmt.Println("=== CRASH: buffer pool, lock table, transaction table lost ===")

	// While down, Begin degrades gracefully with a typed error.
	if _, err := db.Begin(); !errors.Is(err, ariesim.ErrCrashed) {
		log.Fatalf("expected ErrCrashed while down, got %v", err)
	}

	report, err := db.Restart()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restart: analyzed %d records, redid %d page actions (skipped %d already on disk), undid %d losers\n",
		report.RecordsSeen, report.RedosApplied, report.RedosSkipped, report.LosersUndone)

	tbl, _ = db.Table("data")
	survivors, ghosts := 0, 0
	if err := db.RunTxn(func(check *ariesim.Tx) error {
		survivors, ghosts = 0, 0
		for i := 0; i < 560; i++ {
			_, err := tbl.Get(check, key(i))
			committedRow := (i < 100 || (i >= 150 && i < 500))
			switch {
			case err == nil && committedRow:
				survivors++
			case err != nil && !committedRow:
				ghosts++
			default:
				return fmt.Errorf("row %d: wrong recovery outcome (err=%v)", i, err)
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %d committed rows survive, %d deleted/uncommitted rows gone\n", survivors, ghosts)
	if err := db.VerifyConsistency(); err != nil {
		log.Fatal(err)
	}

	// Media recovery: fuzzy image copy, more committed work, destroy the
	// index pages on disk, rebuild each from dump + log.
	if err := db.Pool().FlushAll(); err != nil {
		log.Fatal(err)
	}
	img := db.TakeImageCopy()
	if err := db.RunTxn(func(post *ariesim.Tx) error {
		for i := 600; i < 650; i++ {
			if err := tbl.Insert(post, key(i), []byte("post-dump")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	if err := db.Pool().FlushAll(); err != nil {
		log.Fatal(err)
	}
	db.Pool().Crash() // drop cached frames so damage is visible

	var damaged []storage.PageID
	buf := make([]byte, 1024)
	for _, pid := range db.Disk().PageIDs() {
		_ = db.Disk().Read(pid, buf)
		if storage.PageFromBytes(buf).Type() == storage.PageTypeIndex {
			damaged = append(damaged, pid)
			db.Disk().Corrupt(pid)
		}
	}
	fmt.Printf("\n=== MEDIA FAILURE: destroyed %d index pages on disk ===\n", len(damaged))
	for _, pid := range damaged {
		if err := recovery.RecoverPage(db.Disk(), db.Log(), img, pid); err != nil {
			log.Fatalf("page %d: %v", pid, err)
		}
	}
	fmt.Printf("rebuilt %d pages from the image copy + one log pass (no tree traversals)\n", len(damaged))

	if err := db.RunTxn(func(verify *ariesim.Tx) error {
		if _, err := tbl.Get(verify, key(620)); err != nil {
			return fmt.Errorf("post-dump row lost by media recovery: %w", err)
		}
		if _, err := tbl.Get(verify, key(42)); err != nil {
			return fmt.Errorf("pre-dump row lost by media recovery: %w", err)
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	if err := db.VerifyConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("media recovery verified: pre- and post-dump rows intact")

	// Silent corruption: flip stored bits without touching the page's
	// checksum. The next read detects the mismatch, and the engine repairs
	// the page on its own from the image copy + log.
	victim := damaged[0]
	db.Disk().CorruptBits(victim, 64, 0xFF)
	db.Pool().Crash() // drop cached frames so reads go to disk
	if err := db.VerifyConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== SILENT CORRUPTION: bit flips on page %d ===\n", victim)
	fmt.Printf("checksum caught it; self-healed via media recovery (%d total media recoveries)\n",
		db.Stats().MediaRecoveries.Load())
}
