// Secondary indexes: a second ARIES/IM tree per table, maintained in the
// same transaction as the base row.
//
// CreateIndex builds the tree and backfills it from the existing rows in
// one internal transaction whose locked scan (commit-duration S locks plus
// next-key locks on every gap) freezes the table's key population: any
// writer whose primary-index operation would change the row set blocks
// until the backfill commits, and by then the new index is published on the
// table handle — writers copy the secondary list only AFTER their primary
// index operation, so every row the backfill could not see is maintained by
// its own writer. From then on Insert/Update/Delete log entries into both
// trees under one transaction, rollback undoes the pair through the normal
// PrevLSN chain (index-op undo routes through core.Manager.Undo), and
// restart redo/undo drive both trees with no index-specific code.
//
// ScanIndex/ScanIndexRange read in secondary-key order with the same
// key-range (next-key) protocol as primary scans: every entry touched stays
// S-locked to commit and the gap beyond the range end is protected by the
// next-key fetch, so phantoms cannot appear in the scanned range. Snapshot
// transactions instead route to snapshotScanIndex, which re-keys the
// latch-only primary-order chain merge by extracted secondary key (zero
// lock-manager calls; see its comment for why the secondary tree itself
// cannot be walked soundly under a snapshot).
package db

import (
	"fmt"
	"sort"

	"ariesim/internal/core"
	"ariesim/internal/storage"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

// CreateIndex creates a non-unique secondary index named name over
// extract(value) and backfills it from the table's existing rows in one
// internal transaction. The extractor is code, not data: after Restart it
// must be re-registered under the same name via OpenSecondaryIndex.
//
// The backfill scan takes commit-duration S + next-key locks on every
// existing primary key, so under live write traffic CreateIndex can block
// behind writers (or lose a deadlock) — contention-class failures leave the
// catalog untouched and may simply be retried.
func (t *Table) CreateIndex(name string, extract func(value []byte) []byte) error {
	d := t.db
	d.mu.Lock()
	if d.downed {
		d.mu.Unlock()
		return ErrCrashed
	}
	if d.recoveringLocked() {
		d.mu.Unlock()
		return ErrRecovering
	}
	for i := range d.cat.Tables {
		if d.cat.Tables[i].ID != t.id {
			continue
		}
		for _, ci := range d.cat.Tables[i].Indexes {
			if ci.Name == name {
				d.mu.Unlock()
				return fmt.Errorf("db: table %q already has index %q", t.name, name)
			}
		}
	}
	// Reserve the index ID under d.mu; a failed backfill leaks only the
	// number. The managers are captured here so a crash mid-backfill leaves
	// this DDL a zombie of its own epoch, like any in-flight transaction.
	id := d.cat.NextIndexID
	d.cat.NextIndexID++
	tm, im := d.tm, d.im
	d.mu.Unlock()

	// The backfill transaction runs WITHOUT d.mu: its locked scan can wait
	// behind writers, and holding the engine mutex across a lock wait would
	// wedge every Begin/TableFor into the same queue.
	tx := tm.Begin()
	ix, err := im.CreateIndex(tx, d.indexConfig(id, false))
	if err != nil {
		_ = tx.Rollback()
		return err
	}
	fail := func(err error) error {
		if rbErr := tx.Rollback(); rbErr != nil {
			return fmt.Errorf("db: index backfill failed (%v); rollback failed: %w", err, rbErr)
		}
		return err
	}
	res, cur, err := t.primary.Fetch(tx, nil, core.GE)
	if err != nil {
		return fail(err)
	}
	for !res.EOF {
		_, value, err := t.fetchRow(tx, res.Key.RID)
		if err != nil {
			return fail(err)
		}
		if err := ix.Insert(tx, storage.Key{Val: extract(value), RID: res.Key.RID}); err != nil {
			return fail(err)
		}
		if res, err = t.primary.FetchNext(tx, cur); err != nil {
			return fail(err)
		}
	}
	// Publish before commit: a writer blocked on the backfill's locks
	// resumes only after the commit releases them, re-reads the secondary
	// list after its primary-index operation, and maintains the new tree.
	sec := &secondary{name: name, ix: ix, extract: extract, bound: true}
	t.mu.Lock()
	t.secondaries = append(t.secondaries, sec)
	t.mu.Unlock()
	if err := tx.Commit(); err != nil {
		t.removeSecondary(sec)
		return err
	}
	d.registerExtractor(t.name, name, extract)
	d.mu.Lock()
	for i := range d.cat.Tables {
		if d.cat.Tables[i].ID == t.id {
			d.cat.Tables[i].Indexes = append(d.cat.Tables[i].Indexes,
				catalogIndex{Name: name, ID: id, Root: uint32(ix.Root()), Secondary: true})
		}
	}
	d.saveCatalog()
	d.mu.Unlock()
	return nil
}

// removeSecondary unpublishes a secondary whose creating transaction failed
// to commit.
func (t *Table) removeSecondary(sec *secondary) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, s := range t.secondaries {
		if s == sec {
			t.secondaries = append(t.secondaries[:i], t.secondaries[i+1:]...)
			return
		}
	}
}

// lookupSecondary returns the named secondary index, or nil.
func (t *Table) lookupSecondary(name string) *secondary {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.secondaries {
		if s.name == name {
			return s
		}
	}
	return nil
}

// ScanIndex iterates every (secondaryKey, row) pair of the named index in
// secondary-key order. Equivalent to ScanIndexRange over the full range.
func (t *Table) ScanIndex(tx *txn.Tx, name string, fn func(secKey []byte, r Row) (bool, error)) error {
	return t.ScanIndexRange(tx, name, nil, nil, fn)
}

// ScanIndexRange iterates (secondaryKey, row) pairs with
// from <= secondaryKey <= to (nil = unbounded) in secondary-key order.
//
// At repeatable read every entry touched stays S-locked to commit — under
// data-only locking the entry's key lock IS the base record's lock — and
// next-key locking protects the range's gaps from phantoms. Snapshot
// transactions route to the lock-free chain merge instead (emission is then
// in (secondaryKey, primaryKey) order from a buffered merge, not streamed
// off the tree).
func (t *Table) ScanIndexRange(tx *txn.Tx, name string, from, to []byte, fn func(secKey []byte, r Row) (bool, error)) error {
	sec := t.lookupSecondary(name)
	if sec == nil {
		return fmt.Errorf("db: no secondary index %q", name)
	}
	if s := tx.Snapshot(); s != nil {
		return t.snapshotScanIndex(s.LSN, sec, from, to, fn)
	}
	res, cur, err := sec.ix.Fetch(tx, from, core.GE)
	if err != nil {
		return err
	}
	for {
		if res.EOF || (to != nil && string(res.Key.Val) > string(to)) {
			return nil
		}
		k, v, err := t.fetchRow(tx, res.Key.RID)
		if err != nil {
			return err
		}
		cont, err := fn(append([]byte(nil), res.Key.Val...), Row{Key: append([]byte(nil), k...), Value: append([]byte(nil), v...)})
		if err != nil || !cont {
			return err
		}
		res, err = sec.ix.FetchNext(tx, cur)
		if err != nil {
			return err
		}
	}
}

// snapshotScanIndex is ScanIndexRange under a snapshot: the primary-order
// latch-only scan re-keyed by extracted secondary key.
//
// Version chains are keyed by PRIMARY key, so the only sound merge of page
// state with chains is the one snapshotScan already performs — window by
// window, immediately at each cursor step. A secondary-order tree walk
// cannot be merged that way: its gaps are secondary-key ranges, which name
// no chain, and deferring the chain query to the end of the walk loses any
// row whose writer was in flight when the cursor passed its entry and then
// ROLLED BACK before the query — undo restores the tree entry behind the
// cursor and the drained chain is retired regardless of registered
// snapshots (retirement only preserves chains whose newest COMMIT exceeds
// a registered snapshot; an aborter commits nothing). So the snapshot path
// does not read the secondary tree at all: it runs the proven primary-key
// merge, extracts each visible row's secondary key from its value-at-s —
// which decides both visibility and emission key — filters to [from, to],
// and emits sorted by (secondaryKey, primaryKey). Emission was never
// streamed off the tree under a snapshot, so the buffering is not new
// cost; locked transactions keep the streaming secondary-order scan.
func (t *Table) snapshotScanIndex(s wal.LSN, sec *secondary, from, to []byte, fn func(secKey []byte, r Row) (bool, error)) error {
	if !sec.bound {
		return fmt.Errorf("db: secondary index %q has no extractor; call OpenSecondaryIndex", sec.name)
	}
	type hit struct {
		skey, pk, value []byte
	}
	var hits []hit
	if err := t.snapshotScan(s, nil, nil, func(r Row) (bool, error) {
		sk := sec.extract(r.Value)
		if (from != nil && string(sk) < string(from)) || (to != nil && string(sk) > string(to)) {
			return true, nil
		}
		hits = append(hits, hit{skey: append([]byte(nil), sk...), pk: r.Key, value: r.Value})
		return true, nil
	}); err != nil {
		return err
	}
	sort.Slice(hits, func(i, j int) bool {
		if si, sj := string(hits[i].skey), string(hits[j].skey); si != sj {
			return si < sj
		}
		return string(hits[i].pk) < string(hits[j].pk)
	})
	for _, h := range hits {
		cont, err := fn(h.skey, Row{Key: h.pk, Value: h.value})
		if err != nil || !cont {
			return err
		}
	}
	return nil
}
