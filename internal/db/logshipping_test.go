package db

import (
	"bytes"
	"testing"

	"ariesim/internal/storage"
	"ariesim/internal/wal"
)

// TestLogShippingStandby demonstrates what purely page-oriented redo (§3)
// buys beyond restart: a warm standby. The primary ships its archived log;
// the standby — an empty disk that has never executed a transaction —
// replays it page by page with the shared redo appliers and ends up
// byte-equivalent at the logical level, verified by opening an engine on
// the reconstructed disk.
func TestLogShippingStandby(t *testing.T) {
	primary := Open(Options{PageSize: 512, PoolSize: 512})
	tbl, err := primary.CreateTable("ship")
	if err != nil {
		t.Fatal(err)
	}
	tx := primary.MustBegin()
	for i := 0; i < 300; i++ {
		if err := tbl.Insert(tx, k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := primary.MustBegin()
	for i := 50; i < 120; i++ {
		if err := tbl.Delete(tx2, k(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	// One in-flight transaction at ship time: the standby must not show it.
	loser := primary.MustBegin()
	for i := 500; i < 520; i++ {
		if err := tbl.Insert(loser, k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	primary.Log().ForceAll()

	// Ship the log.
	var wire bytes.Buffer
	if _, err := primary.ArchiveLog(&wire); err != nil {
		t.Fatal(err)
	}

	// Standby: fresh disk + the shipped log, then a standard restart.
	standbyLog, err := wal.ReadArchive(bytes.NewReader(wire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	standby := &DB{
		opts:  Options{PageSize: 512, PoolSize: 512}.withDefaults(),
		disk:  storage.NewDisk(512),
		log:   standbyLog,
		cat:   catalog{NextTableID: 1, NextIndexID: 1},
		stats: Options{}.withDefaults().Stats,
	}
	// The catalog travels out of band (as schemas do between sites).
	standby.disk.WriteMeta(primary.Disk().ReadMeta())
	standby.buildVolatile()
	standby.downed = true
	rep, err := standby.Restart()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RedosApplied == 0 {
		t.Fatal("standby applied no redo")
	}
	if rep.LosersUndone != 1 {
		t.Fatalf("standby undid %d losers, want 1", rep.LosersUndone)
	}
	if err := standby.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	stbl, err := standby.Table("ship")
	if err != nil {
		t.Fatal(err)
	}

	// The standby's visible state equals the primary's committed state.
	collect := func(d *DB, tb *Table) map[string]string {
		out := map[string]string{}
		r := d.MustBegin()
		_ = tb.Scan(r, []byte(""), nil, func(row Row) (bool, error) {
			out[string(row.Key)] = string(row.Value)
			return true, nil
		})
		_ = r.Commit()
		return out
	}
	// Roll the primary's loser back so both sides show committed state.
	if err := loser.Rollback(); err != nil {
		t.Fatal(err)
	}
	pState := collect(primary, tbl)
	sState := collect(standby, stbl)
	if len(pState) != len(sState) {
		t.Fatalf("primary %d rows, standby %d rows", len(pState), len(sState))
	}
	for key, val := range pState {
		if sState[key] != val {
			t.Fatalf("standby divergence at %q: %q vs %q", key, sState[key], val)
		}
	}
	// The standby is a fully writable promotion target.
	w := standby.MustBegin()
	if err := stbl.Insert(w, []byte("zz-after-promotion"), []byte("new-primary")); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := standby.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}
