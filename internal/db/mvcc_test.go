package db

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"ariesim/internal/trace"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

func key8(i int) []byte { return []byte(fmt.Sprintf("k%08d", i)) }

// TestSnapshotReadBasic: a read-only transaction sees committed rows via
// Get/Scan/ScanPrefix/GetCS and secondary-index scans, refuses writes,
// and makes zero lock-manager requests.
func TestSnapshotReadBasic(t *testing.T) {
	d := Open(Options{})
	tbl, err := d.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("s", func(v []byte) []byte { return v[:2] }); err != nil {
		t.Fatal(err)
	}
	if err := d.RunTxn(func(tx *txn.Tx) error {
		for i := 0; i < 20; i++ {
			if err := tbl.Insert(tx, key8(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	before := d.Stats().Snap()
	err = d.RunReadOnly(func(tx *txn.Tx) error {
		if tx.Snapshot() == nil {
			return fmt.Errorf("expected a snapshot transaction")
		}
		v, err := tbl.Get(tx, key8(7))
		if err != nil {
			return err
		}
		if string(v) != "v7" {
			return fmt.Errorf("get = %q, want v7", v)
		}
		if v, err = tbl.GetCS(tx, key8(3)); err != nil || string(v) != "v3" {
			return fmt.Errorf("getcs = %q, %v", v, err)
		}
		if _, err := tbl.Get(tx, []byte("nope")); !errors.Is(err, ErrNotFound) {
			return fmt.Errorf("missing key: %v", err)
		}
		var n int
		if err := tbl.Scan(tx, nil, nil, func(r Row) (bool, error) { n++; return true, nil }); err != nil {
			return err
		}
		if n != 20 {
			return fmt.Errorf("scan saw %d rows, want 20", n)
		}
		n = 0
		if err := tbl.ScanPrefix(tx, []byte("k0000001"), func(r Row) (bool, error) { n++; return true, nil }); err != nil {
			return err
		}
		if n != 10 {
			return fmt.Errorf("prefix scan saw %d rows, want 10", n)
		}
		if err := tbl.Insert(tx, []byte("x"), []byte("y")); !errors.Is(err, ErrReadOnlyTxn) {
			return fmt.Errorf("insert on snapshot tx: %v", err)
		}
		if err := tbl.Delete(tx, key8(0)); !errors.Is(err, ErrReadOnlyTxn) {
			return fmt.Errorf("delete on snapshot tx: %v", err)
		}
		n = 0
		if err := tbl.ScanIndex(tx, "s", func(sk []byte, r Row) (bool, error) {
			if len(r.Value) < 2 || string(sk) != string(r.Value[:2]) {
				return false, fmt.Errorf("index scan pair %q / %q disagrees with extractor", sk, r.Value)
			}
			n++
			return true, nil
		}); err != nil {
			return err
		}
		if n != 20 {
			return fmt.Errorf("index scan saw %d rows, want 20", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	diff := trace.Diff(before, d.Stats().Snap())
	if diff.ReadOnlyLockCalls != 0 {
		t.Errorf("snapshot reader made %d lock-manager calls, want 0", diff.ReadOnlyLockCalls)
	}
	if diff.SnapshotBegins == 0 || diff.SnapshotReads == 0 {
		t.Errorf("snapshot counters not advancing: %+v", diff)
	}
}

// TestSnapshotIsolation: a reader holding a snapshot keeps seeing the
// old world while writers commit updates, deletes, and inserts past it;
// a fresh snapshot sees the new world.
func TestSnapshotIsolation(t *testing.T) {
	d := Open(Options{})
	tbl, err := d.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	put := func(k, v string) {
		t.Helper()
		if err := d.RunTxn(func(tx *txn.Tx) error {
			if err := tbl.Insert(tx, []byte(k), []byte(v)); errors.Is(err, ErrDuplicate) {
				return tbl.Update(tx, []byte(k), []byte(v))
			} else {
				return err
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	del := func(k string) {
		t.Helper()
		if err := d.RunTxn(func(tx *txn.Tx) error { return tbl.Delete(tx, []byte(k)) }); err != nil {
			t.Fatal(err)
		}
	}
	put("a", "1")
	put("b", "2")
	put("c", "3")

	rtx, err := d.BeginReadOnly()
	if err != nil {
		t.Fatal(err)
	}
	defer d.EndReadOnly(rtx)

	put("a", "1'") // update past the snapshot
	del("b")       // delete past the snapshot
	put("d", "4")  // insert past the snapshot

	want := map[string]string{"a": "1", "b": "2", "c": "3"}
	got := map[string]string{}
	if err := tbl.Scan(rtx, nil, nil, func(r Row) (bool, error) {
		got[string(r.Key)] = string(r.Value)
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("snapshot scan = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("snapshot scan[%q] = %q, want %q", k, got[k], v)
		}
		gv, err := tbl.Get(rtx, []byte(k))
		if err != nil || string(gv) != v {
			t.Errorf("snapshot get %q = %q, %v; want %q", k, gv, err, v)
		}
	}
	if _, err := tbl.Get(rtx, []byte("d")); !errors.Is(err, ErrNotFound) {
		t.Errorf("post-snapshot insert visible: %v", err)
	}

	// A fresh snapshot sees the new world.
	if err := d.RunReadOnly(func(tx *txn.Tx) error {
		if v, err := tbl.Get(tx, []byte("a")); err != nil || string(v) != "1'" {
			return fmt.Errorf("fresh get a = %q, %v", v, err)
		}
		if _, err := tbl.Get(tx, []byte("b")); !errors.Is(err, ErrNotFound) {
			return fmt.Errorf("deleted b still visible: %v", err)
		}
		if v, err := tbl.Get(tx, []byte("d")); err != nil || string(v) != "4" {
			return fmt.Errorf("fresh get d = %q, %v", v, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotTooOldRetryable: churning a key past the chain cap while an
// old snapshot is live forces ErrSnapshotTooOld, which classifies as
// contention (never fatal) and repairs under RunReadOnly's retry loop.
func TestSnapshotTooOldRetryable(t *testing.T) {
	d := Open(Options{})
	tbl, err := d.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunTxn(func(tx *txn.Tx) error { return tbl.Insert(tx, []byte("hot"), []byte("v0")) }); err != nil {
		t.Fatal(err)
	}
	rtx, err := d.BeginReadOnly()
	if err != nil {
		t.Fatal(err)
	}
	defer d.EndReadOnly(rtx)
	// Each update pushes two versions (tombstone + insert); 40 commits
	// blow far past the 32-version chain cap, forcing folds beyond the
	// registered snapshot.
	for i := 1; i <= 40; i++ {
		v := []byte(fmt.Sprintf("v%d", i))
		if err := d.RunTxn(func(tx *txn.Tx) error { return tbl.Update(tx, []byte("hot"), v) }); err != nil {
			t.Fatal(err)
		}
	}
	_, err = tbl.Get(rtx, []byte("hot"))
	if !errors.Is(err, ErrSnapshotTooOld) {
		t.Fatalf("stale snapshot read: %v, want ErrSnapshotTooOld", err)
	}
	if ClassifyErr(err) != ClassContention {
		t.Errorf("ErrSnapshotTooOld classified %v, want ClassContention", ClassifyErr(err))
	}
	if d.Stats().SnapshotTooOld.Load() == 0 {
		t.Error("SnapshotTooOld counter did not advance")
	}
	// RunReadOnly repairs it: the first attempt's injected staleness is
	// retried on a fresh snapshot.
	attempt := 0
	if err := d.RunReadOnly(func(tx *txn.Tx) error {
		if attempt++; attempt == 1 {
			return ErrSnapshotTooOld
		}
		v, err := tbl.Get(tx, []byte("hot"))
		if err != nil {
			return err
		}
		if string(v) != "v40" {
			return fmt.Errorf("retried read = %q, want v40", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if attempt != 2 {
		t.Errorf("RunReadOnly ran %d attempts, want 2", attempt)
	}
}

// TestReadOnlyFallbackDuringRecovery: while online restart recovery is
// pending, BeginReadOnly degrades to an ordinary locked transaction (nil
// snapshot) that still reads correctly; after recovery, snapshots resume.
func TestReadOnlyFallbackDuringRecovery(t *testing.T) {
	d := Open(Options{OnlineRestart: true})
	tbl, err := d.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := d.RunTxn(func(tx *txn.Tx) error {
			return tbl.Insert(tx, key8(i), []byte("v"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	d.Crash()
	if _, err := d.Restart(); err != nil {
		t.Fatal(err)
	}
	sawFallback := false
	for i := 0; i < 10 && d.Recovering(); i++ {
		err := d.RunReadOnly(func(tx *txn.Tx) error {
			if tx.Snapshot() == nil {
				sawFallback = true
			}
			tbl2, err := d.TableFor(tx, "t")
			if err != nil {
				return err
			}
			v, err := tbl2.Get(tx, key8(3))
			if err != nil {
				return err
			}
			if string(v) != "v" {
				return fmt.Errorf("fallback get = %q", v)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	_ = sawFallback // timing-dependent; correctness is what matters
	if _, err := d.AwaitRecovered(); err != nil {
		t.Fatal(err)
	}
	if err := d.RunReadOnly(func(tx *txn.Tx) error {
		if tx.Snapshot() == nil {
			return fmt.Errorf("expected snapshot mode after recovery")
		}
		tbl2, err := d.TableFor(tx, "t")
		if err != nil {
			return err
		}
		_, err = tbl2.Get(tx, key8(3))
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

// oracleLedger records every acknowledged commit's row effects keyed by
// its commit LSN. OnCommitted runs under the commit's epoch lock, so a
// recorded entry is durable and an unrecorded one never acked.
type oracleLedger struct {
	mu      sync.Mutex
	entries map[wal.LSN][]oracleOp
}

type oracleOp struct {
	key     string
	present bool
	value   string
}

func (l *oracleLedger) record(lsn wal.LSN, ops []oracleOp) {
	l.mu.Lock()
	l.entries[lsn] = append([]oracleOp(nil), ops...)
	l.mu.Unlock()
}

// applyThrough replays all entries with LSN <= s in LSN order.
func (l *oracleLedger) applyThrough(s wal.LSN) map[string]string {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsns := make([]wal.LSN, 0, len(l.entries))
	for lsn := range l.entries {
		if lsn <= s {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
	model := map[string]string{}
	for _, lsn := range lsns {
		for _, op := range l.entries[lsn] {
			if op.present {
				model[op.key] = op.value
			} else {
				delete(model, op.key)
			}
		}
	}
	return model
}

type snapObservation struct {
	s    wal.LSN
	rows map[string]string
}

// TestMVCCSnapshotOracle is the race-mode property test: interleaved
// writers, lock-free snapshot readers, and crashes; every snapshot a
// reader observed must be byte-identical to the serial oracle — the
// acked-commit ledger replayed through the snapshot's LSN. Verification
// is deferred to the quiesced end so the ledger is complete.
func TestMVCCSnapshotOracle(t *testing.T) {
	const keySpace = 48
	writers, readers, crashes, iters := 4, 4, 3, 60
	if testing.Short() {
		writers, readers, crashes, iters = 3, 3, 2, 25
	}
	d := Open(Options{OnlineRestart: true})
	if _, err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	ledger := &oracleLedger{entries: map[wal.LSN][]oracleOp{}}
	var writerWg, readerWg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(seed int64) {
			defer writerWg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				var ops []oracleOp
				err := d.RunTxnWith(RunTxnOpts{
					Seed:          seed*1000 + int64(i) + 1,
					RetryDeadline: 20 * time.Second,
					OnCommitted:   func(lsn wal.LSN) { ledger.record(lsn, ops) },
				}, func(tx *txn.Tx) error {
					ops = ops[:0]
					tbl, err := d.TableFor(tx, "t")
					if err != nil {
						return err
					}
					for j := 0; j < 2; j++ {
						k := fmt.Sprintf("k%03d", rng.Intn(keySpace))
						v := fmt.Sprintf("w%d.%d.%d", seed, i, j)
						if rng.Intn(3) == 0 {
							err := tbl.Delete(tx, []byte(k))
							if errors.Is(err, ErrNotFound) {
								continue
							}
							if err != nil {
								return err
							}
							ops = append(ops, oracleOp{key: k, present: false})
							continue
						}
						err := tbl.Insert(tx, []byte(k), []byte(v))
						if errors.Is(err, ErrDuplicate) {
							err = tbl.Update(tx, []byte(k), []byte(v))
						}
						if err != nil {
							return err
						}
						ops = append(ops, oracleOp{key: k, present: true, value: v})
					}
					return nil
				})
				if err != nil {
					t.Errorf("writer %d: %v", seed, err)
					return
				}
			}
		}(int64(w))
	}

	obsCh := make(chan snapObservation, 1024)
	for r := 0; r < readers; r++ {
		readerWg.Add(1)
		go func(seed int64) {
			defer readerWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var obs *snapObservation
				err := d.RunReadOnlyWith(RunTxnOpts{Seed: seed + 100, RetryDeadline: 20 * time.Second}, func(tx *txn.Tx) error {
					obs = nil
					snap := tx.Snapshot()
					tbl, err := d.TableFor(tx, "t")
					if err != nil {
						return err
					}
					rows := map[string]string{}
					if err := tbl.Scan(tx, nil, nil, func(r Row) (bool, error) {
						rows[string(r.Key)] = string(r.Value)
						return true, nil
					}); err != nil {
						return err
					}
					if snap != nil { // locked fallback snapshots are not point-in-time
						obs = &snapObservation{s: snap.LSN, rows: rows}
					}
					return nil
				})
				if err != nil {
					t.Errorf("reader %d: %v", seed, err)
					return
				}
				if obs != nil {
					select {
					case obsCh <- *obs:
					default: // keep the channel bounded; later observations replace nothing
					}
				}
			}
		}(int64(r))
	}

	for c := 0; c < crashes; c++ {
		time.Sleep(40 * time.Millisecond)
		d.Crash()
		if _, err := d.Restart(); err != nil {
			t.Fatal(err)
		}
	}
	// Let the writers drain, then stop the readers: readers only exit on
	// stop, so waiting for them before closing it would deadlock.
	writerWg.Wait()
	close(stop)
	readerWg.Wait()
	close(obsCh)

	verified := 0
	for obs := range obsCh {
		model := ledger.applyThrough(obs.s)
		if len(model) != len(obs.rows) {
			t.Fatalf("snapshot %d: observed %d rows, oracle has %d\nobserved=%v\noracle=%v",
				obs.s, len(obs.rows), len(model), obs.rows, model)
		}
		for k, v := range model {
			if obs.rows[k] != v {
				t.Fatalf("snapshot %d: key %q = %q, oracle says %q", obs.s, k, obs.rows[k], v)
			}
		}
		verified++
	}
	if verified == 0 {
		t.Error("no snapshot observations verified")
	}
	t.Logf("mvcc oracle: %d snapshots verified byte-identical", verified)
}

// TestSnapshotBackupUnderLoad: the whole-table consistent read stays
// consistent (every row from one snapshot) while writers churn.
func TestSnapshotBackupUnderLoad(t *testing.T) {
	d := Open(Options{})
	tbl, err := d.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	// Invariant: writers keep key i and its shadow i+100 equal; a
	// consistent snapshot must never see them differ.
	if err := d.RunTxn(func(tx *txn.Tx) error {
		for i := 0; i < 16; i++ {
			if err := tbl.Insert(tx, key8(i), []byte("0")); err != nil {
				return err
			}
			if err := tbl.Insert(tx, key8(i+100), []byte("0")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for gen := 1; ; gen++ {
			select {
			case <-stop:
				return
			default:
			}
			i := rng.Intn(16)
			v := []byte(fmt.Sprintf("%d", gen))
			if err := d.RunTxn(func(tx *txn.Tx) error {
				if err := tbl.Update(tx, key8(i), v); err != nil {
					return err
				}
				return tbl.Update(tx, key8(i+100), v)
			}); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	for n := 0; n < 20; n++ {
		rows, err := d.SnapshotBackup("t")
		if err != nil {
			t.Fatal(err)
		}
		m := map[string]string{}
		for _, r := range rows {
			m[string(r.Key)] = string(r.Value)
		}
		for i := 0; i < 16; i++ {
			a, b := m[string(key8(i))], m[string(key8(i+100))]
			if a != b {
				t.Fatalf("backup %d inconsistent: %s=%q %s=%q", n, key8(i), a, key8(i+100), b)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestSnapshotScanNoDuplicateUnderReinsert: tree keys are (value, RID)
// pairs and the latch-only scan cursor advances by probeAfter, which only
// bumps the RID past the entry it just returned. If a concurrent
// transaction deletes and reinserts the same primary key, the new entry
// lands at a higher RID, so the cursor visits both entries — and because
// the version chain still says the key is visible at the snapshot, the
// scan emitted the row twice (and out of order). The scan callback runs
// with no latches held, so the delete+reinsert can be staged from inside
// it, deterministically between the first visit and the cursor advance.
func TestSnapshotScanNoDuplicateUnderReinsert(t *testing.T) {
	d := Open(Options{})
	tbl, err := d.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	const keys = 8
	if err := d.RunTxn(func(tx *txn.Tx) error {
		for i := 0; i < keys; i++ {
			if err := tbl.Insert(tx, key8(i), []byte("seed")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	mutated := false
	var emitted []string
	if err := d.RunReadOnly(func(tx *txn.Tx) error {
		if tx.Snapshot() == nil {
			return fmt.Errorf("expected a snapshot transaction")
		}
		mutated = false
		emitted = emitted[:0]
		return tbl.Scan(tx, nil, nil, func(r Row) (bool, error) {
			emitted = append(emitted, string(r.Key))
			if !mutated && string(r.Key) == string(key8(3)) {
				mutated = true
				if err := d.RunTxn(func(wtx *txn.Tx) error {
					if err := tbl.Delete(wtx, key8(3)); err != nil {
						return err
					}
					return tbl.Insert(wtx, key8(3), []byte("reborn"))
				}); err != nil {
					return false, err
				}
			}
			return true, nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	last := ""
	for _, k := range emitted {
		if seen[k] {
			t.Fatalf("snapshot scan emitted %q twice: %q", k, emitted)
		}
		seen[k] = true
		if k <= last {
			t.Fatalf("snapshot scan out of order (%q after %q): %q", k, last, emitted)
		}
		last = k
	}
	if len(emitted) != keys {
		t.Fatalf("scan emitted %d rows, want %d: %q", len(emitted), keys, emitted)
	}
}
