// Snapshot reads: lock-free read-only transactions at snapshot isolation.
//
// A read-only transaction captures the version store's visibility
// watermark at begin and resolves every read with a pure commit-LSN
// comparison — zero lock-manager calls, no latching beyond buffer fixes.
// Writers cooperate by pushing a version per record mutation (see
// Table.Insert/Delete) before the mutation becomes reachable by key, and
// the commit path stamps those versions only after the commit record is
// durable, so a snapshot can never observe a torn or unforced commit.
//
// Per-key reader protocol (the chain-removal invariant makes it sound):
//
//  1. Consult the version chain; if one exists it is authoritative.
//  2. Otherwise capture the table's chain-removal sequence and probe the
//     page image latch-only (index descent + heap fetch, no locks).
//  3. Re-check the chain. If one appeared it is authoritative; if none
//     exists and the removal sequence is unchanged, the page value is
//     the committed state at the snapshot: any writer whose effect the
//     probe could have seen pushes a chain before its first
//     key-reachable mutation, an in-flight chain cannot be removed, and
//     a chain whose newest commit exceeds the snapshot cannot be removed
//     while the snapshot is registered — so "no chain across the whole
//     probe window" proves the page carried only commits <= snapshot.
//
// During online restart recovery the store is empty while loser data may
// still sit in pages, so BeginReadOnly falls back to an ordinary locked
// transaction: the reinstated loser locks supply the isolation until the
// background undo finishes.
package db

import (
	"errors"
	"fmt"
	"time"

	"ariesim/internal/core"
	"ariesim/internal/mvcc"
	"ariesim/internal/storage"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

// ErrSnapshotTooOld reports that a version this snapshot needed was pruned
// while the reader ran (a long reader under heavy churn on a capped
// chain). It is retryable — RunReadOnly repairs it with a fresh snapshot.
var ErrSnapshotTooOld = mvcc.ErrSnapshotTooOld

// ErrReadOnlyTxn reports a write attempted through a snapshot read-only
// transaction.
var ErrReadOnlyTxn = errors.New("db: write attempted in a read-only snapshot transaction")

// ErrSnapshotUnsupported reports an operation a snapshot transaction
// cannot serve. Secondary-order scans, its original occupant, are now
// served by the chain merge (snapshotScanIndex); the sentinel remains for
// callers that still classify it.
var ErrSnapshotUnsupported = errors.New("db: operation not supported under a snapshot read")

// BeginReadOnly starts a read-only transaction. Normally it is a detached,
// non-logging transaction carrying a snapshot of the visibility watermark:
// its Get/Scan route to the lock-free MVCC path and it must be ended with
// EndReadOnly (never Commit/Rollback). While online restart recovery is
// still pending it degrades to an ordinary locked transaction (nil
// Snapshot) — the version store is empty then, and the reinstated loser
// locks protect readers from uncommitted restart data; EndReadOnly
// handles both shapes.
func (d *DB) BeginReadOnly() (*txn.Tx, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.downed {
		return nil, ErrCrashed
	}
	if d.recoveringLocked() {
		return d.tm.Begin(), nil
	}
	tx := d.tm.BeginDetached()
	s, id := d.vs.Begin()
	tx.SetSnapshot(txn.Snapshot{LSN: s, ID: id})
	return tx, nil
}

// EndReadOnly finishes a BeginReadOnly transaction: a snapshot reader
// retires its registration (unblocking version pruning); a locked
// fallback reader rolls back, which releases its S locks without paying
// a commit-record log force.
func (d *DB) EndReadOnly(tx *txn.Tx) error {
	if snap := tx.Snapshot(); snap != nil {
		d.mu.Lock()
		vs := d.vs
		d.mu.Unlock()
		// If the epoch changed under the reader this End is a no-op on
		// the successor store (snapshot IDs are process-global), and the
		// orphaned store's registration dies with it.
		vs.End(snap.ID)
		return nil
	}
	if err := tx.Rollback(); err != nil && !errors.Is(err, txn.ErrTxDone) {
		return err
	}
	return nil
}

// RunReadOnly executes fn as a read-only transaction with the same
// repair-and-retry discipline as RunTxn: contention-class errors (which
// include ErrSnapshotTooOld) are retried on a fresh snapshot after a
// backoff, crash-class errors wait for the restart, fatal errors surface.
func (d *DB) RunReadOnly(fn func(*txn.Tx) error) error {
	return d.RunReadOnlyWith(RunTxnOpts{}, fn)
}

// RunReadOnlyWith is RunReadOnly with explicit retry options (OnCommit /
// OnCommitted do not apply and are ignored).
func (d *DB) RunReadOnlyWith(opts RunTxnOpts, fn func(*txn.Tx) error) error {
	opts = opts.withDefaults()
	rng := &lazyRNG{seed: opts.Seed}
	backoff := opts.BaseBackoff
	var lastErr error
	var deadline time.Time
	if opts.RetryDeadline > 0 {
		deadline = time.Now().Add(opts.RetryDeadline)
	}
	awaitUp := func() bool {
		if deadline.IsZero() {
			d.AwaitUp()
			return true
		}
		return d.AwaitUpFor(time.Until(deadline))
	}
	for attempt := 0; attempt < opts.MaxAttempts; attempt++ {
		if !awaitUp() {
			break
		}
		tx, err := d.BeginReadOnly()
		if err != nil {
			if errors.Is(err, ErrCrashed) {
				continue // raced a fresh crash; wait out the restart
			}
			return err
		}
		err = fn(tx)
		if endErr := d.EndReadOnly(tx); err == nil {
			err = endErr
		}
		if err == nil {
			if attempt > 0 {
				d.stats.TxnRetrySuccesses.Add(1)
			}
			return nil
		}
		lastErr = err
		switch ClassifyErr(err) {
		case ClassContention:
			d.stats.TxnRetries.Add(1)
			time.Sleep(backoff + time.Duration(rng.Int63n(int64(backoff)+1)))
			if backoff *= 2; backoff > opts.MaxBackoff {
				backoff = opts.MaxBackoff
			}
		case ClassCrash:
			d.stats.TxnRetries.Add(1)
			if errors.Is(err, ErrRecovering) {
				d.stats.TxnRecoveringRetries.Add(1)
				continue
			}
			d.stats.TxnCrashWaits.Add(1)
			if !awaitUp() {
				return fmt.Errorf("db: retry deadline %v exceeded: %w", opts.RetryDeadline, lastErr)
			}
			time.Sleep(time.Duration(rng.Int63n(int64(opts.BaseBackoff) + 1)))
		default:
			return err
		}
	}
	if lastErr == nil {
		lastErr = ErrCrashed
	}
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		return fmt.Errorf("db: retry deadline %v exceeded: %w", opts.RetryDeadline, lastErr)
	}
	return fmt.Errorf("db: read-only transaction gave up after %d attempts: %w", opts.MaxAttempts, lastErr)
}

// SnapshotBackup reads an entire table at one consistent snapshot — the
// long-running consistent scan the paper's lock-based reader could only
// get by S-locking every row to commit. Under a concurrent write load it
// neither blocks writers nor observes any of their in-flight work.
func (d *DB) SnapshotBackup(table string) ([]Row, error) {
	var rows []Row
	err := d.RunReadOnly(func(tx *txn.Tx) error {
		rows = rows[:0]
		t, err := d.TableFor(tx, table)
		if err != nil {
			return err
		}
		return t.Scan(tx, nil, nil, func(r Row) (bool, error) {
			rows = append(rows, r)
			return true, nil
		})
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// pushVersion records one mutation of key in the version store and marks
// tx versioned so its commit/rollback drive the store's hooks. seed
// supplies the committed pre-state if a chain must be created.
func (t *Table) pushVersion(tx *txn.Tx, key []byte, present bool, value []byte, seed func() (bool, []byte, uint64, error)) error {
	if err := t.vs.Push(t.id, key, present, value, tx.ID, tx.LastLSN(), seed); err != nil {
		return err
	}
	tx.MarkVersioned()
	return nil
}

// insertSeed builds the committed-state probe for an insert's version
// push: capture the removal sequence, then resolve the key's committed
// image latch-only. The inserter holds no lock on the key's prior
// incarnation, but Push validates the sequence under the table lock and
// retries the probe if chain turnover raced it, and any in-flight writer
// on the key implies a chain — in which case the probe is discarded and
// the version appended instead.
func (t *Table) insertSeed(tx *txn.Tx, key []byte) func() (bool, []byte, uint64, error) {
	return func() (bool, []byte, uint64, error) {
		seq := t.vs.Seq(t.id)
		present, rec, err := t.probePage(key, func(pid storage.PageID) error {
			// The writer has a real transaction: clear the stale SM_Bit
			// in-line (a redo-only logged update, safe mid-operation).
			t.primary.ResolveStaleSMBit(tx, pid)
			return nil
		})
		if err != nil {
			return false, nil, 0, err
		}
		if !present {
			return false, nil, seq, nil
		}
		_, v, err := decodeRow(rec)
		if err != nil {
			return false, nil, 0, err
		}
		return true, v, seq, nil
	}
}

// maxSnapshotRetries bounds per-key protocol retries against pathological
// chain turnover; each retry requires a full create-and-retire cycle to
// have raced the probe, so the bound is never approached in practice.
const maxSnapshotRetries = 16

// probePage resolves key's current page state latch-only: index descent
// to the RID, then an unlocked heap fetch. resolve is called to clear a
// stale SM_Bit when the lock-free traversal gives up on one (crash
// leftover); the probe then retries.
func (t *Table) probePage(key []byte, resolve func(storage.PageID) error) (present bool, rec []byte, err error) {
	for attempt := 0; attempt < maxSnapshotRetries; attempt++ {
		res, _, err := t.primary.FetchNoLock(key, core.EQ)
		var amb *core.AmbiguityError
		if errors.As(err, &amb) {
			if rerr := resolve(amb.Page); rerr != nil {
				return false, nil, rerr
			}
			continue
		}
		if err != nil {
			return false, nil, err
		}
		if !res.Found {
			return false, nil, nil
		}
		raw, ghost, ok, err := t.data.FetchNoLock(res.Key.RID)
		if err != nil {
			return false, nil, err
		}
		if !ok || ghost {
			// The record vanished or is a ghost: with no chain this is a
			// committed absence; with one, the caller's re-check rules.
			return false, nil, nil
		}
		return true, raw, nil
	}
	return false, nil, fmt.Errorf("db: probe of %q kept hitting ambiguous pages", key)
}

// housekeepingResolve clears a stale SM_Bit on behalf of a lock-free
// reader, which has no transaction to log the reset with: a short-lived
// ordinary transaction performs the redo-only update (Fig 8's "optional"
// reset, done by whoever trips over the bit after a crash) and commits.
// The reader itself stays zero-lock — the housekeeping write is a
// separate transaction, not part of the snapshot read.
func (t *Table) housekeepingResolve(ix *core.Index, pid storage.PageID) error {
	tx, err := t.db.Begin()
	if err != nil {
		return err
	}
	ix.ResolveStaleSMBit(tx, pid)
	if err := tx.Commit(); err != nil {
		_ = tx.Rollback()
		return err
	}
	return nil
}

// snapshotGet is Get under a snapshot.
func (t *Table) snapshotGet(s wal.LSN, key []byte) ([]byte, error) {
	value, found, err := t.snapshotRead(s, key)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return value, nil
}

// snapshotRead resolves one key under snapshot s via the per-key protocol
// documented at the top of this file.
func (t *Table) snapshotRead(s wal.LSN, key []byte) ([]byte, bool, error) {
	vs := t.vs
	t.db.stats.SnapshotReads.Add(1)
	for attempt := 0; attempt < maxSnapshotRetries; attempt++ {
		r, err := vs.Read(t.id, key, s)
		if err != nil {
			return nil, false, err
		}
		if r.Chain {
			return r.Value, r.Present, nil
		}
		seq := vs.Seq(t.id)
		present, rec, err := t.probePage(key, func(pid storage.PageID) error {
			return t.housekeepingResolve(t.primary, pid)
		})
		if err != nil {
			return nil, false, err
		}
		r2, err := vs.Read(t.id, key, s)
		if err != nil {
			return nil, false, err
		}
		if r2.Chain {
			return r2.Value, r2.Present, nil
		}
		if vs.Seq(t.id) != seq {
			continue // a chain was born and retired mid-probe; redo
		}
		if !present {
			return nil, false, nil
		}
		_, v, err := decodeRow(rec)
		if err != nil {
			return nil, false, err
		}
		return append([]byte(nil), v...), true, nil
	}
	return nil, false, fmt.Errorf("db: snapshot read of %q kept racing chain turnover", key)
}

// snapshotScan is Scan under a snapshot: a latch-only page cursor walk
// merged, window by window, with the version chains. The cursor yields
// every key currently in the index; each gap between consecutive cursor
// keys is filled from the chains (keys visible at s whose index entry a
// later committed delete removed), and each cursor key itself resolves
// through the per-key protocol (so an entry from an in-flight or
// post-snapshot insert reads as absent, and a post-snapshot delete's
// pre-image comes back from its chain).
func (t *Table) snapshotScan(s wal.LSN, from, to []byte, fn func(Row) (bool, error)) error {
	vs := t.vs
	emit := func(k string, v []byte) (bool, error) {
		return fn(Row{Key: []byte(k), Value: v})
	}
	emitWindow := func(rows []mvcc.Row) (bool, error) {
		for _, r := range rows {
			if !r.Present {
				continue
			}
			t.db.stats.SnapshotReads.Add(1)
			if cont, err := emit(r.Key, r.Value); err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	prev, prevIncl := string(from), true
	res, cur, err := t.snapCursorStart(t.primary, from)
	if err != nil {
		return err
	}
	for {
		if res.EOF || (to != nil && string(res.Key.Val) > string(to)) {
			// Close the range: chain-only keys past the last cursor key.
			var rows []mvcc.Row
			if to == nil {
				rows, err = vs.RowsBetween(t.id, prev, prevIncl, "", false, true, s)
			} else {
				rows, err = vs.RowsBetween(t.id, prev, prevIncl, string(to), true, false, s)
			}
			if err != nil {
				return err
			}
			_, err = emitWindow(rows)
			return err
		}
		k := string(res.Key.Val)
		if !prevIncl && k == prev {
			// Tree keys are (value, RID) pairs and the cursor advances by
			// RID past the entry it just returned, so a concurrent
			// delete+reinsert of the same primary key at a higher RID puts
			// a second entry in the cursor's path. The first visit already
			// answered for this key at s (chain answers are stable while
			// the snapshot is registered; a validated no-chain page probe
			// is provably the committed state at s) — skip the revisit.
			res, err = t.snapCursorNext(t.primary, cur)
			if err != nil {
				return err
			}
			continue
		}
		rows, err := vs.RowsBetween(t.id, prev, prevIncl, k, false, false, s)
		if err != nil {
			return err
		}
		if cont, err := emitWindow(rows); err != nil || !cont {
			return err
		}
		value, found, err := t.snapshotRead(s, res.Key.Val)
		if err != nil {
			return err
		}
		if found {
			if cont, err := emit(k, value); err != nil || !cont {
				return err
			}
		}
		prev, prevIncl = k, false
		res, err = t.snapCursorNext(t.primary, cur)
		if err != nil {
			return err
		}
	}
}

// snapshotScanPrefix is ScanPrefix under a snapshot: an unbounded
// snapshot scan from the prefix that stops at the first key past it
// (emission is in key order, so the cut is exact).
func (t *Table) snapshotScanPrefix(s wal.LSN, prefix []byte, fn func(Row) (bool, error)) error {
	p := string(prefix)
	return t.snapshotScan(s, prefix, nil, func(r Row) (bool, error) {
		if len(r.Key) < len(p) || string(r.Key[:len(p)]) != p {
			return false, nil
		}
		return fn(r)
	})
}

// snapCursorStart positions a latch-only cursor on ix at the first key >=
// from, resolving stale SM_Bits via housekeeping transactions. ix is the
// table's primary or one of its secondary trees.
func (t *Table) snapCursorStart(ix *core.Index, from []byte) (core.FetchResult, *core.Cursor, error) {
	for attempt := 0; attempt < maxSnapshotRetries; attempt++ {
		res, cur, err := ix.FetchNoLock(from, core.GE)
		var amb *core.AmbiguityError
		if errors.As(err, &amb) {
			if rerr := t.housekeepingResolve(ix, amb.Page); rerr != nil {
				return core.FetchResult{}, nil, rerr
			}
			continue
		}
		return res, cur, err
	}
	return core.FetchResult{}, nil, fmt.Errorf("db: snapshot scan start kept hitting ambiguous pages")
}

// snapCursorNext advances a latch-only cursor on ix, resolving stale
// SM_Bits.
func (t *Table) snapCursorNext(ix *core.Index, cur *core.Cursor) (core.FetchResult, error) {
	for attempt := 0; attempt < maxSnapshotRetries; attempt++ {
		res, err := ix.FetchNextNoLock(cur)
		var amb *core.AmbiguityError
		if errors.As(err, &amb) {
			if rerr := t.housekeepingResolve(ix, amb.Page); rerr != nil {
				return core.FetchResult{}, rerr
			}
			continue
		}
		return res, err
	}
	return core.FetchResult{}, fmt.Errorf("db: snapshot scan kept hitting ambiguous pages")
}
