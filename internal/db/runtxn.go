// RunTxn: the retry-safe transaction execution wrapper. Contention aborts
// (deadlock victim, lock-wait timeout) and engine crashes are repaired
// automatically — rollback, backoff, re-execute — so callers write the
// transaction body once and only see errors that genuinely need a human:
// logic errors and unrecoverable media failures. The approach follows the
// transaction-repair view of conflict aborts (Veldhuizen 2014): an abort
// chosen by the system is the system's to retry.
package db

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"ariesim/internal/lock"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

// RetryClass partitions the errors a transaction body can return by what
// RunTxn does about them.
type RetryClass int

const (
	// ClassFatal errors surface to the caller: logic errors (ErrNotFound,
	// ErrDuplicate reaching the top, application errors) and
	// ErrMediaFailure. Retrying cannot help.
	ClassFatal RetryClass = iota
	// ClassContention errors (deadlock victim, lock-wait timeout) are
	// repaired by rolling back and retrying after a randomized backoff.
	ClassContention
	// ClassCrash errors (engine crashed mid-body, or the lock manager was
	// shut down under the transaction) are repaired by waiting for the
	// restart and re-executing on the new epoch.
	ClassCrash
)

// ClassifyErr maps an error from a transaction body to its retry class.
func ClassifyErr(err error) RetryClass {
	switch {
	case errors.Is(err, lock.ErrDeadlock), errors.Is(err, lock.ErrLockTimeout):
		return ClassContention
	case errors.Is(err, ErrSnapshotTooOld):
		// A long reader's version was pruned out from under it: never
		// fatal — a fresh snapshot sees the surviving state.
		return ClassContention
	case errors.Is(err, ErrCrashed), errors.Is(err, lock.ErrShutdown),
		errors.Is(err, wal.ErrLogCrashed):
		// wal.ErrLogCrashed surfaces from Commit/Prepare when the crash
		// landed during the commit record's flush: the record died with its
		// log epoch, so the transaction is repaired exactly like any other
		// crash casualty — await restart, re-execute.
		return ClassCrash
	default:
		return ClassFatal
	}
}

// RunTxnOpts tunes RunTxn's retry loop. The zero value is usable.
type RunTxnOpts struct {
	// MaxAttempts bounds full executions of the body (default 16).
	MaxAttempts int
	// BaseBackoff is the first contention backoff (default 200µs); each
	// further contention retry doubles it up to MaxBackoff (default 20ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed drives the backoff jitter deterministically. Concurrent callers
	// should use distinct seeds or their retries stampede in lockstep.
	Seed int64
	// RetryDeadline bounds the total time RunTxn spends retrying — in
	// particular the AwaitUp wait for a restart, which is otherwise
	// unbounded. When it expires at a wait point, RunTxn gives up with the
	// last error (wrapping ErrCrashed if no attempt ever ran). Zero keeps
	// the historical wait-forever behavior.
	RetryDeadline time.Duration
	// OnCommit, when set, runs atomically with the commit acknowledgement:
	// at the instant it runs the commit record is durable and no crash has
	// intervened. Harnesses use it to maintain an exact model of acked
	// state. It must not call back into the engine.
	OnCommit func()
	// OnCommitted, when set, runs the moment the commit record is durable
	// in the LOCAL log — before the replication commit gate (if any) has
	// confirmed it, so before the commit is acknowledged. Harnesses use it
	// to register a pending commit keyed by its commit-record LSN: if the
	// gate then fails (ErrCommitUnacked) the outcome is ambiguous, and the
	// pending entry is resolved by the commit record's presence in the
	// surviving log. It must not call back into the engine.
	OnCommitted func(wal.LSN)
}

func (o RunTxnOpts) withDefaults() RunTxnOpts {
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 16
	}
	if o.BaseBackoff == 0 {
		o.BaseBackoff = 200 * time.Microsecond
	}
	if o.MaxBackoff == 0 {
		o.MaxBackoff = 20 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// lazyRNG defers math/rand source construction until a retry actually
// draws jitter: seeding a source costs microseconds and ~5KB, which on
// the happy path (zero retries — the overwhelmingly common case) would
// tax every transaction for randomness nobody consumes. Laziness changes
// only when the source is built, not the sequence it produces, so seeded
// runs stay deterministic.
type lazyRNG struct {
	seed int64
	rng  *rand.Rand
}

func (l *lazyRNG) Int63n(n int64) int64 {
	if l.rng == nil {
		l.rng = rand.New(rand.NewSource(l.seed))
	}
	return l.rng.Int63n(n)
}

// RunTxn executes fn inside a transaction and commits it, automatically
// repairing contention aborts (rollback + capped exponential backoff +
// retry) and engine crashes (wait for restart + retry on the new epoch).
// Fatal errors abort the transaction and surface unchanged. fn may run
// several times and must therefore be idempotent apart from its effects
// through the passed transaction.
func (d *DB) RunTxn(fn func(*txn.Tx) error) error {
	return d.RunTxnWith(RunTxnOpts{}, fn)
}

// RunTxnWith is RunTxn with explicit retry options.
func (d *DB) RunTxnWith(opts RunTxnOpts, fn func(*txn.Tx) error) error {
	opts = opts.withDefaults()
	rng := &lazyRNG{seed: opts.Seed}
	backoff := opts.BaseBackoff
	var lastErr error
	var deadline time.Time
	if opts.RetryDeadline > 0 {
		deadline = time.Now().Add(opts.RetryDeadline)
	}
	deadlineErr := func() error {
		cause := lastErr
		if cause == nil {
			cause = ErrCrashed
		}
		return fmt.Errorf("db: retry deadline %v exceeded: %w", opts.RetryDeadline, cause)
	}
	awaitUp := func() bool {
		if deadline.IsZero() {
			d.AwaitUp()
			return true
		}
		return d.AwaitUpFor(time.Until(deadline))
	}
	for attempt := 0; attempt < opts.MaxAttempts; attempt++ {
		if !awaitUp() {
			return deadlineErr()
		}
		tx, err := d.Begin()
		if err != nil {
			if errors.Is(err, ErrCrashed) {
				// Raced a fresh crash; wait out the restart and try again.
				continue
			}
			return err
		}
		err = fn(tx)
		if err == nil {
			err = d.commitAcked(tx, opts.OnCommitted, opts.OnCommit)
			if err == nil {
				if attempt > 0 {
					d.stats.TxnRetrySuccesses.Add(1)
				}
				return nil
			}
		}
		lastErr = err
		switch ClassifyErr(err) {
		case ClassContention:
			if rbErr := tx.Rollback(); rbErr != nil && !errors.Is(rbErr, txn.ErrTxDone) &&
				ClassifyErr(rbErr) == ClassFatal {
				return fmt.Errorf("db: rollback after %v: %w", err, rbErr)
			}
			d.stats.TxnRetries.Add(1)
			if errors.Is(err, lock.ErrDeadlock) {
				d.stats.TxnDeadlockRetries.Add(1)
			} else {
				d.stats.TxnTimeoutRetries.Add(1)
			}
			time.Sleep(backoff + time.Duration(rng.Int63n(int64(backoff)+1)))
			if backoff *= 2; backoff > opts.MaxBackoff {
				backoff = opts.MaxBackoff
			}
		case ClassCrash:
			// The transaction belongs to the crashed epoch; unwind it
			// best-effort against the orphaned structures (equivalent to
			// work lost at the power cut) and re-execute after restart.
			_ = tx.Rollback()
			d.stats.TxnRetries.Add(1)
			if errors.Is(err, ErrRecovering) {
				// The engine is UP — only background recovery is pending,
				// and it finishes on its own. Retry immediately; parking on
				// a backoff here would just add latency.
				d.stats.TxnRecoveringRetries.Add(1)
				continue
			}
			d.stats.TxnCrashWaits.Add(1)
			if !awaitUp() {
				return deadlineErr()
			}
			// Jitter AFTER the restart releases the herd: every retrier
			// wakes on the same upCh close, so without this they re-enter
			// the fresh epoch in lockstep and collide all over again.
			time.Sleep(time.Duration(rng.Int63n(int64(opts.BaseBackoff) + 1)))
		default:
			if rbErr := tx.Rollback(); rbErr != nil && !errors.Is(rbErr, txn.ErrTxDone) &&
				ClassifyErr(rbErr) == ClassFatal {
				return fmt.Errorf("db: rollback after %v: %w", err, rbErr)
			}
			return err
		}
	}
	return fmt.Errorf("db: transaction gave up after %d attempts: %w", opts.MaxAttempts, lastErr)
}

// maxStepAttempts bounds savepoint-scoped retries of one step before
// RunTxnSteps escalates to a full-transaction retry.
const maxStepAttempts = 3

// RunTxnSteps executes a multi-statement body as a sequence of steps with
// savepoint-based partial retry: a step failing on contention is rolled
// back to its own savepoint — releasing only the locks that step took —
// and re-executed in place, preserving the work of completed steps. A step
// that keeps losing escalates to RunTxnWith's full rollback-and-retry.
func (d *DB) RunTxnSteps(opts RunTxnOpts, steps ...func(*txn.Tx) error) error {
	opts = opts.withDefaults()
	rng := &lazyRNG{seed: opts.Seed + 1}
	return d.RunTxnWith(opts, func(tx *txn.Tx) error {
		for _, step := range steps {
			save := tx.Savepoint()
			for stepAttempt := 0; ; stepAttempt++ {
				err := step(tx)
				if err == nil {
					break
				}
				if ClassifyErr(err) != ClassContention || stepAttempt+1 >= maxStepAttempts {
					return err
				}
				if rbErr := tx.RollbackTo(save); rbErr != nil {
					return fmt.Errorf("db: partial rollback after %v: %w", err, rbErr)
				}
				d.stats.TxnStepRetries.Add(1)
				time.Sleep(time.Duration(rng.Int63n(int64(opts.BaseBackoff)) + 1))
			}
		}
		return nil
	})
}

// commitAcked commits tx and acknowledges it atomically with respect to
// Crash: under the shared side of epochMu either the engine is up and tx
// belongs to the current epoch — then the commit record is forced and
// onCommit observes a durable commit — or the commit is refused with
// ErrCrashed. This closes the race where a crash lands between the commit
// force and the acknowledgement, which would make the caller's model of
// committed state diverge from the log's.
//
// Crash takes epochMu exclusively, so it cannot interleave with the
// check→force→ack window; but concurrent committers all hold the read
// side, so their log forces overlap and group commit batches them. d.mu is
// taken only for the epoch check (lock order: epochMu before mu).
// When a commit gate is installed (semi-sync replication, SetCommitGate),
// it runs between local durability and the acknowledgement: OnCommitted
// fires first (locally durable, outcome still ambiguous), then the gate
// must confirm the standby has the record, and only then does the commit
// ack — OnCommit fires and the acked-commit ledger advances. A failing
// gate surfaces ErrCommitUnacked without acking.
func (d *DB) commitAcked(tx *txn.Tx, onCommitted func(wal.LSN), onCommit func()) error {
	d.epochMu.RLock()
	defer d.epochMu.RUnlock()
	d.mu.Lock()
	crashed := d.downed || !d.tm.Owns(tx)
	gate := d.commitGate
	d.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	lsn := tx.CommitLSN()
	if onCommitted != nil {
		onCommitted(lsn)
	}
	if gate != nil {
		if err := gate(lsn); err != nil {
			return fmt.Errorf("%w: commit LSN %d: %v", ErrCommitUnacked, lsn, err)
		}
	}
	d.noteAcked(lsn)
	if onCommit != nil {
		onCommit()
	}
	return nil
}
