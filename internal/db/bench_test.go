package db

import (
	"fmt"
	"testing"

	"ariesim/internal/txn"
)

// benchDB opens an engine prefilled with n rows for read-path benchmarks.
func benchDB(b *testing.B, n int) (*DB, *Table) {
	b.Helper()
	d := Open(Options{})
	tbl, err := d.CreateTable("bench")
	if err != nil {
		b.Fatal(err)
	}
	for lo := 0; lo < n; lo += 256 {
		err := d.RunTxn(func(tx *txn.Tx) error {
			for i := lo; i < lo+256 && i < n; i++ {
				if err := tbl.Insert(tx, benchKey(i), []byte("bench-value-payload")); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return d, tbl
}

func benchKey(i int) []byte { return []byte(fmt.Sprintf("k%08d", i)) }

// BenchmarkSnapshotGet measures one lock-free snapshot read-only
// transaction performing a single Get: the full BeginReadOnly / chain
// check / latch-only page probe / EndReadOnly cycle. This is the unit the
// mvcc throughput gate multiplies, so CPU regressions here show up
// directly in BENCH_mvcc.json.
func BenchmarkSnapshotGet(b *testing.B) {
	d, _ := benchDB(b, 1024)
	keys := make([][]byte, 1024)
	for i := range keys {
		keys[i] = benchKey(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := d.RunReadOnly(func(tx *txn.Tx) error {
			t, err := d.TableFor(tx, "bench")
			if err != nil {
				return err
			}
			_, err = t.Get(tx, keys[i%len(keys)])
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLockedGet is the same single-Get transaction through the
// ordinary S-lock path (lock-manager call + forced commit record) — the
// baseline the snapshot path is gated against.
func BenchmarkLockedGet(b *testing.B) {
	d, _ := benchDB(b, 1024)
	keys := make([][]byte, 1024)
	for i := range keys {
		keys[i] = benchKey(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := d.RunTxn(func(tx *txn.Tx) error {
			t, err := d.TableFor(tx, "bench")
			if err != nil {
				return err
			}
			_, err = t.Get(tx, keys[i%len(keys)])
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotGetOnly isolates the per-read cost (snapshotRead via
// Get) from the begin/end cost by reusing one read-only transaction for
// all iterations.
func BenchmarkSnapshotGetOnly(b *testing.B) {
	d, _ := benchDB(b, 1024)
	keys := make([][]byte, 1024)
	for i := range keys {
		keys[i] = benchKey(i)
	}
	tx, err := d.BeginReadOnly()
	if err != nil {
		b.Fatal(err)
	}
	t, err := d.TableFor(tx, "bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := t.Get(tx, keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := d.EndReadOnly(tx); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSnapshotBeginEnd isolates the snapshot begin/end cost alone.
func BenchmarkSnapshotBeginEnd(b *testing.B) {
	d, _ := benchDB(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := d.BeginReadOnly()
		if err != nil {
			b.Fatal(err)
		}
		if err := d.EndReadOnly(tx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotScan measures a snapshot range scan over the table.
func BenchmarkSnapshotScan(b *testing.B) {
	d, _ := benchDB(b, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := d.RunReadOnly(func(tx *txn.Tx) error {
			t, err := d.TableFor(tx, "bench")
			if err != nil {
				return err
			}
			return t.Scan(tx, benchKey(0), benchKey(63), func(r Row) (bool, error) {
				n++
				return true, nil
			})
		})
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("scan saw nothing")
		}
	}
}
