package db

import "testing"

// TestCrashSweepEveryBoundary is the tentpole robustness test: every log
// record boundary of an SMO-heavy workload becomes a crash point, each
// point recovers twice (the first restart is itself crashed mid-undo),
// and the recovered state must exactly equal the covered committed
// snapshot under full consistency verification.
func TestCrashSweepEveryBoundary(t *testing.T) {
	opts := SweepOpts{Seed: 42, Logf: t.Logf}
	if testing.Short() {
		opts.Txns = 12
	}
	res, err := CrashSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sweep: %d points, %d commits, %d rollbacks, %d double recoveries",
		res.Points, res.Commits, res.Rollbacks, res.DoubleRecoveries)
	if res.Points != res.Records {
		t.Fatalf("swept %d of %d boundaries", res.Points, res.Records)
	}
	min := 300
	if testing.Short() {
		min = 60
	}
	if res.Points < min {
		t.Fatalf("only %d crash points; want >= %d (workload too small to be exhaustive)", res.Points, min)
	}
	if res.DoubleRecoveries == 0 {
		t.Fatal("no point interrupted its first restart mid-undo; the double-recovery path went unexercised")
	}
	if res.OnlinePoints != res.Points {
		t.Fatalf("online pass covered %d of %d points", res.OnlinePoints, res.Points)
	}
	if res.OnlineRecrashes == 0 {
		t.Fatal("no online recovery was re-crashed mid-flight")
	}
	if res.Rollbacks == 0 || res.Commits == 0 {
		t.Fatalf("workload not mixed: %d commits, %d rollbacks", res.Commits, res.Rollbacks)
	}
}

// TestCrashSweepSecondaryIndex re-runs the boundary sweep with a secondary
// index riding on every transaction: each crash point must recover the
// base table AND the index to the covered committed snapshot, after both
// the offline double-recovery and the online (re-crashed) restart.
func TestCrashSweepSecondaryIndex(t *testing.T) {
	opts := SweepOpts{Seed: 43, Txns: 25, SecondaryIndex: true, Logf: t.Logf}
	if testing.Short() {
		opts.Txns = 8
	}
	res, err := CrashSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sweep: %d points, %d commits, %d rollbacks, %d double recoveries",
		res.Points, res.Commits, res.Rollbacks, res.DoubleRecoveries)
	if res.Points != res.Records {
		t.Fatalf("swept %d of %d boundaries", res.Points, res.Records)
	}
	if res.OnlinePoints != res.Points {
		t.Fatalf("online pass covered %d of %d points", res.OnlinePoints, res.Points)
	}
	if res.Rollbacks == 0 || res.Commits == 0 {
		t.Fatalf("workload not mixed: %d commits, %d rollbacks", res.Commits, res.Rollbacks)
	}
}

// TestCrashSweepDeterministic re-runs a small sweep with the same seed and
// expects identical shape — the substrate promise that lets a failing
// crash point be replayed exactly.
func TestCrashSweepDeterministic(t *testing.T) {
	run := func() *SweepResult {
		res, err := CrashSweep(SweepOpts{Seed: 7, Txns: 8})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if *a != *b {
		t.Fatalf("same seed, different sweeps:\n  %+v\n  %+v", *a, *b)
	}
}
