package db

import (
	"fmt"
	"math/rand"
	"sort"

	"ariesim/internal/recovery"
	"ariesim/internal/wal"
)

// SweepOpts configures a crash-point sweep. The zero value is a small but
// SMO-heavy configuration; every field has a default.
type SweepOpts struct {
	// Seed drives the workload and the per-point recovery perturbations;
	// the whole sweep is deterministic in it.
	Seed int64
	// Txns is the number of workload transactions (default 50).
	Txns int
	// OpsPerTxn is the number of row operations per transaction (default 4).
	OpsPerTxn int
	// PageSize for the swept engine (default 512 — small pages force page
	// splits and deletes, so the log is dense with nested top actions).
	PageSize int
	// PoolSize in frames (default 256; large enough that no page is
	// evicted, which keeps every log prefix a legal crash state).
	PoolSize int
	// RedoWorkers sets restart redo parallelism on every fork (0/1 =
	// serial). The sweep's verification is identical either way — that is
	// the point of running it with workers > 1.
	RedoWorkers int
	// SecondaryIndex additionally maintains a secondary index over the
	// swept table, so every crash boundary exercises paired base+index
	// redo/undo; at each point the recovered index is checked entry by
	// entry against the covered committed snapshot (both restart modes).
	SecondaryIndex bool
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (o SweepOpts) withDefaults() SweepOpts {
	if o.Txns == 0 {
		o.Txns = 50
	}
	if o.OpsPerTxn == 0 {
		o.OpsPerTxn = 4
	}
	if o.PageSize == 0 {
		o.PageSize = 512
	}
	if o.PoolSize == 0 {
		o.PoolSize = 256
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// SweepResult summarizes a crash-point sweep.
type SweepResult struct {
	// Points is the number of crash points exercised: one per log record
	// boundary after setup.
	Points int
	// Records is the total number of log records the workload produced.
	Records int
	// Commits and Rollbacks count workload transactions by outcome.
	Commits   int
	Rollbacks int
	// DoubleRecoveries counts the points whose first restart was genuinely
	// interrupted mid-undo (losers existed and the undo-step budget hit),
	// forcing the second restart to recover from a half-done recovery.
	// Every point runs two restarts regardless.
	DoubleRecoveries int
	// OnlinePoints counts boundaries additionally recovered with online
	// restart (every point); OnlineRecrashes counts the rotating subset
	// whose online recovery was itself crashed mid-flight and rerun.
	OnlinePoints    int
	OnlineRecrashes int
}

// committedState is the exact table contents after the commit that wrote
// commitLSN; a crash at any boundary L with commitLSN ≤ L < nextCommitLSN
// must recover to exactly rows.
type committedState struct {
	commitLSN wal.LSN
	rows      map[string]string
}

// CrashSweep is the tentpole robustness harness: it runs a scripted
// multi-transaction workload dense with page splits/deletes (SMOs as
// nested top actions), commits, rollbacks, a fuzzy checkpoint and a
// trailing in-flight loser — then, for EVERY log record boundary the
// workload produced, forks the stable state, truncates the log there
// (simulating a crash whose last force reached exactly that record),
// restarts, re-crashes the engine mid-restart (an undo-step budget kills
// recovery partway through loser rollback, alternating whether the
// interrupted restart's own CLRs survive), restarts again, and verifies
// that the recovered table equals, byte for byte, the latest committed
// snapshot covered by the truncation point — under full structural and
// checksum consistency verification.
//
// This is the ARIES idempotence-of-restart guarantee (repeat history +
// CLRs bound undo work) checked exhaustively rather than at hand-picked
// crash points.
//
// Every boundary is then recovered a second way, with ONLINE restart (open
// after analysis, drain + loser undo in the background), a rotating subset
// re-crashing mid-online-recovery; the recovered state must be identical.
func CrashSweep(opts SweepOpts) (*SweepResult, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	res := &SweepResult{}

	d := Open(Options{PageSize: opts.PageSize, PoolSize: opts.PoolSize})
	tbl, err := d.CreateTable("sweep")
	if err != nil {
		return nil, err
	}
	if opts.SecondaryIndex {
		if err := tbl.CreateIndex(sweepIndexName, sweepIndexExtract); err != nil {
			return nil, err
		}
	}
	// Catalog and root-page setup is not crash-swept: catalog persistence
	// is via non-logged meta writes, so boundaries start after it.
	setupLSN := d.Log().MaxLSN()

	const keySpace = 200
	key := func(i int) string { return fmt.Sprintf("k%04d", i) }
	val := func() string {
		return fmt.Sprintf("v%0*d", 20+rng.Intn(60), rng.Intn(1_000_000))
	}

	model := map[string]string{}
	history := []committedState{{commitLSN: setupLSN, rows: map[string]string{}}}
	for t := 0; t < opts.Txns; t++ {
		overlay := make(map[string]string, len(model))
		for k, v := range model {
			overlay[k] = v
		}
		willRollback := rng.Float64() < 0.15
		tx, err := d.Begin()
		if err != nil {
			return nil, fmt.Errorf("txn %d begin: %w", t, err)
		}
		for op := 0; op < opts.OpsPerTxn; op++ {
			k := key(rng.Intn(keySpace))
			if old, ok := overlay[k]; ok {
				if rng.Intn(2) == 0 || old == "" {
					v := val()
					if err := tbl.Update(tx, []byte(k), []byte(v)); err != nil {
						return nil, fmt.Errorf("txn %d update %s: %w", t, k, err)
					}
					overlay[k] = v
				} else {
					if err := tbl.Delete(tx, []byte(k)); err != nil {
						return nil, fmt.Errorf("txn %d delete %s: %w", t, k, err)
					}
					delete(overlay, k)
				}
			} else {
				v := val()
				if err := tbl.Insert(tx, []byte(k), []byte(v)); err != nil {
					return nil, fmt.Errorf("txn %d insert %s: %w", t, k, err)
				}
				overlay[k] = v
			}
		}
		if willRollback {
			if err := tx.Rollback(); err != nil {
				return nil, fmt.Errorf("txn %d rollback: %w", t, err)
			}
			res.Rollbacks++
		} else {
			before := d.Log().MaxLSN()
			if err := tx.Commit(); err != nil {
				return nil, fmt.Errorf("txn %d commit: %w", t, err)
			}
			commitLSN := wal.NilLSN
			for _, r := range d.Log().Records(before + 1) {
				if r.Type == wal.RecCommit && r.TxID == tx.ID {
					commitLSN = r.LSN
					break
				}
			}
			if commitLSN == wal.NilLSN {
				return nil, fmt.Errorf("txn %d: commit record not found", t)
			}
			model = overlay
			snap := make(map[string]string, len(model))
			for k, v := range model {
				snap[k] = v
			}
			history = append(history, committedState{commitLSN: commitLSN, rows: snap})
			res.Commits++
		}
		if t == opts.Txns/2 {
			d.Checkpoint() // boundaries inside the fuzzy checkpoint too
		}
	}

	// A trailing in-flight loser: boundaries in this tail force restart to
	// undo a transaction whose records are the newest thing on the log.
	loser, err := d.Begin()
	if err != nil {
		return nil, fmt.Errorf("loser begin: %w", err)
	}
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("zloser%02d", i)
		if err := tbl.Insert(loser, []byte(k), []byte("never-committed")); err != nil {
			return nil, fmt.Errorf("loser insert %s: %w", k, err)
		}
	}
	d.Log().ForceAll() // make every record a truncation candidate

	boundaries := recovery.Boundaries(d.Log(), setupLSN)
	res.Records = len(boundaries)
	opts.Logf("sweep: %d txns (%d committed, %d rolled back), %d crash points",
		opts.Txns, res.Commits, res.Rollbacks, len(boundaries))

	for i, L := range boundaries {
		fork := d.Fork()
		fork.SetRedoWorkers(opts.RedoWorkers)
		fork.Log().TruncateTo(L)

		// First restart dies mid-undo after a seed-dependent number of undo
		// steps; on alternate points its CLRs are forced (survive) vs lost.
		interrupted, err := fork.RestartInterrupted(1+i%4, i%2 == 0)
		if err != nil {
			return nil, fmt.Errorf("point %d (LSN %d): interrupted restart: %w", i, L, err)
		}
		if interrupted {
			res.DoubleRecoveries++
		} else {
			fork.Crash() // completed on the first try: crash it again anyway
		}
		if _, err := fork.Restart(); err != nil {
			return nil, fmt.Errorf("point %d (LSN %d): final restart: %w", i, L, err)
		}

		want := stateAt(history, L)
		if err := verifyState(fork, want); err != nil {
			return nil, fmt.Errorf("point %d (LSN %d): %w", i, L, err)
		}
		if opts.SecondaryIndex {
			if err := verifySweepIndex(fork, want); err != nil {
				return nil, fmt.Errorf("point %d (LSN %d): index: %w", i, L, err)
			}
		}
		if err := fork.VerifyConsistency(); err != nil {
			return nil, fmt.Errorf("point %d (LSN %d): consistency: %w", i, L, err)
		}

		// The same boundary again, recovered ONLINE: the engine opens after
		// analysis and the drain/undo finish in the background. A rotating
		// subset re-crashes mid-online-recovery — while the drain and the
		// background loser undo are (possibly) still running — and recovers
		// once more, exercising the no-checkpoint-while-pending crash fence.
		ofork := d.Fork()
		ofork.SetRedoWorkers(opts.RedoWorkers)
		ofork.SetOnlineRestart(true)
		ofork.Log().TruncateTo(L)
		if _, err := ofork.Restart(); err != nil {
			return nil, fmt.Errorf("point %d (LSN %d): online restart: %w", i, L, err)
		}
		if i%3 == 0 {
			ofork.Crash()
			res.OnlineRecrashes++
			if _, err := ofork.Restart(); err != nil {
				return nil, fmt.Errorf("point %d (LSN %d): online re-restart: %w", i, L, err)
			}
		}
		if _, err := ofork.AwaitRecovered(); err != nil {
			return nil, fmt.Errorf("point %d (LSN %d): await recovered: %w", i, L, err)
		}
		if err := verifyState(ofork, want); err != nil {
			return nil, fmt.Errorf("point %d (LSN %d): online: %w", i, L, err)
		}
		if opts.SecondaryIndex {
			if err := verifySweepIndex(ofork, want); err != nil {
				return nil, fmt.Errorf("point %d (LSN %d): online index: %w", i, L, err)
			}
		}
		if err := ofork.VerifyConsistency(); err != nil {
			return nil, fmt.Errorf("point %d (LSN %d): online consistency: %w", i, L, err)
		}
		res.OnlinePoints++
		res.Points++
		if (i+1)%100 == 0 {
			opts.Logf("sweep: %d/%d points verified (%d double recoveries)",
				i+1, len(boundaries), res.DoubleRecoveries)
		}
	}
	return res, nil
}

// stateAt returns the committed rows a crash at boundary L must recover:
// the snapshot of the latest commit whose commit record is ≤ L.
func stateAt(history []committedState, L wal.LSN) map[string]string {
	i := sort.Search(len(history), func(i int) bool {
		return history[i].commitLSN > L
	})
	return history[i-1].rows
}

// sweepIndexName / sweepIndexExtract define the sweep's secondary index:
// the value's trailing 4 bytes (the random digits), a non-unique key that
// moves on every update so index maintenance rides along with every op.
const sweepIndexName = "sweep_by_val"

func sweepIndexExtract(v []byte) []byte {
	if len(v) > 4 {
		v = v[len(v)-4:]
	}
	return append([]byte(nil), v...)
}

// verifySweepIndex checks the recovered secondary index semantically
// against the covered committed snapshot: a locked secondary-order scan
// must return exactly want's rows, each under the key extracted from its
// recovered value (structural base↔index cross-checks are
// VerifyConsistency's job).
func verifySweepIndex(fork *DB, want map[string]string) error {
	tbl, err := fork.Table("sweep")
	if err != nil {
		return err
	}
	tx, err := fork.Begin()
	if err != nil {
		return err
	}
	defer tx.Commit()
	got := map[string]string{}
	err = tbl.ScanIndex(tx, sweepIndexName, func(sk []byte, r Row) (bool, error) {
		if string(sk) != string(sweepIndexExtract(r.Value)) {
			return false, fmt.Errorf("row %q under index key %q, want %q",
				r.Key, sk, sweepIndexExtract(r.Value))
		}
		if _, dup := got[string(r.Key)]; dup {
			return false, fmt.Errorf("row %q returned twice by index scan", r.Key)
		}
		got[string(r.Key)] = string(r.Value)
		return true, nil
	})
	if err != nil {
		return fmt.Errorf("index scan: %w", err)
	}
	if len(got) != len(want) {
		return fmt.Errorf("index scan returned %d rows, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			return fmt.Errorf("index row %q: recovered %q, want %q", k, got[k], v)
		}
	}
	return nil
}

func verifyState(fork *DB, want map[string]string) error {
	tbl, err := fork.Table("sweep")
	if err != nil {
		return err
	}
	tx, err := fork.Begin()
	if err != nil {
		return err
	}
	defer tx.Commit()
	got := map[string]string{}
	err = tbl.Scan(tx, nil, nil, func(r Row) (bool, error) {
		got[string(r.Key)] = string(r.Value)
		return true, nil
	})
	if err != nil {
		return fmt.Errorf("scan: %w", err)
	}
	if len(got) != len(want) {
		return fmt.Errorf("recovered %d rows, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			return fmt.Errorf("row %q: recovered %q, want %q", k, got[k], v)
		}
	}
	return nil
}
