package db

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ariesim/internal/core"
	"ariesim/internal/lock"
	"ariesim/internal/workload"
)

// TestSoakConcurrentWithCrashes is the long-haul exercise: several rounds
// of concurrent mixed workload (every op type, rollbacks, deadlock-victim
// retries, periodic fuzzy checkpoints), each round ended by a crash and a
// verified restart. Run with -short to skip.
func TestSoakConcurrentWithCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"aries-im-record", Options{PageSize: 512, PoolSize: 96}},
		{"aries-im-pagegran", Options{PageSize: 512, PoolSize: 96, Granularity: lock.GranPage}},
		{"aries-kvl", Options{PageSize: 512, PoolSize: 96, Protocol: core.KVL}},
		{"tree-lock", Options{PageSize: 512, PoolSize: 96, UseTreeLock: true}},
	} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			soak(t, cfg.opts, 3, 4, 150)
		})
	}
}

func soak(t *testing.T, opts Options, rounds, workers, opsPerWorker int) {
	t.Helper()
	d := Open(opts)
	tbl, err := d.CreateTable("soak")
	if err != nil {
		t.Fatal(err)
	}
	committed := map[string]string{}
	var mu sync.Mutex

	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				gen := workload.New(workload.Spec{
					Keys: 400, ReadFrac: 0.3, InsertFrac: 0.4, DeleteFrac: 0.2,
					Seed: int64(round*100 + w),
				})
				rng := rand.New(rand.NewSource(int64(round*31 + w)))
				for i := 0; i < opsPerWorker; {
					tx := d.MustBegin()
					staged := map[string]*string{}
					aborted := false
					for j := 0; j < rng.Intn(5)+1 && !aborted; j++ {
						op := gen.Next()
						i++
						switch op.Kind {
						case workload.Insert:
							err := tbl.Insert(tx, op.Key, op.Value)
							switch {
							case err == nil:
								s := string(op.Value)
								staged[string(op.Key)] = &s
							case errors.Is(err, ErrDuplicate):
							case errors.Is(err, lock.ErrDeadlock):
								aborted = true
							default:
								t.Errorf("insert: %v", err)
								aborted = true
							}
						case workload.Delete:
							err := tbl.Delete(tx, op.Key)
							switch {
							case err == nil:
								staged[string(op.Key)] = nil
							case errors.Is(err, ErrNotFound):
							case errors.Is(err, lock.ErrDeadlock):
								aborted = true
							default:
								t.Errorf("delete: %v", err)
								aborted = true
							}
						case workload.ScanShort:
							n := 0
							err := tbl.Scan(tx, op.Key, nil, func(Row) (bool, error) {
								n++
								return n < 16, nil
							})
							if err != nil && !errors.Is(err, lock.ErrDeadlock) {
								t.Errorf("scan: %v", err)
							}
							if err != nil {
								aborted = true
							}
						default:
							if _, err := tbl.Get(tx, op.Key); err != nil &&
								!errors.Is(err, ErrNotFound) && !errors.Is(err, lock.ErrDeadlock) {
								t.Errorf("get: %v", err)
							}
						}
					}
					if aborted || rng.Intn(6) == 0 {
						_ = tx.Rollback()
						continue
					}
					mu.Lock()
					if err := tx.Commit(); err != nil {
						mu.Unlock()
						t.Errorf("commit: %v", err)
						return
					}
					for key, val := range staged {
						if val == nil {
							delete(committed, key)
						} else {
							committed[key] = *val
						}
					}
					mu.Unlock()
					if rng.Intn(40) == 0 {
						d.Checkpoint()
					}
				}
			}(w)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(120 * time.Second):
			t.Fatal("soak round hung")
		}
		if t.Failed() {
			return
		}
		d.Crash()
		if _, err := d.Restart(); err != nil {
			t.Fatalf("round %d restart: %v", round, err)
		}
		tbl, err = d.Table("soak")
		if err != nil {
			t.Fatal(err)
		}
		if err := d.VerifyConsistency(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		rows := map[string]string{}
		r := d.MustBegin()
		_ = tbl.Scan(r, []byte(""), nil, func(row Row) (bool, error) {
			rows[string(row.Key)] = string(row.Value)
			return true, nil
		})
		_ = r.Commit()
		if len(rows) != len(committed) {
			t.Fatalf("round %d: %d rows vs %d committed", round, len(rows), len(committed))
		}
		for key, val := range committed {
			if rows[key] != val {
				t.Fatalf("round %d: %q = %q want %q", round, key, rows[key], val)
			}
		}
	}
	if d.Stats().PageSplits.Load() == 0 {
		t.Error("soak caused no splits; workload too small")
	}
	_ = fmt.Sprintf
}
