// Package db assembles the full engine: disk, write-ahead log, buffer
// pool, lock manager, transaction manager, record manager, and the
// ARIES/IM index manager, behind a small table-oriented API.
//
// The engine exposes the failure model the paper assumes: Crash() discards
// every volatile structure (buffer pool, lock table, transaction table,
// unforced log tail); Restart() rebuilds them and runs ARIES restart
// recovery. Stable storage (the simulated disk and the forced log prefix)
// persists across the pair.
package db

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"ariesim/internal/buffer"
	"ariesim/internal/core"
	"ariesim/internal/data"
	"ariesim/internal/lock"
	"ariesim/internal/mvcc"
	"ariesim/internal/recovery"
	"ariesim/internal/storage"
	"ariesim/internal/trace"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

// ErrNotFound reports a missing row.
var ErrNotFound = errors.New("db: key not found")

// ErrDuplicate reports a primary-key violation.
var ErrDuplicate = core.ErrDuplicate

// ErrCrashed reports that the engine is down (after Crash, or after an
// interrupted restart) and must be Restarted before accepting work.
var ErrCrashed = errors.New("db: engine is crashed; call Restart first")

// ErrRecovering reports an operation that genuinely cannot proceed while
// online restart recovery is still running in the background — DDL and
// whole-engine verification, which would observe loser data that the
// background undo has not yet rolled back. It wraps ErrCrashed so generic
// callers degrade the same way, but the engine is UP: ordinary
// transactions proceed normally, and retry loops (db.RunTxn) distinguish
// "down" from "degraded" via errors.Is and retry immediately instead of
// parking on AwaitUp.
var ErrRecovering = fmt.Errorf("db: online recovery in progress: %w", ErrCrashed)

// ErrMediaFailure reports a page that could not be rebuilt by media
// recovery — the disk copy is corrupt and the image copy + log replay
// also failed. Data loss is possible; the error wraps the cause.
var ErrMediaFailure = errors.New("db: unrecoverable media failure")

// Options configures an engine.
type Options struct {
	// PageSize in bytes (default 4096).
	PageSize int
	// PoolSize in frames (default 256).
	PoolSize int
	// Granularity of data locking (record by default; page for coarse).
	Granularity lock.Granularity
	// Protocol selects the index locking protocol for every index:
	// core.DataOnly (ARIES/IM, default), core.IndexSpecific, core.KVL or
	// core.SystemR (baselines).
	Protocol core.Protocol
	// UseTreeLock enables the §5 concurrent-SMO extension.
	UseTreeLock bool
	// LockWaitTimeout bounds every unconditional lock wait; a request
	// still queued after it fails with lock.ErrLockTimeout. Zero keeps
	// waits unbounded (deadlock detection alone resolves cycles).
	LockWaitTimeout time.Duration
	// LogForceDelay simulates the latency of one physical log flush.
	// Zero (the default) keeps forces instantaneous, preserving historical
	// behavior; a realistic value (50–500µs) makes group commit measurable.
	LogForceDelay time.Duration
	// NoGroupCommit disables log-force coalescing: every committer whose
	// record is not yet stable pays a full serial flush. The concurrency
	// benchmark's baseline configuration.
	NoGroupCommit bool
	// LockShards sets the lock-manager shard count (rounded up to a power
	// of two). Zero uses lock.DefaultShards; one reproduces the historical
	// single-mutex lock manager (the benchmark baseline).
	LockShards int
	// BufferShards sets the buffer-pool frame-table shard count (rounded
	// up to a power of two, clamped so every shard owns at least one
	// frame). Zero uses buffer.DefaultShards; one gives a single-mutex
	// frame table.
	BufferShards int
	// BufferSerialIO makes the pool run miss reads and eviction writebacks
	// while holding the frame-table lock — the seed pool's behavior, kept
	// as the buffer benchmark's baseline. Pair with BufferShards: 1.
	BufferSerialIO bool
	// CleanerInterval enables the background page cleaner, which flushes
	// dirty frames ahead of the clock hand every interval so foreground
	// evictions find clean victims and checkpoint DPTs stay small. Zero
	// (the default) disables it, preserving historical behavior.
	CleanerInterval time.Duration
	// CleanerBatch is the per-shard page budget of one cleaner pass
	// (default buffer.DefaultCleanerBatch).
	CleanerBatch int
	// PageIODelay simulates the latency of one page read or write on the
	// data device (default 0 keeps tier-1 tests instantaneous). With a
	// realistic value the buffer benchmark measures I/O overlap, not
	// map-lookup speed.
	PageIODelay time.Duration
	// RedoWorkers sets the restart redo parallelism: zero or one runs the
	// classic single-threaded redo pass; N > 1 partitions the dirty page
	// table across N workers by page id (see recovery.RestartOpts).
	RedoWorkers int
	// RedoPrefetch sets the restart redo prefetcher's read-ahead depth in
	// pages. Zero uses recovery.DefaultRedoPrefetch when RedoWorkers > 1;
	// negative disables prefetching.
	RedoPrefetch int
	// OnlineRestart makes Restart open the engine right after the analysis
	// pass: redo happens on demand at buffer-fix time (plus a background
	// drain), and loser undo runs in the background under reinstated locks.
	// Requires the default data-only protocol (lock reinstatement derives
	// record locks from the log, which only ARIES/IM's "key lock IS the
	// record lock" rule permits); other protocols restart offline.
	OnlineRestart bool
	// Stats receives instrumentation; one is created when nil.
	Stats *trace.Stats
}

func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = storage.DefaultPageSize
	}
	if o.PoolSize == 0 {
		o.PoolSize = 256
	}
	if o.LockShards == 0 {
		o.LockShards = lock.DefaultShards
	}
	if o.Stats == nil {
		o.Stats = &trace.Stats{}
	}
	return o
}

// catalog is the persisted schema. It stands in for the host system's
// catalog (see DESIGN.md §4) and lives in the disk's meta area.
type catalog struct {
	NextTableID uint64         `json:"next_table_id"`
	NextIndexID uint32         `json:"next_index_id"`
	Tables      []catalogTable `json:"tables"`
}

type catalogTable struct {
	Name      string         `json:"name"`
	ID        uint64         `json:"id"`
	FirstPage uint32         `json:"first_page"`
	Indexes   []catalogIndex `json:"indexes"`
}

type catalogIndex struct {
	Name      string `json:"name"`
	ID        uint32 `json:"id"`
	Root      uint32 `json:"root"`
	Unique    bool   `json:"unique"`
	Secondary bool   `json:"secondary"`
}

// DB is an engine instance.
type DB struct {
	opts  Options
	stats *trace.Stats
	disk  *storage.Disk
	log   *wal.Log

	// epochMu serializes Crash (exclusive) against in-flight commit
	// acknowledgements (shared). Commits hold it in read mode across the
	// epoch check, the commit force, and the acknowledgement, so a crash
	// can never land inside that window — yet commits run concurrently
	// with each other, which is what lets group commit batch their log
	// forces. Lock order: epochMu before mu; nothing acquires them in the
	// reverse order.
	epochMu sync.RWMutex

	mu    sync.Mutex
	locks *lock.Manager
	tm    *txn.Manager
	pool  *buffer.Pool
	im    *core.Manager
	dm    *data.Manager
	// vs is this epoch's MVCC version store (see internal/mvcc and
	// snapshot.go). buildVolatile replaces it wholesale, so restart and
	// standby promotion invalidate every chain for free; the transaction
	// manager's version hook points at the same store, keeping a zombie
	// transaction's pushes on its own orphaned epoch.
	vs     *mvcc.Store
	cat    catalog
	tables map[string]*Table
	downed bool
	// replica marks an unpromoted standby (see replica.go): closed to
	// transactions like a crashed engine, opened by Promote.
	replica bool
	// commitGate, when set, must confirm each commit LSN against the
	// standby before the commit is acknowledged (semi-sync replication).
	commitGate func(wal.LSN) error
	// ackedCommits/ackedMax are the loss-accounting ledger: commits this
	// engine acknowledged to clients (see AckedCommits).
	ackedCommits uint64
	ackedMax     wal.LSN
	// recov is the live online-restart coordinator, non-nil from an online
	// Restart until the next Crash/reopen. It may already be done (its
	// Recovering() false); Crash aborts it so a zombie coordinator never
	// checkpoints the new epoch.
	recov *recovery.Online
	// upCh is closed while the engine is up; Crash replaces it with an
	// open channel and Restart closes that one. AwaitUp blocks on it.
	upCh chan struct{}

	// img is the latest image copy, the restore base for automatic media
	// recovery. Nil means recovery replays each page's full log history
	// (valid here because the simulated log is never pruned).
	imgMu sync.Mutex
	img   *recovery.ImageCopy

	// extractors remembers every secondary-index extractor registered this
	// process ("table/index" → fn), so reopenLocked re-binds them during
	// restart — BEFORE the engine reopens to writers, which would otherwise
	// race OpenSecondaryIndex and hit the unbound placeholder. Extractors
	// are code, not data: a fresh process (or OpenStandby) still re-binds
	// via OpenSecondaryIndex. Guarded by mu; Fork inherits a copy (the
	// forked engine is "the same application" reopening its state).
	extractors map[string]func(value []byte) []byte
}

// Open creates a fresh engine on a new simulated disk.
func Open(opts Options) *DB {
	opts = opts.withDefaults()
	d := &DB{
		opts:  opts,
		stats: opts.Stats,
		disk:  storage.NewDisk(opts.PageSize),
		log:   wal.NewLog(opts.Stats),
		cat:   catalog{NextTableID: 1, NextIndexID: 1},
	}
	d.log.SetForceDelay(opts.LogForceDelay)
	d.log.SetGroupCommit(!opts.NoGroupCommit)
	d.disk.SetIODelay(opts.PageIODelay)
	lock.RegisterTraceNames()
	d.upCh = make(chan struct{})
	close(d.upCh)
	d.buildVolatile()
	return d
}

func (d *DB) buildVolatile() {
	// Capture this epoch's stable handles: the pool's media recoverer must
	// keep healing against the disk and log the pool itself writes to, even
	// after a later Crash swaps d.disk/d.log to their successors — a
	// straggler from the old epoch must never touch the new one.
	disk, log := d.disk, d.log
	if d.pool != nil {
		// A predecessor pool's cleaner must not keep writing to the
		// orphaned epoch's disk after the engine moves on.
		d.pool.StopCleaner()
	}
	d.locks = lock.NewManagerSharded(d.stats, d.opts.LockShards)
	d.locks.SetWaitTimeout(d.opts.LockWaitTimeout)
	d.tm = txn.NewManager(log, d.locks)
	d.pool = buffer.NewPoolWith(disk, log, buffer.Config{
		Capacity: d.opts.PoolSize,
		Shards:   d.opts.BufferShards,
		SerialIO: d.opts.BufferSerialIO,
	}, d.stats)
	if d.opts.CleanerInterval > 0 {
		d.pool.StartCleaner(d.opts.CleanerInterval, d.opts.CleanerBatch)
	}
	d.im = core.NewManager(d.pool, d.stats)
	d.dm = data.NewManager(d.pool, d.opts.Granularity, d.stats)
	d.tm.SetUndoer(&undoRouter{im: d.im, dm: d.dm})
	d.vs = mvcc.NewStore(d.stats)
	// Pre-epoch commits live in pages with no chains; start the snapshot
	// watermark past them so a fresh snapshot orders after every one.
	d.vs.StartAt(log.MaxLSN())
	d.tm.SetVersionHook(d.vs)
	d.tm.SetStats(d.stats)
	d.pool.SetMediaRecoverer(func(id storage.PageID) error {
		return d.recoverPageOn(disk, log, id)
	})
	d.tables = make(map[string]*Table)
	d.downed = false
}

// undoRouter dispatches rollback work to the owning resource manager. It
// holds the managers of its own epoch (not the DB) so a transaction rolling
// back across a Crash keeps undoing against the world it modified.
type undoRouter struct {
	im *core.Manager
	dm *data.Manager
}

func (r *undoRouter) Undo(tx *txn.Tx, rec *wal.Record) error {
	switch {
	case rec.Op >= wal.OpIdxInsertKey && rec.Op <= wal.OpIdxUnfreePage,
		rec.Op == wal.OpFSMAlloc, rec.Op == wal.OpFSMFree:
		return r.im.Undo(tx, rec)
	case rec.Op >= wal.OpDataFormat && rec.Op <= wal.OpDataFree:
		return r.dm.Undo(tx, rec)
	default:
		return fmt.Errorf("db: no undo route for op %s", rec.Op)
	}
}

// Stats returns the engine's instrumentation sink.
func (d *DB) Stats() *trace.Stats { return d.stats }

// Log exposes the write-ahead log (benches, verification). Crash installs
// a successor log, so don't cache the result across a crash.
func (d *DB) Log() *wal.Log {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log
}

// Disk exposes the simulated disk (image copies, media-failure injection).
// Crash installs a successor disk, so don't cache the result across a crash.
func (d *DB) Disk() *storage.Disk {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.disk
}

// Pool exposes the buffer pool (checkpoint flushes in tests).
func (d *DB) Pool() *buffer.Pool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pool
}

// Begin starts a transaction. After a Crash (and before Restart) it fails
// with ErrCrashed so callers can degrade gracefully instead of dying.
func (d *DB) Begin() (*txn.Tx, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.downed {
		return nil, ErrCrashed
	}
	return d.tm.Begin(), nil
}

// MustBegin starts a transaction, panicking on ErrCrashed. Convenience
// for tests, benches, and examples that control the crash schedule.
func (d *DB) MustBegin() *txn.Tx {
	tx, err := d.Begin()
	if err != nil {
		panic(err)
	}
	return tx
}

// TakeImageCopy takes a fuzzy image copy of the disk (no quiescing; the
// log makes it action-consistent), installs it as the restore base for
// automatic media recovery, and returns it. Corrupt on-disk pages are
// excluded from the image — they are rebuilt from the log instead.
func (d *DB) TakeImageCopy() *recovery.ImageCopy {
	d.mu.Lock()
	disk, log := d.disk, d.log
	d.mu.Unlock()
	img := recovery.TakeImageCopy(disk, log)
	d.imgMu.Lock()
	d.img = img
	d.imgMu.Unlock()
	return img
}

// recoverPage is the engine's media recoverer: restore the page from the
// latest image copy (or from scratch when none exists) and roll it forward
// from the stable log. The buffer pool invokes it when a page read fails
// its checksum or hits a permanent device error; VerifyConsistency invokes
// it from its checksum sweep.
func (d *DB) recoverPageOn(disk *storage.Disk, log *wal.Log, id storage.PageID) error {
	return d.recoverPagesOn(disk, log, []storage.PageID{id})
}

// recoverPagesOn rebuilds a batch of damaged pages in one forward log scan
// (recovery.RecoverPages), so a multi-page media failure — a dying device
// corrupting a whole region — costs one scan instead of one per page.
func (d *DB) recoverPagesOn(disk *storage.Disk, log *wal.Log, ids []storage.PageID) error {
	d.imgMu.Lock()
	img := d.img
	d.imgMu.Unlock()
	if img == nil {
		// No archive taken yet: replay each page's entire log history onto
		// a zero page. Valid because the simulated log is never pruned.
		img = &recovery.ImageCopy{Pages: map[storage.PageID][]byte{}}
	}
	var err error
	for attempt := 0; attempt < 4; attempt++ {
		if _, err = recovery.RecoverPages(disk, log, img, ids); err == nil {
			d.stats.MediaRecoveries.Add(uint64(len(ids)))
			return nil
		}
		if !errors.Is(err, storage.ErrTransientIO) {
			break
		}
	}
	return fmt.Errorf("%w: pages %v: %v", ErrMediaFailure, ids, err)
}

// Checkpoint takes a fuzzy checkpoint (a no-op while the engine is down).
//
// While online recovery is pending the checkpoint is skipped (and counted):
// its DPT would omit the planned-but-not-yet-resident pages, so a re-crash
// would analyze from it and lose their redo. The coordinator takes the
// bounding checkpoint itself once drain and undo finish.
func (d *DB) Checkpoint() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.downed {
		return
	}
	if d.recoveringLocked() {
		d.stats.CheckpointsSkippedRecovering.Add(1)
		return
	}
	d.tm.Checkpoint(d.pool)
}

// recoveringLocked reports whether online recovery is still pending.
// Caller holds d.mu.
func (d *DB) recoveringLocked() bool {
	return d.recov != nil && d.recov.Recovering()
}

// abortRecoveryLocked fences off a live online-restart coordinator: its
// background goroutines observe the abort flag and stop without touching
// the hook or taking the bounding checkpoint. Caller holds d.mu.
func (d *DB) abortRecoveryLocked() {
	if d.recov != nil {
		d.recov.Abort()
		d.recov = nil
	}
}

// Recovering reports whether the engine is up but still recovering in the
// background (online restart). Ordinary transactions run; DDL and
// VerifyConsistency fail with ErrRecovering until AwaitRecovered.
func (d *DB) Recovering() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.downed && d.recoveringLocked()
}

// AwaitRecovered blocks until the engine is up AND any background recovery
// has finished, returning the completed restart report. After an offline
// restart it returns (nil, nil) as soon as the engine is up. If a re-crash
// aborts an online recovery mid-flight, it waits for the next restart's
// recovery instead of reporting the aborted one.
func (d *DB) AwaitRecovered() (*recovery.Report, error) {
	for {
		d.AwaitUp()
		d.mu.Lock()
		o := d.recov
		d.mu.Unlock()
		if o == nil {
			return nil, nil
		}
		rep, err := o.Wait()
		if errors.Is(err, recovery.ErrRecoveryAborted) {
			d.mu.Lock()
			superseded := d.recov != o
			d.mu.Unlock()
			if superseded {
				continue // a crash raced us; await the successor recovery
			}
		}
		return rep, err
	}
}

// AwaitUpFor is AwaitUp with a deadline: it returns true once the engine
// is up, or false if timeout elapses first. A non-positive timeout waits
// forever.
func (d *DB) AwaitUpFor(timeout time.Duration) bool {
	d.mu.Lock()
	ch := d.upCh
	d.mu.Unlock()
	if timeout <= 0 {
		<-ch
		return true
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-ch:
		return true
	case <-t.C:
		return false
	}
}

// saveCatalog persists the schema to the disk meta area.
func (d *DB) saveCatalog() {
	b, err := json.Marshal(d.cat)
	if err != nil {
		panic(fmt.Sprintf("db: catalog marshal: %v", err))
	}
	d.disk.WriteMeta(b)
}

// Table is a handle on one table: a record heap plus a unique primary
// index over the row key, with optional secondary indexes.
type Table struct {
	db      *DB
	name    string
	id      uint64
	data    *data.Table
	primary *core.Index
	// vs is the version store of the epoch this handle was built in. Kept
	// on the handle (not read through db) so a zombie writer holding a
	// pre-crash handle pushes versions into its own orphaned store, never
	// into the successor epoch's.
	vs *mvcc.Store

	mu          sync.Mutex
	secondaries []*secondary
}

type secondary struct {
	name    string
	ix      *core.Index
	extract func(value []byte) []byte
	// bound reports whether extract is real code: false after a restart
	// until OpenSecondaryIndex re-binds it (the placeholder panics).
	// Verification skips extractor checks on unbound indexes.
	bound bool
}

// CreateTable creates a table with its primary index in one internal
// transaction.
func (d *DB) CreateTable(name string) (*Table, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.downed {
		return nil, ErrCrashed
	}
	if d.recoveringLocked() {
		// DDL during background recovery would race the drain's page fixes
		// and the losers' undo over the FSM and catalog; callers retry.
		return nil, ErrRecovering
	}
	if _, dup := d.tables[name]; dup {
		return nil, fmt.Errorf("db: table %q exists", name)
	}
	tx := d.tm.Begin()
	tableID := d.cat.NextTableID
	indexID := d.cat.NextIndexID
	dt, err := d.dm.CreateTable(tx, tableID)
	if err != nil {
		_ = tx.Rollback()
		return nil, err
	}
	ix, err := d.im.CreateIndex(tx, d.indexConfig(indexID, true))
	if err != nil {
		_ = tx.Rollback()
		return nil, err
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	d.cat.NextTableID++
	d.cat.NextIndexID++
	d.cat.Tables = append(d.cat.Tables, catalogTable{
		Name: name, ID: tableID, FirstPage: uint32(dt.FirstPage),
		Indexes: []catalogIndex{{Name: name + "_pk", ID: indexID, Root: uint32(ix.Root()), Unique: true}},
	})
	d.saveCatalog()
	t := &Table{db: d, name: name, id: tableID, data: dt, primary: ix, vs: d.vs}
	d.tables[name] = t
	return t, nil
}

func (d *DB) indexConfig(id uint32, unique bool) core.Config {
	return core.Config{
		ID: id, Unique: unique, Protocol: d.opts.Protocol,
		Granularity: d.opts.Granularity, UseTreeLock: d.opts.UseTreeLock,
	}
}

// Table returns an open table handle by name.
func (d *DB) Table(name string) (*Table, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t, ok := d.tables[name]
	if !ok {
		return nil, fmt.Errorf("db: no table %q", name)
	}
	return t, nil
}

// TableFor returns the table handle belonging to tx's epoch, or ErrCrashed
// when the engine has crashed under tx. Retry loops that cache nothing
// across restarts (db.RunTxn bodies) fetch their handles through this so a
// new-epoch transaction never operates through a pre-crash handle — the
// handle's pool and disk would be the orphaned ones — and vice versa.
func (d *DB) TableFor(tx *txn.Tx, name string) (*Table, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.downed || !d.tm.Owns(tx) {
		return nil, ErrCrashed
	}
	t, ok := d.tables[name]
	if !ok {
		return nil, fmt.Errorf("db: no table %q", name)
	}
	return t, nil
}

// AddSecondaryIndex creates a non-unique secondary index over extract(value).
// It is CreateIndex under its historical name: the index is backfilled from
// any existing rows in one transaction. The extractor is code, not data:
// after Restart it must be re-registered with the same name via
// OpenSecondaryIndex.
func (t *Table) AddSecondaryIndex(name string, extract func(value []byte) []byte) error {
	return t.CreateIndex(name, extract)
}

// OpenSecondaryIndex re-binds a secondary index's extractor after restart.
// The binding is also remembered process-wide, so later restarts of this
// engine (and its forks) re-bind automatically.
func (t *Table) OpenSecondaryIndex(name string, extract func(value []byte) []byte) error {
	t.db.registerExtractor(t.name, name, extract)
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.secondaries {
		if s.name == name {
			s.extract = extract
			s.bound = true
			return nil
		}
	}
	return fmt.Errorf("db: table %q has no secondary index %q", t.name, name)
}

// row codec: u16 keyLen | key | value.
func encodeRow(key, value []byte) []byte {
	b := make([]byte, 2+len(key)+len(value))
	b[0] = byte(len(key))
	b[1] = byte(len(key) >> 8)
	copy(b[2:], key)
	copy(b[2+len(key):], value)
	return b
}

func decodeRow(rec []byte) (key, value []byte, err error) {
	if len(rec) < 2 {
		return nil, nil, fmt.Errorf("db: row too short")
	}
	kl := int(rec[0]) | int(rec[1])<<8
	if len(rec) < 2+kl {
		return nil, nil, fmt.Errorf("db: row truncated")
	}
	return rec[2 : 2+kl], rec[2+kl:], nil
}

// Insert stores a row. The record manager X-locks the new record for
// commit duration; under data-only locking that same lock protects every
// index key referencing it, so the index inserts add only instant
// next-key locks (the paper's minimal-locking claim).
func (t *Table) Insert(tx *txn.Tx, key, value []byte) error {
	if tx.Snapshot() != nil {
		return fmt.Errorf("%w: insert %q", ErrReadOnlyTxn, key)
	}
	save := tx.Savepoint()
	rid, err := t.data.Insert(tx, encodeRow(key, value))
	if err != nil {
		return err
	}
	// Version push BEFORE the index insert: the heap record is not yet
	// reachable by key, so no snapshot reader can observe this insert
	// until the chain that hides it exists. A failure from here on rolls
	// back to save, and DropTxSince discards the version with the pages.
	if err := t.pushVersion(tx, key, true, value, t.insertSeed(tx, key)); err != nil {
		if rbErr := tx.RollbackTo(save); rbErr != nil {
			return fmt.Errorf("db: version push failed (%v); rollback failed: %w", err, rbErr)
		}
		return err
	}
	if err := t.primary.Insert(tx, storage.Key{Val: key, RID: rid}); err != nil {
		if rbErr := tx.RollbackTo(save); rbErr != nil {
			return fmt.Errorf("db: insert failed (%v); rollback failed: %w", err, rbErr)
		}
		return err
	}
	t.mu.Lock()
	secs := append([]*secondary(nil), t.secondaries...)
	t.mu.Unlock()
	for _, s := range secs {
		if err := s.ix.Insert(tx, storage.Key{Val: s.extract(value), RID: rid}); err != nil {
			if rbErr := tx.RollbackTo(save); rbErr != nil {
				return fmt.Errorf("db: secondary insert failed (%v); rollback failed: %w", err, rbErr)
			}
			return err
		}
	}
	return nil
}

// recordLockNeeded reports whether reads must lock records explicitly:
// under ARIES/IM data-only locking the index key lock IS the record lock,
// so the record manager skips it; under every index-specific protocol
// (including the baselines) "the record manager would have to do that
// locking also" (§2.1).
func (t *Table) recordLockNeeded() bool {
	return t.db.opts.Protocol != core.DataOnly
}

// fetchRow is the single locked read-path call site: every repeatable-read
// and cursor-stability record fetch (Get, Delete's positioning read, Scan,
// ScanSecondary, GetCS, ScanPrefix) resolves its RID through here, so the
// lock-or-not decision — and its divergence from the lock-free snapshot
// path, which replaces this call entirely — lives in exactly one place.
func (t *Table) fetchRow(tx *txn.Tx, rid storage.RID) (key, value []byte, err error) {
	rec, err := t.data.Fetch(tx, rid, t.recordLockNeeded())
	if err != nil {
		return nil, nil, err
	}
	return decodeRow(rec)
}

// Get fetches a row by primary key at repeatable-read isolation. The index
// fetch locks the key — which under data-only locking is the record lock,
// so the record manager does not lock again (§2.1). Under a snapshot
// transaction the read routes to the lock-free MVCC path instead.
func (t *Table) Get(tx *txn.Tx, key []byte) ([]byte, error) {
	if s := tx.Snapshot(); s != nil {
		return t.snapshotGet(s.LSN, key)
	}
	res, _, err := t.primary.Fetch(tx, key, core.EQ)
	if err != nil {
		return nil, err
	}
	if !res.Found {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	_, value, err := t.fetchRow(tx, res.Key.RID)
	return value, err
}

// Delete removes a row by primary key. The positioning fetch locks the
// key X up front (fetch-for-update): fetching S and upgrading during the
// delete would let two deleters of the same key each hold S and wait for
// the other's X — a guaranteed conversion deadlock under contention.
func (t *Table) Delete(tx *txn.Tx, key []byte) error {
	if tx.Snapshot() != nil {
		return fmt.Errorf("%w: delete %q", ErrReadOnlyTxn, key)
	}
	save := tx.Savepoint()
	res, _, err := t.primary.FetchForUpdate(tx, key, core.EQ)
	if err != nil {
		return err
	}
	if !res.Found {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	rid := res.Key.RID
	_, value, err := t.fetchRow(tx, rid)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		if rbErr := tx.RollbackTo(save); rbErr != nil {
			return fmt.Errorf("db: delete failed (%v); rollback failed: %w", err, rbErr)
		}
		return err
	}
	// Tombstone push BEFORE the ghosting update: a snapshot reader that
	// observes any trace of this delete must find the chain that hides it.
	// The row image in hand is the committed state (the X key lock from
	// the positioning fetch excludes other writers), so a chain seeded
	// here needs no page probe.
	if err := t.pushVersion(tx, key, false, nil, func() (bool, []byte, uint64, error) {
		return true, value, t.vs.Seq(t.id), nil
	}); err != nil {
		return fail(err)
	}
	if err := t.data.Delete(tx, rid, false); err != nil { // X already held by the fetch
		return fail(err)
	}
	if err := t.primary.Delete(tx, storage.Key{Val: res.Key.Val, RID: rid}); err != nil {
		return fail(err)
	}
	t.mu.Lock()
	secs := append([]*secondary(nil), t.secondaries...)
	t.mu.Unlock()
	for _, s := range secs {
		if err := s.ix.Delete(tx, storage.Key{Val: s.extract(value), RID: rid}); err != nil {
			return fail(err)
		}
	}
	return nil
}

// Update replaces a row's value (delete + insert; the RID may change).
func (t *Table) Update(tx *txn.Tx, key, value []byte) error {
	if err := t.Delete(tx, key); err != nil {
		return err
	}
	return t.Insert(tx, key, value)
}

// Row is one scan result.
type Row struct {
	Key   []byte
	Value []byte
}

// Scan iterates rows with from <= key <= to (nil to = unbounded) in key
// order at repeatable-read isolation: every row touched stays S-locked to
// commit, and next-key locking protects the range's gaps from phantoms.
// Under a snapshot transaction the scan routes to the lock-free MVCC
// merge of the page cursor with the version chains.
func (t *Table) Scan(tx *txn.Tx, from, to []byte, fn func(Row) (bool, error)) error {
	if s := tx.Snapshot(); s != nil {
		return t.snapshotScan(s.LSN, from, to, fn)
	}
	res, cur, err := t.primary.Fetch(tx, from, core.GE)
	if err != nil {
		return err
	}
	for {
		if res.EOF || (to != nil && string(res.Key.Val) > string(to)) {
			return nil
		}
		k, v, err := t.fetchRow(tx, res.Key.RID)
		if err != nil {
			return err
		}
		cont, err := fn(Row{Key: append([]byte(nil), k...), Value: append([]byte(nil), v...)})
		if err != nil || !cont {
			return err
		}
		res, err = t.primary.FetchNext(tx, cur)
		if err != nil {
			return err
		}
	}
}

// ScanSecondary iterates (secondaryKey, row) pairs in secondary-key order.
// It is ScanIndexRange under its historical name; snapshot transactions are
// served by the lock-free chain merge like any other index scan.
func (t *Table) ScanSecondary(tx *txn.Tx, name string, from, to []byte, fn func(secKey []byte, r Row) (bool, error)) error {
	return t.ScanIndexRange(tx, name, from, to, fn)
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// PrimaryIndex exposes the primary index (benches, verification).
func (t *Table) PrimaryIndex() *core.Index { return t.primary }

// DataTable exposes the record heap (verification).
func (t *Table) DataTable() *data.Table { return t.data }

// Crash discards every volatile structure: the unforced log tail, the
// buffer pool contents, the lock table, and the transaction table. Stable
// storage survives. The engine refuses work until Restart.
//
// Crash is safe under live traffic. Goroutines still inside the engine
// ("zombies" of the crashed epoch) are fenced off rather than waited for:
// the disk and log are cloned at the crash instant and the engine continues
// on the clones, so everything a zombie writes afterwards lands on the
// orphaned originals — exactly the in-flight I/O a real power cut loses.
// The lock manager is shut down so zombies blocked in lock waits wake with
// lock.ErrShutdown and unwind; commits racing the crash are fenced by
// epochMu (see commitAcked), so a commit either acks before the crash
// instant and is durable, or observes the crash and fails with ErrCrashed.
//
// The disk is cloned before the log: WAL discipline forces the log before
// any page write, so every page present in the cloned disk is covered by
// the cloned log's stable prefix (the reverse order could capture a stolen
// page whose undo information misses the log snapshot).
//
// The log clone is also the crash fence for the lock-free append pipeline:
// Clone holds the log's crash fence exclusively, draining zombie appenders
// out of their claim→publish window, so the clone is truncated at the
// contiguity watermark — never mid-hole — and a reservation claimed but not
// yet published at the crash instant simply never existed on the successor.
// Zombie flushes parked on the orphaned original die by flush-generation
// fencing, and a commit whose flush the crash killed surfaces
// wal.ErrLogCrashed instead of a silently dead LSN.
func (d *DB) Crash() {
	// Exclusive epoch lock: wait out commits already past their epoch check
	// (each holds the read side for at most one log force) and block new
	// ones, so no commit acks against a log this crash is about to discard.
	d.epochMu.Lock()
	defer d.epochMu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.downed {
		return
	}
	// Crash fence for the page cleaner: stop it and wait out its in-flight
	// pass BEFORE cloning the disk, so the successor disk can never receive
	// a cleaner write. (Zombie foreground I/O still lands on the orphaned
	// original, as for any in-flight write a power cut loses.)
	d.pool.StopCleaner()
	// A crash mid-online-recovery kills the coordinator with everything
	// else that is volatile: the plan, the reinstated locks, the background
	// losers all die here, and the next restart rediscovers them from the
	// pre-crash checkpoint (no checkpoint was taken while it was pending).
	d.abortRecoveryLocked()
	oldDisk := d.disk
	d.disk = oldDisk.Clone()
	if inj := oldDisk.Injector(); inj != nil {
		d.disk.SetInjector(inj) // the hardware stays hostile across the crash
	}
	d.log = d.log.Clone(d.stats)
	d.log.Crash()
	d.locks.Shutdown()
	d.downed = true
	d.upCh = make(chan struct{})
}

// AwaitUp blocks until the engine is up (i.e. not crashed). It returns
// immediately on a running engine; after a Crash it waits for the Restart.
func (d *DB) AwaitUp() {
	d.mu.Lock()
	ch := d.upCh
	d.mu.Unlock()
	<-ch
}

// markUpLocked declares the engine up, releasing AwaitUp callers.
func (d *DB) markUpLocked() {
	if d.upCh == nil { // DB built by hand (tests); treat as freshly up
		ch := make(chan struct{})
		close(ch)
		d.upCh = ch
		return
	}
	select {
	case <-d.upCh:
		// already closed
	default:
		close(d.upCh)
	}
}

// reopenLocked rebuilds the volatile state and reopens the catalog and
// table handles; the caller holds d.mu and then runs restart recovery.
func (d *DB) reopenLocked() error {
	// A restart over a still-recovering engine (legal: tests and sweeps
	// restart without an intervening Crash) orphans the old coordinator.
	d.abortRecoveryLocked()
	var prevNextID wal.TxID
	if d.tm != nil {
		prevNextID = d.tm.NextID()
	}
	d.buildVolatile()
	// Transaction IDs double as lock owner IDs; carrying the counter across
	// the restart keeps a pre-crash zombie and a post-restart transaction
	// from ever sharing one. (Restart analysis may push it higher still.)
	d.tm.SetNextID(prevNextID)
	if meta := d.disk.ReadMeta(); len(meta) > 0 {
		if err := json.Unmarshal(meta, &d.cat); err != nil {
			return fmt.Errorf("db: catalog corrupt: %w", err)
		}
	}
	for _, ct := range d.cat.Tables {
		t := &Table{db: d, name: ct.Name, id: ct.ID,
			data: d.dm.OpenTable(ct.ID, storage.PageID(ct.FirstPage)), vs: d.vs}
		for _, ci := range ct.Indexes {
			ix := d.im.OpenIndex(d.indexConfig(ci.ID, ci.Unique), storage.PageID(ci.Root))
			if ci.Secondary {
				sec := &secondary{name: ci.Name, ix: ix,
					extract: func([]byte) []byte { panic("db: secondary extractor not re-bound; call OpenSecondaryIndex") }}
				if fn, ok := d.extractors[ct.Name+"/"+ci.Name]; ok {
					sec.extract, sec.bound = fn, true
				}
				t.secondaries = append(t.secondaries, sec)
			} else {
				t.primary = ix
			}
		}
		d.tables[ct.Name] = t
	}
	return nil
}

// Restart rebuilds the volatile state, reopens the catalog, and runs
// restart recovery. Secondary index extractors must be re-bound afterwards
// via OpenSecondaryIndex.
//
// With Options.OnlineRestart (under the default data-only protocol) the
// engine is up the moment Restart returns — right after the analysis pass —
// and redo/undo continue in the background: the returned report carries
// only the open-time fields, and AwaitRecovered returns the completed one.
// Otherwise Restart runs the classic offline three-pass recovery.
func (d *DB) Restart() (*recovery.Report, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.reopenLocked(); err != nil {
		return nil, err
	}
	if d.opts.OnlineRestart && d.opts.Protocol == core.DataOnly {
		o, err := recovery.StartOnline(d.log, d.pool, d.tm, d.locks, d.stats,
			recovery.OnlineOpts{
				RestartOpts: d.restartOptsLocked(0),
				Granularity: d.opts.Granularity,
			})
		if err != nil {
			return nil, err
		}
		d.recov = o
		d.stats.OnlineRestarts.Add(1)
		d.markUpLocked()
		return o.OpenReport(), nil
	}
	rep, err := recovery.RestartWith(d.log, d.pool, d.tm, d.locks, d.stats,
		d.restartOptsLocked(0))
	if err == nil {
		d.markUpLocked()
	}
	return rep, err
}

// SetOnlineRestart toggles online restart on an existing engine — typically
// a Fork, before the sweep decides which restart mode to exercise. Takes
// effect on the next Restart.
func (d *DB) SetOnlineRestart(on bool) {
	d.mu.Lock()
	d.opts.OnlineRestart = on
	d.mu.Unlock()
}

// restartOptsLocked builds the recovery options from the engine's tuning.
// Caller holds d.mu.
func (d *DB) restartOptsLocked(maxUndoSteps int) recovery.RestartOpts {
	return recovery.RestartOpts{
		MaxUndoSteps: maxUndoSteps,
		RedoWorkers:  d.opts.RedoWorkers,
		RedoPrefetch: d.opts.RedoPrefetch,
	}
}

// SetRedoWorkers tunes restart redo parallelism on an existing engine —
// typically a Fork, whose options were copied from the parent before the
// sweep chose a worker count. Takes effect on the next Restart.
func (d *DB) SetRedoWorkers(n int) {
	d.mu.Lock()
	d.opts.RedoWorkers = n
	d.mu.Unlock()
}

// RestartInterrupted runs restart recovery with an undo-step budget,
// simulating a crash during restart: after maxUndoSteps undo steps the
// recovery "dies", the half-rebuilt volatile state is discarded, and the
// engine is left crashed (interrupted=true) for a subsequent Restart.
//
// forceTail picks the fate of the log records the interrupted restart
// itself wrote (CLRs, end records): true forces them to stable storage
// before the simulated re-crash, so the rerun must skip the compensated
// work via the CLRs' UndoNxtLSN chains — the ARIES repeated-restart
// guarantee; false loses the unforced tail, so the rerun repeats the undo
// from scratch. Both fates are legal outcomes of a real crash; the
// crash-point sweep exercises both.
func (d *DB) RestartInterrupted(maxUndoSteps int, forceTail bool) (interrupted bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.reopenLocked(); err != nil {
		return false, err
	}
	_, err = recovery.RestartWith(d.log, d.pool, d.tm, d.locks, d.stats,
		d.restartOptsLocked(maxUndoSteps))
	if errors.Is(err, recovery.ErrRestartInterrupted) {
		if forceTail {
			d.log.ForceAll()
		}
		// The interrupted restart ran single-threaded under d.mu, so there
		// are no zombies of this epoch: crashing the log and pool in place
		// is safe and leaves the engine down for the next Restart.
		d.log.Crash()
		d.pool.Crash()
		d.downed = true
		select {
		case <-d.upCh:
			// Was up when called; re-open so AwaitUp blocks again. An upCh
			// that is already open keeps its waiters.
			d.upCh = make(chan struct{})
		default:
		}
		return true, nil
	}
	if err == nil {
		d.markUpLocked()
	}
	return false, err
}

// Fork clones the engine's stable state — disk pages, catalog meta, and
// the log — into an independent crashed engine, as if a copy of the
// machine lost power at this instant. The fork must be Restarted before
// use; the original is untouched. Crash-point sweeps fork once per
// truncation point instead of mutating the engine under test.
func (d *DB) Fork() *DB {
	d.mu.Lock()
	defer d.mu.Unlock()
	stats := &trace.Stats{}
	opts := d.opts
	opts.Stats = stats
	nd := &DB{
		opts:  opts,
		stats: stats,
		disk:  d.disk.Clone(),
		log:   d.log.Clone(stats),
		cat:   catalog{NextTableID: 1, NextIndexID: 1},
	}
	nd.upCh = make(chan struct{})
	if len(d.extractors) > 0 {
		nd.extractors = make(map[string]func(value []byte) []byte, len(d.extractors))
		for k, fn := range d.extractors {
			nd.extractors[k] = fn
		}
	}
	nd.buildVolatile()
	nd.downed = true // stable state only; Restart brings it up
	d.imgMu.Lock()
	nd.img = d.img // image pages are immutable; safe to share
	d.imgMu.Unlock()
	return nd
}

// registerExtractor remembers a secondary-index extractor for automatic
// re-binding on restart (see DB.extractors).
func (d *DB) registerExtractor(table, index string, fn func(value []byte) []byte) {
	d.mu.Lock()
	if d.extractors == nil {
		d.extractors = make(map[string]func(value []byte) []byte)
	}
	d.extractors[table+"/"+index] = fn
	d.mu.Unlock()
}

// VerifyConsistency cross-checks every table on a quiesced engine: every
// on-disk page passes its checksum (corrupt pages are self-healed via
// media recovery), the tree invariants hold, and the primary index and
// record heap are exact mirrors (every live record indexed once under its
// own RID, and vice versa). Secondary indexes are checked against the
// extractor when bound.
func (d *DB) VerifyConsistency() error {
	// The whole-engine sweep assumes a quiesced, fully recovered engine:
	// mid-online-recovery the heap/index mirrors legitimately disagree with
	// the committed state (loser inserts await their background undo, DPT
	// pages await their replay). Callers AwaitRecovered first.
	if d.Recovering() {
		return ErrRecovering
	}
	if err := d.checksumSweep(); err != nil {
		return err
	}
	d.mu.Lock()
	tables := make([]*Table, 0, len(d.tables))
	for _, t := range d.tables {
		tables = append(tables, t)
	}
	d.mu.Unlock()
	for _, t := range tables {
		if err := t.primary.CheckStructure(); err != nil {
			return fmt.Errorf("table %q primary: %w", t.name, err)
		}
		records, err := t.data.ScanAll()
		if err != nil {
			return err
		}
		keys, err := t.primary.Dump()
		if err != nil {
			return err
		}
		if len(keys) != len(records) {
			return fmt.Errorf("table %q: %d index keys vs %d records", t.name, len(keys), len(records))
		}
		for _, k := range keys {
			rec, ok := records[k.RID]
			if !ok {
				return fmt.Errorf("table %q: index key %s references missing record", t.name, k)
			}
			rk, _, err := decodeRow(rec)
			if err != nil {
				return err
			}
			if string(rk) != string(k.Val) {
				return fmt.Errorf("table %q: index key %q vs record key %q at %s", t.name, k.Val, rk, k.RID)
			}
		}
		t.mu.Lock()
		secs := append([]*secondary(nil), t.secondaries...)
		t.mu.Unlock()
		for _, s := range secs {
			if err := s.ix.CheckStructure(); err != nil {
				return fmt.Errorf("table %q secondary %q: %w", t.name, s.name, err)
			}
			skeys, err := s.ix.Dump()
			if err != nil {
				return err
			}
			if len(skeys) != len(records) {
				return fmt.Errorf("table %q secondary %q: %d keys vs %d records", t.name, s.name, len(skeys), len(records))
			}
			// Entry-by-entry cross-check: every entry references a live
			// record (under the RID it was built for, at most once), and —
			// when the extractor is bound — carries exactly the key the
			// extractor derives from that record's value. Together with the
			// count equality this proves the mirror in both directions:
			// injective entry→record plus equal cardinality means every
			// record is indexed exactly once.
			indexed := make(map[storage.RID]bool, len(skeys))
			for _, sk := range skeys {
				if indexed[sk.RID] {
					return fmt.Errorf("table %q secondary %q: record %s indexed twice", t.name, s.name, sk.RID)
				}
				indexed[sk.RID] = true
				rec, ok := records[sk.RID]
				if !ok {
					return fmt.Errorf("table %q secondary %q: entry %q references missing record %s", t.name, s.name, sk.Val, sk.RID)
				}
				if !s.bound {
					continue
				}
				_, value, err := decodeRow(rec)
				if err != nil {
					return err
				}
				if want := s.extract(value); string(want) != string(sk.Val) {
					return fmt.Errorf("table %q secondary %q: entry %q at %s, extractor derives %q", t.name, s.name, sk.Val, sk.RID, want)
				}
			}
		}
	}
	return nil
}

// checksumSweep reads every written disk page, verifying its checksum and
// repairing corrupt or permanently unreadable pages in place via media
// recovery. Transient read errors are retried.
func (d *DB) checksumSweep() error {
	d.mu.Lock()
	disk, log := d.disk, d.log
	d.mu.Unlock()
	buf := make([]byte, disk.PageSize())
	ids := disk.PageIDs()
	// Repair then re-verify: recovery's rebuild write goes through the
	// same faulty device and may itself be torn, so loop a few rounds (an
	// injector that caps consecutive faults guarantees progress). Each
	// round verifies the suspect set, then rebuilds every damaged page it
	// found in ONE batched log scan — a region-wide corruption no longer
	// pays one full scan per page.
	for round := 0; round < 8; round++ {
		var damaged []storage.PageID
		for _, id := range ids {
			var err error
			for attempt := 0; attempt < 8; attempt++ {
				if err = disk.Read(id, buf); err == nil || !errors.Is(err, storage.ErrTransientIO) {
					break
				}
				d.stats.IORetries.Add(1)
			}
			switch {
			case err == nil:
			case errors.Is(err, storage.ErrChecksum) || errors.Is(err, storage.ErrPermanentIO):
				d.stats.CorruptPages.Add(1)
				damaged = append(damaged, id)
			default:
				return fmt.Errorf("db: checksum sweep: page %d: %w", id, err)
			}
		}
		if len(damaged) == 0 {
			return nil
		}
		if err := d.recoverPagesOn(disk, log, damaged); err != nil {
			return fmt.Errorf("db: checksum sweep: %w", err)
		}
		ids = damaged // later rounds re-verify only the repaired pages
	}
	return fmt.Errorf("db: checksum sweep: pages still corrupt after repair rounds")
}

// GetCS fetches a row at cursor-stability (degree 2) isolation: the read
// sees only committed data but leaves no lock behind, so it neither blocks
// later writers nor guarantees repeatability. The paper's protocols target
// repeatable read; CS is the weaker mode real systems offer alongside it.
func (t *Table) GetCS(tx *txn.Tx, key []byte) ([]byte, error) {
	if s := tx.Snapshot(); s != nil {
		// Snapshot isolation subsumes cursor stability: committed data,
		// no locks left behind — route to the same lock-free read.
		return t.snapshotGet(s.LSN, key)
	}
	res, err := t.primary.FetchCS(tx, key, core.EQ)
	if err != nil {
		return nil, err
	}
	if !res.Found {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	_, value, err := t.fetchRow(tx, res.Key.RID)
	return value, err
}

// ScanPrefix iterates all rows whose key starts with prefix, in key order,
// at repeatable-read isolation (§1.1's partial-key starting condition).
func (t *Table) ScanPrefix(tx *txn.Tx, prefix []byte, fn func(Row) (bool, error)) error {
	if s := tx.Snapshot(); s != nil {
		return t.snapshotScanPrefix(s.LSN, prefix, fn)
	}
	res, cur, err := t.primary.FetchPrefix(tx, prefix)
	if err != nil {
		return err
	}
	for {
		if res.EOF || !res.Found {
			return nil
		}
		k, v, err := t.fetchRow(tx, res.Key.RID)
		if err != nil {
			return err
		}
		cont, err := fn(Row{Key: append([]byte(nil), k...), Value: append([]byte(nil), v...)})
		if err != nil || !cont {
			return err
		}
		res, err = t.primary.FetchNext(tx, cur)
		if err != nil {
			return err
		}
		if res.EOF || len(res.Key.Val) < len(prefix) || string(res.Key.Val[:len(prefix)]) != string(prefix) {
			return nil
		}
		res.Found = true
	}
}

// ArchiveLog streams the stable log prefix to w (offline log archiving,
// the prerequisite for §5 media recovery beyond the online log). It
// returns the number of records archived.
func (d *DB) ArchiveLog(w io.Writer) (int, error) { return d.Log().Archive(w) }

// OpenStandby builds an engine on a FRESH disk from a shipped log (see
// wal.ReadArchive) plus the primary's catalog blob, and runs ARIES restart
// against it: page-oriented redo reconstructs every page, the undo pass
// rolls back whatever was in flight at ship time. The result is a warm
// standby, immediately writable after promotion. Secondary-index
// extractors must be re-bound via OpenSecondaryIndex, as after any restart.
func OpenStandby(opts Options, shipped *wal.Log, catalogMeta []byte) (*DB, *recovery.Report, error) {
	opts = opts.withDefaults()
	d := &DB{
		opts:  opts,
		stats: opts.Stats,
		disk:  storage.NewDisk(opts.PageSize),
		log:   shipped,
		cat:   catalog{NextTableID: 1, NextIndexID: 1},
	}
	lock.RegisterTraceNames()
	d.upCh = make(chan struct{})
	d.disk.WriteMeta(catalogMeta)
	d.buildVolatile()
	rep, err := d.Restart()
	if err != nil {
		return nil, nil, err
	}
	return d, rep, nil
}
