package db

import (
	"testing"
)

// TestChaosSweep runs a scaled-down chaos sweep: concurrent workers
// through RunTxn, injected disk faults, crashes under live traffic, exact
// committed-state verification after every restart. The full-size run
// (8 workers, 20 crashes) is `make chaos`; -short shrinks this further.
func TestChaosSweep(t *testing.T) {
	o := ChaosOpts{
		Seed:            1,
		Workers:         8,
		Crashes:         5,
		CommitsPerPhase: 12,
		Faults:          true,
		Logf:            t.Logf,
	}
	if testing.Short() {
		o.Workers = 4
		o.Crashes = 2
		o.CommitsPerPhase = 6
	}
	res, err := RunChaosSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != o.Crashes {
		t.Errorf("crashes = %d, want %d", res.Crashes, o.Crashes)
	}
	if res.Commits == 0 {
		t.Error("no commits acked")
	}
	// The contract the retry layer exists for: both contention repair
	// paths exercised and retried through to a successful commit.
	if res.DeadlockVictims == 0 {
		t.Error("no deadlock victim was aborted")
	}
	if res.LockTimeouts == 0 {
		t.Error("no lock wait timed out")
	}
	if res.DeadlockRetries == 0 || res.TimeoutRetries == 0 || res.RetrySuccesses == 0 {
		t.Errorf("retry counters: deadlock=%d timeout=%d successes=%d, want all > 0",
			res.DeadlockRetries, res.TimeoutRetries, res.RetrySuccesses)
	}
	t.Logf("chaos result: %+v", res)
}

// TestChaosSweepOnlineRestart reruns the chaos sweep with online restarts:
// workers resume the instant analysis finishes (racing the background
// drain and loser undo), and a rotating subset of crash points re-crashes
// the engine mid-recovery. Verification is the same exact committed model.
// This is the run `make race` puts under the race detector.
func TestChaosSweepOnlineRestart(t *testing.T) {
	o := ChaosOpts{
		Seed:            3,
		Workers:         8,
		Crashes:         6,
		CommitsPerPhase: 12,
		Faults:          true,
		OnlineRestart:   true,
		RedoWorkers:     8,
		Logf:            t.Logf,
	}
	if testing.Short() {
		o.Workers = 4
		o.Crashes = 3
		o.CommitsPerPhase = 6
	}
	res, err := RunChaosSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != o.Crashes {
		t.Errorf("crashes = %d, want %d", res.Crashes, o.Crashes)
	}
	if res.OnlineRestarts == 0 {
		t.Error("no restart ran online")
	}
	if res.MidRecoveryCrashes == 0 {
		t.Error("no crash landed mid-recovery")
	}
	if res.PagesOnDemand+res.PagesDrained == 0 {
		t.Error("no pages recovered by hook or drain")
	}
	t.Logf("chaos result: %+v", res)
}

// TestChaosSweepSecondaryIndex reruns the chaos sweep with a secondary
// index maintained transactionally for the whole run and snapshot readers
// alternating base-table and index-order scans. Every crash boundary
// cross-verifies the index against the base table (offline restarts here;
// TestChaosSweepSecondaryIndexOnline covers the online mode), and every
// index-scan snapshot observation is ledger-verified like a base scan.
// The full-size runs are `make chaos-index`.
func TestChaosSweepSecondaryIndex(t *testing.T) {
	o := ChaosOpts{
		Seed:            5,
		Workers:         8,
		Crashes:         5,
		CommitsPerPhase: 12,
		Faults:          true,
		SecondaryIndex:  true,
		SnapshotReaders: 2,
		Logf:            t.Logf,
	}
	if testing.Short() {
		o.Workers = 4
		o.Crashes = 2
		o.CommitsPerPhase = 6
	}
	res, err := RunChaosSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != o.Crashes {
		t.Errorf("crashes = %d, want %d", res.Crashes, o.Crashes)
	}
	if res.SnapshotsVerified == 0 {
		t.Error("no snapshot observations verified")
	}
	if res.ReadOnlyLockCalls != 0 {
		t.Errorf("snapshot readers made %d lock calls, want 0", res.ReadOnlyLockCalls)
	}
	t.Logf("chaos result: %+v", res)
}

// TestChaosSweepSecondaryIndexOnline is the online-restart counterpart:
// index/base cross-verification at crash boundaries that land while the
// background drain and loser undo are still running.
func TestChaosSweepSecondaryIndexOnline(t *testing.T) {
	o := ChaosOpts{
		Seed:            7,
		Workers:         8,
		Crashes:         6,
		CommitsPerPhase: 12,
		Faults:          true,
		OnlineRestart:   true,
		RedoWorkers:     8,
		SecondaryIndex:  true,
		SnapshotReaders: 2,
		Logf:            t.Logf,
	}
	if testing.Short() {
		o.Workers = 4
		o.Crashes = 3
		o.CommitsPerPhase = 6
	}
	res, err := RunChaosSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != o.Crashes {
		t.Errorf("crashes = %d, want %d", res.Crashes, o.Crashes)
	}
	if res.MidRecoveryCrashes == 0 {
		t.Error("no crash landed mid-recovery")
	}
	t.Logf("chaos result: %+v", res)
}
