package db

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ariesim/internal/recovery"
	"ariesim/internal/storage"
	"ariesim/internal/wal"
)

// buildCrashWorkload populates an engine with an SMO-dense seeded workload
// (inserts, updates, deletes, a mid-run fuzzy checkpoint, a trailing
// in-flight loser) and forces the log so every record is a legal crash
// point. Returns the engine and the first post-setup LSN.
func buildCrashWorkload(t *testing.T, seed int64, txns int) (*DB, wal.LSN) {
	t.Helper()
	d := Open(Options{PageSize: 512, PoolSize: 256})
	tbl, err := d.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	setupLSN := d.Log().MaxLSN()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < txns; i++ {
		tx := d.MustBegin()
		for op := 0; op < 6; op++ {
			k := []byte(fmt.Sprintf("k%04d", rng.Intn(120)))
			v := []byte(fmt.Sprintf("v%0*d", 20+rng.Intn(50), rng.Intn(1_000_000)))
			var err error
			if _, gerr := tbl.Get(tx, k); gerr == nil {
				if rng.Intn(4) == 0 {
					err = tbl.Delete(tx, k)
				} else {
					err = tbl.Update(tx, k, v)
				}
			} else {
				err = tbl.Insert(tx, k, v)
			}
			if err != nil {
				t.Fatalf("txn %d: %v", i, err)
			}
		}
		if rng.Float64() < 0.2 {
			if err := tx.Rollback(); err != nil {
				t.Fatal(err)
			}
		} else if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if i == txns/2 {
			d.Checkpoint()
		}
	}
	loser := d.MustBegin()
	for i := 0; i < 4; i++ {
		if err := tbl.Insert(loser, []byte(fmt.Sprintf("zloser%02d", i)), []byte("never")); err != nil {
			t.Fatal(err)
		}
	}
	d.Log().ForceAll()
	return d, setupLSN
}

// recoveredDisk forks the engine, crashes it at boundary L, restarts with
// the given redo worker count, flushes every recovered page, and returns
// the resulting on-disk image.
func recoveredDisk(t *testing.T, d *DB, L wal.LSN, workers int) map[storage.PageID][]byte {
	t.Helper()
	fork := d.Fork()
	fork.SetRedoWorkers(workers)
	fork.Log().TruncateTo(L)
	if _, err := fork.Restart(); err != nil {
		t.Fatalf("restart at LSN %d with %d workers: %v", L, workers, err)
	}
	if err := fork.Pool().FlushAll(); err != nil {
		t.Fatal(err)
	}
	return fork.Disk().Snapshot()
}

// TestParallelRedoByteIdenticalAcrossCrashPoints is the parallel-redo
// stress test: at random crash points of an SMO-dense workload, restarting
// with 2 and 8 redo workers must leave a disk byte-for-byte identical to
// the serial baseline's. Page partitioning preserves per-page LSN order,
// so not one byte may differ — any divergence is a synchronization bug.
// Run under -race to also catch data races between redo workers and the
// prefetcher.
func TestParallelRedoByteIdenticalAcrossCrashPoints(t *testing.T) {
	txns := 30
	points := 12
	if testing.Short() {
		txns, points = 12, 4
	}
	d, setupLSN := buildCrashWorkload(t, 1337, txns)
	boundaries := recovery.Boundaries(d.Log(), setupLSN)
	if len(boundaries) < points {
		t.Fatalf("workload produced only %d boundaries", len(boundaries))
	}
	rng := rand.New(rand.NewSource(4242))
	for i := 0; i < points; i++ {
		L := boundaries[rng.Intn(len(boundaries))]
		want := recoveredDisk(t, d, L, 1)
		for _, workers := range []int{2, 8} {
			got := recoveredDisk(t, d, L, workers)
			if len(got) != len(want) {
				t.Fatalf("LSN %d: %d workers recovered %d pages, serial %d",
					L, workers, len(got), len(want))
			}
			for pid, b := range want {
				if !bytes.Equal(got[pid], b) {
					t.Fatalf("LSN %d: page %d differs between serial and %d-worker redo",
						L, pid, workers)
				}
			}
		}
	}
}

// TestCrashSweepParallelRedo re-runs the exhaustive crash-point sweep with
// parallel redo on every fork: every boundary must still recover to the
// exact covered committed snapshot under full consistency verification.
func TestCrashSweepParallelRedo(t *testing.T) {
	opts := SweepOpts{Seed: 99, Txns: 20, RedoWorkers: 8, Logf: t.Logf}
	if testing.Short() {
		opts.Txns = 8
	}
	res, err := CrashSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Points != res.Records {
		t.Fatalf("swept %d of %d boundaries", res.Points, res.Records)
	}
	if res.Points == 0 {
		t.Fatal("sweep exercised no crash points")
	}
}
