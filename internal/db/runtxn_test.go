package db

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"ariesim/internal/lock"
	"ariesim/internal/txn"
)

func TestClassifyErr(t *testing.T) {
	cases := []struct {
		err  error
		want RetryClass
	}{
		{lock.ErrDeadlock, ClassContention},
		{lock.ErrLockTimeout, ClassContention},
		{fmt.Errorf("insert: %w", lock.ErrDeadlock), ClassContention},
		{ErrCrashed, ClassCrash},
		{lock.ErrShutdown, ClassCrash},
		{fmt.Errorf("gave up after 16 attempts: %w", lock.ErrLockTimeout), ClassContention},
		{ErrNotFound, ClassFatal},
		{ErrDuplicate, ClassFatal},
		{ErrMediaFailure, ClassFatal},
		{errors.New("application bug"), ClassFatal},
		{nil, ClassFatal},
	}
	for _, c := range cases {
		if got := ClassifyErr(c.err); got != c.want {
			t.Errorf("ClassifyErr(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestRunTxnRetriesContention: a body that loses to contention on its first
// executions is re-executed until it wins; the caller sees only success.
func TestRunTxnRetriesContention(t *testing.T) {
	d := Open(Options{})
	var calls int
	err := d.RunTxn(func(tx *txn.Tx) error {
		calls++
		switch calls {
		case 1:
			return fmt.Errorf("insert: %w", lock.ErrDeadlock)
		case 2:
			return fmt.Errorf("get: %w", lock.ErrLockTimeout)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("body ran %d times, want 3", calls)
	}
	sn := d.Stats().Snap()
	if sn.TxnRetries != 2 || sn.TxnDeadlockRetries != 1 || sn.TxnTimeoutRetries != 1 {
		t.Errorf("retries = %d (deadlock %d, timeout %d), want 2/1/1",
			sn.TxnRetries, sn.TxnDeadlockRetries, sn.TxnTimeoutRetries)
	}
	if sn.TxnRetrySuccesses != 1 {
		t.Errorf("retry successes = %d, want 1", sn.TxnRetrySuccesses)
	}
}

// TestRunTxnSurfacesFatal: logic errors are not retried; the transaction is
// rolled back (its locks released) and the error surfaces unchanged.
func TestRunTxnSurfacesFatal(t *testing.T) {
	d := Open(Options{})
	tbl, err := d.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("application bug")
	calls := 0
	err = d.RunTxn(func(tx *txn.Tx) error {
		calls++
		if err := tbl.Insert(tx, []byte("k"), []byte("v")); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the application error", err)
	}
	if calls != 1 {
		t.Fatalf("fatal error retried: %d calls", calls)
	}
	if got := d.Stats().TxnRetries.Load(); got != 0 {
		t.Errorf("TxnRetries = %d, want 0", got)
	}
	// The failed body's insert must have been rolled back and unlocked.
	if err := d.RunTxn(func(tx *txn.Tx) error {
		if _, err := tbl.Get(tx, []byte("k")); !errors.Is(err, ErrNotFound) {
			return fmt.Errorf("rolled-back row visible: %v", err)
		}
		return tbl.Insert(tx, []byte("k"), []byte("v2"))
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRunTxnGivesUpAfterMaxAttempts: permanent contention is eventually
// surfaced, wrapped so the cause still classifies as contention.
func TestRunTxnGivesUpAfterMaxAttempts(t *testing.T) {
	d := Open(Options{})
	calls := 0
	err := d.RunTxnWith(RunTxnOpts{MaxAttempts: 4, BaseBackoff: time.Microsecond},
		func(tx *txn.Tx) error {
			calls++
			return lock.ErrLockTimeout
		})
	if err == nil || !errors.Is(err, lock.ErrLockTimeout) {
		t.Fatalf("got %v, want wrapped ErrLockTimeout", err)
	}
	if calls != 4 {
		t.Fatalf("body ran %d times, want 4", calls)
	}
	if ClassifyErr(err) != ClassContention {
		t.Error("give-up error lost its contention classification")
	}
}

// TestRunTxnWaitsOutCrash: a body interrupted by a crash is re-executed
// after the restart, on the new epoch, and commits durably.
func TestRunTxnWaitsOutCrash(t *testing.T) {
	d := Open(Options{})
	if _, err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- d.RunTxn(func(tx *txn.Tx) error {
			if calls.Add(1) == 1 {
				close(started)
				<-release // crash lands while the body is mid-flight
			}
			tbl, err := d.TableFor(tx, "t")
			if err != nil {
				return err
			}
			return tbl.Insert(tx, []byte("k"), []byte("v"))
		})
	}()
	<-started
	d.Crash()
	close(release)
	// The retry must now be parked in AwaitUp, not completing and not
	// erroring, until the engine is restarted.
	select {
	case err := <-done:
		t.Fatalf("RunTxn returned %v while the engine was down", err)
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := d.Restart(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunTxn never completed after restart")
	}
	if got := d.Stats().TxnCrashWaits.Load(); got == 0 {
		t.Error("TxnCrashWaits = 0, want >= 1")
	}
	// The row written by the post-restart attempt must be durable.
	if err := d.RunTxn(func(tx *txn.Tx) error {
		tbl, err := d.TableFor(tx, "t")
		if err != nil {
			return err
		}
		_, err = tbl.Get(tx, []byte("k"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRunTxnStepsPartialRetry: a step losing to contention retries from its
// own savepoint, preserving completed steps' work instead of redoing it.
func TestRunTxnStepsPartialRetry(t *testing.T) {
	d := Open(Options{})
	tbl, err := d.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	var step1Runs, step2Runs int
	err = d.RunTxnSteps(RunTxnOpts{BaseBackoff: time.Microsecond},
		func(tx *txn.Tx) error {
			step1Runs++
			return tbl.Insert(tx, []byte("a"), []byte("1"))
		},
		func(tx *txn.Tx) error {
			step2Runs++
			if step2Runs < 3 {
				return fmt.Errorf("update: %w", lock.ErrLockTimeout)
			}
			return tbl.Insert(tx, []byte("b"), []byte("2"))
		})
	if err != nil {
		t.Fatal(err)
	}
	if step1Runs != 1 {
		t.Errorf("step 1 ran %d times, want 1 (partial retry redid completed work)", step1Runs)
	}
	if step2Runs != 3 {
		t.Errorf("step 2 ran %d times, want 3", step2Runs)
	}
	if got := d.Stats().TxnStepRetries.Load(); got != 2 {
		t.Errorf("TxnStepRetries = %d, want 2", got)
	}
	// Both rows committed.
	if err := d.RunTxn(func(tx *txn.Tx) error {
		for _, k := range []string{"a", "b"} {
			if _, err := tbl.Get(tx, []byte(k)); err != nil {
				return fmt.Errorf("row %q: %w", k, err)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRunTxnStepsEscalates: a step that keeps losing past maxStepAttempts
// escalates to a full-transaction retry rather than spinning in place.
func TestRunTxnStepsEscalates(t *testing.T) {
	d := Open(Options{})
	var step1Runs, step2Runs int
	err := d.RunTxnSteps(RunTxnOpts{BaseBackoff: time.Microsecond},
		func(tx *txn.Tx) error { step1Runs++; return nil },
		func(tx *txn.Tx) error {
			step2Runs++
			if step2Runs <= maxStepAttempts {
				return lock.ErrDeadlock
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if step1Runs != 2 {
		t.Errorf("step 1 ran %d times, want 2 (one escalated full retry)", step1Runs)
	}
}
