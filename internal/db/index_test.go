package db

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ariesim/internal/txn"
)

// idxVal builds a row value that embeds its own primary key and a payload
// whose first 4 bytes are the secondary key, so any scan can verify both
// the row's integrity and its index placement from the value alone.
func idxVal(pk []byte, group, n int) []byte {
	return []byte(fmt.Sprintf("g%03d|%s|%d", group, pk, n))
}

func idxExtract(value []byte) []byte { return append([]byte(nil), value[:4]...) }

// TestCreateIndexBackfill builds an index on a table that already has rows:
// the backfill must cover every existing row, range bounds must hold, and
// rows inserted after the build must be maintained by their own writers.
func TestCreateIndexBackfill(t *testing.T) {
	d := openSmall(t)
	tbl, _ := d.CreateTable("t")
	tx := d.MustBegin()
	for i := 0; i < 60; i++ {
		if err := tbl.Insert(tx, k(i), idxVal(k(i), i%5, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("by_group", idxExtract); err != nil {
		t.Fatal(err)
	}
	// Post-build writers maintain the index without touching CreateIndex.
	tx2 := d.MustBegin()
	for i := 60; i < 80; i++ {
		if err := tbl.Insert(tx2, k(i), idxVal(k(i), i%5, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Delete(tx2, k(3)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}

	rtx := d.MustBegin()
	got := map[string]string{}
	var lastSK, lastPK string
	err := tbl.ScanIndex(rtx, "by_group", func(sk []byte, r Row) (bool, error) {
		if string(sk) != string(idxExtract(r.Value)) {
			t.Fatalf("row %q under key %q, want %q", r.Key, sk, idxExtract(r.Value))
		}
		if s, p := string(sk), string(r.Key); s < lastSK || (s == lastSK && p <= lastPK) {
			t.Fatalf("scan order violated at (%q, %q) after (%q, %q)", s, p, lastSK, lastPK)
		} else {
			lastSK, lastPK = s, p
		}
		got[string(r.Key)] = string(r.Value)
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 79 {
		t.Fatalf("index scan found %d rows, want 79", len(got))
	}
	if _, ok := got[string(k(3))]; ok {
		t.Fatal("deleted row still reachable through the index")
	}
	n := 0
	err = tbl.ScanIndexRange(rtx, "by_group", []byte("g002"), []byte("g002"), func(sk []byte, r Row) (bool, error) {
		if string(sk) != "g002" {
			t.Fatalf("range scan leaked key %q", sk)
		}
		n++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 16 {
		t.Fatalf("range scan found %d rows, want 16", n)
	}
	_ = rtx.Commit()
	if err := tbl.CreateIndex("by_group", idxExtract); err == nil {
		t.Fatal("duplicate CreateIndex succeeded")
	}
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestCreateIndexDuringWrites races the backfill's locked scan against
// live writers: whichever rows the scan could not see must be indexed by
// their own (blocked, then resumed) writers.
func TestCreateIndexDuringWrites(t *testing.T) {
	d := openSmall(t)
	tbl, _ := d.CreateTable("t")
	tx := d.MustBegin()
	for i := 0; i < 40; i++ {
		_ = tbl.Insert(tx, k(i), idxVal(k(i), i%5, i))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var inserted atomic.Int64
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := k(1000 + w*1000 + i)
				err := d.RunTxn(func(tx *txn.Tx) error {
					return tbl.Insert(tx, key, idxVal(key, i%5, i))
				})
				if err != nil {
					t.Error(err)
					return
				}
				inserted.Add(1)
			}
		}(w)
	}
	if err := tbl.CreateIndex("by_group", idxExtract); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	rtx := d.MustBegin()
	n := 0
	err := tbl.ScanIndex(rtx, "by_group", func(sk []byte, r Row) (bool, error) {
		if string(sk) != string(idxExtract(r.Value)) {
			t.Fatalf("row %q under key %q, want %q", r.Key, sk, idxExtract(r.Value))
		}
		n++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 40 + int(inserted.Load()); n != want {
		t.Fatalf("index scan found %d rows, want %d", n, want)
	}
	_ = rtx.Commit()
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestIndexRollbackRestoresBothTrees rolls back a transaction that
// touched base rows and index entries (including key moves) and checks
// both trees return to the pre-transaction state.
func TestIndexRollbackRestoresBothTrees(t *testing.T) {
	d := openSmall(t)
	tbl, _ := d.CreateTable("t")
	if err := tbl.CreateIndex("by_group", idxExtract); err != nil {
		t.Fatal(err)
	}
	tx := d.MustBegin()
	for i := 0; i < 30; i++ {
		_ = tbl.Insert(tx, k(i), idxVal(k(i), i%3, i))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	before := map[string]string{}
	rtx := d.MustBegin()
	_ = tbl.ScanIndex(rtx, "by_group", func(sk []byte, r Row) (bool, error) {
		before[string(sk)+"|"+string(r.Key)] = string(r.Value)
		return true, nil
	})
	_ = rtx.Commit()

	vic := d.MustBegin()
	_ = tbl.Insert(vic, k(100), idxVal(k(100), 7, 100))
	_ = tbl.Delete(vic, k(5))
	// Update that MOVES the secondary key: group 1 -> group 9.
	_ = tbl.Update(vic, k(1), idxVal(k(1), 9, 1))
	if err := vic.Rollback(); err != nil {
		t.Fatal(err)
	}

	after := map[string]string{}
	rtx2 := d.MustBegin()
	_ = tbl.ScanIndex(rtx2, "by_group", func(sk []byte, r Row) (bool, error) {
		after[string(sk)+"|"+string(r.Key)] = string(r.Value)
		return true, nil
	})
	_ = rtx2.Commit()
	if len(after) != len(before) {
		t.Fatalf("rollback left %d index rows, want %d", len(after), len(before))
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("index row %q: %q after rollback, want %q", k, after[k], v)
		}
	}
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestIndexScanWriterOracle interleaves committing/aborting writers with
// locked and snapshot index scanners and checks every scan against the
// per-row oracle baked into the values: the value names its own primary
// key and secondary key, so a torn read, a mis-placed entry, or a
// double-emitted row is caught no matter how the schedule interleaves.
// Run under -race this is also the data-race oracle for the index path.
func TestIndexScanWriterOracle(t *testing.T) {
	d := openSmall(t)
	tbl, _ := d.CreateTable("t")
	if err := tbl.CreateIndex("by_group", idxExtract); err != nil {
		t.Fatal(err)
	}
	seed := d.MustBegin()
	for i := 0; i < 50; i++ {
		_ = tbl.Insert(seed, k(i), idxVal(k(i), i%5, i))
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	const writers, scanners, rounds = 4, 3, 40
	var wgWrite, wgScan sync.WaitGroup
	stop := make(chan struct{})
	upsert := func(tx *txn.Tx, key, value []byte) error {
		err := tbl.Update(tx, key, value)
		if errors.Is(err, ErrNotFound) {
			err = tbl.Insert(tx, key, value)
		}
		return err
	}
	for w := 0; w < writers; w++ {
		wgWrite.Add(1)
		go func(w int) {
			defer wgWrite.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := k((w*13 + i) % 50)
				err := d.RunTxn(func(tx *txn.Tx) error {
					switch i % 4 {
					case 0, 3:
						return upsert(tx, key, idxVal(key, (w+i)%5, i))
					case 1:
						if err := tbl.Delete(tx, key); err != nil && !errors.Is(err, ErrNotFound) {
							return err
						}
						return nil
					default: // abort after touching both trees
						if err := upsert(tx, key, idxVal(key, 9, i)); err != nil {
							return err
						}
						return errAbortOracle
					}
				})
				if err != nil && !errors.Is(err, errAbortOracle) {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	check := func(kind string, sk []byte, r Row) error {
		if string(sk) != string(idxExtract(r.Value)) {
			return fmt.Errorf("%s scan: row %q under key %q, value says %q", kind, r.Key, sk, idxExtract(r.Value))
		}
		if !bytes.Contains(r.Value, r.Key) {
			return fmt.Errorf("%s scan: row %q carries foreign value %q", kind, r.Key, r.Value)
		}
		return nil
	}
	for sc := 0; sc < scanners; sc++ {
		wgScan.Add(1)
		go func(sc int) {
			defer wgScan.Done()
			for i := 0; i < rounds; i++ {
				seen := map[string]bool{}
				var err error
				if i%2 == 0 {
					err = d.RunReadOnly(func(tx *txn.Tx) error {
						clear(seen)
						return tbl.ScanIndex(tx, "by_group", func(sk []byte, r Row) (bool, error) {
							if seen[string(r.Key)] {
								return false, fmt.Errorf("snapshot scan emitted %q twice", r.Key)
							}
							seen[string(r.Key)] = true
							return true, check("snapshot", sk, r)
						})
					})
				} else {
					err = d.RunTxn(func(tx *txn.Tx) error {
						clear(seen)
						return tbl.ScanIndexRange(tx, "by_group", []byte("g001"), []byte("g003"), func(sk []byte, r Row) (bool, error) {
							if seen[string(r.Key)] {
								return false, fmt.Errorf("locked scan emitted %q twice", r.Key)
							}
							seen[string(r.Key)] = true
							return true, check("locked", sk, r)
						})
					})
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(sc)
	}
	// Scanners drive the duration; writers churn until they finish.
	wgScan.Wait()
	close(stop)
	wgWrite.Wait()
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

var errAbortOracle = fmt.Errorf("oracle: deliberate abort")
