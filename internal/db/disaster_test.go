package db

import (
	"bytes"
	"testing"

	"ariesim/internal/recovery"
	"ariesim/internal/storage"
	"ariesim/internal/wal"
)

// TestFullDisasterRecovery rebuilds the ENTIRE database from an archived
// log plus a fuzzy image copy: total media loss of every page, log
// restored from the archive stream, every page rolled forward — the
// paper's §5 media recovery story taken to its limit.
func TestFullDisasterRecovery(t *testing.T) {
	d := openSmall(t)
	tbl, _ := d.CreateTable("t")
	tx := d.MustBegin()
	for i := 0; i < 120; i++ {
		if err := tbl.Insert(tx, k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	_ = tx.Commit()
	if err := d.Pool().FlushAll(); err != nil {
		t.Fatal(err)
	}
	img := recovery.TakeImageCopy(d.Disk(), d.Log())

	// Post-dump committed work, then archive the log.
	tx2 := d.MustBegin()
	for i := 120; i < 160; i++ {
		if err := tbl.Insert(tx2, k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := tbl.Delete(tx2, k(i)); err != nil {
			t.Fatal(err)
		}
	}
	_ = tx2.Commit()
	var archive bytes.Buffer
	if _, err := d.Log().Archive(&archive); err != nil {
		t.Fatal(err)
	}

	// Total disaster: every page destroyed, volatile state gone.
	d.Pool().Crash()
	allPages := d.Disk().PageIDs()
	for _, pid := range allPages {
		d.Disk().Corrupt(pid)
	}

	// Restore the log from the archive, then roll every page forward.
	restoredLog, err := wal.ReadArchive(bytes.NewReader(archive.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Union of image pages and pages mentioned in the log.
	toRebuild := map[storage.PageID]bool{}
	for pid := range img.Pages {
		toRebuild[pid] = true
	}
	restoredLog.Scan(1, func(r *wal.Record) bool {
		if r.Redoable() {
			toRebuild[r.Page] = true
		}
		return true
	})
	for pid := range toRebuild {
		if err := recovery.RecoverPage(d.Disk(), restoredLog, img, pid); err != nil {
			t.Fatalf("page %d: %v", pid, err)
		}
	}

	// The engine reopens on the repaired disk.
	if _, err := d.Restart(); err != nil {
		t.Fatal(err)
	}
	tbl, err = d.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	rtx := d.MustBegin()
	rows := 0
	if err := tbl.Scan(rtx, []byte(""), nil, func(Row) (bool, error) { rows++; return true, nil }); err != nil {
		t.Fatal(err)
	}
	_ = rtx.Commit()
	if rows != 150 {
		t.Fatalf("disaster recovery restored %d rows, want 150", rows)
	}
}
