// Replica role and failover. A hot standby is an engine that never opened:
// it owns a fresh disk, an (initially empty) log that replication appends
// shipped records into, and a buffer pool that perpetual redo
// (recovery.ApplyRecords) keeps warm. It accepts no transactions — Begin
// fails with ErrCrashed exactly as on a crashed engine — until Promote
// runs restart recovery over the shipped log and opens it as the new
// primary. The replication machinery itself (shipper, channel, standby
// apply loop) lives in internal/repl; this file is the engine-side surface
// it drives.
package db

import (
	"errors"
	"fmt"

	"ariesim/internal/recovery"
	"ariesim/internal/wal"
)

// ErrNotReplica reports Promote on an engine that is not a replica.
var ErrNotReplica = errors.New("db: not a replica")

// ErrCommitUnacked reports a commit whose record is durable in the local
// log but was not acknowledged by the standby within the commit gate's
// bound. The outcome is AMBIGUOUS by construction: if the primary now
// dies and the standby is promoted, the commit survives exactly when its
// record reached the standby. It is deliberately NOT retryable through
// RunTxn (re-executing could double-apply a commit that did ship); callers
// needing certainty must reconcile against the promoted node.
var ErrCommitUnacked = errors.New("db: commit not acknowledged by standby")

// OpenReplica builds a standby engine: fresh disk (seeded with the
// primary's catalog blob), empty log, warm-ready pool — and leaves it
// closed to transactions. Replication appends shipped records to Log()
// (reproducing the primary's LSNs, since an LSN is 1 + the record's byte
// offset), forces them, and replays them into Pool() via
// recovery.ApplyRecords. Promote opens it.
func OpenReplica(opts Options, catalogMeta []byte) *DB {
	d := Open(opts)
	d.mu.Lock()
	d.replica = true
	d.downed = true // no transactions until Promote
	d.upCh = make(chan struct{})
	d.disk.WriteMeta(catalogMeta)
	d.mu.Unlock()
	return d
}

// Replica reports whether the engine is an unpromoted standby.
func (d *DB) Replica() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.replica
}

// Promote turns the standby into a serving primary: flush every replayed
// page (legal — the standby never crashed, and its log discipline forces
// records before applying them, so the WAL rule holds), then run the
// normal restart path over the shipped log. Redo is mostly page_LSN skips
// (continuous apply already did the work); undo rolls back whatever the
// old primary had in flight at its death — shipped-but-uncommitted losers.
// With Options.OnlineRestart the promoted node opens after analysis and
// finishes recovering in the background, minimizing failover
// time-to-first-commit.
//
// Epoch fencing against the dead primary's late segments is the
// replication layer's job (repl.Standby.Promote bumps the epoch before
// calling here); this method is engine-side only.
func (d *DB) Promote() (*recovery.Report, error) {
	d.mu.Lock()
	if !d.replica {
		d.mu.Unlock()
		return nil, ErrNotReplica
	}
	d.replica = false
	pool := d.pool
	d.mu.Unlock()
	if err := pool.FlushAll(); err != nil {
		return nil, fmt.Errorf("db: promote flush: %w", err)
	}
	rep, err := d.Restart()
	if err != nil {
		return nil, err
	}
	d.stats.Promotions.Add(1)
	return rep, nil
}

// SetCommitGate installs the semi-synchronous replication gate: after a
// transaction's commit record is locally durable, commitAcked calls
// gate(commitLSN) and acknowledges the client only if it returns nil —
// i.e. the standby confirmed the record. A failing gate surfaces as
// ErrCommitUnacked (see its ambiguity contract). Nil removes the gate
// (asynchronous shipping: commits ack on local durability alone, and the
// loss window on failover is the shipping lag).
//
// The gate runs while the committer holds the shared epoch lock, so it
// must not call back into the engine and must bound its own wait.
func (d *DB) SetCommitGate(gate func(wal.LSN) error) {
	d.mu.Lock()
	d.commitGate = gate
	d.mu.Unlock()
}

// noteAcked records one acknowledged commit in the loss-accounting ledger.
func (d *DB) noteAcked(lsn wal.LSN) {
	d.mu.Lock()
	d.ackedCommits++
	if lsn > d.ackedMax {
		d.ackedMax = lsn
	}
	d.mu.Unlock()
}

// AckedCommits returns the loss-accounting ledger: how many commits this
// engine acknowledged to clients and the highest commit-record LSN among
// them. After a failover, the promoted standby must contain every one of
// them — "bounded data loss" means exactly: nothing acked is ever lost.
func (d *DB) AckedCommits() (n uint64, max wal.LSN) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ackedCommits, d.ackedMax
}
