package db

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestCleanerCrashFence: a background page cleaner running at crash time
// must not leak a single write onto the post-crash disk. Crash() stops the
// cleaner synchronously before cloning the disk, so the successor starts
// with a zero write count and stays there until Restart.
func TestCleanerCrashFence(t *testing.T) {
	d := Open(Options{
		PageSize:        512,
		PoolSize:        16, // tight pool: constant dirty-frame churn
		CleanerInterval: 200 * time.Microsecond,
		CleanerBatch:    8,
	})
	tbl, err := d.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tx, err := d.Begin()
				if err != nil {
					return // crashed; the fence check below takes over
				}
				key := []byte(fmt.Sprintf("w%d-%06d", w, i))
				// Any error here (deadlock, crash epoch) just ends the
				// attempt — correctness is checked after restart.
				if err := tbl.Insert(tx, key, v(i)); err != nil {
					_ = tx.Rollback()
					continue
				}
				_ = tx.Commit()
			}
		}(w)
	}

	// Let traffic run until the cleaner has demonstrably done work, so the
	// fence assertion is exercising a live cleaner, not an idle one.
	deadline := time.Now().Add(2 * time.Second)
	for d.Stats().CleanerWrites.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cleaner never wrote a page under insert traffic")
		}
		time.Sleep(time.Millisecond)
	}

	d.Crash()
	// Crash swapped in a cloned disk with fresh counters. Zombie foreground
	// I/O may still land on the orphaned predecessor, but nothing — cleaner
	// included — may touch the successor before Restart.
	if n := d.Disk().WriteCount(); n != 0 {
		t.Fatalf("post-crash disk already has %d writes", n)
	}
	time.Sleep(20 * time.Millisecond) // window for any unfenced cleaner pass
	if n := d.Disk().WriteCount(); n != 0 {
		t.Fatalf("cleaner leaked %d writes past the crash fence", n)
	}
	close(stop)
	wg.Wait()

	if _, err := d.Restart(); err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	// The cleaner restarts with the new pool and keeps working.
	tbl, err = d.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	tx := d.MustBegin()
	for i := 0; i < 50; i++ {
		if err := tbl.Insert(tx, []byte(fmt.Sprintf("post-%04d", i)), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	writes := d.Stats().CleanerWrites.Load()
	deadline = time.Now().Add(2 * time.Second)
	for d.Stats().CleanerWrites.Load() == writes {
		if time.Now().After(deadline) {
			t.Fatal("cleaner did not resume after restart")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCleanerShrinksCheckpointRedo: cleaning before a fuzzy checkpoint
// empties the DPT the checkpoint records, which pushes the restart redo
// point forward. Two engines run identical committed traffic; the one
// whose pool was cleaned before its checkpoint restarts with strictly
// fewer redo applications.
func TestCleanerShrinksCheckpointRedo(t *testing.T) {
	run := func(clean bool) int {
		d := Open(Options{PageSize: 512, PoolSize: 64})
		tbl, err := d.CreateTable("t")
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < 10; b++ {
			tx := d.MustBegin()
			for i := 0; i < 20; i++ {
				if err := tbl.Insert(tx, k(b*20+i), v(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		if clean {
			// Drain the DPT the way the background cleaner would; explicit
			// passes keep the comparison deterministic.
			for d.Pool().CleanPass(0) > 0 {
			}
			if len(d.Pool().DPT()) != 0 {
				t.Fatal("DPT not empty after clean passes on quiesced engine")
			}
		}
		d.Checkpoint()
		d.Crash()
		rep, err := d.Restart()
		if err != nil {
			t.Fatal(err)
		}
		if err := d.VerifyConsistency(); err != nil {
			t.Fatal(err)
		}
		rtx := d.MustBegin()
		tbl, err = d.Table("t")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if _, err := tbl.Get(rtx, k(i)); err != nil {
				t.Fatalf("row %d lost (clean=%v): %v", i, clean, err)
			}
		}
		_ = rtx.Commit()
		return rep.RedosApplied
	}

	dirtyRedo := run(false)
	cleanRedo := run(true)
	if cleanRedo >= dirtyRedo {
		t.Fatalf("cleaning before checkpoint did not reduce redo: %d (cleaned) vs %d (dirty)", cleanRedo, dirtyRedo)
	}
}

// TestCleanerOptionsWiring: the engine starts a cleaner only when asked,
// and restarts preserve the setting across buildVolatile.
func TestCleanerOptionsWiring(t *testing.T) {
	plain := Open(Options{PageSize: 512, PoolSize: 32})
	tbl, _ := plain.CreateTable("t")
	tx := plain.MustBegin()
	for i := 0; i < 40; i++ {
		if err := tbl.Insert(tx, k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if plain.Stats().CleanerPasses.Load() != 0 {
		t.Fatal("cleaner ran without CleanerInterval set")
	}
	if len(plain.Pool().DPT()) == 0 {
		t.Fatal("expected dirty pages on the no-cleaner engine")
	}
	if _, err := plain.Begin(); errors.Is(err, ErrCrashed) {
		t.Fatal("engine unexpectedly down")
	}
}
