// Chaos sweep: the concurrent, adversarial counterpart of the serial
// crash-point sweep. N goroutines run a mixed SMO-dense workload through
// RunTxn — deadlocks, lock-wait timeouts, and engine crashes are repaired
// by the retry layer, not the workload — while the driver injects disk
// faults, plants silent corruption, and crashes the engine at random
// points under live traffic. After every crash the committed state is
// verified exactly against a model maintained at commit-ack time: every
// acknowledged commit is durable, no aborted or in-flight effect is
// visible, and the structural invariants hold.
package db

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ariesim/internal/storage"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
	"ariesim/internal/workload"
)

// ChaosOpts configures a chaos sweep. The zero value is a full-size run;
// every field has a default. The sweep is deterministic in Seed only up to
// goroutine scheduling — the point is surviving nondeterminism, and the
// verification is exact regardless of interleaving.
type ChaosOpts struct {
	// Seed drives the workload generators, fault schedule, and retry jitter.
	Seed int64
	// Workers is the number of concurrent transaction goroutines (default 8).
	Workers int
	// Crashes is the number of crash/restart points (default 20).
	Crashes int
	// CommitsPerPhase is how many acked commits must accumulate between
	// crashes (default 25), so every crash lands under live traffic.
	CommitsPerPhase int
	// PageSize (default 512) — small pages force SMOs under the workload.
	PageSize int
	// PoolSize in frames (default 64) — small pools force steals, so
	// uncommitted pages reach disk and restart must undo them.
	PoolSize int
	// Faults injects seeded disk faults and plants silent corruption.
	Faults bool
	// LockWaitTimeout bounds lock waits (default 20ms); the retry layer
	// absorbs the resulting ErrLockTimeouts.
	LockWaitTimeout time.Duration
	// WatchdogPatience is the livelock bound (default 15s): the run fails
	// if commit throughput stalls for this long between crashes — the
	// symptom of retries collapsing into livelock.
	WatchdogPatience time.Duration
	// OnlineRestart restarts the engine (and every verification fork)
	// online: workers resume the moment analysis finishes, racing the
	// background drain and loser undo, and a rotating subset of crash
	// points re-crashes the engine while that recovery is still running.
	OnlineRestart bool
	// RedoWorkers sets restart redo parallelism (0/1 = serial).
	RedoWorkers int
	// SnapshotReaders adds N lock-free snapshot reader goroutines to the
	// crash phase: each loops full-table scans through RunReadOnly while
	// the writers churn and the engine crashes. Every observation is
	// verified at the end against an LSN-keyed ledger of acked commits
	// replayed through the snapshot's LSN — a torn read (any prefix that
	// is not exactly the committed state at some commit boundary) fails
	// the sweep, as does a single lock-manager call by a snapshot reader.
	SnapshotReaders int
	// SecondaryIndex maintains a secondary index over the workload's values
	// for the whole run: every Insert/Update/Delete updates both trees in
	// one transaction, and every crash boundary cross-verifies the index
	// against the base table (each committed row indexed exactly once under
	// the key the extractor derives, no orphan entries) in the verification
	// fork AND the restarted engine's final check. With SnapshotReaders,
	// readers alternate base-table and index-order snapshot scans and both
	// observation kinds are ledger-verified.
	SecondaryIndex bool
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (o ChaosOpts) withDefaults() ChaosOpts {
	if o.Workers == 0 {
		o.Workers = 8
	}
	if o.Crashes == 0 {
		o.Crashes = 20
	}
	if o.CommitsPerPhase == 0 {
		o.CommitsPerPhase = 25
	}
	if o.PageSize == 0 {
		o.PageSize = 512
	}
	if o.PoolSize == 0 {
		o.PoolSize = 64
	}
	if o.LockWaitTimeout == 0 {
		o.LockWaitTimeout = 20 * time.Millisecond
	}
	if o.WatchdogPatience == 0 {
		o.WatchdogPatience = 15 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// ChaosResult summarizes a chaos sweep.
type ChaosResult struct {
	Crashes int // crash/restart points survived
	Commits int // transactions acked committed

	// Contention-repair counters (from trace.Stats at the end of the run).
	Deadlocks       uint64 // waits-for cycles detected
	DeadlockVictims uint64 // victims aborted out of those cycles
	LockTimeouts    uint64 // waits abandoned at the timeout
	TxnRetries      uint64 // automatic full-transaction retries
	DeadlockRetries uint64 // ... due to being a deadlock victim
	TimeoutRetries  uint64 // ... due to a lock-wait timeout
	CrashWaits      uint64 // retries that waited out a restart
	RetrySuccesses  uint64 // transactions that committed after >=1 retry
	CorruptPages    uint64 // checksum failures detected
	MediaRecoveries uint64 // pages healed from image copy + log
	FaultsInjected  storage.FaultCounts
	RestartRedos    uint64 // redo records applied across all restarts
	RestartUndos    uint64 // undo steps driven across all restarts
	GaveUp          int    // transactions that exhausted their retries (no effect committed)

	// Online-restart counters (zero unless ChaosOpts.OnlineRestart).
	OnlineRestarts     uint64 // restarts that opened after analysis
	MidRecoveryCrashes int    // crashes landed while background recovery ran
	RecoveringRetries  uint64 // RunTxn immediate retries on ErrRecovering
	CheckpointsSkipped uint64 // checkpoints refused while recovery was pending
	PagesOnDemand      uint64 // pages recovered at fix time by the hook
	PagesDrained       uint64 // pages recovered by the background drain

	// Snapshot-reader counters (zero unless ChaosOpts.SnapshotReaders > 0).
	SnapshotsVerified int    // observations verified committed-consistent
	SnapshotBegins    uint64 // lock-free snapshots taken
	SnapshotReads     uint64 // per-key visibility resolutions
	SnapshotTooOld    uint64 // pruned-snapshot aborts absorbed by retry
	ReadOnlyLockCalls uint64 // lock-manager calls by snapshot readers (must be 0)
}

// chaosSnapLedger keys every acked commit's staged rows by commit-record
// LSN so a snapshot observed at LSN s replays exactly: apply all entries
// with LSN <= s in LSN order. Methods are nil-safe so the writer paths can
// record unconditionally; the ledger only exists when SnapshotReaders > 0.
type chaosSnapLedger struct {
	mu      sync.Mutex
	entries map[wal.LSN]map[string]*string
}

func (l *chaosSnapLedger) record(lsn wal.LSN, local map[string]*string) {
	if l == nil {
		return
	}
	cp := make(map[string]*string, len(local))
	for k, v := range local {
		if v == nil {
			cp[k] = nil
		} else {
			s := *v
			cp[k] = &s
		}
	}
	l.mu.Lock()
	l.entries[lsn] = cp
	l.mu.Unlock()
}

func (l *chaosSnapLedger) applyThrough(s wal.LSN) map[string]string {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsns := make([]wal.LSN, 0, len(l.entries))
	for lsn := range l.entries {
		if lsn <= s {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
	model := map[string]string{}
	for _, lsn := range lsns {
		for k, v := range l.entries[lsn] {
			if v == nil {
				delete(model, k)
			} else {
				model[k] = *v
			}
		}
	}
	return model
}

// chaosSnapObs is one snapshot reader observation: the full table as seen
// at snapshot LSN s, keyed by primary key. viaIndex marks observations
// gathered through a secondary-index-order scan (same verification: the
// index merge must yield exactly the committed rows at s).
type chaosSnapObs struct {
	s        wal.LSN
	rows     map[string]string
	viaIndex bool
}

// chaosIndexName is the secondary index the SecondaryIndex option maintains.
const chaosIndexName = "chaos_by_val"

// chaosIndexExtract derives the secondary key from a row value: the first
// two bytes. The workload's values collide heavily under it, so the
// secondary tree exercises duplicate-key paths, and short control values
// ("dl", "sep") stay legal.
func chaosIndexExtract(value []byte) []byte {
	if len(value) > 2 {
		value = value[:2]
	}
	return append([]byte(nil), value...)
}

// chaosModel is the exact model of acked-committed state. Mutations happen
// only inside RunTxn OnCommit callbacks — atomically with the commit ack —
// so at any crash instant the model IS the set of durable transactions.
type chaosModel struct {
	mu   sync.Mutex
	rows map[string]string
}

func (m *chaosModel) apply(local map[string]*string) {
	m.mu.Lock()
	for k, v := range local {
		if v == nil {
			delete(m.rows, k)
		} else {
			m.rows[k] = *v
		}
	}
	m.mu.Unlock()
}

func (m *chaosModel) snapshot() map[string]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]string, len(m.rows))
	for k, v := range m.rows {
		out[k] = v
	}
	return out
}

// chaosUpsert writes k=v regardless of prior existence and stages the
// result. The insert/update race with concurrent deleters is looped over:
// both ErrDuplicate and ErrNotFound are the other side of a race this
// transaction can immediately retry in place.
func chaosUpsert(tbl *Table, tx *txn.Tx, k, v []byte, local map[string]*string) error {
	var err error
	for i := 0; i < 4; i++ {
		if err = tbl.Insert(tx, k, v); err == nil {
			break
		}
		if !errors.Is(err, ErrDuplicate) {
			return err
		}
		if err = tbl.Update(tx, k, v); err == nil {
			break
		}
		if !errors.Is(err, ErrNotFound) {
			return err
		}
	}
	if err != nil {
		return err
	}
	s := string(v)
	local[string(k)] = &s
	return nil
}

// RunChaosSweep runs the concurrent crash-under-load chaos sweep and
// verifies exact committed state after every crash. It returns an error on
// the first verification failure, livelock, or unexpected engine error.
func RunChaosSweep(o ChaosOpts) (*ChaosResult, error) {
	o = o.withDefaults()
	d := Open(Options{
		PageSize: o.PageSize, PoolSize: o.PoolSize,
		LockWaitTimeout: o.LockWaitTimeout,
		OnlineRestart:   o.OnlineRestart,
		RedoWorkers:     o.RedoWorkers,
	})
	const tableName = "chaos"
	tbl0, err := d.CreateTable(tableName)
	if err != nil {
		return nil, fmt.Errorf("chaos: create table: %v", err)
	}
	if o.SecondaryIndex {
		if err := tbl0.CreateIndex(chaosIndexName, chaosIndexExtract); err != nil {
			return nil, fmt.Errorf("chaos: create index: %v", err)
		}
	}
	// verifyState checks an engine's visible rows (and, with SecondaryIndex,
	// the index/base cross-consistency) against a model snapshot.
	verifyState := func(vd *DB, want map[string]string) error {
		if err := verifyAgainst(vd, tableName, want); err != nil {
			return err
		}
		if o.SecondaryIndex {
			return verifyIndexAgainst(vd, tableName, chaosIndexName, want)
		}
		return nil
	}
	model := &chaosModel{rows: map[string]string{}}
	var commits atomic.Int64
	var gaveUp atomic.Int64
	res := &ChaosResult{}
	var snapLedger *chaosSnapLedger // nil unless the snapshot phase runs
	if o.SnapshotReaders > 0 {
		snapLedger = &chaosSnapLedger{entries: map[wal.LSN]map[string]*string{}}
	}

	// Phase 1: deterministic contention. Guarantees both repair paths —
	// deadlock victim and lock-wait timeout — are exercised and retried to
	// success even if the random phase's interleavings happen to avoid them.
	o.Logf("chaos: forcing deadlock and lock-timeout repair paths")
	for tries := 0; d.Stats().DeadlockVictims.Load() == 0; tries++ {
		// A scheduling hiccup can let a timeout beat the cycle; rerun the
		// rendezvous until a victim was genuinely aborted.
		if tries == 5 {
			return nil, fmt.Errorf("chaos: forced deadlock phase aborted no victim in %d tries", tries)
		}
		if err := forceDeadlockRepair(d, tableName, model, &commits, snapLedger, o.Seed+int64(tries)); err != nil {
			return nil, err
		}
	}
	for tries := 0; d.Stats().LockTimeouts.Load() == 0; tries++ {
		if tries == 5 {
			return nil, fmt.Errorf("chaos: forced timeout phase timed nothing out in %d tries", tries)
		}
		if err := forceTimeoutRepair(d, tableName, model, &commits, snapLedger, o.Seed+int64(tries), o.LockWaitTimeout); err != nil {
			return nil, err
		}
	}

	// Phase 2: concurrent workers under a random crash schedule. The disk
	// turns hostile only now — phase 1's rendezvous must not be broken up
	// by an injected fault.
	var inj *storage.Faults
	if o.Faults {
		inj = storage.NewFaults(storage.FaultConfig{
			Seed:           o.Seed * 7,
			ReadErrorProb:  0.02,
			WriteErrorProb: 0.02,
			TornWriteProb:  0.03,
			BitFlipProb:    0.03,
		})
		d.Disk().SetInjector(inj)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var workerErrMu sync.Mutex
	var workerErr error
	failWorker := func(err error) {
		workerErrMu.Lock()
		if workerErr == nil {
			workerErr = err
		}
		workerErrMu.Unlock()
	}
	failed := func() error {
		workerErrMu.Lock()
		defer workerErrMu.Unlock()
		return workerErr
	}

	hot := [][]byte{[]byte("hot-0"), []byte("hot-1"), []byte("hot-2")}
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := workload.New(workload.Spec{
				Keys: 500, InsertFrac: 0.45, DeleteFrac: 0.35, ReadFrac: 0.2,
				Seed: o.Seed + int64(w)*101,
			})
			rng := rand.New(rand.NewSource(o.Seed + int64(w)*977))
			var local map[string]*string
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				opts := RunTxnOpts{
					Seed: o.Seed + int64(w)*1000003 + int64(iter),
					OnCommit: func() {
						model.apply(local)
						commits.Add(1)
					},
					OnCommitted: func(lsn wal.LSN) { snapLedger.record(lsn, local) },
				}
				err := d.RunTxnWith(opts, func(tx *txn.Tx) error {
					local = map[string]*string{} // fresh staging per attempt
					tbl, err := d.TableFor(tx, tableName)
					if err != nil {
						return err
					}
					val := []byte(fmt.Sprintf("w%d-i%d", w, iter))
					switch {
					case w < 2:
						// Adversary pair: the two hot keys in opposite
						// order — the classic deadlock shape.
						a, b := hot[0], hot[1]
						if w == 1 {
							a, b = b, a
						}
						if err := chaosUpsert(tbl, tx, a, val, local); err != nil {
							return err
						}
						if err := chaosUpsert(tbl, tx, b, val, local); err != nil {
							return err
						}
					case w == 2 && iter%7 == 0:
						// Slow holder: sits on a hot key past the lock-wait
						// timeout so contenders time out and retry.
						if err := chaosUpsert(tbl, tx, hot[2], val, local); err != nil {
							return err
						}
						time.Sleep(o.LockWaitTimeout * 3 / 2)
					default:
						if rng.Intn(4) == 0 {
							if err := chaosUpsert(tbl, tx, hot[2], val, local); err != nil {
								return err
							}
						}
					}
					n := 1 + rng.Intn(5)
					for j := 0; j < n; j++ {
						op := gen.Next()
						switch op.Kind {
						case workload.Insert:
							err := tbl.Insert(tx, op.Key, op.Value)
							switch {
							case err == nil:
								v := string(op.Value)
								local[string(op.Key)] = &v
							case errors.Is(err, ErrDuplicate):
								// key exists; fine
							default:
								return err
							}
						case workload.Delete:
							err := tbl.Delete(tx, op.Key)
							switch {
							case err == nil:
								local[string(op.Key)] = nil
							case errors.Is(err, ErrNotFound):
							default:
								return err
							}
						default:
							if _, err := tbl.Get(tx, op.Key); err != nil && !errors.Is(err, ErrNotFound) {
								return err
							}
						}
					}
					return nil
				})
				if err != nil {
					// A transaction that exhausted its retries committed
					// nothing — a legal (if sad) outcome under extreme
					// contention; the watchdog catches systemic collapse.
					// The give-up error wraps its contention/crash cause, so
					// ClassifyErr sees through it; anything genuinely fatal
					// fails the run.
					if ClassifyErr(err) == ClassFatal {
						failWorker(fmt.Errorf("chaos: worker %d: %w", w, err))
						return
					}
					gaveUp.Add(1)
				}
			}
		}(w)
	}

	// Snapshot readers: lock-free full scans racing the writers and the
	// crash schedule. Observations are verified against the LSN ledger only
	// after the run quiesces — a commit can become visible to a snapshot
	// before its OnCommitted callback records it, so the ledger is complete
	// only once the writers stop.
	obsCh := make(chan chaosSnapObs, 4096)
	for r := 0; r < o.SnapshotReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				var obs *chaosSnapObs
				viaIndex := o.SecondaryIndex && iter%2 == 1
				err := d.RunReadOnlyWith(RunTxnOpts{
					Seed:          o.Seed + int64(r)*7919 + int64(iter),
					RetryDeadline: o.WatchdogPatience,
				}, func(tx *txn.Tx) error {
					obs = nil
					snap := tx.Snapshot()
					tbl, err := d.TableFor(tx, tableName)
					if err != nil {
						return err
					}
					rows := map[string]string{}
					if viaIndex && snap != nil {
						// Index-order scan through the lock-free chain merge;
						// the pair must agree with the extractor on the spot.
						if err := tbl.ScanIndex(tx, chaosIndexName, func(sk []byte, row Row) (bool, error) {
							if string(sk) != string(chaosIndexExtract(row.Value)) {
								return false, fmt.Errorf("index scan pair %q / %q disagrees with extractor", sk, row.Value)
							}
							if _, dup := rows[string(row.Key)]; dup {
								return false, fmt.Errorf("index scan emitted row %q twice", row.Key)
							}
							rows[string(row.Key)] = string(row.Value)
							return true, nil
						}); err != nil {
							return err
						}
					} else if err := tbl.Scan(tx, nil, nil, func(row Row) (bool, error) {
						rows[string(row.Key)] = string(row.Value)
						return true, nil
					}); err != nil {
						return err
					}
					if snap != nil { // locked fallback reads are not point-in-time
						obs = &chaosSnapObs{s: snap.LSN, rows: rows, viaIndex: viaIndex}
					}
					return nil
				})
				if err != nil {
					if ClassifyErr(err) == ClassFatal {
						failWorker(fmt.Errorf("chaos: snapshot reader %d: %w", r, err))
						return
					}
					continue // give-up under extreme contention: legal, retry fresh
				}
				if obs != nil {
					select {
					case obsCh <- *obs:
					default: // bounded backlog; later snapshots are just as good
					}
				}
			}
		}(r)
	}

	crashRNG := rand.New(rand.NewSource(o.Seed * 31))
	for c := 0; c < o.Crashes; c++ {
		// Let traffic accumulate, with the livelock watchdog running.
		target := commits.Load() + int64(o.CommitsPerPhase)
		deadline := time.Now().Add(o.WatchdogPatience)
		for commits.Load() < target {
			if err := failed(); err != nil {
				close(stop)
				wg.Wait()
				return nil, err
			}
			if time.Now().After(deadline) {
				close(stop)
				wg.Wait()
				return nil, fmt.Errorf("chaos: livelock: %d/%d commits after %v at crash point %d (retry throughput collapsed)",
					commits.Load()-(target-int64(o.CommitsPerPhase)), o.CommitsPerPhase, o.WatchdogPatience, c)
			}
			time.Sleep(200 * time.Microsecond)
		}
		if c%4 == 3 {
			d.Checkpoint() // later crashes exercise bounded analysis
		}
		if o.Faults {
			// Push dirty pages through the faulty device under live traffic
			// (FlushPage S-latches and forces the log first, so this is
			// safe) so the write fates actually fire and the disk has pages
			// to corrupt. Failures are fine — the log has everything.
			_ = d.Pool().FlushAll()
		}

		// Crash under live traffic, then snapshot the model: commits are
		// acked under the same mutex Crash holds, so nothing can slip into
		// the model after the crash instant.
		d.Crash()
		snap := model.snapshot()
		if o.Faults && c%2 == 1 {
			// Plant silent corruption on the crashed stable state; both the
			// verification fork and the restarted engine must heal it.
			if ids := d.Disk().PageIDs(); len(ids) > 0 {
				victim := ids[crashRNG.Intn(len(ids))]
				d.Disk().CorruptBits(victim, crashRNG.Intn(o.PageSize-1)+1, byte(crashRNG.Intn(255)+1))
			}
		}

		// Verify on a fork of the crashed stable state while the real
		// engine restarts — the workers resume traffic immediately, and the
		// fork proves what a recovery of this exact crash instant yields.
		fork := d.Fork()
		if _, err := fork.Restart(); err != nil {
			close(stop)
			wg.Wait()
			return nil, fmt.Errorf("chaos: crash %d: fork restart: %v", c, err)
		}
		if _, err := d.Restart(); err != nil {
			close(stop)
			wg.Wait()
			return nil, fmt.Errorf("chaos: crash %d: restart: %v", c, err)
		}

		// Under online restart the engine is already serving the workers
		// while its background drain and loser undo run. On a rotating
		// subset, crash it AGAIN inside that window — the hardest crash
		// point: live traffic, half-drained DPT, half-undone losers, no
		// checkpoint taken since before the first crash — and verify a
		// recovery of that instant too.
		if o.OnlineRestart && c%3 == 2 {
			time.Sleep(time.Duration(crashRNG.Intn(1500)+100) * time.Microsecond)
			d.Crash()
			snap2 := model.snapshot()
			refork := d.Fork()
			if _, err := refork.Restart(); err != nil {
				close(stop)
				wg.Wait()
				return nil, fmt.Errorf("chaos: crash %d: mid-recovery fork restart: %v", c, err)
			}
			if _, err := d.Restart(); err != nil {
				close(stop)
				wg.Wait()
				return nil, fmt.Errorf("chaos: crash %d: mid-recovery restart: %v", c, err)
			}
			if _, err := refork.AwaitRecovered(); err != nil {
				close(stop)
				wg.Wait()
				return nil, fmt.Errorf("chaos: crash %d: mid-recovery fork await: %v", c, err)
			}
			if err := verifyState(refork, snap2); err != nil {
				close(stop)
				wg.Wait()
				return nil, fmt.Errorf("chaos: crash %d: mid-recovery: %v", c, err)
			}
			res.MidRecoveryCrashes++
		}

		if _, err := fork.AwaitRecovered(); err != nil {
			close(stop)
			wg.Wait()
			return nil, fmt.Errorf("chaos: crash %d: fork await recovered: %v", c, err)
		}
		if err := verifyState(fork, snap); err != nil {
			close(stop)
			wg.Wait()
			return nil, fmt.Errorf("chaos: crash %d: %v", c, err)
		}
		res.Crashes++
		o.Logf("chaos: crash %2d survived: %4d commits acked, %4d rows verified",
			c, commits.Load(), len(snap))
	}

	close(stop)
	wg.Wait()
	if err := failed(); err != nil {
		return nil, err
	}

	// Final quiesced verification on the live engine itself (waiting out
	// any still-running background recovery first).
	if _, err := d.AwaitRecovered(); err != nil {
		return nil, fmt.Errorf("chaos: final await recovered: %v", err)
	}
	if err := verifyState(d, model.snapshot()); err != nil {
		return nil, fmt.Errorf("chaos: final: %v", err)
	}

	sn := d.Stats().Snap()
	if o.SnapshotReaders > 0 {
		// Readers have exited (wg above); drain and verify every snapshot
		// observation against the now-complete acked-commit ledger.
		close(obsCh)
		indexObs := 0
		for obs := range obsCh {
			via := "scan"
			if obs.viaIndex {
				via = "index scan"
				indexObs++
			}
			want := snapLedger.applyThrough(obs.s)
			if len(want) != len(obs.rows) {
				return nil, fmt.Errorf("chaos: torn snapshot (%s) at LSN %d: observed %d rows, ledger has %d",
					via, obs.s, len(obs.rows), len(want))
			}
			for k, v := range want {
				if obs.rows[k] != v {
					return nil, fmt.Errorf("chaos: torn snapshot (%s) at LSN %d: key %q = %q, ledger says %q",
						via, obs.s, k, obs.rows[k], v)
				}
			}
			res.SnapshotsVerified++
		}
		if o.SecondaryIndex && indexObs == 0 {
			return nil, fmt.Errorf("chaos: snapshot phase produced no index-scan observations")
		}
		if res.SnapshotsVerified == 0 {
			return nil, fmt.Errorf("chaos: snapshot phase produced no verifiable observations")
		}
		if sn.ReadOnlyLockCalls != 0 {
			return nil, fmt.Errorf("chaos: snapshot readers issued %d lock-manager calls (must be 0)",
				sn.ReadOnlyLockCalls)
		}
		res.SnapshotBegins = sn.SnapshotBegins
		res.SnapshotReads = sn.SnapshotReads
		res.SnapshotTooOld = sn.SnapshotTooOld
		res.ReadOnlyLockCalls = sn.ReadOnlyLockCalls
	}
	res.Commits = int(commits.Load())
	res.GaveUp = int(gaveUp.Load())
	res.Deadlocks = sn.Deadlocks
	res.DeadlockVictims = sn.DeadlockVictims
	res.LockTimeouts = sn.LockTimeouts
	res.TxnRetries = sn.TxnRetries
	res.DeadlockRetries = sn.TxnDeadlockRetries
	res.TimeoutRetries = sn.TxnTimeoutRetries
	res.CrashWaits = sn.TxnCrashWaits
	res.RetrySuccesses = sn.TxnRetrySuccesses
	res.CorruptPages = sn.CorruptPages
	res.MediaRecoveries = sn.MediaRecoveries
	res.RestartRedos = sn.RedoApplied
	res.RestartUndos = sn.UndoPageOriented + sn.UndoLogical
	res.OnlineRestarts = sn.OnlineRestarts
	res.RecoveringRetries = sn.TxnRecoveringRetries
	res.CheckpointsSkipped = sn.CheckpointsSkippedRecovering
	res.PagesOnDemand = sn.PagesRedoneOnDemand
	res.PagesDrained = sn.PagesRedoneByDrain
	if inj != nil {
		res.FaultsInjected = inj.Counts()
	}
	if res.DeadlockRetries == 0 || res.TimeoutRetries == 0 || res.RetrySuccesses == 0 {
		return res, fmt.Errorf("chaos: repair paths under-exercised: %d deadlock retries, %d timeout retries, %d retry successes",
			res.DeadlockRetries, res.TimeoutRetries, res.RetrySuccesses)
	}
	return res, nil
}

// verifyAgainst checks that the engine's visible rows are exactly want and
// that every structural invariant holds.
func verifyAgainst(d *DB, tableName string, want map[string]string) error {
	tbl, err := d.Table(tableName)
	if err != nil {
		return err
	}
	got := map[string]string{}
	tx, err := d.Begin()
	if err != nil {
		return err
	}
	if err := tbl.Scan(tx, []byte(""), nil, func(r Row) (bool, error) {
		got[string(r.Key)] = string(r.Value)
		return true, nil
	}); err != nil {
		return fmt.Errorf("verify scan: %v", err)
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	for k, v := range want {
		gv, ok := got[k]
		if !ok {
			return fmt.Errorf("committed row %q missing after restart (want %q)", k, v)
		}
		if gv != v {
			return fmt.Errorf("row %q = %q after restart, want %q", k, gv, v)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			return fmt.Errorf("phantom row %q visible after restart (uncommitted effect?)", k)
		}
	}
	if err := d.VerifyConsistency(); err != nil {
		return fmt.Errorf("consistency: %v", err)
	}
	return nil
}

// verifyIndexAgainst cross-checks a secondary index against the committed
// model: an index-order scan must yield every committed row exactly once,
// under exactly the key the extractor derives from its committed value, and
// nothing else — zero base/index divergence at this crash boundary.
func verifyIndexAgainst(d *DB, tableName, indexName string, want map[string]string) error {
	tbl, err := d.Table(tableName)
	if err != nil {
		return err
	}
	tx, err := d.Begin()
	if err != nil {
		return err
	}
	got := map[string]string{} // primary key → secondary key observed
	if err := tbl.ScanIndex(tx, indexName, func(sk []byte, r Row) (bool, error) {
		if prev, dup := got[string(r.Key)]; dup {
			return false, fmt.Errorf("index %q: row %q indexed twice (%q and %q)", indexName, r.Key, prev, sk)
		}
		got[string(r.Key)] = string(sk)
		wv, ok := want[string(r.Key)]
		if !ok {
			return false, fmt.Errorf("index %q: orphan entry %q → uncommitted row %q", indexName, sk, r.Key)
		}
		if string(r.Value) != wv {
			return false, fmt.Errorf("index %q: row %q = %q through the index, committed value %q", indexName, r.Key, r.Value, wv)
		}
		return true, nil
	}); err != nil {
		return fmt.Errorf("index verify scan: %v", err)
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	for k, v := range want {
		sk, ok := got[k]
		if !ok {
			return fmt.Errorf("index %q: committed row %q missing from index", indexName, k)
		}
		if wantSK := string(chaosIndexExtract([]byte(v))); sk != wantSK {
			return fmt.Errorf("index %q: row %q indexed under %q, extractor derives %q", indexName, k, sk, wantSK)
		}
	}
	return nil
}

// forceDeadlockRepair rendezvouses two RunTxn transactions so each holds
// one of two keys before requesting the other's — a guaranteed waits-for
// cycle. The victim selection aborts one; RunTxn retries it to success.
// A committed separator key sits between the two so their initial inserts
// are not next-key neighbors (adjacent inserts would couple through the
// next-key lock before the rendezvous).
func forceDeadlockRepair(d *DB, tableName string, model *chaosModel, commits *atomic.Int64, ledger *chaosSnapLedger, seed int64) error {
	var sepLocal map[string]*string
	err := d.RunTxnWith(RunTxnOpts{
		Seed:        seed + 17,
		OnCommit:    func() { model.apply(sepLocal); commits.Add(1) },
		OnCommitted: func(lsn wal.LSN) { ledger.record(lsn, sepLocal) },
	}, func(tx *txn.Tx) error {
		sepLocal = map[string]*string{}
		tbl, err := d.TableFor(tx, tableName)
		if err != nil {
			return err
		}
		return chaosUpsert(tbl, tx, []byte("force-dl-ab-sep"), []byte("sep"), sepLocal)
	})
	if err != nil {
		return fmt.Errorf("chaos: forced deadlock separator: %w", err)
	}
	keys := [2][]byte{[]byte("force-dl-a"), []byte("force-dl-b")}
	var barrier sync.WaitGroup
	barrier.Add(2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			first, second := keys[i], keys[1-i]
			rendezvoused := false
			var local map[string]*string
			errs[i] = d.RunTxnWith(RunTxnOpts{
				Seed:        seed + int64(i) + 51,
				OnCommit:    func() { model.apply(local); commits.Add(1) },
				OnCommitted: func(lsn wal.LSN) { ledger.record(lsn, local) },
			}, func(tx *txn.Tx) error {
				local = map[string]*string{}
				tbl, err := d.TableFor(tx, tableName)
				if err != nil {
					return err
				}
				if err := chaosUpsert(tbl, tx, first, []byte("dl"), local); err != nil {
					return err
				}
				if !rendezvoused {
					// Only the first attempt synchronizes; the retry (the
					// victim re-executing) must run free or it would wait
					// for a partner that already finished.
					rendezvoused = true
					barrier.Done()
					barrier.Wait()
				}
				return chaosUpsert(tbl, tx, second, []byte("dl"), local)
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("chaos: forced deadlock txn %d: %w", i, err)
		}
	}
	return nil
}

// forceTimeoutRepair parks one transaction on a key well past the lock-wait
// timeout while another requests it: the waiter must time out and RunTxn
// must retry it to success once the holder commits.
func forceTimeoutRepair(d *DB, tableName string, model *chaosModel, commits *atomic.Int64, ledger *chaosSnapLedger, seed int64, timeout time.Duration) error {
	key := []byte("force-to")
	holderHas := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	var holderErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		var local map[string]*string
		holderErr = d.RunTxnWith(RunTxnOpts{
			Seed:        seed + 97,
			OnCommit:    func() { model.apply(local); commits.Add(1) },
			OnCommitted: func(lsn wal.LSN) { ledger.record(lsn, local) },
		}, func(tx *txn.Tx) error {
			local = map[string]*string{}
			tbl, err := d.TableFor(tx, tableName)
			if err != nil {
				return err
			}
			if err := chaosUpsert(tbl, tx, key, []byte("held"), local); err != nil {
				return err
			}
			once.Do(func() { close(holderHas) })
			time.Sleep(timeout * 5)
			return nil
		})
	}()
	<-holderHas
	var local map[string]*string
	waiterErr := d.RunTxnWith(RunTxnOpts{
		Seed:        seed + 193,
		OnCommit:    func() { model.apply(local); commits.Add(1) },
		OnCommitted: func(lsn wal.LSN) { ledger.record(lsn, local) },
	}, func(tx *txn.Tx) error {
		local = map[string]*string{}
		tbl, err := d.TableFor(tx, tableName)
		if err != nil {
			return err
		}
		return chaosUpsert(tbl, tx, key, []byte("won"), local)
	})
	wg.Wait()
	if holderErr != nil {
		return fmt.Errorf("chaos: forced timeout holder: %w", holderErr)
	}
	if waiterErr != nil {
		return fmt.Errorf("chaos: forced timeout waiter: %w", waiterErr)
	}
	return nil
}
