package db

import (
	"errors"
	"fmt"
	"testing"

	"ariesim/internal/storage"
)

func TestBeginReturnsErrCrashedWhileDown(t *testing.T) {
	d := Open(Options{})
	tbl, err := d.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := d.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(tx, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	d.Crash()
	if _, err := d.Begin(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Begin while down: got %v, want ErrCrashed", err)
	}
	if _, err := d.CreateTable("t2"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("CreateTable while down: got %v, want ErrCrashed", err)
	}

	if _, err := d.Restart(); err != nil {
		t.Fatal(err)
	}
	tx, err = d.Begin()
	if err != nil {
		t.Fatalf("Begin after restart: %v", err)
	}
	tbl, _ = d.Table("t")
	if _, err := tbl.Get(tx, []byte("k")); err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
}

// TestReadPathSelfHealsSilentCorruption flips stored bits on a flushed
// page behind the engine's back; the next read must detect the checksum
// mismatch and rebuild the page via media recovery without the caller
// noticing anything but a counter.
func TestReadPathSelfHealsSilentCorruption(t *testing.T) {
	d := Open(Options{PageSize: 512})
	tbl, err := d.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	tx := d.MustBegin()
	for i := 0; i < 100; i++ {
		if err := tbl.Insert(tx, []byte(fmt.Sprintf("k%03d", i)), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := d.Pool().FlushAll(); err != nil {
		t.Fatal(err)
	}
	d.Pool().Crash() // drop clean frames so reads hit the disk

	corrupted := 0
	for _, pid := range d.Disk().PageIDs() {
		if corrupted == 3 {
			break
		}
		d.Disk().CorruptBits(pid, 100, 0x7F)
		corrupted++
	}

	check := d.MustBegin()
	for i := 0; i < 100; i++ {
		if _, err := tbl.Get(check, []byte(fmt.Sprintf("k%03d", i))); err != nil {
			t.Fatalf("k%03d unreadable after self-heal: %v", i, err)
		}
	}
	_ = check.Commit()
	if got := d.Stats().MediaRecoveries.Load(); got == 0 {
		t.Fatal("no media recovery ran; corruption was not detected")
	}
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestWorkloadSurvivesSeededFaults runs a full transactional workload on a
// disk that fails, tears, and bit-flips writes under a deterministic
// schedule, with a pool small enough to force evictions through the
// faulty device. The engine must complete every transaction, self-heal
// every detected corruption, and end bit-exact with the fault-free model.
func TestWorkloadSurvivesSeededFaults(t *testing.T) {
	d := Open(Options{PageSize: 512, PoolSize: 8})
	tbl, err := d.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	inj := storage.NewFaults(storage.FaultConfig{
		Seed:           99,
		ReadErrorProb:  0.05,
		WriteErrorProb: 0.05,
		TornWriteProb:  0.10,
		BitFlipProb:    0.10,
	})
	d.Disk().SetInjector(inj)

	model := map[string]string{}
	for txi := 0; txi < 30; txi++ {
		tx := d.MustBegin()
		for op := 0; op < 5; op++ {
			k := fmt.Sprintf("k%03d", (txi*5+op*37)%150)
			v := fmt.Sprintf("v%d-%d", txi, op)
			if _, ok := model[k]; ok {
				if err := tbl.Update(tx, []byte(k), []byte(v)); err != nil {
					t.Fatalf("txn %d update %s: %v", txi, k, err)
				}
			} else {
				if err := tbl.Insert(tx, []byte(k), []byte(v)); err != nil {
					t.Fatalf("txn %d insert %s: %v", txi, k, err)
				}
			}
			model[k] = v
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("txn %d commit: %v", txi, err)
		}
	}

	// The injector stays armed: verification itself must push through the
	// faulty device (VerifyConsistency repairs what the checksums catch).
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	tx := d.MustBegin()
	err = tbl.Scan(tx, nil, nil, func(r Row) (bool, error) {
		got[string(r.Key)] = string(r.Value)
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	if len(got) != len(model) {
		t.Fatalf("%d rows, want %d", len(got), len(model))
	}
	for k, v := range model {
		if got[k] != v {
			t.Fatalf("row %q = %q, want %q", k, got[k], v)
		}
	}
	t.Logf("faults injected: %+v; retries=%d corrupt=%d recoveries=%d",
		inj.Counts(), d.Stats().IORetries.Load(), d.Stats().CorruptPages.Load(),
		d.Stats().MediaRecoveries.Load())
}

// TestTornLogTailUndoesLoser crashes with a torn log tail: the in-flight
// transaction's newest records survive only up to the tear, and restart
// must treat the truncated prefix as the whole truth — undoing the loser
// and keeping committed work intact.
func TestTornLogTailUndoesLoser(t *testing.T) {
	d := Open(Options{})
	tbl, err := d.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	tx := d.MustBegin()
	if err := tbl.Insert(tx, []byte("committed"), []byte("survives")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	loser := d.MustBegin()
	for i := 0; i < 5; i++ {
		if err := tbl.Insert(loser, []byte(fmt.Sprintf("loser%d", i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Crash with two unforced records surviving, the second torn: the CRC
	// sweep truncates the log mid-way through the loser's work.
	d.Log().CrashWithTornTail(2)
	d.Crash()
	if d.Log().TornTailTruncations() != 1 {
		t.Fatalf("truncations = %d, want 1", d.Log().TornTailTruncations())
	}

	if _, err := d.Restart(); err != nil {
		t.Fatal(err)
	}
	tbl, _ = d.Table("t")
	check := d.MustBegin()
	if _, err := tbl.Get(check, []byte("committed")); err != nil {
		t.Fatalf("committed row lost: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := tbl.Get(check, []byte(fmt.Sprintf("loser%d", i))); err == nil {
			t.Fatalf("loser%d survived the crash", i)
		}
	}
	_ = check.Commit()
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}
