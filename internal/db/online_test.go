package db

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"ariesim/internal/recovery"
	"ariesim/internal/txn"
)

// buildOnlineBase populates a small-page engine with committed rows, takes
// a checkpoint partway so analysis has a master record to start from, and
// leaves an in-flight insert-only loser plus an in-flight delete loser
// forced into the stable log. Returns the committed model.
func buildOnlineBase(t *testing.T, d *DB, rows int) map[string]string {
	t.Helper()
	tbl, err := d.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	model := map[string]string{}
	for i := 0; i < rows; i++ {
		tx := d.MustBegin()
		key, val := string(k(i)), string(v(i))
		if err := tbl.Insert(tx, []byte(key), []byte(val)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		model[key] = val
		if i == rows/2 {
			d.Checkpoint()
		}
	}
	// Insert-only loser: eligible for background undo under reinstated locks.
	ins := d.MustBegin()
	for i := 0; i < 4; i++ {
		if err := tbl.Insert(ins, []byte(fmt.Sprintf("zz-loser%02d", i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Delete loser: its next-key locks are not log-derivable, so it must be
	// fully undone before the engine opens (stabilization).
	del := d.MustBegin()
	if err := tbl.Delete(del, k(1)); err != nil {
		t.Fatal(err)
	}
	d.Log().ForceAll() // both losers' records survive the crash
	return model
}

func verifyModel(t *testing.T, d *DB, model map[string]string) {
	t.Helper()
	tbl, err := d.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	tx := d.MustBegin()
	got := map[string]string{}
	if err := tbl.Scan(tx, nil, nil, func(r Row) (bool, error) {
		got[string(r.Key)] = string(r.Value)
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	if len(got) != len(model) {
		t.Fatalf("scan found %d rows, want %d", len(got), len(model))
	}
	for key, val := range model {
		if got[key] != val {
			t.Fatalf("row %q = %q, want %q", key, got[key], val)
		}
	}
}

// TestOnlineRestartCommitsBeforeRecoveryDone is the tentpole contract: with
// a slow data device the engine accepts and commits new work while the DPT
// drain is still running, operations that need a quiesced engine fail with
// ErrRecovering, checkpoints are skipped (not mis-taken), and after
// AwaitRecovered the engine is exactly as consistent as after an offline
// restart.
func TestOnlineRestartCommitsBeforeRecoveryDone(t *testing.T) {
	d := Open(Options{PageSize: 512, PoolSize: 128, OnlineRestart: true, RedoWorkers: 4})
	model := buildOnlineBase(t, d, 300)
	d.Crash()
	// Slow the device so the background drain holds the recovering window
	// open long enough to probe it.
	d.Disk().SetIODelay(time.Millisecond)
	rep, err := d.Restart()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Online {
		t.Fatal("report not marked online")
	}
	if !d.Recovering() {
		t.Fatal("engine finished recovery before we could probe it (device too fast?)")
	}

	// A transaction commits while recovery is still in flight; its reads go
	// through the on-demand hook.
	tbl, _ := d.Table("t")
	err = d.RunTxn(func(tx *txn.Tx) error {
		if got, err := tbl.Get(tx, k(7)); err != nil || string(got) != string(v(7)) {
			return fmt.Errorf("get during recovery = %q, %v", got, err)
		}
		return tbl.Insert(tx, []byte("during-recovery"), []byte("committed"))
	})
	if err != nil {
		t.Fatalf("commit during recovery: %v", err)
	}
	model["during-recovery"] = "committed"

	if d.Recovering() {
		// Probe the gates only if the window is still open (the commit above
		// may have outlived the drain on a fast run).
		if err := d.VerifyConsistency(); !errors.Is(err, ErrRecovering) {
			t.Fatalf("VerifyConsistency mid-recovery = %v, want ErrRecovering", err)
		}
		if _, err := d.CreateTable("t2"); !errors.Is(err, ErrRecovering) {
			t.Fatalf("CreateTable mid-recovery = %v, want ErrRecovering", err)
		}
		d.Checkpoint()
		if n := d.Stats().CheckpointsSkippedRecovering.Load(); n == 0 {
			t.Fatal("mid-recovery checkpoint was not skipped")
		}
	}

	full, err := d.AwaitRecovered()
	if err != nil {
		t.Fatal(err)
	}
	if full.LosersUndone == 0 {
		t.Fatal("no losers undone")
	}
	if full.LosersBackground == 0 {
		t.Fatal("insert-only loser was not classified for background undo")
	}
	if full.LosersStabilized == 0 {
		t.Fatal("delete loser was not stabilized before open")
	}
	if d.Stats().LocksReinstated.Load() == 0 {
		t.Fatal("no locks reinstated for the background loser")
	}
	if full.PagesDrained+full.PagesOnDemand == 0 {
		t.Fatal("no pages recovered")
	}
	d.Disk().SetIODelay(0)
	verifyModel(t, d, model)
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().OnlineRestarts.Load() != 1 {
		t.Fatalf("OnlineRestarts = %d", d.Stats().OnlineRestarts.Load())
	}
}

// TestOnlineRestartUndoesLoserInBackground checks the lock story: after an
// online restart the insert-only loser's keys are X-locked by the
// reinstated locks, so a reader blocks until the background undo ends the
// loser — and then sees the key gone, exactly as with a live rollback.
func TestOnlineRestartUndoesLoserInBackground(t *testing.T) {
	d := Open(Options{PageSize: 512, PoolSize: 128, OnlineRestart: true})
	model := buildOnlineBase(t, d, 100)
	d.Crash()
	if _, err := d.Restart(); err != nil {
		t.Fatal(err)
	}
	tbl, _ := d.Table("t")
	// These Gets either arrive after the background undo (key already gone)
	// or queue behind the loser's reinstated X lock until it ends; both
	// paths must end in NotFound, never in the loser's uncommitted row.
	check := d.MustBegin()
	for i := 0; i < 4; i++ {
		if _, err := tbl.Get(check, []byte(fmt.Sprintf("zz-loser%02d", i))); !errors.Is(err, ErrNotFound) {
			t.Fatalf("loser row %d visible after online restart: %v", i, err)
		}
	}
	_ = check.Commit()
	if _, err := d.AwaitRecovered(); err != nil {
		t.Fatal(err)
	}
	verifyModel(t, d, model)
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestOnlineRestartMatchesOffline restarts two forks of the same crashed
// engine — one offline, one online-then-awaited — and requires identical
// row sets and clean consistency sweeps from both.
func TestOnlineRestartMatchesOffline(t *testing.T) {
	d := Open(Options{PageSize: 512, PoolSize: 128})
	model := buildOnlineBase(t, d, 200)
	d.Crash()

	offline := d.Fork()
	if _, err := offline.Restart(); err != nil {
		t.Fatal(err)
	}
	online := d.Fork()
	online.SetOnlineRestart(true)
	online.SetRedoWorkers(8)
	if _, err := online.Restart(); err != nil {
		t.Fatal(err)
	}
	if _, err := online.AwaitRecovered(); err != nil {
		t.Fatal(err)
	}
	verifyModel(t, offline, model)
	verifyModel(t, online, model)
	if err := offline.VerifyConsistency(); err != nil {
		t.Fatalf("offline fork: %v", err)
	}
	if err := online.VerifyConsistency(); err != nil {
		t.Fatalf("online fork: %v", err)
	}
}

// TestOnlineRestartRecrashMidRecovery crashes again while the drain and
// background undo are still running. The crash fence (no checkpoint while
// recovery is pending) must leave the log analyzable from the pre-crash
// checkpoint, so the rerun recovers everything the aborted run had not.
func TestOnlineRestartRecrashMidRecovery(t *testing.T) {
	d := Open(Options{PageSize: 512, PoolSize: 128, OnlineRestart: true, RedoWorkers: 4})
	model := buildOnlineBase(t, d, 300)
	for round := 0; round < 3; round++ {
		d.Crash()
		d.Disk().SetIODelay(500 * time.Microsecond)
		if _, err := d.Restart(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// Re-crash with recovery (usually) still in flight.
	}
	d.Crash()
	d.Disk().SetIODelay(0)
	if _, err := d.Restart(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitRecovered(); err != nil {
		t.Fatal(err)
	}
	verifyModel(t, d, model)
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestAwaitUpRapidCrashRestartCycles exercises AwaitUp/AwaitUpFor across
// repeated rapid crash/restart cycles: waiters must neither hang nor
// observe a half-open engine.
func TestAwaitUpRapidCrashRestartCycles(t *testing.T) {
	d := Open(Options{PageSize: 512, PoolSize: 64})
	if _, err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 8; cycle++ {
		d.Crash()
		if d.AwaitUpFor(time.Millisecond) {
			t.Fatalf("cycle %d: AwaitUpFor reported up while crashed", cycle)
		}
		released := make(chan struct{})
		go func() {
			d.AwaitUp()
			close(released)
		}()
		select {
		case <-released:
			t.Fatalf("cycle %d: AwaitUp returned before Restart", cycle)
		case <-time.After(2 * time.Millisecond):
		}
		if _, err := d.Restart(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		select {
		case <-released:
		case <-time.After(5 * time.Second):
			t.Fatalf("cycle %d: AwaitUp hung across restart", cycle)
		}
		if !d.AwaitUpFor(time.Second) {
			t.Fatalf("cycle %d: AwaitUpFor timed out on an up engine", cycle)
		}
		// The engine is genuinely open, not just signaled: a write commits.
		tbl, _ := d.Table("t")
		err := d.RunTxn(func(tx *txn.Tx) error {
			return tbl.Insert(tx, []byte(fmt.Sprintf("cycle%02d", cycle)), []byte("ok"))
		})
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestRunTxnRetryDeadline bounds the otherwise-unbounded restart wait: a
// RunTxn against an engine nobody restarts must give up at the deadline
// with an error wrapping ErrCrashed.
func TestRunTxnRetryDeadline(t *testing.T) {
	d := Open(Options{PageSize: 512, PoolSize: 64})
	if _, err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	start := time.Now()
	err := d.RunTxnWith(RunTxnOpts{RetryDeadline: 50 * time.Millisecond}, func(tx *txn.Tx) error {
		return nil
	})
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("gave up after %v, deadline was 50ms", elapsed)
	}
}

// TestBoundariesEdgeCases pins recovery.Boundaries behavior on the empty
// log and across a torn tail: no phantom crash points, and the truncated
// suffix is not offered as a boundary.
func TestBoundariesEdgeCases(t *testing.T) {
	d := Open(Options{PageSize: 512, PoolSize: 64})
	// Empty log: no records at all → no crash points.
	if b := recovery.Boundaries(d.Log(), 0); len(b) != 0 {
		t.Fatalf("boundaries of empty log = %v", b)
	}
	tbl, err := d.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	tx := d.MustBegin()
	if err := tbl.Insert(tx, []byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	all := recovery.Boundaries(d.Log(), 0)
	if len(all) == 0 {
		t.Fatal("no boundaries after committed work")
	}
	// After the last LSN there is nothing left to truncate to.
	if b := recovery.Boundaries(d.Log(), all[len(all)-1]); len(b) != 0 {
		t.Fatalf("boundaries past the end = %v", b)
	}
	// Torn tail: the CRC sweep drops the tear and everything after it, so
	// the surviving boundary set must be a strict prefix of the original.
	loser := d.MustBegin()
	for i := 0; i < 3; i++ {
		if err := tbl.Insert(loser, []byte(fmt.Sprintf("l%d", i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	d.Log().CrashWithTornTail(2)
	d.Crash()
	after := recovery.Boundaries(d.Log(), 0)
	if len(after) < len(all) {
		t.Fatalf("torn tail truncated committed records: %d < %d", len(after), len(all))
	}
	for i, lsn := range all {
		if after[i] != lsn {
			t.Fatalf("boundary %d changed across torn-tail crash: %v vs %v", i, after[i], lsn)
		}
	}
	if _, err := d.Restart(); err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}
