package db

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ariesim/internal/trace"
	"ariesim/internal/txn"
)

// Durability-of-acknowledgement property tests for the costed log device:
// with a nonzero force delay the window between "commit record appended"
// and "commit record stable" is wide open, and these tests prove no
// transaction is ever acknowledged inside it — an acked commit survives
// any crash, and the commit record's LSN is never above the stable LSN at
// ack time.

// TestCommitAckImpliesStableLSN: after every acked commit, the commit
// record (the end record's PrevLSN) is covered by the stable LSN.
func TestCommitAckImpliesStableLSN(t *testing.T) {
	d := Open(Options{LogForceDelay: 200 * time.Microsecond})
	if _, err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		var committed *txn.Tx
		err := d.RunTxn(func(tx *txn.Tx) error {
			committed = tx
			tb, err := d.TableFor(tx, "t")
			if err != nil {
				return err
			}
			return tb.Insert(tx, []byte(fmt.Sprintf("k%04d", i)), []byte("v"))
		})
		if err != nil {
			t.Fatal(err)
		}
		log := d.Log()
		end, err := log.Read(committed.LastLSN()) // after Commit, LastLSN is the end record
		if err != nil {
			t.Fatal(err)
		}
		if commitLSN := end.PrevLSN; commitLSN > log.StableLSN() {
			t.Fatalf("txn %d acked with commit LSN %d > stable %d", i, commitLSN, log.StableLSN())
		}
	}
}

// TestConcurrentCommitsCoalesce: concurrent committers against a slow log
// device share flushes — the engine acks all of them with far fewer
// physical forces than commits, and the group-commit counters prove it.
func TestConcurrentCommitsCoalesce(t *testing.T) {
	d := Open(Options{LogForceDelay: 500 * time.Microsecond})
	if _, err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	const workers, txns = 8, 25
	before := d.Stats().Snap()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txns; i++ {
				key := []byte(fmt.Sprintf("w%02d-%04d", w, i))
				err := d.RunTxnWith(RunTxnOpts{Seed: int64(w + 1)}, func(tx *txn.Tx) error {
					tb, err := d.TableFor(tx, "t")
					if err != nil {
						return err
					}
					return tb.Insert(tx, key, []byte("v"))
				})
				if err != nil {
					t.Errorf("worker %d txn %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	diff := trace.Diff(before, d.Stats().Snap())
	commits := uint64(workers * txns)
	if diff.LogForces >= commits {
		t.Errorf("LogForces = %d for %d commits: no coalescing", diff.LogForces, commits)
	}
	if diff.GroupCommits == 0 {
		t.Error("GroupCommits = 0: concurrent committers never shared a flush")
	}
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestAckedCommitsSurviveCrashes is the property test: concurrent workers
// commit through RunTxn while a crasher repeatedly yanks the power, all
// with a force delay widening the append→stable window. Every key whose
// OnCommit hook ran must be present after the final crash+restart — no
// transaction was acked while its commit record was still volatile.
func TestAckedCommitsSurviveCrashes(t *testing.T) {
	const (
		workers = 4
		crashes = 6
	)
	d := Open(Options{LogForceDelay: 200 * time.Microsecond, PoolSize: 64})
	if _, err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}

	var ackedMu sync.Mutex
	acked := make(map[string]bool)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("w%02d-%06d", w, i)
				err := d.RunTxnWith(RunTxnOpts{
					Seed:        int64(w+1) * 7919,
					MaxAttempts: 64,
					OnCommit: func() {
						// Runs atomically with the ack: the commit record is
						// durable and no crash has intervened.
						ackedMu.Lock()
						acked[key] = true
						ackedMu.Unlock()
					},
				}, func(tx *txn.Tx) error {
					tb, err := d.TableFor(tx, "t")
					if err != nil {
						return err
					}
					return tb.Insert(tx, []byte(key), []byte("v"))
				})
				if err != nil {
					// ErrDuplicate here would mean a commit became durable
					// without its ack — exactly the bug this test polices.
					t.Errorf("worker %d key %s: %v", w, key, err)
					return
				}
			}
		}(w)
	}

	for c := 0; c < crashes; c++ {
		time.Sleep(time.Duration(3+c) * time.Millisecond)
		d.Crash()
		if _, err := d.Restart(); err != nil {
			t.Fatalf("restart %d: %v", c, err)
		}
	}
	close(stop)
	wg.Wait()

	// Final power cut: anything acked before this instant must survive it.
	d.Crash()
	if _, err := d.Restart(); err != nil {
		t.Fatal(err)
	}

	ackedMu.Lock()
	keys := make([]string, 0, len(acked))
	for k := range acked {
		keys = append(keys, k)
	}
	ackedMu.Unlock()
	if len(keys) == 0 {
		t.Fatal("no transaction was ever acked; test exercised nothing")
	}
	err := d.RunTxn(func(tx *txn.Tx) error {
		tb, err := d.TableFor(tx, "t")
		if err != nil {
			return err
		}
		for _, k := range keys {
			if _, err := tb.Get(tx, []byte(k)); err != nil {
				if errors.Is(err, ErrNotFound) {
					t.Errorf("acked commit %s lost by crash: ack preceded durability", k)
					continue
				}
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	t.Logf("verified %d acked commits across %d crashes", len(keys), crashes+1)
}
