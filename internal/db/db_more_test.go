package db

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ariesim/internal/lock"
)

func TestScanPrefix(t *testing.T) {
	d := openSmall(t)
	tbl, _ := d.CreateTable("t")
	tx := d.MustBegin()
	for _, key := range []string{"eu/de/berlin", "eu/de/munich", "eu/fr/paris", "us/ny/nyc"} {
		if err := tbl.Insert(tx, []byte(key), []byte("city")); err != nil {
			t.Fatal(err)
		}
	}
	_ = tx.Commit()

	r := d.MustBegin()
	var got []string
	if err := tbl.ScanPrefix(r, []byte("eu/de/"), func(row Row) (bool, error) {
		got = append(got, string(row.Key))
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "eu/de/berlin" || got[1] != "eu/de/munich" {
		t.Fatalf("prefix scan = %v", got)
	}
	// Empty prefix result.
	n := 0
	if err := tbl.ScanPrefix(r, []byte("asia/"), func(Row) (bool, error) { n++; return true, nil }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("asia scan hit %d rows", n)
	}
	_ = r.Commit()
}

func TestGetCSDoesNotBlockWriters(t *testing.T) {
	d := openSmall(t)
	tbl, _ := d.CreateTable("t")
	tx := d.MustBegin()
	_ = tbl.Insert(tx, k(1), v(1))
	_ = tx.Commit()

	reader := d.MustBegin()
	if got, err := tbl.GetCS(reader, k(1)); err != nil || string(got) != string(v(1)) {
		t.Fatalf("GetCS = %q, %v", got, err)
	}
	// Reader still open, but a writer can delete the row immediately.
	writer := d.MustBegin()
	done := make(chan error, 1)
	go func() { done <- tbl.Delete(writer, k(1)) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("writer blocked by a cursor-stability reader")
	}
	_ = writer.Commit()
	_ = reader.Commit()
}

func TestGetCSStillSeesOnlyCommitted(t *testing.T) {
	d := openSmall(t)
	tbl, _ := d.CreateTable("t")
	w := d.MustBegin()
	_ = tbl.Insert(w, k(9), v(9))
	// w uncommitted: a CS reader must wait, then see it after commit.
	r := d.MustBegin()
	done := make(chan error, 1)
	go func() {
		_, err := tbl.GetCS(r, k(9))
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("CS read returned before the writer committed")
	case <-time.After(50 * time.Millisecond):
	}
	_ = w.Commit()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	_ = r.Commit()
}

func TestMultiTableCrashRestart(t *testing.T) {
	d := openSmall(t)
	a, _ := d.CreateTable("alpha")
	bt, _ := d.CreateTable("beta")
	_ = bt
	tx := d.MustBegin()
	for i := 0; i < 30; i++ {
		if err := a.Insert(tx, k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	b2, _ := d.Table("beta")
	for i := 0; i < 30; i++ {
		if err := b2.Insert(tx, k(i+100), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	_ = tx.Commit()
	d.Crash()
	if _, err := d.Restart(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alpha", "beta"} {
		tbl, err := d.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		rows := 0
		r := d.MustBegin()
		_ = tbl.Scan(r, []byte(""), nil, func(Row) (bool, error) { rows++; return true, nil })
		_ = r.Commit()
		if rows != 30 {
			t.Fatalf("table %s holds %d rows after restart", name, rows)
		}
	}
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestScanUnderConcurrentSplits(t *testing.T) {
	// A long-running scan stays correct (sees every committed pre-scan row
	// exactly once, in order) while writers split the scanned leaves.
	d := Open(Options{PageSize: 512, PoolSize: 1024})
	tbl, _ := d.CreateTable("t")
	setup := d.MustBegin()
	const rows = 400
	for i := 0; i < rows; i++ {
		if err := tbl.Insert(setup, k(i*10), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	_ = setup.Commit()

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		rng := rand.New(rand.NewSource(4))
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Writers insert between scanned keys, far enough ahead of the
			// scan front that next-key locks rarely collide; collisions
			// just block briefly and retry on deadlock.
			tx := d.MustBegin()
			n := rng.Intn(rows*10) + 5_000_000
			if err := tbl.Insert(tx, k(n), []byte("concurrent")); err != nil {
				_ = tx.Rollback()
				continue
			}
			_ = tx.Commit()
			i++
		}
	}()

	scan := d.MustBegin()
	var seen []string
	err := tbl.Scan(scan, k(0), k(rows*10-1), func(r Row) (bool, error) {
		seen = append(seen, string(r.Key))
		time.Sleep(100 * time.Microsecond) // let splits interleave
		return true, nil
	})
	close(stop)
	<-writerDone
	if err != nil {
		t.Fatal(err)
	}
	_ = scan.Commit()
	if len(seen) != rows {
		t.Fatalf("scan saw %d pre-existing rows, want %d", len(seen), rows)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i-1] >= seen[i] {
			t.Fatalf("scan out of order at %d: %s >= %s", i, seen[i-1], seen[i])
		}
	}
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedCrashTortureSmallPool(t *testing.T) {
	// A tiny buffer pool forces steals (WAL-protected dirty-page writes),
	// exercising the redo-skip path at every restart.
	d := Open(Options{PageSize: 512, PoolSize: 8})
	tbl, _ := d.CreateTable("t")
	live := map[string]string{}
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 6; round++ {
		for batch := 0; batch < 10; batch++ {
			tx := d.MustBegin()
			staged := map[string]*string{}
			for op := 0; op < 5; op++ {
				n := rng.Intn(150)
				if _, ok := live[string(k(n))]; ok && rng.Intn(2) == 0 {
					if err := tbl.Delete(tx, k(n)); err != nil && !errors.Is(err, ErrNotFound) {
						t.Fatal(err)
					}
					staged[string(k(n))] = nil
				} else {
					val := fmt.Sprintf("r%d-%d", round, op)
					err := tbl.Insert(tx, k(n), []byte(val))
					if err == nil {
						vv := val
						staged[string(k(n))] = &vv
					} else if !errors.Is(err, ErrDuplicate) {
						t.Fatal(err)
					}
				}
			}
			if rng.Intn(4) == 0 {
				_ = tx.Rollback()
				continue
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			for key, val := range staged {
				if val == nil {
					delete(live, key)
				} else {
					live[key] = *val
				}
			}
		}
		d.Crash()
		if _, err := d.Restart(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		tbl, _ = d.Table("t")
		if err := d.VerifyConsistency(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		got := map[string]string{}
		r := d.MustBegin()
		_ = tbl.Scan(r, []byte(""), nil, func(row Row) (bool, error) {
			got[string(row.Key)] = string(row.Value)
			return true, nil
		})
		_ = r.Commit()
		if len(got) != len(live) {
			t.Fatalf("round %d: %d rows vs %d expected", round, len(got), len(live))
		}
		for key, val := range live {
			if got[key] != val {
				t.Fatalf("round %d: %q = %q, want %q", round, key, got[key], val)
			}
		}
	}
	// Steals must actually have happened for this test to mean anything.
	if d.Stats().PageWrites.Load() == 0 {
		t.Fatal("no page steals with an 8-frame pool")
	}
}

func TestDeadlockSurfacesToCaller(t *testing.T) {
	d := openSmall(t)
	tbl, _ := d.CreateTable("t")
	tx := d.MustBegin()
	_ = tbl.Insert(tx, k(1), v(1))
	_ = tbl.Insert(tx, k(2), v(2))
	_ = tx.Commit()

	t1 := d.MustBegin()
	t2 := d.MustBegin()
	if _, err := tbl.Get(t1, k(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Get(t2, k(2)); err != nil {
		t.Fatal(err)
	}
	// t1 wants k2 X (delete), t2 wants k1 X. t1 queues first, so the
	// detector makes t2 — the requester that closes the cycle — the
	// victim; its rollback releases the S lock t1's upgrade waits on.
	errCh := make(chan error, 1)
	go func() { errCh <- tbl.Delete(t1, k(2)) }()
	time.Sleep(30 * time.Millisecond)
	err2 := tbl.Delete(t2, k(1))
	if !errors.Is(err2, lock.ErrDeadlock) {
		t.Fatalf("victim did not get ErrDeadlock: %v", err2)
	}
	_ = t2.Rollback()
	select {
	case err1 := <-errCh:
		if err1 != nil {
			t.Fatalf("survivor's delete failed: %v", err1)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("survivor never unblocked after victim rollback")
	}
	_ = t1.Rollback()
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}
