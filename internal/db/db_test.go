package db

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ariesim/internal/core"
	"ariesim/internal/lock"
)

func openSmall(t *testing.T) *DB {
	t.Helper()
	return Open(Options{PageSize: 512, PoolSize: 128})
}

func k(i int) []byte { return []byte(fmt.Sprintf("k%06d", i)) }
func v(i int) []byte { return []byte(fmt.Sprintf("value-%d", i)) }

func TestInsertGetRoundTrip(t *testing.T) {
	d := openSmall(t)
	tbl, err := d.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	tx := d.MustBegin()
	if err := tbl.Insert(tx, k(1), v(1)); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Get(tx, k(1))
	if err != nil || string(got) != string(v(1)) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Get(d.MustBegin(), k(2)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPrimaryKeyUniqueness(t *testing.T) {
	d := openSmall(t)
	tbl, _ := d.CreateTable("t")
	tx := d.MustBegin()
	if err := tbl.Insert(tx, k(1), v(1)); err != nil {
		t.Fatal(err)
	}
	err := tbl.Insert(tx, k(1), v(2))
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate insert: %v", err)
	}
	// The failed insert's partial work (data record) was rolled back.
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	rtx := d.MustBegin()
	got, err := tbl.Get(rtx, k(1))
	if err != nil || string(got) != string(v(1)) {
		t.Fatalf("row after duplicate attempt: %q, %v", got, err)
	}
	_ = rtx.Commit()
}

func TestDeleteAndUpdate(t *testing.T) {
	d := openSmall(t)
	tbl, _ := d.CreateTable("t")
	tx := d.MustBegin()
	for i := 0; i < 20; i++ {
		if err := tbl.Insert(tx, k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Delete(tx, k(5)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Update(tx, k(6), []byte("updated")); err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	rtx := d.MustBegin()
	if _, err := tbl.Get(rtx, k(5)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted row: %v", err)
	}
	if got, _ := tbl.Get(rtx, k(6)); string(got) != "updated" {
		t.Fatalf("updated row = %q", got)
	}
	_ = rtx.Commit()
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestScanRange(t *testing.T) {
	d := openSmall(t)
	tbl, _ := d.CreateTable("t")
	tx := d.MustBegin()
	for i := 0; i < 50; i++ {
		if err := tbl.Insert(tx, k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	_ = tx.Commit()
	rtx := d.MustBegin()
	var got []string
	err := tbl.Scan(rtx, k(10), k(19), func(r Row) (bool, error) {
		got = append(got, string(r.Key))
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != string(k(10)) || got[9] != string(k(19)) {
		t.Fatalf("scan = %v", got)
	}
	// Early termination.
	n := 0
	_ = tbl.Scan(rtx, k(0), nil, func(r Row) (bool, error) { n++; return n < 3, nil })
	if n != 3 {
		t.Fatalf("early stop at %d", n)
	}
	_ = rtx.Commit()
}

func TestSecondaryIndex(t *testing.T) {
	d := openSmall(t)
	tbl, _ := d.CreateTable("orders")
	// Secondary on the first 4 bytes of the value ("customer id").
	byCustomer := func(value []byte) []byte { return value[:4] }
	if err := tbl.AddSecondaryIndex("by_customer", byCustomer); err != nil {
		t.Fatal(err)
	}
	tx := d.MustBegin()
	for i := 0; i < 30; i++ {
		val := []byte(fmt.Sprintf("c%03d|order-%d", i%3, i))
		if err := tbl.Insert(tx, k(i), val); err != nil {
			t.Fatal(err)
		}
	}
	_ = tx.Commit()
	rtx := d.MustBegin()
	n := 0
	err := tbl.ScanSecondary(rtx, "by_customer", []byte("c001"), []byte("c001"), func(sk []byte, r Row) (bool, error) {
		if string(sk) != "c001" {
			t.Fatalf("wrong secondary key %q", sk)
		}
		n++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("secondary scan found %d rows, want 10", n)
	}
	_ = rtx.Commit()
	// Delete maintains the secondary.
	dtx := d.MustBegin()
	if err := tbl.Delete(dtx, k(1)); err != nil {
		t.Fatal(err)
	}
	_ = dtx.Commit()
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestRollbackRestoresEverything(t *testing.T) {
	d := openSmall(t)
	tbl, _ := d.CreateTable("t")
	setup := d.MustBegin()
	for i := 0; i < 30; i++ {
		_ = tbl.Insert(setup, k(i), v(i))
	}
	_ = setup.Commit()

	tx := d.MustBegin()
	for i := 30; i < 50; i++ {
		if err := tbl.Insert(tx, k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := tbl.Delete(tx, k(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	rtx := d.MustBegin()
	for i := 0; i < 30; i++ {
		if _, err := tbl.Get(rtx, k(i)); err != nil {
			t.Fatalf("row %d lost by rollback: %v", i, err)
		}
	}
	for i := 30; i < 50; i++ {
		if _, err := tbl.Get(rtx, k(i)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("row %d survived rollback", i)
		}
	}
	_ = rtx.Commit()
}

func TestCrashRestartCycle(t *testing.T) {
	d := openSmall(t)
	tbl, _ := d.CreateTable("t")
	committed := d.MustBegin()
	for i := 0; i < 100; i++ {
		if err := tbl.Insert(committed, k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := committed.Commit(); err != nil {
		t.Fatal(err)
	}
	inflight := d.MustBegin()
	for i := 100; i < 130; i++ {
		if err := tbl.Insert(inflight, k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := tbl.Delete(inflight, k(i)); err != nil {
			t.Fatal(err)
		}
	}
	d.Log().ForceAll() // stable but uncommitted

	d.Crash()
	rep, err := d.Restart()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LosersUndone != 1 {
		t.Fatalf("losers = %d", rep.LosersUndone)
	}
	tbl, err = d.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	rtx := d.MustBegin()
	for i := 0; i < 100; i++ {
		if _, err := tbl.Get(rtx, k(i)); err != nil {
			t.Fatalf("committed row %d lost: %v", i, err)
		}
	}
	for i := 100; i < 130; i++ {
		if _, err := tbl.Get(rtx, k(i)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("in-flight row %d survived crash", i)
		}
	}
	_ = rtx.Commit()
}

func TestRestartReopensSecondary(t *testing.T) {
	d := openSmall(t)
	tbl, _ := d.CreateTable("t")
	ext := func(value []byte) []byte { return value[:2] }
	_ = tbl.AddSecondaryIndex("s", ext)
	tx := d.MustBegin()
	for i := 0; i < 20; i++ {
		_ = tbl.Insert(tx, k(i), []byte(fmt.Sprintf("%02d-rest", i%4)))
	}
	_ = tx.Commit()
	d.Crash()
	if _, err := d.Restart(); err != nil {
		t.Fatal(err)
	}
	tbl, _ = d.Table("t")
	if err := tbl.OpenSecondaryIndex("s", ext); err != nil {
		t.Fatal(err)
	}
	rtx := d.MustBegin()
	n := 0
	if err := tbl.ScanSecondary(rtx, "s", []byte("01"), []byte("01"), func([]byte, Row) (bool, error) {
		n++
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("secondary after restart: %d rows, want 5", n)
	}
	_ = rtx.Commit()
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPhantomProtectionAcrossTables(t *testing.T) {
	d := openSmall(t)
	tbl, _ := d.CreateTable("t")
	setup := d.MustBegin()
	_ = tbl.Insert(setup, k(10), v(10))
	_ = tbl.Insert(setup, k(20), v(20))
	_ = setup.Commit()

	// T1 scans [10,20]; T2 inserting 15 must block until T1 ends.
	t1 := d.MustBegin()
	count := 0
	_ = tbl.Scan(t1, k(10), k(20), func(Row) (bool, error) { count++; return true, nil })
	if count != 2 {
		t.Fatalf("scan saw %d", count)
	}
	t2 := d.MustBegin()
	done := make(chan error, 1)
	go func() { done <- tbl.Insert(t2, k(15), v(15)) }()
	select {
	case err := <-done:
		t.Fatalf("phantom slipped into scanned range: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	// T1 re-scans: repeatable read.
	count2 := 0
	_ = tbl.Scan(t1, k(10), k(20), func(Row) (bool, error) { count2++; return true, nil })
	if count2 != count {
		t.Fatalf("second scan saw %d, first saw %d", count2, count)
	}
	_ = t1.Commit()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	_ = t2.Commit()
}

func TestConcurrentBankTransfers(t *testing.T) {
	// The classic invariant workload: total balance conserved under
	// concurrent transfers with deadlock-victim retries.
	d := Open(Options{PageSize: 1024, PoolSize: 256})
	tbl, _ := d.CreateTable("accounts")
	const accounts = 20
	const initial = 1000
	setup := d.MustBegin()
	for i := 0; i < accounts; i++ {
		if err := tbl.Insert(setup, k(i), []byte(fmt.Sprintf("%06d", initial))); err != nil {
			t.Fatal(err)
		}
	}
	_ = setup.Commit()

	parse := func(b []byte) int {
		n := 0
		for _, c := range b {
			n = n*10 + int(c-'0')
		}
		return n
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for round := 0; round < 40; round++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				amt := rng.Intn(50)
				tx := d.MustBegin()
				ok := func() bool {
					fb, err := tbl.Get(tx, k(from))
					if err != nil {
						return false
					}
					tb, err := tbl.Get(tx, k(to))
					if err != nil {
						return false
					}
					if parse(fb) < amt {
						return false
					}
					if err := tbl.Update(tx, k(from), []byte(fmt.Sprintf("%06d", parse(fb)-amt))); err != nil {
						return false
					}
					if err := tbl.Update(tx, k(to), []byte(fmt.Sprintf("%06d", parse(tb)+amt))); err != nil {
						return false
					}
					return true
				}()
				if ok {
					if err := tx.Commit(); err != nil {
						t.Errorf("commit: %v", err)
						return
					}
				} else {
					_ = tx.Rollback()
				}
			}
		}(w)
	}
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(120 * time.Second):
		t.Fatal("transfers hung")
	}
	if t.Failed() {
		return
	}
	// Invariant: total conserved.
	total := 0
	rtx := d.MustBegin()
	_ = tbl.Scan(rtx, k(0), nil, func(r Row) (bool, error) {
		total += parse(r.Value)
		return true, nil
	})
	_ = rtx.Commit()
	if total != accounts*initial {
		t.Fatalf("total = %d, want %d", total, accounts*initial)
	}
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineWithBaselineProtocols(t *testing.T) {
	for _, proto := range []core.Protocol{core.IndexSpecific, core.KVL, core.SystemR} {
		t.Run(proto.String(), func(t *testing.T) {
			d := Open(Options{PageSize: 512, PoolSize: 128, Protocol: proto})
			tbl, err := d.CreateTable("t")
			if err != nil {
				t.Fatal(err)
			}
			tx := d.MustBegin()
			for i := 0; i < 60; i++ {
				if err := tbl.Insert(tx, k(i), v(i)); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 20; i++ {
				if err := tbl.Delete(tx, k(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := d.VerifyConsistency(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPageGranularityEngine(t *testing.T) {
	d := Open(Options{PageSize: 512, PoolSize: 128, Granularity: lock.GranPage})
	tbl, _ := d.CreateTable("t")
	tx := d.MustBegin()
	for i := 0; i < 40; i++ {
		if err := tbl.Insert(tx, k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	_ = tx.Commit()
	if err := d.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	// Page locks recorded in the page space.
	if d.Stats().LockCalls(int(lock.SpacePage), int(lock.X), int(lock.Commit)) == 0 {
		t.Fatal("no page-granularity locks recorded")
	}
}
