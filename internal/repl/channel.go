// Package repl implements hot-standby replication: a primary-side shipper
// that streams WAL records as they harden, an in-process lossy channel
// with seeded fault injection, and a standby that applies segments
// continuously with the page-partitioned parallel redo — "a restart that
// never ends" — until Promote turns it into the serving primary.
//
// Wire model. Data frames (wal.Segment encodings and re-seed archives)
// travel over the lossy path: each send may be dropped, duplicated,
// reordered, corrupted, or stalled by the injector, mirroring
// storage.FaultInjector's philosophy (seeded, reproducible, with a
// consecutive-fault cap so progress is guaranteed). Control messages
// (ACK / NAK / RESEED, standby → primary) travel over a reliable in-order
// path, the moral equivalent of the TCP connection a real system would
// keep for its feedback channel; the bulk data path is where loss hurts
// and where the protocol must defend itself.
package repl

import (
	"math/rand"
	"sync"
	"time"
)

// frameData and frameReseed tag the two payload kinds on the data path.
const (
	frameData   = byte(0)
	frameReseed = byte(1)
)

// ControlKind enumerates the standby→primary feedback messages.
type ControlKind int

const (
	// CtlAck acknowledges that every record with LSN <= Control.LSN is
	// appended, forced, and applied on the standby.
	CtlAck ControlKind = iota
	// CtlNak reports a gap: the standby needs shipping to resume from
	// Control.LSN (its next expected record).
	CtlNak
	// CtlReseed asks for a full log archive: the standby has given up on
	// closing a gap incrementally (bounded NAK retries exhausted).
	CtlReseed
)

// Control is one feedback message.
type Control struct {
	Kind ControlKind
	LSN  uint64 // CtlAck: applied watermark; CtlNak: next expected LSN
}

// ChannelFaults configures the data-path fault injector. Probabilities
// are per-send and independent; the zero value is a perfect channel.
type ChannelFaults struct {
	// Seed drives the deterministic fault sequence (0 means 1).
	Seed int64
	// DropProb loses the frame entirely.
	DropProb float64
	// DupProb delivers the frame twice.
	DupProb float64
	// ReorderProb holds the frame back and delivers it after the next one.
	ReorderProb float64
	// CorruptProb flips one byte of the frame before delivery.
	CorruptProb float64
	// StallProb delays the delivery by StallDelay (default 1ms).
	StallProb  float64
	StallDelay time.Duration
	// MaxConsecutive caps the run of consecutively faulted sends (default
	// 2): after that many in a row the next send is delivered clean. The
	// cap is what makes every test terminate — some frame always gets
	// through, exactly like the storage injector's guarantee.
	MaxConsecutive int
}

func (c ChannelFaults) withDefaults() ChannelFaults {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxConsecutive == 0 {
		c.MaxConsecutive = 2
	}
	if c.StallDelay == 0 {
		c.StallDelay = time.Millisecond
	}
	return c
}

// Channel is the in-process replication link: a lossy data path
// (primary → standby) and a reliable control path (standby → primary).
// Both ends close down together via Close.
type Channel struct {
	mu     sync.Mutex
	rng    *rand.Rand
	cfg    ChannelFaults
	consec int    // consecutive faulted sends, for the cap
	held   []byte // frame held back by a reorder fault
	counts ChannelCounts
	closed bool

	frames chan []byte  // data path (fault-injected)
	ctrl   chan Control // control path (reliable)
}

// ChannelCounts tallies injected faults for reporting.
type ChannelCounts struct {
	Sent, Dropped, Duplicated, Reordered, Corrupted, Stalled int
}

// NewChannel creates a channel with the given fault profile.
func NewChannel(cfg ChannelFaults) *Channel {
	cfg = cfg.withDefaults()
	return &Channel{
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		cfg:    cfg,
		frames: make(chan []byte, 256),
		ctrl:   make(chan Control, 256),
	}
}

// Counts returns the fault tally so far.
func (c *Channel) Counts() ChannelCounts {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts
}

// Close tears the link down; pending frames are discarded by receivers
// observing the closed channel.
func (c *Channel) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	close(c.frames)
	close(c.ctrl)
}

// deliver enqueues one frame, dropping it if the receiver is hopelessly
// behind (a full buffer is backpressure; the shipper's retransmit timer
// recovers, so blocking the sender would only hide liveness bugs).
func (c *Channel) deliver(frame []byte) {
	select {
	case c.frames <- frame:
	default:
		c.counts.Dropped++
	}
}

// Send pushes one data frame through the fault injector. The caller's
// slice is not retained (corruption mutates a copy).
func (c *Channel) Send(frame []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.counts.Sent++
	var stall time.Duration
	faulted := true
	switch {
	case c.consec >= c.cfg.MaxConsecutive:
		faulted = false
	case c.rng.Float64() < c.cfg.DropProb:
		c.counts.Dropped++
		c.consec++
		return
	case c.rng.Float64() < c.cfg.DupProb:
		c.counts.Duplicated++
		c.deliver(frame)
		c.deliver(frame)
	case c.rng.Float64() < c.cfg.ReorderProb:
		// Hold this frame; it goes out after the NEXT send's frame.
		c.counts.Reordered++
		if c.held != nil {
			c.deliver(c.held)
		}
		c.held = frame
	case c.rng.Float64() < c.cfg.CorruptProb:
		c.counts.Corrupted++
		bad := append([]byte(nil), frame...)
		if len(bad) > 0 {
			bad[c.rng.Intn(len(bad))] ^= 1 << uint(c.rng.Intn(8))
		}
		c.deliver(bad)
	case c.rng.Float64() < c.cfg.StallProb:
		c.counts.Stalled++
		stall = c.cfg.StallDelay
		c.deliver(frame)
	default:
		faulted = false
	}
	if faulted {
		c.consec++
	} else {
		c.consec = 0
		c.deliver(frame)
		if c.held != nil { // flush a pending reorder behind the clean frame
			c.deliver(c.held)
			c.held = nil
		}
	}
	if stall > 0 {
		c.mu.Unlock()
		time.Sleep(stall)
		c.mu.Lock()
	}
}

// SendReliable bypasses the injector: used for re-seed payloads, which
// model an out-of-band bulk copy (scp of a base backup) rather than the
// streaming path.
func (c *Channel) SendReliable(frame []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.counts.Sent++
	select {
	case c.frames <- frame:
	default:
		// The buffer is full of lossy traffic; a real bulk copy would
		// block, and so do we — briefly, outside the lock.
		c.mu.Unlock()
		c.frames <- frame
		c.mu.Lock()
	}
}

// Recv returns the next data frame, or nil after Close.
func (c *Channel) Recv() []byte { return <-c.frames }

// RecvCh exposes the data path for select loops.
func (c *Channel) RecvCh() <-chan []byte { return c.frames }

// SendControl enqueues one reliable control message.
func (c *Channel) SendControl(m Control) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return
	}
	// Control is reliable AND non-lossy: block if full (it never is in
	// practice; the shipper drains eagerly).
	defer func() { recover() }() // racing Close is a benign shutdown
	c.ctrl <- m
}

// ControlCh exposes the control path for select loops.
func (c *Channel) ControlCh() <-chan Control { return c.ctrl }
