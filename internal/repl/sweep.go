package repl

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ariesim/internal/db"
	"ariesim/internal/recovery"
	"ariesim/internal/trace"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

// The standby sweep: live traffic against a primary that ships to a
// standby over a seeded lossy channel, a primary crash mid-traffic, a
// promotion, continued traffic on the promoted node — and exact
// verification at three levels:
//
//  1. Zero acked loss: with the semi-sync gate, every commit acknowledged
//     to a client is present on the promoted node. (The whole point.)
//  2. Exact state: the promoted node's rows equal the ledger model —
//     acked commits plus exactly those ambiguous (gate-failed) commits
//     whose commit records made it into the promoted log, nothing else.
//  3. Every-boundary forks: for EVERY record boundary L of the log the
//     standby had received at promotion, a standby promoted from the
//     prefix ≤ L recovers to exactly the commits whose records fit in
//     that prefix — the standby is a correct crash point everywhere, not
//     just where we happened to promote.

// SweepOpts configures RunStandbySweep. The zero value is usable.
type SweepOpts struct {
	Seed    int64
	Workers int // concurrent client goroutines (default 3)
	// PreCrashCommits is how many acked commits to accumulate before the
	// primary is crashed under live traffic (default 120).
	PreCrashCommits int
	// PostPromoteCommits is how many commits the promoted node must serve
	// before the sweep concludes (default 20).
	PostPromoteCommits int
	Keys               int // hot-key space (default 40)
	// Faults is the channel fault profile (zero = perfect channel).
	Faults ChannelFaults
	// SyncGate installs the semi-sync commit gate: commits ack only once
	// standby-durable, making the zero-acked-loss assertion airtight.
	// Without it shipping is asynchronous and the sweep only asserts the
	// weaker exact-state and boundary properties.
	SyncGate    bool
	GateTimeout time.Duration // default 2s
	// OnlineRestart promotes with the online-restart coordinator (open
	// after analysis).
	OnlineRestart bool
	// RedoWorkers drives both the standby's per-batch apply parallelism
	// and the forks' restart redo (default 2).
	RedoWorkers int
	// BoundaryStride verifies every Nth boundary fork (default 1 = all).
	BoundaryStride int
	Logf           func(string, ...any)
}

func (o SweepOpts) withDefaults() SweepOpts {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers == 0 {
		o.Workers = 3
	}
	if o.PreCrashCommits == 0 {
		o.PreCrashCommits = 120
	}
	if o.PostPromoteCommits == 0 {
		o.PostPromoteCommits = 20
	}
	if o.Keys == 0 {
		o.Keys = 40
	}
	if o.GateTimeout == 0 {
		o.GateTimeout = 2 * time.Second
	}
	if o.RedoWorkers == 0 {
		o.RedoWorkers = 2
	}
	if o.BoundaryStride == 0 {
		o.BoundaryStride = 1
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// SweepResult summarizes one standby sweep.
type SweepResult struct {
	CommitsAcked     int // commits acknowledged to clients (both nodes)
	CommitsUnacked   int // ambiguous gate failures (ErrCommitUnacked)
	ResolvedIn       int // ambiguous commits whose records reached the standby
	ResolvedOut      int // ambiguous commits lost with the primary
	Boundaries       int // boundary forks verified
	FailoverTTFC     time.Duration
	SegmentsShipped  uint64
	SegmentsResent   uint64
	SegmentsApplied  uint64
	SegmentsRejected uint64
	Naks             uint64
	Reseeds          uint64
	ZombieRejected   uint64 // old-epoch segments rejected after promotion
	Channel          ChannelCounts
	LagP50, LagP99   float64 // applied-lag percentiles, log bytes
}

// sweepOp is one ledger mutation: a single-key upsert or delete.
type sweepOp struct {
	key, val string
	del      bool
}

// sweepEntry is one commit in the ledger, keyed by its commit-record LSN
// and the generation (1 = old primary, 2 = promoted node) whose log that
// LSN addresses — the two logs share an address space, so the generation
// disambiguates.
type sweepEntry struct {
	lsn   wal.LSN
	gen   int
	op    sweepOp
	acked bool
}

// sweepLedger is the exact model of what clients were told.
type sweepLedger struct {
	mu      sync.Mutex
	entries map[int]map[wal.LSN]*sweepEntry // gen → commit LSN → entry
	acked   int64
}

func newSweepLedger() *sweepLedger {
	return &sweepLedger{entries: map[int]map[wal.LSN]*sweepEntry{1: {}, 2: {}}}
}

func (l *sweepLedger) pend(gen int, lsn wal.LSN, op sweepOp) {
	l.mu.Lock()
	l.entries[gen][lsn] = &sweepEntry{lsn: lsn, gen: gen, op: op}
	l.mu.Unlock()
}

func (l *sweepLedger) ack(gen int, lsn wal.LSN) {
	l.mu.Lock()
	if e := l.entries[gen][lsn]; e != nil {
		e.acked = true
		l.acked++
	}
	l.mu.Unlock()
}

func (l *sweepLedger) ackedCount() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.acked
}

// genEntries returns generation gen's entries sorted by commit LSN.
func (l *sweepLedger) genEntries(gen int) []*sweepEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*sweepEntry, 0, len(l.entries[gen]))
	for _, e := range l.entries[gen] {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].lsn < out[j].lsn })
	return out
}

// commitSet collects the LSN of every commit record in the log.
func commitSet(log *wal.Log) map[wal.LSN]bool {
	set := map[wal.LSN]bool{}
	log.Scan(1, func(r *wal.Record) bool {
		if r.Type == wal.RecCommit {
			set[r.LSN] = true
		}
		return true
	})
	return set
}

// modelRows folds entries (already LSN-sorted) whose commit LSN is in the
// set into the final key→value state.
func modelRows(rows map[string]string, entries []*sweepEntry, commits map[wal.LSN]bool) map[string]string {
	if rows == nil {
		rows = map[string]string{}
	}
	for _, e := range entries {
		if !commits[e.lsn] {
			continue
		}
		if e.op.del {
			delete(rows, e.op.key)
		} else {
			rows[e.op.key] = e.op.val
		}
	}
	return rows
}

// verifyRows checks that the engine's table is exactly want.
func verifyRows(d *db.DB, table string, want map[string]string) error {
	tbl, err := d.Table(table)
	if err != nil {
		return err
	}
	got := map[string]string{}
	tx, err := d.Begin()
	if err != nil {
		return err
	}
	if err := tbl.Scan(tx, []byte(""), nil, func(r db.Row) (bool, error) {
		got[string(r.Key)] = string(r.Value)
		return true, nil
	}); err != nil {
		_ = tx.Rollback()
		return fmt.Errorf("scan: %v", err)
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	for k, v := range want {
		gv, ok := got[k]
		if !ok {
			return fmt.Errorf("committed row %q missing (want %q)", k, v)
		}
		if gv != v {
			return fmt.Errorf("row %q = %q, want %q", k, gv, v)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			return fmt.Errorf("phantom row %q (uncommitted effect?)", k)
		}
	}
	return nil
}

func upsert(tbl *db.Table, tx *txn.Tx, op sweepOp) error {
	if op.del {
		err := tbl.Delete(tx, []byte(op.key))
		if errors.Is(err, db.ErrNotFound) {
			return nil // deleting an absent key is a no-op mutation
		}
		return err
	}
	err := tbl.Insert(tx, []byte(op.key), []byte(op.val))
	if errors.Is(err, db.ErrDuplicate) {
		return tbl.Update(tx, []byte(op.key), []byte(op.val))
	}
	return err
}

const sweepTable = "repl_kv"

// RunStandbySweep drives the whole scenario. See the package comment and
// the file comment for the verification contract.
func RunStandbySweep(o SweepOpts) (*SweepResult, error) {
	o = o.withDefaults()
	res := &SweepResult{}

	// ---- Build the primary, the channel, the standby, the shipper.
	pOpts := db.Options{PoolSize: 96, RedoWorkers: o.RedoWorkers, Stats: &trace.Stats{}}
	primary := db.Open(pOpts)
	if _, err := primary.CreateTable(sweepTable); err != nil {
		return nil, err
	}
	meta := primary.Disk().ReadMeta()
	primary.Log().ForceAll()
	// Boundary forks must land after the table-creation records: a log
	// truncated inside the setup prefix describes a half-built catalog.
	setupLSN := primary.Log().StableLSN()

	ch := NewChannel(o.Faults)
	sOpts := db.Options{PoolSize: 96, RedoWorkers: o.RedoWorkers,
		OnlineRestart: o.OnlineRestart, Stats: &trace.Stats{}}
	standby := NewStandby(ch, meta, StandbyOpts{DBOpts: sOpts, Epoch: 1, ApplyWorkers: o.RedoWorkers})
	standby.Start()

	shipper := NewShipper(primary.Log(), ch, ShipperOpts{
		Epoch:      1,
		Retransmit: 2 * time.Millisecond,
		MetaFn:     func() []byte { return primary.Disk().ReadMeta() },
		Stats:      primary.Stats(),
	})
	shipper.Start()
	if o.SyncGate {
		primary.SetCommitGate(shipper.Gate(o.GateTimeout))
	}

	// ---- Live traffic.
	led := newSweepLedger()
	var curDB atomic.Pointer[db.DB]
	var curGen atomic.Int64
	curDB.Store(primary)
	curGen.Store(1)
	promoteCh := make(chan struct{}) // closed once the promoted node serves
	stopCh := make(chan struct{})
	var unacked atomic.Int64
	var postCommits atomic.Int64
	var crashedAt time.Time
	var ttfcOnce sync.Once
	var ttfc time.Duration
	var fatalMu sync.Mutex
	var fatalErr error
	setFatal := func(err error) {
		fatalMu.Lock()
		if fatalErr == nil {
			fatalErr = err
		}
		fatalMu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.Seed*1000 + int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stopCh:
					return
				default:
				}
				d := curDB.Load()
				gen := int(curGen.Load())
				op := sweepOp{key: fmt.Sprintf("k%03d", rng.Intn(o.Keys))}
				if rng.Float64() < 0.15 {
					op.del = true
				} else {
					op.val = fmt.Sprintf("w%d-%d", w, i)
				}
				var lsn wal.LSN
				err := d.RunTxnWith(db.RunTxnOpts{
					Seed:          o.Seed*10000 + int64(w)*100 + int64(i) + 1,
					RetryDeadline: 150 * time.Millisecond,
					OnCommitted:   func(l wal.LSN) { lsn = l; led.pend(gen, l, op) },
					OnCommit: func() {
						led.ack(gen, lsn)
						if gen == 2 {
							postCommits.Add(1)
							ttfcOnce.Do(func() { ttfc = time.Since(crashedAt) })
						}
					},
				}, func(tx *txn.Tx) error {
					tbl, err := d.TableFor(tx, sweepTable)
					if err != nil {
						return err
					}
					return upsert(tbl, tx, op)
				})
				switch {
				case err == nil:
				case errors.Is(err, db.ErrCommitUnacked):
					// Ambiguous: locally durable, standby unconfirmed. The
					// ledger's pending entry resolves it after failover;
					// retrying would risk double-apply, so don't.
					unacked.Add(1)
				case db.ClassifyErr(err) == db.ClassCrash:
					// The primary died under us. Park until the promoted
					// node serves, then continue — fresh mutations, same
					// ledger discipline.
					select {
					case <-promoteCh:
					case <-stopCh:
						return
					}
				default:
					setFatal(fmt.Errorf("repl sweep: worker %d: %w", w, err))
					return
				}
			}
		}(w)
	}

	waitFor := func(cond func() bool, what string) error {
		deadline := time.Now().Add(60 * time.Second)
		for !cond() {
			fatalMu.Lock()
			err := fatalErr
			fatalMu.Unlock()
			if err != nil {
				return err
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("repl sweep: timed out waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
		return nil
	}

	// ---- Phase 1: accumulate acked commits, then crash mid-traffic.
	if err := waitFor(func() bool { return led.ackedCount() >= int64(o.PreCrashCommits) }, "pre-crash commits"); err != nil {
		close(stopCh)
		wg.Wait()
		return nil, err
	}
	crashedAt = time.Now()
	primary.Crash() // workers are live; the shipper keeps running as a zombie
	o.Logf("repl: primary crashed after %d acked commits (lag %d bytes)",
		led.ackedCount(), shipper.Lag())

	// ---- Phase 2: fence, capture the promoted base, promote.
	standby.Fence()
	preLog := standby.DB().Log().Clone(&trace.Stats{})
	promoted, _, err := standby.Promote()
	if err != nil {
		close(stopCh)
		wg.Wait()
		return nil, fmt.Errorf("repl sweep: promote: %w", err)
	}
	curDB.Store(promoted)
	curGen.Store(2)
	close(promoteCh)

	// ---- Phase 3: the promoted node serves traffic.
	if err := waitFor(func() bool { return postCommits.Load() >= int64(o.PostPromoteCommits) }, "post-promote commits"); err != nil {
		close(stopCh)
		wg.Wait()
		return nil, err
	}
	close(stopCh)
	wg.Wait()
	if err := func() error { fatalMu.Lock(); defer fatalMu.Unlock(); return fatalErr }(); err != nil {
		return nil, err
	}
	res.FailoverTTFC = ttfc

	// ---- Phase 4: the zombie primary's dying gasp must bounce off the
	// epoch fence.
	rejBefore := promoted.Stats().SegmentsRejected.Load()
	if err := waitFor(func() bool {
		shipper.ShipNow() // keep gasping: the lossy channel may drop any one frame
		return promoted.Stats().SegmentsRejected.Load() > rejBefore
	}, "zombie segment rejection"); err != nil {
		return nil, err
	}
	res.ZombieRejected = promoted.Stats().SegmentsRejected.Load() - rejBefore
	shipper.Stop()
	ch.Close()
	standby.Wait()

	// ---- Phase 5: verification.
	if _, err := promoted.AwaitRecovered(); err != nil {
		return nil, fmt.Errorf("repl sweep: promoted recovery: %w", err)
	}
	promotedCommits := commitSet(promoted.Log())
	preCommits := commitSet(preLog)
	gen1 := led.genEntries(1)
	gen2 := led.genEntries(2)

	// (a) Zero acked loss under the gate; resolution accounting either way.
	for _, e := range gen1 {
		switch {
		case preCommits[e.lsn]:
			if !e.acked {
				res.ResolvedIn++
			}
		case e.acked:
			if o.SyncGate {
				return nil, fmt.Errorf("repl sweep: ACKED commit LSN %d lost in failover", e.lsn)
			}
		default:
			res.ResolvedOut++
		}
	}
	// Post-promote commits landed on the serving node itself.
	for _, e := range gen2 {
		if e.acked && !promotedCommits[e.lsn] {
			return nil, fmt.Errorf("repl sweep: post-promote commit LSN %d missing from promoted log", e.lsn)
		}
	}

	// (b) Exact state: promoted rows = gen-1 entries resolved by the
	// promoted base, then gen-2 entries by the promoted log.
	want := modelRows(nil, gen1, preCommits)
	want = modelRows(want, gen2, promotedCommits)
	if err := verifyRows(promoted, sweepTable, want); err != nil {
		return nil, fmt.Errorf("repl sweep: promoted state: %v", err)
	}
	if err := promoted.VerifyConsistency(); err != nil {
		return nil, fmt.Errorf("repl sweep: promoted consistency: %v", err)
	}

	// (c) Every-boundary forks over the received window: each prefix of
	// the standby's log is a correct promotion point.
	boundaries := recovery.Boundaries(preLog, setupLSN)
	for i := 0; i < len(boundaries); i += o.BoundaryStride {
		L := boundaries[i]
		truncLog := preLog.Clone(&trace.Stats{})
		truncLog.TruncateTo(L)
		fOpts := db.Options{PoolSize: 96, RedoWorkers: o.RedoWorkers, Stats: &trace.Stats{}}
		fork, _, err := db.OpenStandby(fOpts, truncLog, meta)
		if err != nil {
			return nil, fmt.Errorf("repl sweep: boundary %d (LSN %d): open: %v", i, L, err)
		}
		fw := modelRows(nil, gen1, commitSet(fork.Log()))
		if err := verifyRows(fork, sweepTable, fw); err != nil {
			return nil, fmt.Errorf("repl sweep: boundary %d (LSN %d): %v", i, L, err)
		}
		res.Boundaries++
	}

	// ---- Bookkeeping.
	psn := primary.Stats().Snap()
	ssn := promoted.Stats().Snap()
	res.CommitsAcked = int(led.ackedCount())
	res.CommitsUnacked = int(unacked.Load())
	res.SegmentsShipped = psn.SegmentsShipped
	res.SegmentsResent = psn.SegmentsResent
	res.SegmentsApplied = ssn.SegmentsApplied
	res.SegmentsRejected = ssn.SegmentsRejected
	res.Naks = ssn.ReplNaks
	res.Reseeds = ssn.ReplReseeds
	res.Channel = ch.Counts()
	if lags := standby.LagSamples(); len(lags) > 0 {
		sort.Float64s(lags)
		res.LagP50 = lags[len(lags)/2]
		res.LagP99 = lags[len(lags)*99/100]
	}
	o.Logf("repl: %d acked (%d ambiguous: %d resolved in, %d out), TTFC %v, %d boundaries, "+
		"%d shipped/%d resent/%d applied/%d rejected, %d naks, %d reseeds, zombie %d, channel %+v",
		res.CommitsAcked, res.CommitsUnacked, res.ResolvedIn, res.ResolvedOut, res.FailoverTTFC,
		res.Boundaries, res.SegmentsShipped, res.SegmentsResent, res.SegmentsApplied,
		res.SegmentsRejected, res.Naks, res.Reseeds, res.ZombieRejected, res.Channel)
	return res, nil
}
