package repl

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ariesim/internal/trace"
	"ariesim/internal/wal"
)

// ErrShipperStopped reports a wait cut short by Stop.
var ErrShipperStopped = errors.New("repl: shipper stopped")

// ErrAckTimeout reports a commit-gate wait that expired before the standby
// acknowledged the LSN.
var ErrAckTimeout = errors.New("repl: standby ack timeout")

// ShipperOpts tunes the primary-side shipper.
type ShipperOpts struct {
	// Epoch stamps every outgoing segment; the standby accepts only its
	// own epoch (zombie fencing).
	Epoch uint64
	// Retransmit is how long shipped-but-unacked records may age before
	// the shipper re-ships from the acked watermark (default 5ms). This is
	// the loss-repair backstop: a dropped frame is re-sent after at most
	// one retransmit interval, keeping the commit gate live.
	Retransmit time.Duration
	// MetaFn, when set, supplies the primary's current catalog blob; the
	// shipper embeds it in a segment whenever it changes, so mid-stream
	// DDL reaches the standby.
	MetaFn func() []byte
	// Stats receives shipping counters (may be nil).
	Stats *trace.Stats
}

// Shipper streams a log's stable prefix over a Channel as framed
// segments. Start it once; it wakes on the log's stable-notify hook
// (wal.Log.SetStableNotify), ships everything newly hardened, and
// services the control path: ACKs advance the acked watermark (and
// release commit-gate waiters), NAKs rewind the ship cursor, RESEEDs
// answer with a full archive over the reliable path.
type Shipper struct {
	log  *wal.Log
	ch   *Channel
	opts ShipperOpts

	mu       sync.Mutex
	cond     *sync.Cond
	nextShip wal.LSN // first LSN not yet shipped
	seq      uint64
	acked    wal.LSN // highest standby-acked LSN
	lastMeta []byte  // last catalog blob shipped
	stopped  bool

	notify   chan struct{} // stable-notify doorbell (coalesced)
	notified atomic.Uint64 // highest watermark announced by the notify hook
	stop     chan struct{} // closed by Stop
	done     sync.WaitGroup
}

// NewShipper wires a shipper to the primary's log and the channel. The
// shipper installs itself as the log's stable-notify hook.
func NewShipper(log *wal.Log, ch *Channel, opts ShipperOpts) *Shipper {
	if opts.Retransmit == 0 {
		opts.Retransmit = 5 * time.Millisecond
	}
	s := &Shipper{
		log:      log,
		ch:       ch,
		opts:     opts,
		nextShip: wal.NilLSN + 1,
		notify:   make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	// The hook rides the log's contiguity watermark: deliveries are
	// strictly increasing within a crash epoch and carry the hardened
	// mark, so the doorbell only rings when there is genuinely new stable
	// prefix to ship — a stale or repeated watermark is dropped here.
	log.SetStableNotify(func(lsn wal.LSN) {
		for {
			prev := s.notified.Load()
			if uint64(lsn) <= prev {
				return
			}
			if s.notified.CompareAndSwap(prev, uint64(lsn)) {
				s.ring()
				return
			}
		}
	})
	return s
}

// Start launches the ship and control loops.
func (s *Shipper) Start() {
	s.done.Add(2)
	go s.shipLoop()
	go s.controlLoop()
	s.ring() // ship whatever is already stable
}

// Stop halts both loops and releases every gate waiter with
// ErrShipperStopped. It does not close the channel.
func (s *Shipper) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
	close(s.stop)
	s.done.Wait()
}

// ring nudges the ship loop (idempotent, non-blocking). It stays safe
// after Stop: the log's stable-notify hook remains installed, so a
// late Force on the primary's log must not panic.
func (s *Shipper) ring() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// AckedLSN returns the highest standby-acknowledged LSN.
func (s *Shipper) AckedLSN() wal.LSN {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acked
}

// Lag returns how many stable log bytes the standby has not yet
// acknowledged — the replication lag in the only unit LSNs measure.
func (s *Shipper) Lag() uint64 {
	stable := s.log.StableLSN()
	s.mu.Lock()
	acked := s.acked
	s.mu.Unlock()
	if stable <= acked {
		return 0
	}
	return uint64(stable - acked)
}

// WaitAcked blocks until the standby has acknowledged lsn, the timeout
// expires (ErrAckTimeout), or the shipper stops (ErrShipperStopped).
func (s *Shipper) WaitAcked(lsn wal.LSN, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer timer.Stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.acked < lsn {
		if s.stopped {
			return ErrShipperStopped
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: LSN %d unacked after %v", ErrAckTimeout, lsn, timeout)
		}
		s.cond.Wait()
	}
	return nil
}

// Gate adapts WaitAcked into a db.SetCommitGate function: semi-sync
// replication acks a commit only once the standby holds its record.
func (s *Shipper) Gate(timeout time.Duration) func(wal.LSN) error {
	return func(lsn wal.LSN) error {
		if err := s.WaitAcked(lsn, timeout); err != nil {
			return err
		}
		if s.opts.Stats != nil {
			s.opts.Stats.ReplCommitsAcked.Add(1)
		}
		return nil
	}
}

// ShipNow forces one segment send even when nothing new is stable — an
// empty segment is a heartbeat, and it is how a zombie primary's dying
// gasp reaches (and bounces off) a promoted standby's epoch fence.
func (s *Shipper) ShipNow() {
	s.ship(0, true)
}

// shipFrom ships [from..stable] as one segment; from 0 means the current
// cursor. A shipped window advances the cursor; a NAK rewinds it.
func (s *Shipper) shipFrom(from wal.LSN) {
	s.ship(from, false)
}

func (s *Shipper) ship(from wal.LSN, force bool) {
	s.mu.Lock()
	if from == 0 {
		from = s.nextShip
	} else if from < s.nextShip {
		s.nextShip = from // NAK rewind
	}
	recs, stable, master := s.log.SnapshotStable(from)
	if len(recs) == 0 && from > stable && !force {
		s.mu.Unlock()
		return // nothing stable beyond the cursor; heartbeats aren't needed
	}
	s.seq++
	seg := &wal.Segment{
		Epoch:   s.opts.Epoch,
		Seq:     s.seq,
		PrevLSN: from - 1,
		Stable:  stable,
		Master:  master,
		Records: recs,
	}
	if s.opts.MetaFn != nil {
		if meta := s.opts.MetaFn(); len(meta) > 0 && !bytes.Equal(meta, s.lastMeta) {
			seg.Meta = append([]byte(nil), meta...)
			s.lastMeta = seg.Meta
		}
	}
	if len(recs) > 0 {
		last := recs[len(recs)-1]
		s.nextShip = last.LSN + wal.LSN(last.EncodedSize())
	}
	s.mu.Unlock()
	frame := append([]byte{frameData}, seg.Encode()...)
	s.ch.Send(frame)
	if s.opts.Stats != nil {
		s.opts.Stats.SegmentsShipped.Add(1)
	}
}

// shipLoop ships on every stable-notify doorbell and retransmits from the
// acked watermark when acks stall — the repair path for dropped frames.
func (s *Shipper) shipLoop() {
	defer s.done.Done()
	retransmit := time.NewTicker(s.opts.Retransmit)
	defer retransmit.Stop()
	lastAcked := wal.NilLSN
	for {
		select {
		case <-s.stop:
			return
		case <-s.notify:
			s.shipFrom(0)
		case <-retransmit.C:
			s.mu.Lock()
			acked, next, stopped := s.acked, s.nextShip, s.stopped
			s.mu.Unlock()
			if stopped {
				return
			}
			if acked+1 < next && acked == lastAcked {
				// Shipped records aged past one interval with no ack
				// progress: assume loss and re-ship the whole unacked
				// window.
				if s.opts.Stats != nil {
					s.opts.Stats.SegmentsResent.Add(1)
				}
				s.shipFrom(acked + 1)
			}
			lastAcked = acked
		}
	}
}

// controlLoop services the standby's feedback.
func (s *Shipper) controlLoop() {
	defer s.done.Done()
	for {
		var m Control
		var ok bool
		select {
		case m, ok = <-s.ch.ControlCh():
			if !ok {
				return
			}
		case <-s.stop:
			return
		}
		switch m.Kind {
		case CtlAck:
			s.mu.Lock()
			if wal.LSN(m.LSN) > s.acked {
				s.acked = wal.LSN(m.LSN)
				s.cond.Broadcast()
			}
			s.mu.Unlock()
		case CtlNak:
			if s.opts.Stats != nil {
				s.opts.Stats.SegmentsResent.Add(1)
			}
			s.shipFrom(wal.LSN(m.LSN))
		case CtlReseed:
			s.sendReseed()
		}
	}
}

// sendReseed answers an unrecoverable gap with the full stable archive
// plus the current catalog blob, over the reliable path (modeling an
// out-of-band base copy).
func (s *Shipper) sendReseed() {
	var meta []byte
	if s.opts.MetaFn != nil {
		meta = s.opts.MetaFn()
	}
	var buf bytes.Buffer
	buf.WriteByte(frameReseed)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(meta)))
	buf.Write(hdr[:])
	buf.Write(meta)
	if _, err := s.log.Archive(&buf); err != nil {
		return // archiving an in-memory log cannot fail; defensive
	}
	if s.opts.Stats != nil {
		s.opts.Stats.ReplReseeds.Add(1)
	}
	s.ch.SendReliable(buf.Bytes())
}
