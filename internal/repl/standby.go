package repl

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"ariesim/internal/db"
	"ariesim/internal/recovery"
	"ariesim/internal/wal"
)

// maxNakRetries bounds how many NAKs the standby sends for the same
// expected LSN before declaring the gap unrecoverable and asking for a
// full re-seed.
const maxNakRetries = 6

// flushEvery is the segment cadence of the standby's background
// FlushAll + master-record advance. Flushed pages and a fresh master
// bound the redo work a promotion has to repeat, exactly as checkpoints
// bound a restart.
const flushEvery = 16

// StandbyOpts tunes the standby.
type StandbyOpts struct {
	// DB options for the replica engine (pool size, redo workers, online
	// restart for promotion, ...).
	DBOpts db.Options
	// Epoch the standby accepts; segments from any other epoch are
	// rejected. Promote bumps it so the dead primary's stragglers fence.
	Epoch uint64
	// ApplyWorkers is the perpetual-redo parallelism per batch (default 1).
	ApplyWorkers int
	// NakBackoff is the first gap-retry backoff (default 500µs); each
	// further NAK for the same gap doubles it.
	NakBackoff time.Duration
}

// Standby owns a replica engine and drives it from a Channel: append each
// in-order segment to the local log, force it, replay it into the pool
// with the page-partitioned parallel redo, acknowledge, repeat — forever,
// until Promote. Gaps NAK with exponential backoff; hopeless gaps re-seed
// from a full archive.
type Standby struct {
	ch   *Channel
	opts StandbyOpts

	mu       sync.Mutex
	db       *db.DB
	epoch    uint64
	applied  wal.LSN // tail LSN of the last appended-and-applied record
	promoted bool

	// Gap bookkeeping: the expected LSN the current NAK run is trying to
	// fill, how many times it was NAKed, and the backoff step.
	gapExpected wal.LSN
	gapNaks     int

	// lag samples (stable-at-ship minus applied, in log bytes), bounded.
	lagSamples []float64

	done chan struct{}
}

// NewStandby builds the replica engine (fresh disk seeded with the
// primary's catalog blob) and wires it to the channel.
func NewStandby(ch *Channel, catalogMeta []byte, opts StandbyOpts) *Standby {
	if opts.ApplyWorkers < 1 {
		opts.ApplyWorkers = 1
	}
	if opts.NakBackoff == 0 {
		opts.NakBackoff = 500 * time.Microsecond
	}
	return &Standby{
		ch:    ch,
		opts:  opts,
		db:    db.OpenReplica(opts.DBOpts, catalogMeta),
		epoch: opts.Epoch,
		done:  make(chan struct{}),
	}
}

// DB returns the replica engine (the serving primary after Promote).
func (s *Standby) DB() *db.DB {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db
}

// AppliedLSN returns the standby's applied watermark.
func (s *Standby) AppliedLSN() wal.LSN {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// LagSamples returns the recorded per-segment lag samples (log bytes the
// primary had hardened beyond the standby's applied tail at each apply).
func (s *Standby) LagSamples() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.lagSamples...)
}

// Start launches the receive loop.
func (s *Standby) Start() {
	go s.recvLoop()
}

// Wait blocks until the receive loop exits (channel closed).
func (s *Standby) Wait() { <-s.done }

// recvLoop is the perpetual-redo driver.
func (s *Standby) recvLoop() {
	defer close(s.done)
	for frame := range s.ch.RecvCh() {
		if len(frame) == 0 {
			continue
		}
		switch frame[0] {
		case frameData:
			s.handleSegment(frame[1:])
		case frameReseed:
			s.handleReseed(frame[1:])
		}
	}
}

// handleSegment validates, dedups, appends, forces, and replays one
// shipped segment, then acknowledges the new applied watermark.
func (s *Standby) handleSegment(frame []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sdb := s.db
	stats := sdb.Stats()
	seg, err := wal.DecodeSegment(frame)
	if err != nil {
		// The channel mangled the frame. We cannot even trust its window
		// bounds, so treat it as silence: the shipper's retransmit (or our
		// next gap NAK) repairs whatever it carried.
		stats.SegmentsRejected.Add(1)
		s.nakLocked(s.nextLSNLocked())
		return
	}
	if seg.Epoch != s.epoch {
		// Zombie fencing: a dead primacy's stragglers (or a sender from a
		// future we haven't joined) are rejected wholesale.
		stats.SegmentsRejected.Add(1)
		return
	}
	if s.promoted {
		stats.SegmentsRejected.Add(1)
		return
	}

	// Dedup: drop the prefix we already hold (duplicate or overlapping
	// delivery). Idempotent by page_LSN anyway, but trimming keeps the
	// local log append-exact.
	next := s.nextLSNLocked()
	recs := seg.Records
	for len(recs) > 0 && recs[0].LSN < next {
		recs = recs[1:]
	}
	if len(recs) == 0 {
		if len(seg.Records) > 0 {
			stats.SegmentsRejected.Add(1) // pure duplicate
		}
		s.ackLocked()
		return
	}
	if recs[0].LSN > next {
		// Gap: something between our tail and this segment was lost.
		stats.SegmentsRejected.Add(1)
		s.nakLocked(next)
		return
	}
	s.appendApplyLocked(recs, seg.Stable, seg.Master, seg.Meta)
}

// appendApplyLocked appends a contiguous record run starting exactly at
// the local log's next LSN, forces it, replays it, and acks.
func (s *Standby) appendApplyLocked(recs []*wal.Record, shipStable, shipMaster wal.LSN, meta []byte) {
	sdb := s.db
	stats := sdb.Stats()
	log := sdb.Log()
	for _, r := range recs {
		if got := log.Append(cloneRecord(r)); got != r.LSN {
			// An LSN is 1 + the record's byte offset, and the caller
			// verified the run starts exactly at our next offset, so an
			// identical byte stream must reproduce identical LSNs. A
			// mismatch is a codec invariant violation, not channel damage.
			panic(fmt.Sprintf("repl: shipped record LSN %d appended at %d", r.LSN, got))
		}
	}
	// Force before apply: the pool may steal/flush any replayed page, and
	// the WAL rule demands its log records be stable first.
	log.ForceAll()
	if _, err := recovery.ApplyRecords(sdb.Pool(), recs, s.opts.ApplyWorkers, stats); err != nil {
		// Apply errors on a standby are unrecoverable locally (the pool
		// saw an impossible record); ask for a clean slate.
		s.reseedLocked()
		return
	}
	s.applied = recs[len(recs)-1].LSN
	if meta != nil {
		sdb.Disk().WriteMeta(meta)
	}
	// Advance the master record (clamped to our stable prefix) so a
	// promotion's analysis starts at the primary's last checkpoint rather
	// than LSN 1.
	if shipMaster != wal.NilLSN && shipMaster <= log.StableLSN() && shipMaster > log.Master() {
		log.SetMaster(shipMaster)
	}
	stats.SegmentsApplied.Add(1)
	if lag := float64(shipStable) - float64(s.applied); lag >= 0 && len(s.lagSamples) < 1<<16 {
		s.lagSamples = append(s.lagSamples, lag)
	}
	if stats.SegmentsApplied.Load()%flushEvery == 0 {
		// Background flush: bounds promotion redo like a checkpoint bounds
		// restart redo. Everything appended is forced, so the WAL rule
		// holds for every flushed page.
		_ = sdb.Pool().FlushAll()
	}
	s.gapExpected, s.gapNaks = 0, 0 // progress resets the gap bookkeeping
	s.ackLocked()
}

// nextLSNLocked returns the LSN the local log will assign next.
func (s *Standby) nextLSNLocked() wal.LSN {
	return s.db.Log().NextLSN()
}

// ackLocked reports the applied watermark to the primary.
func (s *Standby) ackLocked() {
	s.ch.SendControl(Control{Kind: CtlAck, LSN: uint64(s.applied)})
}

// nakLocked requests re-shipping from expected, with bounded retries and
// exponential backoff; past the bound it escalates to a full re-seed.
func (s *Standby) nakLocked(expected wal.LSN) {
	stats := s.db.Stats()
	if expected != s.gapExpected {
		s.gapExpected, s.gapNaks = expected, 0
	}
	s.gapNaks++
	if s.gapNaks > maxNakRetries {
		s.reseedLocked()
		return
	}
	stats.ReplNaks.Add(1)
	// Exponential backoff outside the lock: give the in-flight repair a
	// chance before asking again, without blocking frame receipt.
	backoff := s.opts.NakBackoff << uint(s.gapNaks-1)
	s.mu.Unlock()
	time.Sleep(backoff)
	s.mu.Lock()
	if s.promoted {
		return
	}
	s.ch.SendControl(Control{Kind: CtlNak, LSN: uint64(expected)})
}

// reseedLocked gives up on incremental repair and asks for the full
// archive.
func (s *Standby) reseedLocked() {
	s.gapExpected, s.gapNaks = 0, 0
	s.ch.SendControl(Control{Kind: CtlReseed})
}

// handleReseed consumes a full-archive frame: catalog blob, then the
// primary's whole stable log. Everything we already hold is trimmed
// (dedup by LSN); the remainder is appended and replayed as one giant
// segment — the log never rewinds, it only extends.
func (s *Standby) handleReseed(frame []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stats := s.db.Stats()
	if s.promoted {
		stats.SegmentsRejected.Add(1)
		return
	}
	if len(frame) < 4 {
		stats.SegmentsRejected.Add(1)
		return
	}
	metaLen := int(binary.LittleEndian.Uint32(frame[:4]))
	if 4+metaLen > len(frame) {
		stats.SegmentsRejected.Add(1)
		return
	}
	meta := frame[4 : 4+metaLen]
	shipped, err := wal.ReadArchive(bytes.NewReader(frame[4+metaLen:]))
	if err != nil && !errors.Is(err, wal.ErrArchiveTorn) {
		// A corrupt re-seed (reliable path, so only in adversarial tests):
		// ask again.
		stats.SegmentsRejected.Add(1)
		s.reseedLocked()
		return
	}
	next := s.nextLSNLocked()
	recs := shipped.Records(next)
	if len(recs) == 0 {
		s.ackLocked() // archive adds nothing; we were already ahead
		return
	}
	if recs[0].LSN != next {
		// The archive itself starts beyond our tail — cannot happen with
		// whole-log archives; reject.
		stats.SegmentsRejected.Add(1)
		return
	}
	var m []byte
	if metaLen > 0 {
		m = append([]byte(nil), meta...)
	}
	s.appendApplyLocked(recs, shipped.StableLSN(), shipped.Master(), m)
}

// Fence stops segment application and bumps the epoch: anything the dead
// primary still ships is stale from this instant on (rejected and
// counted). Fence is the first half of Promote, exposed so a harness can
// capture the exact promoted log base between fencing and promotion.
func (s *Standby) Fence() {
	s.mu.Lock()
	if !s.promoted {
		s.promoted = true
		s.epoch++
	}
	s.mu.Unlock()
}

// Promote fences the epoch, then opens the replica as the new primary
// (db.Promote: flush, restart recovery over the shipped log, undo of the
// dead primary's in-flight transactions). The receive loop keeps running,
// rejecting — and counting — every late segment from the old epoch, until
// the channel closes.
func (s *Standby) Promote() (*db.DB, *recovery.Report, error) {
	s.Fence()
	s.mu.Lock()
	sdb := s.db
	s.mu.Unlock()
	rep, err := sdb.Promote()
	if err != nil {
		return nil, nil, err
	}
	return sdb, rep, nil
}

// cloneRecord copies a record so the standby's log owns its storage (the
// decoded segment's records share the frame buffer's payload bytes).
func cloneRecord(r *wal.Record) *wal.Record {
	c := *r
	if r.Payload != nil {
		c.Payload = append([]byte(nil), r.Payload...)
	}
	return &c
}
