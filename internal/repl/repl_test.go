package repl

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ariesim/internal/db"
	"ariesim/internal/trace"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

func testDBOpts() db.Options {
	return db.Options{PoolSize: 64, RedoWorkers: 2, Stats: &trace.Stats{}}
}

// pair wires a primary, a channel with the given faults, a standby, and a
// started shipper, all on epoch 1.
func pair(t *testing.T, faults ChannelFaults) (*db.DB, *Channel, *Standby, *Shipper) {
	t.Helper()
	primary := db.Open(testDBOpts())
	if _, err := primary.CreateTable(sweepTable); err != nil {
		t.Fatalf("create table: %v", err)
	}
	ch := NewChannel(faults)
	standby := NewStandby(ch, primary.Disk().ReadMeta(), StandbyOpts{
		DBOpts: testDBOpts(), Epoch: 1, ApplyWorkers: 2,
	})
	standby.Start()
	shipper := NewShipper(primary.Log(), ch, ShipperOpts{
		Epoch:      1,
		Retransmit: 2 * time.Millisecond,
		MetaFn:     func() []byte { return primary.Disk().ReadMeta() },
		Stats:      primary.Stats(),
	})
	shipper.Start()
	return primary, ch, standby, shipper
}

func put(t *testing.T, d *db.DB, k, v string) {
	t.Helper()
	if err := d.RunTxn(func(tx *txn.Tx) error {
		tbl, err := d.TableFor(tx, sweepTable)
		if err != nil {
			return err
		}
		return upsert(tbl, tx, sweepOp{key: k, val: v})
	}); err != nil {
		t.Fatalf("put %s=%s: %v", k, v, err)
	}
}

// TestShipApplyPromote covers the clean-channel round trip: commits
// stream to the standby as they harden, an in-flight transaction's
// records ship too, and promotion undoes the in-flight work — its row
// must not appear on the promoted node.
func TestShipApplyPromote(t *testing.T) {
	primary, ch, standby, shipper := pair(t, ChannelFaults{})
	defer ch.Close()

	want := map[string]string{}
	for i := 0; i < 20; i++ {
		k := "k" + strconv.Itoa(i%7)
		v := "v" + strconv.Itoa(i)
		put(t, primary, k, v)
		want[k] = v
	}

	// An in-flight transaction: its update record ships (a later commit
	// forces the log past it) but it never commits — ARIES/IM's headline
	// assertion is that promotion's undo erases it.
	tx := primary.MustBegin()
	tbl, err := primary.TableFor(tx, sweepTable)
	if err != nil {
		t.Fatalf("table: %v", err)
	}
	if err := tbl.Insert(tx, []byte("zz-uncommitted"), []byte("ghost")); err != nil {
		t.Fatalf("in-flight insert: %v", err)
	}
	put(t, primary, "k-final", "done") // forces the log past the ghost record
	want["k-final"] = "done"

	if err := shipper.WaitAcked(primary.Log().StableLSN(), 5*time.Second); err != nil {
		t.Fatalf("standby never caught up: %v", err)
	}
	if got, stable := standby.AppliedLSN(), primary.Log().StableLSN(); got != stable {
		t.Fatalf("applied %d, primary stable %d", got, stable)
	}

	promoted, rep, err := standby.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if rep == nil {
		t.Fatalf("promote returned no recovery report")
	}
	shipper.Stop()
	if err := verifyRows(promoted, sweepTable, want); err != nil {
		t.Fatalf("promoted state: %v", err)
	}
	if err := promoted.VerifyConsistency(); err != nil {
		t.Fatalf("promoted consistency: %v", err)
	}
	if n, _ := promoted.AckedCommits(); n != 0 {
		// Sanity: the promoted node starts a fresh acked ledger.
		t.Fatalf("promoted node born with %d acked commits", n)
	}
}

// TestLossyChannelCatchUp runs every fault class at once under the
// semi-sync gate: each commit must still ack (retransmit + NAK repair the
// stream), and the standby must converge to the primary's exact state.
func TestLossyChannelCatchUp(t *testing.T) {
	faults := ChannelFaults{
		Seed:        42,
		DropProb:    0.20,
		DupProb:     0.10,
		ReorderProb: 0.10,
		CorruptProb: 0.08,
		StallProb:   0.05,
	}
	primary, ch, standby, shipper := pair(t, faults)
	defer ch.Close()
	primary.SetCommitGate(shipper.Gate(5 * time.Second))

	want := map[string]string{}
	n := 60
	if testing.Short() {
		n = 25
	}
	for i := 0; i < n; i++ {
		k := "k" + strconv.Itoa(i%9)
		v := "v" + strconv.Itoa(i)
		put(t, primary, k, v) // gated: returns only once standby-durable
		want[k] = v
	}
	counts := ch.Counts()
	if counts.Dropped+counts.Duplicated+counts.Reordered+counts.Corrupted == 0 {
		t.Fatalf("fault injector never fired: %+v", counts)
	}
	if got := standby.AppliedLSN(); got < primary.Log().StableLSN() {
		t.Fatalf("gated commits acked but applied %d < stable %d", got, primary.Log().StableLSN())
	}

	promoted, _, err := standby.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	shipper.Stop()
	if err := verifyRows(promoted, sweepTable, want); err != nil {
		t.Fatalf("promoted state after lossy stream: %v", err)
	}
	t.Logf("channel: %+v; naks=%d resent=%d applied=%d rejected=%d",
		counts, promoted.Stats().ReplNaks.Load(), primary.Stats().SegmentsResent.Load(),
		promoted.Stats().SegmentsApplied.Load(), promoted.Stats().SegmentsRejected.Load())
}

// TestReseedPath drives the standby's gap escalation by hand: a segment
// starting beyond its tail is NAKed with backoff exactly maxNakRetries
// times, the next repeat escalates to CtlReseed, and a full archive frame
// then heals the standby completely.
func TestReseedPath(t *testing.T) {
	primary := db.Open(testDBOpts())
	if _, err := primary.CreateTable(sweepTable); err != nil {
		t.Fatalf("create table: %v", err)
	}
	want := map[string]string{}
	for i := 0; i < 12; i++ {
		k := "k" + strconv.Itoa(i%5)
		v := "v" + strconv.Itoa(i)
		put(t, primary, k, v)
		want[k] = v
	}

	ch := NewChannel(ChannelFaults{})
	defer ch.Close()
	standby := NewStandby(ch, primary.Disk().ReadMeta(), StandbyOpts{
		DBOpts: testDBOpts(), Epoch: 1, ApplyWorkers: 2,
		NakBackoff: 50 * time.Microsecond,
	})
	standby.Start()

	// Ship only a mid-log suffix: the standby (at LSN 1) sees a gap.
	recs := primary.Log().Records(1)
	if len(recs) < 4 {
		t.Fatalf("need a few records, have %d", len(recs))
	}
	from := recs[len(recs)/2].LSN
	var seq uint64
	gapped := func() []byte {
		seq++
		seg := primary.Log().ShipFrom(from, 1, seq, from-1)
		return append([]byte{frameData}, seg.Encode()...)
	}
	for i := 0; i < maxNakRetries+1; i++ {
		ch.Send(gapped())
	}

	// The control stream must carry exactly maxNakRetries NAKs (all for
	// the standby's unmoved tail) and then the escalation.
	naks := 0
	deadline := time.After(10 * time.Second)
	for {
		var m Control
		select {
		case m = <-ch.ControlCh():
		case <-deadline:
			t.Fatalf("no reseed after %d naks", naks)
		}
		if m.Kind == CtlNak {
			naks++
			continue
		}
		if m.Kind == CtlReseed {
			break
		}
	}
	if naks != maxNakRetries {
		t.Fatalf("got %d naks before reseed, want %d", naks, maxNakRetries)
	}

	// Answer the reseed the way the shipper would: catalog blob + the full
	// stable archive over the reliable path.
	meta := primary.Disk().ReadMeta()
	var buf bytes.Buffer
	buf.WriteByte(frameReseed)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(meta)))
	buf.Write(hdr[:])
	buf.Write(meta)
	if _, err := primary.Log().Archive(&buf); err != nil {
		t.Fatalf("archive: %v", err)
	}
	ch.SendReliable(buf.Bytes())

	stable := primary.Log().StableLSN()
	for wait := time.Now().Add(10 * time.Second); standby.AppliedLSN() < stable; {
		if time.Now().After(wait) {
			t.Fatalf("reseed never applied: at %d, want %d", standby.AppliedLSN(), stable)
		}
		time.Sleep(time.Millisecond)
	}
	if got := standby.DB().Stats().ReplNaks.Load(); got != uint64(maxNakRetries) {
		t.Fatalf("standby counted %d naks, want %d", got, maxNakRetries)
	}
	promoted, _, err := standby.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if err := verifyRows(promoted, sweepTable, want); err != nil {
		t.Fatalf("post-reseed state: %v", err)
	}
}

// TestZombieFencing: segments from the dead epoch bounce off a promoted
// standby, and a standby joined at the wrong epoch never applies anything.
func TestZombieFencing(t *testing.T) {
	primary, ch, standby, shipper := pair(t, ChannelFaults{})
	defer ch.Close()
	put(t, primary, "a", "1")
	if err := shipper.WaitAcked(primary.Log().StableLSN(), 5*time.Second); err != nil {
		t.Fatalf("catch up: %v", err)
	}
	promoted, _, err := standby.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	rejBefore := promoted.Stats().SegmentsRejected.Load()
	put(t, primary, "b", "2") // zombie keeps writing and shipping
	shipper.ShipNow()
	for wait := time.Now().Add(5 * time.Second); promoted.Stats().SegmentsRejected.Load() == rejBefore; {
		if time.Now().After(wait) {
			t.Fatalf("zombie segment never rejected")
		}
		time.Sleep(time.Millisecond)
	}
	shipper.Stop()
	// The zombie's post-promotion write must not exist on the new primary.
	if err := verifyRows(promoted, sweepTable, map[string]string{"a": "1"}); err != nil {
		t.Fatalf("promoted state: %v", err)
	}
}

// TestPromotionRacesRetryLoop is the exactly-once test: clients hammer a
// single counter through the crash and the promotion, retrying
// crash-class errors against whichever node currently serves. Every
// increment acknowledged to a client must appear on the promoted node
// exactly once — the final counter value equals the number of commit
// records that survived, and every ACKED gen-1 commit is among them.
func TestPromotionRacesRetryLoop(t *testing.T) {
	primary, ch, standby, shipper := pair(t, ChannelFaults{
		Seed: 9, DropProb: 0.10, DupProb: 0.05, ReorderProb: 0.05,
	})
	defer ch.Close()
	primary.SetCommitGate(shipper.Gate(2 * time.Second))

	const key = "ctr"
	preTarget, postTarget := 25, 10
	if testing.Short() {
		preTarget, postTarget = 12, 5
	}

	var curDB atomic.Pointer[db.DB]
	var curGen atomic.Int64
	curDB.Store(primary)
	curGen.Store(1)
	promoteCh := make(chan struct{})
	stopCh := make(chan struct{})

	// pend[gen] maps commit LSN → acked?, exactly the sweep's ledger but
	// for a single counter: the op is always "+1".
	var ledMu sync.Mutex
	pend := map[int]map[wal.LSN]bool{1: {}, 2: {}}
	var ackedGen1, ackedGen2 atomic.Int64

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopCh:
					return
				default:
				}
				d := curDB.Load()
				gen := int(curGen.Load())
				var lsn wal.LSN
				err := d.RunTxnWith(db.RunTxnOpts{
					Seed:          int64(w*1000+i) + 1,
					RetryDeadline: 200 * time.Millisecond,
					OnCommitted: func(l wal.LSN) {
						lsn = l
						ledMu.Lock()
						pend[gen][l] = false
						ledMu.Unlock()
					},
					OnCommit: func() {
						ledMu.Lock()
						pend[gen][lsn] = true
						ledMu.Unlock()
						if gen == 1 {
							ackedGen1.Add(1)
						} else {
							ackedGen2.Add(1)
						}
					},
				}, func(tx *txn.Tx) error {
					tbl, err := d.TableFor(tx, sweepTable)
					if err != nil {
						return err
					}
					n := 0
					cur, err := tbl.Get(tx, []byte(key))
					switch {
					case err == nil:
						n, _ = strconv.Atoi(string(cur))
						n++
						return tbl.Update(tx, []byte(key), []byte(strconv.Itoa(n)))
					case errors.Is(err, db.ErrNotFound):
						return tbl.Insert(tx, []byte(key), []byte("1"))
					default:
						return err
					}
				})
				switch {
				case err == nil:
				case errors.Is(err, db.ErrCommitUnacked):
					// Ambiguous — the pend entry resolves it; do NOT retry,
					// a blind retry is exactly the double-apply this test
					// exists to catch.
				case db.ClassifyErr(err) == db.ClassCrash:
					// The retry loop under test: crash-class errors park the
					// client until failover completes, then it retries
					// against the promoted node.
					select {
					case <-promoteCh:
					case <-stopCh:
						return
					}
				default:
					t.Errorf("worker %d: unexpected error: %v", w, err)
					return
				}
			}
		}(w)
	}

	waitCount := func(c *atomic.Int64, n int, what string) {
		t.Helper()
		for wait := time.Now().Add(60 * time.Second); c.Load() < int64(n); {
			if t.Failed() || time.Now().After(wait) {
				close(stopCh)
				wg.Wait()
				t.Fatalf("stalled waiting for %s (%d/%d)", what, c.Load(), n)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitCount(&ackedGen1, preTarget, "pre-crash increments")
	primary.Crash()
	standby.Fence()
	preLog := standby.DB().Log().Clone(&trace.Stats{})
	promoted, _, err := standby.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	curDB.Store(promoted)
	curGen.Store(2)
	close(promoteCh)
	waitCount(&ackedGen2, postTarget, "post-promote increments")
	close(stopCh)
	wg.Wait()
	shipper.Stop()

	// Resolve the ledger: a gen-1 increment took effect iff its commit
	// record is in the promoted base; gen-2 iff in the promoted log.
	preCommits := commitSet(preLog)
	postCommits := commitSet(promoted.Log())
	ledMu.Lock()
	expect := 0
	for l, acked := range pend[1] {
		if preCommits[l] {
			expect++
		} else if acked {
			t.Errorf("ACKED gen-1 increment LSN %d lost in failover", l)
		}
	}
	for l := range pend[2] {
		if !postCommits[l] {
			t.Errorf("gen-2 increment LSN %d missing from promoted log", l)
		}
		expect++
	}
	ledMu.Unlock()

	got := -1
	if err := promoted.RunTxn(func(tx *txn.Tx) error {
		tbl, err := promoted.TableFor(tx, sweepTable)
		if err != nil {
			return err
		}
		v, err := tbl.Get(tx, []byte(key))
		if err != nil {
			return err
		}
		got, err = strconv.Atoi(string(v))
		return err
	}); err != nil {
		t.Fatalf("read counter: %v", err)
	}
	if got != expect {
		t.Fatalf("counter = %d, want %d (double- or under-applied retries)", got, expect)
	}
	t.Logf("counter %d: gen1 acked %d, gen2 acked %d, pend1 %d, pend2 %d",
		got, ackedGen1.Load(), ackedGen2.Load(), len(pend[1]), len(pend[2]))
}

// TestStandbySweepMini runs the full crash-promote sweep at race-friendly
// scale: lossy channel, semi-sync gate, boundary forks, zombie fencing.
func TestStandbySweepMini(t *testing.T) {
	o := SweepOpts{
		Seed:               7,
		Workers:            2,
		PreCrashCommits:    35,
		PostPromoteCommits: 8,
		Keys:               16,
		Faults: ChannelFaults{
			Seed: 7, DropProb: 0.15, DupProb: 0.08,
			ReorderProb: 0.08, CorruptProb: 0.05, StallProb: 0.02,
		},
		SyncGate:       true,
		RedoWorkers:    2,
		BoundaryStride: 3,
		Logf:           t.Logf,
	}
	if testing.Short() {
		o.PreCrashCommits, o.PostPromoteCommits, o.BoundaryStride = 20, 5, 6
	}
	res, err := RunStandbySweep(o)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if res.CommitsAcked < o.PreCrashCommits+o.PostPromoteCommits {
		t.Fatalf("only %d acked commits", res.CommitsAcked)
	}
	if res.Boundaries == 0 {
		t.Fatalf("no boundary forks verified")
	}
	if res.ZombieRejected == 0 {
		t.Fatalf("zombie fencing never exercised")
	}
	if res.FailoverTTFC <= 0 {
		t.Fatalf("no failover TTFC measured")
	}
}
