// Package mvcc is the in-memory version store behind snapshot-isolated
// read-only transactions. Writers push a version per record mutation
// (keyed by table + primary key, carrying the full row image), commit
// stamps every version of the transaction with its commit LSN once the
// commit record is durable, and readers resolve a key against a snapshot
// LSN with a pure LSN comparison — no lock-manager calls at all.
//
// The store is volatile and epoch-scoped: the engine builds a fresh one
// per restart/promotion (versions are reconstructable from the page +
// undo state, and recovery holds reinstated loser locks that force
// readers onto the locked path until chains could matter again), so
// restart "invalidation" is simply starting empty.
//
// Visibility watermark. A commit becomes visible only after its record
// is durable AND every commit at a lower LSN has also been stamped or
// abandoned. Committers enter a ticket before appending their commit
// record, attach the LSN once known, and retire the ticket after the
// log force; `visible` advances to min(inflight)-1 (or the max stamped
// LSN when no ticket is open) and never past an unassigned ticket. A
// snapshot is just `visible` at begin: every commit <= S is stamped and
// durable, every commit > S is invisible, so torn or unordered reads
// cannot occur — even across crashes, because an unforced commit never
// advances the watermark.
//
// Chain-removal invariant. A chain may be dropped (or old versions
// folded into its base) only when it has no in-flight versions and the
// folded commit LSNs are <= min(visible, every active snapshot). Hence
// "no chain for key K" proves to any reader that the page image of K it
// probed carries only commits <= its snapshot — uncommitted writer data
// or a newer commit would imply a chain that cannot have been removed
// while the reader's snapshot is registered. Writers seeding a new
// chain validate their committed-state probe against a per-table
// removal sequence number to close the probe/creation race.
package mvcc

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"ariesim/internal/trace"
	"ariesim/internal/wal"
)

// ErrSnapshotTooOld reports that the version a snapshot needs was pruned
// while the reader ran (a long reader under heavy churn on a capped
// chain). It is retryable: a fresh snapshot sees the surviving state.
var ErrSnapshotTooOld = errors.New("mvcc: snapshot too old (version pruned)")

// maxChainVersions caps a chain's stamped history; beyond it, pruning
// folds old versions into the base even past a straggling reader's
// snapshot, raising the chain floor (ErrSnapshotTooOld for that reader).
const maxChainVersions = 32

// version is one record image pushed by a writer.
type version struct {
	present   bool
	value     []byte
	txID      wal.TxID
	commitLSN wal.LSN // 0 while the writer is in flight
	pushLSN   wal.LSN // writer's log position at push (savepoint rollback)
}

// chain is the version history of one (table, key). base is the
// committed state at chain creation (or after folding); floor is the
// lowest snapshot LSN the base can still answer (0 = any).
type chain struct {
	key         string
	tc          *tableChains // owning table (chains never migrate)
	basePresent bool
	baseValue   []byte
	floor       wal.LSN
	versions    []version
}

// visibleAt resolves the chain against snapshot s.
func (c *chain) visibleAt(s wal.LSN) (present bool, value []byte, err error) {
	for i := len(c.versions) - 1; i >= 0; i-- {
		v := &c.versions[i]
		if v.commitLSN != 0 && v.commitLSN <= s {
			return v.present, v.value, nil
		}
	}
	if s < c.floor {
		return false, nil, ErrSnapshotTooOld
	}
	return c.basePresent, c.baseValue, nil
}

// tableChains holds one table's chains plus the removal sequence that
// writers use to validate committed-state probes.
type tableChains struct {
	mu         sync.Mutex
	chains     map[string]*chain
	removalSeq atomic.Uint64
}

// Store is the engine-wide version store for one epoch.
type Store struct {
	stats *trace.Stats

	mu         sync.Mutex
	visible    wal.LSN
	stampedMax wal.LSN
	tickets    map[wal.TxID]wal.LSN  // open commits; 0 = LSN not yet assigned
	snaps      map[uint64]wal.LSN    // active snapshot registry
	touched    map[wal.TxID][]*chain // chains holding in-flight versions per tx

	tmu    sync.RWMutex
	tables map[uint64]*tableChains
}

// NewStore creates an empty store reporting into stats.
func NewStore(stats *trace.Stats) *Store {
	if stats == nil {
		stats = &trace.Stats{} // field addresses must be takeable
	}
	return &Store{
		stats:   stats,
		tickets: make(map[wal.TxID]wal.LSN),
		snaps:   make(map[uint64]wal.LSN),
		touched: make(map[wal.TxID][]*chain),
		tables:  make(map[uint64]*tableChains),
	}
}

func (st *Store) table(id uint64) *tableChains {
	st.tmu.RLock()
	tc := st.tables[id]
	st.tmu.RUnlock()
	if tc != nil {
		return tc
	}
	st.tmu.Lock()
	defer st.tmu.Unlock()
	if tc = st.tables[id]; tc == nil {
		tc = &tableChains{chains: make(map[string]*chain)}
		st.tables[id] = tc
	}
	return tc
}

// Seq returns the table's chain-removal sequence number. A writer reads
// it before probing committed state for a chain seed; Push re-checks it
// under the table lock and asks for a fresh probe if removals intervened.
func (st *Store) Seq(tableID uint64) uint64 {
	return st.table(tableID).removalSeq.Load()
}

// StartAt initializes the visibility watermark of a fresh (empty) store
// to the log's current end. Everything committed before this epoch is
// page state with no chain — visible to every snapshot — so the epoch's
// first snapshot must order AFTER every pre-epoch commit LSN, not at 0.
func (st *Store) StartAt(lsn wal.LSN) {
	st.mu.Lock()
	if lsn > st.stampedMax {
		st.stampedMax = lsn
	}
	if lsn > st.visible {
		st.visible = lsn
	}
	st.mu.Unlock()
}

// snapIDs issues snapshot registration IDs. Process-global rather than
// per-store so that an End delivered to a successor epoch's store (the
// reader outlived a restart that swapped stores) can never retire another
// reader's registration by ID collision — it is simply unknown there.
var snapIDs atomic.Uint64

// Begin captures a snapshot: the current visibility watermark, registered
// so pruning cannot fold commits the snapshot still needs.
func (st *Store) Begin() (s wal.LSN, id uint64) {
	id = snapIDs.Add(1)
	st.mu.Lock()
	s = st.visible
	st.snaps[id] = s
	st.mu.Unlock()
	trace.Add(&st.stats.SnapshotBegins, 1)
	return s, id
}

// End retires a snapshot registration.
func (st *Store) End(id uint64) {
	st.mu.Lock()
	delete(st.snaps, id)
	st.mu.Unlock()
}

// minActive returns the lowest registered snapshot LSN, or ^0 when no
// snapshot is active. Caller holds st.mu.
func (st *Store) minActiveLocked() wal.LSN {
	min := ^wal.LSN(0)
	for _, s := range st.snaps {
		if s < min {
			min = s
		}
	}
	return min
}

// Push records a version for (table, key) on behalf of writer tx. seed
// supplies the committed state of the key and is consulted only when a
// new chain must be materialized; it may be retried if chain removals
// race the probe, and its error aborts the push (the caller's operation
// fails before any page mutation, so nothing is torn).
func (st *Store) Push(tableID uint64, key []byte, present bool, value []byte, tx wal.TxID, pushLSN wal.LSN, seed func() (bool, []byte, uint64, error)) error {
	tc := st.table(tableID)
	k := string(key)
	v := version{present: present, txID: tx, commitLSN: 0, pushLSN: pushLSN}
	if value != nil {
		v.value = append([]byte(nil), value...)
	}
	for {
		tc.mu.Lock()
		if c, ok := tc.chains[k]; ok {
			c.versions = append(c.versions, v)
			st.noteTouched(tx, c)
			st.stats.MaxGauge(&st.stats.VersionChainPeak, uint64(len(c.versions)))
			tc.mu.Unlock()
			trace.Add(&st.stats.VersionsPushed, 1)
			return nil
		}
		tc.mu.Unlock()
		// No chain: probe committed state outside the table lock, then
		// create, validating against the removal sequence (a removal
		// between probe and create could have changed committed state).
		basePresent, baseValue, seq, err := seed()
		if err != nil {
			return err
		}
		tc.mu.Lock()
		if _, ok := tc.chains[k]; ok {
			tc.mu.Unlock()
			continue // a racing writer created it; append instead
		}
		if tc.removalSeq.Load() != seq {
			tc.mu.Unlock()
			continue // stale probe; redo it
		}
		c := &chain{key: k, tc: tc, basePresent: basePresent, versions: []version{v}}
		if baseValue != nil {
			c.baseValue = append([]byte(nil), baseValue...)
		}
		tc.chains[k] = c
		st.noteTouched(tx, c)
		st.stats.MaxGauge(&st.stats.VersionChainPeak, 1)
		tc.mu.Unlock()
		trace.Add(&st.stats.ChainsCreated, 1)
		trace.Add(&st.stats.VersionsPushed, 1)
		return nil
	}
}

// noteTouched remembers that tx holds an in-flight version on c. Caller
// holds the chain's table lock; st.mu nests inside it.
func (st *Store) noteTouched(tx wal.TxID, c *chain) {
	st.mu.Lock()
	refs := st.touched[tx]
	for _, r := range refs {
		if r == c {
			st.mu.Unlock()
			return
		}
	}
	st.touched[tx] = append(refs, c)
	st.mu.Unlock()
}

// EnterCommit opens the writer's commit ticket before its commit record
// is appended, freezing the visibility watermark below the upcoming LSN.
func (st *Store) EnterCommit(tx wal.TxID) {
	st.mu.Lock()
	st.tickets[tx] = 0
	st.mu.Unlock()
}

// CommitAt attaches the commit record's LSN to the ticket (pre-force).
func (st *Store) CommitAt(tx wal.TxID, lsn wal.LSN) {
	st.mu.Lock()
	if _, ok := st.tickets[tx]; ok {
		st.tickets[tx] = lsn
	}
	st.mu.Unlock()
}

// FinishCommit runs after the commit record is durable: stamp every
// version the transaction pushed, retire the ticket, advance the
// watermark, and opportunistically prune the touched chains.
func (st *Store) FinishCommit(tx wal.TxID, lsn wal.LSN) {
	st.mu.Lock()
	refs := st.touched[tx]
	delete(st.touched, tx)
	st.mu.Unlock()
	for _, c := range refs {
		st.withChain(c, func(tc *tableChains) {
			for i := range c.versions {
				if c.versions[i].txID == tx && c.versions[i].commitLSN == 0 {
					c.versions[i].commitLSN = lsn
				}
			}
			// Push order can differ from commit order: an inserter pushes
			// before it holds any lock on the key, so a racing deleter of
			// the prior incarnation may commit first. Restore commit order
			// now that the LSN is known; in-flight versions stay at the
			// tail (they must commit after everything already stamped —
			// their writer acquired the key X lock last), and the stable
			// sort keeps a single transaction's same-LSN pushes in push
			// order so its final state wins.
			sort.SliceStable(c.versions, func(i, j int) bool {
				vi, vj := c.versions[i].commitLSN, c.versions[j].commitLSN
				if vi == 0 {
					return false
				}
				if vj == 0 {
					return true
				}
				return vi < vj
			})
		})
	}
	st.mu.Lock()
	delete(st.tickets, tx)
	if lsn > st.stampedMax {
		st.stampedMax = lsn
	}
	st.advanceLocked()
	visible := st.visible
	minActive := st.minActiveLocked()
	st.mu.Unlock()
	for _, c := range refs {
		st.pruneChain(c, visible, minActive)
	}
}

// AbortCommit retires the ticket of a commit whose log force failed (the
// record died with its epoch) and drops the transaction's versions.
func (st *Store) AbortCommit(tx wal.TxID) {
	st.mu.Lock()
	delete(st.tickets, tx)
	st.advanceLocked()
	st.mu.Unlock()
	st.DropTx(tx)
}

// advanceLocked recomputes the visibility watermark. Caller holds st.mu.
func (st *Store) advanceLocked() {
	cand := st.stampedMax
	for _, lsn := range st.tickets {
		if lsn == 0 {
			return // an appended-but-unplaced commit: no advance at all
		}
		if lsn-1 < cand {
			cand = lsn - 1
		}
	}
	if cand > st.visible {
		st.visible = cand
	}
}

// withChain runs fn under the chain's table lock.
func (st *Store) withChain(c *chain, fn func(*tableChains)) {
	c.tc.mu.Lock()
	fn(c.tc)
	c.tc.mu.Unlock()
}

// removeIfRetired drops a drained chain per the removal invariant: no
// in-flight or stamped versions remain and everything folded into the
// base is visible to every active and future snapshot. Caller holds
// tc.mu. The identity check guards against a same-key successor chain.
func (st *Store) removeIfRetired(tc *tableChains, c *chain, minActive, visible wal.LSN) {
	if len(c.versions) != 0 || c.floor > minActiveOrVisible(minActive, visible) {
		return
	}
	if tc.chains[c.key] != c {
		return
	}
	delete(tc.chains, c.key)
	tc.removalSeq.Add(1)
	trace.Add(&st.stats.ChainsRemoved, 1)
}

// pruneChain folds fully-visible history into the base and retires empty
// chains per the removal invariant.
func (st *Store) pruneChain(c *chain, visible, minActive wal.LSN) {
	st.withChain(c, func(tc *tableChains) {
		pruned := uint64(0)
		for len(c.versions) > 0 {
			v := &c.versions[0]
			if v.commitLSN == 0 || v.commitLSN > visible {
				break
			}
			forced := len(c.versions) > maxChainVersions
			if v.commitLSN > minActive && !forced {
				break
			}
			if v.commitLSN > minActive {
				// Folding past a live reader: raise the floor so that
				// reader gets ErrSnapshotTooOld instead of a wrong base.
				c.floor = v.commitLSN
			}
			c.basePresent, c.baseValue = v.present, v.value
			c.versions = c.versions[1:]
			pruned++
		}
		if pruned > 0 {
			trace.Add(&st.stats.VersionsPruned, pruned)
		}
		st.removeIfRetired(tc, c, minActive, visible)
	})
}

// minActiveOrVisible bounds chain removal: every folded commit (<= the
// floor after folding) must be visible to all active and future readers.
func minActiveOrVisible(minActive, visible wal.LSN) wal.LSN {
	if minActive < visible {
		return minActive
	}
	return visible
}

// DropTx discards every in-flight version tx pushed (rollback, restart
// loser undo). Chains left empty are retired.
func (st *Store) DropTx(tx wal.TxID) {
	st.dropTx(tx, 0)
}

// DropTxSince discards tx's in-flight versions pushed at or after the
// savepoint LSN (partial rollback); earlier versions survive. The bound
// is inclusive because an operation may push before it writes its first
// log record (a delete pushes its tombstone before the ghosting update),
// leaving pushLSN equal to the savepoint taken at operation entry; the
// converse confusion cannot arise because every completed operation logs
// at least one record after its push, so a pre-savepoint push always has
// pushLSN strictly below the savepoint.
func (st *Store) DropTxSince(tx wal.TxID, save wal.LSN) {
	st.dropTx(tx, save)
}

func (st *Store) dropTx(tx wal.TxID, save wal.LSN) {
	st.mu.Lock()
	refs := st.touched[tx]
	visible := st.visible
	minActive := st.minActiveLocked()
	st.mu.Unlock()
	var kept []*chain
	for _, c := range refs {
		remains := false
		st.withChain(c, func(tc *tableChains) {
			out := c.versions[:0]
			for _, v := range c.versions {
				if v.txID == tx && v.commitLSN == 0 && v.pushLSN >= save {
					continue
				}
				out = append(out, v)
				if v.txID == tx && v.commitLSN == 0 {
					remains = true
				}
			}
			c.versions = out
			st.removeIfRetired(tc, c, minActive, visible)
		})
		if remains {
			kept = append(kept, c)
		}
	}
	st.mu.Lock()
	if len(kept) > 0 {
		st.touched[tx] = kept
	} else {
		delete(st.touched, tx)
	}
	st.mu.Unlock()
}

// ReadResult is a snapshot resolution for one key.
type ReadResult struct {
	// Chain reports the key had a version chain; Present/Value are then
	// authoritative. Without a chain the caller probes the page image and
	// may trust it (see the removal invariant).
	Chain   bool
	Present bool
	Value   []byte
}

// Read resolves key under snapshot s.
func (st *Store) Read(tableID uint64, key []byte, s wal.LSN) (ReadResult, error) {
	tc := st.table(tableID)
	tc.mu.Lock()
	c, ok := tc.chains[string(key)]
	if !ok {
		tc.mu.Unlock()
		return ReadResult{}, nil
	}
	present, value, err := c.visibleAt(s)
	tc.mu.Unlock()
	if err != nil {
		trace.Add(&st.stats.SnapshotTooOld, 1)
		return ReadResult{}, err
	}
	trace.Add(&st.stats.SnapshotChainHits, 1)
	if value != nil {
		value = append([]byte(nil), value...)
	}
	return ReadResult{Chain: true, Present: present, Value: value}, nil
}

// Row is a snapshot-resolved chain row inside a scan window.
type Row struct {
	Key     string
	Present bool
	Value   []byte
}

// RowsBetween resolves every chained key in the (lo, hi) window — bound
// inclusivity per the flags, hi ignored when hiUnbounded — under
// snapshot s, in key order. Scans merge these rows with the page
// cursor: a key deleted after s has no page entry but its chain still
// answers with the pre-delete image.
func (st *Store) RowsBetween(tableID uint64, lo string, loIncl bool, hi string, hiIncl, hiUnbounded bool, s wal.LSN) ([]Row, error) {
	tc := st.table(tableID)
	tc.mu.Lock()
	var rows []Row
	for k, c := range tc.chains {
		if k < lo || (k == lo && !loIncl) {
			continue
		}
		if !hiUnbounded && (k > hi || (k == hi && !hiIncl)) {
			continue
		}
		present, value, err := c.visibleAt(s)
		if err != nil {
			tc.mu.Unlock()
			trace.Add(&st.stats.SnapshotTooOld, 1)
			return nil, err
		}
		if value != nil {
			value = append([]byte(nil), value...)
		}
		rows = append(rows, Row{Key: k, Present: present, Value: value})
	}
	tc.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
	return rows, nil
}

// Visible exposes the current watermark (tests, diagnostics).
func (st *Store) Visible() wal.LSN {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.visible
}
