// Package space implements logged page allocation over the free-space-map
// page.
//
// Page allocation must participate in recovery: a page split allocates a
// page inside a nested top action, and ARIES's repeating-history redo must
// reconstruct the allocator exactly. The FSM is therefore an ordinary page
// (storage.FSMPageID) mutated only through logged operations; undoing an
// incomplete SMO frees its pages through CLRs like any other page action.
package space

import (
	"encoding/binary"
	"fmt"

	"ariesim/internal/buffer"
	"ariesim/internal/latch"
	"ariesim/internal/storage"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

func payloadFor(bit int) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, uint32(bit))
	return b
}

func bitFrom(payload []byte) (int, error) {
	if len(payload) != 4 {
		return 0, fmt.Errorf("space: FSM payload is %d bytes, want 4", len(payload))
	}
	return int(binary.LittleEndian.Uint32(payload)), nil
}

// ensureFSM lazily types a zeroed page as the FSM (the all-clear bitmap of
// a fresh disk is already a valid empty FSM, so no logging is needed).
func ensureFSM(p *storage.Page) {
	if p.Type() != storage.PageTypeFSM {
		storage.FormatFSM(p)
	}
}

// Alloc allocates one page on behalf of tx, logging the FSM bit set. The
// returned page is not yet formatted; callers format it under their own
// log record (OpIdxFormat / OpDataFormat) so redo reconstructs both the
// allocation and the content.
func Alloc(tx *txn.Tx, pool *buffer.Pool) (storage.PageID, error) {
	f, err := pool.Fix(storage.FSMPageID)
	if err != nil {
		return storage.InvalidPageID, err
	}
	defer pool.Unfix(f)
	f.Latch.Acquire(latch.X)
	defer f.Latch.Release(latch.X)
	ensureFSM(f.Page)
	bit, err := storage.FSMFindFree(f.Page)
	if err != nil {
		return storage.InvalidPageID, err
	}
	lsn := tx.LogUpdate(storage.FSMPageID, wal.OpFSMAlloc, payloadFor(bit), false)
	if err := storage.FSMSet(f.Page, bit, true); err != nil {
		return storage.InvalidPageID, err
	}
	f.Page.SetLSN(uint64(lsn))
	pool.MarkDirty(f, lsn)
	return storage.FSMPageForBit(bit), nil
}

// Free deallocates a page on behalf of tx, logging the FSM bit clear.
func Free(tx *txn.Tx, pool *buffer.Pool, id storage.PageID) error {
	bit, err := storage.FSMBitForPage(id)
	if err != nil {
		return err
	}
	f, err := pool.Fix(storage.FSMPageID)
	if err != nil {
		return err
	}
	defer pool.Unfix(f)
	f.Latch.Acquire(latch.X)
	defer f.Latch.Release(latch.X)
	ensureFSM(f.Page)
	if !storage.FSMIsSet(f.Page, bit) {
		return fmt.Errorf("space: double free of page %d", id)
	}
	lsn := tx.LogUpdate(storage.FSMPageID, wal.OpFSMFree, payloadFor(bit), false)
	if err := storage.FSMSet(f.Page, bit, false); err != nil {
		return err
	}
	f.Page.SetLSN(uint64(lsn))
	pool.MarkDirty(f, lsn)
	return nil
}

// ApplyRedo reapplies an FSM log record to the page (restart redo and CLR
// redo both funnel here). The caller holds the page X latch and has
// already decided, by LSN comparison, that the record must be applied.
func ApplyRedo(p *storage.Page, rec *wal.Record) error {
	bit, err := bitFrom(rec.Payload)
	if err != nil {
		return err
	}
	ensureFSM(p)
	switch rec.Op {
	case wal.OpFSMAlloc:
		return storage.FSMSet(p, bit, true)
	case wal.OpFSMFree:
		return storage.FSMSet(p, bit, false)
	default:
		return fmt.Errorf("space: not an FSM op: %s", rec.Op)
	}
}

// Undo compensates an FSM record: an allocation is undone by freeing the
// bit, a free by reallocating it. FSM undos are always page-oriented.
func Undo(tx *txn.Tx, pool *buffer.Pool, rec *wal.Record) error {
	bit, err := bitFrom(rec.Payload)
	if err != nil {
		return err
	}
	f, err := pool.Fix(storage.FSMPageID)
	if err != nil {
		return err
	}
	defer pool.Unfix(f)
	f.Latch.Acquire(latch.X)
	defer f.Latch.Release(latch.X)
	ensureFSM(f.Page)
	var inverse wal.OpCode
	var on bool
	switch rec.Op {
	case wal.OpFSMAlloc:
		inverse, on = wal.OpFSMFree, false
	case wal.OpFSMFree:
		inverse, on = wal.OpFSMAlloc, true
	default:
		return fmt.Errorf("space: cannot undo op %s", rec.Op)
	}
	lsn := tx.LogCLR(storage.FSMPageID, inverse, payloadFor(bit), rec.PrevLSN)
	if err := storage.FSMSet(f.Page, bit, on); err != nil {
		return err
	}
	f.Page.SetLSN(uint64(lsn))
	pool.MarkDirty(f, lsn)
	return nil
}

// IsAllocated reports whether page id is currently allocated (verifier).
func IsAllocated(pool *buffer.Pool, id storage.PageID) (bool, error) {
	bit, err := storage.FSMBitForPage(id)
	if err != nil {
		return false, err
	}
	f, err := pool.Fix(storage.FSMPageID)
	if err != nil {
		return false, err
	}
	defer pool.Unfix(f)
	f.Latch.Acquire(latch.S)
	defer f.Latch.Release(latch.S)
	if f.Page.Type() != storage.PageTypeFSM {
		return false, nil
	}
	return storage.FSMIsSet(f.Page, bit), nil
}
