package space

import (
	"testing"

	"ariesim/internal/buffer"
	"ariesim/internal/lock"
	"ariesim/internal/storage"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

type env struct {
	log  *wal.Log
	pool *buffer.Pool
	mgr  *txn.Manager
}

func newEnv() *env {
	log := wal.NewLog(nil)
	disk := storage.NewDisk(512)
	pool := buffer.NewPool(disk, log, 16, nil)
	mgr := txn.NewManager(log, lock.NewManager(nil))
	return &env{log: log, pool: pool, mgr: mgr}
}

// fsmUndoer routes FSM undos to space.Undo (the full router lives in db).
type fsmUndoer struct{ pool *buffer.Pool }

func (u fsmUndoer) Undo(tx *txn.Tx, rec *wal.Record) error { return Undo(tx, u.pool, rec) }

func TestAllocAssignsDistinctPages(t *testing.T) {
	e := newEnv()
	tx := e.mgr.Begin()
	a, err := Alloc(tx, e.pool)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Alloc(tx, e.pool)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("duplicate allocation: %d", a)
	}
	if a < storage.FirstAllocatablePageID || b < storage.FirstAllocatablePageID {
		t.Fatalf("allocated reserved pages: %d %d", a, b)
	}
	for _, id := range []storage.PageID{a, b} {
		ok, err := IsAllocated(e.pool, id)
		if err != nil || !ok {
			t.Fatalf("page %d not recorded allocated: %v", id, err)
		}
	}
}

func TestFreeMakesPageReusable(t *testing.T) {
	e := newEnv()
	tx := e.mgr.Begin()
	a, _ := Alloc(tx, e.pool)
	if err := Free(tx, e.pool, a); err != nil {
		t.Fatal(err)
	}
	if ok, _ := IsAllocated(e.pool, a); ok {
		t.Fatal("freed page still allocated")
	}
	b, _ := Alloc(tx, e.pool)
	if b != a {
		t.Fatalf("freed page not reused: got %d, want %d", b, a)
	}
	if err := Free(tx, e.pool, b); err != nil {
		t.Fatal(err)
	}
	if err := Free(tx, e.pool, b); err == nil {
		t.Fatal("double free accepted")
	}
}

func TestAllocIsLogged(t *testing.T) {
	e := newEnv()
	tx := e.mgr.Begin()
	a, _ := Alloc(tx, e.pool)
	_ = Free(tx, e.pool, a)
	recs := e.log.Records(1)
	if len(recs) != 2 || recs[0].Op != wal.OpFSMAlloc || recs[1].Op != wal.OpFSMFree {
		t.Fatalf("log = %v", recs)
	}
	if recs[0].Page != storage.FSMPageID {
		t.Fatalf("FSM record against page %d", recs[0].Page)
	}
}

func TestUndoAllocFreesBit(t *testing.T) {
	e := newEnv()
	e.mgr.SetUndoer(fsmUndoer{e.pool})
	tx := e.mgr.Begin()
	a, _ := Alloc(tx, e.pool)
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := IsAllocated(e.pool, a); ok {
		t.Fatal("rollback did not free the allocation")
	}
	// CLR present and chained.
	var clr *wal.Record
	for _, r := range e.log.Records(1) {
		if r.Type == wal.RecCLR {
			clr = r
		}
	}
	if clr == nil || clr.Op != wal.OpFSMFree {
		t.Fatalf("CLR = %v", clr)
	}
}

func TestUndoFreeReallocatesBit(t *testing.T) {
	e := newEnv()
	e.mgr.SetUndoer(fsmUndoer{e.pool})
	setup := e.mgr.Begin()
	a, _ := Alloc(setup, e.pool)
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	tx := e.mgr.Begin()
	_ = Free(tx, e.pool, a)
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := IsAllocated(e.pool, a); !ok {
		t.Fatal("rollback did not restore the allocation")
	}
}

func TestApplyRedoRebuildsBitmap(t *testing.T) {
	e := newEnv()
	tx := e.mgr.Begin()
	a, _ := Alloc(tx, e.pool)
	b, _ := Alloc(tx, e.pool)
	_ = Free(tx, e.pool, a)
	// Replay the log onto a virgin page, as restart redo would.
	p := storage.NewPage(512)
	for _, r := range e.log.Records(1) {
		if err := ApplyRedo(p, r); err != nil {
			t.Fatal(err)
		}
	}
	bitA, _ := storage.FSMBitForPage(a)
	bitB, _ := storage.FSMBitForPage(b)
	if storage.FSMIsSet(p, bitA) {
		t.Fatal("freed bit set after replay")
	}
	if !storage.FSMIsSet(p, bitB) {
		t.Fatal("allocated bit clear after replay")
	}
}

func TestApplyRedoRejectsForeignOps(t *testing.T) {
	p := storage.NewPage(512)
	if err := ApplyRedo(p, &wal.Record{Op: wal.OpIdxInsertKey}); err == nil {
		t.Fatal("foreign op applied")
	}
	if err := ApplyRedo(p, &wal.Record{Op: wal.OpFSMAlloc, Payload: []byte{1}}); err == nil {
		t.Fatal("short payload applied")
	}
}
