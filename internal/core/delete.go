package core

import (
	"errors"
	"fmt"

	"ariesim/internal/latch"
	"ariesim/internal/lock"
	"ariesim/internal/storage"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

// Delete removes key from the index (Fig 7):
//
//  1. traverse (X-latching the leaf), waiting out SM_Bit;
//  2. X-lock the next key for commit duration — the "tripping point" other
//     transactions hit to discover the uncommitted delete (§2.6);
//  3. boundary keys (smallest/largest on the page): establish a point of
//     structural consistency by holding the tree latch in S across the
//     delete, so a restart-time logical undo never meets a tree made
//     unreachable by an unfinished SMO (§3, third reason);
//  4. a delete that would empty the page triggers the page-deletion SMO
//     (the key delete is logged first, outside the nested top action);
//  5. otherwise delete, log (setting Delete_Bit — cleared instead when a
//     POSC was just established), bump the page LSN.
//
// Under data-only locking the deleted key itself is not locked: the
// caller's record-manager X lock on the key's RID covers it.
func (ix *Index) Delete(tx *txn.Tx, key storage.Key) error {
	var heldTree *treeHold
	releaseTree := func() {
		if heldTree != nil {
			heldTree.release()
			heldTree = nil
		}
	}
	defer releaseTree()

	for attempt := 0; attempt < maxRestarts; attempt++ {
		leaf, err := ix.traverse(tx, key, true)
		if err != nil {
			return err
		}
		done, err := ix.awaitLeafQuiescent(tx, leaf, false)
		if err != nil {
			return err
		}
		if !done {
			continue
		}

		pos, err := leafLowerBound(leaf.Page, key)
		if err != nil {
			ix.unfixLatched(leaf, latch.X)
			return err
		}
		if pos >= leaf.Page.NSlots() {
			ix.unfixLatched(leaf, latch.X)
			return fmt.Errorf("%w: %s", ErrKeyNotFound, key)
		}
		k, err := leafKeyAt(leaf.Page, pos)
		if err != nil {
			ix.unfixLatched(leaf, latch.X)
			return err
		}
		if k.Compare(key) != 0 {
			ix.unfixLatched(leaf, latch.X)
			return fmt.Errorf("%w: %s", ErrKeyNotFound, key)
		}

		// Next-key lock: X for commit duration (Fig 2).
		target, restart, err := ix.nextKeyFrom(leaf, pos+1)
		if err != nil {
			ix.unfixLatched(leaf, latch.X)
			return err
		}
		if restart {
			ix.unfixLatched(leaf, latch.X)
			if err := ix.treeWaitInstantS(tx); err != nil {
				return err
			}
			continue
		}
		if ix.cfg.Protocol == KVL {
			retry, err := ix.kvlDeleteLocks(tx, leaf, pos, key, target, target.val)
			if err != nil {
				return err
			}
			if retry {
				continue
			}
			ix.releaseTarget(target)
		} else {
			// System R additionally X-locks the leaf page to commit.
			if ix.cfg.Protocol == SystemR {
				name := ix.pageLockName(leaf.ID())
				if err := tx.Lock(name, lock.X, lock.Commit, true); err != nil {
					ix.releaseTarget(target)
					ix.unfixLatched(leaf, latch.X)
					if err := tx.Lock(name, lock.X, lock.Commit, false); err != nil {
						return err
					}
					continue
				}
			}
			if err := tx.Lock(target.name, lock.X, lock.Commit, true); err != nil {
				ix.releaseTarget(target)
				ix.unfixLatched(leaf, latch.X)
				if err := tx.Lock(target.name, lock.X, lock.Commit, false); err != nil {
					return err
				}
				continue
			}
			ix.releaseTarget(target)

			// Index-specific locking: instant X on the deleted key itself.
			if ix.cfg.Protocol == IndexSpecific || ix.cfg.Protocol == SystemR {
				own := ix.keyLockName(key)
				if err := tx.Lock(own, lock.X, lock.Instant, true); err != nil {
					ix.unfixLatched(leaf, latch.X)
					// Retained on the fallback path (see Insert): an
					// instant grant would evaporate before the retry.
					if err := tx.Lock(own, lock.X, lock.Commit, false); err != nil {
						return err
					}
					continue
				}
			}
		}

		// Page-emptying delete: page deletion SMO (under the tree X
		// latch, so any tree-S hold must go first).
		if leaf.Page.NSlots() == 1 {
			leafID := leaf.ID()
			ix.unfixLatched(leaf, latch.X)
			releaseTree()
			finished, err := ix.deleteEmptyingLeaf(tx, leafID, key, nil)
			if err != nil {
				if !errors.Is(err, errSMOConflict) {
					retried, err := ix.handleSMOLockDenial(tx, err)
					if !retried {
						return err
					}
				}
				continue
			}
			if finished {
				return nil
			}
			continue
		}

		// Boundary key: establish and hold a POSC (S tree latch) across
		// the delete.
		boundary := pos == 0 || pos == leaf.Page.NSlots()-1
		if boundary && heldTree == nil {
			if hold, ok := ix.treeTryS(tx); ok {
				heldTree = hold
			} else {
				// Never wait for the tree latch under a page latch.
				ix.unfixLatched(leaf, latch.X)
				hold, err := ix.treeAcquireS(tx)
				if err != nil {
					return err
				}
				heldTree = hold
				continue // revalidate with the POSC held
			}
			if ix.stats != nil {
				ix.stats.DeleteBitPOSCs.Add(1)
			}
		}

		pre := leaf.Page.Flags()
		post := pre | storage.FlagDeleteBit
		if boundary {
			// POSC in hand: the freed-space warning can be cleared (Fig 7).
			post = pre &^ storage.FlagDeleteBit
		}
		pl := keyOpPayload{Index: ix.cfg.ID, Pos: uint16(pos), PreFlags: pre, PostFlags: post,
			Cell: storage.EncodeLeafCell(k)}
		if _, err := ix.applyLogged(tx, leaf, wal.OpIdxDeleteKey, pl.encode(), false, func() error {
			if _, derr := leaf.Page.DeleteCellAt(pos); derr != nil {
				return derr
			}
			leaf.Page.SetFlags(post)
			return nil
		}); err != nil {
			ix.unfixLatched(leaf, latch.X)
			return err
		}
		ix.unfixLatched(leaf, latch.X)
		releaseTree()
		return nil
	}
	return fmt.Errorf("core: delete from index %d did not stabilize", ix.cfg.ID)
}

// InsertKeyOpPayloadForTest exposes the key-op codec to white-box tests in
// sibling packages (log-sequence assertions for Figs 9 and 10).
type KeyOpInfo struct {
	Index     uint32
	Pos       uint16
	PreFlags  uint8
	PostFlags uint8
	Key       storage.Key
}

// DecodeKeyOpPayload decodes an OpIdxInsertKey/OpIdxDeleteKey payload.
func DecodeKeyOpPayload(b []byte) (KeyOpInfo, error) {
	pl, err := decodeKeyOp(b)
	if err != nil {
		return KeyOpInfo{}, err
	}
	k, err := storage.DecodeLeafCell(pl.Cell)
	if err != nil {
		return KeyOpInfo{}, err
	}
	return KeyOpInfo{Index: pl.Index, Pos: pl.Pos, PreFlags: pl.PreFlags, PostFlags: pl.PostFlags, Key: k}, nil
}

// IndexIDOfPayload extracts the index ID from any core payload (undo
// routing and tests).
func IndexIDOfPayload(rec *wal.Record) (uint32, error) { return indexIDOf(rec.Payload) }
