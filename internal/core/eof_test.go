package core

import (
	"testing"
	"time"

	"ariesim/internal/storage"
)

// TestEOFPhantomPrevented covers the right-edge phantom (§2.2's EOF
// treatment): a reader that searched past the highest key holds the EOF
// lock, so an insert beyond the old maximum — whose next-key lock IS the
// EOF lock — must wait for the reader.
func TestEOFPhantomPrevented(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	setup := e.tm.Begin()
	e.mustInsert(setup, ix, key(10))
	e.commit(setup)

	t1 := e.tm.Begin()
	res, _, err := ix.Fetch(t1, key(99).Val, EQ)
	if err != nil || res.Found || !res.EOF {
		t.Fatalf("fetch past end: %+v %v", res, err)
	}

	t2 := e.tm.Begin()
	e.lockRecord(t2, ix, key(50))
	done := make(chan error, 1)
	go func() { done <- ix.Insert(t2, key(50)) }()
	select {
	case err := <-done:
		t.Fatalf("insert past the scanned EOF proceeded: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	// The reader re-checks: still not found (repeatable).
	res2, _, err := ix.Fetch(t1, key(99).Val, EQ)
	if err != nil || res2.Found {
		t.Fatalf("re-fetch: %+v %v", res2, err)
	}
	e.commit(t1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	e.commit(t2)
}

// TestEOFLockReleasedAllowsGrowth: after the EOF-holding reader commits,
// the index grows past the old maximum freely.
func TestEOFLockReleasedAllowsGrowth(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	t1 := e.tm.Begin()
	if _, _, err := ix.Fetch(t1, key(0).Val, GE); err != nil {
		t.Fatal(err)
	}
	e.commit(t1)
	t2 := e.tm.Begin()
	for i := 0; i < 50; i++ {
		e.mustInsert(t2, ix, key(i))
	}
	e.commit(t2)
	e.checkTree(ix)
}

// TestDeleteOfMaximumLocksEOF: deleting the highest key takes the EOF lock
// as its next-key lock; an insert above it then trips on the uncommitted
// delete — the §2.6 "tripping point" at the right edge.
func TestDeleteOfMaximumLocksEOF(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	setup := e.tm.Begin()
	e.mustInsert(setup, ix, key(10))
	e.mustInsert(setup, ix, key(20))
	e.commit(setup)

	t1 := e.tm.Begin()
	e.lockRecord(t1, ix, key(20))
	e.mustDelete(t1, ix, key(20)) // max key: next-key lock = EOF, commit duration

	t2 := e.tm.Begin()
	e.lockRecord(t2, ix, key(30))
	done := make(chan error, 1)
	go func() { done <- ix.Insert(t2, key(30)) }()
	select {
	case err := <-done:
		t.Fatalf("insert above an uncommitted max-delete proceeded: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := t1.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	e.commit(t2)
	// Both the restored key(20) and the new key(30) are present.
	e.expectKeys(ix, []storage.Key{key(10), key(20), key(30)})
}
