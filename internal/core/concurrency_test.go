package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ariesim/internal/lock"
	"ariesim/internal/storage"
	"ariesim/internal/txn"
)

// TestConcurrentDisjointRanges runs goroutines over disjoint key ranges:
// no lock conflicts are possible, so every transaction must commit, and
// the final tree must match the union of the models.
func TestConcurrentDisjointRanges(t *testing.T) {
	e := newEnv(t, 512, 256)
	ix := e.createIndex(Config{ID: 1})
	const workers = 8
	const opsPer = 400
	models := make([]map[int]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		models[w] = map[int]bool{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			model := models[w]
			base := w * 10000
			tx := e.tm.Begin()
			for i := 0; i < opsPer; i++ {
				n := base + rng.Intn(500)
				k := key(n)
				if model[n] {
					if err := ix.Delete(tx, k); err != nil {
						t.Errorf("w%d delete: %v", w, err)
						return
					}
					delete(model, n)
				} else {
					if err := ix.Insert(tx, k); err != nil {
						t.Errorf("w%d insert: %v", w, err)
						return
					}
					model[n] = true
				}
				if i%100 == 99 {
					if err := tx.Commit(); err != nil {
						t.Errorf("w%d commit: %v", w, err)
						return
					}
					tx = e.tm.Begin()
				}
			}
			if err := tx.Commit(); err != nil {
				t.Errorf("w%d final commit: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	e.checkTree(ix)
	var want []storage.Key
	for w := 0; w < workers; w++ {
		for n := 0; n < 10000*workers; n++ {
			_ = n
		}
	}
	// Collect expected keys in global order.
	var all []int
	for w := 0; w < workers; w++ {
		for n := range models[w] {
			all = append(all, n)
		}
	}
	sortInts(all)
	for _, n := range all {
		want = append(want, key(n))
	}
	e.expectKeys(ix, want)
	if pinned := e.pool.PinnedPages(); len(pinned) != 0 {
		t.Fatalf("pins leaked: %v", pinned)
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// TestConcurrentConflictingWorkload lets goroutines fight over a small hot
// key range with record locks, retrying deadlock victims, and verifies the
// tree against a serializable model of the committed transactions.
func TestConcurrentConflictingWorkload(t *testing.T) {
	e := newEnv(t, 512, 256)
	ix := e.createIndex(Config{ID: 1})
	var mu sync.Mutex // serializes model maintenance at commit points
	model := map[int]bool{}
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for round := 0; round < 60; round++ {
				n := rng.Intn(40)
				k := key(n)
				tx := e.tm.Begin()
				// Decide insert-vs-delete by observed state under the lock
				// that serializes writers of this key.
				if err := tx.Lock(ix.keyLockName(k), lock.X, lock.Commit, false); err != nil {
					_ = tx.Rollback()
					continue
				}
				res, _, err := ix.Fetch(tx, k.Val, EQ)
				if err != nil {
					_ = tx.Rollback()
					continue
				}
				var op func(*txn.Tx, storage.Key) error
				var present bool
				if res.Found && res.Key.Compare(k) == 0 {
					op, present = ix.Delete, true
				} else {
					op, present = ix.Insert, false
				}
				if err := op(tx, k); err != nil {
					if errors.Is(err, lock.ErrDeadlock) || errors.Is(err, ErrDuplicate) || errors.Is(err, ErrKeyNotFound) {
						_ = tx.Rollback()
						continue
					}
					t.Errorf("w%d op: %v", w, err)
					_ = tx.Rollback()
					return
				}
				if rng.Intn(4) == 0 {
					_ = tx.Rollback()
					continue
				}
				mu.Lock()
				if err := tx.Commit(); err != nil {
					mu.Unlock()
					t.Errorf("w%d commit: %v", w, err)
					return
				}
				model[n] = !present
				mu.Unlock()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("conflicting workload hung")
	}
	if t.Failed() {
		return
	}
	e.checkTree(ix)
	var want []storage.Key
	for n := 0; n < 40; n++ {
		if model[n] {
			want = append(want, key(n))
		}
	}
	e.expectKeys(ix, want)
}

// TestReadersRunDuringSMOs keeps a reader population scanning while
// writers force continuous splits; with ARIES/IM readers never touch the
// tree latch unless they trip an ambiguity, so scans proceed throughout.
func TestReadersRunDuringSMOs(t *testing.T) {
	e := newEnv(t, 512, 512)
	ix := e.createIndex(Config{ID: 1})
	setup := e.tm.Begin()
	for i := 0; i < 100; i++ {
		e.mustInsert(setup, ix, key(i*100))
	}
	e.commit(setup)

	stop := make(chan struct{})
	var readerOps, writerOps int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx := e.tm.Begin()
				_, _, err := ix.Fetch(tx, key(rng.Intn(10000)).Val, GE)
				if err != nil {
					t.Errorf("reader: %v", err)
					_ = tx.Rollback()
					return
				}
				_ = tx.Commit()
				mu.Lock()
				readerOps++
				mu.Unlock()
			}
		}(r)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			// Bounded so a fast machine cannot exhaust the 512-byte-page
			// FSM before the timer stops the workload.
			for i < 5000 {
				select {
				case <-stop:
					return
				default:
				}
				tx := e.tm.Begin()
				k := key(1000000 + w*1000000 + i)
				i++
				if err := ix.Insert(tx, k); err != nil {
					t.Errorf("writer: %v", err)
					_ = tx.Rollback()
					return
				}
				_ = tx.Commit()
				mu.Lock()
				writerOps++
				mu.Unlock()
			}
		}(w)
	}
	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if e.stats.PageSplits.Load() == 0 {
		t.Fatal("writers caused no splits")
	}
	mu.Lock()
	ro, wo := readerOps, writerOps
	mu.Unlock()
	if ro == 0 || wo == 0 {
		t.Fatalf("starved: readers=%d writers=%d", ro, wo)
	}
	e.checkTree(ix)
}

// TestRollbackNeverDeadlocks stresses concurrent rollbacks against live
// writers: rolling-back transactions request no locks (§4), so every
// rollback must complete without a deadlock error.
func TestRollbackNeverDeadlocks(t *testing.T) {
	e := newEnv(t, 512, 256)
	ix := e.createIndex(Config{ID: 1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w * 7)))
			for round := 0; round < 50; round++ {
				tx := e.tm.Begin()
				ok := true
				for i := 0; i < 10; i++ {
					k := key(w*100000 + rng.Intn(2000))
					if err := ix.Insert(tx, k); err != nil {
						if errors.Is(err, ErrDuplicate) {
							continue
						}
						t.Errorf("w%d insert: %v", w, err)
						ok = false
						break
					}
				}
				if !ok {
					_ = tx.Rollback()
					return
				}
				// Half of all transactions roll back.
				if round%2 == 0 {
					if err := tx.Rollback(); err != nil {
						t.Errorf("w%d rollback: %v", w, err)
						return
					}
				} else if err := tx.Commit(); err != nil {
					t.Errorf("w%d commit: %v", w, err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("rollback stress hung (latch or tree-latch deadlock?)")
	}
	if t.Failed() {
		return
	}
	if e.stats.Deadlocks.Load() != 0 {
		t.Fatalf("%d deadlocks in a workload where rollbacks take no locks", e.stats.Deadlocks.Load())
	}
	e.checkTree(ix)
}

// TestConcurrentSMOTreeLock exercises the §5 extension: the tree latch
// replaced by a tree lock. The workload forces many splits from several
// transactions concurrently.
func TestConcurrentSMOTreeLock(t *testing.T) {
	e := newEnv(t, 512, 256)
	ix := e.createIndex(Config{ID: 1, UseTreeLock: true})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				tx := e.tm.Begin()
				if err := ix.Insert(tx, key(w*100000+i)); err != nil {
					if errors.Is(err, lock.ErrDeadlock) {
						_ = tx.Rollback()
						continue
					}
					t.Errorf("w%d: %v", w, err)
					_ = tx.Rollback()
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("w%d commit: %v", w, err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("tree-lock workload hung")
	}
	if t.Failed() {
		return
	}
	if e.stats.LockCalls(int(lock.SpaceTree), int(lock.X), int(lock.Manual)) == 0 {
		t.Fatal("tree lock never exercised")
	}
	e.checkTree(ix)
}

// TestTwoLatchMaximum asserts the paper's "not more than 2 index pages
// latched simultaneously" by auditing latch holds through a custom probe:
// we approximate by checking the pool never reports more than 3 pinned
// pages from a single-threaded operation stream (leaf + sibling + FSM).
func TestTwoLatchMaximum(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	maxPinned := 0
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		for {
			select {
			case <-stopped:
				return
			default:
			}
			if n := len(e.pool.PinnedPages()); n > maxPinned {
				maxPinned = n
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	for i := 0; i < 500; i++ {
		e.mustInsert(tx, ix, key(i))
	}
	e.commit(tx)
	stopped <- struct{}{}
	<-stopped
	if maxPinned > 3 {
		t.Fatalf("observed %d concurrently pinned pages from one op stream", maxPinned)
	}
}

func ExampleIndex_Fetch() {
	// A compact end-to-end use of the index manager.
	e := struct {
		disk *storage.Disk
	}{storage.NewDisk(512)}
	_ = e
	fmt.Println("see examples/quickstart for a runnable walkthrough")
	// Output: see examples/quickstart for a runnable walkthrough
}

// TestTreeLockIXConcurrency asserts that the §5 extension actually starts
// SMOs in IX (leaf-level concurrency) and upgrades to X only when the SMO
// propagates into nonleaf structure.
func TestTreeLockIXConcurrency(t *testing.T) {
	e := newEnv(t, 512, 512)
	ix := e.createIndex(Config{ID: 1, UseTreeLock: true})
	tx := e.tm.Begin()
	for i := 0; i < 400; i++ {
		e.mustInsert(tx, ix, key(i))
	}
	e.commit(tx)
	ixCalls := e.stats.LockCalls(int(lock.SpaceTree), int(lock.IX), int(lock.Manual))
	xCalls := e.stats.LockCalls(int(lock.SpaceTree), int(lock.X), int(lock.Manual))
	if ixCalls == 0 {
		t.Fatal("no IX tree-lock acquisitions: SMOs not starting leaf-level")
	}
	if xCalls == 0 {
		t.Fatal("no X upgrades despite multi-level splits")
	}
	if xCalls >= ixCalls {
		t.Fatalf("X calls (%d) >= IX calls (%d): leaf-level SMOs not predominating", xCalls, ixCalls)
	}
	e.checkTree(ix)
}

// TestTreeLockUpgradeDeadlockResolves drives many transactions into
// simultaneous multi-level splits: concurrent IX→X upgrades deadlock by
// construction (§5 acknowledges this), the victim aborts its SMO, and the
// workload still converges to a correct tree.
func TestTreeLockUpgradeDeadlockResolves(t *testing.T) {
	e := newEnv(t, 256, 1024) // tiny pages: splits propagate often
	ix := e.createIndex(Config{ID: 1, UseTreeLock: true})
	var wg sync.WaitGroup
	var deadlocks atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				tx := e.tm.Begin()
				err := ix.Insert(tx, key(w*100000+i))
				if err != nil {
					if errors.Is(err, lock.ErrDeadlock) {
						deadlocks.Add(1)
						_ = tx.Rollback()
						i-- // retry the key
						continue
					}
					t.Errorf("w%d: %v", w, err)
					_ = tx.Rollback()
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("w%d commit: %v", w, err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("upgrade-deadlock workload hung")
	}
	if t.Failed() {
		return
	}
	e.checkTree(ix)
	got, _ := ix.Dump()
	if len(got) != 8*250 {
		t.Fatalf("tree holds %d keys, want 2000", len(got))
	}
	t.Logf("upgrade deadlocks resolved: %d", deadlocks.Load())
}
