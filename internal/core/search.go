package core

import (
	"fmt"

	"ariesim/internal/buffer"
	"ariesim/internal/latch"
	"ariesim/internal/storage"
	"ariesim/internal/txn"
)

// maxRestarts bounds traversal restarts (ambiguity waits, upgrade races).
// The protocols guarantee progress, so hitting the bound indicates a bug;
// it exists to convert a hypothetical livelock into a diagnosable error.
const maxRestarts = 10000

// traverse descends from the root to the leaf that covers probe,
// implementing the Fig 4 search logic: latch coupling parent→child, and
// the ambiguity test — when the probe falls past every high key of a
// nonleaf page whose SM_Bit is set, an in-progress split may have grown
// the page's range, so the traverser waits for the SMO (instant S tree
// latch) and re-descends.
//
// The returned frame is latched S for reads and X for updates (forUpdate).
func (ix *Index) traverse(tx *txn.Tx, probe storage.Key, forUpdate bool) (*buffer.Frame, error) {
	if ix.stats != nil {
		ix.stats.Traversals.Add(1)
	}
	for attempt := 0; attempt < maxRestarts; attempt++ {
		f, ambiguous, err := ix.descend(tx, probe, forUpdate)
		if err != nil {
			return nil, err
		}
		if ambiguous == storage.InvalidPageID {
			return f, nil
		}
		if ix.stats != nil {
			ix.stats.AmbiguityRestarts.Add(1)
		}
		// Wait for the unfinished SMO to complete, then go down again
		// (Fig 4 "unwind recursion ... and go down again"; we re-descend
		// from the root). If no SMO is in progress, the bit is stale (a
		// crash leftover: Fig 8 marks resets optional) — clear it under
		// the page X latch so the ambiguity does not recur forever.
		ix.clearStaleSMBit(tx, ambiguous)
		if err := ix.treeWaitInstantS(tx); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("core: traversal of index %d did not stabilize", ix.cfg.ID)
}

// clearStaleSMBit resets a page's SM_Bit if provably no SMO is in
// progress: while the page X latch is held, a conditional instant S grant
// on the tree latch proves quiescence, and any SMO starting afterwards
// must queue behind our X latch to touch this page.
func (ix *Index) clearStaleSMBit(tx *txn.Tx, pid storage.PageID) {
	f, err := ix.fixLatched(pid, latch.X)
	if err != nil {
		return
	}
	defer ix.unfixLatched(f, latch.X)
	if f.Page.Type() != storage.PageTypeIndex || !f.Page.SMBit() {
		return
	}
	if ix.treeTryInstantS(tx) {
		ix.resetBits(tx, f, false)
	}
}

// descend performs one root-to-leaf pass. A nonzero ambiguous page ID
// requests an ambiguity wait + retry centered on that page.
func (ix *Index) descend(tx *txn.Tx, probe storage.Key, forUpdate bool) (*buffer.Frame, storage.PageID, error) {
	curMode := latch.S
	cur, err := ix.fixLatched(ix.root, curMode)
	if err != nil {
		return nil, storage.InvalidPageID, err
	}
	for {
		if cur.Page.Type() != storage.PageTypeIndex {
			// A page freed by a racing page-deletion SMO (visible under
			// the §5 concurrent-SMO mode): wait the SMO out and re-descend.
			id := cur.ID()
			ix.unfixLatched(cur, curMode)
			return nil, id, nil
		}
		if cur.Page.IsLeaf() {
			if forUpdate && curMode == latch.S {
				// The root-is-leaf case: upgrade by re-latching, then
				// revalidate (a root split may intervene while unlatched).
				ix.unfixLatched(cur, curMode)
				cur, err = ix.fixLatched(ix.root, latch.X)
				if err != nil {
					return nil, storage.InvalidPageID, err
				}
				curMode = latch.X
				if !cur.Page.IsLeaf() {
					continue
				}
			}
			return cur, storage.InvalidPageID, nil
		}

		// Nonleaf: Fig 4 ambiguity test. The path is trustworthy when the
		// probe is bounded by some high key, or when it is unbounded but
		// no structure modification is pending on this page.
		child, unbounded, err := nodeChildFor(cur.Page, probe)
		if err != nil {
			ix.unfixLatched(cur, curMode)
			return nil, storage.InvalidPageID, err
		}
		if unbounded && cur.Page.SMBit() {
			id := cur.ID()
			ix.unfixLatched(cur, curMode)
			return nil, id, nil
		}
		if child == storage.InvalidPageID {
			id := cur.ID()
			ix.unfixLatched(cur, curMode)
			return nil, storage.InvalidPageID, fmt.Errorf("core: nonleaf page %d has no child for probe", id)
		}
		childIsLeaf := cur.Page.Level() == 1
		childMode := latch.S
		if childIsLeaf && forUpdate {
			childMode = latch.X
		}
		// Latch coupling: acquire the child's latch while still holding
		// the parent's, then release the parent.
		nf, err := ix.fixLatched(child, childMode)
		if err != nil {
			ix.unfixLatched(cur, curMode)
			return nil, storage.InvalidPageID, err
		}
		ix.unfixLatched(cur, curMode)
		cur, curMode = nf, childMode
	}
}

// awaitLeafQuiescent implements the Figs 6/7 prologue for key inserts and
// deletes: if the leaf carries SM_Bit (or, for inserts, Delete_Bit), the
// operation must not proceed until any in-progress SMO has completed —
// otherwise a later page-oriented undo of that SMO could wipe out this
// (possibly committed) update (§3), or a restart logical undo could find
// the tree untraversable (Fig 11).
//
// Called with the leaf X-latched. Returns done=false when the latch was
// released and the caller must re-traverse; on done=true the bits are
// cleared and the latch is still held.
func (ix *Index) awaitLeafQuiescent(tx *txn.Tx, leaf *buffer.Frame, clearDeleteBit bool) (done bool, err error) {
	blocking := leaf.Page.SMBit() || (clearDeleteBit && leaf.Page.DeleteBit())
	if !blocking {
		return true, nil
	}
	if ix.stats != nil {
		ix.stats.SMBitWaits.Add(1)
		if clearDeleteBit && leaf.Page.DeleteBit() {
			ix.stats.DeleteBitPOSCs.Add(1)
		}
	}
	// Conditional instant S on the tree while holding the leaf latch: a
	// grant proves no SMO is in progress, and none can reach this leaf
	// past our X latch, so the bits can be reset (a POSC is established).
	if ix.treeTryInstantS(tx) {
		ix.resetBits(tx, leaf, clearDeleteBit)
		return true, nil
	}
	// Denied: release the latch (never wait on the tree latch while
	// holding page latches, §2.1), wait unconditionally, re-traverse.
	ix.unfixLatched(leaf, latch.X)
	if err := ix.treeWaitInstantS(tx); err != nil {
		return false, err
	}
	return false, nil
}
