package core

import (
	"errors"
	"fmt"

	"ariesim/internal/buffer"
	"ariesim/internal/latch"
	"ariesim/internal/lock"
	"ariesim/internal/storage"
	"ariesim/internal/txn"
)

// Baseline locking protocols.
//
// The paper's efficiency claims are comparative: ARIES/IM acquires fewer
// locks than ARIES/KVL (which locks key values, §1) and far fewer than
// System R (whose single-record operations acquire "very high" lock
// counts and whose SMOs hold locks to end of transaction). To make those
// comparisons measurable on identical trees, both baselines run on the
// same B+-tree mechanics with only the lock sequences swapped.

// kvName is the key-value lock for a value in this index (KVL and System R
// lock values, not keys).
func (ix *Index) kvName(val []byte) lock.Name {
	return lock.KeyValueName(uint64(ix.cfg.ID), hashVal(val))
}

// pageLockName is the index-page lock (System R style).
func (ix *Index) pageLockName(pid storage.PageID) lock.Name {
	return lock.IndexPageName(uint64(ix.cfg.ID), uint64(pid))
}

// smoLockDenied signals that a System R-style SMO page lock could not be
// granted while latches were held; the SMO must be abandoned, the lock
// awaited without latches, and the operation retried.
type smoLockDenied struct{ name lock.Name }

func (e *smoLockDenied) Error() string {
	return fmt.Sprintf("core: SMO page lock %v not grantable", e.name)
}

// smoPageLock acquires the commit-duration X lock System R-style SMOs hold
// on every index page they modify. A no-op for the other protocols. It is
// called while latches are held, so it must never block: denial surfaces
// as *smoLockDenied for the bail-out path.
func (ix *Index) smoPageLock(tx *txn.Tx, pid storage.PageID) error {
	if ix.cfg.Protocol != SystemR || tx.IsRollingBack() {
		return nil
	}
	name := ix.pageLockName(pid)
	if err := tx.Lock(name, lock.X, lock.Commit, true); err != nil {
		return &smoLockDenied{name: name}
	}
	return nil
}

// handleSMOLockDenial implements the bail-out: after the partial SMO was
// rolled back and all latches released, wait for the contended page lock
// so the retry can make progress.
func (ix *Index) handleSMOLockDenial(tx *txn.Tx, err error) (retried bool, _ error) {
	var denied *smoLockDenied
	if !errors.As(err, &denied) {
		return false, err
	}
	if lerr := tx.Lock(denied.name, lock.X, lock.Commit, false); lerr != nil {
		return false, lerr
	}
	return true, nil
}

// valueExistsAround reports whether the value of key also appears in a
// neighboring slot of the X-latched leaf (the KVL "key value already in
// the index" test). A duplicate hiding on the left sibling is reported as
// absent, which makes KVL take its stronger new-value lock sequence —
// conservative, never unsafe.
func valueExistsAround(leaf *buffer.Frame, pos int, val []byte) (bool, error) {
	if pos > 0 {
		k, err := leafKeyAt(leaf.Page, pos-1)
		if err != nil {
			return false, err
		}
		if string(k.Val) == string(val) {
			return true, nil
		}
	}
	if pos < leaf.Page.NSlots() {
		k, err := leafKeyAt(leaf.Page, pos)
		if err != nil {
			return false, err
		}
		if string(k.Val) == string(val) {
			return true, nil
		}
	}
	return false, nil
}

// kvlInsertLocks performs ARIES/KVL's insert locking (Moha90a): if the
// value already exists, IX commit on it; otherwise IX instant on the next
// key value plus X commit on the inserted value. retry=true means a
// conditional request was denied, the latch dropped, and the blocking lock
// awaited: re-traverse.
func (ix *Index) kvlInsertLocks(tx *txn.Tx, leaf *buffer.Frame, pos int, key storage.Key, target nextKeyTarget, nextVal []byte) (retry bool, err error) {
	exists, err := valueExistsAround(leaf, pos, key.Val)
	if err != nil {
		ix.releaseTarget(target)
		ix.unfixLatched(leaf, latch.X)
		return false, err
	}
	type req struct {
		name lock.Name
		mode lock.Mode
		dur  lock.Duration
	}
	var reqs []req
	if exists {
		reqs = []req{{ix.kvName(key.Val), lock.IX, lock.Commit}}
	} else {
		next := ix.eofLockName()
		if nextVal != nil {
			next = ix.kvName(nextVal)
		}
		reqs = []req{
			{next, lock.IX, lock.Instant},
			{ix.kvName(key.Val), lock.X, lock.Commit},
		}
	}
	for _, r := range reqs {
		if err := tx.Lock(r.name, r.mode, r.dur, true); err != nil {
			ix.releaseTarget(target)
			ix.unfixLatched(leaf, latch.X)
			// Instant locks are retained (commit duration) on the
			// unconditional fallback so the revalidation retry converges
			// under contention (see Insert).
			dur := r.dur
			if dur == lock.Instant {
				dur = lock.Commit
			}
			if err := tx.Lock(r.name, r.mode, dur, false); err != nil {
				return false, err
			}
			return true, nil
		}
	}
	return false, nil
}

// kvlDeleteLocks performs ARIES/KVL's delete locking: deleting the last
// instance of a value takes X commit on both the deleted value and the
// next key value; deleting one of several instances takes IX commit on the
// value only.
func (ix *Index) kvlDeleteLocks(tx *txn.Tx, leaf *buffer.Frame, pos int, key storage.Key, target nextKeyTarget, nextVal []byte) (retry bool, err error) {
	// Last instance iff neither neighbor shares the value. pos is the
	// victim's slot; check pos-1 and pos+1.
	last := true
	if pos > 0 {
		k, kerr := leafKeyAt(leaf.Page, pos-1)
		if kerr != nil {
			ix.releaseTarget(target)
			ix.unfixLatched(leaf, latch.X)
			return false, kerr
		}
		if string(k.Val) == string(key.Val) {
			last = false
		}
	}
	if last && nextVal != nil && string(nextVal) == string(key.Val) {
		last = false
	}
	type req struct {
		name lock.Name
		mode lock.Mode
		dur  lock.Duration
	}
	var reqs []req
	if last {
		next := ix.eofLockName()
		if nextVal != nil {
			next = ix.kvName(nextVal)
		}
		reqs = []req{
			{next, lock.X, lock.Commit},
			{ix.kvName(key.Val), lock.X, lock.Commit},
		}
	} else {
		reqs = []req{{ix.kvName(key.Val), lock.IX, lock.Commit}}
	}
	for _, r := range reqs {
		if err := tx.Lock(r.name, r.mode, r.dur, true); err != nil {
			ix.releaseTarget(target)
			ix.unfixLatched(leaf, latch.X)
			if err := tx.Lock(r.name, r.mode, r.dur, false); err != nil {
				return false, err
			}
			return true, nil
		}
	}
	return false, nil
}

// sysrLeafLock takes System R's commit-duration page lock on the leaf an
// operation touches (S for reads, X for updates). retry=true after an
// unconditional wait: re-traverse. The latch is consumed on retry/error.
func (ix *Index) sysrLeafLock(tx *txn.Tx, leaf *buffer.Frame, mode lock.Mode, latchMode latch.Mode) (retry bool, err error) {
	name := ix.pageLockName(leaf.ID())
	if err := tx.Lock(name, mode, lock.Commit, true); err != nil {
		ix.unfixLatched(leaf, latchMode)
		if err := tx.Lock(name, mode, lock.Commit, false); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}
