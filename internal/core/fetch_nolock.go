// Latch-only fetch variants for MVCC snapshot readers: identical tree
// positioning to Fetch/FetchNext (latch-coupled descent, Fig 4 ambiguity
// handling, leaf-chain walks, LSN-validated fetch-next) but with zero
// lock-manager calls — the snapshot's version-store visibility check
// replaces key locks entirely. The paper's "readers not blocked by SMOs"
// guarantee carries over unchanged because it lives in the latch
// protocol, not the locks.
package core

import (
	"fmt"
	"runtime"

	"ariesim/internal/buffer"
	"ariesim/internal/latch"
	"ariesim/internal/storage"
	"ariesim/internal/txn"
)

// maxNoLockAmbiguity bounds ambiguity retries on the lock-free path. A
// live SMO clears in a handful of instant-latch waits; exhausting the
// bound means the SM_Bit is stale (a crash leftover) and resetting it
// requires a logging transaction the reader does not have — the caller
// resolves via ResolveStaleSMBit with a housekeeping transaction.
const maxNoLockAmbiguity = 64

// AmbiguityError reports a traversal pinned on a page whose SM_Bit never
// cleared. Readers without a transaction cannot reset the bit (the reset
// is a logged page update); the db layer clears it out-of-band.
type AmbiguityError struct{ Page storage.PageID }

func (e *AmbiguityError) Error() string {
	return fmt.Sprintf("core: traversal ambiguous at page %d (stale SM_Bit?)", e.Page)
}

// ResolveStaleSMBit clears a stale SM_Bit on behalf of a latch-only
// reader, using a real (logging) housekeeping transaction. It is the
// Fig 8 "resets are optional" cleanup, deferred to whoever trips over
// the bit after a crash.
func (ix *Index) ResolveStaleSMBit(tx *txn.Tx, pid storage.PageID) {
	ix.clearStaleSMBit(tx, pid)
}

// traverseNoLock descends to the leaf covering probe without a
// transaction: descend never consults its tx argument, and with the
// default tree latch the ambiguity wait is an instant latch acquisition.
// Under the §5 tree-lock mode the wait degrades to a yield-and-retry —
// correctness is unchanged (the retry re-descends), only politeness.
func (ix *Index) traverseNoLock(probe storage.Key) (*buffer.Frame, error) {
	if ix.stats != nil {
		ix.stats.Traversals.Add(1)
	}
	ambiguous := storage.InvalidPageID
	for attempt := 0; attempt < maxNoLockAmbiguity; attempt++ {
		f, amb, err := ix.descend(nil, probe, false)
		if err != nil {
			return nil, err
		}
		if amb == storage.InvalidPageID {
			return f, nil
		}
		ambiguous = amb
		if ix.stats != nil {
			ix.stats.AmbiguityRestarts.Add(1)
		}
		if !ix.cfg.UseTreeLock {
			ix.treeLatch.AcquireInstant(latch.S)
		} else {
			runtime.Gosched()
		}
	}
	return nil, &AmbiguityError{Page: ambiguous}
}

// fetchFromNoLock positions at the first key >= probe with latches only.
func (ix *Index) fetchFromNoLock(probe storage.Key, accept func(storage.Key) bool) (FetchResult, *Cursor, error) {
	leaf, err := ix.traverseNoLock(probe)
	if err != nil {
		return FetchResult{}, nil, err
	}
	fnd, err := ix.findFrom(leaf, probe)
	if err != nil {
		return FetchResult{}, nil, err
	}
	res, cur := ix.sealFound(fnd, accept)
	return res, cur, nil
}

// FetchNoLock is Fetch without locks: position at (val, op), report the
// outcome, return a cursor. Only snapshot readers may call it — the
// result is not protected against concurrent writers; the caller's
// version-store check supplies the isolation.
func (ix *Index) FetchNoLock(val []byte, op SearchOp) (FetchResult, *Cursor, error) {
	return ix.fetchFromNoLock(probeFor(val, op), acceptFor(val, op))
}

// FetchNextNoLock advances a latch-only scan, revalidating the cached
// leaf by LSN exactly like FetchNext.
func (ix *Index) FetchNextNoLock(c *Cursor) (FetchResult, error) {
	if c.ix != ix {
		return FetchResult{}, fmt.Errorf("core: cursor belongs to index %d", c.ix.cfg.ID)
	}
	if c.eof {
		return FetchResult{EOF: true}, nil
	}
	probe := probeAfter(c.key)
	f, err := ix.fixLatched(c.leaf, latch.S)
	if err != nil {
		return FetchResult{}, err
	}
	var fnd found
	if f.Page.Type() == storage.PageTypeIndex && f.Page.IsLeaf() && f.Page.LSN() == c.lsn {
		fnd, err = ix.findFrom(f, probe)
	} else {
		// The leaf changed under the cursor: reposition from the root.
		if ix.stats != nil {
			ix.stats.LeafReposition.Add(1)
		}
		ix.unfixLatched(f, latch.S)
		var leaf *buffer.Frame
		leaf, err = ix.traverseNoLock(probe)
		if err != nil {
			return FetchResult{}, err
		}
		fnd, err = ix.findFrom(leaf, probe)
	}
	if err != nil {
		return FetchResult{}, err
	}
	res, ncur := ix.sealFound(fnd, func(storage.Key) bool { return true })
	*c = *ncur
	return res, nil
}

// FetchPrefixNoLock is FetchPrefix without locks.
func (ix *Index) FetchPrefixNoLock(prefix []byte) (FetchResult, *Cursor, error) {
	return ix.fetchFromNoLock(storage.MinKeyFor(prefix), func(k storage.Key) bool {
		return len(k.Val) >= len(prefix) && string(k.Val[:len(prefix)]) == string(prefix)
	})
}
