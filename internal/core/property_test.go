package core

import (
	"sort"
	"testing"
	"testing/quick"

	"ariesim/internal/storage"
)

// TestQuickInsertDumpSorted: for any set of distinct small keys, inserting
// them in the given (arbitrary) order yields a structurally valid tree
// whose dump is exactly the sorted set. testing/quick drives the key sets.
func TestQuickInsertDumpSorted(t *testing.T) {
	f := func(raw []uint16) bool {
		// Distinct key numbers from the raw input.
		seen := map[uint16]bool{}
		var nums []uint16
		for _, r := range raw {
			if !seen[r] {
				seen[r] = true
				nums = append(nums, r)
			}
			if len(nums) == 150 {
				break
			}
		}
		e := newEnv(t, 256, 512)
		ix := e.createIndex(Config{ID: 1})
		tx := e.tm.Begin()
		for _, n := range nums {
			if err := ix.Insert(tx, key(int(n))); err != nil {
				t.Logf("insert %d: %v", n, err)
				return false
			}
		}
		if err := tx.Commit(); err != nil {
			return false
		}
		if err := ix.CheckStructure(); err != nil {
			t.Logf("structure: %v", err)
			return false
		}
		got, err := ix.Dump()
		if err != nil || len(got) != len(nums) {
			return false
		}
		sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
		for i, n := range nums {
			if got[i].Compare(key(int(n))) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInsertThenRollbackIsIdentity: any batch of inserts followed by
// rollback leaves the index exactly as before — including any splits the
// batch caused (SMOs survive, content does not).
func TestQuickInsertThenRollbackIsIdentity(t *testing.T) {
	f := func(raw []uint16) bool {
		e := newEnv(t, 256, 512)
		ix := e.createIndex(Config{ID: 1})
		setup := e.tm.Begin()
		for i := 0; i < 40; i++ {
			if err := ix.Insert(setup, key(i*3)); err != nil {
				return false
			}
		}
		if err := setup.Commit(); err != nil {
			return false
		}
		before, err := ix.Dump()
		if err != nil {
			return false
		}

		tx := e.tm.Begin()
		seen := map[uint16]bool{}
		for _, r := range raw {
			n := 1000 + int(r%500)
			if seen[uint16(n)] {
				continue
			}
			seen[uint16(n)] = true
			if err := ix.Insert(tx, key(n)); err != nil {
				return false
			}
		}
		if err := tx.Rollback(); err != nil {
			t.Logf("rollback: %v", err)
			return false
		}
		if err := ix.CheckStructure(); err != nil {
			t.Logf("structure after rollback: %v", err)
			return false
		}
		after, err := ix.Dump()
		if err != nil || len(after) != len(before) {
			return false
		}
		for i := range before {
			if before[i].Compare(after[i]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeleteRollbackIdentity mirrors the insert property for deletes.
func TestQuickDeleteRollbackIdentity(t *testing.T) {
	f := func(raw []uint8) bool {
		e := newEnv(t, 256, 512)
		ix := e.createIndex(Config{ID: 1})
		setup := e.tm.Begin()
		for i := 0; i < 120; i++ {
			if err := ix.Insert(setup, key(i)); err != nil {
				return false
			}
		}
		if err := setup.Commit(); err != nil {
			return false
		}
		tx := e.tm.Begin()
		seen := map[uint8]bool{}
		for _, r := range raw {
			n := int(r) % 120
			if seen[uint8(n)] {
				continue
			}
			seen[uint8(n)] = true
			if err := ix.Delete(tx, key(n)); err != nil {
				return false
			}
		}
		if err := tx.Rollback(); err != nil {
			return false
		}
		if err := ix.CheckStructure(); err != nil {
			return false
		}
		got, err := ix.Dump()
		return err == nil && len(got) == 120
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

var _ = storage.Key{} // keep the import if cases above change
