// Package core implements the paper's contribution: the ARIES/IM index
// manager. It provides B+-tree Fetch / FetchNext / Insert / Delete with
// data-only (or index-specific) key locking, next-key locking for
// repeatable reads, SM_Bit / Delete_Bit based interaction with structure
// modification operations, SMOs as nested top actions serialized by a tree
// latch (or, per §5, a tree lock), page-oriented redo, and page-oriented
// undo with logical fallback.
//
// This file defines the binary payloads of the index manager's log
// records. Every payload leads with the owning index ID so that undo can
// route back to the index (for logical undo through the root) even though
// redo never needs it (redo is purely page-oriented, §3).
package core

import (
	"encoding/binary"
	"fmt"

	"ariesim/internal/storage"
)

type payloadWriter struct{ b []byte }

func (w *payloadWriter) u8(v uint8)           { w.b = append(w.b, v) }
func (w *payloadWriter) u16(v uint16)         { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *payloadWriter) u32(v uint32)         { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *payloadWriter) pid(v storage.PageID) { w.u32(uint32(v)) }
func (w *payloadWriter) bytes(v []byte) {
	w.u16(uint16(len(v)))
	w.b = append(w.b, v...)
}
func (w *payloadWriter) cells(cs [][]byte) {
	w.u16(uint16(len(cs)))
	for _, c := range cs {
		w.bytes(c)
	}
}

type payloadReader struct {
	b   []byte
	off int
	err error
}

func (r *payloadReader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.b) {
		r.err = fmt.Errorf("core: payload truncated at %d(+%d) of %d", r.off, n, len(r.b))
		return false
	}
	return true
}

func (r *payloadReader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *payloadReader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *payloadReader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *payloadReader) pid() storage.PageID { return storage.PageID(r.u32()) }

func (r *payloadReader) bytes() []byte {
	n := int(r.u16())
	if !r.need(n) {
		return nil
	}
	v := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

func (r *payloadReader) cells() [][]byte {
	n := int(r.u16())
	out := make([][]byte, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.bytes())
	}
	return out
}

func (r *payloadReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("core: %d trailing payload bytes", len(r.b)-r.off)
	}
	return nil
}

// keyOpPayload carries OpIdxInsertKey / OpIdxDeleteKey (and their CLR
// counterparts): the slot position, the flag byte before and after (the
// delete sets Delete_Bit as part of the same record, Fig 7), and the full
// leaf cell.
type keyOpPayload struct {
	Index     uint32
	Pos       uint16
	PreFlags  uint8
	PostFlags uint8
	Cell      []byte
}

func (p keyOpPayload) encode() []byte {
	w := &payloadWriter{}
	w.u32(p.Index)
	w.u16(p.Pos)
	w.u8(p.PreFlags)
	w.u8(p.PostFlags)
	w.bytes(p.Cell)
	return w.b
}

func decodeKeyOp(b []byte) (keyOpPayload, error) {
	r := &payloadReader{b: b}
	p := keyOpPayload{Index: r.u32(), Pos: r.u16(), PreFlags: r.u8(), PostFlags: r.u8(), Cell: r.bytes()}
	return p, r.done()
}

// formatPayload carries OpIdxFormat: the full image of a freshly formatted
// index page (the right half created by a split).
type formatPayload struct {
	Index     uint32
	Level     uint8
	Flags     uint8
	Prev      storage.PageID
	Next      storage.PageID
	Rightmost storage.PageID
	Cells     [][]byte
}

func (p formatPayload) encode() []byte {
	w := &payloadWriter{}
	w.u32(p.Index)
	w.u8(p.Level)
	w.u8(p.Flags)
	w.pid(p.Prev)
	w.pid(p.Next)
	w.pid(p.Rightmost)
	w.cells(p.Cells)
	return w.b
}

func decodeFormat(b []byte) (formatPayload, error) {
	r := &payloadReader{b: b}
	p := formatPayload{
		Index: r.u32(), Level: r.u8(), Flags: r.u8(),
		Prev: r.pid(), Next: r.pid(), Rightmost: r.pid(), Cells: r.cells(),
	}
	return p, r.done()
}

// splitLeftPayload carries OpIdxSplitLeft / OpIdxUnsplitLeft: the cells
// moved off the split page's upper half, plus the chain/rightmost changes.
// For a leaf split, Moved = cells[From:] and the next pointer changes; for
// a nonleaf split, Moved = cells[From:] where the first moved cell's child
// becomes the left page's new rightmost and its high key is promoted.
type splitLeftPayload struct {
	Index        uint32
	From         uint16
	PreFlags     uint8
	PostFlags    uint8
	OldNext      storage.PageID
	NewNext      storage.PageID
	OldRightmost storage.PageID
	NewRightmost storage.PageID
	Moved        [][]byte
}

func (p splitLeftPayload) encode() []byte {
	w := &payloadWriter{}
	w.u32(p.Index)
	w.u16(p.From)
	w.u8(p.PreFlags)
	w.u8(p.PostFlags)
	w.pid(p.OldNext)
	w.pid(p.NewNext)
	w.pid(p.OldRightmost)
	w.pid(p.NewRightmost)
	w.cells(p.Moved)
	return w.b
}

func decodeSplitLeft(b []byte) (splitLeftPayload, error) {
	r := &payloadReader{b: b}
	p := splitLeftPayload{
		Index: r.u32(), From: r.u16(), PreFlags: r.u8(), PostFlags: r.u8(),
		OldNext: r.pid(), NewNext: r.pid(), OldRightmost: r.pid(), NewRightmost: r.pid(),
		Moved: r.cells(),
	}
	return p, r.done()
}

// chainFixPayload carries OpIdxChainFix: one sibling-pointer rewrite. The
// record doubles as its own inverse with Old and New swapped.
type chainFixPayload struct {
	Index     uint32
	NextField bool // true: rewrite Next; false: rewrite Prev
	Old       storage.PageID
	New       storage.PageID
	PreFlags  uint8
	PostFlags uint8
}

func (p chainFixPayload) encode() []byte {
	w := &payloadWriter{}
	w.u32(p.Index)
	if p.NextField {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.pid(p.Old)
	w.pid(p.New)
	w.u8(p.PreFlags)
	w.u8(p.PostFlags)
	return w.b
}

func decodeChainFix(b []byte) (chainFixPayload, error) {
	r := &payloadReader{b: b}
	p := chainFixPayload{Index: r.u32(), NextField: r.u8() == 1, Old: r.pid(), New: r.pid(),
		PreFlags: r.u8(), PostFlags: r.u8()}
	return p, r.done()
}

// splitParentPayload carries OpIdxSplitParent / OpIdxUnsplitParent:
// posting the separator (SepCell = encoded (sep, left) node cell) at Pos.
// If AtRightmost, the split child was the parent's rightmost and the new
// page takes that role; otherwise the pre-existing cell (now at Pos+1) has
// its child patched from left to Right.
type splitParentPayload struct {
	Index       uint32
	Pos         uint16
	AtRightmost bool
	PreFlags    uint8
	PostFlags   uint8
	Right       storage.PageID
	SepCell     []byte
}

func (p splitParentPayload) encode() []byte {
	w := &payloadWriter{}
	w.u32(p.Index)
	w.u16(p.Pos)
	if p.AtRightmost {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u8(p.PreFlags)
	w.u8(p.PostFlags)
	w.pid(p.Right)
	w.bytes(p.SepCell)
	return w.b
}

func decodeSplitParent(b []byte) (splitParentPayload, error) {
	r := &payloadReader{b: b}
	p := splitParentPayload{Index: r.u32(), Pos: r.u16(), AtRightmost: r.u8() == 1,
		PreFlags: r.u8(), PostFlags: r.u8(), Right: r.pid(), SepCell: r.bytes()}
	return p, r.done()
}

// deleteChildPayload carries OpIdxDeleteChild / OpIdxUndeleteChild:
// removing a (high key, child) entry from a parent during page deletion.
type deleteChildPayload struct {
	Index        uint32
	Pos          uint16
	WasRightmost bool // the deleted child was the parent's rightmost
	PreFlags     uint8
	PostFlags    uint8
	OldRightmost storage.PageID
	NewRightmost storage.PageID
	Removed      []byte // the removed node cell (empty when WasRightmost and the parent had no cells)
}

func (p deleteChildPayload) encode() []byte {
	w := &payloadWriter{}
	w.u32(p.Index)
	w.u16(p.Pos)
	if p.WasRightmost {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u8(p.PreFlags)
	w.u8(p.PostFlags)
	w.pid(p.OldRightmost)
	w.pid(p.NewRightmost)
	w.bytes(p.Removed)
	return w.b
}

func decodeDeleteChild(b []byte) (deleteChildPayload, error) {
	r := &payloadReader{b: b}
	p := deleteChildPayload{Index: r.u32(), Pos: r.u16(), WasRightmost: r.u8() == 1,
		PreFlags: r.u8(), PostFlags: r.u8(), OldRightmost: r.pid(), NewRightmost: r.pid(),
		Removed: r.bytes()}
	return p, r.done()
}

// replacePayload carries OpIdxReplacePage: a physical full-page rewrite
// (root split and root collapse). After is what redo installs; Before is
// carried for undo (the CLR's payload holds only its own After).
type replacePayload struct {
	Index  uint32
	After  []byte
	Before []byte
}

func (p replacePayload) encode() []byte {
	w := &payloadWriter{}
	w.u32(p.Index)
	w.bytes(p.After)
	w.bytes(p.Before)
	return w.b
}

func decodeReplace(b []byte) (replacePayload, error) {
	r := &payloadReader{b: b}
	p := replacePayload{Index: r.u32(), After: r.bytes(), Before: r.bytes()}
	return p, r.done()
}

// freePagePayload carries OpIdxFreePage / OpIdxUnfreePage: enough of the
// freed page's header to restore its empty shell on undo.
type freePagePayload struct {
	Index     uint32
	Level     uint8
	Flags     uint8
	Prev      storage.PageID
	Next      storage.PageID
	Rightmost storage.PageID
}

func (p freePagePayload) encode() []byte {
	w := &payloadWriter{}
	w.u32(p.Index)
	w.u8(p.Level)
	w.u8(p.Flags)
	w.pid(p.Prev)
	w.pid(p.Next)
	w.pid(p.Rightmost)
	return w.b
}

func decodeFreePage(b []byte) (freePagePayload, error) {
	r := &payloadReader{b: b}
	p := freePagePayload{Index: r.u32(), Level: r.u8(), Flags: r.u8(),
		Prev: r.pid(), Next: r.pid(), Rightmost: r.pid()}
	return p, r.done()
}

// setBitsPayload carries OpIdxSetBits: a redo-only flag-byte rewrite used
// to reset SM_Bit / Delete_Bit once the structure is known consistent.
type setBitsPayload struct {
	Index uint32
	Flags uint8
}

func (p setBitsPayload) encode() []byte {
	w := &payloadWriter{}
	w.u32(p.Index)
	w.u8(p.Flags)
	return w.b
}

func decodeSetBits(b []byte) (setBitsPayload, error) {
	r := &payloadReader{b: b}
	p := setBitsPayload{Index: r.u32(), Flags: r.u8()}
	return p, r.done()
}

// indexIDOf extracts the leading index ID common to every core payload.
func indexIDOf(b []byte) (uint32, error) {
	if len(b) < 4 {
		return 0, fmt.Errorf("core: payload too short for index ID")
	}
	return binary.LittleEndian.Uint32(b), nil
}
