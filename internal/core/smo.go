package core

import (
	"errors"
	"fmt"

	"ariesim/internal/buffer"
	"ariesim/internal/latch"
	"ariesim/internal/lock"
	"ariesim/internal/space"
	"ariesim/internal/storage"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

// Structure modification operations (Fig 8).
//
// An SMO is performed by the transaction that encountered the need for it,
// as a nested top action: once its dummy CLR is on the log, the SMO is
// permanent regardless of the transaction's fate. SMOs within one tree are
// serialized by the X tree latch (or tree lock, §5); the latch is taken
// only after the pages involved are fixed in the buffer pool, and no I/O
// is done while holding it. Every page touched gets SM_Bit set; the bits
// are reset (redo-only records) after the dummy CLR.
//
// A failure in the middle of an SMO is handled as the paper prescribes: the
// partial SMO is rolled back page-oriented (its records are regular
// undo-redo records) and the tree latch is released only after the
// rollback completes.

// errSMOConflict reports that a concurrent leaf-level SMO (possible only
// under the §5 IX tree lock) changed a neighborhood this SMO was relying
// on; the partial SMO is rolled back page-oriented and retried.
var errSMOConflict = errors.New("core: concurrent SMO changed the page neighborhood")

// smoCtx tracks pages touched by an in-flight SMO for the SM_Bit sweep,
// plus the tree hold for §5 IX→X upgrades.
type smoCtx struct {
	touched []storage.PageID
	hold    *treeHold
}

func (c *smoCtx) touch(id storage.PageID) {
	for _, t := range c.touched {
		if t == id {
			return
		}
	}
	c.touched = append(c.touched, id)
}

// SplitForInsert runs the page-split SMO so that the (released) leaf can
// accept a cell of cellSize bytes, then returns; the caller re-traverses
// and performs its insert only after the split has fully propagated
// (Fig 8's ordering: the insert that necessitated the split happens after
// the dummy CLR).
func (ix *Index) SplitForInsert(tx *txn.Tx, leafID storage.PageID, cellSize int) error {
	hold, err := ix.treeAcquireSMO(tx)
	if err != nil {
		return err
	}
	defer hold.release()
	save := tx.Savepoint()

	f, err := ix.fixLatched(leafID, latch.X)
	if err != nil {
		return err
	}
	// Revalidate under the tree latch: the page may have been emptied,
	// deleted, or drained since the caller released it.
	if f.Page.Type() != storage.PageTypeIndex || f.Page.HasRoomFor(cellSize) || f.Page.NSlots() < 2 {
		ix.unfixLatched(f, latch.X)
		return nil // nothing to do; the caller retries its insert
	}
	if ix.stats != nil {
		ix.stats.SMOs.Add(1)
		ix.stats.PageSplits.Add(1)
	}
	tok := tx.BeginNTA()
	ctx := &smoCtx{hold: hold}
	err = ix.splitLocked(tx, ctx, f) // consumes the latch
	if err != nil {
		// Process failure inside the SMO: undo its records page-oriented,
		// then let the tree latch go (§3 "Structure Modification
		// Operations", failure handling).
		if rbErr := tx.RollbackTo(save); rbErr != nil {
			return fmt.Errorf("core: SMO failed (%v) and its rollback failed: %w", err, rbErr)
		}
		return err
	}
	tx.EndNTA(tok)
	ix.resetSMBits(tx, ctx)
	return nil
}

// splitLocked splits the X-latched page f (leaf or nonleaf, not the root)
// or the root, propagating upward. The latch on f is released before the
// parent is touched (§4: lower-level latches released before higher-level
// pages are latched).
func (ix *Index) splitLocked(tx *txn.Tx, ctx *smoCtx, f *buffer.Frame) error {
	if f.ID() == ix.root {
		return ix.rootSplitLocked(tx, ctx, f)
	}
	if !f.Page.IsLeaf() {
		// Splitting a nonleaf page is a nonleaf-level SMO: under the §5
		// tree lock, upgrade IX→X first (no-op for the tree latch).
		if err := ctx.hold.upgradeX(); err != nil {
			ix.unfixLatched(f, latch.X)
			return err
		}
	}
	if err := ix.smoPageLock(tx, f.ID()); err != nil {
		ix.unfixLatched(f, latch.X)
		return err
	}
	p := f.Page
	isLeaf := p.IsLeaf()
	n := p.NSlots()
	m := splitPoint(p)

	cells := pageCells(p)
	var sep storage.Key
	var newCells [][]byte
	var newRightmost storage.PageID // for the new page (nonleaf)
	var leftNewRightmost storage.PageID
	if isLeaf {
		k, err := storage.DecodeLeafCell(cells[m])
		if err != nil {
			return err
		}
		sep = ix.leafSeparator(k)
		newCells = cells[m:]
	} else {
		hk, child, err := storage.DecodeNodeCell(cells[m])
		if err != nil {
			return err
		}
		sep = hk.Clone()
		leftNewRightmost = child
		newCells = cells[m+1:]
		newRightmost = p.Rightmost()
	}
	oldNext := p.Next()
	oldRightmost := p.Rightmost()
	preFlags := p.Flags()

	// Allocate and format the new right page.
	newPid, err := space.Alloc(tx, ix.pool)
	if err != nil {
		ix.unfixLatched(f, latch.X)
		return err
	}
	if err := ix.smoPageLock(tx, newPid); err != nil {
		ix.unfixLatched(f, latch.X)
		return err
	}
	ctx.touch(newPid)
	nf, err := ix.pool.Fix(newPid)
	if err != nil {
		ix.unfixLatched(f, latch.X)
		return err
	}
	nf.Latch.Acquire(latch.X)
	fp := formatPayload{
		Index: ix.cfg.ID, Level: p.Level(), Flags: storage.FlagSMBit,
		Rightmost: newRightmost, Cells: newCells,
	}
	if isLeaf {
		fp.Prev, fp.Next = f.ID(), oldNext
	}
	if _, err := ix.applyLogged(tx, nf, wal.OpIdxFormat, fp.encode(), false, func() error {
		nf.Page.Format(newPid, storage.PageTypeIndex, fp.Level)
		nf.Page.SetFlags(fp.Flags)
		nf.Page.SetPrev(fp.Prev)
		nf.Page.SetNext(fp.Next)
		nf.Page.SetRightmost(fp.Rightmost)
		for i, c := range fp.Cells {
			if err := nf.Page.InsertCellAt(i, c); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	ix.unfixLatched(nf, latch.X)

	// Strip the moved cells off the left page (splits go right, §2.1).
	ctx.touch(f.ID())
	sl := splitLeftPayload{
		Index: ix.cfg.ID, From: uint16(m),
		PreFlags: preFlags, PostFlags: preFlags | storage.FlagSMBit,
		OldNext: oldNext, NewNext: newPid,
		OldRightmost: oldRightmost, NewRightmost: leftNewRightmost,
		Moved: cells[m:],
	}
	if _, err := ix.applyLogged(tx, f, wal.OpIdxSplitLeft, sl.encode(), false, func() error {
		for p.NSlots() > m {
			if _, derr := p.DeleteCellAt(p.NSlots() - 1); derr != nil {
				return derr
			}
		}
		if isLeaf {
			p.SetNext(newPid)
		} else {
			p.SetRightmost(leftNewRightmost)
		}
		p.SetFlags(sl.PostFlags)
		return nil
	}); err != nil {
		return err
	}
	leftID := f.ID()
	level := p.Level()
	_ = n
	ix.unfixLatched(f, latch.X)

	// Back-chain the old right neighbor (leaves only).
	if isLeaf && oldNext != storage.InvalidPageID {
		if err := ix.chainFix(tx, ctx, oldNext, false, leftID, newPid); err != nil {
			return err
		}
	}

	// Propagate: post (sep, left) to the parent, splitting it if needed.
	return ix.postSeparator(tx, ctx, sep, leftID, newPid, level)
}

// chainFix rewrites one sibling pointer under an X latch, setting SM_Bit.
// It verifies the pointer still holds the expected old value: under
// concurrent leaf SMOs (§5 IX mode) a neighbor may have been rewired
// since this SMO read its headers, in which case the SMO must abort and
// retry (errSMOConflict).
func (ix *Index) chainFix(tx *txn.Tx, ctx *smoCtx, pid storage.PageID, nextField bool, old, new storage.PageID) error {
	if err := ix.smoPageLock(tx, pid); err != nil {
		return err
	}
	ctx.touch(pid)
	f, err := ix.fixLatched(pid, latch.X)
	if err != nil {
		return err
	}
	defer ix.unfixLatched(f, latch.X)
	current := f.Page.Prev()
	if nextField {
		current = f.Page.Next()
	}
	if current != old {
		return errSMOConflict
	}
	pre := f.Page.Flags()
	pl := chainFixPayload{
		Index: ix.cfg.ID, NextField: nextField, Old: old, New: new,
		PreFlags: pre, PostFlags: pre | storage.FlagSMBit,
	}
	_, err = ix.applyLogged(tx, f, wal.OpIdxChainFix, pl.encode(), false, func() error {
		if nextField {
			f.Page.SetNext(new)
		} else {
			f.Page.SetPrev(new)
		}
		f.Page.SetFlags(pl.PostFlags)
		return nil
	})
	return err
}

// postSeparator installs (sep→left, right) into left's parent at
// childLevel+1, splitting ancestors as required. The parent is located by
// a fresh latch-coupled descent — valid because the tree latch serializes
// SMOs, so nonleaf structure is stable except under our own hands.
func (ix *Index) postSeparator(tx *txn.Tx, ctx *smoCtx, sep storage.Key, left, right storage.PageID, childLevel uint8) error {
	sepCell := storage.EncodeNodeCell(sep, left)
	for attempt := 0; attempt < maxRestarts; attempt++ {
		parent, err := ix.parentOf(tx, sep, left, childLevel)
		if err != nil {
			return err
		}
		if !parent.Page.HasRoomFor(len(sepCell)) {
			// Split the ancestor first, then retry the post.
			if err := ix.splitLocked(tx, ctx, parent); err != nil { // consumes latch
				return err
			}
			continue
		}
		if err := ix.smoPageLock(tx, parent.ID()); err != nil {
			ix.unfixLatched(parent, latch.X)
			return err
		}
		ctx.touch(parent.ID())
		pos, atRightmost, err := nodeChildPos(parent.Page, left)
		if err != nil {
			ix.unfixLatched(parent, latch.X)
			return err
		}
		if atRightmost {
			pos = parent.Page.NSlots()
		}
		pre := parent.Page.Flags()
		pl := splitParentPayload{
			Index: ix.cfg.ID, Pos: uint16(pos), AtRightmost: atRightmost,
			PreFlags: pre, PostFlags: pre | storage.FlagSMBit,
			Right: right, SepCell: sepCell,
		}
		if _, err := ix.applyLogged(tx, parent, wal.OpIdxSplitParent, pl.encode(), false, func() error {
			if err := parent.Page.InsertCellAt(pos, sepCell); err != nil {
				return err
			}
			if atRightmost {
				parent.Page.SetRightmost(right)
			} else {
				patchNodeChild(parent.Page, pos+1, right)
			}
			parent.Page.SetFlags(pl.PostFlags)
			return nil
		}); err != nil {
			ix.unfixLatched(parent, latch.X)
			return err
		}
		ix.unfixLatched(parent, latch.X)
		return nil
	}
	return fmt.Errorf("core: separator post did not stabilize")
}

// parentOf descends from the root to the page at childLevel+1 whose
// subtree contains probe, returning it X-latched. It verifies the page
// really references child.
func (ix *Index) parentOf(tx *txn.Tx, probe storage.Key, child storage.PageID, childLevel uint8) (*buffer.Frame, error) {
	targetLevel := childLevel + 1
	cur, err := ix.fixLatched(ix.root, latch.S)
	if err != nil {
		return nil, err
	}
	mode := latch.S
	if cur.Page.Level() == targetLevel {
		// Upgrade the root latch.
		ix.unfixLatched(cur, mode)
		cur, err = ix.fixLatched(ix.root, latch.X)
		if err != nil {
			return nil, err
		}
		mode = latch.X
	}
	for {
		if cur.Page.Level() == targetLevel {
			if _, _, err := nodeChildPos(cur.Page, child); err != nil {
				ix.unfixLatched(cur, mode)
				return nil, err
			}
			if mode != latch.X {
				ix.unfixLatched(cur, mode)
				return nil, fmt.Errorf("core: parent latch mode error")
			}
			return cur, nil
		}
		if cur.Page.IsLeaf() || cur.Page.Level() < targetLevel {
			ix.unfixLatched(cur, mode)
			return nil, fmt.Errorf("core: no ancestor at level %d for page %d", targetLevel, child)
		}
		next, _, err := nodeChildFor(cur.Page, probe)
		if err != nil {
			ix.unfixLatched(cur, mode)
			return nil, err
		}
		nextMode := latch.S
		if cur.Page.Level() == targetLevel+1 {
			nextMode = latch.X
		}
		nf, err := ix.fixLatched(next, nextMode)
		if err != nil {
			ix.unfixLatched(cur, mode)
			return nil, err
		}
		ix.unfixLatched(cur, mode)
		cur, mode = nf, nextMode
	}
}

// rootSplitLocked splits the root by redistributing its content into two
// fresh children — the root page ID never changes (DESIGN.md §4). The
// X latch on the root frame is consumed.
func (ix *Index) rootSplitLocked(tx *txn.Tx, ctx *smoCtx, f *buffer.Frame) error {
	// Restructuring the root is a nonleaf-level SMO (§5).
	if err := ctx.hold.upgradeX(); err != nil {
		ix.unfixLatched(f, latch.X)
		return err
	}
	p := f.Page
	isLeaf := p.IsLeaf()
	cells := pageCells(p)
	m := splitPoint(p)
	before := append([]byte(nil), p.Bytes()...)

	var sep storage.Key
	var leftCells, rightCells [][]byte
	var leftRightmost, rightRightmost storage.PageID
	if isLeaf {
		k, err := storage.DecodeLeafCell(cells[m])
		if err != nil {
			ix.unfixLatched(f, latch.X)
			return err
		}
		sep = ix.leafSeparator(k)
		leftCells, rightCells = cells[:m], cells[m:]
	} else {
		hk, child, err := storage.DecodeNodeCell(cells[m])
		if err != nil {
			ix.unfixLatched(f, latch.X)
			return err
		}
		sep = hk.Clone()
		leftRightmost = child
		rightRightmost = p.Rightmost()
		leftCells, rightCells = cells[:m], cells[m+1:]
	}

	leftID, err := space.Alloc(tx, ix.pool)
	if err != nil {
		ix.unfixLatched(f, latch.X)
		return err
	}
	rightID, err := space.Alloc(tx, ix.pool)
	if err != nil {
		ix.unfixLatched(f, latch.X)
		return err
	}
	for _, pid := range []storage.PageID{ix.root, leftID, rightID} {
		if err := ix.smoPageLock(tx, pid); err != nil {
			ix.unfixLatched(f, latch.X)
			return err
		}
	}
	ctx.touch(leftID)
	ctx.touch(rightID)
	ctx.touch(ix.root)

	format := func(pid storage.PageID, cells [][]byte, prev, next, rightmost storage.PageID) error {
		nf, err := ix.pool.Fix(pid)
		if err != nil {
			return err
		}
		nf.Latch.Acquire(latch.X)
		defer ix.unfixLatched(nf, latch.X)
		fp := formatPayload{
			Index: ix.cfg.ID, Level: p.Level(), Flags: storage.FlagSMBit,
			Prev: prev, Next: next, Rightmost: rightmost, Cells: cells,
		}
		_, err = ix.applyLogged(tx, nf, wal.OpIdxFormat, fp.encode(), false, func() error {
			nf.Page.Format(pid, storage.PageTypeIndex, fp.Level)
			nf.Page.SetFlags(fp.Flags)
			nf.Page.SetPrev(fp.Prev)
			nf.Page.SetNext(fp.Next)
			nf.Page.SetRightmost(fp.Rightmost)
			for i, c := range fp.Cells {
				if err := nf.Page.InsertCellAt(i, c); err != nil {
					return err
				}
			}
			return nil
		})
		return err
	}
	var lp, ln, rp, rn storage.PageID
	if isLeaf {
		lp, ln, rp, rn = 0, rightID, leftID, 0
	}
	if err := format(leftID, leftCells, lp, ln, leftRightmost); err != nil {
		ix.unfixLatched(f, latch.X)
		return err
	}
	if err := format(rightID, rightCells, rp, rn, rightRightmost); err != nil {
		ix.unfixLatched(f, latch.X)
		return err
	}

	// Rewrite the root as a one-separator nonleaf over (left, right).
	shadow := storage.NewPage(len(p.Bytes()))
	shadow.Format(ix.root, storage.PageTypeIndex, p.Level()+1)
	shadow.SetFlags(storage.FlagSMBit)
	shadow.SetRightmost(rightID)
	if err := shadow.InsertCellAt(0, storage.EncodeNodeCell(sep, leftID)); err != nil {
		ix.unfixLatched(f, latch.X)
		return err
	}
	pl := replacePayload{Index: ix.cfg.ID, After: shadow.Bytes(), Before: before}
	if _, err := ix.applyLogged(tx, f, wal.OpIdxReplacePage, pl.encode(), false, func() error {
		copy(p.Bytes(), shadow.Bytes())
		return nil
	}); err != nil {
		ix.unfixLatched(f, latch.X)
		return err
	}
	ix.unfixLatched(f, latch.X)
	return nil
}

// leafSeparator derives the high key posted to the parent when a leaf
// splits: the first moved key. For a UNIQUE index its RID is zeroed: key
// values are strictly increasing across a consistent unique leaf, so the
// value-only separator still strictly exceeds everything left of it, and —
// crucially — it can never partition one value's (past or future) instances
// across subtrees. A full-key separator could: a separator (v, rid)
// outlives the key it was derived from, and a later reincarnation of v
// with a smaller RID would live LEFT of it while the uniqueness probe for
// a larger-RID insert routes RIGHT of it, hiding the existing instance
// from the §2.4 duplicate check.
func (ix *Index) leafSeparator(firstMoved storage.Key) storage.Key {
	if ix.cfg.Unique {
		return storage.Key{Val: append([]byte(nil), firstMoved.Val...)}
	}
	return firstMoved.Clone()
}

// splitPoint picks the split index by accumulated cell bytes: the first
// index where the lower half reaches half of the used cell space, clamped
// to keep at least one cell on each side.
func splitPoint(p *storage.Page) int {
	n := p.NSlots()
	total := 0
	sizes := make([]int, n)
	for i := 0; i < n; i++ {
		sizes[i] = len(p.MustCell(i)) + 2
		total += sizes[i]
	}
	acc := 0
	for i := 0; i < n; i++ {
		acc += sizes[i]
		if acc >= total/2 {
			m := i + 1
			if m >= n {
				m = n - 1
			}
			if m < 1 {
				m = 1
			}
			return m
		}
	}
	return n / 2
}

// resetSMBits clears SM_Bit on every page the completed SMO touched
// (Fig 8 marks this optional; doing it keeps later traversals from paying
// instant tree-latch waits). Freed pages are skipped. Under the §5 IX
// tree lock the sweep is skipped entirely: another SMO may hold a claim
// on a shared page (e.g. the common parent), and its warning bit must
// survive ours — lazy cleanup (Fig 6's instant-S path, which requires
// full quiescence) clears stale bits instead.
func (ix *Index) resetSMBits(tx *txn.Tx, ctx *smoCtx) {
	if ctx.hold != nil && ctx.hold.lock && ctx.hold.lockMode == lock.IX {
		return
	}
	for _, pid := range ctx.touched {
		f, err := ix.pool.Fix(pid)
		if err != nil {
			continue
		}
		f.Latch.Acquire(latch.X)
		if f.Page.Type() == storage.PageTypeIndex {
			ix.resetBits(tx, f, false)
		}
		ix.unfixLatched(f, latch.X)
	}
}
