package core

import (
	"fmt"

	"ariesim/internal/storage"
	"ariesim/internal/wal"
)

// ApplyRedo reapplies one index-manager log record to its page. This is
// the whole of ARIES/IM's redo story (§3): redos are always page-oriented —
// no tree traversal, no other page, no index metadata. The caller holds
// the page exclusively and has already decided, by comparing the page_LSN
// with the record's LSN, that the update is missing.
//
// CLR redo funnels through the same switch: a CLR's OpCode is the
// compensating page action (e.g. OpIdxUnsplitLeft), so compensation is
// replayed exactly like forward work.
func ApplyRedo(p *storage.Page, rec *wal.Record) error {
	switch rec.Op {
	case wal.OpIdxInsertKey:
		pl, err := decodeKeyOp(rec.Payload)
		if err != nil {
			return err
		}
		if err := p.InsertCellAt(int(pl.Pos), pl.Cell); err != nil {
			return fmt.Errorf("core: redo insert at %d on page %d: %w", pl.Pos, rec.Page, err)
		}
		p.SetFlags(pl.PostFlags)
		return nil

	case wal.OpIdxDeleteKey:
		pl, err := decodeKeyOp(rec.Payload)
		if err != nil {
			return err
		}
		if _, err := p.DeleteCellAt(int(pl.Pos)); err != nil {
			return fmt.Errorf("core: redo delete at %d on page %d: %w", pl.Pos, rec.Page, err)
		}
		p.SetFlags(pl.PostFlags)
		return nil

	case wal.OpIdxFormat:
		pl, err := decodeFormat(rec.Payload)
		if err != nil {
			return err
		}
		p.Format(rec.Page, storage.PageTypeIndex, pl.Level)
		p.SetFlags(pl.Flags)
		p.SetPrev(pl.Prev)
		p.SetNext(pl.Next)
		p.SetRightmost(pl.Rightmost)
		for i, c := range pl.Cells {
			if err := p.InsertCellAt(i, c); err != nil {
				return fmt.Errorf("core: redo format cell %d on page %d: %w", i, rec.Page, err)
			}
		}
		return nil

	case wal.OpIdxSplitLeft:
		pl, err := decodeSplitLeft(rec.Payload)
		if err != nil {
			return err
		}
		for p.NSlots() > int(pl.From) {
			if _, err := p.DeleteCellAt(p.NSlots() - 1); err != nil {
				return err
			}
		}
		if p.IsLeaf() {
			p.SetNext(pl.NewNext)
		} else {
			p.SetRightmost(pl.NewRightmost)
		}
		p.SetFlags(pl.PostFlags)
		return nil

	case wal.OpIdxUnsplitLeft:
		pl, err := decodeSplitLeft(rec.Payload)
		if err != nil {
			return err
		}
		for i, c := range pl.Moved {
			if err := p.InsertCellAt(int(pl.From)+i, c); err != nil {
				return fmt.Errorf("core: redo unsplit cell %d on page %d: %w", i, rec.Page, err)
			}
		}
		if p.IsLeaf() {
			p.SetNext(pl.OldNext)
		} else {
			p.SetRightmost(pl.OldRightmost)
		}
		p.SetFlags(pl.PreFlags)
		return nil

	case wal.OpIdxChainFix:
		pl, err := decodeChainFix(rec.Payload)
		if err != nil {
			return err
		}
		if pl.NextField {
			p.SetNext(pl.New)
		} else {
			p.SetPrev(pl.New)
		}
		p.SetFlags(pl.PostFlags)
		return nil

	case wal.OpIdxSplitParent:
		pl, err := decodeSplitParent(rec.Payload)
		if err != nil {
			return err
		}
		if err := p.InsertCellAt(int(pl.Pos), pl.SepCell); err != nil {
			return fmt.Errorf("core: redo split-parent at %d on page %d: %w", pl.Pos, rec.Page, err)
		}
		if pl.AtRightmost {
			p.SetRightmost(pl.Right)
		} else {
			patchNodeChild(p, int(pl.Pos)+1, pl.Right)
		}
		p.SetFlags(pl.PostFlags)
		return nil

	case wal.OpIdxUnsplitParent:
		pl, err := decodeSplitParent(rec.Payload)
		if err != nil {
			return err
		}
		_, left, err := storage.DecodeNodeCell(pl.SepCell)
		if err != nil {
			return err
		}
		if _, err := p.DeleteCellAt(int(pl.Pos)); err != nil {
			return fmt.Errorf("core: redo unsplit-parent at %d on page %d: %w", pl.Pos, rec.Page, err)
		}
		if pl.AtRightmost {
			p.SetRightmost(left)
		} else {
			patchNodeChild(p, int(pl.Pos), left)
		}
		p.SetFlags(pl.PreFlags)
		return nil

	case wal.OpIdxDeleteChild:
		pl, err := decodeDeleteChild(rec.Payload)
		if err != nil {
			return err
		}
		if len(pl.Removed) > 0 {
			if _, err := p.DeleteCellAt(int(pl.Pos)); err != nil {
				return fmt.Errorf("core: redo delete-child at %d on page %d: %w", pl.Pos, rec.Page, err)
			}
		}
		p.SetRightmost(pl.NewRightmost)
		p.SetFlags(pl.PostFlags)
		return nil

	case wal.OpIdxUndeleteChild:
		pl, err := decodeDeleteChild(rec.Payload)
		if err != nil {
			return err
		}
		if len(pl.Removed) > 0 {
			if err := p.InsertCellAt(int(pl.Pos), pl.Removed); err != nil {
				return fmt.Errorf("core: redo undelete-child at %d on page %d: %w", pl.Pos, rec.Page, err)
			}
		}
		p.SetRightmost(pl.OldRightmost)
		p.SetFlags(pl.PreFlags)
		return nil

	case wal.OpIdxReplacePage:
		pl, err := decodeReplace(rec.Payload)
		if err != nil {
			return err
		}
		if len(pl.After) != len(p.Bytes()) {
			return fmt.Errorf("core: redo replace-page image is %d bytes, page is %d", len(pl.After), len(p.Bytes()))
		}
		copy(p.Bytes(), pl.After)
		return nil

	case wal.OpIdxFreePage:
		pl, err := decodeFreePage(rec.Payload)
		if err != nil {
			return err
		}
		_ = pl
		p.Format(rec.Page, storage.PageTypeFree, 0)
		return nil

	case wal.OpIdxUnfreePage:
		pl, err := decodeFreePage(rec.Payload)
		if err != nil {
			return err
		}
		p.Format(rec.Page, storage.PageTypeIndex, pl.Level)
		p.SetFlags(pl.Flags)
		p.SetPrev(pl.Prev)
		p.SetNext(pl.Next)
		p.SetRightmost(pl.Rightmost)
		return nil

	case wal.OpIdxSetBits:
		pl, err := decodeSetBits(rec.Payload)
		if err != nil {
			return err
		}
		p.SetFlags(pl.Flags)
		return nil

	default:
		return fmt.Errorf("core: not an index op: %s", rec.Op)
	}
}
