package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"ariesim/internal/buffer"
	"ariesim/internal/latch"
	"ariesim/internal/lock"
	"ariesim/internal/space"
	"ariesim/internal/storage"
	"ariesim/internal/trace"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

// Protocol selects how index keys are locked (paper §2.1).
type Protocol uint8

const (
	// DataOnly is ARIES/IM's headline design: the lock of a key is the
	// lock on the corresponding record (the RID inside the key). Key
	// inserts/deletes need no current-key lock because the record manager
	// already holds the record X lock, and fetches lock the key so the
	// record manager need not re-lock the record.
	DataOnly Protocol = iota
	// IndexSpecific locks key values within the index (Fig 2's "if
	// index-specific locking is used" column): slightly more concurrency
	// in some interleavings, strictly more lock calls.
	IndexSpecific
	// KVL is the ARIES/KVL baseline (Moha90a): commit-duration key-value
	// locks on current values, instant IX on next values — more lock
	// calls per operation and coarser conflicts on duplicate values.
	KVL
	// SystemR is the System R-style baseline: key-value locks plus
	// commit-duration index page locks, including on every page an SMO
	// touches — readers and SMOs block each other until end of
	// transaction (§1, §5).
	SystemR
)

func (p Protocol) String() string {
	switch p {
	case IndexSpecific:
		return "index-specific"
	case KVL:
		return "aries-kvl"
	case SystemR:
		return "system-r"
	default:
		return "data-only"
	}
}

// Config describes an index at creation/open time.
type Config struct {
	ID       uint32
	Unique   bool
	Protocol Protocol
	// Granularity of data locks (record vs data page); must match the
	// record manager's setting so key locks and record locks coincide.
	Granularity lock.Granularity
	// UseTreeLock enables the §5 extension: SMOs serialize on a lock-
	// manager tree lock (IX for leaf-level SMOs, upgraded to X for
	// multi-level ones) instead of the X tree latch, permitting concurrent
	// leaf-level SMOs on one index.
	UseTreeLock bool
}

// Errors returned by index operations.
var (
	// ErrDuplicate reports a unique-key violation. The violating
	// transaction retains a commit-duration S lock on the existing key so
	// the error is repeatable (paper §2.4).
	ErrDuplicate = errors.New("core: unique key violation")
	// ErrKeyNotFound reports a delete of a key that is not in the index.
	ErrKeyNotFound = errors.New("core: key not found")
)

// Manager owns every index of an engine and routes undo by index ID.
type Manager struct {
	pool  *buffer.Pool
	stats *trace.Stats

	mu      sync.RWMutex
	indexes map[uint32]*Index
}

// NewManager creates an index manager over pool.
func NewManager(pool *buffer.Pool, stats *trace.Stats) *Manager {
	return &Manager{pool: pool, stats: stats, indexes: make(map[uint32]*Index)}
}

// Index is one B+-tree. The root page ID is fixed for the index's
// lifetime (root splits redistribute the root's content into two fresh
// children), so no mutable root pointer exists.
type Index struct {
	cfg  Config
	root storage.PageID

	pool      *buffer.Pool
	stats     *trace.Stats
	mgr       *Manager
	treeLatch *latch.Latch
}

// CreateIndex allocates and formats the root (initially an empty leaf)
// within tx and registers the index.
func (m *Manager) CreateIndex(tx *txn.Tx, cfg Config) (*Index, error) {
	root, err := space.Alloc(tx, m.pool)
	if err != nil {
		return nil, err
	}
	f, err := m.pool.Fix(root)
	if err != nil {
		return nil, err
	}
	f.Latch.Acquire(latch.X)
	pl := formatPayload{Index: cfg.ID, Level: 0}
	lsn := tx.LogUpdate(root, wal.OpIdxFormat, pl.encode(), false)
	f.Page.Format(root, storage.PageTypeIndex, 0)
	f.Page.SetLSN(uint64(lsn))
	m.pool.MarkDirty(f, lsn)
	f.Latch.Release(latch.X)
	m.pool.Unfix(f)
	return m.register(cfg, root), nil
}

// OpenIndex rebinds an existing index (after restart) and registers it.
func (m *Manager) OpenIndex(cfg Config, root storage.PageID) *Index {
	return m.register(cfg, root)
}

func (m *Manager) register(cfg Config, root storage.PageID) *Index {
	ix := &Index{
		cfg: cfg, root: root, pool: m.pool, stats: m.stats, mgr: m,
		treeLatch: latch.NewTree(m.stats),
	}
	m.mu.Lock()
	m.indexes[cfg.ID] = ix
	m.mu.Unlock()
	return ix
}

// Lookup returns a registered index.
func (m *Manager) Lookup(id uint32) *Index {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.indexes[id]
}

// ID returns the index's identifier.
func (ix *Index) ID() uint32 { return ix.cfg.ID }

// Root returns the fixed root page ID.
func (ix *Index) Root() storage.PageID { return ix.root }

// Unique reports whether the index enforces unique key values.
func (ix *Index) Unique() bool { return ix.cfg.Unique }

// Protocol returns the locking protocol in force.
func (ix *Index) Protocol() Protocol { return ix.cfg.Protocol }

func hashVal(val []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(val)
	return h.Sum64()
}

// keyLockName names the lock protecting key k. Under data-only locking it
// is the record lock (the paper's central trick); under every other
// protocol it is a key-value lock within this index.
func (ix *Index) keyLockName(k storage.Key) lock.Name {
	if ix.cfg.Protocol != DataOnly {
		return lock.KeyValueName(uint64(ix.cfg.ID), hashVal(k.Val))
	}
	return lock.DataLockName(ix.cfg.Granularity, uint64(k.RID.Page), k.RID.Slot)
}

// eofLockName names the end-of-file lock used as the "next key" when a
// key-range operation runs past the highest key in the index (paper §2.2).
func (ix *Index) eofLockName() lock.Name { return lock.EOFName(uint64(ix.cfg.ID)) }

// Tree latch helpers. With UseTreeLock the tree latch becomes a lock
// (paper §5); instant S acquisition is the traverser's "wait for the SMO
// to finish" primitive (Fig 4, 6, 7).

func (ix *Index) treeWaitInstantS(tx *txn.Tx) error {
	if ix.cfg.UseTreeLock {
		return tx.Lock(lock.TreeName(uint64(ix.cfg.ID)), lock.S, lock.Instant, false)
	}
	ix.treeLatch.AcquireInstant(latch.S)
	return nil
}

// treeTryInstantS attempts the instant S without blocking (used while a
// page latch is held: the tree latch must never be waited for under a
// page latch).
func (ix *Index) treeTryInstantS(tx *txn.Tx) bool {
	if ix.cfg.UseTreeLock {
		return tx.Lock(lock.TreeName(uint64(ix.cfg.ID)), lock.S, lock.Instant, true) == nil
	}
	if ix.treeLatch.TryAcquire(latch.S) {
		ix.treeLatch.Release(latch.S)
		return true
	}
	return false
}

// treeHold represents a held tree latch/lock that must be released.
type treeHold struct {
	ix       *Index
	tx       *txn.Tx
	mode     latch.Mode
	lock     bool
	lockMode lock.Mode
}

func (h *treeHold) release() {
	if h == nil {
		return
	}
	if h.lock {
		var name = lock.TreeName(uint64(h.ix.cfg.ID))
		h.tx.Unlock(name)
		return
	}
	h.ix.treeLatch.Release(h.mode)
}

// upgradeX strengthens an SMO's tree hold to X before any nonleaf-level
// structure change (§5: "If a nonleaf-level SMO is required, then they
// will upgrade the IX lock to an X lock"). Under the tree latch this is a
// no-op (the latch is already exclusive). Concurrent upgrades can
// deadlock; the victim's error aborts its SMO, which is rolled back
// page-oriented and retried by the caller.
func (h *treeHold) upgradeX() error {
	if h == nil || !h.lock || h.lockMode == lock.X {
		return nil
	}
	if err := h.tx.Lock(lock.TreeName(uint64(h.ix.cfg.ID)), lock.X, lock.Manual, false); err != nil {
		return err
	}
	h.lockMode = lock.X
	return nil
}

// treeAcquireS holds the tree latch in S for the duration of a boundary-
// key delete (Fig 7).
func (ix *Index) treeAcquireS(tx *txn.Tx) (*treeHold, error) {
	if ix.cfg.UseTreeLock {
		if err := tx.Lock(lock.TreeName(uint64(ix.cfg.ID)), lock.S, lock.Manual, false); err != nil {
			return nil, err
		}
		return &treeHold{ix: ix, tx: tx, lock: true}, nil
	}
	ix.treeLatch.Acquire(latch.S)
	return &treeHold{ix: ix, mode: latch.S}, nil
}

// treeTryS is the conditional variant, legal while page latches are held.
func (ix *Index) treeTryS(tx *txn.Tx) (*treeHold, bool) {
	if ix.cfg.UseTreeLock {
		if tx.Lock(lock.TreeName(uint64(ix.cfg.ID)), lock.S, lock.Manual, true) == nil {
			return &treeHold{ix: ix, tx: tx, lock: true}, true
		}
		return nil, false
	}
	if ix.treeLatch.TryAcquire(latch.S) {
		return &treeHold{ix: ix, mode: latch.S}, true
	}
	return nil, false
}

// treeAcquireX serializes an SMO exclusively. No page latches may be held.
func (ix *Index) treeAcquireX(tx *txn.Tx) (*treeHold, error) {
	if ix.cfg.UseTreeLock {
		if err := tx.Lock(lock.TreeName(uint64(ix.cfg.ID)), lock.X, lock.Manual, false); err != nil {
			return nil, err
		}
		return &treeHold{ix: ix, tx: tx, lock: true, lockMode: lock.X}, nil
	}
	ix.treeLatch.Acquire(latch.X)
	return &treeHold{ix: ix, mode: latch.X}, nil
}

// treeAcquireSMO takes the serialization an SMO starts with. With the
// default tree latch that is exclusive (SMOs fully serialized, §2.1).
// With the §5 tree-lock extension, forward transactions begin leaf-level
// SMOs in IX — concurrent leaf SMOs interleave, serialized only at shared
// pages by page latches — and upgrade to X (upgradeX) before touching
// nonleaf structure; rolling-back transactions take X outright so they
// can never deadlock on the upgrade (§5).
func (ix *Index) treeAcquireSMO(tx *txn.Tx) (*treeHold, error) {
	if !ix.cfg.UseTreeLock {
		ix.treeLatch.Acquire(latch.X)
		return &treeHold{ix: ix, mode: latch.X}, nil
	}
	mode := lock.IX
	if tx.IsRollingBack() {
		mode = lock.X
	}
	if err := tx.Lock(lock.TreeName(uint64(ix.cfg.ID)), mode, lock.Manual, false); err != nil {
		return nil, err
	}
	return &treeHold{ix: ix, tx: tx, lock: true, lockMode: mode}, nil
}

// Page-shape helpers (callers hold the page latch).

// leafLowerBound returns the position of the first leaf cell >= k.
func leafLowerBound(p *storage.Page, k storage.Key) (int, error) {
	lo, hi := 0, p.NSlots()
	for lo < hi {
		mid := (lo + hi) / 2
		ck, err := storage.DecodeLeafCell(p.MustCell(mid))
		if err != nil {
			return 0, err
		}
		if ck.Compare(k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// leafKeyAt decodes the leaf cell at pos.
func leafKeyAt(p *storage.Page, pos int) (storage.Key, error) {
	return storage.DecodeLeafCell(p.MustCell(pos))
}

// nodeChildFor returns the child to descend into for key k: the child of
// the first high key strictly greater than k, else the rightmost child.
// unbounded reports that k fell past every high key (the Fig 4 ambiguity
// test needs it).
func nodeChildFor(p *storage.Page, k storage.Key) (child storage.PageID, unbounded bool, err error) {
	lo, hi := 0, p.NSlots()
	for lo < hi {
		mid := (lo + hi) / 2
		hk, _, derr := storage.DecodeNodeCell(p.MustCell(mid))
		if derr != nil {
			return 0, false, derr
		}
		if hk.Compare(k) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == p.NSlots() {
		return p.Rightmost(), true, nil
	}
	_, c, derr := storage.DecodeNodeCell(p.MustCell(lo))
	return c, false, derr
}

// nodeChildPos locates the entry for child in a parent: its cell position,
// or rightmost=true. Used by SMO propagation under the tree latch.
func nodeChildPos(p *storage.Page, child storage.PageID) (pos int, rightmost bool, err error) {
	for i := 0; i < p.NSlots(); i++ {
		_, c, derr := storage.DecodeNodeCell(p.MustCell(i))
		if derr != nil {
			return 0, false, derr
		}
		if c == child {
			return i, false, nil
		}
	}
	if p.Rightmost() == child {
		return 0, true, nil
	}
	return 0, false, fmt.Errorf("core: child %d not found in parent %d", child, p.ID())
}

// patchNodeChild rewrites the child pointer of the node cell at pos in
// place (the child occupies the cell's trailing 4 bytes).
func patchNodeChild(p *storage.Page, pos int, child storage.PageID) {
	cell := p.MustCell(pos)
	cell[len(cell)-4] = byte(child)
	cell[len(cell)-3] = byte(child >> 8)
	cell[len(cell)-2] = byte(child >> 16)
	cell[len(cell)-1] = byte(child >> 24)
}

// pageCells copies every cell payload off an index page.
func pageCells(p *storage.Page) [][]byte {
	out := make([][]byte, p.NSlots())
	for i := range out {
		out[i] = append([]byte(nil), p.MustCell(i)...)
	}
	return out
}

// applyLogged performs the standard logged-update dance on a latched
// frame: append the record, mutate, stamp the page LSN, mark dirty.
func (ix *Index) applyLogged(tx *txn.Tx, f *buffer.Frame, op wal.OpCode, payload []byte, redoOnly bool, mutate func() error) (wal.LSN, error) {
	lsn := tx.LogUpdate(f.ID(), op, payload, redoOnly)
	if err := mutate(); err != nil {
		// A mutation that fails after logging would desynchronize page and
		// log; treat as invariant violation.
		panic(fmt.Sprintf("core: logged mutation failed on page %d op %s: %v", f.ID(), op, err))
	}
	f.Page.SetLSN(uint64(lsn))
	ix.pool.MarkDirty(f, lsn)
	return lsn, nil
}

// applyCLR is applyLogged for compensation records during undo.
func (ix *Index) applyCLR(tx *txn.Tx, f *buffer.Frame, op wal.OpCode, payload []byte, undoNxt wal.LSN, mutate func() error) wal.LSN {
	lsn := tx.LogCLR(f.ID(), op, payload, undoNxt)
	if err := mutate(); err != nil {
		panic(fmt.Sprintf("core: CLR mutation failed on page %d op %s: %v", f.ID(), op, err))
	}
	f.Page.SetLSN(uint64(lsn))
	ix.pool.MarkDirty(f, lsn)
	return lsn
}

// fixLatched fixes and latches a page in one step.
func (ix *Index) fixLatched(id storage.PageID, m latch.Mode) (*buffer.Frame, error) {
	f, err := ix.pool.Fix(id)
	if err != nil {
		return nil, err
	}
	f.Latch.Acquire(m)
	return f, nil
}

func (ix *Index) unfixLatched(f *buffer.Frame, m latch.Mode) {
	f.Latch.Release(m)
	ix.pool.Unfix(f)
}

// resetBits clears the SM_Bit and (optionally) Delete_Bit on a latched
// page with a redo-only record, as Figs 6 and 7 do once an instant tree
// latch has proven no SMO is in progress. Callers hold the X latch.
func (ix *Index) resetBits(tx *txn.Tx, f *buffer.Frame, clearDelete bool) {
	flags := f.Page.Flags() &^ storage.FlagSMBit
	if clearDelete {
		flags &^= storage.FlagDeleteBit
	}
	if flags == f.Page.Flags() {
		return
	}
	pl := setBitsPayload{Index: ix.cfg.ID, Flags: flags}
	_, _ = ix.applyLogged(tx, f, wal.OpIdxSetBits, pl.encode(), true, func() error {
		f.Page.SetFlags(flags)
		return nil
	})
}
