package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ariesim/internal/buffer"
	"ariesim/internal/lock"
	"ariesim/internal/storage"
	"ariesim/internal/trace"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

// env is a full engine stack below the db layer: disk, log, pool, locks,
// transactions, and the index manager wired as the undoer.
type env struct {
	t     *testing.T
	stats *trace.Stats
	disk  *storage.Disk
	log   *wal.Log
	pool  *buffer.Pool
	locks *lock.Manager
	tm    *txn.Manager
	im    *Manager
}

func newEnv(t *testing.T, pageSize, poolSize int) *env {
	t.Helper()
	e := &env{t: t, stats: &trace.Stats{}}
	e.disk = storage.NewDisk(pageSize)
	e.log = wal.NewLog(e.stats)
	e.pool = buffer.NewPool(e.disk, e.log, poolSize, e.stats)
	e.locks = lock.NewManager(e.stats)
	e.tm = txn.NewManager(e.log, e.locks)
	e.im = NewManager(e.pool, e.stats)
	e.tm.SetUndoer(e.im)
	return e
}

func (e *env) createIndex(cfg Config) *Index {
	e.t.Helper()
	tx := e.tm.Begin()
	ix, err := e.im.CreateIndex(tx, cfg)
	if err != nil {
		e.t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		e.t.Fatal(err)
	}
	return ix
}

// key builds a deterministic full key: value keyNNNNN, synthetic RID.
func key(i int) storage.Key {
	return storage.Key{
		Val: []byte(fmt.Sprintf("key%05d", i)),
		RID: storage.RID{Page: storage.PageID(1000 + i), Slot: uint16(i % 100)},
	}
}

func (e *env) mustInsert(tx *txn.Tx, ix *Index, k storage.Key) {
	e.t.Helper()
	if err := ix.Insert(tx, k); err != nil {
		e.t.Fatalf("insert %s: %v", k, err)
	}
}

func (e *env) mustDelete(tx *txn.Tx, ix *Index, k storage.Key) {
	e.t.Helper()
	if err := ix.Delete(tx, k); err != nil {
		e.t.Fatalf("delete %s: %v", k, err)
	}
}

func (e *env) commit(tx *txn.Tx) {
	e.t.Helper()
	if err := tx.Commit(); err != nil {
		e.t.Fatal(err)
	}
}

func (e *env) checkTree(ix *Index) {
	e.t.Helper()
	if err := ix.CheckStructure(); err != nil {
		e.t.Fatal(err)
	}
}

func (e *env) expectKeys(ix *Index, want []storage.Key) {
	e.t.Helper()
	got, err := ix.Dump()
	if err != nil {
		e.t.Fatal(err)
	}
	if len(got) != len(want) {
		e.t.Fatalf("index holds %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Compare(want[i]) != 0 {
			e.t.Fatalf("key %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestInsertAndFetchSingleLeaf(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	for _, i := range []int{3, 1, 2} {
		e.mustInsert(tx, ix, key(i))
	}
	e.commit(tx)
	e.checkTree(ix)
	e.expectKeys(ix, []storage.Key{key(1), key(2), key(3)})

	r := e.tm.Begin()
	res, _, err := ix.Fetch(r, key(2).Val, EQ)
	if err != nil || !res.Found || res.Key.Compare(key(2)) != 0 {
		t.Fatalf("Fetch(key2) = %+v, %v", res, err)
	}
	// The fetch locked the key (its record) for commit duration.
	if !e.locks.HoldsAtLeast(lock.Owner(r.ID), ix.keyLockName(key(2)), lock.S) {
		t.Fatal("fetch did not S-lock the found key")
	}
	e.commit(r)
}

func TestFetchNotFoundLocksNextKey(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	e.mustInsert(tx, ix, key(10))
	e.mustInsert(tx, ix, key(20))
	e.commit(tx)

	r := e.tm.Begin()
	res, _, err := ix.Fetch(r, key(15).Val, EQ)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("key15 reported found")
	}
	if res.Key.Compare(key(20)) != 0 {
		t.Fatalf("next higher key = %s, want %s", res.Key, key(20))
	}
	if !e.locks.HoldsAtLeast(lock.Owner(r.ID), ix.keyLockName(key(20)), lock.S) {
		t.Fatal("not-found did not lock the next key")
	}
	e.commit(r)
}

func TestFetchEOFLock(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	e.mustInsert(tx, ix, key(10))
	e.commit(tx)

	r := e.tm.Begin()
	res, _, err := ix.Fetch(r, key(99).Val, EQ)
	if err != nil || res.Found || !res.EOF {
		t.Fatalf("fetch past end = %+v, %v", res, err)
	}
	if !e.locks.HoldsAtLeast(lock.Owner(r.ID), ix.eofLockName(), lock.S) {
		t.Fatal("EOF case did not take the EOF lock")
	}
	e.commit(r)
}

func TestFetchOnEmptyIndex(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	r := e.tm.Begin()
	res, _, err := ix.Fetch(r, []byte("anything"), GE)
	if err != nil || res.Found || !res.EOF {
		t.Fatalf("fetch on empty = %+v, %v", res, err)
	}
	e.commit(r)
}

func TestFetchOperators(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	for _, i := range []int{10, 20, 30} {
		e.mustInsert(tx, ix, key(i))
	}
	e.commit(tx)

	r := e.tm.Begin()
	defer e.commit(r)
	// GE on a present value returns it.
	if res, _, _ := ix.Fetch(r, key(20).Val, GE); !res.Found || res.Key.Compare(key(20)) != 0 {
		t.Fatalf("GE present = %+v", res)
	}
	// GE on an absent value returns the next.
	if res, _, _ := ix.Fetch(r, key(15).Val, GE); !res.Found || res.Key.Compare(key(20)) != 0 {
		t.Fatalf("GE absent = %+v", res)
	}
	// GT on a present value skips it.
	if res, _, _ := ix.Fetch(r, key(20).Val, GT); !res.Found || res.Key.Compare(key(30)) != 0 {
		t.Fatalf("GT = %+v", res)
	}
	// EQ absent: not found.
	if res, _, _ := ix.Fetch(r, key(25).Val, EQ); res.Found {
		t.Fatalf("EQ absent = %+v", res)
	}
}

func TestRangeScanWithCursor(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	for i := 0; i < 50; i++ {
		e.mustInsert(tx, ix, key(i))
	}
	e.commit(tx)

	r := e.tm.Begin()
	res, cur, err := ix.Fetch(r, key(5).Val, GE)
	if err != nil || !res.Found {
		t.Fatalf("open scan: %+v, %v", res, err)
	}
	got := []storage.Key{res.Key}
	for {
		res, err := ix.FetchNext(r, cur)
		if err != nil {
			t.Fatal(err)
		}
		if res.EOF {
			break
		}
		got = append(got, res.Key)
	}
	if len(got) != 45 {
		t.Fatalf("scan returned %d keys, want 45", len(got))
	}
	for i, k := range got {
		if k.Compare(key(5+i)) != 0 {
			t.Fatalf("scan[%d] = %s, want %s", i, k, key(5+i))
		}
	}
	e.commit(r)
}

func TestInsertsForceSplitsAndStayOrdered(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	var want []storage.Key
	for i := 0; i < 300; i++ {
		k := key(i)
		e.mustInsert(tx, ix, k)
		want = append(want, k)
	}
	e.commit(tx)
	if e.stats.PageSplits.Load() == 0 {
		t.Fatal("no splits with 300 keys on 512B pages")
	}
	if h, _ := ix.Height(); h < 2 {
		t.Fatalf("height %d after splits", h)
	}
	e.checkTree(ix)
	e.expectKeys(ix, want)
}

func TestDescendingInsertsSplit(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	var want []storage.Key
	for i := 299; i >= 0; i-- {
		e.mustInsert(tx, ix, key(i))
	}
	for i := 0; i < 300; i++ {
		want = append(want, key(i))
	}
	e.commit(tx)
	e.checkTree(ix)
	e.expectKeys(ix, want)
}

func TestRandomInsertsSplit(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(400)
	for _, i := range perm {
		e.mustInsert(tx, ix, key(i))
	}
	e.commit(tx)
	e.checkTree(ix)
	var want []storage.Key
	for i := 0; i < 400; i++ {
		want = append(want, key(i))
	}
	e.expectKeys(ix, want)
}

func TestDeleteBasics(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	for i := 0; i < 10; i++ {
		e.mustInsert(tx, ix, key(i))
	}
	e.mustDelete(tx, ix, key(5))
	e.commit(tx)
	e.checkTree(ix)
	var want []storage.Key
	for i := 0; i < 10; i++ {
		if i != 5 {
			want = append(want, key(i))
		}
	}
	e.expectKeys(ix, want)

	// Deleting a missing key errors.
	tx2 := e.tm.Begin()
	if err := ix.Delete(tx2, key(5)); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
	_ = tx2.Rollback()
}

func TestDeleteEverythingTriggersPageDeletes(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	for i := 0; i < 300; i++ {
		e.mustInsert(tx, ix, key(i))
	}
	e.commit(tx)

	tx2 := e.tm.Begin()
	for i := 0; i < 300; i++ {
		e.mustDelete(tx2, ix, key(i))
	}
	e.commit(tx2)
	if e.stats.PageDeletes.Load() == 0 {
		t.Fatal("no page deletions while draining the index")
	}
	e.checkTree(ix)
	e.expectKeys(ix, nil)

	// The tree must be reusable after total drain.
	tx3 := e.tm.Begin()
	e.mustInsert(tx3, ix, key(42))
	e.commit(tx3)
	e.expectKeys(ix, []storage.Key{key(42)})
	e.checkTree(ix)
}

func TestDeleteReverseOrderDrain(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	for i := 0; i < 250; i++ {
		e.mustInsert(tx, ix, key(i))
	}
	e.commit(tx)
	tx2 := e.tm.Begin()
	for i := 249; i >= 0; i-- {
		e.mustDelete(tx2, ix, key(i))
	}
	e.commit(tx2)
	e.checkTree(ix)
	e.expectKeys(ix, nil)
}

func TestInterleavedInsertDeleteModel(t *testing.T) {
	e := newEnv(t, 512, 128)
	ix := e.createIndex(Config{ID: 1})
	rng := rand.New(rand.NewSource(11))
	model := map[int]bool{}
	tx := e.tm.Begin()
	for step := 0; step < 3000; step++ {
		i := rng.Intn(500)
		if model[i] {
			e.mustDelete(tx, ix, key(i))
			delete(model, i)
		} else {
			e.mustInsert(tx, ix, key(i))
			model[i] = true
		}
		if step%500 == 499 {
			e.commit(tx)
			tx = e.tm.Begin()
		}
	}
	e.commit(tx)
	e.checkTree(ix)
	var want []storage.Key
	for i := 0; i < 500; i++ {
		if model[i] {
			want = append(want, key(i))
		}
	}
	e.expectKeys(ix, want)
}

func TestRollbackUndoesInsertsPageOriented(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	setup := e.tm.Begin()
	for i := 0; i < 20; i += 2 {
		e.mustInsert(setup, ix, key(i))
	}
	e.commit(setup)

	tx := e.tm.Begin()
	for i := 1; i < 20; i += 2 {
		e.mustInsert(tx, ix, key(i))
	}
	before := e.stats.Snap()
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	d := trace.Diff(before, e.stats.Snap())
	if d.UndoLogical != 0 {
		t.Fatalf("expected pure page-oriented undo, got %d logical", d.UndoLogical)
	}
	if d.UndoPageOriented == 0 {
		t.Fatal("no page-oriented undos recorded")
	}
	e.checkTree(ix)
	var want []storage.Key
	for i := 0; i < 20; i += 2 {
		want = append(want, key(i))
	}
	e.expectKeys(ix, want)
}

func TestRollbackUndoesDeletes(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	setup := e.tm.Begin()
	var want []storage.Key
	for i := 0; i < 30; i++ {
		e.mustInsert(setup, ix, key(i))
		want = append(want, key(i))
	}
	e.commit(setup)

	tx := e.tm.Begin()
	for i := 5; i < 25; i++ {
		e.mustDelete(tx, ix, key(i))
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	e.checkTree(ix)
	e.expectKeys(ix, want)
}

func TestRollbackOfSplitKeepsSMO(t *testing.T) {
	// A rollback after a completed split must NOT undo the split (the
	// nested top action), only the keys (question 4 in §1.1).
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	setup := e.tm.Begin()
	var want []storage.Key
	for i := 0; i < 40; i++ {
		e.mustInsert(setup, ix, key(i*2))
		want = append(want, key(i*2))
	}
	e.commit(setup)
	splitsBefore := e.stats.PageSplits.Load()

	tx := e.tm.Begin()
	for i := 0; i < 40; i++ {
		e.mustInsert(tx, ix, key(i*2+1))
	}
	splitsDuring := e.stats.PageSplits.Load() - splitsBefore
	if splitsDuring == 0 {
		t.Skip("workload caused no splits; enlarge")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	e.checkTree(ix)
	e.expectKeys(ix, want)
	// No split may have been undone: the log contains no OpIdxUnsplitLeft.
	for _, r := range e.log.Records(1) {
		if r.Op == wal.OpIdxUnsplitLeft {
			t.Fatal("completed split was undone by rollback")
		}
	}
}

func TestRollbackAfterPageDeleteUsesLogicalUndo(t *testing.T) {
	// T1 deletes the only key of a page (page-delete SMO); rollback must
	// logically re-insert it (the original page is gone).
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	setup := e.tm.Begin()
	var want []storage.Key
	for i := 0; i < 200; i++ {
		e.mustInsert(setup, ix, key(i))
		want = append(want, key(i))
	}
	e.commit(setup)

	// Find a leaf and delete all but its keys via another tx... simpler:
	// delete a contiguous range large enough to empty at least one page.
	tx := e.tm.Begin()
	for i := 50; i < 150; i++ {
		e.mustDelete(tx, ix, key(i))
	}
	if e.stats.PageDeletes.Load() == 0 {
		t.Skip("no page delete triggered; adjust range")
	}
	before := e.stats.Snap()
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	d := trace.Diff(before, e.stats.Snap())
	if d.UndoLogical == 0 {
		t.Fatal("expected logical undos after page deletions")
	}
	e.checkTree(ix)
	e.expectKeys(ix, want)
}

func TestUniqueIndexRejectsDuplicateValue(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1, Unique: true})
	tx := e.tm.Begin()
	e.mustInsert(tx, ix, storage.Key{Val: []byte("alpha"), RID: storage.RID{Page: 100, Slot: 1}})
	e.commit(tx)

	tx2 := e.tm.Begin()
	err := ix.Insert(tx2, storage.Key{Val: []byte("alpha"), RID: storage.RID{Page: 200, Slot: 2}})
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate accepted: %v", err)
	}
	// Repeatability: the violating transaction holds an S lock on the
	// existing instance, so re-checking yields the same answer.
	if !e.locks.HoldsAtLeast(lock.Owner(tx2.ID),
		ix.keyLockName(storage.Key{Val: []byte("alpha"), RID: storage.RID{Page: 100, Slot: 1}}), lock.S) {
		t.Fatal("no repeatability lock held after unique violation")
	}
	_ = tx2.Rollback()
}

func TestNonUniqueIndexAllowsDuplicateValues(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	for i := 0; i < 5; i++ {
		e.mustInsert(tx, ix, storage.Key{Val: []byte("dup"), RID: storage.RID{Page: storage.PageID(10 + i), Slot: 0}})
	}
	e.commit(tx)
	got, _ := ix.Dump()
	if len(got) != 5 {
		t.Fatalf("%d duplicate keys stored, want 5", len(got))
	}
	// But the identical full key is rejected.
	tx2 := e.tm.Begin()
	err := ix.Insert(tx2, storage.Key{Val: []byte("dup"), RID: storage.RID{Page: 10, Slot: 0}})
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("full-key duplicate accepted: %v", err)
	}
	_ = tx2.Rollback()
}

func TestLargeKeyRejected(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	big := storage.Key{Val: make([]byte, 400), RID: storage.RID{Page: 1, Slot: 1}}
	if err := ix.Insert(tx, big); err == nil {
		t.Fatal("quarter-page key bound not enforced")
	}
	_ = tx.Rollback()
}

func TestSplitLogIsRedoable(t *testing.T) {
	// Page-oriented redo reconstruction: replay the whole log against
	// virgin pages and compare every index page image with the live tree.
	e := newEnv(t, 512, 256)
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	for i := 0; i < 300; i++ {
		e.mustInsert(tx, ix, key(i))
	}
	for i := 100; i < 200; i++ {
		e.mustDelete(tx, ix, key(i))
	}
	e.commit(tx)

	rebuilt := map[storage.PageID]*storage.Page{}
	for _, r := range e.log.Records(1) {
		if !r.Redoable() || r.Page == storage.FSMPageID {
			continue
		}
		p := rebuilt[r.Page]
		if p == nil {
			p = storage.NewPage(512)
			rebuilt[r.Page] = p
		}
		if err := ApplyRedo(p, r); err != nil {
			t.Fatalf("replay of %s: %v", r, err)
		}
		p.SetLSN(uint64(r.LSN))
	}
	if err := e.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for id, p := range rebuilt {
		live := make([]byte, 512)
		_ = e.disk.Read(id, live)
		p.UpdateChecksum() // disk stamps checksums at write; match that
		if string(live) != string(p.Bytes()) {
			t.Fatalf("page %d replay mismatch", id)
		}
	}
	if len(rebuilt) < 5 {
		t.Fatalf("only %d pages exercised", len(rebuilt))
	}
}

func TestIndexSpecificLockingLocksKeyValues(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1, Protocol: IndexSpecific})
	tx := e.tm.Begin()
	e.mustInsert(tx, ix, key(1))
	// The inserted key's value is X-locked in the key-value space.
	if e.stats.LockCalls(int(lock.SpaceKeyValue), int(lock.X), int(lock.Commit)) == 0 {
		t.Fatal("index-specific insert did not lock the key value")
	}
	e.commit(tx)
}

func TestStatsLockTableRendering(t *testing.T) {
	e := newEnv(t, 512, 64)
	lock.RegisterTraceNames()
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	e.mustInsert(tx, ix, key(1))
	e.commit(tx)
	sn := e.stats.Snap()
	if sn.TotalLocks() == 0 {
		t.Fatal("no locks recorded")
	}
	if table := sn.FormatLockTable(); len(table) == 0 {
		t.Fatal("empty lock table")
	}
}
