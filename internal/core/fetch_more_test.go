package core

import (
	"math/rand"
	"testing"
	"time"

	"ariesim/internal/lock"
	"ariesim/internal/storage"
)

func TestFetchPrefix(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	for _, v := range []string{"apple", "apricot", "banana", "berry", "cherry"} {
		e.mustInsert(tx, ix, storage.Key{Val: []byte(v), RID: storage.RID{Page: 1, Slot: 1}})
	}
	e.commit(tx)

	r := e.tm.Begin()
	res, cur, err := ix.FetchPrefix(r, []byte("ap"))
	if err != nil || !res.Found {
		t.Fatalf("prefix ap: %+v %v", res, err)
	}
	if string(res.Key.Val) != "apple" {
		t.Fatalf("first ap-key = %q", res.Key.Val)
	}
	// The cursor continues the prefix scan.
	next, err := ix.FetchNext(r, cur)
	if err != nil || string(next.Key.Val) != "apricot" {
		t.Fatalf("second ap-key = %+v, %v", next, err)
	}

	// Missing prefix: not found, but the next key is locked for RR.
	res2, _, err := ix.FetchPrefix(r, []byte("bz"))
	if err != nil || res2.Found {
		t.Fatalf("prefix bz: %+v %v", res2, err)
	}
	if string(res2.Key.Val) != "cherry" {
		t.Fatalf("next after bz = %q", res2.Key.Val)
	}
	// Prefix past everything: EOF.
	res3, _, err := ix.FetchPrefix(r, []byte("zz"))
	if err != nil || res3.Found || !res3.EOF {
		t.Fatalf("prefix zz: %+v %v", res3, err)
	}
	e.commit(r)
}

func TestFetchCSLeavesNoLock(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	e.mustInsert(tx, ix, key(10))
	e.commit(tx)

	r := e.tm.Begin()
	res, err := ix.FetchCS(r, key(10).Val, EQ)
	if err != nil || !res.Found {
		t.Fatalf("CS fetch: %+v %v", res, err)
	}
	// No lock is retained: a writer can X-lock the record immediately.
	if e.locks.HoldsAtLeast(lock.Owner(r.ID), ix.keyLockName(key(10)), lock.IS) {
		t.Fatal("CS fetch left a lock behind")
	}
	w := e.tm.Begin()
	if err := w.Lock(ix.keyLockName(key(10)), lock.X, lock.Commit, true); err != nil {
		t.Fatalf("writer blocked by CS reader: %v", err)
	}
	e.commit(w)
	e.commit(r)
}

func TestFetchCSWaitsForUncommittedWriter(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	w := e.tm.Begin()
	e.lockRecord(w, ix, key(10))
	e.mustInsert(w, ix, key(10))

	r := e.tm.Begin()
	done := make(chan struct{})
	go func() {
		res, err := ix.FetchCS(r, key(10).Val, EQ)
		if err != nil || !res.Found {
			t.Errorf("CS fetch after commit: %+v %v", res, err)
		}
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("CS fetch read uncommitted data")
	case <-time.After(50 * time.Millisecond):
	}
	e.commit(w)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("CS fetch never unblocked")
	}
	e.commit(r)
}

func TestFetchCSOwnUncommittedVisible(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	e.lockRecord(tx, ix, key(5))
	e.mustInsert(tx, ix, key(5))
	// A transaction's CS read of its own uncommitted insert succeeds and
	// must NOT drop its own X lock.
	res, err := ix.FetchCS(tx, key(5).Val, EQ)
	if err != nil || !res.Found {
		t.Fatalf("own CS read: %+v %v", res, err)
	}
	if !e.locks.HoldsAtLeast(lock.Owner(tx.ID), ix.keyLockName(key(5)), lock.X) {
		t.Fatal("CS read released the transaction's own X lock")
	}
	e.commit(tx)
}

// TestQuickTreeVsModel drives the index against a sorted-map model with a
// deterministic random op stream, checking Dump equivalence and structure
// at every commit point, across page sizes that force different shapes.
func TestQuickTreeVsModel(t *testing.T) {
	for _, pageSize := range []int{256, 512, 1024} {
		pageSize := pageSize
		t.Run(ts(pageSize), func(t *testing.T) {
			e := newEnv(t, pageSize, 256)
			ix := e.createIndex(Config{ID: 1})
			model := map[int]bool{}
			tx := e.tm.Begin()
			rng := newRand(int64(pageSize))
			steps := 4000
			for i := 0; i < steps; i++ {
				n := rng.Intn(600)
				if model[n] {
					e.mustDelete(tx, ix, key(n))
					delete(model, n)
				} else {
					e.mustInsert(tx, ix, key(n))
					model[n] = true
				}
				if rng.Intn(200) == 0 {
					e.commit(tx)
					e.checkTree(ix)
					tx = e.tm.Begin()
				}
			}
			e.commit(tx)
			e.checkTree(ix)
			var want []storage.Key
			for n := 0; n < 600; n++ {
				if model[n] {
					want = append(want, key(n))
				}
			}
			e.expectKeys(ix, want)
		})
	}
}

func ts(n int) string {
	return string(rune('0'+n/100%10)) + string(rune('0'+n/10%10)) + string(rune('0'+n%10))
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
