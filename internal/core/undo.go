package core

import (
	"errors"
	"fmt"

	"ariesim/internal/latch"
	"ariesim/internal/space"
	"ariesim/internal/storage"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

// Undo compensates one index-manager (or FSM) log record on behalf of tx.
//
// Key inserts and deletes are undone page-oriented whenever possible: the
// page named in the record is checked against its current state, and only
// when the paper's four conditions demand it (§3 "Restart Undo
// Considerations") does the undo retraverse the tree from the root —
// writing the compensation as a CLR either way, with any SMO needed along
// the way logged as regular records inside a nested top action.
//
// SMO records themselves (formats, splits, chain fixes, parent posts,
// frees) are only ever undone when the SMO was interrupted; their undo is
// strictly page-oriented, restoring structural consistency.
func (m *Manager) Undo(tx *txn.Tx, rec *wal.Record) error {
	switch rec.Op {
	case wal.OpFSMAlloc, wal.OpFSMFree:
		return space.Undo(tx, m.pool, rec)
	}
	id, err := indexIDOf(rec.Payload)
	if err != nil {
		return err
	}
	ix := m.Lookup(id)
	if ix == nil {
		return fmt.Errorf("core: undo for unregistered index %d (op %s)", id, rec.Op)
	}
	switch rec.Op {
	case wal.OpIdxInsertKey:
		return ix.undoInsert(tx, rec)
	case wal.OpIdxDeleteKey:
		return ix.undoDelete(tx, rec)
	case wal.OpIdxFormat:
		// The formatted page reverts to a free shell; its FSM bit is
		// released by the allocation record's own undo.
		return ix.undoSMORecord(tx, rec, wal.OpIdxFreePage,
			freePagePayload{Index: ix.cfg.ID}.encode())
	case wal.OpIdxSplitLeft:
		return ix.undoSMORecord(tx, rec, wal.OpIdxUnsplitLeft, rec.Payload)
	case wal.OpIdxChainFix:
		pl, err := decodeChainFix(rec.Payload)
		if err != nil {
			return err
		}
		inv := chainFixPayload{Index: pl.Index, NextField: pl.NextField,
			Old: pl.New, New: pl.Old, PreFlags: pl.PostFlags, PostFlags: pl.PreFlags}
		return ix.undoSMORecord(tx, rec, wal.OpIdxChainFix, inv.encode())
	case wal.OpIdxSplitParent:
		return ix.undoSMORecord(tx, rec, wal.OpIdxUnsplitParent, rec.Payload)
	case wal.OpIdxDeleteChild:
		return ix.undoSMORecord(tx, rec, wal.OpIdxUndeleteChild, rec.Payload)
	case wal.OpIdxReplacePage:
		pl, err := decodeReplace(rec.Payload)
		if err != nil {
			return err
		}
		inv := replacePayload{Index: pl.Index, After: pl.Before}
		return ix.undoSMORecord(tx, rec, wal.OpIdxReplacePage, inv.encode())
	case wal.OpIdxFreePage:
		return ix.undoSMORecord(tx, rec, wal.OpIdxUnfreePage, rec.Payload)
	default:
		return fmt.Errorf("core: cannot undo op %s", rec.Op)
	}
}

// undoSMORecord performs a page-oriented compensation: it logs a CLR whose
// op is the inverse page action and applies it through the shared redo
// path.
func (ix *Index) undoSMORecord(tx *txn.Tx, rec *wal.Record, invOp wal.OpCode, invPayload []byte) error {
	f, err := ix.pool.Fix(rec.Page)
	if err != nil {
		return err
	}
	defer ix.pool.Unfix(f)
	f.Latch.Acquire(latch.X)
	defer f.Latch.Release(latch.X)
	if ix.stats != nil {
		ix.stats.UndoPageOriented.Add(1)
	}
	ix.applyCLR(tx, f, invOp, invPayload, rec.PrevLSN, func() error {
		return ApplyRedo(f.Page, &wal.Record{Op: invOp, Page: rec.Page, Payload: invPayload})
	})
	return nil
}

// undoInsert removes a key the transaction inserted. Page-oriented when
// the key is still on the original page and removing it leaves the page
// nonempty; logical otherwise (§3 reasons 2 and 4).
func (ix *Index) undoInsert(tx *txn.Tx, rec *wal.Record) error {
	pl, err := decodeKeyOp(rec.Payload)
	if err != nil {
		return err
	}
	key, err := storage.DecodeLeafCell(pl.Cell)
	if err != nil {
		return err
	}
	key = key.Clone()

	// Page-oriented attempt against the original page.
	f, err := ix.pool.Fix(rec.Page)
	if err != nil {
		return err
	}
	f.Latch.Acquire(latch.X)
	if f.Page.Type() == storage.PageTypeIndex && f.Page.IsLeaf() {
		pos, perr := leafLowerBound(f.Page, key)
		if perr != nil {
			ix.unfixLatched(f, latch.X)
			return perr
		}
		if pos < f.Page.NSlots() {
			k, kerr := leafKeyAt(f.Page, pos)
			if kerr != nil {
				ix.unfixLatched(f, latch.X)
				return kerr
			}
			if k.Compare(key) == 0 && (f.Page.NSlots() > 1 || rec.Page == ix.root) {
				if ix.stats != nil {
					ix.stats.UndoPageOriented.Add(1)
				}
				flags := f.Page.Flags()
				cpl := keyOpPayload{Index: ix.cfg.ID, Pos: uint16(pos),
					PreFlags: flags, PostFlags: flags, Cell: pl.Cell}
				ix.applyCLR(tx, f, wal.OpIdxDeleteKey, cpl.encode(), rec.PrevLSN, func() error {
					_, derr := f.Page.DeleteCellAt(pos)
					return derr
				})
				ix.unfixLatched(f, latch.X)
				return nil
			}
		}
	}
	ix.unfixLatched(f, latch.X)

	// Logical undo: retraverse from the root (Fig 1).
	if ix.stats != nil {
		ix.stats.UndoLogical.Add(1)
	}
	for attempt := 0; attempt < maxRestarts; attempt++ {
		leaf, err := ix.traverse(tx, key, true)
		if err != nil {
			return err
		}
		done, err := ix.awaitLeafQuiescent(tx, leaf, false)
		if err != nil {
			return err
		}
		if !done {
			continue
		}
		pos, err := leafLowerBound(leaf.Page, key)
		if err != nil {
			ix.unfixLatched(leaf, latch.X)
			return err
		}
		if pos >= leaf.Page.NSlots() {
			ix.unfixLatched(leaf, latch.X)
			return fmt.Errorf("core: undo-insert cannot find key %s", key)
		}
		k, err := leafKeyAt(leaf.Page, pos)
		if err != nil || k.Compare(key) != 0 {
			ix.unfixLatched(leaf, latch.X)
			if err == nil {
				err = fmt.Errorf("core: undo-insert cannot find key %s", key)
			}
			return err
		}
		if leaf.Page.NSlots() == 1 && leaf.ID() != ix.root {
			// Removing the key empties the page: page-deletion SMO (§3
			// reason 4), key-delete CLR first, SMO as regular records.
			leafID := leaf.ID()
			ix.unfixLatched(leaf, latch.X)
			finished, err := ix.deleteEmptyingLeaf(tx, leafID, key, rec)
			if err != nil {
				if errors.Is(err, errSMOConflict) {
					continue
				}
				return err
			}
			if finished {
				return nil
			}
			continue
		}
		flags := leaf.Page.Flags()
		cpl := keyOpPayload{Index: ix.cfg.ID, Pos: uint16(pos), PreFlags: flags, PostFlags: flags, Cell: pl.Cell}
		ix.applyCLR(tx, leaf, wal.OpIdxDeleteKey, cpl.encode(), rec.PrevLSN, func() error {
			_, derr := leaf.Page.DeleteCellAt(pos)
			return derr
		})
		ix.unfixLatched(leaf, latch.X)
		return nil
	}
	return fmt.Errorf("core: undo-insert did not stabilize")
}

// undoDelete reinserts a key the transaction deleted. Page-oriented when
// the original page is still a leaf, the key is bound on it (a lower and
// a higher key present — or it is the root leaf), and there is room;
// logical otherwise (§3 reasons 1, 2 and 3), splitting with regular
// records if the freed space was consumed.
func (ix *Index) undoDelete(tx *txn.Tx, rec *wal.Record) error {
	pl, err := decodeKeyOp(rec.Payload)
	if err != nil {
		return err
	}
	key, err := storage.DecodeLeafCell(pl.Cell)
	if err != nil {
		return err
	}
	key = key.Clone()

	f, err := ix.pool.Fix(rec.Page)
	if err != nil {
		return err
	}
	f.Latch.Acquire(latch.X)
	if f.Page.Type() == storage.PageTypeIndex && f.Page.IsLeaf() {
		pos, perr := leafLowerBound(f.Page, key)
		if perr != nil {
			ix.unfixLatched(f, latch.X)
			return perr
		}
		bound := pos > 0 && pos < f.Page.NSlots()
		if (bound || rec.Page == ix.root) && f.Page.HasRoomFor(len(pl.Cell)) {
			if ix.stats != nil {
				ix.stats.UndoPageOriented.Add(1)
			}
			flags := f.Page.Flags()
			cpl := keyOpPayload{Index: ix.cfg.ID, Pos: uint16(pos), PreFlags: flags, PostFlags: flags, Cell: pl.Cell}
			ix.applyCLR(tx, f, wal.OpIdxInsertKey, cpl.encode(), rec.PrevLSN, func() error {
				return f.Page.InsertCellAt(pos, pl.Cell)
			})
			ix.unfixLatched(f, latch.X)
			return nil
		}
	}
	ix.unfixLatched(f, latch.X)

	// Logical undo through the root.
	if ix.stats != nil {
		ix.stats.UndoLogical.Add(1)
	}
	for attempt := 0; attempt < maxRestarts; attempt++ {
		leaf, err := ix.traverse(tx, key, true)
		if err != nil {
			return err
		}
		done, err := ix.awaitLeafQuiescent(tx, leaf, true)
		if err != nil {
			return err
		}
		if !done {
			continue
		}
		if !leaf.Page.HasRoomFor(len(pl.Cell)) {
			// Freed space was consumed (§3 reason 1): split with regular
			// records inside an NTA, then retry the reinsertion.
			leafID := leaf.ID()
			ix.unfixLatched(leaf, latch.X)
			if err := ix.SplitForInsert(tx, leafID, len(pl.Cell)); err != nil {
				if !errors.Is(err, errSMOConflict) {
					return err
				}
			}
			continue
		}
		pos, err := leafLowerBound(leaf.Page, key)
		if err != nil {
			ix.unfixLatched(leaf, latch.X)
			return err
		}
		if pos < leaf.Page.NSlots() {
			if k, kerr := leafKeyAt(leaf.Page, pos); kerr == nil && k.Compare(key) == 0 {
				ix.unfixLatched(leaf, latch.X)
				return fmt.Errorf("core: undo-delete found key %s already present", key)
			}
		}
		flags := leaf.Page.Flags()
		cpl := keyOpPayload{Index: ix.cfg.ID, Pos: uint16(pos), PreFlags: flags, PostFlags: flags, Cell: pl.Cell}
		ix.applyCLR(tx, leaf, wal.OpIdxInsertKey, cpl.encode(), rec.PrevLSN, func() error {
			return leaf.Page.InsertCellAt(pos, pl.Cell)
		})
		ix.unfixLatched(leaf, latch.X)
		return nil
	}
	return fmt.Errorf("core: undo-delete did not stabilize")
}
