package core

import (
	"testing"

	"ariesim/internal/storage"
)

// TestFetchNextSurvivesPageDelete: a cursor whose leaf is deleted out from
// under it (all its keys removed, page-deletion SMO) repositions through
// the root and continues the scan correctly.
func TestFetchNextSurvivesPageDelete(t *testing.T) {
	e := newEnv(t, 512, 128)
	ix := e.createIndex(Config{ID: 1})
	setup := e.tm.Begin()
	const n = 120
	for i := 0; i < n; i++ {
		e.mustInsert(setup, ix, key(i))
	}
	e.commit(setup)
	if h, _ := ix.Height(); h < 2 {
		t.Fatal("tree too small for a deletable leaf")
	}

	// Open a scan positioned at key(0).
	scan := e.tm.Begin()
	res, cur, err := ix.Fetch(scan, key(0).Val, GE)
	if err != nil || !res.Found {
		t.Fatal(err)
	}
	// Identify the cursor leaf's key range and delete every key on it
	// EXCEPT those at or before the cursor... simpler: delete a dense
	// range ahead of the cursor that spans at least one whole leaf.
	del := e.tm.Begin()
	for i := 20; i < 80; i++ {
		e.mustDelete(del, ix, key(i))
	}
	e.commit(del)
	if e.stats.PageDeletes.Load() == 0 {
		t.Skip("range did not empty a leaf on this geometry")
	}

	// The scan continues: it must see exactly keys 1..19 and 80..119.
	var got []string
	for {
		res, err := ix.FetchNext(scan, cur)
		if err != nil {
			t.Fatal(err)
		}
		if res.EOF {
			break
		}
		got = append(got, string(res.Key.Val))
	}
	want := 19 + 40
	if len(got) != want {
		t.Fatalf("scan saw %d keys, want %d", len(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatal("scan out of order after page deletes")
		}
	}
	e.commit(scan)
}

// TestCursorOnDeletedCurrentKey: §2.3's remark — the current key may have
// been deleted by the SAME transaction; FetchNext must reposition and
// return the true next key, not fail.
func TestCursorOnDeletedCurrentKey(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	setup := e.tm.Begin()
	for i := 0; i < 10; i++ {
		e.mustInsert(setup, ix, key(i))
	}
	e.commit(setup)

	tx := e.tm.Begin()
	res, cur, err := ix.Fetch(tx, key(3).Val, EQ)
	if err != nil || !res.Found {
		t.Fatal(err)
	}
	// The same transaction deletes the current key (its own S lock
	// upgrades to X).
	e.lockRecord(tx, ix, key(3))
	e.mustDelete(tx, ix, key(3))
	next, err := ix.FetchNext(tx, cur)
	if err != nil {
		t.Fatal(err)
	}
	if next.EOF || string(next.Key.Val) != string(key(4).Val) {
		t.Fatalf("FetchNext after own delete = %+v", next)
	}
	e.commit(tx)
}

// TestCursorAcrossWholeTreeChurn scans while the same transaction inserts
// behind and ahead of the cursor: RR semantics allow the transaction to
// see its own inserts ahead of the cursor.
func TestCursorAcrossWholeTreeChurn(t *testing.T) {
	e := newEnv(t, 512, 128)
	ix := e.createIndex(Config{ID: 1})
	setup := e.tm.Begin()
	for i := 0; i < 40; i += 2 {
		e.mustInsert(setup, ix, key(i))
	}
	e.commit(setup)

	tx := e.tm.Begin()
	res, cur, err := ix.Fetch(tx, key(0).Val, GE)
	if err != nil || !res.Found {
		t.Fatal(err)
	}
	seen := 1
	for {
		// Insert an odd key ahead of the cursor every few steps.
		if seen%5 == 0 {
			oddAhead := seen*2 + 21
			if oddAhead < 40 {
				e.lockRecord(tx, ix, key(oddAhead))
				e.mustInsert(tx, ix, key(oddAhead))
			}
		}
		res, err := ix.FetchNext(tx, cur)
		if err != nil {
			t.Fatal(err)
		}
		if res.EOF {
			break
		}
		seen++
		if seen > 100 {
			t.Fatal("scan runaway")
		}
	}
	// 20 original + the odd keys inserted ahead of the cursor position.
	if seen < 20 {
		t.Fatalf("scan saw %d keys, want >= 20", seen)
	}
	e.commit(tx)
	e.checkTree(ix)
}

// TestScanBackwardCompatibilityOfCursorStruct pins cursor accessors.
func TestCursorAccessors(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	e.mustInsert(tx, ix, key(1))
	e.commit(tx)
	r := e.tm.Begin()
	res, cur, err := ix.Fetch(r, key(1).Val, EQ)
	if err != nil || !res.Found {
		t.Fatal(err)
	}
	if cur.EOF() {
		t.Fatal("cursor EOF on found key")
	}
	if cur.Key().Compare(res.Key) != 0 {
		t.Fatal("cursor key mismatch")
	}
	// Cross-index cursors rejected.
	other := e.createIndex(Config{ID: 2})
	if _, err := other.FetchNext(r, cur); err == nil {
		t.Fatal("foreign cursor accepted")
	}
	e.commit(r)
	_ = storage.Key{}
}
