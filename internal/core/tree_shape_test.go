package core

import (
	"testing"

	"ariesim/internal/storage"
)

// TestThreeLevelTree grows the index to height >= 3 (nonleaf splits and a
// nonleaf root split) and validates structure and content.
func TestThreeLevelTree(t *testing.T) {
	e := newEnv(t, 256, 1024) // tiny pages force a tall tree
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	const n = 1500
	for i := 0; i < n; i++ {
		e.mustInsert(tx, ix, key(i))
		if i%300 == 299 {
			e.commit(tx)
			tx = e.tm.Begin()
		}
	}
	e.commit(tx)
	h, err := ix.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 3 {
		t.Fatalf("height = %d, want >= 3", h)
	}
	e.checkTree(ix)
	var want []storage.Key
	for i := 0; i < n; i++ {
		want = append(want, key(i))
	}
	e.expectKeys(ix, want)
}

// TestRootCollapse drains a multi-level tree completely: page deletions
// propagate, the root collapses back toward a leaf, and the tree stays
// correct and reusable at every stage.
func TestRootCollapse(t *testing.T) {
	e := newEnv(t, 256, 1024)
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	const n = 1200
	for i := 0; i < n; i++ {
		e.mustInsert(tx, ix, key(i))
	}
	e.commit(tx)
	h0, _ := ix.Height()
	if h0 < 3 {
		t.Fatalf("setup height = %d", h0)
	}

	del := e.tm.Begin()
	for i := 0; i < n; i++ {
		e.mustDelete(del, ix, key(i))
		if i%400 == 399 {
			e.commit(del)
			e.checkTree(ix)
			del = e.tm.Begin()
		}
	}
	e.commit(del)
	e.checkTree(ix)
	e.expectKeys(ix, nil)
	h1, _ := ix.Height()
	if h1 != 1 {
		t.Fatalf("drained tree height = %d, want 1 (root collapsed to a leaf)", h1)
	}
	// The collapsed tree is fully reusable.
	re := e.tm.Begin()
	for i := 0; i < 300; i++ {
		e.mustInsert(re, ix, key(i))
	}
	e.commit(re)
	e.checkTree(ix)
	got, _ := ix.Dump()
	if len(got) != 300 {
		t.Fatalf("reuse holds %d keys", len(got))
	}
}

// TestFreedPagesAreRecycled drains a region and verifies the FSM hands the
// freed pages back to later splits (space management, §1's "efficient ...
// storage management").
func TestFreedPagesAreRecycled(t *testing.T) {
	e := newEnv(t, 256, 1024)
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	for i := 0; i < 800; i++ {
		e.mustInsert(tx, ix, key(i))
	}
	e.commit(tx)
	grown := e.disk.NumPages() + e.pool.NumBuffered() // rough page budget

	del := e.tm.Begin()
	for i := 0; i < 800; i++ {
		e.mustDelete(del, ix, key(i))
	}
	e.commit(del)

	// Refill with a DIFFERENT key range: allocations must reuse freed bits
	// rather than growing the disk unboundedly.
	re := e.tm.Begin()
	for i := 2000; i < 2800; i++ {
		e.mustInsert(re, ix, key(i))
	}
	e.commit(re)
	e.checkTree(ix)
	if err := e.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Allow slack for variance, but an unbounded allocator would double.
	if e.disk.NumPages() > grown*2 {
		t.Fatalf("disk grew from ~%d to %d pages: freed pages not recycled", grown, e.disk.NumPages())
	}
}

// TestBoundaryKeyDeleteHoldsPOSC verifies Fig 7's boundary rule: deleting
// the smallest or largest key of a page passes through the tree-S POSC
// (counted) and leaves Delete_Bit CLEAR, while a middle delete leaves it
// SET.
func TestBoundaryKeyDeleteHoldsPOSC(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	for i := 0; i < 15; i++ {
		e.mustInsert(tx, ix, key(i))
	}
	e.commit(tx)
	// Everything fits on one leaf (the root): key(0) is its smallest.
	leaf, _, err := ix.LeafOf(key(0))
	if err != nil {
		t.Fatal(err)
	}

	mid := e.tm.Begin()
	e.mustDelete(mid, ix, key(7)) // middle key
	e.commit(mid)
	f, _ := ix.fixLatched(leaf, 0) // latch.S == 0
	db := f.Page.DeleteBit()
	ix.unfixLatched(f, 0)
	if !db {
		t.Fatal("middle delete did not set Delete_Bit")
	}

	poscBefore := e.stats.DeleteBitPOSCs.Load()
	bdry := e.tm.Begin()
	e.mustDelete(bdry, ix, key(0)) // boundary (smallest) key
	e.commit(bdry)
	if e.stats.DeleteBitPOSCs.Load() == poscBefore {
		t.Fatal("boundary delete did not establish a POSC")
	}
	f2, _ := ix.fixLatched(leaf, 0)
	db2 := f2.Page.DeleteBit()
	ix.unfixLatched(f2, 0)
	if db2 {
		t.Fatal("boundary delete under tree-S left Delete_Bit set")
	}
}

// TestDuplicateValuesSpanningLeaves checks nonunique-index behavior when
// one value's instances cross page boundaries: ordering by RID holds and
// the unique check in a parallel unique index still works.
func TestDuplicateValuesSpanningLeaves(t *testing.T) {
	e := newEnv(t, 256, 256)
	ix := e.createIndex(Config{ID: 1})
	tx := e.tm.Begin()
	const dups = 200 // far more than one 256-byte leaf holds
	for i := 0; i < dups; i++ {
		e.mustInsert(tx, ix, storage.Key{Val: []byte("samesame"), RID: storage.RID{Page: storage.PageID(100 + i), Slot: 1}})
	}
	e.commit(tx)
	e.checkTree(ix)
	got, err := ix.Dump()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != dups {
		t.Fatalf("%d duplicates stored", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Compare(got[i]) >= 0 {
			t.Fatal("duplicates out of RID order")
		}
	}
	// A range scan sees every instance exactly once.
	r := e.tm.Begin()
	res, cur, err := ix.Fetch(r, []byte("samesame"), GE)
	if err != nil || !res.Found {
		t.Fatal(err)
	}
	count := 1
	for {
		res, err = ix.FetchNext(r, cur)
		if err != nil {
			t.Fatal(err)
		}
		if res.EOF {
			break
		}
		count++
	}
	if count != dups {
		t.Fatalf("scan saw %d instances", count)
	}
	e.commit(r)
}

// TestUniqueSeparatorsAreValueOnly is the regression test for a uniqueness
// hole the crash-torture harness found: in a unique index, a leaf split
// must promote a VALUE-ONLY separator (RID zeroed). A full-key separator
// outlives its source key, and a later reincarnation of the value with a
// smaller RID then lives LEFT of the separator while the §2.4 duplicate
// probe for a larger-RID insert routes RIGHT of it — admitting a duplicate.
func TestUniqueSeparatorsAreValueOnly(t *testing.T) {
	e := newEnv(t, 512, 128)
	ix := e.createIndex(Config{ID: 1, Unique: true})
	tx := e.tm.Begin()
	for i := 0; i < 200; i++ {
		// Large, varied RIDs so a full-key separator would be visible.
		e.mustInsert(tx, ix, storage.Key{
			Val: key(i).Val,
			RID: storage.RID{Page: storage.PageID(5000 + i*13), Slot: uint16(i % 90)},
		})
	}
	e.commit(tx)
	if h, _ := ix.Height(); h < 2 {
		t.Fatal("no splits occurred")
	}
	// Walk every nonleaf page: every separator must carry a nil RID.
	var walk func(pid storage.PageID) error
	walk = func(pid storage.PageID) error {
		f, err := ix.fixLatched(pid, 0)
		if err != nil {
			return err
		}
		defer ix.unfixLatched(f, 0)
		if f.Page.IsLeaf() {
			return nil
		}
		for i := 0; i < f.Page.NSlots(); i++ {
			hk, child, err := storage.DecodeNodeCell(f.Page.MustCell(i))
			if err != nil {
				return err
			}
			if hk.RID != storage.NilRID {
				t.Errorf("nonleaf %d separator %d carries RID %v (must be value-only in a unique index)", pid, i, hk.RID)
			}
			if err := walk(child); err != nil {
				return err
			}
		}
		return walk(f.Page.Rightmost())
	}
	if err := walk(ix.Root()); err != nil {
		t.Fatal(err)
	}

	// The scenario end to end: delete a value, reincarnate it with a
	// SMALLER RID, then try a larger-RID duplicate — must be rejected.
	mutate := e.tm.Begin()
	victim := storage.Key{Val: key(100).Val, RID: storage.RID{Page: storage.PageID(5000 + 100*13), Slot: uint16(100 % 90)}}
	e.lockRecord(mutate, ix, victim)
	e.mustDelete(mutate, ix, victim)
	reborn := storage.Key{Val: key(100).Val, RID: storage.RID{Page: 3, Slot: 1}}
	e.lockRecord(mutate, ix, reborn)
	e.mustInsert(mutate, ix, reborn)
	e.commit(mutate)

	dupTx := e.tm.Begin()
	dup := storage.Key{Val: key(100).Val, RID: storage.RID{Page: 999999, Slot: 1}}
	err := ix.Insert(dupTx, dup)
	if err == nil {
		t.Fatal("duplicate value admitted into a unique index")
	}
	_ = dupTx.Rollback()
	e.checkTree(ix)
}
