package core

import (
	"errors"
	"testing"
	"time"

	"ariesim/internal/latch"
	"ariesim/internal/lock"
	"ariesim/internal/storage"
	"ariesim/internal/trace"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

// lockRecord plays the record manager's part under data-only locking: the
// transaction operating on a record holds its commit-duration X lock
// before touching the index (paper §2.1).
func (e *env) lockRecord(tx *txn.Tx, ix *Index, k storage.Key) {
	e.t.Helper()
	if err := tx.Lock(ix.keyLockName(k), lock.X, lock.Commit, false); err != nil {
		e.t.Fatal(err)
	}
}

// TestFigure1LogicalUndo reproduces the paper's Figure 1: T1 inserts K8
// into page P1; T2's inserts split P1, moving K8 to a new page P2; T1's
// rollback must retraverse the tree (logical undo) and write its CLR
// against P2, not P1.
func TestFigure1LogicalUndo(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	setup := e.tm.Begin()
	for i := 0; i < 10; i++ {
		e.mustInsert(setup, ix, key(i*10))
	}
	e.commit(setup)

	t1 := e.tm.Begin()
	k8 := key(85) // a high key, destined for the right half of a split
	e.lockRecord(t1, ix, k8)
	e.mustInsert(t1, ix, k8)
	p1, present, err := ix.LeafOf(k8)
	if err != nil || !present {
		t.Fatalf("K8 not present after insert: %v", err)
	}

	// T2 splits P1 by volume.
	t2 := e.tm.Begin()
	for i := 0; i < 40; i++ {
		e.mustInsert(t2, ix, key(i+1000)) // distinct values, same leaf region via ordering
	}
	e.commit(t2)
	p2, present, err := ix.LeafOf(k8)
	if err != nil || !present {
		t.Fatalf("K8 lost after T2: %v", err)
	}
	if p2 == p1 {
		t.Skipf("K8 did not move (still on page %d); scenario needs a split of its leaf", p1)
	}

	before := e.stats.Snap()
	if err := t1.Rollback(); err != nil {
		t.Fatal(err)
	}
	d := trace.Diff(before, e.stats.Snap())
	if d.UndoLogical != 1 {
		t.Fatalf("logical undos = %d, want 1", d.UndoLogical)
	}
	// The CLR compensating the insert targets P2.
	var clr *wal.Record
	for _, r := range e.log.Records(1) {
		if r.Type == wal.RecCLR && r.Op == wal.OpIdxDeleteKey && r.TxID == t1.ID {
			clr = r
		}
	}
	if clr == nil {
		t.Fatal("no delete CLR written by T1")
	}
	if clr.Page != p2 {
		t.Fatalf("CLR against page %d, want P2=%d (P1=%d)", clr.Page, p2, p1)
	}
	if _, found, _ := ix.LeafOf(k8); found {
		t.Fatal("K8 survived rollback")
	}
	e.checkTree(ix)
}

// TestFigure2LockTable regenerates the paper's Figure 2 locking summary
// from observed lock calls, for both data-only and index-specific
// protocols.
func TestFigure2LockTable(t *testing.T) {
	type cell struct {
		space lock.Space
		mode  lock.Mode
		dur   lock.Duration
		count uint64
	}
	measure := func(proto Protocol, op func(*env, *Index, *txn.Tx)) []cell {
		e := newEnv(t, 512, 64)
		ix := e.createIndex(Config{ID: 1, Protocol: proto})
		setup := e.tm.Begin()
		for i := 0; i < 10; i++ {
			e.mustInsert(setup, ix, key(i*10))
		}
		e.commit(setup)
		tx := e.tm.Begin()
		before := e.stats.Snap()
		op(e, ix, tx)
		d := trace.Diff(before, e.stats.Snap())
		e.commit(tx)
		var out []cell
		for s := lock.SpaceTable; s <= lock.SpaceTree; s++ {
			for m := lock.ModeNone; m <= lock.X; m++ {
				for dur := lock.Instant; dur <= lock.Commit; dur++ {
					if n := d.LockCalls[int(s)][int(m)][int(dur)]; n > 0 {
						out = append(out, cell{s, m, dur, n})
					}
				}
			}
		}
		return out
	}
	expect := func(name string, got []cell, want []cell) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d lock cells %v, want %d %v", name, len(got), got, len(want), want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: cell %d = %+v, want %+v", name, i, got[i], want[i])
			}
		}
	}

	// FETCH: S commit on the current key — one lock, nothing else.
	expect("fetch/data-only",
		measure(DataOnly, func(e *env, ix *Index, tx *txn.Tx) {
			if res, _, err := ix.Fetch(tx, key(50).Val, EQ); err != nil || !res.Found {
				t.Fatalf("fetch: %+v %v", res, err)
			}
		}),
		[]cell{{lock.SpaceRecord, lock.S, lock.Commit, 1}})

	// INSERT, data-only: X instant on the next key — and nothing on the
	// current key (the record manager's lock covers it).
	expect("insert/data-only",
		measure(DataOnly, func(e *env, ix *Index, tx *txn.Tx) {
			e.mustInsert(tx, ix, key(55))
		}),
		[]cell{{lock.SpaceRecord, lock.X, lock.Instant, 1}})

	// DELETE, data-only: X commit on the next key only.
	expect("delete/data-only",
		measure(DataOnly, func(e *env, ix *Index, tx *txn.Tx) {
			e.mustDelete(tx, ix, key(50))
		}),
		[]cell{{lock.SpaceRecord, lock.X, lock.Commit, 1}})

	// INSERT, index-specific: X instant next key + X commit current key.
	expect("insert/index-specific",
		measure(IndexSpecific, func(e *env, ix *Index, tx *txn.Tx) {
			e.mustInsert(tx, ix, key(55))
		}),
		[]cell{
			{lock.SpaceKeyValue, lock.X, lock.Instant, 1},
			{lock.SpaceKeyValue, lock.X, lock.Commit, 1},
		})

	// DELETE, index-specific: X instant current key + X commit next key.
	expect("delete/index-specific",
		measure(IndexSpecific, func(e *env, ix *Index, tx *txn.Tx) {
			e.mustDelete(tx, ix, key(50))
		}),
		[]cell{
			{lock.SpaceKeyValue, lock.X, lock.Instant, 1},
			{lock.SpaceKeyValue, lock.X, lock.Commit, 1},
		})

	// FETCH past the end: the EOF lock stands in for the next key.
	expect("fetch-eof/data-only",
		measure(DataOnly, func(e *env, ix *Index, tx *txn.Tx) {
			if res, _, err := ix.Fetch(tx, []byte("zzz"), EQ); err != nil || !res.EOF {
				t.Fatalf("eof fetch: %+v %v", res, err)
			}
		}),
		[]cell{{lock.SpaceEOF, lock.S, lock.Commit, 1}})
}

// TestFigure3SMOInsertInteraction reproduces Figure 3's hazard: a leaf
// carries SM_Bit=1 from an SMO that is still in progress (tree latch
// held). An insert reaching that leaf must wait for the SMO to finish —
// even when it is unambiguous that this is the right leaf.
func TestFigure3SMOInsertInteraction(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	setup := e.tm.Begin()
	for i := 0; i < 5; i++ {
		e.mustInsert(setup, ix, key(i*10))
	}
	e.commit(setup)

	// Simulate T1 mid-SMO: tree latch held in X, SM_Bit set on the leaf.
	ix.treeLatch.Acquire(latch.X)
	leafID, _, err := ix.LeafOf(key(20))
	if err != nil {
		t.Fatal(err)
	}
	f, err := ix.fixLatched(leafID, latch.X)
	if err != nil {
		t.Fatal(err)
	}
	f.Page.SetSMBit(true)
	ix.unfixLatched(f, latch.X)

	// T2's insert of a key that belongs on that leaf must block.
	t2 := e.tm.Begin()
	doneCh := make(chan error, 1)
	go func() {
		doneCh <- ix.Insert(t2, key(25))
	}()
	select {
	case err := <-doneCh:
		t.Fatalf("insert proceeded during the SMO: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// T1 completes its SMO: the tree latch is released.
	ix.treeLatch.Release(latch.X)
	select {
	case err := <-doneCh:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("insert never resumed after SMO completion")
	}
	e.commit(t2)
	// The waiting insert reset the bit once the SMO was done.
	f2, _ := ix.fixLatched(leafID, latch.S)
	sm := f2.Page.SMBit()
	ix.unfixLatched(f2, latch.S)
	if sm {
		t.Fatal("SM_Bit not reset by the delayed insert")
	}
	if e.stats.SMBitWaits.Load() == 0 {
		t.Fatal("SM_Bit wait not recorded")
	}
	e.checkTree(ix)
}

// TestFigure9SplitLogSequence checks the exact log shape of a page split
// (Figure 9): the SMO's records form a nested top action whose dummy CLR
// points at the transaction's last pre-SMO record, and the key insert that
// necessitated the split is logged only after the dummy CLR.
func TestFigure9SplitLogSequence(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	setup := e.tm.Begin()
	i := 0
	for e.stats.PageSplits.Load() == 0 {
		e.mustInsert(setup, ix, key(i))
		i++
		if i > 1000 {
			t.Fatal("no split after 1000 inserts")
		}
	}
	e.commit(setup)

	// The splitting transaction is the one that inserted the last key.
	recs := e.log.Records(1)
	var dummyIdx, firstSMOIdx, insertIdx = -1, -1, -1
	for j, r := range recs {
		switch {
		case r.Type == wal.RecDummyCLR && dummyIdx == -1:
			dummyIdx = j
		case r.Op == wal.OpIdxFormat && j > 0 && firstSMOIdx == -1 && r.Page != ix.Root():
			firstSMOIdx = j
		}
	}
	if dummyIdx == -1 || firstSMOIdx == -1 {
		t.Fatalf("log lacks SMO structure: dummy=%d format=%d", dummyIdx, firstSMOIdx)
	}
	// The key insert that caused the split appears after the dummy CLR.
	for j := dummyIdx + 1; j < len(recs); j++ {
		if recs[j].Op == wal.OpIdxInsertKey {
			insertIdx = j
			break
		}
	}
	if insertIdx == -1 {
		t.Fatal("no insert logged after the dummy CLR")
	}
	// The dummy CLR's UndoNxtLSN points before the SMO's first record
	// (it bypasses the whole nested top action).
	dummy := recs[dummyIdx]
	if dummy.UndoNxtLSN >= recs[firstSMOIdx].LSN {
		t.Fatalf("dummy CLR UndoNxtLSN %d does not bypass the SMO starting at %d",
			dummy.UndoNxtLSN, recs[firstSMOIdx].LSN)
	}
	// And the SMO records are regular (undoable) updates, not CLRs.
	for j := firstSMOIdx; j < dummyIdx; j++ {
		if recs[j].IsCLR() {
			t.Fatalf("SMO record %d at %s is a CLR", j, recs[j])
		}
	}
}

// TestFigure10PageDeleteLogSequence checks the page-deletion log shape
// (Figure 10): the key delete is logged first, outside the nested top
// action, and the dummy CLR's UndoNxtLSN points exactly at it.
func TestFigure10PageDeleteLogSequence(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	setup := e.tm.Begin()
	for i := 0; i < 120; i++ {
		e.mustInsert(setup, ix, key(i))
	}
	e.commit(setup)

	tx := e.tm.Begin()
	i := 0
	for e.stats.PageDeletes.Load() == 0 && i < 120 {
		e.mustDelete(tx, ix, key(i))
		i++
	}
	if e.stats.PageDeletes.Load() == 0 {
		t.Fatal("no page delete triggered")
	}
	e.commit(tx)

	recs := e.log.Records(1)
	// Find the first dummy CLR of tx and the key delete preceding it.
	for j, r := range recs {
		if r.Type == wal.RecDummyCLR && r.TxID == tx.ID {
			// Walk back to the nearest preceding key-delete by this tx.
			var keyDel *wal.Record
			for k := j - 1; k >= 0; k-- {
				if recs[k].TxID == tx.ID && recs[k].Op == wal.OpIdxDeleteKey {
					keyDel = recs[k]
					break
				}
			}
			if keyDel == nil {
				t.Fatal("no key delete before the dummy CLR")
			}
			if r.UndoNxtLSN != keyDel.LSN {
				t.Fatalf("dummy CLR UndoNxtLSN = %d, want the key delete at %d", r.UndoNxtLSN, keyDel.LSN)
			}
			return
		}
	}
	t.Fatal("no dummy CLR found for the deleting transaction")
}

// TestPhantomPrevented: T1 fetches a missing value (locking the next key);
// T2's insert of exactly that value must block until T1 ends — repeatable
// read (§2.2, §2.4).
func TestPhantomPrevented(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	setup := e.tm.Begin()
	e.mustInsert(setup, ix, key(10))
	e.mustInsert(setup, ix, key(20))
	e.commit(setup)

	t1 := e.tm.Begin()
	res, _, err := ix.Fetch(t1, key(15).Val, EQ)
	if err != nil || res.Found {
		t.Fatalf("fetch: %+v %v", res, err)
	}

	t2 := e.tm.Begin()
	e.lockRecord(t2, ix, key(15))
	done := make(chan error, 1)
	go func() { done <- ix.Insert(t2, key(15)) }()
	select {
	case err := <-done:
		t.Fatalf("phantom inserted while reader active: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	e.commit(t1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("insert never unblocked")
	}
	e.commit(t2)
}

// TestFetchBlocksOnUncommittedInsert: with data-only locking a fetch of an
// uncommitted key blocks on the inserter's record lock.
func TestFetchBlocksOnUncommittedInsert(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	t1 := e.tm.Begin()
	e.lockRecord(t1, ix, key(5))
	e.mustInsert(t1, ix, key(5))

	t2 := e.tm.Begin()
	done := make(chan struct{})
	go func() {
		res, _, err := ix.Fetch(t2, key(5).Val, EQ)
		if err != nil || !res.Found {
			t.Errorf("fetch after commit: %+v %v", res, err)
		}
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("fetch read an uncommitted insert without blocking")
	case <-time.After(50 * time.Millisecond):
	}
	e.commit(t1)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("fetch never unblocked")
	}
	e.commit(t2)
}

// TestUniqueUncommittedDelete: in a unique index, an insert of a value
// whose deletion is uncommitted must wait; if the deleter rolls back the
// insert fails with a unique violation, if it commits the insert succeeds
// (§1.1 question 10, §2.4).
func TestUniqueUncommittedDelete(t *testing.T) {
	run := func(t *testing.T, commitDeleter bool) {
		e := newEnv(t, 512, 64)
		ix := e.createIndex(Config{ID: 1, Unique: true})
		v := []byte("victim")
		orig := storage.Key{Val: v, RID: storage.RID{Page: 100, Slot: 1}}
		setup := e.tm.Begin()
		e.mustInsert(setup, ix, orig)
		e.mustInsert(setup, ix, key(900)) // the next key the delete will X-lock
		e.commit(setup)

		t1 := e.tm.Begin()
		e.lockRecord(t1, ix, orig)
		e.mustDelete(t1, ix, orig)

		t2 := e.tm.Begin()
		reborn := storage.Key{Val: v, RID: storage.RID{Page: 200, Slot: 2}}
		e.lockRecord(t2, ix, reborn)
		done := make(chan error, 1)
		go func() { done <- ix.Insert(t2, reborn) }()
		select {
		case err := <-done:
			t.Fatalf("insert did not trip on the uncommitted delete: %v", err)
		case <-time.After(50 * time.Millisecond):
		}
		if commitDeleter {
			e.commit(t1)
			if err := <-done; err != nil {
				t.Fatalf("insert after committed delete: %v", err)
			}
			e.commit(t2)
		} else {
			if err := t1.Rollback(); err != nil {
				t.Fatal(err)
			}
			if err := <-done; !errors.Is(err, ErrDuplicate) {
				t.Fatalf("insert after rolled-back delete: %v, want unique violation", err)
			}
			_ = t2.Rollback()
		}
		e.checkTree(ix)
	}
	t.Run("deleter-commits", func(t *testing.T) { run(t, true) })
	t.Run("deleter-rolls-back", func(t *testing.T) { run(t, false) })
}

// TestFetchNextRepositionsAfterLeafChange: a cursor survives its leaf
// being reshaped (here: split) by repositioning via the remembered key
// (§2.3).
func TestFetchNextRepositionsAfterLeafChange(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	setup := e.tm.Begin()
	for i := 0; i < 20; i++ {
		e.mustInsert(setup, ix, key(i))
	}
	e.commit(setup)

	t1 := e.tm.Begin()
	res, cur, err := ix.Fetch(t1, key(0).Val, GE)
	if err != nil || !res.Found {
		t.Fatal(err)
	}
	// Another transaction splits the cursor's leaf.
	t2 := e.tm.Begin()
	for i := 100; i < 160; i++ {
		e.mustInsert(t2, ix, key(i))
	}
	e.commit(t2)

	// The scan must still see every original key in order.
	got := []storage.Key{res.Key}
	for {
		res, err := ix.FetchNext(t1, cur)
		if err != nil {
			t.Fatal(err)
		}
		if res.EOF {
			break
		}
		got = append(got, res.Key)
	}
	if len(got) != 20+60 {
		t.Fatalf("scan saw %d keys, want 80", len(got))
	}
	if e.stats.LeafReposition.Load() == 0 {
		t.Fatal("no repositioning recorded despite leaf change")
	}
	e.commit(t1)
}

// TestTraversalAmbiguityWaits: a traverser whose probe exceeds a nonleaf
// page's high keys while SM_Bit=1 must wait for the SMO (Fig 4).
func TestTraversalAmbiguityWaits(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1})
	setup := e.tm.Begin()
	for i := 0; i < 300; i++ {
		e.mustInsert(setup, ix, key(i))
	}
	e.commit(setup)
	if h, _ := ix.Height(); h < 2 {
		t.Fatal("tree too short for the scenario")
	}

	// Mark the root ambiguous and hold the tree latch (SMO in progress).
	ix.treeLatch.Acquire(latch.X)
	f, _ := ix.fixLatched(ix.Root(), latch.X)
	f.Page.SetSMBit(true)
	ix.unfixLatched(f, latch.X)

	t1 := e.tm.Begin()
	done := make(chan error, 1)
	go func() {
		// A probe beyond every high key hits the ambiguity test.
		_, _, err := ix.Fetch(t1, []byte("zzzzzz"), EQ)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("ambiguous traversal proceeded: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	// Finish the "SMO": clear the bit, release the latch.
	f2, _ := ix.fixLatched(ix.Root(), latch.X)
	f2.Page.SetSMBit(false)
	ix.unfixLatched(f2, latch.X)
	ix.treeLatch.Release(latch.X)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if e.stats.AmbiguityRestarts.Load() == 0 {
		t.Fatal("ambiguity restart not recorded")
	}
	e.commit(t1)
}
