package core

import (
	"fmt"

	"ariesim/internal/buffer"
	"ariesim/internal/latch"
	"ariesim/internal/lock"
	"ariesim/internal/storage"
	"ariesim/internal/txn"
)

// SearchOp is the starting condition of a Fetch (paper §1.1: =, >=, >).
type SearchOp int

const (
	// EQ fetches the key equal to the value (not-found locks the next key).
	EQ SearchOp = iota
	// GE fetches the smallest key >= the value.
	GE
	// GT fetches the smallest key > the value.
	GT
)

func (o SearchOp) String() string {
	switch o {
	case EQ:
		return "="
	case GE:
		return ">="
	default:
		return ">"
	}
}

// FetchResult reports a fetch outcome. Key is meaningful when Found; on
// not-found with a higher key present, Key holds that next key (the one
// whose lock now protects the not-found observation).
type FetchResult struct {
	Key   storage.Key
	Found bool
	// EOF reports that the search ran off the right edge of the index and
	// the observation is protected by the index's EOF lock.
	EOF bool
}

// Cursor is an open range scan position: the leaf, its LSN at positioning
// time, the slot, and the (cloned) current key. FetchNext revalidates via
// the LSN and repositions through the root when the leaf changed (§2.3).
type Cursor struct {
	ix   *Index
	leaf storage.PageID
	lsn  uint64
	pos  int
	key  storage.Key
	eof  bool
}

// Key returns the cursor's current key.
func (c *Cursor) Key() storage.Key { return c.key }

// EOF reports that the cursor ran off the index.
func (c *Cursor) EOF() bool { return c.eof }

// found is an internal positioning result: the S-latched frame holding the
// located key, or eof.
type found struct {
	frame *buffer.Frame
	pos   int
	key   storage.Key // aliases the page; clone before unlatching
	eof   bool
}

// findFrom locates the first key >= probe starting at the S-latched leaf,
// walking the forward chain with latch coupling as needed. On eof the
// input latch is released; otherwise the returned frame (possibly a
// different leaf) is S-latched.
func (ix *Index) findFrom(leaf *buffer.Frame, probe storage.Key) (found, error) {
	cur := leaf
	for hop := 0; hop < maxRestarts; hop++ {
		pos, err := leafLowerBound(cur.Page, probe)
		if err != nil {
			ix.unfixLatched(cur, latch.S)
			return found{}, err
		}
		if pos < cur.Page.NSlots() {
			k, err := leafKeyAt(cur.Page, pos)
			if err != nil {
				ix.unfixLatched(cur, latch.S)
				return found{}, err
			}
			return found{frame: cur, pos: pos, key: k}, nil
		}
		next := cur.Page.Next()
		if next == storage.InvalidPageID {
			ix.unfixLatched(cur, latch.S)
			return found{eof: true}, nil
		}
		nf, err := ix.fixLatched(next, latch.S)
		if err != nil {
			ix.unfixLatched(cur, latch.S)
			return found{}, err
		}
		ix.unfixLatched(cur, latch.S)
		cur = nf
	}
	ix.unfixLatched(cur, latch.S)
	return found{}, fmt.Errorf("core: leaf chain walk did not terminate")
}

// lockNameForFound names the S lock protecting the positioning outcome:
// the found key's lock, or the EOF lock past the right edge.
func (ix *Index) lockNameForFound(f found) lock.Name {
	if f.eof {
		return ix.eofLockName()
	}
	return ix.keyLockName(f.key)
}

// probeFor maps (value, op) to the full-key search probe.
func probeFor(val []byte, op SearchOp) storage.Key {
	if op == GT {
		return storage.MaxKeyFor(val)
	}
	return storage.MinKeyFor(val)
}

// probeAfter is the smallest full key strictly greater than k.
func probeAfter(k storage.Key) storage.Key {
	rid := k.RID
	if rid.Slot != ^uint16(0) {
		rid.Slot++
	} else {
		rid.Page++
		rid.Slot = 0
	}
	return storage.Key{Val: k.Val, RID: rid}
}

// Fetch implements the Fig 5 action routine: position at the requested or
// next higher key, S-lock it for commit duration while holding the leaf
// latch (conditionally; on denial release latches, wait, revalidate by
// re-descending), and report found / not-found / EOF. The returned cursor
// supports FetchNext range scans.
func (ix *Index) Fetch(tx *txn.Tx, val []byte, op SearchOp) (FetchResult, *Cursor, error) {
	return ix.fetchFrom(tx, probeFor(val, op), lock.S, acceptFor(val, op))
}

// FetchForUpdate is Fetch with the located key locked X for commit
// duration up front: the positioning half of a delete or update. Taking X
// directly — instead of fetching S and upgrading during the delete —
// avoids the classic conversion deadlock where two updaters of the same
// key both hold S and each waits for the other to release it.
func (ix *Index) FetchForUpdate(tx *txn.Tx, val []byte, op SearchOp) (FetchResult, *Cursor, error) {
	return ix.fetchFrom(tx, probeFor(val, op), lock.X, acceptFor(val, op))
}

// acceptFor decides whether a located key satisfies (val, op).
func acceptFor(val []byte, op SearchOp) func(storage.Key) bool {
	return func(k storage.Key) bool {
		if op != EQ {
			return true
		}
		return string(k.Val) == string(val)
	}
}

// fetchFrom positions at the first key >= probe and locks the outcome in
// mode. accept decides whether the located key counts as "found".
func (ix *Index) fetchFrom(tx *txn.Tx, probe storage.Key, mode lock.Mode, accept func(storage.Key) bool) (FetchResult, *Cursor, error) {
	for attempt := 0; attempt < maxRestarts; attempt++ {
		leaf, err := ix.traverse(tx, probe, false)
		if err != nil {
			return FetchResult{}, nil, err
		}
		fnd, err := ix.findFrom(leaf, probe)
		if err != nil {
			return FetchResult{}, nil, err
		}
		res, cur, done, err := ix.lockPositioned(tx, fnd, mode, accept)
		if err != nil {
			return FetchResult{}, nil, err
		}
		if done {
			return res, cur, nil
		}
	}
	return FetchResult{}, nil, fmt.Errorf("core: fetch on index %d did not stabilize", ix.cfg.ID)
}

// lockPositioned runs the conditional-then-unconditional lock protocol on
// a positioning outcome. done=false means the latch was dropped for an
// unconditional wait and the caller must reposition.
func (ix *Index) lockPositioned(tx *txn.Tx, fnd found, mode lock.Mode, accept func(storage.Key) bool) (FetchResult, *Cursor, bool, error) {
	names := []lock.Name{ix.lockNameForFound(fnd)}
	if ix.cfg.Protocol == SystemR && !fnd.eof {
		// System R readers also lock the index page to commit.
		names = append(names, ix.pageLockName(fnd.frame.ID()))
	}
	for i, name := range names {
		if err := tx.Lock(name, mode, lock.Commit, true); err == nil {
			continue
		}
		// Denied while latched: release every latch, wait unconditionally,
		// then revalidate by repositioning (the conservative extra locks
		// are retained; §2.2).
		_ = i
		if !fnd.eof {
			ix.unfixLatched(fnd.frame, latch.S)
		}
		if err := tx.Lock(name, mode, lock.Commit, false); err != nil {
			return FetchResult{}, nil, false, err
		}
		return FetchResult{}, nil, false, nil
	}
	res, cur := ix.sealFound(fnd, accept)
	return res, cur, true, nil
}

// sealFound clones the outcome into a result + cursor and releases the
// latch.
func (ix *Index) sealFound(fnd found, accept func(storage.Key) bool) (FetchResult, *Cursor) {
	if fnd.eof {
		return FetchResult{EOF: true}, &Cursor{ix: ix, eof: true}
	}
	k := fnd.key.Clone()
	cur := &Cursor{ix: ix, leaf: fnd.frame.ID(), lsn: fnd.frame.Page.LSN(), pos: fnd.pos, key: k}
	ix.unfixLatched(fnd.frame, latch.S)
	return FetchResult{Key: k, Found: accept(k)}, cur
}

// FetchNext advances an open scan to the next key (§2.3): if the leaf's
// LSN still matches the cursor, the next candidate is adjacent; otherwise
// the scan repositions (possibly through the root) at the first key
// greater than the cursor's. The located key is locked like a Fetch.
func (ix *Index) FetchNext(tx *txn.Tx, c *Cursor) (FetchResult, error) {
	if c.ix != ix {
		return FetchResult{}, fmt.Errorf("core: cursor belongs to index %d", c.ix.cfg.ID)
	}
	if c.eof {
		return FetchResult{EOF: true}, nil
	}
	probe := probeAfter(c.key)
	for attempt := 0; attempt < maxRestarts; attempt++ {
		f, err := ix.fixLatched(c.leaf, latch.S)
		if err != nil {
			return FetchResult{}, err
		}
		var fnd found
		if f.Page.Type() == storage.PageTypeIndex && f.Page.IsLeaf() && f.Page.LSN() == c.lsn {
			fnd, err = ix.findFrom(f, probe)
		} else {
			// The leaf changed under the cursor: reposition from the root.
			if ix.stats != nil {
				ix.stats.LeafReposition.Add(1)
			}
			ix.unfixLatched(f, latch.S)
			var leaf *buffer.Frame
			leaf, err = ix.traverse(tx, probe, false)
			if err != nil {
				return FetchResult{}, err
			}
			fnd, err = ix.findFrom(leaf, probe)
		}
		if err != nil {
			return FetchResult{}, err
		}
		res, ncur, done, err := ix.lockPositioned(tx, fnd, lock.S, func(storage.Key) bool { return true })
		if err != nil {
			return FetchResult{}, err
		}
		if done {
			*c = *ncur
			return res, nil
		}
	}
	return FetchResult{}, fmt.Errorf("core: fetch-next on index %d did not stabilize", ix.cfg.ID)
}

// FetchPrefix positions at the first key whose value starts with prefix
// (the paper's §1.1 "partial key value" starting condition). Found is true
// when such a key exists; otherwise the next higher key (or EOF) is locked
// exactly as in Fetch, so the absence is repeatable.
func (ix *Index) FetchPrefix(tx *txn.Tx, prefix []byte) (FetchResult, *Cursor, error) {
	return ix.fetchFrom(tx, storage.MinKeyFor(prefix), lock.S, func(k storage.Key) bool {
		return len(k.Val) >= len(prefix) && string(k.Val[:len(prefix)]) == string(prefix)
	})
}

// FetchCS is a cursor-stability (degree 2) fetch: the current key is
// locked in S for manual duration and released before returning, so the
// read observes only committed data but does not inhibit later writers.
// Keys the transaction itself wrote (already X-locked) stay locked.
func (ix *Index) FetchCS(tx *txn.Tx, val []byte, op SearchOp) (FetchResult, error) {
	for attempt := 0; attempt < maxRestarts; attempt++ {
		probe := probeFor(val, op)
		leaf, err := ix.traverse(tx, probe, false)
		if err != nil {
			return FetchResult{}, err
		}
		fnd, err := ix.findFrom(leaf, probe)
		if err != nil {
			return FetchResult{}, err
		}
		name := ix.lockNameForFound(fnd)
		hadLock := tx.HoldsLock(name)
		if err := tx.Lock(name, lock.S, lock.Manual, true); err != nil {
			if !fnd.eof {
				ix.unfixLatched(fnd.frame, latch.S)
			}
			if err := tx.Lock(name, lock.S, lock.Manual, false); err != nil {
				return FetchResult{}, err
			}
			if !hadLock {
				tx.Unlock(name)
			}
			continue // reposition
		}
		res, _ := ix.sealFound(fnd, func(k storage.Key) bool {
			return op != EQ || string(k.Val) == string(val)
		})
		if !hadLock {
			tx.Unlock(name)
		}
		return res, nil
	}
	return FetchResult{}, fmt.Errorf("core: CS fetch on index %d did not stabilize", ix.cfg.ID)
}
