package core

import (
	"testing"
	"time"

	"ariesim/internal/lock"
	"ariesim/internal/storage"
	"ariesim/internal/trace"
	"ariesim/internal/txn"
)

// countLocks runs op in a fresh transaction on a primed index and returns
// the per-space lock-call deltas.
func countLocks(t *testing.T, proto Protocol, op func(*env, *Index, *txn.Tx)) map[lock.Space]uint64 {
	t.Helper()
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1, Protocol: proto})
	setup := e.tm.Begin()
	for i := 0; i < 10; i++ {
		e.mustInsert(setup, ix, key(i*10))
	}
	e.commit(setup)
	tx := e.tm.Begin()
	before := e.stats.Snap()
	op(e, ix, tx)
	d := trace.Diff(before, e.stats.Snap())
	e.commit(tx)
	out := map[lock.Space]uint64{}
	for s := 0; s < trace.MaxSpaces; s++ {
		var n uint64
		for m := 0; m < trace.MaxModes; m++ {
			for dur := 0; dur < trace.MaxDurations; dur++ {
				n += d.LockCalls[s][m][dur]
			}
		}
		if n > 0 {
			out[lock.Space(s)] = n
		}
	}
	return out
}

func total(m map[lock.Space]uint64) uint64 {
	var t uint64
	for _, n := range m {
		t += n
	}
	return t
}

// TestLockCountComparison quantifies the paper's §1/§5 claim: per
// single-record operation, ARIES/IM (data-only) acquires fewer index locks
// than ARIES/KVL, which acquires fewer than System R.
func TestLockCountComparison(t *testing.T) {
	insert := func(e *env, ix *Index, tx *txn.Tx) { e.mustInsert(tx, ix, key(55)) }
	delete_ := func(e *env, ix *Index, tx *txn.Tx) { e.mustDelete(tx, ix, key(50)) }
	fetch := func(e *env, ix *Index, tx *txn.Tx) {
		if res, _, err := ix.Fetch(tx, key(50).Val, EQ); err != nil || !res.Found {
			t.Fatalf("fetch: %+v %v", res, err)
		}
	}
	for _, tc := range []struct {
		name string
		op   func(*env, *Index, *txn.Tx)
	}{{"insert", insert}, {"delete", delete_}, {"fetch", fetch}} {
		im := total(countLocks(t, DataOnly, tc.op))
		kv := total(countLocks(t, KVL, tc.op))
		sr := total(countLocks(t, SystemR, tc.op))
		t.Logf("%s: ARIES/IM=%d ARIES/KVL=%d SystemR=%d lock calls", tc.name, im, kv, sr)
		if !(im <= kv && kv <= sr) {
			t.Errorf("%s: lock ordering violated: IM=%d KVL=%d SysR=%d", tc.name, im, kv, sr)
		}
		if tc.name != "fetch" && im >= sr {
			t.Errorf("%s: System R not strictly worse than ARIES/IM", tc.name)
		}
	}
}

// TestKVLInsertOfExistingValueTakesIX checks the KVL fast path: inserting
// another instance of an existing value takes a commit-duration IX on the
// value and no next-key lock.
func TestKVLInsertOfExistingValueTakesIX(t *testing.T) {
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1, Protocol: KVL})
	setup := e.tm.Begin()
	e.mustInsert(setup, ix, storage.Key{Val: []byte("dup"), RID: storage.RID{Page: 1, Slot: 1}})
	e.mustInsert(setup, ix, storage.Key{Val: []byte("zzz"), RID: storage.RID{Page: 2, Slot: 2}})
	e.commit(setup)

	tx := e.tm.Begin()
	before := e.stats.Snap()
	e.mustInsert(tx, ix, storage.Key{Val: []byte("dup"), RID: storage.RID{Page: 3, Slot: 3}})
	d := trace.Diff(before, e.stats.Snap())
	if d.LockCalls[int(lock.SpaceKeyValue)][int(lock.IX)][int(lock.Commit)] != 1 {
		t.Errorf("existing-value insert: IX commit calls = %d, want 1",
			d.LockCalls[int(lock.SpaceKeyValue)][int(lock.IX)][int(lock.Commit)])
	}
	if d.LockCalls[int(lock.SpaceKeyValue)][int(lock.X)][int(lock.Commit)] != 0 {
		t.Error("existing-value insert took an X lock")
	}
	e.commit(tx)
}

// TestKVLDuplicateValueConflict demonstrates the concurrency loss §1
// attributes to value locking: two transactions inserting DIFFERENT keys
// with the SAME value conflict under KVL but not under ARIES/IM.
func TestKVLDuplicateValueConflict(t *testing.T) {
	mkKeys := func() (storage.Key, storage.Key) {
		return storage.Key{Val: []byte("shared"), RID: storage.RID{Page: 10, Slot: 1}},
			storage.Key{Val: []byte("shared"), RID: storage.RID{Page: 20, Slot: 2}}
	}
	// Under KVL: t2 blocks on t1's value lock.
	e := newEnv(t, 512, 64)
	ix := e.createIndex(Config{ID: 1, Protocol: KVL})
	k1, k2 := mkKeys()
	t1 := e.tm.Begin()
	e.mustInsert(t1, ix, k1)
	t2 := e.tm.Begin()
	done := make(chan error, 1)
	go func() { done <- ix.Insert(t2, k2) }()
	select {
	case err := <-done:
		t.Fatalf("KVL allowed concurrent duplicate-value inserts: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	e.commit(t1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	e.commit(t2)

	// Under ARIES/IM data-only locking: no conflict (different records).
	e2 := newEnv(t, 512, 64)
	ix2 := e2.createIndex(Config{ID: 1, Protocol: DataOnly})
	j1, j2 := mkKeys()
	u1 := e2.tm.Begin()
	e2.mustInsert(u1, ix2, j1)
	u2 := e2.tm.Begin()
	if err := ix2.Insert(u2, j2); err != nil {
		t.Fatalf("ARIES/IM blocked concurrent duplicate-value insert: %v", err)
	}
	e2.commit(u1)
	e2.commit(u2)
}

// TestSystemRReadersBlockOnUncommittedSMO shows the §2.1/§5 claim: under
// System R, a completed-but-uncommitted split blocks readers of the split
// pages until the splitter commits; under ARIES/IM the reader proceeds.
func TestSystemRReadersBlockOnUncommittedSMO(t *testing.T) {
	run := func(proto Protocol) (blocked bool) {
		e := newEnv(t, 512, 64)
		ix := e.createIndex(Config{ID: 1, Protocol: proto})
		setup := e.tm.Begin()
		for i := 0; i < 20; i++ {
			e.mustInsert(setup, ix, key(i*10))
		}
		e.commit(setup)
		splitsBefore := e.stats.PageSplits.Load()
		writer := e.tm.Begin()
		i := 0
		for e.stats.PageSplits.Load() == splitsBefore {
			e.mustInsert(writer, ix, key(1000+i))
			i++
			if i > 500 {
				t.Fatal("no split")
			}
		}
		// The split is complete but the writer has not committed. A reader
		// now fetches a key from the original (pre-split) population.
		reader := e.tm.Begin()
		done := make(chan struct{})
		go func() {
			if _, _, err := ix.Fetch(reader, key(0).Val, EQ); err != nil {
				t.Errorf("reader: %v", err)
			}
			close(done)
		}()
		select {
		case <-done:
			blocked = false
		case <-time.After(100 * time.Millisecond):
			blocked = true
		}
		e.commit(writer)
		<-done
		e.commit(reader)
		return blocked
	}
	if run(DataOnly) {
		t.Error("ARIES/IM reader blocked by an uncommitted SMO")
	}
	if !run(SystemR) {
		t.Error("System R reader NOT blocked by an uncommitted SMO (baseline too weak)")
	}
}

// TestSystemRWorkloadCorrectness sanity-checks that the heavyweight
// baseline still produces a correct tree.
func TestSystemRWorkloadCorrectness(t *testing.T) {
	e := newEnv(t, 512, 128)
	ix := e.createIndex(Config{ID: 1, Protocol: SystemR})
	tx := e.tm.Begin()
	var want []storage.Key
	for i := 0; i < 200; i++ {
		e.mustInsert(tx, ix, key(i))
	}
	for i := 50; i < 100; i++ {
		e.mustDelete(tx, ix, key(i))
	}
	e.commit(tx)
	for i := 0; i < 200; i++ {
		if i < 50 || i >= 100 {
			want = append(want, key(i))
		}
	}
	e.checkTree(ix)
	e.expectKeys(ix, want)
}

// TestKVLWorkloadCorrectness does the same for KVL, including duplicates.
func TestKVLWorkloadCorrectness(t *testing.T) {
	e := newEnv(t, 512, 128)
	ix := e.createIndex(Config{ID: 1, Protocol: KVL})
	tx := e.tm.Begin()
	for i := 0; i < 150; i++ {
		e.mustInsert(tx, ix, key(i))
	}
	// Duplicate values with distinct RIDs.
	for i := 0; i < 20; i++ {
		e.mustInsert(tx, ix, storage.Key{Val: []byte("dup"), RID: storage.RID{Page: storage.PageID(9000 + i), Slot: 1}})
	}
	for i := 0; i < 10; i++ {
		e.mustDelete(tx, ix, storage.Key{Val: []byte("dup"), RID: storage.RID{Page: storage.PageID(9000 + i), Slot: 1}})
	}
	e.commit(tx)
	e.checkTree(ix)
	got, _ := ix.Dump()
	if len(got) != 150+10 {
		t.Fatalf("index holds %d keys, want 160", len(got))
	}
}
