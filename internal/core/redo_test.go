package core

import (
	"fmt"
	"testing"

	"ariesim/internal/storage"
	"ariesim/internal/wal"
)

// Unit tests of ApplyRedo for each opcode and its inverse: apply the
// forward action to a page, apply the inverse, and require the original
// logical state back (header fields and live cells; physical layout may
// differ through garbage and compaction).

func freshLeaf(t *testing.T) *storage.Page {
	t.Helper()
	p := storage.NewPage(512)
	p.Format(7, storage.PageTypeIndex, 0)
	for i, v := range []string{"aa", "cc", "ee"} {
		cell := storage.EncodeLeafCell(storage.Key{Val: []byte(v), RID: storage.RID{Page: storage.PageID(i + 1), Slot: 1}})
		if err := p.InsertCellAt(i, cell); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// logicalState captures everything redo must reproduce: the header fields
// and the ordered live cells. Physical layout (garbage from deletions,
// compaction state) legitimately differs between histories.
func logicalState(t *testing.T, p *storage.Page) string {
	t.Helper()
	out := fmt.Sprintf("id=%d type=%v level=%d flags=%x prev=%d next=%d rm=%d n=%d|",
		p.ID(), p.Type(), p.Level(), p.Flags(), p.Prev(), p.Next(), p.Rightmost(), p.NSlots())
	for i := 0; i < p.NSlots(); i++ {
		c, ok := p.Cell(i)
		out += fmt.Sprintf("%d:%v=%x|", i, ok, c)
	}
	return out
}

func apply(t *testing.T, p *storage.Page, op wal.OpCode, payload []byte) {
	t.Helper()
	if err := ApplyRedo(p, &wal.Record{Op: op, Page: p.ID(), Payload: payload}); err != nil {
		t.Fatalf("redo %s: %v", op, err)
	}
}

func TestRedoInsertDeleteKeyInverse(t *testing.T) {
	p := freshLeaf(t)
	orig := logicalState(t, p)
	cell := storage.EncodeLeafCell(storage.Key{Val: []byte("bb"), RID: storage.RID{Page: 9, Slot: 9}})
	pl := keyOpPayload{Index: 1, Pos: 1, PreFlags: 0, PostFlags: 0, Cell: cell}
	apply(t, p, wal.OpIdxInsertKey, pl.encode())
	if p.NSlots() != 4 {
		t.Fatalf("nslots = %d", p.NSlots())
	}
	apply(t, p, wal.OpIdxDeleteKey, pl.encode())
	if logicalState(t, p) != orig {
		t.Fatal("insert+delete did not round-trip the page bytes")
	}
}

func TestRedoSplitLeftAndUnsplit(t *testing.T) {
	p := freshLeaf(t)
	p.SetNext(99)
	orig := logicalState(t, p)
	moved := [][]byte{append([]byte(nil), p.MustCell(2)...)}
	pl := splitLeftPayload{
		Index: 1, From: 2, PreFlags: p.Flags(), PostFlags: p.Flags() | storage.FlagSMBit,
		OldNext: 99, NewNext: 55, Moved: moved,
	}
	apply(t, p, wal.OpIdxSplitLeft, pl.encode())
	if p.NSlots() != 2 || p.Next() != 55 || !p.SMBit() {
		t.Fatalf("split-left state: nslots=%d next=%d sm=%v", p.NSlots(), p.Next(), p.SMBit())
	}
	apply(t, p, wal.OpIdxUnsplitLeft, pl.encode())
	if logicalState(t, p) != orig {
		t.Fatal("split+unsplit did not round-trip")
	}
}

func TestRedoSplitLeftNonleafRightmost(t *testing.T) {
	p := storage.NewPage(512)
	p.Format(8, storage.PageTypeIndex, 1)
	for i, v := range []string{"gg", "pp"} {
		cell := storage.EncodeNodeCell(storage.Key{Val: []byte(v)}, storage.PageID(30+i))
		if err := p.InsertCellAt(i, cell); err != nil {
			t.Fatal(err)
		}
	}
	p.SetRightmost(40)
	orig := logicalState(t, p)
	moved := [][]byte{append([]byte(nil), p.MustCell(1)...)}
	pl := splitLeftPayload{
		Index: 1, From: 1, PreFlags: 0, PostFlags: storage.FlagSMBit,
		OldRightmost: 40, NewRightmost: 31, Moved: moved,
	}
	apply(t, p, wal.OpIdxSplitLeft, pl.encode())
	if p.Rightmost() != 31 || p.NSlots() != 1 {
		t.Fatalf("nonleaf split-left: rightmost=%d nslots=%d", p.Rightmost(), p.NSlots())
	}
	apply(t, p, wal.OpIdxUnsplitLeft, pl.encode())
	if logicalState(t, p) != orig {
		t.Fatal("nonleaf split round-trip failed")
	}
}

func TestRedoChainFixSelfInverse(t *testing.T) {
	p := freshLeaf(t)
	p.SetPrev(11)
	orig := logicalState(t, p)
	pl := chainFixPayload{Index: 1, NextField: false, Old: 11, New: 22,
		PreFlags: p.Flags(), PostFlags: p.Flags()}
	apply(t, p, wal.OpIdxChainFix, pl.encode())
	if p.Prev() != 22 {
		t.Fatalf("prev = %d", p.Prev())
	}
	inv := chainFixPayload{Index: 1, NextField: false, Old: 22, New: 11,
		PreFlags: pl.PostFlags, PostFlags: pl.PreFlags}
	apply(t, p, wal.OpIdxChainFix, inv.encode())
	if logicalState(t, p) != orig {
		t.Fatal("chain fix round-trip failed")
	}
}

func TestRedoSplitParentAndUnsplit(t *testing.T) {
	p := storage.NewPage(512)
	p.Format(9, storage.PageTypeIndex, 1)
	cell := storage.EncodeNodeCell(storage.Key{Val: []byte("mm")}, 50)
	if err := p.InsertCellAt(0, cell); err != nil {
		t.Fatal(err)
	}
	p.SetRightmost(60)
	orig := logicalState(t, p)

	// Middle post: child 50 split into 50 + 55 with separator "hh".
	sep := storage.EncodeNodeCell(storage.Key{Val: []byte("hh")}, 50)
	pl := splitParentPayload{Index: 1, Pos: 0, AtRightmost: false,
		PreFlags: 0, PostFlags: storage.FlagSMBit, Right: 55, SepCell: sep}
	apply(t, p, wal.OpIdxSplitParent, pl.encode())
	if p.NSlots() != 2 {
		t.Fatalf("nslots = %d", p.NSlots())
	}
	_, child1, _ := storage.DecodeNodeCell(p.MustCell(1))
	if child1 != 55 {
		t.Fatalf("patched child = %d, want 55", child1)
	}
	apply(t, p, wal.OpIdxUnsplitParent, pl.encode())
	if logicalState(t, p) != orig {
		t.Fatal("middle parent post round-trip failed")
	}

	// Rightmost post: rightmost child 60 split into 60 + 70, separator "zz".
	sep2 := storage.EncodeNodeCell(storage.Key{Val: []byte("zz")}, 60)
	pl2 := splitParentPayload{Index: 1, Pos: 1, AtRightmost: true,
		PreFlags: 0, PostFlags: storage.FlagSMBit, Right: 70, SepCell: sep2}
	apply(t, p, wal.OpIdxSplitParent, pl2.encode())
	if p.Rightmost() != 70 || p.NSlots() != 2 {
		t.Fatalf("rightmost post: rm=%d nslots=%d", p.Rightmost(), p.NSlots())
	}
	apply(t, p, wal.OpIdxUnsplitParent, pl2.encode())
	if logicalState(t, p) != orig {
		t.Fatal("rightmost parent post round-trip failed")
	}
}

func TestRedoDeleteChildAndUndelete(t *testing.T) {
	p := storage.NewPage(512)
	p.Format(9, storage.PageTypeIndex, 1)
	for i, v := range []string{"dd", "mm"} {
		if err := p.InsertCellAt(i, storage.EncodeNodeCell(storage.Key{Val: []byte(v)}, storage.PageID(70+i))); err != nil {
			t.Fatal(err)
		}
	}
	p.SetRightmost(80)
	orig := logicalState(t, p)

	// Remove a middle child.
	pl := deleteChildPayload{Index: 1, Pos: 0, WasRightmost: false,
		PreFlags: 0, PostFlags: storage.FlagSMBit,
		OldRightmost: 80, NewRightmost: 80,
		Removed: append([]byte(nil), p.MustCell(0)...)}
	apply(t, p, wal.OpIdxDeleteChild, pl.encode())
	if p.NSlots() != 1 {
		t.Fatalf("nslots = %d", p.NSlots())
	}
	apply(t, p, wal.OpIdxUndeleteChild, pl.encode())
	if logicalState(t, p) != orig {
		t.Fatal("delete-child round-trip failed")
	}

	// Remove the rightmost child: last separator promoted.
	pl2 := deleteChildPayload{Index: 1, Pos: 1, WasRightmost: true,
		PreFlags: 0, PostFlags: storage.FlagSMBit,
		OldRightmost: 80, NewRightmost: 71,
		Removed: append([]byte(nil), p.MustCell(1)...)}
	apply(t, p, wal.OpIdxDeleteChild, pl2.encode())
	if p.Rightmost() != 71 || p.NSlots() != 1 {
		t.Fatalf("rightmost removal: rm=%d nslots=%d", p.Rightmost(), p.NSlots())
	}
	apply(t, p, wal.OpIdxUndeleteChild, pl2.encode())
	if logicalState(t, p) != orig {
		t.Fatal("rightmost delete-child round-trip failed")
	}
}

func TestRedoFreeUnfreePage(t *testing.T) {
	p := freshLeaf(t)
	p.SetPrev(3)
	p.SetNext(4)
	pl := freePagePayload{Index: 1, Level: 0, Flags: p.Flags(), Prev: 3, Next: 4}
	apply(t, p, wal.OpIdxFreePage, pl.encode())
	if p.Type() != storage.PageTypeFree {
		t.Fatalf("type = %v", p.Type())
	}
	apply(t, p, wal.OpIdxUnfreePage, pl.encode())
	if p.Type() != storage.PageTypeIndex || p.Prev() != 3 || p.Next() != 4 || p.NSlots() != 0 {
		t.Fatal("unfree did not restore the empty shell")
	}
}

func TestRedoReplacePage(t *testing.T) {
	p := freshLeaf(t)
	before := append([]byte(nil), p.Bytes()...)
	shadow := storage.NewPage(512)
	shadow.Format(p.ID(), storage.PageTypeIndex, 2)
	pl := replacePayload{Index: 1, After: shadow.Bytes(), Before: before}
	apply(t, p, wal.OpIdxReplacePage, pl.encode())
	if p.Level() != 2 {
		t.Fatalf("level = %d", p.Level())
	}
	// The inverse is a replace with the before image.
	inv := replacePayload{Index: 1, After: before}
	apply(t, p, wal.OpIdxReplacePage, inv.encode())
	if string(p.Bytes()) != string(before) {
		t.Fatal("replace round-trip failed")
	}
	// Size mismatch rejected.
	bad := replacePayload{Index: 1, After: []byte("short")}
	if err := ApplyRedo(p, &wal.Record{Op: wal.OpIdxReplacePage, Page: p.ID(), Payload: bad.encode()}); err == nil {
		t.Fatal("short image accepted")
	}
}

func TestRedoSetBits(t *testing.T) {
	p := freshLeaf(t)
	pl := setBitsPayload{Index: 1, Flags: storage.FlagSMBit | storage.FlagDeleteBit}
	apply(t, p, wal.OpIdxSetBits, pl.encode())
	if !p.SMBit() || !p.DeleteBit() {
		t.Fatal("set-bits redo failed")
	}
}

func TestRedoRejectsForeignAndCorrupt(t *testing.T) {
	p := freshLeaf(t)
	if err := ApplyRedo(p, &wal.Record{Op: wal.OpDataInsert, Page: 7}); err == nil {
		t.Fatal("data op applied by index redo")
	}
	if err := ApplyRedo(p, &wal.Record{Op: wal.OpIdxInsertKey, Page: 7, Payload: []byte{1, 2}}); err == nil {
		t.Fatal("corrupt payload applied")
	}
}

func TestPayloadCodecsRoundTrip(t *testing.T) {
	cases := []struct {
		op  wal.OpCode
		enc []byte
	}{
		{wal.OpIdxInsertKey, keyOpPayload{Index: 3, Pos: 7, PreFlags: 1, PostFlags: 2, Cell: []byte("cell")}.encode()},
		{wal.OpIdxFormat, formatPayload{Index: 3, Level: 2, Flags: 1, Prev: 4, Next: 5, Rightmost: 6, Cells: [][]byte{[]byte("a"), []byte("bb")}}.encode()},
		{wal.OpIdxSplitLeft, splitLeftPayload{Index: 3, From: 2, OldNext: 9, NewNext: 10, OldRightmost: 11, NewRightmost: 12, Moved: [][]byte{[]byte("m")}}.encode()},
		{wal.OpIdxChainFix, chainFixPayload{Index: 3, NextField: true, Old: 1, New: 2, PreFlags: 3, PostFlags: 4}.encode()},
		{wal.OpIdxSplitParent, splitParentPayload{Index: 3, Pos: 1, AtRightmost: true, Right: 8, SepCell: []byte("sep")}.encode()},
		{wal.OpIdxDeleteChild, deleteChildPayload{Index: 3, Pos: 1, WasRightmost: true, OldRightmost: 7, NewRightmost: 8, Removed: []byte("rm")}.encode()},
		{wal.OpIdxReplacePage, replacePayload{Index: 3, After: []byte("after"), Before: []byte("before")}.encode()},
		{wal.OpIdxFreePage, freePagePayload{Index: 3, Level: 1, Flags: 2, Prev: 3, Next: 4, Rightmost: 5}.encode()},
		{wal.OpIdxSetBits, setBitsPayload{Index: 3, Flags: 3}.encode()},
	}
	for _, c := range cases {
		id, err := indexIDOf(c.enc)
		if err != nil || id != 3 {
			t.Fatalf("%s: indexIDOf = %d, %v", c.op, id, err)
		}
		// Truncated payloads must be rejected, never mis-decoded.
		for cut := 0; cut < len(c.enc); cut++ {
			var derr error
			switch c.op {
			case wal.OpIdxInsertKey:
				_, derr = decodeKeyOp(c.enc[:cut])
			case wal.OpIdxFormat:
				_, derr = decodeFormat(c.enc[:cut])
			case wal.OpIdxSplitLeft:
				_, derr = decodeSplitLeft(c.enc[:cut])
			case wal.OpIdxChainFix:
				_, derr = decodeChainFix(c.enc[:cut])
			case wal.OpIdxSplitParent:
				_, derr = decodeSplitParent(c.enc[:cut])
			case wal.OpIdxDeleteChild:
				_, derr = decodeDeleteChild(c.enc[:cut])
			case wal.OpIdxReplacePage:
				_, derr = decodeReplace(c.enc[:cut])
			case wal.OpIdxFreePage:
				_, derr = decodeFreePage(c.enc[:cut])
			case wal.OpIdxSetBits:
				_, derr = decodeSetBits(c.enc[:cut])
			}
			if derr == nil {
				t.Fatalf("%s: truncation at %d of %d accepted", c.op, cut, len(c.enc))
			}
		}
	}
}
