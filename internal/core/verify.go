package core

import (
	"fmt"

	"ariesim/internal/latch"
	"ariesim/internal/storage"
)

// Verification sweeps used by tests, benches, and the crash-torture tool.
// They run on a quiesced engine (no concurrent transactions) and check the
// structural invariants ARIES/IM maintains:
//
//   - every nonleaf high key strictly exceeds every key stored in (the
//     subtree of) its child, and keys ascend left to right;
//   - the leaf level, read through parent pointers, equals the leaf level
//     read through the sibling chain, in order;
//   - no page reachable from the root is empty with SM_Bit clear (the
//     paper's "no empty page remains with no SMO outstanding"), except an
//     empty root;
//   - all slotted-page invariants hold on every reachable page.

// Dump returns every key in the index in order, via the leaf chain.
func (ix *Index) Dump() ([]storage.Key, error) {
	var out []storage.Key
	// Find the leftmost leaf through the tree.
	pid := ix.root
	for {
		f, err := ix.fixLatched(pid, latch.S)
		if err != nil {
			return nil, err
		}
		if f.Page.Type() != storage.PageTypeIndex {
			ix.unfixLatched(f, latch.S)
			return nil, fmt.Errorf("core: dump met non-index page %d", pid)
		}
		if f.Page.IsLeaf() {
			ix.unfixLatched(f, latch.S)
			break
		}
		var next storage.PageID
		if f.Page.NSlots() > 0 {
			_, c, err := storage.DecodeNodeCell(f.Page.MustCell(0))
			if err != nil {
				ix.unfixLatched(f, latch.S)
				return nil, err
			}
			next = c
		} else {
			next = f.Page.Rightmost()
		}
		ix.unfixLatched(f, latch.S)
		pid = next
	}
	// Walk the chain.
	for pid != storage.InvalidPageID {
		f, err := ix.fixLatched(pid, latch.S)
		if err != nil {
			return nil, err
		}
		for i := 0; i < f.Page.NSlots(); i++ {
			k, err := leafKeyAt(f.Page, i)
			if err != nil {
				ix.unfixLatched(f, latch.S)
				return nil, err
			}
			out = append(out, k.Clone())
		}
		next := f.Page.Next()
		ix.unfixLatched(f, latch.S)
		pid = next
	}
	return out, nil
}

// CheckStructure validates the whole tree. It must be called on a
// quiesced index.
func (ix *Index) CheckStructure() error {
	var leavesViaTree []storage.PageID
	var keys []storage.Key
	if err := ix.checkSubtree(ix.root, nil, &leavesViaTree, &keys); err != nil {
		return err
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1].Compare(keys[i]) >= 0 {
			return fmt.Errorf("core: keys out of order at %d: %s >= %s", i, keys[i-1], keys[i])
		}
	}
	// Leaf chain must visit the same leaves in the same order.
	var leavesViaChain []storage.PageID
	if len(leavesViaTree) > 0 {
		pid := leavesViaTree[0]
		var prev storage.PageID
		for pid != storage.InvalidPageID {
			f, err := ix.fixLatched(pid, latch.S)
			if err != nil {
				return err
			}
			if f.Page.Prev() != prev {
				id := f.Page.Prev()
				ix.unfixLatched(f, latch.S)
				return fmt.Errorf("core: leaf %d back-pointer %d, want %d", pid, id, prev)
			}
			next := f.Page.Next()
			ix.unfixLatched(f, latch.S)
			leavesViaChain = append(leavesViaChain, pid)
			prev, pid = pid, next
		}
	}
	if len(leavesViaChain) != len(leavesViaTree) {
		return fmt.Errorf("core: chain sees %d leaves, tree sees %d", len(leavesViaChain), len(leavesViaTree))
	}
	for i := range leavesViaTree {
		if leavesViaChain[i] != leavesViaTree[i] {
			return fmt.Errorf("core: leaf order mismatch at %d: chain %d, tree %d", i, leavesViaChain[i], leavesViaTree[i])
		}
	}
	return nil
}

// checkSubtree validates page pid whose keys must all be < upper (nil =
// unbounded), appending leaves and keys in order.
func (ix *Index) checkSubtree(pid storage.PageID, upper *storage.Key, leaves *[]storage.PageID, keys *[]storage.Key) error {
	f, err := ix.fixLatched(pid, latch.S)
	if err != nil {
		return err
	}
	defer ix.unfixLatched(f, latch.S)
	p := f.Page
	if p.Type() != storage.PageTypeIndex {
		return fmt.Errorf("core: page %d reachable from root is %v", pid, p.Type())
	}
	if err := p.CheckInvariants(); err != nil {
		return err
	}
	if p.NSlots() == 0 && !p.SMBit() {
		if p.IsLeaf() && pid != ix.root {
			return fmt.Errorf("core: empty leaf %d reachable with SM_Bit clear", pid)
		}
		if !p.IsLeaf() && p.Rightmost() == storage.InvalidPageID {
			return fmt.Errorf("core: childless nonleaf %d reachable with SM_Bit clear", pid)
		}
	}
	if p.IsLeaf() {
		*leaves = append(*leaves, pid)
		for i := 0; i < p.NSlots(); i++ {
			k, err := leafKeyAt(p, i)
			if err != nil {
				return err
			}
			if upper != nil && k.Compare(*upper) >= 0 {
				return fmt.Errorf("core: leaf %d key %s violates high key %s", pid, k, *upper)
			}
			*keys = append(*keys, k.Clone())
		}
		return nil
	}
	var prevHigh *storage.Key
	for i := 0; i < p.NSlots(); i++ {
		hk, child, err := storage.DecodeNodeCell(p.MustCell(i))
		if err != nil {
			return err
		}
		hkC := hk.Clone()
		if prevHigh != nil && prevHigh.Compare(hkC) >= 0 {
			return fmt.Errorf("core: nonleaf %d high keys out of order at %d", pid, i)
		}
		if upper != nil && hkC.Compare(*upper) > 0 {
			return fmt.Errorf("core: nonleaf %d high key %s exceeds bound %s", pid, hkC, *upper)
		}
		if err := ix.checkSubtree(child, &hkC, leaves, keys); err != nil {
			return err
		}
		prevHigh = &hkC
	}
	if p.Rightmost() == storage.InvalidPageID {
		if p.NSlots() > 0 {
			return fmt.Errorf("core: nonleaf %d has separators but no rightmost child", pid)
		}
		return nil
	}
	return ix.checkSubtree(p.Rightmost(), upper, leaves, keys)
}

// LeafOf returns the leaf page currently holding key (tests).
func (ix *Index) LeafOf(key storage.Key) (storage.PageID, bool, error) {
	pid := ix.root
	for {
		f, err := ix.fixLatched(pid, latch.S)
		if err != nil {
			return 0, false, err
		}
		if f.Page.IsLeaf() {
			pos, err := leafLowerBound(f.Page, key)
			if err != nil {
				ix.unfixLatched(f, latch.S)
				return 0, false, err
			}
			present := false
			if pos < f.Page.NSlots() {
				if k, kerr := leafKeyAt(f.Page, pos); kerr == nil && k.Compare(key) == 0 {
					present = true
				}
			}
			ix.unfixLatched(f, latch.S)
			return pid, present, nil
		}
		child, _, err := nodeChildFor(f.Page, key)
		ix.unfixLatched(f, latch.S)
		if err != nil {
			return 0, false, err
		}
		pid = child
	}
}

// Height returns the tree height (leaf = 1), for tests and benches.
func (ix *Index) Height() (int, error) {
	f, err := ix.fixLatched(ix.root, latch.S)
	if err != nil {
		return 0, err
	}
	h := int(f.Page.Level()) + 1
	ix.unfixLatched(f, latch.S)
	return h, nil
}
