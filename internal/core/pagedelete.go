package core

import (
	"fmt"

	"ariesim/internal/buffer"
	"ariesim/internal/latch"
	"ariesim/internal/lock"
	"ariesim/internal/space"
	"ariesim/internal/storage"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

// Page deletion (Figs 8 and 10).
//
// When a key delete would empty a leaf, the delete is performed and logged
// first — outside the nested top action, so a rollback will undo it (the
// undo is then necessarily logical: the page is gone). The page deletion
// itself runs as the NTA: unchain the leaf, remove its entry from the
// parent (recursing if the parent becomes childless), free the page, and
// write the dummy CLR pointing at the key-delete record.

// deleteEmptyingLeaf handles the "only key in the page" delete: it
// re-runs the delete under the X tree latch and, if the page indeed
// empties, deletes the page. postFlags carries the flag byte the plain
// delete would have applied. done=false means the state changed and the
// caller must retry its delete from the top.
//
// asCLR is non-nil during logical undo (the key delete must be logged as
// a CLR compensating a forward insert); the page-delete records remain
// regular undo-redo records in either case (§3 "Undo Processing").
func (ix *Index) deleteEmptyingLeaf(tx *txn.Tx, leafID storage.PageID, key storage.Key, asCLR *wal.Record) (done bool, err error) {
	hold, err := ix.treeAcquireSMO(tx)
	if err != nil {
		return false, err
	}
	defer hold.release()

	f, err := ix.fixLatched(leafID, latch.X)
	if err != nil {
		return false, err
	}
	if f.Page.Type() != storage.PageTypeIndex || !f.Page.IsLeaf() {
		ix.unfixLatched(f, latch.X)
		return false, nil
	}
	pos, err := leafLowerBound(f.Page, key)
	if err != nil {
		ix.unfixLatched(f, latch.X)
		return false, err
	}
	if pos >= f.Page.NSlots() {
		ix.unfixLatched(f, latch.X)
		return false, nil
	}
	if k, err := leafKeyAt(f.Page, pos); err != nil || k.Compare(key) != 0 {
		ix.unfixLatched(f, latch.X)
		return false, err
	}
	if f.Page.NSlots() > 1 || leafID == ix.root {
		// No longer the emptying case (or the root, which is never
		// deleted): perform a plain delete here. Under the exclusive tree
		// hold a POSC is established, so the Delete_Bit can stay clear;
		// under the §5 IX hold other SMOs may be in flight, so the bit is
		// set exactly as a normal delete would (Fig 11 protection).
		pre := f.Page.Flags()
		post := pre | storage.FlagDeleteBit
		if !hold.lock || hold.lockMode == lock.X {
			post = pre &^ storage.FlagDeleteBit
		}
		pl := keyOpPayload{Index: ix.cfg.ID, Pos: uint16(pos), PreFlags: pre,
			PostFlags: post, Cell: storage.EncodeLeafCell(key)}
		mutate := func() error {
			_, derr := f.Page.DeleteCellAt(pos)
			f.Page.SetFlags(pl.PostFlags)
			return derr
		}
		if asCLR != nil {
			ix.applyCLR(tx, f, wal.OpIdxDeleteKey, pl.encode(), asCLR.PrevLSN, mutate)
		} else if _, err := ix.applyLogged(tx, f, wal.OpIdxDeleteKey, pl.encode(), false, mutate); err != nil {
			ix.unfixLatched(f, latch.X)
			return false, err
		}
		ix.unfixLatched(f, latch.X)
		return true, nil
	}

	if ix.stats != nil {
		ix.stats.SMOs.Add(1)
		ix.stats.PageDeletes.Add(1)
	}
	// The emptying delete, logged BEFORE the NTA so that rollback undoes
	// it (Fig 10: the dummy CLR will point at this record).
	keyDelPrev := tx.LastLSN()
	pre := f.Page.Flags()
	pl := keyOpPayload{Index: ix.cfg.ID, Pos: uint16(pos), PreFlags: pre,
		PostFlags: (pre | storage.FlagSMBit) &^ storage.FlagDeleteBit, Cell: storage.EncodeLeafCell(key)}
	mutate := func() error {
		_, derr := f.Page.DeleteCellAt(pos)
		f.Page.SetFlags(pl.PostFlags)
		return derr
	}
	if asCLR != nil {
		ix.applyCLR(tx, f, wal.OpIdxDeleteKey, pl.encode(), asCLR.PrevLSN, mutate)
	} else if _, err := ix.applyLogged(tx, f, wal.OpIdxDeleteKey, pl.encode(), false, mutate); err != nil {
		ix.unfixLatched(f, latch.X)
		return false, err
	}
	smoSave := tx.Savepoint() // only the SMO rolls back on failure
	prev, next := f.Page.Prev(), f.Page.Next()
	level, flags := f.Page.Level(), f.Page.Flags()
	rightmost := f.Page.Rightmost()
	ix.unfixLatched(f, latch.X)

	// The page-deletion SMO proper, as a nested top action.
	tok := tx.BeginNTA()
	ctx := &smoCtx{hold: hold}
	err = ix.deletePageLocked(tx, ctx, pageShell{
		id: leafID, prev: prev, next: next, level: level, flags: flags, rightmost: rightmost,
	}, key)
	if err != nil {
		if asCLR != nil {
			// A failure while compensating a compensation is fatal: the
			// key-delete CLR cannot itself be rolled back.
			return false, fmt.Errorf("core: page-delete SMO failed during undo: %w", err)
		}
		// Process failure mid-SMO: undo the SMO's records page-oriented
		// (the tree latch is still ours, §3), then put the deleted key
		// back page-oriented — as the SMO owner we know the emptied leaf
		// is still the key's home — and let the caller retry.
		if rbErr := tx.RollbackTo(smoSave); rbErr != nil {
			return false, fmt.Errorf("core: page-delete SMO failed (%v) and its rollback failed: %w", err, rbErr)
		}
		rf, ferr := ix.fixLatched(leafID, latch.X)
		if ferr != nil {
			return false, ferr
		}
		cpl := keyOpPayload{Index: ix.cfg.ID, Pos: 0, PreFlags: rf.Page.Flags(),
			PostFlags: pre, Cell: pl.Cell}
		ix.applyCLR(tx, rf, wal.OpIdxInsertKey, cpl.encode(), keyDelPrev, func() error {
			if ierr := rf.Page.InsertCellAt(0, pl.Cell); ierr != nil {
				return ierr
			}
			rf.Page.SetFlags(pre)
			return nil
		})
		ix.unfixLatched(rf, latch.X)
		return false, err
	}
	tx.EndNTA(tok)
	ix.resetSMBits(tx, ctx)
	return true, nil
}

// pageShell carries the header of a page being deleted.
type pageShell struct {
	id         storage.PageID
	prev, next storage.PageID
	level      uint8
	flags      uint8
	rightmost  storage.PageID
}

// deletePageLocked removes the empty page from the tree under the tree
// latch: unchain, remove from parent (recursively), free. probe is a key
// that routes to the page (used to find ancestors).
func (ix *Index) deletePageLocked(tx *txn.Tx, ctx *smoCtx, shell pageShell, probe storage.Key) error {
	// Unchain (leaves only; nonleaf pages are not chained).
	if shell.level == 0 {
		if shell.prev != storage.InvalidPageID {
			if err := ix.chainFix(tx, ctx, shell.prev, true, shell.id, shell.next); err != nil {
				return err
			}
		}
		if shell.next != storage.InvalidPageID {
			if err := ix.chainFix(tx, ctx, shell.next, false, shell.id, shell.prev); err != nil {
				return err
			}
		}
	}
	// Remove the child entry from the parent.
	if err := ix.removeChild(tx, ctx, shell, probe); err != nil {
		return err
	}
	// Free the page.
	if err := ix.smoPageLock(tx, shell.id); err != nil {
		return err
	}
	ctx.touch(shell.id)
	f, err := ix.fixLatched(shell.id, latch.X)
	if err != nil {
		return err
	}
	fp := freePagePayload{Index: ix.cfg.ID, Level: shell.level, Flags: shell.flags,
		Prev: shell.prev, Next: shell.next, Rightmost: shell.rightmost}
	if _, err := ix.applyLogged(tx, f, wal.OpIdxFreePage, fp.encode(), false, func() error {
		f.Page.Format(shell.id, storage.PageTypeFree, 0)
		return nil
	}); err != nil {
		ix.unfixLatched(f, latch.X)
		return err
	}
	ix.unfixLatched(f, latch.X)
	return space.Free(tx, ix.pool, shell.id)
}

// removeChild deletes shell's entry from its parent; if the parent becomes
// childless it is deleted too (recursively), and a root left with zero
// separators collapses onto its single child.
func (ix *Index) removeChild(tx *txn.Tx, ctx *smoCtx, shell pageShell, probe storage.Key) error {
	parent, err := ix.parentOf(tx, probe, shell.id, shell.level)
	if err != nil {
		return err
	}
	if err := ix.smoPageLock(tx, parent.ID()); err != nil {
		ix.unfixLatched(parent, latch.X)
		return err
	}
	ctx.touch(parent.ID())
	pos, wasRightmost, err := nodeChildPos(parent.Page, shell.id)
	if err != nil {
		ix.unfixLatched(parent, latch.X)
		return err
	}
	pre := parent.Page.Flags()
	oldRightmost := parent.Page.Rightmost()
	pl := deleteChildPayload{
		Index: ix.cfg.ID, PreFlags: pre, PostFlags: pre | storage.FlagSMBit,
		OldRightmost: oldRightmost, NewRightmost: oldRightmost,
	}
	if wasRightmost {
		n := parent.Page.NSlots()
		pl.WasRightmost = true
		if n > 0 {
			// Promote the last separator's child to rightmost.
			lastCell := append([]byte(nil), parent.Page.MustCell(n-1)...)
			_, lastChild, derr := storage.DecodeNodeCell(lastCell)
			if derr != nil {
				ix.unfixLatched(parent, latch.X)
				return derr
			}
			pl.Pos = uint16(n - 1)
			pl.Removed = lastCell
			pl.NewRightmost = lastChild
		} else {
			// The parent had a single (rightmost) child: it becomes
			// childless and must itself be removed.
			pl.Removed = nil
			pl.NewRightmost = storage.InvalidPageID
		}
	} else {
		pl.Pos = uint16(pos)
		pl.Removed = append([]byte(nil), parent.Page.MustCell(pos)...)
	}
	if _, err := ix.applyLogged(tx, parent, wal.OpIdxDeleteChild, pl.encode(), false, func() error {
		if len(pl.Removed) > 0 {
			if _, derr := parent.Page.DeleteCellAt(int(pl.Pos)); derr != nil {
				return derr
			}
		}
		parent.Page.SetRightmost(pl.NewRightmost)
		parent.Page.SetFlags(pl.PostFlags)
		return nil
	}); err != nil {
		ix.unfixLatched(parent, latch.X)
		return err
	}

	childless := parent.Page.NSlots() == 0 && parent.Page.Rightmost() == storage.InvalidPageID
	single := parent.Page.NSlots() == 0 && parent.Page.Rightmost() != storage.InvalidPageID
	parentShell := pageShell{
		id: parent.ID(), level: parent.Page.Level(), flags: parent.Page.Flags(),
		rightmost: parent.Page.Rightmost(),
	}
	isRoot := parent.ID() == ix.root

	switch {
	case childless && isRoot:
		// The tree is empty: the root reverts to an empty leaf. A root
		// restructure is a nonleaf-level SMO (§5: upgrade first).
		if err := ctx.hold.upgradeX(); err != nil {
			ix.unfixLatched(parent, latch.X)
			return err
		}
		return ix.replaceRoot(tx, ctx, parent, func(shadow *storage.Page) error {
			shadow.Format(ix.root, storage.PageTypeIndex, 0)
			return nil
		})
	case childless:
		// Deleting the parent itself is a nonleaf-level SMO.
		if err := ctx.hold.upgradeX(); err != nil {
			ix.unfixLatched(parent, latch.X)
			return err
		}
		ix.unfixLatched(parent, latch.X)
		return ix.deletePageLocked(tx, ctx, parentShell, probe)
	case single && isRoot:
		// Root collapse: pull the lone child's content into the root.
		if err := ctx.hold.upgradeX(); err != nil {
			ix.unfixLatched(parent, latch.X)
			return err
		}
		return ix.collapseRoot(tx, ctx, parent)
	default:
		ix.unfixLatched(parent, latch.X)
		return nil
	}
}

// replaceRoot rewrites the X-latched root through an OpIdxReplacePage
// record built by build. The latch is consumed.
func (ix *Index) replaceRoot(tx *txn.Tx, ctx *smoCtx, f *buffer.Frame, build func(*storage.Page) error) error {
	ctx.touch(ix.root)
	before := append([]byte(nil), f.Page.Bytes()...)
	shadow := storage.NewPage(len(f.Page.Bytes()))
	if err := build(shadow); err != nil {
		ix.unfixLatched(f, latch.X)
		return err
	}
	pl := replacePayload{Index: ix.cfg.ID, After: shadow.Bytes(), Before: before}
	_, err := ix.applyLogged(tx, f, wal.OpIdxReplacePage, pl.encode(), false, func() error {
		copy(f.Page.Bytes(), shadow.Bytes())
		return nil
	})
	ix.unfixLatched(f, latch.X)
	return err
}

// collapseRoot replaces a zero-separator root with the content of its
// single child and frees the child. The X latch on the root is consumed.
func (ix *Index) collapseRoot(tx *txn.Tx, ctx *smoCtx, rootF *buffer.Frame) error {
	childID := rootF.Page.Rightmost()
	if err := ix.smoPageLock(tx, childID); err != nil {
		ix.unfixLatched(rootF, latch.X)
		return err
	}
	child, err := ix.fixLatched(childID, latch.X)
	if err != nil {
		ix.unfixLatched(rootF, latch.X)
		return err
	}
	ctx.touch(childID)
	childImage := append([]byte(nil), child.Page.Bytes()...)
	childShell := pageShell{
		id: childID, prev: child.Page.Prev(), next: child.Page.Next(),
		level: child.Page.Level(), flags: child.Page.Flags(), rightmost: child.Page.Rightmost(),
	}
	ix.unfixLatched(child, latch.X)

	if err := ix.replaceRoot(tx, ctx, rootF, func(shadow *storage.Page) error {
		// Same content, the root's identity.
		copy(shadow.Bytes(), childImage)
		patchPageID(shadow, ix.root)
		shadow.SetFlags(shadow.Flags() | storage.FlagSMBit)
		return nil
	}); err != nil {
		return err
	}

	// Free the absorbed child.
	cf, err := ix.fixLatched(childID, latch.X)
	if err != nil {
		return err
	}
	fp := freePagePayload{Index: ix.cfg.ID, Level: childShell.level, Flags: childShell.flags,
		Prev: childShell.prev, Next: childShell.next, Rightmost: childShell.rightmost}
	if _, err := ix.applyLogged(tx, cf, wal.OpIdxFreePage, fp.encode(), false, func() error {
		cf.Page.Format(childID, storage.PageTypeFree, 0)
		return nil
	}); err != nil {
		ix.unfixLatched(cf, latch.X)
		return err
	}
	ix.unfixLatched(cf, latch.X)
	return space.Free(tx, ix.pool, childID)
}

// patchPageID rewrites a page buffer's own-ID header field.
func patchPageID(p *storage.Page, id storage.PageID) {
	b := p.Bytes()
	b[0] = byte(id)
	b[1] = byte(id >> 8)
	b[2] = byte(id >> 16)
	b[3] = byte(id >> 24)
}
