package core

import (
	"errors"
	"fmt"

	"ariesim/internal/buffer"
	"ariesim/internal/latch"
	"ariesim/internal/lock"
	"ariesim/internal/storage"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

// nextKeyTarget is the object of a next-key lock: the key (or EOF) that
// currently follows a position in the index.
type nextKeyTarget struct {
	name  lock.Name
	val   []byte        // the next key's value (nil when EOF); cloned
	extra *buffer.Frame // latched next leaf, if the next key lives there
}

// nextKeyFrom resolves the next key at position pos of the X-latched leaf,
// crossing to the right sibling if needed (the sibling is S-latched while
// the leaf latch is held — the paper's two-latch maximum). restart=true
// means an SMO transient (empty or mutating sibling) was met: the caller
// must release everything and wait for the SMO.
func (ix *Index) nextKeyFrom(leaf *buffer.Frame, pos int) (t nextKeyTarget, restart bool, err error) {
	if pos < leaf.Page.NSlots() {
		k, err := leafKeyAt(leaf.Page, pos)
		if err != nil {
			return t, false, err
		}
		return nextKeyTarget{name: ix.keyLockName(k), val: append([]byte(nil), k.Val...)}, false, nil
	}
	next := leaf.Page.Next()
	if next == storage.InvalidPageID {
		return nextKeyTarget{name: ix.eofLockName()}, false, nil
	}
	nf, err := ix.fixLatched(next, latch.S)
	if err != nil {
		return t, false, err
	}
	if nf.Page.Type() != storage.PageTypeIndex || !nf.Page.IsLeaf() || nf.Page.NSlots() == 0 {
		// A sibling in SMO flux; wait rather than chain further (keeps the
		// two-latch bound).
		ix.unfixLatched(nf, latch.S)
		return t, true, nil
	}
	k, err := leafKeyAt(nf.Page, 0)
	if err != nil {
		ix.unfixLatched(nf, latch.S)
		return t, false, err
	}
	return nextKeyTarget{name: ix.keyLockName(k), val: append([]byte(nil), k.Val...), extra: nf}, false, nil
}

func (ix *Index) releaseTarget(t nextKeyTarget) {
	if t.extra != nil {
		ix.unfixLatched(t.extra, latch.S)
	}
}

// Insert adds key to the index (Fig 6 plus the §2.4 unique-index logic):
//
//  1. traverse (X-latching the leaf), waiting out SM_Bit / Delete_Bit;
//  2. unique indexes: if the key value exists, S-lock it for commit
//     duration — a grant with the value still present is a repeatable
//     unique-violation; a denial means an uncommitted insert/delete, so
//     wait and revalidate;
//  3. X-lock the next key for instant duration (phantom protection and,
//     for unique indexes, detection of an uncommitted delete of the same
//     value) — conditionally under the latch, else the release/wait/
//     revalidate protocol;
//  4. split if there is no room (the insert resumes only after the split
//     SMO has fully propagated and its dummy CLR is logged);
//  5. insert the key, log it (undo-redo), bump the page LSN.
//
// Under data-only locking the key itself is not locked here: the caller's
// record-manager X lock on the RID inside the key is the key lock.
func (ix *Index) Insert(tx *txn.Tx, key storage.Key) error {
	cell := storage.EncodeLeafCell(key)
	if len(cell) > storage.PageCapacity(ix.pool.PageSize())/4 {
		return fmt.Errorf("core: key of %d bytes exceeds the quarter-page bound", len(key.Val))
	}
	var spin struct{ quiesce, unique, nextRestart, nextLock, ownLock, split, pageLock int }
	for attempt := 0; attempt < maxRestarts; attempt++ {
		leaf, err := ix.traverse(tx, key, true)
		if err != nil {
			return err
		}
		done, err := ix.awaitLeafQuiescent(tx, leaf, true)
		if err != nil {
			return err
		}
		if !done {
			spin.quiesce++
			continue
		}

		if ix.cfg.Unique {
			dup, retry, err := ix.uniqueCheck(tx, leaf, key)
			if err != nil {
				return err
			}
			if retry {
				spin.unique++
				continue
			}
			if dup {
				return ErrDuplicate
			}
		}

		pos, err := leafLowerBound(leaf.Page, key)
		if err != nil {
			ix.unfixLatched(leaf, latch.X)
			return err
		}
		if pos < leaf.Page.NSlots() {
			k, err := leafKeyAt(leaf.Page, pos)
			if err != nil {
				ix.unfixLatched(leaf, latch.X)
				return err
			}
			if k.Compare(key) == 0 {
				ix.unfixLatched(leaf, latch.X)
				return fmt.Errorf("%w: full key %s already present", ErrDuplicate, key)
			}
		}

		// Next-key lock: X for instant duration (Fig 2).
		target, restart, err := ix.nextKeyFrom(leaf, pos)
		if err != nil {
			ix.unfixLatched(leaf, latch.X)
			return err
		}
		if restart {
			spin.nextRestart++
			ix.unfixLatched(leaf, latch.X)
			if err := ix.treeWaitInstantS(tx); err != nil {
				return err
			}
			continue
		}
		if ix.cfg.Protocol == KVL {
			retry, err := ix.kvlInsertLocks(tx, leaf, pos, key, target, target.val)
			if err != nil {
				return err
			}
			if retry {
				spin.nextLock++
				continue
			}
			ix.releaseTarget(target)
		} else {
			// System R additionally X-locks the leaf page to commit.
			if ix.cfg.Protocol == SystemR {
				name := ix.pageLockName(leaf.ID())
				if err := tx.Lock(name, lock.X, lock.Commit, true); err != nil {
					ix.releaseTarget(target)
					ix.unfixLatched(leaf, latch.X)
					if err := tx.Lock(name, lock.X, lock.Commit, false); err != nil {
						return err
					}
					spin.pageLock++
					continue
				}
			}
			if err := tx.Lock(target.name, lock.X, lock.Instant, true); err != nil {
				ix.releaseTarget(target)
				ix.unfixLatched(leaf, latch.X)
				// The unconditional fallback RETAINS the lock (commit
				// duration): an instant grant would evaporate before the
				// revalidation retry, and under sustained contention the
				// conditional retry could lose the race forever. Holding
				// the lock is conservative and makes the retry converge —
				// the next iteration's conditional request is satisfied by
				// our own holding if the next key is unchanged.
				if err := tx.Lock(target.name, lock.X, lock.Commit, false); err != nil {
					return err
				}
				spin.nextLock++
				continue // revalidate: the next key may have changed meanwhile
			}
			ix.releaseTarget(target)

			// Index-specific locking also X-locks the inserted key itself
			// for commit duration (Fig 2's right column).
			if ix.cfg.Protocol == IndexSpecific || ix.cfg.Protocol == SystemR {
				own := ix.keyLockName(key)
				if err := tx.Lock(own, lock.X, lock.Commit, true); err != nil {
					ix.unfixLatched(leaf, latch.X)
					if err := tx.Lock(own, lock.X, lock.Commit, false); err != nil {
						return err
					}
					spin.ownLock++
					continue
				}
			}
		}

		if !leaf.Page.HasRoomFor(len(cell)) {
			leafID := leaf.ID()
			ix.unfixLatched(leaf, latch.X)
			if err := ix.SplitForInsert(tx, leafID, len(cell)); err != nil {
				if !errors.Is(err, errSMOConflict) {
					retried, err := ix.handleSMOLockDenial(tx, err)
					if !retried {
						return err
					}
				}
			}
			spin.split++
			continue // Fig 8: the insert happens only after the SMO completes
		}

		pre := leaf.Page.Flags()
		pl := keyOpPayload{Index: ix.cfg.ID, Pos: uint16(pos), PreFlags: pre, PostFlags: pre, Cell: cell}
		if _, err := ix.applyLogged(tx, leaf, wal.OpIdxInsertKey, pl.encode(), false, func() error {
			return leaf.Page.InsertCellAt(pos, cell)
		}); err != nil {
			ix.unfixLatched(leaf, latch.X)
			return err
		}
		ix.unfixLatched(leaf, latch.X)
		return nil
	}
	return fmt.Errorf("core: insert into index %d did not stabilize (retries: quiesce=%d unique=%d nextRestart=%d nextLock=%d ownLock=%d split=%d pageLock=%d)",
		ix.cfg.ID, spin.quiesce, spin.unique, spin.nextRestart, spin.nextLock, spin.ownLock, spin.split, spin.pageLock)
}

// uniqueCheck looks for an existing instance of key's value. It returns
// dup=true when a committed (or own) instance exists — with a commit-
// duration S lock held so the violation is repeatable (§2.4). retry=true
// means latches were released to wait on a lock and the caller must
// re-traverse. On (false,false) the leaf latch is still held.
func (ix *Index) uniqueCheck(tx *txn.Tx, leaf *buffer.Frame, key storage.Key) (dup, retry bool, err error) {
	probe := storage.MinKeyFor(key.Val)
	pos, err := leafLowerBound(leaf.Page, probe)
	if err != nil {
		ix.unfixLatched(leaf, latch.X)
		return false, false, err
	}
	var existing storage.Key
	var have bool
	var extra *buffer.Frame
	if pos < leaf.Page.NSlots() {
		k, kerr := leafKeyAt(leaf.Page, pos)
		if kerr != nil {
			ix.unfixLatched(leaf, latch.X)
			return false, false, kerr
		}
		if string(k.Val) == string(key.Val) {
			existing, have = k, true
		}
	} else if next := leaf.Page.Next(); next != storage.InvalidPageID {
		nf, ferr := ix.fixLatched(next, latch.S)
		if ferr != nil {
			ix.unfixLatched(leaf, latch.X)
			return false, false, ferr
		}
		if nf.Page.Type() == storage.PageTypeIndex && nf.Page.IsLeaf() && nf.Page.NSlots() > 0 {
			k, kerr := leafKeyAt(nf.Page, 0)
			if kerr != nil {
				ix.unfixLatched(nf, latch.S)
				ix.unfixLatched(leaf, latch.X)
				return false, false, kerr
			}
			if string(k.Val) == string(key.Val) {
				existing, have, extra = k, true, nf
			}
		}
		if !have {
			ix.unfixLatched(nf, latch.S)
		}
	}
	if !have {
		return false, false, nil
	}
	name := ix.keyLockName(existing)
	if err := tx.Lock(name, lock.S, lock.Commit, true); err == nil {
		if extra != nil {
			ix.unfixLatched(extra, latch.S)
		}
		ix.unfixLatched(leaf, latch.X)
		return true, false, nil
	}
	// The instance is locked (uncommitted insert by another transaction):
	// wait, then re-traverse and re-check whether it survived.
	if extra != nil {
		ix.unfixLatched(extra, latch.S)
	}
	ix.unfixLatched(leaf, latch.X)
	if err := tx.Lock(name, lock.S, lock.Commit, false); err != nil {
		return false, false, err
	}
	return false, true, nil
}
