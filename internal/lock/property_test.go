package lock

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// Algebraic properties of the mode lattice, checked exhaustively and via
// testing/quick (the generator drives random casts into the enum range).

func allModes() []Mode {
	return []Mode{ModeNone, IS, IX, S, SIX, X}
}

func TestSupremumLatticeLaws(t *testing.T) {
	for _, a := range allModes() {
		for _, b := range allModes() {
			ab := Supremum(a, b)
			if ab != Supremum(b, a) {
				t.Fatalf("Supremum(%v,%v) not commutative", a, b)
			}
			if Supremum(a, a) != a {
				t.Fatalf("Supremum(%v,%v) not idempotent", a, a)
			}
			// The supremum is an upper bound: re-joining either side is a
			// no-op.
			if Supremum(ab, a) != ab || Supremum(ab, b) != ab {
				t.Fatalf("Supremum(%v,%v)=%v is not an upper bound", a, b, ab)
			}
			for _, c := range allModes() {
				if Supremum(Supremum(a, b), c) != Supremum(a, Supremum(b, c)) {
					t.Fatalf("Supremum not associative at (%v,%v,%v)", a, b, c)
				}
			}
		}
	}
}

func TestCompatibilityMonotonicity(t *testing.T) {
	// Strengthening a mode can only REMOVE compatibility: if sup(a,b)=b
	// (b at least as strong as a) then anything compatible with b is
	// compatible with a.
	for _, a := range allModes() {
		for _, b := range allModes() {
			if Supremum(a, b) != b {
				continue
			}
			for _, c := range allModes() {
				if Compatible(b, c) && !Compatible(a, c) {
					t.Fatalf("weaker %v incompatible with %v while stronger %v is", a, c, b)
				}
			}
		}
	}
}

func TestQuickCompatSymmetry(t *testing.T) {
	f := func(x, y uint8) bool {
		a, b := Mode(x%6), Mode(y%6)
		return Compatible(a, b) == Compatible(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInstantLocksLeaveTableEmpty(t *testing.T) {
	// Property: any sequence of instant-duration locks by one owner leaves
	// the lock table empty.
	f := func(spaces, modes []uint8) bool {
		m := NewManager(nil)
		n := len(spaces)
		if len(modes) < n {
			n = len(modes)
		}
		for i := 0; i < n; i++ {
			name := Name{Space: Space(spaces[i] % 7), A: uint64(i % 3)}
			mode := Mode(modes[i]%5 + 1)
			if err := m.Request(1, name, mode, Instant, false); err != nil {
				return false
			}
		}
		return m.NumLocks() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTimeoutRemovalWakesAllGrantable is the release-path property
// behind both victim abort and wait timeout: removing a queued waiter must
// wake every queued request that thereby became grantable, each exactly
// once. A bounded X request sits at the head of the queue over a held S;
// a random crowd of compatible (S/IS) requests queues behind it, blocked
// only by FIFO order. When the X times out, every one of them must be
// granted — with no release ever happening.
func TestQuickTimeoutRemovalWakesAllGrantable(t *testing.T) {
	name := Name{Space: SpaceRecord, A: 1}
	f := func(n, modeBits uint8) bool {
		waiters := int(n%5) + 1
		m := NewManager(nil)
		if err := m.Request(1, name, S, Commit, false); err != nil {
			return false
		}
		xdone := make(chan error, 1)
		go func() { xdone <- m.RequestWith(2, name, X, Commit, false, 25*time.Millisecond) }()
		time.Sleep(5 * time.Millisecond) // let the X reach the queue head
		granted := make(chan Owner, waiters)
		var wg sync.WaitGroup
		for i := 0; i < waiters; i++ {
			o := Owner(3 + i)
			mode := S
			if modeBits&(1<<uint(i)) != 0 {
				mode = IS
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := m.Request(o, name, mode, Commit, false); err == nil {
					granted <- o
				}
			}()
		}
		if err := <-xdone; !errors.Is(err, ErrLockTimeout) {
			return false // the X can never be granted here; it must time out
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			return false // lost wakeup: a grantable waiter was not woken
		}
		// Exactly once: every waiter granted, each a distinct owner, and
		// the table holds precisely the original S plus the crowd.
		if len(granted) != waiters {
			return false
		}
		seen := map[Owner]bool{}
		for i := 0; i < waiters; i++ {
			o := <-granted
			if seen[o] {
				return false
			}
			seen[o] = true
		}
		return m.NumLocks() == 1+waiters
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTimeoutInterleavedSchedule drives a random schedule of bounded
// conflicting waits, so timeouts expire while other waits are still in
// flight (removal interleaved with enqueueing and granting). Whatever the
// interleaving: no hang, every failure is a typed timeout/deadlock, and
// the table drains to empty after all owners release.
func TestQuickTimeoutInterleavedSchedule(t *testing.T) {
	f := func(ops []uint16) bool {
		if len(ops) > 16 {
			ops = ops[:16]
		}
		m := NewManager(nil)
		var bad atomic.Bool
		var wg sync.WaitGroup
		for i, op := range ops {
			owner := Owner(i + 1) // one owner per request: cycles impossible
			name := Name{Space: SpaceRecord, A: uint64(op % 3)}
			mode := S
			if op%2 == 0 {
				mode = X
			}
			timeout := time.Duration(op%8+1) * 3 * time.Millisecond
			wg.Add(1)
			go func() {
				defer wg.Done()
				err := m.RequestWith(owner, name, mode, Commit, false, timeout)
				if err != nil && !errors.Is(err, ErrLockTimeout) {
					bad.Store(true) // single-lock owners can only time out
				}
			}()
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			return false // a bounded wait failed to terminate
		}
		for i := range ops {
			m.ReleaseAll(Owner(i + 1))
		}
		return !bad.Load() && m.NumLocks() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReleaseAllAlwaysEmpties(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewManager(nil)
		for i, op := range ops {
			owner := Owner(op%3 + 1)
			name := Name{Space: Space(op % 5), A: uint64(op % 7)}
			mode := Mode(op%5 + 1)
			// Conditional so the single-goroutine property never blocks.
			_ = m.Request(owner, name, mode, Commit, true)
			if i%5 == 4 {
				m.ReleaseAll(owner)
			}
		}
		for o := Owner(1); o <= 3; o++ {
			m.ReleaseAll(o)
		}
		return m.NumLocks() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
