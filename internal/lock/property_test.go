package lock

import (
	"testing"
	"testing/quick"
)

// Algebraic properties of the mode lattice, checked exhaustively and via
// testing/quick (the generator drives random casts into the enum range).

func allModes() []Mode {
	return []Mode{ModeNone, IS, IX, S, SIX, X}
}

func TestSupremumLatticeLaws(t *testing.T) {
	for _, a := range allModes() {
		for _, b := range allModes() {
			ab := Supremum(a, b)
			if ab != Supremum(b, a) {
				t.Fatalf("Supremum(%v,%v) not commutative", a, b)
			}
			if Supremum(a, a) != a {
				t.Fatalf("Supremum(%v,%v) not idempotent", a, a)
			}
			// The supremum is an upper bound: re-joining either side is a
			// no-op.
			if Supremum(ab, a) != ab || Supremum(ab, b) != ab {
				t.Fatalf("Supremum(%v,%v)=%v is not an upper bound", a, b, ab)
			}
			for _, c := range allModes() {
				if Supremum(Supremum(a, b), c) != Supremum(a, Supremum(b, c)) {
					t.Fatalf("Supremum not associative at (%v,%v,%v)", a, b, c)
				}
			}
		}
	}
}

func TestCompatibilityMonotonicity(t *testing.T) {
	// Strengthening a mode can only REMOVE compatibility: if sup(a,b)=b
	// (b at least as strong as a) then anything compatible with b is
	// compatible with a.
	for _, a := range allModes() {
		for _, b := range allModes() {
			if Supremum(a, b) != b {
				continue
			}
			for _, c := range allModes() {
				if Compatible(b, c) && !Compatible(a, c) {
					t.Fatalf("weaker %v incompatible with %v while stronger %v is", a, c, b)
				}
			}
		}
	}
}

func TestQuickCompatSymmetry(t *testing.T) {
	f := func(x, y uint8) bool {
		a, b := Mode(x%6), Mode(y%6)
		return Compatible(a, b) == Compatible(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInstantLocksLeaveTableEmpty(t *testing.T) {
	// Property: any sequence of instant-duration locks by one owner leaves
	// the lock table empty.
	f := func(spaces, modes []uint8) bool {
		m := NewManager(nil)
		n := len(spaces)
		if len(modes) < n {
			n = len(modes)
		}
		for i := 0; i < n; i++ {
			name := Name{Space: Space(spaces[i] % 7), A: uint64(i % 3)}
			mode := Mode(modes[i]%5 + 1)
			if err := m.Request(1, name, mode, Instant, false); err != nil {
				return false
			}
		}
		return m.NumLocks() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReleaseAllAlwaysEmpties(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewManager(nil)
		for i, op := range ops {
			owner := Owner(op%3 + 1)
			name := Name{Space: Space(op % 5), A: uint64(op % 7)}
			mode := Mode(op%5 + 1)
			// Conditional so the single-goroutine property never blocks.
			_ = m.Request(owner, name, mode, Commit, true)
			if i%5 == 4 {
				m.ReleaseAll(owner)
			}
		}
		for o := Owner(1); o <= 3; o++ {
			m.ReleaseAll(o)
		}
		return m.NumLocks() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
