// Package lock implements the transaction lock manager ariesim's index and
// record managers rely on.
//
// ARIES/IM assumes a lock manager with: S/X/IS/IX/SIX modes (Gray's
// multi-granularity modes), instant and commit durations, conditional and
// unconditional requests, lock conversions, and deadlock detection. The
// locking protocols in the paper are built on two rules this package makes
// cheap to follow:
//
//   - a lock requested conditionally while latches are held is never
//     waited for: the caller releases its latches, requests the lock
//     unconditionally, and revalidates (paper §2.2);
//   - a deadlock is resolved by denying the requester (ErrDeadlock), which
//     combined with ARIES/IM's latch protocol means rolling-back
//     transactions never deadlock (paper §4).
package lock

import (
	"errors"
	"fmt"
	"sync"

	"ariesim/internal/trace"
)

// Mode is a lock mode.
type Mode uint8

const (
	// ModeNone holds nothing; it is the identity of Supremum.
	ModeNone Mode = iota
	// IS is intention shared (multi-granularity).
	IS
	// IX is intention exclusive.
	IX
	// S is shared.
	S
	// SIX is shared + intention exclusive.
	SIX
	// X is exclusive.
	X
)

func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "-"
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case SIX:
		return "SIX"
	case X:
		return "X"
	default:
		return fmt.Sprintf("mode%d", uint8(m))
	}
}

// compat is Gray's compatibility matrix.
var compat = [6][6]bool{
	//            None   IS     IX     S      SIX    X
	/* None */ {true, true, true, true, true, true},
	/* IS   */ {true, true, true, true, true, false},
	/* IX   */ {true, true, true, false, false, false},
	/* S    */ {true, true, false, true, false, false},
	/* SIX  */ {true, true, false, false, false, false},
	/* X    */ {true, false, false, false, false, false},
}

// Compatible reports whether modes a and b can be held concurrently by
// different transactions.
func Compatible(a, b Mode) bool { return compat[a][b] }

// sup is the mode-conversion supremum table.
var sup = [6][6]Mode{
	/* None */ {ModeNone, IS, IX, S, SIX, X},
	/* IS   */ {IS, IS, IX, S, SIX, X},
	/* IX   */ {IX, IX, IX, SIX, SIX, X},
	/* S    */ {S, S, SIX, S, SIX, X},
	/* SIX  */ {SIX, SIX, SIX, SIX, SIX, X},
	/* X    */ {X, X, X, X, X, X},
}

// Supremum returns the weakest mode at least as strong as both a and b.
func Supremum(a, b Mode) Mode { return sup[a][b] }

// Duration is how long a granted lock is held.
type Duration uint8

const (
	// Instant duration: the requester only needs to know the lock was
	// grantable at this moment; it is released as soon as granted. Used
	// for the next-key lock during inserts (paper Fig 2).
	Instant Duration = iota
	// Manual duration: released explicitly before commit (cursor
	// stability reads).
	Manual
	// Commit duration: held until the transaction terminates.
	Commit
)

func (d Duration) String() string {
	switch d {
	case Instant:
		return "instant"
	case Manual:
		return "manual"
	case Commit:
		return "commit"
	default:
		return fmt.Sprintf("dur%d", uint8(d))
	}
}

// Space partitions the lock name space. The spaces let the trace package
// present per-object-class lock counts (the paper's efficiency metric).
type Space uint8

const (
	// SpaceTable holds table-level intention locks.
	SpaceTable Space = iota
	// SpaceRecord holds record (RID) locks — ARIES/IM data-only locking
	// names its key locks here.
	SpaceRecord
	// SpacePage holds data-page locks (page-granularity locking).
	SpacePage
	// SpaceEOF holds the per-index end-of-file lock used when next-key
	// locking runs off the right edge of the index (paper §2.2).
	SpaceEOF
	// SpaceKeyValue holds key-value locks (ARIES/KVL and System R
	// baselines; also ARIES/IM's index-specific variant).
	SpaceKeyValue
	// SpaceIndexPage holds index-page locks (System R-style baseline).
	SpaceIndexPage
	// SpaceTree holds the per-index tree lock (the §5 extension that
	// replaces the tree latch to allow concurrent SMOs).
	SpaceTree
)

func (s Space) String() string {
	switch s {
	case SpaceTable:
		return "table"
	case SpaceRecord:
		return "record"
	case SpacePage:
		return "page"
	case SpaceEOF:
		return "eof"
	case SpaceKeyValue:
		return "keyvalue"
	case SpaceIndexPage:
		return "indexpage"
	case SpaceTree:
		return "tree"
	default:
		return fmt.Sprintf("space%d", uint8(s))
	}
}

// RegisterTraceNames labels the trace dimensions with this package's
// enums; called once by the engine.
func RegisterTraceNames() {
	for s := SpaceTable; s <= SpaceTree; s++ {
		trace.RegisterSpaceName(int(s), s.String())
	}
	for m := ModeNone; m <= X; m++ {
		trace.RegisterModeName(int(m), m.String())
	}
	for d := Instant; d <= Commit; d++ {
		trace.RegisterDurationName(int(d), d.String())
	}
}

// Name is a lock name: a space plus two 64-bit qualifiers. Examples:
// record lock = {SpaceRecord, pageID, slot}; EOF lock = {SpaceEOF, indexID,
// 0}; key-value lock = {SpaceKeyValue, indexID, hash(value)}.
type Name struct {
	Space Space
	A, B  uint64
}

func (n Name) String() string { return fmt.Sprintf("%s(%d,%d)", n.Space, n.A, n.B) }

// Owner identifies a lock owner (a transaction).
type Owner uint32

// Errors returned by Request.
var (
	// ErrNotGranted reports a conditional request that could not be
	// granted immediately.
	ErrNotGranted = errors.New("lock: not granted")
	// ErrDeadlock reports that granting would close a waits-for cycle;
	// the requester is chosen as the victim.
	ErrDeadlock = errors.New("lock: deadlock detected, requester chosen as victim")
)

type holding struct {
	owner Owner
	mode  Mode
	count int
}

type request struct {
	owner   Owner
	mode    Mode // target mode (post-conversion mode for conversions)
	convert bool
	name    Name
	granted chan error
}

type head struct {
	granted []*holding
	queue   []*request
}

// Manager is the lock manager. All state is volatile: a crash empties the
// lock table (restart reacquires locks only for prepared transactions).
type Manager struct {
	mu    sync.Mutex
	table map[Name]*head
	held  map[Owner]map[Name]*holding // secondary index for release-all
	waits map[Owner]*request          // one blocked request per owner
	stats *trace.Stats
}

// NewManager creates an empty lock manager reporting into stats (may be nil).
func NewManager(stats *trace.Stats) *Manager {
	return &Manager{
		table: make(map[Name]*head),
		held:  make(map[Owner]map[Name]*holding),
		waits: make(map[Owner]*request),
		stats: stats,
	}
}

func (m *Manager) headOf(n Name) *head {
	h := m.table[n]
	if h == nil {
		h = &head{}
		m.table[n] = h
	}
	return h
}

// compatibleWithGranted reports whether owner may hold mode alongside all
// *other* granted holders.
func (h *head) compatibleWithGranted(owner Owner, mode Mode) bool {
	for _, g := range h.granted {
		if g.owner != owner && !Compatible(g.mode, mode) {
			return false
		}
	}
	return true
}

func (h *head) holdingOf(owner Owner) *holding {
	for _, g := range h.granted {
		if g.owner == owner {
			return g
		}
	}
	return nil
}

// Request asks for a lock. Conditional requests never block: they return
// ErrNotGranted when the lock is not immediately available. Unconditional
// requests block until granted or until deadlock detection picks the
// requester as victim. Instant-duration locks are released as soon as they
// are granted; their purpose is purely to observe grantability.
func (m *Manager) Request(owner Owner, name Name, mode Mode, dur Duration, conditional bool) error {
	if m.stats != nil {
		m.stats.CountLock(int(name.Space), int(mode), int(dur))
	}
	m.mu.Lock()
	h := m.headOf(name)
	mine := h.holdingOf(owner)

	if mine != nil && Supremum(mine.mode, mode) == mine.mode {
		// Already held in a sufficient mode.
		if dur != Instant {
			mine.count++
		}
		m.mu.Unlock()
		return nil
	}

	target := mode
	convert := mine != nil
	if convert {
		target = Supremum(mine.mode, mode)
	}

	canGrant := h.compatibleWithGranted(owner, target) &&
		(convert || len(h.queue) == 0) // new requests honor FIFO; conversions may pass the queue
	if canGrant {
		m.grantLocked(h, owner, name, target, mine)
		if dur == Instant && mine == nil {
			m.releaseLocked(name, owner)
		}
		m.mu.Unlock()
		return nil
	}

	if conditional {
		m.mu.Unlock()
		if m.stats != nil {
			m.stats.LockDenials.Add(1)
		}
		return ErrNotGranted
	}

	// Enqueue. Conversions go ahead of non-conversions.
	req := &request{owner: owner, mode: target, convert: convert, name: name, granted: make(chan error, 1)}
	if convert {
		i := 0
		for i < len(h.queue) && h.queue[i].convert {
			i++
		}
		h.queue = append(h.queue, nil)
		copy(h.queue[i+1:], h.queue[i:])
		h.queue[i] = req
	} else {
		h.queue = append(h.queue, req)
	}
	m.waits[owner] = req

	if m.deadlockLocked(owner) {
		m.removeRequestLocked(h, req)
		delete(m.waits, owner)
		// Removing the victim may unblock requests queued behind it.
		m.processQueueLocked(name, h)
		m.mu.Unlock()
		if m.stats != nil {
			m.stats.Deadlocks.Add(1)
		}
		return ErrDeadlock
	}
	m.mu.Unlock()
	if m.stats != nil {
		m.stats.LockWaits.Add(1)
	}

	err := <-req.granted
	if err != nil {
		return err
	}
	// An instant lock is released on grant — unless this was a conversion,
	// where the pre-existing (longer-duration) holding must survive; the
	// conservative upgrade is kept until transaction end.
	if dur == Instant && !req.convert {
		m.Release(owner, name)
	}
	return nil
}

// grantLocked installs or upgrades owner's holding.
func (m *Manager) grantLocked(h *head, owner Owner, name Name, mode Mode, mine *holding) {
	if mine != nil {
		mine.mode = mode
		mine.count++
		return
	}
	g := &holding{owner: owner, mode: mode, count: 1}
	h.granted = append(h.granted, g)
	byOwner := m.held[owner]
	if byOwner == nil {
		byOwner = make(map[Name]*holding)
		m.held[owner] = byOwner
	}
	byOwner[name] = g
}

func (m *Manager) removeRequestLocked(h *head, req *request) {
	for i, r := range h.queue {
		if r == req {
			h.queue = append(h.queue[:i], h.queue[i+1:]...)
			return
		}
	}
}

// releaseLocked removes owner's holding on name and processes the queue.
func (m *Manager) releaseLocked(name Name, owner Owner) {
	h := m.table[name]
	if h == nil {
		return
	}
	for i, g := range h.granted {
		if g.owner == owner {
			h.granted = append(h.granted[:i], h.granted[i+1:]...)
			break
		}
	}
	if byOwner := m.held[owner]; byOwner != nil {
		delete(byOwner, name)
		if len(byOwner) == 0 {
			delete(m.held, owner)
		}
	}
	m.processQueueLocked(name, h)
}

// processQueueLocked grants queued requests in order; it stops at the
// first non-grantable request to preserve FIFO fairness (conversions sit
// at the front of the queue and so are considered first).
func (m *Manager) processQueueLocked(name Name, h *head) {
	for len(h.queue) > 0 {
		req := h.queue[0]
		mine := h.holdingOf(req.owner)
		if !h.compatibleWithGranted(req.owner, req.mode) {
			return
		}
		h.queue = h.queue[1:]
		m.grantLocked(h, req.owner, name, req.mode, mine)
		delete(m.waits, req.owner)
		req.granted <- nil
	}
	if len(h.granted) == 0 && len(h.queue) == 0 {
		delete(m.table, name)
	}
}

// Release drops owner's holding on name (manual-duration unlock).
func (m *Manager) Release(owner Owner, name Name) {
	m.mu.Lock()
	m.releaseLocked(name, owner)
	m.mu.Unlock()
}

// ReleaseAll drops every lock owner holds: commit or rollback completion.
func (m *Manager) ReleaseAll(owner Owner) {
	m.mu.Lock()
	names := make([]Name, 0, len(m.held[owner]))
	for n := range m.held[owner] {
		names = append(names, n)
	}
	for _, n := range names {
		m.releaseLocked(n, owner)
	}
	m.mu.Unlock()
}

// HoldsAtLeast reports whether owner currently holds name in mode or
// stronger (verification and debugging).
func (m *Manager) HoldsAtLeast(owner Owner, name Name, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if byOwner := m.held[owner]; byOwner != nil {
		if g, ok := byOwner[name]; ok {
			return Supremum(g.mode, mode) == g.mode
		}
	}
	return false
}

// Held lists owner's current locks (prepare records, tests).
type Held struct {
	Name Name
	Mode Mode
}

// LocksOf returns the locks owner currently holds.
func (m *Manager) LocksOf(owner Owner) []Held {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Held, 0, len(m.held[owner]))
	for n, g := range m.held[owner] {
		out = append(out, Held{Name: n, Mode: g.mode})
	}
	return out
}

// NumLocks returns the number of distinct (name, owner) holdings.
func (m *Manager) NumLocks() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, byOwner := range m.held {
		n += len(byOwner)
	}
	return n
}

// deadlockLocked reports whether start's blocked request closes a cycle in
// the waits-for graph. Edges: a blocked owner waits for (1) every granted
// holder incompatible with its target mode and (2) every request queued
// ahead of it.
func (m *Manager) deadlockLocked(start Owner) bool {
	visited := map[Owner]bool{}
	var dfs func(o Owner) bool
	dfs = func(o Owner) bool {
		req := m.waits[o]
		if req == nil {
			return false
		}
		h := m.table[req.name]
		if h == nil {
			return false
		}
		var successors []Owner
		for _, g := range h.granted {
			if g.owner != o && !Compatible(g.mode, req.mode) {
				successors = append(successors, g.owner)
			}
		}
		for _, q := range h.queue {
			if q == req {
				break
			}
			if q.owner != o {
				successors = append(successors, q.owner)
			}
		}
		for _, s := range successors {
			if s == start {
				return true
			}
			if !visited[s] {
				visited[s] = true
				if dfs(s) {
					return true
				}
			}
		}
		return false
	}
	return dfs(start)
}

// Granularity selects the data lock granularity (paper §2.1: "different
// granularities of locking ... in a flexible manner").
type Granularity uint8

const (
	// GranRecord locks individual records (RIDs): the fine-granularity
	// default ARIES/IM is designed around.
	GranRecord Granularity = iota
	// GranPage locks whole data pages: the coarse alternative; a key lock
	// becomes a lock on the data page ID part of the RID.
	GranPage
)

func (g Granularity) String() string {
	if g == GranPage {
		return "page"
	}
	return "record"
}

// DataLockName names the lock protecting the record with the given RID at
// the chosen granularity. ARIES/IM data-only locking uses this same name
// for the index key containing the RID: locking the key IS locking the
// data (paper §2.1).
func DataLockName(g Granularity, page uint64, slot uint16) Name {
	if g == GranPage {
		return Name{Space: SpacePage, A: page}
	}
	return Name{Space: SpaceRecord, A: page, B: uint64(slot)}
}

// TableName names a table's intention lock.
func TableName(tableID uint64) Name { return Name{Space: SpaceTable, A: tableID} }

// EOFName names the per-index end-of-file lock (paper §2.2).
func EOFName(indexID uint64) Name { return Name{Space: SpaceEOF, A: indexID} }

// KeyValueName names a key-value lock: the ARIES/KVL and System R
// baselines, and ARIES/IM's index-specific variant, lock hashed key values
// within an index.
func KeyValueName(indexID uint64, hash uint64) Name {
	return Name{Space: SpaceKeyValue, A: indexID, B: hash}
}

// IndexPageName names an index-page lock (System R-style baseline).
func IndexPageName(indexID uint64, page uint64) Name {
	return Name{Space: SpaceIndexPage, A: indexID, B: page}
}

// TreeName names the per-index tree lock (§5 concurrent-SMO extension).
func TreeName(indexID uint64) Name { return Name{Space: SpaceTree, A: indexID} }
