// Package lock implements the transaction lock manager ariesim's index and
// record managers rely on.
//
// ARIES/IM assumes a lock manager with: S/X/IS/IX/SIX modes (Gray's
// multi-granularity modes), instant and commit durations, conditional and
// unconditional requests, lock conversions, and deadlock detection. The
// locking protocols in the paper are built on two rules this package makes
// cheap to follow:
//
//   - a lock requested conditionally while latches are held is never
//     waited for: the caller releases its latches, requests the lock
//     unconditionally, and revalidates (paper §2.2);
//   - a deadlock is resolved by aborting exactly one waiter in the cycle
//     (ErrDeadlock), which combined with ARIES/IM's latch protocol means
//     rolling-back transactions never deadlock (paper §4).
//
// Deadlock victims are chosen by cost, not blindly: among the blocked
// transactions forming the cycle the manager prefers the one holding the
// fewest locks (least rollback work), breaking ties toward the youngest
// (highest owner ID). Unconditional waits are additionally bounded by an
// optional lock-wait timeout (ErrLockTimeout). Both errors identify the
// transaction that must roll back; db.RunTxn turns them into automatic
// rollback-and-retry.
package lock

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ariesim/internal/trace"
)

// Mode is a lock mode.
type Mode uint8

const (
	// ModeNone holds nothing; it is the identity of Supremum.
	ModeNone Mode = iota
	// IS is intention shared (multi-granularity).
	IS
	// IX is intention exclusive.
	IX
	// S is shared.
	S
	// SIX is shared + intention exclusive.
	SIX
	// X is exclusive.
	X
)

func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "-"
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case SIX:
		return "SIX"
	case X:
		return "X"
	default:
		return fmt.Sprintf("mode%d", uint8(m))
	}
}

// compat is Gray's compatibility matrix.
var compat = [6][6]bool{
	//            None   IS     IX     S      SIX    X
	/* None */ {true, true, true, true, true, true},
	/* IS   */ {true, true, true, true, true, false},
	/* IX   */ {true, true, true, false, false, false},
	/* S    */ {true, true, false, true, false, false},
	/* SIX  */ {true, true, false, false, false, false},
	/* X    */ {true, false, false, false, false, false},
}

// Compatible reports whether modes a and b can be held concurrently by
// different transactions.
func Compatible(a, b Mode) bool { return compat[a][b] }

// sup is the mode-conversion supremum table.
var sup = [6][6]Mode{
	/* None */ {ModeNone, IS, IX, S, SIX, X},
	/* IS   */ {IS, IS, IX, S, SIX, X},
	/* IX   */ {IX, IX, IX, SIX, SIX, X},
	/* S    */ {S, S, SIX, S, SIX, X},
	/* SIX  */ {SIX, SIX, SIX, SIX, SIX, X},
	/* X    */ {X, X, X, X, X, X},
}

// Supremum returns the weakest mode at least as strong as both a and b.
func Supremum(a, b Mode) Mode { return sup[a][b] }

// Duration is how long a granted lock is held.
type Duration uint8

const (
	// Instant duration: the requester only needs to know the lock was
	// grantable at this moment; it is released as soon as granted. Used
	// for the next-key lock during inserts (paper Fig 2).
	Instant Duration = iota
	// Manual duration: released explicitly before commit (cursor
	// stability reads).
	Manual
	// Commit duration: held until the transaction terminates.
	Commit
)

func (d Duration) String() string {
	switch d {
	case Instant:
		return "instant"
	case Manual:
		return "manual"
	case Commit:
		return "commit"
	default:
		return fmt.Sprintf("dur%d", uint8(d))
	}
}

// Space partitions the lock name space. The spaces let the trace package
// present per-object-class lock counts (the paper's efficiency metric).
type Space uint8

const (
	// SpaceTable holds table-level intention locks.
	SpaceTable Space = iota
	// SpaceRecord holds record (RID) locks — ARIES/IM data-only locking
	// names its key locks here.
	SpaceRecord
	// SpacePage holds data-page locks (page-granularity locking).
	SpacePage
	// SpaceEOF holds the per-index end-of-file lock used when next-key
	// locking runs off the right edge of the index (paper §2.2).
	SpaceEOF
	// SpaceKeyValue holds key-value locks (ARIES/KVL and System R
	// baselines; also ARIES/IM's index-specific variant).
	SpaceKeyValue
	// SpaceIndexPage holds index-page locks (System R-style baseline).
	SpaceIndexPage
	// SpaceTree holds the per-index tree lock (the §5 extension that
	// replaces the tree latch to allow concurrent SMOs).
	SpaceTree
)

func (s Space) String() string {
	switch s {
	case SpaceTable:
		return "table"
	case SpaceRecord:
		return "record"
	case SpacePage:
		return "page"
	case SpaceEOF:
		return "eof"
	case SpaceKeyValue:
		return "keyvalue"
	case SpaceIndexPage:
		return "indexpage"
	case SpaceTree:
		return "tree"
	default:
		return fmt.Sprintf("space%d", uint8(s))
	}
}

// RegisterTraceNames labels the trace dimensions with this package's
// enums; called once by the engine.
func RegisterTraceNames() {
	for s := SpaceTable; s <= SpaceTree; s++ {
		trace.RegisterSpaceName(int(s), s.String())
	}
	for m := ModeNone; m <= X; m++ {
		trace.RegisterModeName(int(m), m.String())
	}
	for d := Instant; d <= Commit; d++ {
		trace.RegisterDurationName(int(d), d.String())
	}
}

// Name is a lock name: a space plus two 64-bit qualifiers. Examples:
// record lock = {SpaceRecord, pageID, slot}; EOF lock = {SpaceEOF, indexID,
// 0}; key-value lock = {SpaceKeyValue, indexID, hash(value)}.
type Name struct {
	Space Space
	A, B  uint64
}

func (n Name) String() string { return fmt.Sprintf("%s(%d,%d)", n.Space, n.A, n.B) }

// Owner identifies a lock owner (a transaction).
type Owner uint32

// Errors returned by Request.
var (
	// ErrNotGranted reports a conditional request that could not be
	// granted immediately.
	ErrNotGranted = errors.New("lock: not granted")
	// ErrDeadlock reports that the receiving transaction was chosen as the
	// victim of a waits-for cycle and must roll back.
	ErrDeadlock = errors.New("lock: deadlock detected, chosen as victim")
	// ErrLockTimeout reports an unconditional wait abandoned at the
	// lock-wait timeout; the requester should roll back and retry.
	ErrLockTimeout = errors.New("lock: wait timed out")
	// ErrShutdown reports that the lock manager was shut down (engine
	// crash) while the request was queued or before it was made.
	ErrShutdown = errors.New("lock: manager shut down by crash")
)

// modeStep records one mode upgrade of a holding: at manager sequence seq
// the holding's mode stopped being prev. The history lets ReleaseSince
// revert a holding to the mode it had at an earlier savepoint.
type modeStep struct {
	seq  uint64
	prev Mode
}

type holding struct {
	owner Owner
	mode  Mode
	count int
	seq   uint64     // manager sequence at first grant
	hist  []modeStep // mode upgrades since, oldest first
}

// modeAt returns the mode this holding had at sequence tok (ModeNone if it
// did not exist yet).
func (g *holding) modeAt(tok uint64) Mode {
	if g.seq > tok {
		return ModeNone
	}
	mode := g.mode
	for i := len(g.hist) - 1; i >= 0; i-- {
		if g.hist[i].seq <= tok {
			break
		}
		mode = g.hist[i].prev
	}
	return mode
}

type request struct {
	owner   Owner
	mode    Mode // target mode (post-conversion mode for conversions)
	convert bool
	name    Name
	granted chan error
}

type head struct {
	granted []*holding
	queue   []*request
}

// DefaultShards is the shard count NewManager uses: enough to spread a
// 16-worker benchmark's uncontended requests across independent mutexes
// without bloating single-threaded engines.
const DefaultShards = 16

// deadlockProbeAfter is how long an unconditional wait lasts before its
// first deadlock probe; deadlockProbeMax caps the probe backoff. Probing
// lazily keeps the detector's global all-shard pause off the fast path —
// a wait that resolves inside the grace period costs nothing.
const (
	deadlockProbeAfter = 500 * time.Microsecond
	deadlockProbeMax   = 8 * time.Millisecond
)

// shard is one partition of the lock table. A name's head, its holders'
// per-owner index entries, and any blocked request on it all live in the
// shard the name hashes to, so every single-name operation touches exactly
// one shard mutex.
type shard struct {
	mu    sync.Mutex
	table map[Name]*head
	held  map[Owner]map[Name]*holding // per-owner index for release-all
	waits map[Owner]*request          // one blocked request per owner
}

// Manager is the lock manager. All state is volatile: a crash empties the
// lock table (restart reacquires locks only for prepared transactions).
//
// The table is hash-sharded: grants, releases, and queue processing lock
// only the shard owning the name, so disjoint transactions scale across
// cores instead of convoying on one global mutex. Cross-shard state is
// kept correct by construction: the grant sequence is a single atomic
// (savepoint tokens stay globally ordered), an owner has at most one
// blocked request (living in its name's shard), and the deadlock detector
// pauses every shard — lockAll in ascending index order — to examine a
// consistent waits-for graph before choosing a victim.
type Manager struct {
	shards  []shard
	mask    uint64
	seq     atomic.Uint64 // grant sequence, for savepoint tokens
	timeout atomic.Int64  // default unconditional wait bound in ns (0 = none)
	down    atomic.Bool   // shut down by crash; all requests fail
	stats   *trace.Stats
}

// NewManager creates an empty lock manager reporting into stats (may be
// nil) with DefaultShards shards.
func NewManager(stats *trace.Stats) *Manager {
	return NewManagerSharded(stats, DefaultShards)
}

// NewManagerSharded creates a lock manager with the given shard count,
// rounded up to a power of two. One shard reproduces the historical
// global-mutex behavior (the benchmark baseline).
func NewManagerSharded(stats *trace.Stats, shards int) *Manager {
	n := 1
	for n < shards {
		n <<= 1
	}
	m := &Manager{shards: make([]shard, n), mask: uint64(n - 1), stats: stats}
	for i := range m.shards {
		s := &m.shards[i]
		s.table = make(map[Name]*head)
		s.held = make(map[Owner]map[Name]*holding)
		s.waits = make(map[Owner]*request)
	}
	return m
}

// NumShards returns the shard count (power of two).
func (m *Manager) NumShards() int { return len(m.shards) }

// shardOf returns the shard owning name. Fibonacci-style multiplicative
// mixing keeps related names (same space, adjacent pages/slots) spread.
func (m *Manager) shardOf(n Name) *shard {
	h := n.A*0x9E3779B97F4A7C15 ^ n.B*0xC2B2AE3D27D4EB4F ^ uint64(n.Space)*0x165667B19E3779F9
	h ^= h >> 29
	return &m.shards[h&m.mask]
}

// lockAll acquires every shard mutex in ascending index order: the global
// pause the deadlock detector and Shutdown use. Single-shard paths never
// hold one shard's mutex while acquiring another's, so the ordered sweep
// cannot deadlock against them.
func (m *Manager) lockAll() {
	for i := range m.shards {
		m.shards[i].mu.Lock()
	}
}

func (m *Manager) unlockAll() {
	for i := range m.shards {
		m.shards[i].mu.Unlock()
	}
}

// SetWaitTimeout bounds every unconditional wait: a request still queued
// after d fails with ErrLockTimeout. Zero restores unbounded waits.
func (m *Manager) SetWaitTimeout(d time.Duration) {
	m.timeout.Store(int64(d))
}

func (s *shard) headOf(n Name) *head {
	h := s.table[n]
	if h == nil {
		h = &head{}
		s.table[n] = h
	}
	return h
}

// compatibleWithGranted reports whether owner may hold mode alongside all
// *other* granted holders.
func (h *head) compatibleWithGranted(owner Owner, mode Mode) bool {
	for _, g := range h.granted {
		if g.owner != owner && !Compatible(g.mode, mode) {
			return false
		}
	}
	return true
}

func (h *head) holdingOf(owner Owner) *holding {
	for _, g := range h.granted {
		if g.owner == owner {
			return g
		}
	}
	return nil
}

// Request asks for a lock. Conditional requests never block: they return
// ErrNotGranted when the lock is not immediately available. Unconditional
// requests block until granted, until deadlock victim selection aborts
// them (ErrDeadlock), or until the manager's lock-wait timeout expires
// (ErrLockTimeout). Instant-duration locks are released as soon as they
// are granted; their purpose is purely to observe grantability.
func (m *Manager) Request(owner Owner, name Name, mode Mode, dur Duration, conditional bool) error {
	return m.RequestWith(owner, name, mode, dur, conditional, 0)
}

// RequestWith is Request with a per-request wait bound: timeout 0 uses the
// manager default (SetWaitTimeout), negative waits without bound.
func (m *Manager) RequestWith(owner Owner, name Name, mode Mode, dur Duration, conditional bool, timeout time.Duration) error {
	if m.stats != nil {
		m.stats.CountLock(int(name.Space), int(mode), int(dur))
	}
	if timeout == 0 {
		timeout = time.Duration(m.timeout.Load())
	}
	s := m.shardOf(name)
	s.mu.Lock()
	if m.down.Load() {
		s.mu.Unlock()
		return ErrShutdown
	}
	h := s.headOf(name)
	mine := h.holdingOf(owner)

	if mine != nil && Supremum(mine.mode, mode) == mine.mode {
		// Already held in a sufficient mode.
		if dur != Instant {
			mine.count++
		}
		s.mu.Unlock()
		return nil
	}

	target := mode
	convert := mine != nil
	if convert {
		target = Supremum(mine.mode, mode)
	}

	canGrant := h.compatibleWithGranted(owner, target) &&
		(convert || len(h.queue) == 0) // new requests honor FIFO; conversions may pass the queue
	if canGrant {
		m.grantLocked(h, owner, name, target, mine, s)
		if dur == Instant && mine == nil {
			m.releaseLocked(s, name, owner)
		}
		s.mu.Unlock()
		return nil
	}

	if conditional {
		s.mu.Unlock()
		if m.stats != nil {
			m.stats.LockDenials.Add(1)
		}
		return ErrNotGranted
	}

	// Enqueue. Conversions go ahead of non-conversions.
	req := &request{owner: owner, mode: target, convert: convert, name: name, granted: make(chan error, 1)}
	if convert {
		i := 0
		for i < len(h.queue) && h.queue[i].convert {
			i++
		}
		h.queue = append(h.queue, nil)
		copy(h.queue[i+1:], h.queue[i:])
		h.queue[i] = req
	} else {
		h.queue = append(h.queue, req)
	}
	s.waits[owner] = req
	s.mu.Unlock()

	if m.stats != nil {
		m.stats.LockWaits.Add(1)
	}

	var timeoutC <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	// Lazy deadlock detection: the detector needs a global all-shard pause,
	// so it must stay off the fast path. Most waits (commit-duration locks
	// held across one log force) resolve well inside the grace period and
	// never pay for a cycle search; only a wait that outlives the probe
	// timer triggers detection, with geometric backoff while it lasts. A
	// probe that finds the request already granted sees no wait edge for
	// owner and reports no cycle, which is exactly right.
	probeIval := deadlockProbeAfter
	probe := time.NewTimer(probeIval)
	defer probe.Stop()
	var err error
waitLoop:
	for {
		select {
		case err = <-req.granted:
			break waitLoop
		case <-probe.C:
			if derr := m.resolveDeadlocks(owner, name, req); derr != nil {
				return derr
			}
			if probeIval *= 2; probeIval > deadlockProbeMax {
				probeIval = deadlockProbeMax
			}
			probe.Reset(probeIval)
		case <-timeoutC:
			s.mu.Lock()
			select {
			case err = <-req.granted:
				// Resolved between the timer firing and us reacquiring the
				// shard lock; honor the resolution.
				s.mu.Unlock()
				break waitLoop
			default:
				if h := s.table[name]; h != nil {
					m.removeRequestLocked(h, req)
					// Waking grantable requests queued behind the abandoned one.
					m.processQueueLocked(s, name, h)
				}
				delete(s.waits, owner)
				s.mu.Unlock()
				if m.stats != nil {
					m.stats.LockTimeouts.Add(1)
				}
				return ErrLockTimeout
			}
		}
	}
	if err != nil {
		return err
	}
	// An instant lock is released on grant — unless this was a conversion,
	// where the pre-existing (longer-duration) holding must survive; the
	// conservative upgrade is kept until transaction end.
	if dur == Instant && !req.convert {
		m.Release(owner, name)
	}
	return nil
}

// resolveDeadlocks pauses every shard and breaks each waits-for cycle the
// new edge (owner blocked on name via req) closed: abort the cheapest
// blocked member of each cycle — the one holding the fewest locks, ties
// toward the youngest — rather than blindly the requester. Aborting
// another waiter may leave further cycles (or grant this request), so it
// loops until the graph is clean. Returns ErrDeadlock if owner itself was
// chosen as a victim.
func (m *Manager) resolveDeadlocks(owner Owner, name Name, req *request) error {
	m.lockAll()
	defer m.unlockAll()
	for {
		cycle := m.findCycleAllLocked(owner)
		if cycle == nil {
			return nil
		}
		if m.stats != nil {
			m.stats.Deadlocks.Add(1)
			m.stats.DeadlockVictims.Add(1)
		}
		victim := m.chooseVictimAllLocked(cycle)
		if victim == owner {
			s := m.shardOf(name)
			if h := s.table[name]; h != nil {
				m.removeRequestLocked(h, req)
				// Removing the victim may unblock requests queued behind it.
				m.processQueueLocked(s, name, h)
			}
			delete(s.waits, owner)
			return ErrDeadlock
		}
		if m.stats != nil {
			m.stats.VictimsOther.Add(1)
		}
		m.abortWaiterAllLocked(victim, ErrDeadlock)
	}
}

// Token returns an opaque marker of the current grant sequence. Locks
// granted or upgraded after the token was taken can be rolled back with
// ReleaseSince — the lock half of a transaction savepoint. The sequence
// is a single atomic across every shard, so tokens order globally.
func (m *Manager) Token() uint64 {
	return m.seq.Load()
}

// ReleaseSince releases every lock owner first acquired after tok and
// reverts holdings upgraded after tok to the mode they had at tok, waking
// newly grantable waiters. Partial rollback (txn.RollbackTo) uses this so
// a rolled-back transaction fragment does not keep the locks that made it
// a deadlock victim. Returns the number of holdings released or reverted.
//
// The sweep visits shards one at a time; that is sound because an owner's
// locks are only granted or upgraded by its own goroutine (or while it is
// blocked, in which case it is not calling ReleaseSince).
func (m *Manager) ReleaseSince(owner Owner, tok uint64) int {
	changed := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		byOwner := s.held[owner]
		var drop, revert []Name
		for n, g := range byOwner {
			switch was := g.modeAt(tok); {
			case was == ModeNone:
				drop = append(drop, n)
			case was != g.mode:
				revert = append(revert, n)
			}
		}
		for _, n := range drop {
			m.releaseLocked(s, n, owner)
		}
		for _, n := range revert {
			g := byOwner[n]
			mode := g.modeAt(tok)
			for len(g.hist) > 0 && g.hist[len(g.hist)-1].seq > tok {
				g.hist = g.hist[:len(g.hist)-1]
			}
			g.mode = mode
			if h := s.table[n]; h != nil {
				// The weaker mode may admit waiters.
				m.processQueueLocked(s, n, h)
			}
		}
		changed += len(drop) + len(revert)
		s.mu.Unlock()
	}
	if changed > 0 && m.stats != nil {
		m.stats.SavepointLockReleases.Add(uint64(changed))
	}
	return changed
}

// Shutdown fails the manager: every queued waiter on every shard is woken
// with ErrShutdown and every future request fails immediately with it.
// The engine calls this at Crash so goroutines blocked in lock waits
// unwind instead of sleeping forever on an orphaned lock table; Restart
// builds a fresh manager. Release and ReleaseAll stay usable so rolling-
// back stragglers unwind cleanly.
//
// The down flag is published before any shard is drained: a requester
// checks it under its shard mutex in the same critical section that would
// enqueue, so it either enqueues before the drain sweeps that shard (and
// is woken) or observes down and fails fast — no waiter can slip through.
func (m *Manager) Shutdown() {
	m.down.Store(true)
	var waiting []*request
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for o, req := range s.waits {
			delete(s.waits, o)
			if h := s.table[req.name]; h != nil {
				m.removeRequestLocked(h, req)
				if len(h.granted) == 0 && len(h.queue) == 0 {
					delete(s.table, req.name)
				}
			}
			waiting = append(waiting, req)
		}
		s.mu.Unlock()
	}
	for _, req := range waiting {
		req.granted <- ErrShutdown
	}
}

// waitOfAllLocked finds owner's blocked request (caller holds all shards).
func (m *Manager) waitOfAllLocked(owner Owner) (*shard, *request) {
	for i := range m.shards {
		s := &m.shards[i]
		if req := s.waits[owner]; req != nil {
			return s, req
		}
	}
	return nil, nil
}

// abortWaiterAllLocked removes owner's blocked request and resolves it
// with err, waking every request queued behind it that became grantable.
// Caller holds every shard mutex.
func (m *Manager) abortWaiterAllLocked(owner Owner, err error) {
	s, req := m.waitOfAllLocked(owner)
	if req == nil {
		return
	}
	delete(s.waits, owner)
	if h := s.table[req.name]; h != nil {
		m.removeRequestLocked(h, req)
		m.processQueueLocked(s, req.name, h)
	}
	req.granted <- err
}

// heldCountAllLocked sums owner's holdings across shards (caller holds
// all shard mutexes).
func (m *Manager) heldCountAllLocked(o Owner) int {
	n := 0
	for i := range m.shards {
		n += len(m.shards[i].held[o])
	}
	return n
}

// chooseVictimAllLocked picks the cheapest member of a waits-for cycle to
// abort: the owner holding the fewest locks (least rollback and
// reacquisition work), ties broken toward the youngest (highest owner ID —
// IDs are assigned in begin order). Caller holds every shard mutex.
func (m *Manager) chooseVictimAllLocked(cycle []Owner) Owner {
	victim := cycle[0]
	cv := m.heldCountAllLocked(victim)
	for _, o := range cycle[1:] {
		co := m.heldCountAllLocked(o)
		if co < cv || (co == cv && o > victim) {
			victim, cv = o, co
		}
	}
	return victim
}

// grantLocked installs or upgrades owner's holding, stamping the grant
// sequence consumed by savepoint tokens (Token/ReleaseSince). Caller
// holds s.mu, the shard owning name.
func (m *Manager) grantLocked(h *head, owner Owner, name Name, mode Mode, mine *holding, s *shard) {
	seq := m.seq.Add(1)
	if mine != nil {
		if mine.mode != mode {
			mine.hist = append(mine.hist, modeStep{seq: seq, prev: mine.mode})
			mine.mode = mode
		}
		mine.count++
		return
	}
	g := &holding{owner: owner, mode: mode, count: 1, seq: seq}
	h.granted = append(h.granted, g)
	byOwner := s.held[owner]
	if byOwner == nil {
		byOwner = make(map[Name]*holding)
		s.held[owner] = byOwner
	}
	byOwner[name] = g
}

func (m *Manager) removeRequestLocked(h *head, req *request) {
	for i, r := range h.queue {
		if r == req {
			h.queue = append(h.queue[:i], h.queue[i+1:]...)
			return
		}
	}
}

// releaseLocked removes owner's holding on name and processes the queue.
// Caller holds s.mu, the shard owning name.
func (m *Manager) releaseLocked(s *shard, name Name, owner Owner) {
	h := s.table[name]
	if h == nil {
		return
	}
	for i, g := range h.granted {
		if g.owner == owner {
			h.granted = append(h.granted[:i], h.granted[i+1:]...)
			break
		}
	}
	if byOwner := s.held[owner]; byOwner != nil {
		delete(byOwner, name)
		if len(byOwner) == 0 {
			delete(s.held, owner)
		}
	}
	m.processQueueLocked(s, name, h)
}

// processQueueLocked grants queued requests in order; it stops at the
// first non-grantable request to preserve FIFO fairness (conversions sit
// at the front of the queue and so are considered first). Caller holds
// s.mu, the shard owning name.
func (m *Manager) processQueueLocked(s *shard, name Name, h *head) {
	for len(h.queue) > 0 {
		req := h.queue[0]
		mine := h.holdingOf(req.owner)
		if !h.compatibleWithGranted(req.owner, req.mode) {
			return
		}
		h.queue = h.queue[1:]
		m.grantLocked(h, req.owner, name, req.mode, mine, s)
		delete(s.waits, req.owner)
		req.granted <- nil
	}
	if len(h.granted) == 0 && len(h.queue) == 0 {
		delete(s.table, name)
	}
}

// Reinstate re-grants a loser transaction's lock at restart, before the
// engine opens for business. The lock table is empty at that point (a
// crash wipes it), so the conditional request must succeed; a denial means
// the restart sequence granted a conflicting lock first, which is an
// invariant violation, not a wait-worthy conflict — it is reported as an
// error rather than queued. The grant is commit-duration: it is released
// by the loser's EndLoser exactly as a live transaction's locks would be.
func (m *Manager) Reinstate(owner Owner, name Name, mode Mode) error {
	err := m.Request(owner, name, mode, Commit, true)
	if err != nil {
		if errors.Is(err, ErrShutdown) {
			return err
		}
		return fmt.Errorf("lock: reinstate %v %v for owner %d: %w", name, mode, owner, err)
	}
	if m.stats != nil {
		m.stats.LocksReinstated.Add(1)
	}
	return nil
}

// Release drops owner's holding on name (manual-duration unlock).
func (m *Manager) Release(owner Owner, name Name) {
	s := m.shardOf(name)
	s.mu.Lock()
	m.releaseLocked(s, name, owner)
	s.mu.Unlock()
}

// ReleaseAll drops every lock owner holds: commit or rollback completion.
// Shards are swept one at a time; new locks are never granted to owner
// concurrently (the owner is the one releasing), so the sweep is complete.
func (m *Manager) ReleaseAll(owner Owner) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		names := make([]Name, 0, len(s.held[owner]))
		for n := range s.held[owner] {
			names = append(names, n)
		}
		for _, n := range names {
			m.releaseLocked(s, n, owner)
		}
		s.mu.Unlock()
	}
}

// HoldsAtLeast reports whether owner currently holds name in mode or
// stronger (verification and debugging).
func (m *Manager) HoldsAtLeast(owner Owner, name Name, mode Mode) bool {
	s := m.shardOf(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if byOwner := s.held[owner]; byOwner != nil {
		if g, ok := byOwner[name]; ok {
			return Supremum(g.mode, mode) == g.mode
		}
	}
	return false
}

// Held lists owner's current locks (prepare records, tests).
type Held struct {
	Name Name
	Mode Mode
}

// LocksOf returns the locks owner currently holds.
func (m *Manager) LocksOf(owner Owner) []Held {
	var out []Held
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for n, g := range s.held[owner] {
			out = append(out, Held{Name: n, Mode: g.mode})
		}
		s.mu.Unlock()
	}
	return out
}

// NumLocks returns the number of distinct (name, owner) holdings.
func (m *Manager) NumLocks() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for _, byOwner := range s.held {
			n += len(byOwner)
		}
		s.mu.Unlock()
	}
	return n
}

// findCycleAllLocked returns the owners of one waits-for cycle through
// start (in chain order), or nil when start's blocked request closes no
// cycle. Caller holds every shard mutex, so the graph spanning all shards
// is consistent. Edges: a blocked owner waits for (1) every granted holder
// incompatible with its target mode and (2) every request queued ahead of
// it. Every member of a cycle has an outgoing edge and is therefore itself
// blocked, which is what makes any member abortable via its wait channel.
func (m *Manager) findCycleAllLocked(start Owner) []Owner {
	visited := map[Owner]bool{}
	var path []Owner
	var dfs func(o Owner) []Owner
	dfs = func(o Owner) []Owner {
		_, req := m.waitOfAllLocked(o)
		if req == nil {
			return nil
		}
		h := m.shardOf(req.name).table[req.name]
		if h == nil {
			return nil
		}
		path = append(path, o)
		defer func() { path = path[:len(path)-1] }()
		var successors []Owner
		for _, g := range h.granted {
			if g.owner != o && !Compatible(g.mode, req.mode) {
				successors = append(successors, g.owner)
			}
		}
		for _, q := range h.queue {
			if q == req {
				break
			}
			if q.owner != o {
				successors = append(successors, q.owner)
			}
		}
		for _, s := range successors {
			if s == start {
				return append([]Owner(nil), path...)
			}
			if !visited[s] {
				visited[s] = true
				if cyc := dfs(s); cyc != nil {
					return cyc
				}
			}
		}
		return nil
	}
	return dfs(start)
}

// Granularity selects the data lock granularity (paper §2.1: "different
// granularities of locking ... in a flexible manner").
type Granularity uint8

const (
	// GranRecord locks individual records (RIDs): the fine-granularity
	// default ARIES/IM is designed around.
	GranRecord Granularity = iota
	// GranPage locks whole data pages: the coarse alternative; a key lock
	// becomes a lock on the data page ID part of the RID.
	GranPage
)

func (g Granularity) String() string {
	if g == GranPage {
		return "page"
	}
	return "record"
}

// DataLockName names the lock protecting the record with the given RID at
// the chosen granularity. ARIES/IM data-only locking uses this same name
// for the index key containing the RID: locking the key IS locking the
// data (paper §2.1).
func DataLockName(g Granularity, page uint64, slot uint16) Name {
	if g == GranPage {
		return Name{Space: SpacePage, A: page}
	}
	return Name{Space: SpaceRecord, A: page, B: uint64(slot)}
}

// TableName names a table's intention lock.
func TableName(tableID uint64) Name { return Name{Space: SpaceTable, A: tableID} }

// EOFName names the per-index end-of-file lock (paper §2.2).
func EOFName(indexID uint64) Name { return Name{Space: SpaceEOF, A: indexID} }

// KeyValueName names a key-value lock: the ARIES/KVL and System R
// baselines, and ARIES/IM's index-specific variant, lock hashed key values
// within an index.
func KeyValueName(indexID uint64, hash uint64) Name {
	return Name{Space: SpaceKeyValue, A: indexID, B: hash}
}

// IndexPageName names an index-page lock (System R-style baseline).
func IndexPageName(indexID uint64, page uint64) Name {
	return Name{Space: SpaceIndexPage, A: indexID, B: page}
}

// TreeName names the per-index tree lock (§5 concurrent-SMO extension).
func TreeName(indexID uint64) Name { return Name{Space: SpaceTree, A: indexID} }
