package lock

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ariesim/internal/trace"
)

func rec(a, b uint64) Name { return Name{Space: SpaceRecord, A: a, B: b} }

func mustGrant(t *testing.T, m *Manager, o Owner, n Name, mode Mode, d Duration) {
	t.Helper()
	if err := m.Request(o, n, mode, d, false); err != nil {
		t.Fatalf("Request(%d, %v, %v): %v", o, n, mode, err)
	}
}

func TestCompatibilityMatrix(t *testing.T) {
	cases := []struct {
		a, b Mode
		want bool
	}{
		{S, S, true}, {S, X, false}, {X, X, false},
		{IS, IX, true}, {IX, IX, true}, {IX, S, false},
		{SIX, IS, true}, {SIX, IX, false}, {SIX, S, false},
		{IS, X, false}, {ModeNone, X, true},
	}
	for _, c := range cases {
		if got := Compatible(c.a, c.b); got != c.want {
			t.Errorf("Compatible(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := Compatible(c.b, c.a); got != c.want {
			t.Errorf("Compatible(%v,%v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestSupremum(t *testing.T) {
	cases := []struct{ a, b, want Mode }{
		{S, IX, SIX}, {IS, IX, IX}, {S, X, X}, {ModeNone, S, S},
		{SIX, S, SIX}, {IX, IX, IX},
	}
	for _, c := range cases {
		if got := Supremum(c.a, c.b); got != c.want {
			t.Errorf("Supremum(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSharedGrantsCoexist(t *testing.T) {
	m := NewManager(nil)
	mustGrant(t, m, 1, rec(1, 1), S, Commit)
	mustGrant(t, m, 2, rec(1, 1), S, Commit)
	if m.NumLocks() != 2 {
		t.Fatalf("NumLocks = %d", m.NumLocks())
	}
}

func TestConditionalDenial(t *testing.T) {
	m := NewManager(nil)
	mustGrant(t, m, 1, rec(1, 1), X, Commit)
	err := m.Request(2, rec(1, 1), S, Commit, true)
	if !errors.Is(err, ErrNotGranted) {
		t.Fatalf("want ErrNotGranted, got %v", err)
	}
	// Owner 1 re-requesting its own lock conditionally succeeds.
	if err := m.Request(1, rec(1, 1), S, Commit, true); err != nil {
		t.Fatalf("re-request: %v", err)
	}
}

func TestUnconditionalBlocksUntilRelease(t *testing.T) {
	m := NewManager(nil)
	mustGrant(t, m, 1, rec(1, 1), X, Commit)
	got := make(chan error, 1)
	go func() { got <- m.Request(2, rec(1, 1), S, Commit, false) }()
	select {
	case err := <-got:
		t.Fatalf("granted during conflict: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("never granted")
	}
	if !m.HoldsAtLeast(2, rec(1, 1), S) {
		t.Fatal("owner 2 not recorded as holder")
	}
}

func TestInstantDurationLeavesNothing(t *testing.T) {
	m := NewManager(nil)
	mustGrant(t, m, 1, rec(1, 1), X, Instant)
	if m.NumLocks() != 0 {
		t.Fatalf("instant lock retained: %d", m.NumLocks())
	}
	// Instant lock must still observe grantability: conflicts block it.
	mustGrant(t, m, 1, rec(2, 2), X, Commit)
	done := make(chan error, 1)
	go func() { done <- m.Request(2, rec(2, 2), X, Instant, false) }()
	select {
	case <-done:
		t.Fatal("instant X granted over conflicting X")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if m.NumLocks() != 0 {
		t.Fatal("instant lock retained after blocked grant")
	}
}

func TestInstantConversionKeepsHolding(t *testing.T) {
	m := NewManager(nil)
	mustGrant(t, m, 1, rec(1, 1), S, Commit)
	// Instant X over own S: conservative upgrade, still held at X after.
	mustGrant(t, m, 1, rec(1, 1), X, Instant)
	if !m.HoldsAtLeast(1, rec(1, 1), S) {
		t.Fatal("instant conversion destroyed the commit-duration holding")
	}
}

func TestConversionJumpsQueue(t *testing.T) {
	m := NewManager(nil)
	mustGrant(t, m, 1, rec(1, 1), S, Commit)
	mustGrant(t, m, 2, rec(1, 1), S, Commit)
	// Owner 3 queues for X.
	o3got := make(chan error, 1)
	go func() { o3got <- m.Request(3, rec(1, 1), X, Commit, false) }()
	time.Sleep(10 * time.Millisecond)
	// Owner 2 converts S→X: must pass owner 3 in the queue, blocked only
	// by owner 1's S.
	o2got := make(chan error, 1)
	go func() { o2got <- m.Request(2, rec(1, 1), X, Commit, false) }()
	time.Sleep(10 * time.Millisecond)
	m.ReleaseAll(1)
	select {
	case err := <-o2got:
		if err != nil {
			t.Fatalf("conversion errored: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("conversion never granted")
	}
	select {
	case <-o3got:
		t.Fatal("queued X granted while converter holds X")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(2)
	if err := <-o3got; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(3)
}

func TestFIFOFairness(t *testing.T) {
	m := NewManager(nil)
	mustGrant(t, m, 1, rec(1, 1), X, Commit)
	order := make(chan Owner, 2)
	var wg sync.WaitGroup
	enqueue := func(o Owner) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := m.Request(o, rec(1, 1), X, Commit, false); err != nil {
				t.Errorf("owner %d: %v", o, err)
				return
			}
			order <- o
			m.ReleaseAll(o)
		}()
		time.Sleep(15 * time.Millisecond) // establish queue order
	}
	enqueue(2)
	enqueue(3)
	m.ReleaseAll(1)
	wg.Wait()
	if first := <-order; first != 2 {
		t.Fatalf("first grant to %d, want 2", first)
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := NewManager(&trace.Stats{})
	mustGrant(t, m, 1, rec(1, 1), X, Commit)
	mustGrant(t, m, 2, rec(2, 2), X, Commit)
	errCh := make(chan error, 1)
	go func() { errCh <- m.Request(1, rec(2, 2), X, Commit, false) }()
	time.Sleep(20 * time.Millisecond)
	// Owner 2 now closes the cycle: 2 waits for 1 waits for 2.
	err := m.Request(2, rec(1, 1), X, Commit, false)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	// Victim aborts; owner 1 proceeds.
	m.ReleaseAll(2)
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("survivor never granted")
	}
}

func TestThreeWayDeadlock(t *testing.T) {
	m := NewManager(nil)
	mustGrant(t, m, 1, rec(1, 1), X, Commit)
	mustGrant(t, m, 2, rec(2, 2), X, Commit)
	mustGrant(t, m, 3, rec(3, 3), X, Commit)
	go m.Request(1, rec(2, 2), X, Commit, false)
	time.Sleep(10 * time.Millisecond)
	go m.Request(2, rec(3, 3), X, Commit, false)
	time.Sleep(10 * time.Millisecond)
	err := m.Request(3, rec(1, 1), X, Commit, false)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	m.ReleaseAll(3)
	m.ReleaseAll(1)
	m.ReleaseAll(2)
}

func TestConversionDeadlock(t *testing.T) {
	// Paper §5: concurrent upgrades can deadlock — the detector must see it.
	m := NewManager(nil)
	mustGrant(t, m, 1, rec(1, 1), S, Commit)
	mustGrant(t, m, 2, rec(1, 1), S, Commit)
	go m.Request(1, rec(1, 1), X, Commit, false)
	time.Sleep(20 * time.Millisecond)
	err := m.Request(2, rec(1, 1), X, Commit, false)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock on conversion cycle, got %v", err)
	}
	m.ReleaseAll(2) // victim rollback unblocks the other conversion
	time.Sleep(20 * time.Millisecond)
	if !m.HoldsAtLeast(1, rec(1, 1), X) {
		t.Fatal("survivor conversion not granted")
	}
}

func TestNoFalseDeadlock(t *testing.T) {
	m := NewManager(nil)
	mustGrant(t, m, 1, rec(1, 1), S, Commit)
	mustGrant(t, m, 2, rec(1, 1), S, Commit)
	done := make(chan error, 1)
	go func() { done <- m.Request(3, rec(1, 1), X, Commit, false) }()
	time.Sleep(10 * time.Millisecond)
	m.ReleaseAll(1)
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatalf("spurious failure: %v", err)
	}
}

func TestReleaseAllWakesWaiters(t *testing.T) {
	m := NewManager(nil)
	mustGrant(t, m, 1, rec(1, 1), X, Commit)
	mustGrant(t, m, 1, rec(2, 2), X, Commit)
	var wg sync.WaitGroup
	for o := Owner(2); o <= 5; o++ {
		wg.Add(1)
		go func(o Owner) {
			defer wg.Done()
			n := rec(uint64(o%2)+1, uint64(o%2)+1)
			if err := m.Request(o, n, S, Commit, false); err != nil {
				t.Errorf("owner %d: %v", o, err)
			}
		}(o)
	}
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(1)
	wg.Wait()
}

func TestLocksOfAndSpaces(t *testing.T) {
	m := NewManager(nil)
	mustGrant(t, m, 1, Name{Space: SpaceTable, A: 9}, IX, Commit)
	mustGrant(t, m, 1, rec(1, 1), X, Commit)
	mustGrant(t, m, 1, Name{Space: SpaceEOF, A: 3}, S, Commit)
	locks := m.LocksOf(1)
	if len(locks) != 3 {
		t.Fatalf("LocksOf = %d entries", len(locks))
	}
	spaces := map[Space]bool{}
	for _, l := range locks {
		spaces[l.Name.Space] = true
	}
	if !spaces[SpaceTable] || !spaces[SpaceRecord] || !spaces[SpaceEOF] {
		t.Fatalf("spaces missing: %v", spaces)
	}
}

func TestStatsTable(t *testing.T) {
	st := &trace.Stats{}
	m := NewManager(st)
	mustGrant(t, m, 1, rec(1, 1), S, Commit)
	mustGrant(t, m, 1, rec(1, 2), X, Instant)
	if got := st.LockCalls(int(SpaceRecord), int(S), int(Commit)); got != 1 {
		t.Errorf("S/commit count = %d", got)
	}
	if got := st.LockCalls(int(SpaceRecord), int(X), int(Instant)); got != 1 {
		t.Errorf("X/instant count = %d", got)
	}
	if st.TotalLockCalls() != 2 {
		t.Errorf("total = %d", st.TotalLockCalls())
	}
}

func TestManualRelease(t *testing.T) {
	m := NewManager(nil)
	mustGrant(t, m, 1, rec(1, 1), S, Manual)
	if m.NumLocks() != 1 {
		t.Fatal("manual lock not held")
	}
	m.Release(1, rec(1, 1))
	if m.NumLocks() != 0 {
		t.Fatal("manual release failed")
	}
	if err := m.Request(2, rec(1, 1), X, Commit, true); err != nil {
		t.Fatalf("lock not available after manual release: %v", err)
	}
}

func TestHoldsAtLeast(t *testing.T) {
	m := NewManager(nil)
	mustGrant(t, m, 1, rec(1, 1), SIX, Commit)
	if !m.HoldsAtLeast(1, rec(1, 1), S) || !m.HoldsAtLeast(1, rec(1, 1), IX) {
		t.Fatal("SIX should cover S and IX")
	}
	if m.HoldsAtLeast(1, rec(1, 1), X) {
		t.Fatal("SIX should not cover X")
	}
	if m.HoldsAtLeast(2, rec(1, 1), IS) {
		t.Fatal("non-holder reported as holder")
	}
}

// TestStressMixedWorkload hammers the manager with conflicting requests and
// verifies it neither hangs nor corrupts state. Deadlock victims retry.
func TestStressMixedWorkload(t *testing.T) {
	m := NewManager(&trace.Stats{})
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(o Owner) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				n1 := rec(uint64(i%5), 0)
				n2 := rec(uint64((i+1)%5), 0)
				mode := S
				if i%3 == 0 {
					mode = X
				}
				if err := m.Request(o, n1, mode, Commit, false); err != nil {
					m.ReleaseAll(o) // victim: rollback
					continue
				}
				if err := m.Request(o, n2, mode, Commit, false); err != nil {
					m.ReleaseAll(o)
					continue
				}
				m.ReleaseAll(o)
			}
		}(Owner(g + 1))
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("stress workload hung")
	}
	if m.NumLocks() != 0 {
		t.Fatalf("locks leaked: %d", m.NumLocks())
	}
}

// TestVictimFewestLocks: the victim of a deadlock is the owner holding the
// fewest locks — NOT blindly the requester that closed the cycle. Owner 1
// holds four locks, owner 2 holds one; when owner 1's request completes the
// cycle, owner 2 (cheapest rollback) is aborted and owner 1 survives.
func TestVictimFewestLocks(t *testing.T) {
	st := &trace.Stats{}
	m := NewManager(st)
	mustGrant(t, m, 1, rec(1, 1), X, Commit)
	mustGrant(t, m, 1, rec(10, 1), X, Commit)
	mustGrant(t, m, 1, rec(10, 2), X, Commit)
	mustGrant(t, m, 1, rec(10, 3), X, Commit)
	mustGrant(t, m, 2, rec(2, 2), X, Commit)

	victim := make(chan error, 1)
	go func() { victim <- m.Request(2, rec(1, 1), X, Commit, false) }()
	time.Sleep(20 * time.Millisecond)

	// Owner 1 closes the cycle. It holds 4 locks vs owner 2's 1, so
	// owner 2 is aborted and owner 1 keeps waiting for rec(2,2).
	survivor := make(chan error, 1)
	go func() { survivor <- m.Request(1, rec(2, 2), X, Commit, false) }()

	select {
	case err := <-victim:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("victim got %v, want ErrDeadlock", err)
		}
	case <-time.After(time.Second):
		t.Fatal("victim never aborted")
	}
	m.ReleaseAll(2) // victim rolls back, releasing rec(2,2)
	select {
	case err := <-survivor:
		if err != nil {
			t.Fatalf("survivor (more locks) was aborted: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("survivor never granted")
	}
	if st.DeadlockVictims.Load() != 1 || st.VictimsOther.Load() != 1 {
		t.Errorf("victims = %d (other = %d), want 1/1",
			st.DeadlockVictims.Load(), st.VictimsOther.Load())
	}
	m.ReleaseAll(1)
}

// TestVictimTieBreakYoungest: equal lock counts break the tie toward the
// youngest owner (highest ID — later transactions have done less work).
func TestVictimTieBreakYoungest(t *testing.T) {
	m := NewManager(&trace.Stats{})
	mustGrant(t, m, 1, rec(1, 1), X, Commit)
	mustGrant(t, m, 5, rec(2, 2), X, Commit)
	victim := make(chan error, 1)
	go func() { victim <- m.Request(5, rec(1, 1), X, Commit, false) }()
	time.Sleep(20 * time.Millisecond)
	// Both hold exactly one lock; owner 5 is younger and must lose even
	// though owner 1 is the requester that completes the cycle.
	survivor := make(chan error, 1)
	go func() { survivor <- m.Request(1, rec(2, 2), X, Commit, false) }()
	select {
	case err := <-victim:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("younger owner got %v, want ErrDeadlock", err)
		}
	case <-time.After(time.Second):
		t.Fatal("younger owner never aborted")
	}
	m.ReleaseAll(5)
	if err := <-survivor; err != nil {
		t.Fatalf("older owner aborted: %v", err)
	}
	m.ReleaseAll(1)
}

// TestLockWaitTimeout: a wait bounded by the manager default returns
// ErrLockTimeout, leaves no residue in the queue, and counts in stats.
func TestLockWaitTimeout(t *testing.T) {
	st := &trace.Stats{}
	m := NewManager(st)
	m.SetWaitTimeout(25 * time.Millisecond)
	mustGrant(t, m, 1, rec(1, 1), X, Commit)
	start := time.Now()
	err := m.Request(2, rec(1, 1), S, Commit, false)
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("want ErrLockTimeout, got %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("timed out after %v, before the deadline", d)
	}
	if st.LockTimeouts.Load() != 1 {
		t.Errorf("LockTimeouts = %d, want 1", st.LockTimeouts.Load())
	}
	// The timed-out request must be fully dequeued: release and re-grant.
	m.ReleaseAll(1)
	if err := m.Request(3, rec(1, 1), X, Commit, true); err != nil {
		t.Fatalf("stale queue entry blocks grant: %v", err)
	}
	m.ReleaseAll(3)
}

// TestPerRequestTimeoutOverride: RequestWith's timeout overrides the
// manager default in both directions (tighter, and unbounded via negative).
func TestPerRequestTimeoutOverride(t *testing.T) {
	m := NewManager(nil)
	m.SetWaitTimeout(10 * time.Second) // default: effectively unbounded here
	mustGrant(t, m, 1, rec(1, 1), X, Commit)
	err := m.RequestWith(2, rec(1, 1), S, Commit, false, 20*time.Millisecond)
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("per-request timeout ignored: %v", err)
	}
	// Negative = wait forever: must still be waiting when we release.
	got := make(chan error, 1)
	go func() { got <- m.RequestWith(3, rec(1, 1), S, Commit, false, -1) }()
	select {
	case err := <-got:
		t.Fatalf("unbounded wait returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(3)
}

// TestShutdownWakesWaiters: Shutdown (crash fencing) must wake every
// blocked waiter with ErrShutdown and refuse new requests.
func TestShutdownWakesWaiters(t *testing.T) {
	m := NewManager(nil)
	mustGrant(t, m, 1, rec(1, 1), X, Commit)
	errs := make(chan error, 3)
	for o := Owner(2); o <= 4; o++ {
		go func(o Owner) { errs <- m.Request(o, rec(1, 1), S, Commit, false) }(o)
	}
	time.Sleep(20 * time.Millisecond)
	m.Shutdown()
	for i := 0; i < 3; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrShutdown) {
				t.Fatalf("waiter got %v, want ErrShutdown", err)
			}
		case <-time.After(time.Second):
			t.Fatal("waiter not woken by shutdown")
		}
	}
	if err := m.Request(5, rec(9, 9), S, Commit, false); !errors.Is(err, ErrShutdown) {
		t.Fatalf("post-shutdown request got %v, want ErrShutdown", err)
	}
}

// TestTimeoutRemovalWakesGrantable: when a queued X request times out,
// compatible requests queued BEHIND it (blocked only by FIFO order) must be
// granted immediately — the removal path must reprocess the queue.
func TestTimeoutRemovalWakesGrantable(t *testing.T) {
	m := NewManager(nil)
	mustGrant(t, m, 1, rec(1, 1), S, Commit)
	// Owner 2 queues X (conflicts with the held S), bounded wait.
	xgot := make(chan error, 1)
	go func() { xgot <- m.RequestWith(2, rec(1, 1), X, Commit, false, 50*time.Millisecond) }()
	time.Sleep(15 * time.Millisecond)
	// Owners 3 and 4 queue S behind the X: compatible with owner 1, but
	// FIFO keeps them waiting while the X sits ahead.
	sgot := make(chan error, 2)
	for o := Owner(3); o <= 4; o++ {
		go func(o Owner) { sgot <- m.Request(o, rec(1, 1), S, Commit, false) }(o)
	}
	select {
	case err := <-sgot:
		t.Fatalf("S granted past a queued X: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if err := <-xgot; !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("X waiter got %v, want ErrLockTimeout", err)
	}
	// The X's removal must wake both S requests without any release.
	for i := 0; i < 2; i++ {
		select {
		case err := <-sgot:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(time.Second):
			t.Fatal("S waiter not woken after X timed out")
		}
	}
	m.ReleaseAll(1)
	m.ReleaseAll(3)
	m.ReleaseAll(4)
}

func TestStringers(t *testing.T) {
	if X.String() != "X" || SIX.String() != "SIX" || Instant.String() != "instant" {
		t.Fatal("stringers broken")
	}
	if SpaceRecord.String() != "record" || SpaceEOF.String() != "eof" {
		t.Fatal("space stringers broken")
	}
	n := rec(7, 8)
	if n.String() != "record(7,8)" {
		t.Fatalf("Name.String = %q", n.String())
	}
}
