package lock

import (
	"errors"
	"testing"
	"time"
)

// Shard-correctness tests: the properties PR 2 established for the global-
// mutex manager must survive the hash-sharded table — deadlock cycles that
// span shards are still detected and broken, savepoint lock release
// (Token/ReleaseSince) still works when an owner's locks are spread across
// shards, and Shutdown still fences waiters parked on every shard.

// namesInDistinctShards returns n record-lock names guaranteed to hash to
// n distinct shards (skipped if the manager has fewer shards than n).
func namesInDistinctShards(t *testing.T, m *Manager, n int) []Name {
	t.Helper()
	if m.NumShards() < n {
		t.Skipf("manager has %d shards, need %d", m.NumShards(), n)
	}
	seen := make(map[*shard]bool)
	var out []Name
	for a := uint64(0); len(out) < n && a < 1<<16; a++ {
		name := Name{Space: SpaceRecord, A: a, B: a % 3}
		s := m.shardOf(name)
		if !seen[s] {
			seen[s] = true
			out = append(out, name)
		}
	}
	if len(out) < n {
		t.Fatalf("could not find %d names in distinct shards", n)
	}
	return out
}

func TestShardDistribution(t *testing.T) {
	m := NewManager(nil)
	if m.NumShards() != DefaultShards {
		t.Fatalf("NumShards = %d, want %d", m.NumShards(), DefaultShards)
	}
	shards := make(map[*shard]int)
	for a := uint64(0); a < 1024; a++ {
		shards[m.shardOf(Name{Space: SpaceRecord, A: a / 8, B: a % 8})]++
	}
	if len(shards) < DefaultShards/2 {
		t.Fatalf("1024 names landed on only %d/%d shards: degenerate hash", len(shards), DefaultShards)
	}
	// One-shard manager: everything degenerates to the global mutex.
	m1 := NewManagerSharded(nil, 1)
	if m1.NumShards() != 1 {
		t.Fatalf("NumShards = %d, want 1", m1.NumShards())
	}
}

// TestCrossShardDeadlock: a two-member cycle whose lock names live in
// different shards is detected and exactly one member aborted.
func TestCrossShardDeadlock(t *testing.T) {
	m := NewManager(nil)
	names := namesInDistinctShards(t, m, 2)
	n1, n2 := names[0], names[1]

	if err := m.Request(1, n1, X, Commit, false); err != nil {
		t.Fatal(err)
	}
	if err := m.Request(2, n2, X, Commit, false); err != nil {
		t.Fatal(err)
	}

	errs := make(chan error, 2)
	go func() { errs <- m.Request(1, n2, X, Commit, false) }() // 1 waits for 2
	time.Sleep(20 * time.Millisecond)                          // let owner 1 block
	go func() { errs <- m.Request(2, n1, X, Commit, false) }() // closes the cycle

	var deadlocks, grants int
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			switch {
			case err == nil:
				grants++
			case errors.Is(err, ErrDeadlock):
				deadlocks++
				// A real victim rolls back and frees its holdings; do that
				// here so the survivor's queued request is granted.
				m.ReleaseAll(1)
				m.ReleaseAll(2)
			default:
				t.Fatalf("unexpected error: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("cross-shard deadlock not detected: requests still blocked")
		}
	}
	if deadlocks != 1 || grants != 1 {
		t.Fatalf("deadlocks=%d grants=%d, want exactly one victim and one survivor", deadlocks, grants)
	}
}

// TestCrossShardThreeWayDeadlock: a 3-cycle spanning three shards.
func TestCrossShardThreeWayDeadlock(t *testing.T) {
	m := NewManager(nil)
	names := namesInDistinctShards(t, m, 3)
	for i := 0; i < 3; i++ {
		if err := m.Request(Owner(i+1), names[i], X, Commit, false); err != nil {
			t.Fatal(err)
		}
	}
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		i := i
		go func() { errs <- m.Request(Owner(i+1), names[(i+1)%3], X, Commit, false) }()
		time.Sleep(20 * time.Millisecond)
	}
	// Exactly one member of the cycle must be aborted; on its abort, free
	// every lock table entry so the survivors drain.
	gotDeadlock := false
	for i := 0; i < 3; i++ {
		select {
		case err := <-errs:
			if errors.Is(err, ErrDeadlock) {
				if gotDeadlock {
					t.Fatal("more than one deadlock victim in a single cycle")
				}
				gotDeadlock = true
				for o := Owner(1); o <= 3; o++ {
					m.ReleaseAll(o)
				}
			} else if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("three-way cross-shard deadlock not resolved")
		}
	}
	if !gotDeadlock {
		t.Fatal("no deadlock victim chosen")
	}
}

// TestReleaseSinceAcrossShards: savepoint lock release must find and drop
// post-token locks no matter which shards they hash to, revert upgrades,
// and wake waiters on every affected shard.
func TestReleaseSinceAcrossShards(t *testing.T) {
	m := NewManager(nil)
	names := namesInDistinctShards(t, m, 8)
	pre, post := names[:3], names[3:]

	for _, n := range pre {
		if err := m.Request(7, n, S, Commit, false); err != nil {
			t.Fatal(err)
		}
	}
	tok := m.Token()
	// Upgrade one pre-token lock and take the post-token ones.
	if err := m.Request(7, pre[0], X, Commit, false); err != nil {
		t.Fatal(err)
	}
	for _, n := range post {
		if err := m.Request(7, n, X, Commit, false); err != nil {
			t.Fatal(err)
		}
	}

	// Waiters blocked on post-token names, spread across shards.
	granted := make(chan Name, len(post))
	for _, n := range post {
		n := n
		go func() {
			if err := m.Request(99, n, S, Commit, false); err == nil {
				granted <- n
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)

	changed := m.ReleaseSince(7, tok)
	if want := len(post) + 1; changed != want { // post-token grants + one upgrade revert
		t.Fatalf("ReleaseSince changed %d holdings, want %d", changed, want)
	}
	for _, n := range post {
		if m.HoldsAtLeast(7, n, IS) {
			t.Fatalf("post-token lock %v survived ReleaseSince", n)
		}
	}
	for _, n := range pre {
		if !m.HoldsAtLeast(7, n, S) {
			t.Fatalf("pre-token lock %v lost by ReleaseSince", n)
		}
	}
	if m.HoldsAtLeast(7, pre[0], X) {
		t.Fatal("post-token upgrade on a pre-token lock not reverted")
	}
	for range post {
		select {
		case <-granted:
		case <-time.After(5 * time.Second):
			t.Fatal("waiter on a released shard never woke")
		}
	}
}

// TestShutdownFencesEveryShard: waiters parked on names in distinct shards
// all wake with ErrShutdown, and later requests fail fast on every shard.
func TestShutdownFencesEveryShard(t *testing.T) {
	m := NewManager(nil)
	const waiters = 8
	names := namesInDistinctShards(t, m, waiters)
	for i, n := range names {
		if err := m.Request(Owner(100+i), n, X, Commit, false); err != nil {
			t.Fatal(err)
		}
	}
	errs := make(chan error, waiters)
	for i, n := range names {
		i, n := i, n
		go func() { errs <- m.Request(Owner(200+i), n, S, Commit, false) }()
	}
	time.Sleep(50 * time.Millisecond)
	m.Shutdown()
	for i := 0; i < waiters; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrShutdown) {
				t.Fatalf("waiter woke with %v, want ErrShutdown", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("a shard's waiter was not fenced by Shutdown")
		}
	}
	for _, n := range names {
		if err := m.Request(300, n, S, Commit, false); !errors.Is(err, ErrShutdown) {
			t.Fatalf("post-shutdown request on shard of %v returned %v, want ErrShutdown", n, err)
		}
	}
}

// TestSavepointTokensGloballyOrdered: tokens from the shared atomic
// sequence order grants across shards — a lock granted on shard A after a
// token taken during activity on shard B is released by ReleaseSince.
func TestSavepointTokensGloballyOrdered(t *testing.T) {
	m := NewManager(nil)
	names := namesInDistinctShards(t, m, 4)
	if err := m.Request(1, names[0], X, Commit, false); err != nil {
		t.Fatal(err)
	}
	tok := m.Token()
	for _, n := range names[1:] {
		if err := m.Request(1, n, X, Commit, false); err != nil {
			t.Fatal(err)
		}
	}
	if changed := m.ReleaseSince(1, tok); changed != 3 {
		t.Fatalf("ReleaseSince changed %d, want 3", changed)
	}
	if !m.HoldsAtLeast(1, names[0], X) {
		t.Fatal("pre-token lock released")
	}
}
