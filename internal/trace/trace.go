// Package trace provides the instrumentation substrate for ariesim.
//
// ARIES/IM's evaluation is expressed in counts: locks acquired (by name
// space, mode, and duration), latch acquisitions and waits, pages fixed,
// log records and bytes written, synchronous I/Os, and tree traversals
// performed during redo/undo. Every component of the engine reports into a
// Stats sink so that the benchmark harness can regenerate the paper's
// Figure 2 table and quantify the qualitative claims (fewer locks than
// ARIES/KVL and System R, page-oriented redo, readers unblocked by SMOs).
//
// All counters are updateable concurrently; Snapshot produces a consistent-
// enough copy for reporting (individual counters are atomic; cross-counter
// skew is irrelevant for the quantities measured).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Dimension bounds for the lock-call table. These mirror the enums in the
// lock package; trace stays dependency-free so every layer can import it.
const (
	MaxSpaces    = 12
	MaxModes     = 8
	MaxDurations = 4
)

// Stats is a sink of engine counters. The zero value is ready to use.
// A nil *Stats is also valid: every method is a no-op, so hot paths can be
// instrumented unconditionally.
type Stats struct {
	// Lock manager.
	lockCalls             [MaxSpaces][MaxModes][MaxDurations]atomic.Uint64
	LockWaits             atomic.Uint64 // requests that could not be granted immediately
	LockDenials           atomic.Uint64 // conditional requests denied
	Deadlocks             atomic.Uint64 // waits-for cycles detected
	DeadlockVictims       atomic.Uint64 // waiters aborted to break a cycle (requester or other)
	VictimsOther          atomic.Uint64 // victims that were NOT the requester (cost-based choice)
	LockTimeouts          atomic.Uint64 // waits abandoned at the lock-wait timeout
	SavepointLockReleases atomic.Uint64 // locks released early by partial rollback

	// Transaction retry layer (db.RunTxn).
	TxnRetries           atomic.Uint64 // transaction bodies re-executed after rollback
	TxnDeadlockRetries   atomic.Uint64 // ...because the txn was a deadlock victim
	TxnTimeoutRetries    atomic.Uint64 // ...because a lock wait timed out
	TxnCrashWaits        atomic.Uint64 // RunTxn attempts parked waiting for Restart
	TxnStepRetries       atomic.Uint64 // savepoint-scoped partial retries (RunTxnSteps)
	TxnRetrySuccesses    atomic.Uint64 // transactions that committed after >=1 retry
	TxnRecoveringRetries atomic.Uint64 // immediate retries on ErrRecovering (engine up, op degraded)

	// Latches.
	LatchAcquires     atomic.Uint64
	LatchWaits        atomic.Uint64 // unconditional acquisitions that blocked
	LatchTryFailures  atomic.Uint64 // conditional acquisitions denied
	TreeLatchAcquires atomic.Uint64
	TreeLatchWaits    atomic.Uint64

	// Buffer pool.
	PageFixes       atomic.Uint64
	PageMisses      atomic.Uint64 // fixes that required a disk read
	PageWrites      atomic.Uint64 // dirty pages written to disk (steal, cleaner, or flush)
	PageEvicted     atomic.Uint64
	EvictionsDirty  atomic.Uint64 // foreground evictions that had to write back a dirty victim
	EvictionStalls  atomic.Uint64 // Fix retries because every candidate frame was pinned
	FixParks        atomic.Uint64 // fixers parked on another fixer's in-flight read
	CleanerPasses   atomic.Uint64 // background cleaner passes completed
	CleanerWrites   atomic.Uint64 // dirty frames flushed by the cleaner
	PagesPrefetched atomic.Uint64 // pages pulled in ahead of demand (restart prefetcher)

	// Log.
	LogRecords         atomic.Uint64
	LogBytes           atomic.Uint64
	LogForces          atomic.Uint64 // physical flushes that advanced the stable LSN
	ForceWaiters       atomic.Uint64 // Force callers that blocked behind an in-flight flush
	GroupCommits       atomic.Uint64 // Force callers hardened by a flush they did not perform
	AppendReservations atomic.Uint64 // lock-free LSN range claims (one per append)
	WatermarkStalls    atomic.Uint64 // forces that waited for the contiguity watermark to cover their LSN

	// Fault handling (injected I/O errors and media corruption).
	IORetries           atomic.Uint64 // transient I/O errors retried by the buffer pool
	CorruptPages        atomic.Uint64 // checksum/permanent-error page reads detected
	MediaRecoveries     atomic.Uint64 // pages rebuilt via media recovery
	TornTailTruncations atomic.Uint64 // crash sweeps that cut a bad-CRC log tail

	// Index manager.
	Traversals         atomic.Uint64 // root-to-leaf tree traversals
	LeafReposition     atomic.Uint64 // fetch-next repositionings after LSN change
	SMOs               atomic.Uint64 // page splits + page deletions
	PageSplits         atomic.Uint64
	PageDeletes        atomic.Uint64
	UndoPageOriented   atomic.Uint64 // undos applied without a traversal
	UndoLogical        atomic.Uint64 // undos that retraversed the tree
	RedoApplied        atomic.Uint64 // log records redone at restart
	RedoSkipped        atomic.Uint64 // redo candidates already on the page
	RedoRecordsScanned atomic.Uint64 // log records examined by restart redo (all workers)

	// Online restart.
	OnlineRestarts               atomic.Uint64 // restarts that opened after analysis (online mode)
	LocksReinstated              atomic.Uint64 // loser locks re-granted from the log at restart
	PagesRedoneOnDemand          atomic.Uint64 // DPT pages recovered at fix time by a foreground caller
	PagesRedoneByDrain           atomic.Uint64 // DPT pages recovered by the background drain workers
	CheckpointsSkippedRecovering atomic.Uint64 // checkpoints refused while online recovery was pending

	// Replication (internal/repl hot standby).
	SegmentsShipped  atomic.Uint64 // segments the shipper framed and sent
	SegmentsResent   atomic.Uint64 // segments re-shipped after NAK or ack stall
	SegmentsApplied  atomic.Uint64 // segments the standby appended and replayed
	SegmentsRejected atomic.Uint64 // segments the standby discarded (corrupt, stale epoch, duplicate)
	ReplNaks         atomic.Uint64 // gap re-requests sent by the standby
	ReplReseeds      atomic.Uint64 // full-archive re-seeds after unrecoverable gaps
	ReplCommitsAcked atomic.Uint64 // commits confirmed standby-durable through the commit gate
	Promotions       atomic.Uint64 // standbys promoted to serving primary

	AmbiguityRestarts atomic.Uint64 // Fig 4 "unwind recursion" events
	SMBitWaits        atomic.Uint64 // operations delayed by SM_Bit
	DeleteBitPOSCs    atomic.Uint64 // points of structural consistency forced by Delete_Bit

	// MVCC snapshot reads (internal/mvcc version store + db read-only mode).
	SnapshotBegins    atomic.Uint64 // read-only transactions begun in snapshot mode
	SnapshotReads     atomic.Uint64 // Get/Scan row reads resolved through a snapshot
	SnapshotChainHits atomic.Uint64 // snapshot reads answered by a version chain (not the page)
	SnapshotTooOld    atomic.Uint64 // reads aborted because the needed version was pruned
	VersionsPushed    atomic.Uint64 // record versions appended to chains by writers
	VersionsPruned    atomic.Uint64 // obsolete versions discarded from chains
	ChainsCreated     atomic.Uint64 // version chains materialized
	ChainsRemoved     atomic.Uint64 // version chains fully retired
	VersionChainPeak  atomic.Uint64 // max versions ever held by one chain (gauge, not a counter)
	ReadOnlyLockCalls atomic.Uint64 // lock-manager requests issued by snapshot transactions (must stay 0)
}

// MaxGauge raises a gauge counter to v if v exceeds its current value
// (lock-free CAS loop; nil-safe like every Stats method).
func (s *Stats) MaxGauge(c *atomic.Uint64, v uint64) {
	if s == nil || c == nil {
		return
	}
	for {
		cur := c.Load()
		if v <= cur || c.CompareAndSwap(cur, v) {
			return
		}
	}
}

// mu guards spaceNames / modeNames / durationNames registration.
var (
	namesMu       sync.RWMutex
	spaceNames    = map[int]string{}
	modeNames     = map[int]string{}
	durationNames = map[int]string{}
)

// RegisterSpaceName associates a human-readable label with a lock name
// space index for table rendering.
func RegisterSpaceName(space int, name string) {
	namesMu.Lock()
	defer namesMu.Unlock()
	spaceNames[space] = name
}

// RegisterModeName associates a label with a lock mode index.
func RegisterModeName(mode int, name string) {
	namesMu.Lock()
	defer namesMu.Unlock()
	modeNames[mode] = name
}

// RegisterDurationName associates a label with a lock duration index.
func RegisterDurationName(d int, name string) {
	namesMu.Lock()
	defer namesMu.Unlock()
	durationNames[d] = name
}

func spaceName(i int) string    { return lookupName(spaceNames, i, "space") }
func modeName(i int) string     { return lookupName(modeNames, i, "mode") }
func durationName(i int) string { return lookupName(durationNames, i, "dur") }

func lookupName(m map[int]string, i int, kind string) string {
	namesMu.RLock()
	defer namesMu.RUnlock()
	if s, ok := m[i]; ok {
		return s
	}
	return fmt.Sprintf("%s%d", kind, i)
}

// CountLock records one lock request in the (space, mode, duration) cell.
// Out-of-range indices are clamped into the table so an unregistered
// dimension can never panic a production path.
func (s *Stats) CountLock(space, mode, duration int) {
	if s == nil {
		return
	}
	s.lockCalls[clamp(space, MaxSpaces)][clamp(mode, MaxModes)][clamp(duration, MaxDurations)].Add(1)
}

func clamp(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// LockCalls returns the count for one cell.
func (s *Stats) LockCalls(space, mode, duration int) uint64 {
	if s == nil {
		return 0
	}
	return s.lockCalls[clamp(space, MaxSpaces)][clamp(mode, MaxModes)][clamp(duration, MaxDurations)].Load()
}

// TotalLockCalls sums the lock table.
func (s *Stats) TotalLockCalls() uint64 {
	if s == nil {
		return 0
	}
	var t uint64
	for i := range s.lockCalls {
		for j := range s.lockCalls[i] {
			for k := range s.lockCalls[i][j] {
				t += s.lockCalls[i][j][k].Load()
			}
		}
	}
	return t
}

// Add is a nil-safe increment helper for the scalar counters.
func Add(c *atomic.Uint64, n uint64) {
	if c != nil {
		c.Add(n)
	}
}

// Inc is a nil-safe helper used by components holding a possibly-nil Stats.
func (s *Stats) Inc(c *atomic.Uint64) {
	if s == nil || c == nil {
		return
	}
	c.Add(1)
}

// Snapshot is a plain-value copy of all counters, suitable for diffing
// around a measured region.
type Snapshot struct {
	LockCalls [MaxSpaces][MaxModes][MaxDurations]uint64

	LockWaits, LockDenials, Deadlocks                         uint64
	DeadlockVictims, VictimsOther, LockTimeouts               uint64
	SavepointLockReleases                                     uint64
	TxnRetries, TxnDeadlockRetries, TxnTimeoutRetries         uint64
	TxnCrashWaits, TxnStepRetries, TxnRetrySuccesses          uint64
	TxnRecoveringRetries                                      uint64
	LatchAcquires, LatchWaits, LatchTryFailures               uint64
	TreeLatchAcquires, TreeLatchWaits                         uint64
	PageFixes, PageMisses, PageWrites, PageEvicted            uint64
	EvictionsDirty, EvictionStalls, FixParks                  uint64
	CleanerPasses, CleanerWrites, PagesPrefetched             uint64
	LogRecords, LogBytes, LogForces                           uint64
	ForceWaiters, GroupCommits                                uint64
	AppendReservations, WatermarkStalls                       uint64
	IORetries, CorruptPages                                   uint64
	MediaRecoveries, TornTailTruncations                      uint64
	Traversals, LeafReposition, SMOs, PageSplits, PageDeletes uint64
	UndoPageOriented, UndoLogical, RedoApplied, RedoSkipped   uint64
	RedoRecordsScanned                                        uint64
	OnlineRestarts, LocksReinstated                           uint64
	PagesRedoneOnDemand, PagesRedoneByDrain                   uint64
	CheckpointsSkippedRecovering                              uint64
	SegmentsShipped, SegmentsResent, SegmentsApplied          uint64
	SegmentsRejected, ReplNaks, ReplReseeds                   uint64
	ReplCommitsAcked, Promotions                              uint64
	AmbiguityRestarts, SMBitWaits, DeleteBitPOSCs             uint64
	SnapshotBegins, SnapshotReads, SnapshotChainHits          uint64
	SnapshotTooOld, VersionsPushed, VersionsPruned            uint64
	ChainsCreated, ChainsRemoved, VersionChainPeak            uint64
	ReadOnlyLockCalls                                         uint64
}

// Snap copies the current counter values.
func (s *Stats) Snap() Snapshot {
	var out Snapshot
	if s == nil {
		return out
	}
	for i := range s.lockCalls {
		for j := range s.lockCalls[i] {
			for k := range s.lockCalls[i][j] {
				out.LockCalls[i][j][k] = s.lockCalls[i][j][k].Load()
			}
		}
	}
	out.LockWaits = s.LockWaits.Load()
	out.LockDenials = s.LockDenials.Load()
	out.Deadlocks = s.Deadlocks.Load()
	out.DeadlockVictims = s.DeadlockVictims.Load()
	out.VictimsOther = s.VictimsOther.Load()
	out.LockTimeouts = s.LockTimeouts.Load()
	out.SavepointLockReleases = s.SavepointLockReleases.Load()
	out.TxnRetries = s.TxnRetries.Load()
	out.TxnDeadlockRetries = s.TxnDeadlockRetries.Load()
	out.TxnTimeoutRetries = s.TxnTimeoutRetries.Load()
	out.TxnCrashWaits = s.TxnCrashWaits.Load()
	out.TxnStepRetries = s.TxnStepRetries.Load()
	out.TxnRetrySuccesses = s.TxnRetrySuccesses.Load()
	out.TxnRecoveringRetries = s.TxnRecoveringRetries.Load()
	out.LatchAcquires = s.LatchAcquires.Load()
	out.LatchWaits = s.LatchWaits.Load()
	out.LatchTryFailures = s.LatchTryFailures.Load()
	out.TreeLatchAcquires = s.TreeLatchAcquires.Load()
	out.TreeLatchWaits = s.TreeLatchWaits.Load()
	out.PageFixes = s.PageFixes.Load()
	out.PageMisses = s.PageMisses.Load()
	out.PageWrites = s.PageWrites.Load()
	out.PageEvicted = s.PageEvicted.Load()
	out.EvictionsDirty = s.EvictionsDirty.Load()
	out.EvictionStalls = s.EvictionStalls.Load()
	out.FixParks = s.FixParks.Load()
	out.CleanerPasses = s.CleanerPasses.Load()
	out.CleanerWrites = s.CleanerWrites.Load()
	out.PagesPrefetched = s.PagesPrefetched.Load()
	out.LogRecords = s.LogRecords.Load()
	out.LogBytes = s.LogBytes.Load()
	out.LogForces = s.LogForces.Load()
	out.ForceWaiters = s.ForceWaiters.Load()
	out.GroupCommits = s.GroupCommits.Load()
	out.AppendReservations = s.AppendReservations.Load()
	out.WatermarkStalls = s.WatermarkStalls.Load()
	out.IORetries = s.IORetries.Load()
	out.CorruptPages = s.CorruptPages.Load()
	out.MediaRecoveries = s.MediaRecoveries.Load()
	out.TornTailTruncations = s.TornTailTruncations.Load()
	out.Traversals = s.Traversals.Load()
	out.LeafReposition = s.LeafReposition.Load()
	out.SMOs = s.SMOs.Load()
	out.PageSplits = s.PageSplits.Load()
	out.PageDeletes = s.PageDeletes.Load()
	out.UndoPageOriented = s.UndoPageOriented.Load()
	out.UndoLogical = s.UndoLogical.Load()
	out.RedoApplied = s.RedoApplied.Load()
	out.RedoSkipped = s.RedoSkipped.Load()
	out.RedoRecordsScanned = s.RedoRecordsScanned.Load()
	out.OnlineRestarts = s.OnlineRestarts.Load()
	out.LocksReinstated = s.LocksReinstated.Load()
	out.PagesRedoneOnDemand = s.PagesRedoneOnDemand.Load()
	out.PagesRedoneByDrain = s.PagesRedoneByDrain.Load()
	out.CheckpointsSkippedRecovering = s.CheckpointsSkippedRecovering.Load()
	out.SegmentsShipped = s.SegmentsShipped.Load()
	out.SegmentsResent = s.SegmentsResent.Load()
	out.SegmentsApplied = s.SegmentsApplied.Load()
	out.SegmentsRejected = s.SegmentsRejected.Load()
	out.ReplNaks = s.ReplNaks.Load()
	out.ReplReseeds = s.ReplReseeds.Load()
	out.ReplCommitsAcked = s.ReplCommitsAcked.Load()
	out.Promotions = s.Promotions.Load()
	out.AmbiguityRestarts = s.AmbiguityRestarts.Load()
	out.SMBitWaits = s.SMBitWaits.Load()
	out.DeleteBitPOSCs = s.DeleteBitPOSCs.Load()
	out.SnapshotBegins = s.SnapshotBegins.Load()
	out.SnapshotReads = s.SnapshotReads.Load()
	out.SnapshotChainHits = s.SnapshotChainHits.Load()
	out.SnapshotTooOld = s.SnapshotTooOld.Load()
	out.VersionsPushed = s.VersionsPushed.Load()
	out.VersionsPruned = s.VersionsPruned.Load()
	out.ChainsCreated = s.ChainsCreated.Load()
	out.ChainsRemoved = s.ChainsRemoved.Load()
	out.VersionChainPeak = s.VersionChainPeak.Load()
	out.ReadOnlyLockCalls = s.ReadOnlyLockCalls.Load()
	return out
}

// Diff returns after - before, cell-wise.
func Diff(before, after Snapshot) Snapshot {
	var d Snapshot
	for i := range d.LockCalls {
		for j := range d.LockCalls[i] {
			for k := range d.LockCalls[i][j] {
				d.LockCalls[i][j][k] = after.LockCalls[i][j][k] - before.LockCalls[i][j][k]
			}
		}
	}
	d.LockWaits = after.LockWaits - before.LockWaits
	d.LockDenials = after.LockDenials - before.LockDenials
	d.Deadlocks = after.Deadlocks - before.Deadlocks
	d.DeadlockVictims = after.DeadlockVictims - before.DeadlockVictims
	d.VictimsOther = after.VictimsOther - before.VictimsOther
	d.LockTimeouts = after.LockTimeouts - before.LockTimeouts
	d.SavepointLockReleases = after.SavepointLockReleases - before.SavepointLockReleases
	d.TxnRetries = after.TxnRetries - before.TxnRetries
	d.TxnDeadlockRetries = after.TxnDeadlockRetries - before.TxnDeadlockRetries
	d.TxnTimeoutRetries = after.TxnTimeoutRetries - before.TxnTimeoutRetries
	d.TxnCrashWaits = after.TxnCrashWaits - before.TxnCrashWaits
	d.TxnStepRetries = after.TxnStepRetries - before.TxnStepRetries
	d.TxnRetrySuccesses = after.TxnRetrySuccesses - before.TxnRetrySuccesses
	d.TxnRecoveringRetries = after.TxnRecoveringRetries - before.TxnRecoveringRetries
	d.LatchAcquires = after.LatchAcquires - before.LatchAcquires
	d.LatchWaits = after.LatchWaits - before.LatchWaits
	d.LatchTryFailures = after.LatchTryFailures - before.LatchTryFailures
	d.TreeLatchAcquires = after.TreeLatchAcquires - before.TreeLatchAcquires
	d.TreeLatchWaits = after.TreeLatchWaits - before.TreeLatchWaits
	d.PageFixes = after.PageFixes - before.PageFixes
	d.PageMisses = after.PageMisses - before.PageMisses
	d.PageWrites = after.PageWrites - before.PageWrites
	d.PageEvicted = after.PageEvicted - before.PageEvicted
	d.EvictionsDirty = after.EvictionsDirty - before.EvictionsDirty
	d.EvictionStalls = after.EvictionStalls - before.EvictionStalls
	d.FixParks = after.FixParks - before.FixParks
	d.CleanerPasses = after.CleanerPasses - before.CleanerPasses
	d.CleanerWrites = after.CleanerWrites - before.CleanerWrites
	d.PagesPrefetched = after.PagesPrefetched - before.PagesPrefetched
	d.LogRecords = after.LogRecords - before.LogRecords
	d.LogBytes = after.LogBytes - before.LogBytes
	d.LogForces = after.LogForces - before.LogForces
	d.ForceWaiters = after.ForceWaiters - before.ForceWaiters
	d.GroupCommits = after.GroupCommits - before.GroupCommits
	d.AppendReservations = after.AppendReservations - before.AppendReservations
	d.WatermarkStalls = after.WatermarkStalls - before.WatermarkStalls
	d.IORetries = after.IORetries - before.IORetries
	d.CorruptPages = after.CorruptPages - before.CorruptPages
	d.MediaRecoveries = after.MediaRecoveries - before.MediaRecoveries
	d.TornTailTruncations = after.TornTailTruncations - before.TornTailTruncations
	d.Traversals = after.Traversals - before.Traversals
	d.LeafReposition = after.LeafReposition - before.LeafReposition
	d.SMOs = after.SMOs - before.SMOs
	d.PageSplits = after.PageSplits - before.PageSplits
	d.PageDeletes = after.PageDeletes - before.PageDeletes
	d.UndoPageOriented = after.UndoPageOriented - before.UndoPageOriented
	d.UndoLogical = after.UndoLogical - before.UndoLogical
	d.RedoApplied = after.RedoApplied - before.RedoApplied
	d.RedoSkipped = after.RedoSkipped - before.RedoSkipped
	d.RedoRecordsScanned = after.RedoRecordsScanned - before.RedoRecordsScanned
	d.OnlineRestarts = after.OnlineRestarts - before.OnlineRestarts
	d.LocksReinstated = after.LocksReinstated - before.LocksReinstated
	d.PagesRedoneOnDemand = after.PagesRedoneOnDemand - before.PagesRedoneOnDemand
	d.PagesRedoneByDrain = after.PagesRedoneByDrain - before.PagesRedoneByDrain
	d.CheckpointsSkippedRecovering = after.CheckpointsSkippedRecovering - before.CheckpointsSkippedRecovering
	d.SegmentsShipped = after.SegmentsShipped - before.SegmentsShipped
	d.SegmentsResent = after.SegmentsResent - before.SegmentsResent
	d.SegmentsApplied = after.SegmentsApplied - before.SegmentsApplied
	d.SegmentsRejected = after.SegmentsRejected - before.SegmentsRejected
	d.ReplNaks = after.ReplNaks - before.ReplNaks
	d.ReplReseeds = after.ReplReseeds - before.ReplReseeds
	d.ReplCommitsAcked = after.ReplCommitsAcked - before.ReplCommitsAcked
	d.Promotions = after.Promotions - before.Promotions
	d.AmbiguityRestarts = after.AmbiguityRestarts - before.AmbiguityRestarts
	d.SMBitWaits = after.SMBitWaits - before.SMBitWaits
	d.DeleteBitPOSCs = after.DeleteBitPOSCs - before.DeleteBitPOSCs
	d.SnapshotBegins = after.SnapshotBegins - before.SnapshotBegins
	d.SnapshotReads = after.SnapshotReads - before.SnapshotReads
	d.SnapshotChainHits = after.SnapshotChainHits - before.SnapshotChainHits
	d.SnapshotTooOld = after.SnapshotTooOld - before.SnapshotTooOld
	d.VersionsPushed = after.VersionsPushed - before.VersionsPushed
	d.VersionsPruned = after.VersionsPruned - before.VersionsPruned
	d.ChainsCreated = after.ChainsCreated - before.ChainsCreated
	d.ChainsRemoved = after.ChainsRemoved - before.ChainsRemoved
	// VersionChainPeak is an epoch-global high-water gauge; subtracting
	// snapshots is meaningless, so a diff carries the "after" reading.
	d.VersionChainPeak = after.VersionChainPeak
	d.ReadOnlyLockCalls = after.ReadOnlyLockCalls - before.ReadOnlyLockCalls
	return d
}

// TotalLocks sums every lock-call cell in the snapshot.
func (sn Snapshot) TotalLocks() uint64 {
	var t uint64
	for i := range sn.LockCalls {
		for j := range sn.LockCalls[i] {
			for k := range sn.LockCalls[i][j] {
				t += sn.LockCalls[i][j][k]
			}
		}
	}
	return t
}

// LockCell describes one nonzero entry of the lock table in a snapshot.
type LockCell struct {
	Space, Mode, Duration string
	Count                 uint64
}

// NonzeroLockCells returns the nonzero lock-table entries with registered
// labels, ordered deterministically (by space, mode, duration index).
func (sn Snapshot) NonzeroLockCells() []LockCell {
	var cells []LockCell
	for i := range sn.LockCalls {
		for j := range sn.LockCalls[i] {
			for k := range sn.LockCalls[i][j] {
				if n := sn.LockCalls[i][j][k]; n > 0 {
					cells = append(cells, LockCell{
						Space:    spaceName(i),
						Mode:     modeName(j),
						Duration: durationName(k),
						Count:    n,
					})
				}
			}
		}
	}
	return cells
}

// FormatLockTable renders the nonzero lock-table entries as an aligned
// text table, the building block of the Figure 2 reproduction.
func (sn Snapshot) FormatLockTable() string {
	cells := sn.NonzeroLockCells()
	if len(cells) == 0 {
		return "(no locks acquired)\n"
	}
	sort.SliceStable(cells, func(a, b int) bool {
		if cells[a].Space != cells[b].Space {
			return cells[a].Space < cells[b].Space
		}
		return cells[a].Mode < cells[b].Mode
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-5s %-8s %8s\n", "SPACE", "MODE", "DURATION", "COUNT")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-12s %-5s %-8s %8d\n", c.Space, c.Mode, c.Duration, c.Count)
	}
	return b.String()
}
