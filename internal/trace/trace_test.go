package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestNilStatsSafe(t *testing.T) {
	var s *Stats
	s.CountLock(1, 2, 1) // must not panic
	if s.LockCalls(1, 2, 1) != 0 || s.TotalLockCalls() != 0 {
		t.Fatal("nil stats returned nonzero")
	}
	sn := s.Snap()
	if sn.TotalLocks() != 0 {
		t.Fatal("nil snapshot nonzero")
	}
}

func TestLockTableClamping(t *testing.T) {
	s := &Stats{}
	s.CountLock(-5, 999, -1) // clamped, not panicking
	if s.TotalLockCalls() != 1 {
		t.Fatalf("clamped count = %d", s.TotalLockCalls())
	}
}

func TestSnapshotDiff(t *testing.T) {
	s := &Stats{}
	s.CountLock(1, 3, 2)
	s.Traversals.Add(5)
	before := s.Snap()
	s.CountLock(1, 3, 2)
	s.CountLock(2, 5, 0)
	s.Traversals.Add(2)
	d := Diff(before, s.Snap())
	if d.LockCalls[1][3][2] != 1 || d.LockCalls[2][5][0] != 1 {
		t.Fatalf("diff cells wrong: %+v", d.LockCalls[1][3][2])
	}
	if d.Traversals != 2 {
		t.Fatalf("diff traversals = %d", d.Traversals)
	}
	if d.TotalLocks() != 2 {
		t.Fatalf("diff total = %d", d.TotalLocks())
	}
}

func TestFormatLockTable(t *testing.T) {
	RegisterSpaceName(1, "record")
	RegisterModeName(3, "S")
	RegisterDurationName(2, "commit")
	s := &Stats{}
	s.CountLock(1, 3, 2)
	out := s.Snap().FormatLockTable()
	for _, want := range []string{"record", "S", "commit", "1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	empty := (&Stats{}).Snap().FormatLockTable()
	if !strings.Contains(empty, "no locks") {
		t.Fatalf("empty table = %q", empty)
	}
}

func TestUnregisteredNamesFallBack(t *testing.T) {
	s := &Stats{}
	s.CountLock(9, 6, 3) // nothing registered at these indices
	cells := s.Snap().NonzeroLockCells()
	if len(cells) != 1 {
		t.Fatalf("cells = %v", cells)
	}
	if cells[0].Space == "" || cells[0].Mode == "" {
		t.Fatal("fallback names empty")
	}
}

func TestConcurrentCounting(t *testing.T) {
	s := &Stats{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.CountLock(i%4, i%6, i%3)
				s.PageFixes.Add(1)
			}
		}()
	}
	wg.Wait()
	if s.TotalLockCalls() != 8000 {
		t.Fatalf("total = %d", s.TotalLockCalls())
	}
	if s.PageFixes.Load() != 8000 {
		t.Fatalf("fixes = %d", s.PageFixes.Load())
	}
}
