// Package txn implements ariesim's transaction manager: the transaction
// table, commit (force-at-commit), total and partial rollback driven by
// the UndoNxtLSN chain, nested top actions (dummy CLRs), two-phase-commit
// prepare, and fuzzy checkpoints.
//
// Rollback follows ARIES (paper §1.2): records are undone in reverse
// chronological order; every undo writes a compensation log record whose
// UndoNxtLSN points at the predecessor of the record undone, so logging is
// bounded even across repeated failures. A nested top action's dummy CLR
// points just before the action began, letting rollback bypass it — the
// mechanism ARIES/IM uses to make completed SMOs permanent regardless of
// the enclosing transaction's fate (paper §3).
package txn

import (
	"errors"
	"fmt"
	"sync"

	"ariesim/internal/buffer"
	"ariesim/internal/lock"
	"ariesim/internal/storage"
	"ariesim/internal/trace"
	"ariesim/internal/wal"
)

// VersionHook is the MVCC version store's view of transaction lifecycle
// events. Only versioned transactions (those that pushed at least one
// record version) invoke it, so version-less commits pay nothing.
//
// Commit sequencing: EnterCommit before the commit record is appended
// (freezing the visibility watermark), CommitAt once the record's LSN is
// known, then FinishCommit after the log force succeeds — or AbortCommit
// if it does not — so the watermark only ever covers durable commits.
type VersionHook interface {
	EnterCommit(wal.TxID)
	CommitAt(wal.TxID, wal.LSN)
	FinishCommit(wal.TxID, wal.LSN)
	AbortCommit(wal.TxID)
	// DropTx discards the transaction's in-flight versions (rollback);
	// DropTxSince discards those pushed after the savepoint LSN.
	DropTx(wal.TxID)
	DropTxSince(wal.TxID, wal.LSN)
}

// Snapshot is a read-only transaction's captured visibility point plus
// its registration in the version store's active-snapshot registry.
type Snapshot struct {
	LSN wal.LSN
	ID  uint64
}

// Undoer compensates one undoable log record on behalf of tx. The
// implementation (the owning resource manager) must apply the inverse page
// action and log it with tx.LogCLR, passing rec.PrevLSN as the undo-next
// pointer; it may first perform logical undo work (tree traversal, SMOs
// logged as regular records inside a nested top action).
type Undoer interface {
	Undo(tx *Tx, rec *wal.Record) error
}

// ErrTxDone reports an operation on a finished transaction.
var ErrTxDone = errors.New("txn: transaction already finished")

// Tx is one transaction. A Tx is driven by a single goroutine; the small
// mutex exists only so the fuzzy checkpointer can snapshot its fields.
type Tx struct {
	ID wal.TxID

	mu          sync.Mutex
	state       wal.TxState
	lastLSN     wal.LSN
	undoNxtLSN  wal.LSN
	commitLSN   wal.LSN
	rollingBack bool
	versioned   bool        // pushed >= 1 version into the MVCC store
	snap        *Snapshot   // non-nil: snapshot-mode read-only transaction
	saves       []savepoint // Savepoint history, oldest first

	mgr *Manager
}

// savepoint pairs the log position of a savepoint with the lock manager's
// grant sequence at the same moment, so RollbackTo can release the locks
// the rolled-back fragment acquired.
type savepoint struct {
	lsn     wal.LSN
	lockTok uint64
}

// State returns the transaction's current state.
func (t *Tx) State() wal.TxState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// LastLSN returns the LSN of the transaction's most recent log record.
func (t *Tx) LastLSN() wal.LSN {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastLSN
}

// CommitLSN returns the LSN of the transaction's commit record, or zero if
// it has not committed. Replication uses it as the durability watermark a
// standby must acknowledge before the commit is acked to the client.
func (t *Tx) CommitLSN() wal.LSN {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.commitLSN
}

// UndoNxtLSN returns the next record rollback would examine.
func (t *Tx) UndoNxtLSN() wal.LSN {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.undoNxtLSN
}

// Manager owns the transaction table. Like the lock table, it is volatile:
// restart rebuilds it from the log during analysis.
type Manager struct {
	mu     sync.Mutex
	table  map[wal.TxID]*Tx
	nextID wal.TxID

	log    *wal.Log
	locks  *lock.Manager
	undoer Undoer
	hook   VersionHook
	stats  *trace.Stats
}

// NewManager creates a transaction manager over log and locks.
func NewManager(log *wal.Log, locks *lock.Manager) *Manager {
	return &Manager{table: make(map[wal.TxID]*Tx), nextID: 1, log: log, locks: locks}
}

// SetUndoer wires the resource-manager undo dispatcher (done once at
// engine assembly; a separate call breaks the package cycle).
func (m *Manager) SetUndoer(u Undoer) { m.undoer = u }

// SetVersionHook wires the MVCC version store (done once at engine
// assembly, per epoch — the hook and the store share the epoch's fate).
func (m *Manager) SetVersionHook(h VersionHook) { m.hook = h }

// SetStats wires the trace sink (read-only lock-call accounting).
func (m *Manager) SetStats(s *trace.Stats) { m.stats = s }

// Locks exposes the lock manager (index/record managers lock through tx).
func (m *Manager) Locks() *lock.Manager { return m.locks }

// Log exposes the log manager.
func (m *Manager) Log() *wal.Log { return m.log }

// SetNextID ensures future transaction IDs start above id (restart sets
// this to one past the highest ID seen in the log, preventing reuse).
func (m *Manager) SetNextID(id wal.TxID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id > m.nextID {
		m.nextID = id
	}
}

// NextID returns the next transaction ID this manager would assign. The
// engine carries it across a crash/restart (the lock and transaction tables
// are rebuilt, but in-process ID uniqueness must span epochs so a pre-crash
// zombie and a post-restart transaction never share a lock owner ID).
func (m *Manager) NextID() wal.TxID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nextID
}

// Owns reports whether t was begun by (or adopted into) this manager.
// db.RunTxn uses it as an epoch check: a transaction from a pre-crash
// manager must not be committed against the restarted engine.
func (m *Manager) Owns(t *Tx) bool { return t.mgr == m }

// Begin starts a transaction.
func (m *Manager) Begin() *Tx {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := &Tx{ID: m.nextID, state: wal.TxActive, mgr: m}
	m.nextID++
	m.table[t.ID] = t
	return t
}

// BeginDetached starts a transaction that is deliberately NOT entered in
// the transaction table: the snapshot-mode read-only transaction. It
// never logs, locks, or commits, so checkpoints and restart analysis
// must not see it; keeping mgr set preserves the Owns epoch check.
func (m *Manager) BeginDetached() *Tx {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := &Tx{ID: m.nextID, state: wal.TxActive, mgr: m}
	m.nextID++
	return t
}

// SetSnapshot marks t as a snapshot-mode reader.
func (t *Tx) SetSnapshot(s Snapshot) {
	t.mu.Lock()
	t.snap = &s
	t.mu.Unlock()
}

// Snapshot returns the reader's snapshot, or nil for ordinary (locked)
// transactions.
func (t *Tx) Snapshot() *Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snap
}

// MarkVersioned records that t pushed a version into the MVCC store, so
// its commit/rollback must run the version hook.
func (t *Tx) MarkVersioned() {
	t.mu.Lock()
	t.versioned = true
	t.mu.Unlock()
}

// hookFor returns the version hook if t must drive it.
func (t *Tx) hookFor() VersionHook {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.versioned {
		return nil
	}
	return t.mgr.hook
}

// adopt installs a reconstructed transaction (restart undo of losers).
func (m *Manager) adopt(t *Tx) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t.mgr = m
	m.table[t.ID] = t
	if t.ID >= m.nextID {
		m.nextID = t.ID + 1
	}
}

// AdoptLoser reconstructs an in-flight transaction from analysis output so
// the undo pass (or in-doubt handling) can drive it. Idempotent: online
// restart adopts prepared transactions during lock reinstatement and the
// remaining losers when phases are wired up, so an entry may be offered
// twice — the live Tx (which may already hold reinstated locks and undo
// progress) wins over a fresh reconstruction.
func (m *Manager) AdoptLoser(e wal.TxTableEntry) *Tx {
	m.mu.Lock()
	if existing, ok := m.table[e.TxID]; ok && existing.mgr == m {
		m.mu.Unlock()
		return existing
	}
	m.mu.Unlock()
	t := &Tx{ID: e.TxID, state: e.State, lastLSN: e.LastLSN, undoNxtLSN: e.UndoNxtLSN}
	if e.State == wal.TxRollingBack {
		t.rollingBack = true
	}
	m.adopt(t)
	return t
}

// Lookup returns the live transaction with the given ID, if any.
func (m *Manager) Lookup(id wal.TxID) *Tx {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.table[id]
}

// Active snapshots the transaction table for a fuzzy checkpoint.
func (m *Manager) Active() []wal.TxTableEntry {
	m.mu.Lock()
	txs := make([]*Tx, 0, len(m.table))
	for _, t := range m.table {
		txs = append(txs, t)
	}
	m.mu.Unlock()
	out := make([]wal.TxTableEntry, 0, len(txs))
	for _, t := range txs {
		t.mu.Lock()
		out = append(out, wal.TxTableEntry{TxID: t.ID, State: t.state, LastLSN: t.lastLSN, UndoNxtLSN: t.undoNxtLSN})
		t.mu.Unlock()
	}
	return out
}

func (m *Manager) finish(t *Tx) {
	m.mu.Lock()
	delete(m.table, t.ID)
	m.mu.Unlock()
}

// Lock requests a lock on behalf of the transaction.
func (t *Tx) Lock(name lock.Name, mode lock.Mode, dur lock.Duration, conditional bool) error {
	t.mu.Lock()
	snapped := t.snap != nil
	t.mu.Unlock()
	if snapped {
		// Snapshot readers must never reach the lock manager; the counter
		// is the benchmark's zero-lock proof (and trips the gate if a code
		// path regresses).
		if s := t.mgr.stats; s != nil {
			s.ReadOnlyLockCalls.Add(1)
		}
	}
	return t.mgr.locks.Request(lock.Owner(t.ID), name, mode, dur, conditional)
}

// Unlock releases one manual-duration lock.
func (t *Tx) Unlock(name lock.Name) { t.mgr.locks.Release(lock.Owner(t.ID), name) }

// IsRollingBack reports whether the transaction is mid-rollback; rolling-
// back transactions never request locks (§4), so protocol code consults
// this before acquiring baseline-specific locks on undo paths.
func (t *Tx) IsRollingBack() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rollingBack
}

// HoldsLock reports whether the transaction holds any lock on name.
func (t *Tx) HoldsLock(name lock.Name) bool {
	return t.mgr.locks.HoldsAtLeast(lock.Owner(t.ID), name, lock.IS)
}

// Log appends a record stamped with this transaction's ID and PrevLSN
// chain, updating LastLSN and UndoNxtLSN per ARIES rules.
func (t *Tx) Log(rec *wal.Record) wal.LSN {
	lsn, _ := t.logVia(t.appendPlain, rec)
	return lsn
}

// appendPlain adapts wal.Log.Append (which cannot fail: a plain append
// never waits on the device) to logVia's fallible signature.
func (t *Tx) appendPlain(rec *wal.Record) (wal.LSN, error) {
	return t.mgr.log.Append(rec), nil
}

// logForced is Log through wal.AppendForce: the record is durable when it
// returns nil. Commit-scope records (commit, prepare) go through this so
// their force takes the group-commit path — or, with group commit disabled,
// the serial append-latch flush the benchmark baselines against. A non-nil
// error (wal.ErrLogCrashed) means a crash landed during the flush: the
// record's LSN was assigned but the record died with its epoch, and the
// caller must not acknowledge whatever depended on it.
func (t *Tx) logForced(rec *wal.Record) (wal.LSN, error) {
	return t.logVia(t.mgr.log.AppendForce, rec)
}

func (t *Tx) logVia(append func(*wal.Record) (wal.LSN, error), rec *wal.Record) (wal.LSN, error) {
	t.mu.Lock()
	rec.TxID = t.ID
	rec.PrevLSN = t.lastLSN
	t.mu.Unlock()
	lsn, err := append(rec)
	t.mu.Lock()
	t.lastLSN = lsn
	switch {
	case rec.IsCLR():
		t.undoNxtLSN = rec.UndoNxtLSN
	case rec.Type == wal.RecUpdate && rec.RedoOnly:
		// Redo-only updates are never undone; rollback must not revisit
		// them, so they leave the undo chain untouched. (Essential when a
		// redo-only record — an SM_Bit reset — is written *during* undo:
		// advancing the chain would orphan the remaining rollback work.)
	default:
		t.undoNxtLSN = lsn
	}
	t.mu.Unlock()
	// On error the chain bookkeeping above still ran: the transaction is a
	// zombie inside a crashed epoch and its state dies with the orphaned
	// manager, but the caller needs the error to refuse acknowledgement.
	return lsn, err
}

// LogUpdate logs a forward page action (undo-redo unless redoOnly).
func (t *Tx) LogUpdate(page storage.PageID, op wal.OpCode, payload []byte, redoOnly bool) wal.LSN {
	return t.Log(&wal.Record{
		Type: wal.RecUpdate, Page: page, Op: op, Payload: payload, RedoOnly: redoOnly,
	})
}

// LogCLR logs a compensation record for a page action performed during
// undo; undoNxt must be the PrevLSN of the record being compensated.
func (t *Tx) LogCLR(page storage.PageID, op wal.OpCode, payload []byte, undoNxt wal.LSN) wal.LSN {
	return t.Log(&wal.Record{
		Type: wal.RecCLR, Page: page, Op: op, Payload: payload, UndoNxtLSN: undoNxt, RedoOnly: true,
	})
}

// NTAToken marks the start of a nested top action.
type NTAToken struct{ resume wal.LSN }

// BeginNTA starts a nested top action: the returned token captures the
// point rollback should resume from if the action completes. In forward
// processing that is the transaction's last log record; during rollback it
// is the record currently being undone (so an undo-time SMO is bypassed
// but the interrupted undo itself is not lost).
func (t *Tx) BeginNTA() NTAToken {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rollingBack {
		return NTAToken{resume: t.undoNxtLSN}
	}
	return NTAToken{resume: t.lastLSN}
}

// EndNTA completes a nested top action by writing the dummy CLR whose
// UndoNxtLSN bypasses the action's records (paper Figs 8–10).
func (t *Tx) EndNTA(tok NTAToken) wal.LSN {
	return t.Log(&wal.Record{Type: wal.RecDummyCLR, UndoNxtLSN: tok.resume})
}

// Savepoint returns a token for partial rollback to the current point. It
// also records the lock manager's grant sequence, so RollbackTo can release
// the locks acquired after this point.
func (t *Tx) Savepoint() wal.LSN {
	tok := t.mgr.locks.Token()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.saves = append(t.saves, savepoint{lsn: t.lastLSN, lockTok: tok})
	return t.lastLSN
}

// Commit terminates the transaction: commit record, synchronous log force,
// lock release, end record. The force is the group-commit path: concurrent
// committers coalesce onto one in-flight flush (wal.Log.AppendForce), and Commit
// returns only once the commit record's LSN is covered by the stable LSN —
// a transaction is never acknowledged while its commit record is volatile.
func (t *Tx) Commit() error {
	t.mu.Lock()
	if t.state != wal.TxActive && t.state != wal.TxPrepared {
		t.mu.Unlock()
		return ErrTxDone
	}
	t.state = wal.TxCommitted
	t.mu.Unlock()
	// The version hook brackets the commit record's append/force so the
	// MVCC visibility watermark never covers a volatile commit: ticket in
	// before the append, LSN attached once known, stamp only after the
	// force proves durability (or abandon if a crash fences it).
	hook := t.hookFor()
	if hook != nil {
		hook.EnterCommit(t.ID)
	}
	if t.mgr.log.GroupCommit() {
		// Early lock release: append the commit record, drop locks, then
		// wait for the force. Safe because a dependent transaction's
		// commit record necessarily lands at a higher LSN, so any force
		// that makes it stable makes ours stable first — no transaction
		// can be acknowledged having read state that later rolls back.
		// Releasing before the device wait keeps hot locks held only for
		// the in-memory work, not the flush latency.
		lsn := t.Log(&wal.Record{Type: wal.RecCommit})
		t.mu.Lock()
		t.commitLSN = lsn
		t.mu.Unlock()
		if hook != nil {
			hook.CommitAt(t.ID, lsn)
		}
		t.mgr.locks.ReleaseAll(lock.Owner(t.ID))
		if !t.mgr.log.Force(lsn) {
			// A crash fenced the force: the commit record died with its
			// epoch and must never be acknowledged. The transaction's locks
			// and table entry die with the orphaned manager.
			if hook != nil {
				hook.AbortCommit(t.ID)
			}
			return wal.ErrLogCrashed
		}
		if hook != nil {
			hook.FinishCommit(t.ID, lsn)
		}
	} else {
		// Serial baseline: the commit record is appended and flushed as
		// one latched operation, locks held across the device write.
		lsn, err := t.logForced(&wal.Record{Type: wal.RecCommit})
		if err != nil {
			if hook != nil {
				hook.AbortCommit(t.ID)
			}
			return err
		}
		t.mu.Lock()
		t.commitLSN = lsn
		t.mu.Unlock()
		if hook != nil {
			hook.CommitAt(t.ID, lsn)
			hook.FinishCommit(t.ID, lsn)
		}
		t.mgr.locks.ReleaseAll(lock.Owner(t.ID))
	}
	t.Log(&wal.Record{Type: wal.RecEnd})
	t.mgr.finish(t)
	return nil
}

// Prepare logs the in-doubt record carrying the transaction's locks and
// forces it. The transaction then awaits CommitPrepared or Rollback.
func (t *Tx) Prepare() error {
	t.mu.Lock()
	if t.state != wal.TxActive {
		t.mu.Unlock()
		return ErrTxDone
	}
	t.state = wal.TxPrepared
	t.mu.Unlock()
	var specs []wal.LockSpec
	for _, h := range t.mgr.locks.LocksOf(lock.Owner(t.ID)) {
		specs = append(specs, wal.LockSpec{Space: uint8(h.Name.Space), Mode: uint8(h.Mode), A: h.Name.A, B: h.Name.B})
	}
	if _, err := t.logForced(&wal.Record{Type: wal.RecPrepare, Payload: wal.EncodeLocks(specs)}); err != nil {
		return err
	}
	return nil
}

// Rollback undoes the whole transaction and releases its locks.
func (t *Tx) Rollback() error {
	t.mu.Lock()
	if t.state == wal.TxCommitted {
		t.mu.Unlock()
		return ErrTxDone
	}
	t.state = wal.TxRollingBack
	t.rollingBack = true
	t.mu.Unlock()
	t.Log(&wal.Record{Type: wal.RecAbort})
	if err := t.undoTo(wal.NilLSN); err != nil {
		return err
	}
	if hook := t.hookFor(); hook != nil {
		hook.DropTx(t.ID)
	}
	t.mgr.locks.ReleaseAll(lock.Owner(t.ID))
	t.Log(&wal.Record{Type: wal.RecEnd})
	t.mgr.finish(t)
	return nil
}

// RollbackTo partially rolls back to a savepoint; the transaction remains
// active. Locks acquired after the savepoint are released (and upgrades
// reverted) once the undo completes, so a partially-rolled-back transaction
// does not keep starving the waiters that made it a deadlock victim. ARIES
// permits either policy on partial rollback; releasing is safe here because
// the undo is complete before any lock is dropped, and it is what makes
// savepoint-scoped retry (db.RunTxnSteps) effective under contention. Locks
// held at the savepoint are kept. A save LSN without a matching Savepoint
// call (e.g. a raw LastLSN) conservatively releases nothing.
func (t *Tx) RollbackTo(save wal.LSN) error {
	t.mu.Lock()
	if t.state != wal.TxActive {
		t.mu.Unlock()
		return ErrTxDone
	}
	t.rollingBack = true
	// Find the most recent Savepoint record at this LSN, dropping the
	// history of later savepoints (they are being rolled over).
	var sp *savepoint
	for i := len(t.saves) - 1; i >= 0; i-- {
		if t.saves[i].lsn == save {
			sp = &t.saves[i]
			t.saves = t.saves[:i+1]
			break
		}
	}
	t.mu.Unlock()
	err := t.undoTo(save)
	t.mu.Lock()
	t.rollingBack = false
	t.mu.Unlock()
	if err == nil {
		if hook := t.hookFor(); hook != nil {
			hook.DropTxSince(t.ID, save)
		}
	}
	if err == nil && sp != nil {
		t.mgr.locks.ReleaseSince(lock.Owner(t.ID), sp.lockTok)
	}
	return err
}

// UndoStep processes exactly one record of the rollback chain: a CLR is
// skipped via its UndoNxtLSN, an undoable update is compensated through
// the undoer, and anything else steps back via PrevLSN. Restart recovery
// uses this to interleave the undo of several losers in global reverse-LSN
// order (which guarantees incomplete SMOs are undone before any logical
// undo needs to traverse the tree).
func (t *Tx) UndoStep() error {
	t.mu.Lock()
	next := t.undoNxtLSN
	t.rollingBack = true
	t.mu.Unlock()
	if next == wal.NilLSN {
		return nil
	}
	rec, err := t.mgr.log.Read(next)
	if err != nil {
		return fmt.Errorf("txn %d: undo chain broken: %w", t.ID, err)
	}
	switch {
	case rec.IsCLR():
		t.mu.Lock()
		t.undoNxtLSN = rec.UndoNxtLSN
		t.mu.Unlock()
	case rec.Undoable():
		if t.mgr.undoer == nil {
			return fmt.Errorf("txn %d: no undoer wired for op %s", t.ID, rec.Op)
		}
		if err := t.mgr.undoer.Undo(t, rec); err != nil {
			return fmt.Errorf("txn %d: undo of %s at LSN %d: %w", t.ID, rec.Op, rec.LSN, err)
		}
		if t.UndoNxtLSN() >= next {
			return fmt.Errorf("txn %d: undoer did not advance past LSN %d (no CLR logged?)", t.ID, rec.LSN)
		}
	default:
		// Redo-only updates and status records: skip backward.
		t.mu.Lock()
		t.undoNxtLSN = rec.PrevLSN
		t.mu.Unlock()
	}
	return nil
}

// undoTo drives the UndoNxtLSN chain down to (exclusive) stopAfter.
func (t *Tx) undoTo(stopAfter wal.LSN) error {
	for {
		t.mu.Lock()
		next := t.undoNxtLSN
		t.mu.Unlock()
		if next == wal.NilLSN || next <= stopAfter {
			return nil
		}
		if err := t.UndoStep(); err != nil {
			return err
		}
	}
}

// EndLoser finalizes a fully-undone restart loser: locks released (only
// prepared transactions reacquired any), end record written, table entry
// removed.
func (t *Tx) EndLoser() {
	if hook := t.hookFor(); hook != nil {
		hook.DropTx(t.ID)
	}
	t.mgr.locks.ReleaseAll(lock.Owner(t.ID))
	t.Log(&wal.Record{Type: wal.RecEnd})
	t.mgr.finish(t)
}

// UndoAll is the restart-undo entry point: it finishes rolling back an
// adopted loser and writes its end record.
func (t *Tx) UndoAll() error {
	t.mu.Lock()
	t.state = wal.TxRollingBack
	t.rollingBack = true
	t.mu.Unlock()
	if err := t.undoTo(wal.NilLSN); err != nil {
		return err
	}
	if hook := t.hookFor(); hook != nil {
		hook.DropTx(t.ID)
	}
	t.mgr.locks.ReleaseAll(lock.Owner(t.ID))
	t.Log(&wal.Record{Type: wal.RecEnd})
	t.mgr.finish(t)
	return nil
}

// Checkpoint takes a fuzzy checkpoint: begin record, end record carrying
// the transaction table and pool's dirty page table, force, then master
// record update. No pages are flushed and no activity is quiesced.
func (m *Manager) Checkpoint(pool *buffer.Pool) wal.LSN {
	begin := m.log.Append(&wal.Record{Type: wal.RecBeginCkpt})
	data := &wal.CheckpointData{Txs: m.Active(), DPT: pool.DPT()}
	end := m.log.Append(&wal.Record{Type: wal.RecEndCkpt, PrevLSN: begin, Payload: data.Encode()})
	if m.log.Force(end) {
		// Only anchor the master record if the checkpoint actually reached
		// stable storage; a crash-fenced force leaves the old anchor valid.
		m.log.SetMaster(begin)
	}
	return begin
}
