package txn

import (
	"errors"
	"testing"
	"time"

	"ariesim/internal/buffer"
	"ariesim/internal/lock"
	"ariesim/internal/storage"
	"ariesim/internal/wal"
)

// recordingUndoer applies the standard CLR protocol without touching pages,
// recording which records it was asked to compensate.
type recordingUndoer struct {
	undone []wal.LSN
	fail   error
}

func (u *recordingUndoer) Undo(tx *Tx, rec *wal.Record) error {
	if u.fail != nil {
		return u.fail
	}
	u.undone = append(u.undone, rec.LSN)
	tx.LogCLR(rec.Page, rec.Op, rec.Payload, rec.PrevLSN)
	return nil
}

func newEnv() (*Manager, *wal.Log, *lock.Manager, *recordingUndoer) {
	log := wal.NewLog(nil)
	locks := lock.NewManager(nil)
	m := NewManager(log, locks)
	u := &recordingUndoer{}
	m.SetUndoer(u)
	return m, log, locks, u
}

func TestBeginAssignsUniqueIDs(t *testing.T) {
	m, _, _, _ := newEnv()
	t1, t2 := m.Begin(), m.Begin()
	if t1.ID == t2.ID {
		t.Fatal("duplicate tx IDs")
	}
	if m.Lookup(t1.ID) != t1 || m.Lookup(t2.ID) != t2 {
		t.Fatal("Lookup broken")
	}
}

func TestLogChainsPrevLSN(t *testing.T) {
	m, log, _, _ := newEnv()
	tx := m.Begin()
	l1 := tx.LogUpdate(5, wal.OpIdxInsertKey, []byte("a"), false)
	l2 := tx.LogUpdate(5, wal.OpIdxInsertKey, []byte("b"), false)
	r2, _ := log.Read(l2)
	if r2.PrevLSN != l1 {
		t.Fatalf("PrevLSN = %d, want %d", r2.PrevLSN, l1)
	}
	if tx.LastLSN() != l2 || tx.UndoNxtLSN() != l2 {
		t.Fatalf("LastLSN=%d UndoNxt=%d", tx.LastLSN(), tx.UndoNxtLSN())
	}
}

func TestCommitForcesLogAndReleasesLocks(t *testing.T) {
	m, log, locks, _ := newEnv()
	tx := m.Begin()
	n := lock.Name{Space: lock.SpaceRecord, A: 1}
	if err := tx.Lock(n, lock.X, lock.Commit, false); err != nil {
		t.Fatal(err)
	}
	lsn := tx.LogUpdate(5, wal.OpIdxInsertKey, []byte("a"), false)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if log.StableLSN() <= lsn {
		t.Fatal("commit did not force the log past the update")
	}
	if locks.NumLocks() != 0 {
		t.Fatal("locks survived commit")
	}
	if m.Lookup(tx.ID) != nil {
		t.Fatal("tx survived commit in table")
	}
	// Records: update, commit, end.
	recs := log.Records(1)
	if recs[len(recs)-1].Type != wal.RecEnd || recs[len(recs)-2].Type != wal.RecCommit {
		t.Fatal("commit/end records missing or misordered")
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("double commit: %v", err)
	}
}

func TestRollbackUndoesInReverseOrder(t *testing.T) {
	m, log, locks, u := newEnv()
	tx := m.Begin()
	_ = tx.Lock(lock.Name{Space: lock.SpaceRecord, A: 1}, lock.X, lock.Commit, false)
	l1 := tx.LogUpdate(5, wal.OpIdxInsertKey, []byte("a"), false)
	l2 := tx.LogUpdate(6, wal.OpIdxInsertKey, []byte("b"), false)
	l3 := tx.LogUpdate(7, wal.OpIdxDeleteKey, []byte("c"), false)
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	want := []wal.LSN{l3, l2, l1}
	if len(u.undone) != 3 {
		t.Fatalf("undone %d records", len(u.undone))
	}
	for i := range want {
		if u.undone[i] != want[i] {
			t.Fatalf("undo order %v, want %v", u.undone, want)
		}
	}
	if locks.NumLocks() != 0 {
		t.Fatal("locks survived rollback")
	}
	// CLRs chain correctly: each CLR's UndoNxtLSN = undone record's PrevLSN.
	var clrs []*wal.Record
	for _, r := range log.Records(1) {
		if r.Type == wal.RecCLR {
			clrs = append(clrs, r)
		}
	}
	if len(clrs) != 3 {
		t.Fatalf("%d CLRs", len(clrs))
	}
	if clrs[0].UndoNxtLSN != l2 || clrs[1].UndoNxtLSN != l1 || clrs[2].UndoNxtLSN != wal.NilLSN {
		t.Fatalf("CLR UndoNxt chain wrong: %d %d %d", clrs[0].UndoNxtLSN, clrs[1].UndoNxtLSN, clrs[2].UndoNxtLSN)
	}
}

func TestRedoOnlyRecordsSkippedInUndo(t *testing.T) {
	m, _, _, u := newEnv()
	tx := m.Begin()
	l1 := tx.LogUpdate(5, wal.OpIdxInsertKey, []byte("a"), false)
	tx.LogUpdate(5, wal.OpIdxSetBits, []byte{0}, true) // redo-only
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if len(u.undone) != 1 || u.undone[0] != l1 {
		t.Fatalf("undone = %v, want [%d]", u.undone, l1)
	}
}

func TestPartialRollbackToSavepoint(t *testing.T) {
	m, _, locks, u := newEnv()
	tx := m.Begin()
	kept := lock.Name{Space: lock.SpaceRecord, A: 5}
	_ = tx.Lock(kept, lock.X, lock.Commit, false)
	l1 := tx.LogUpdate(5, wal.OpIdxInsertKey, []byte("a"), false)
	_ = l1
	save := tx.Savepoint()
	dropped := lock.Name{Space: lock.SpaceRecord, A: 9}
	_ = tx.Lock(dropped, lock.X, lock.Commit, false)
	l2 := tx.LogUpdate(6, wal.OpIdxInsertKey, []byte("b"), false)
	l3 := tx.LogUpdate(7, wal.OpIdxInsertKey, []byte("c"), false)
	if err := tx.RollbackTo(save); err != nil {
		t.Fatal(err)
	}
	if len(u.undone) != 2 || u.undone[0] != l3 || u.undone[1] != l2 {
		t.Fatalf("undone = %v, want [%d %d]", u.undone, l3, l2)
	}
	// Locks held at the savepoint are retained; locks acquired after it are
	// released. The transaction stays active.
	if !locks.HoldsAtLeast(lock.Owner(tx.ID), kept, lock.X) {
		t.Fatal("partial rollback dropped a pre-savepoint lock")
	}
	if locks.HoldsAtLeast(lock.Owner(tx.ID), dropped, lock.IS) {
		t.Fatal("partial rollback kept a post-savepoint lock")
	}
	if tx.State() != wal.TxActive {
		t.Fatalf("state = %v", tx.State())
	}
	// Continue and commit; undo chain must not revisit undone records.
	u.undone = nil
	l4 := tx.LogUpdate(8, wal.OpIdxInsertKey, []byte("d"), false)
	_ = l4
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if len(u.undone) != 2 || u.undone[0] != l4 || u.undone[1] != l1 {
		t.Fatalf("full rollback after partial: undone %v, want [%d %d]", u.undone, l4, l1)
	}
}

// TestSavepointReleaseUnblocksContender is the contention story behind
// savepoint lock release: transaction 1 grabs a hot lock after a savepoint,
// transaction 2 blocks on it, and RollbackTo — not commit, not full abort —
// is what hands the lock over. Tx 2 then re-executes the contended work
// successfully while tx 1 is still active and later commits.
func TestSavepointReleaseUnblocksContender(t *testing.T) {
	m, _, locks, _ := newEnv()
	hot := lock.Name{Space: lock.SpaceRecord, A: 42}

	tx1 := m.Begin()
	pre := lock.Name{Space: lock.SpaceRecord, A: 1}
	if err := tx1.Lock(pre, lock.X, lock.Commit, false); err != nil {
		t.Fatal(err)
	}
	tx1.LogUpdate(5, wal.OpIdxInsertKey, []byte("pre"), false)
	save := tx1.Savepoint()
	if err := tx1.Lock(hot, lock.X, lock.Commit, false); err != nil {
		t.Fatal(err)
	}
	tx1.LogUpdate(6, wal.OpIdxInsertKey, []byte("hot"), false)

	// Tx 2 blocks on the hot lock; only the partial rollback can free it.
	tx2 := m.Begin()
	tx2got := make(chan error, 1)
	go func() { tx2got <- tx2.Lock(hot, lock.X, lock.Commit, false) }()
	select {
	case err := <-tx2got:
		t.Fatalf("tx2 acquired a held lock: %v", err)
	case <-time.After(20 * time.Millisecond):
	}

	if err := tx1.RollbackTo(save); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-tx2got:
		if err != nil {
			t.Fatalf("tx2 lock after partial rollback: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("partial rollback did not wake the contender")
	}
	// Tx 2 re-executes the contended work and commits.
	tx2.LogUpdate(6, wal.OpIdxInsertKey, []byte("hot2"), false)
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	// Tx 1 is still active, still holds its pre-savepoint lock, and commits.
	if !locks.HoldsAtLeast(lock.Owner(tx1.ID), pre, lock.X) {
		t.Fatal("pre-savepoint lock lost")
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if locks.NumLocks() != 0 {
		t.Fatalf("locks leaked: %d", locks.NumLocks())
	}
}

func TestNestedTopActionBypassedOnRollback(t *testing.T) {
	m, _, _, u := newEnv()
	tx := m.Begin()
	l1 := tx.LogUpdate(5, wal.OpIdxInsertKey, []byte("pre"), false)
	tok := tx.BeginNTA()
	tx.LogUpdate(20, wal.OpIdxFormat, []byte("smo1"), false)
	tx.LogUpdate(21, wal.OpIdxSplitLeft, []byte("smo2"), false)
	tx.EndNTA(tok)
	l5 := tx.LogUpdate(5, wal.OpIdxInsertKey, []byte("post"), false)
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	// Only pre and post are undone; the SMO survives.
	if len(u.undone) != 2 || u.undone[0] != l5 || u.undone[1] != l1 {
		t.Fatalf("undone = %v, want [%d %d]", u.undone, l5, l1)
	}
}

func TestIncompleteNTAIsUndone(t *testing.T) {
	m, _, _, u := newEnv()
	tx := m.Begin()
	tx.LogUpdate(5, wal.OpIdxInsertKey, []byte("pre"), false)
	_ = tx.BeginNTA()
	smo1 := tx.LogUpdate(20, wal.OpIdxFormat, []byte("smo1"), false)
	// No EndNTA: the dummy CLR was never written (failure mid-SMO).
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if len(u.undone) != 2 || u.undone[0] != smo1 {
		t.Fatalf("incomplete NTA not undone: %v", u.undone)
	}
}

func TestUndoerErrorPropagates(t *testing.T) {
	m, _, _, u := newEnv()
	tx := m.Begin()
	tx.LogUpdate(5, wal.OpIdxInsertKey, []byte("a"), false)
	u.fail = errors.New("page vanished")
	if err := tx.Rollback(); err == nil {
		t.Fatal("rollback swallowed undoer error")
	}
}

// stubbornUndoer never logs a CLR: the manager must detect the stall
// rather than loop forever.
type stubbornUndoer struct{}

func (stubbornUndoer) Undo(tx *Tx, rec *wal.Record) error { return nil }

func TestUndoStallDetected(t *testing.T) {
	log := wal.NewLog(nil)
	m := NewManager(log, lock.NewManager(nil))
	m.SetUndoer(stubbornUndoer{})
	tx := m.Begin()
	tx.LogUpdate(5, wal.OpIdxInsertKey, []byte("a"), false)
	if err := tx.Rollback(); err == nil {
		t.Fatal("stalled undo not detected")
	}
}

func TestPrepareCarriesLocks(t *testing.T) {
	m, log, _, _ := newEnv()
	tx := m.Begin()
	_ = tx.Lock(lock.Name{Space: lock.SpaceRecord, A: 4, B: 2}, lock.X, lock.Commit, false)
	_ = tx.Lock(lock.Name{Space: lock.SpaceEOF, A: 1}, lock.S, lock.Commit, false)
	if err := tx.Prepare(); err != nil {
		t.Fatal(err)
	}
	if tx.State() != wal.TxPrepared {
		t.Fatalf("state = %v", tx.State())
	}
	recs := log.Records(1)
	last := recs[len(recs)-1]
	if last.Type != wal.RecPrepare {
		t.Fatalf("last record = %v", last.Type)
	}
	if log.StableLSN() < last.LSN {
		t.Fatal("prepare not forced")
	}
	specs, err := wal.DecodeLocks(last.Payload)
	if err != nil || len(specs) != 2 {
		t.Fatalf("lock list: %v, %v", specs, err)
	}
	// A prepared transaction can still commit.
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// And cannot prepare twice.
	if err := tx.Prepare(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("prepare after commit: %v", err)
	}
}

func TestAdoptLoserContinuesUndo(t *testing.T) {
	m, log, _, u := newEnv()
	tx := m.Begin()
	l1 := tx.LogUpdate(5, wal.OpIdxInsertKey, []byte("a"), false)
	l2 := tx.LogUpdate(6, wal.OpIdxInsertKey, []byte("b"), false)
	// Simulate crash: rebuild manager state from an analysis-style entry.
	m2 := NewManager(log, lock.NewManager(nil))
	m2.SetUndoer(u)
	loser := m2.AdoptLoser(wal.TxTableEntry{TxID: tx.ID, State: wal.TxActive, LastLSN: l2, UndoNxtLSN: l2})
	if err := loser.UndoAll(); err != nil {
		t.Fatal(err)
	}
	if len(u.undone) != 2 || u.undone[0] != l2 || u.undone[1] != l1 {
		t.Fatalf("restart undo = %v", u.undone)
	}
	// New transactions get IDs above the adopted loser.
	if m2.Begin().ID <= tx.ID {
		t.Fatal("tx ID reuse after adoption")
	}
}

func TestBoundedLoggingOnRepeatedRollback(t *testing.T) {
	// Undo half, "crash", adopt, undo rest: total CLRs == total updates.
	m, log, _, _ := newEnv()
	tx := m.Begin()
	var updates []wal.LSN
	for i := 0; i < 6; i++ {
		updates = append(updates, tx.LogUpdate(storage.PageID(5+i), wal.OpIdxInsertKey, []byte{byte(i)}, false))
	}
	// Manually undo three records (simulating an interrupted rollback).
	half := &recordingUndoer{}
	m.SetUndoer(half)
	tx.mu.Lock()
	tx.rollingBack = true
	tx.mu.Unlock()
	for i := 0; i < 3; i++ {
		rec, _ := log.Read(tx.UndoNxtLSN())
		if err := half.Undo(tx, rec); err != nil {
			t.Fatal(err)
		}
	}
	lastLSN := tx.LastLSN()
	undoNxt := tx.UndoNxtLSN()
	// Crash and adopt; finish the rollback.
	m2 := NewManager(log, lock.NewManager(nil))
	rest := &recordingUndoer{}
	m2.SetUndoer(rest)
	loser := m2.AdoptLoser(wal.TxTableEntry{TxID: tx.ID, State: wal.TxRollingBack, LastLSN: lastLSN, UndoNxtLSN: undoNxt})
	if err := loser.UndoAll(); err != nil {
		t.Fatal(err)
	}
	if len(rest.undone) != 3 {
		t.Fatalf("second pass undid %d, want 3", len(rest.undone))
	}
	clrs := 0
	for _, r := range log.Records(1) {
		if r.Type == wal.RecCLR {
			clrs++
		}
	}
	if clrs != len(updates) {
		t.Fatalf("CLRs = %d, want %d (bounded logging)", clrs, len(updates))
	}
}

func TestCheckpointCapturesTables(t *testing.T) {
	m, log, _, _ := newEnv()
	disk := storage.NewDisk(512)
	pool := buffer.NewPool(disk, log, 4, nil)
	tx := m.Begin()
	f, _ := pool.Fix(5)
	lsn := tx.LogUpdate(5, wal.OpIdxInsertKey, []byte("a"), false)
	f.Page.SetLSN(uint64(lsn))
	pool.MarkDirty(f, lsn)
	pool.Unfix(f)

	begin := m.Checkpoint(pool)
	if log.Master() != begin {
		t.Fatalf("master = %d, want %d", log.Master(), begin)
	}
	// Decode the end-checkpoint payload.
	var end *wal.Record
	for _, r := range log.Records(begin) {
		if r.Type == wal.RecEndCkpt {
			end = r
		}
	}
	if end == nil {
		t.Fatal("no end-checkpoint record")
	}
	data, err := wal.DecodeCheckpointData(end.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Txs) != 1 || data.Txs[0].TxID != tx.ID {
		t.Fatalf("checkpoint txs = %+v", data.Txs)
	}
	if len(data.DPT) != 1 || data.DPT[0].Page != 5 || data.DPT[0].RecLSN != lsn {
		t.Fatalf("checkpoint DPT = %+v", data.DPT)
	}
	if log.StableLSN() < end.LSN {
		t.Fatal("checkpoint not forced")
	}
}

func TestNTATokenDuringRollbackResumesAtUndoneRecord(t *testing.T) {
	// During rollback (logical undo needing an SMO), the dummy CLR must
	// point at the record being undone — not at LastLSN (a CLR).
	m, _, _, _ := newEnv()
	tx := m.Begin()
	l1 := tx.LogUpdate(5, wal.OpIdxInsertKey, []byte("a"), false)
	_ = l1
	l2 := tx.LogUpdate(6, wal.OpIdxDeleteKey, []byte("b"), false)
	smoUndoer := &smoDuringUndoUndoer{}
	m.SetUndoer(smoUndoer)
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	// The dummy CLR written while undoing l2 must carry UndoNxtLSN == l2.
	if smoUndoer.dummyUndoNxt != l2 {
		t.Fatalf("undo-time NTA resume = %d, want %d", smoUndoer.dummyUndoNxt, l2)
	}
	if len(smoUndoer.undone) != 2 {
		t.Fatalf("undone = %v", smoUndoer.undone)
	}
}

type smoDuringUndoUndoer struct {
	undone       []wal.LSN
	dummyUndoNxt wal.LSN
	didSMO       bool
}

func (u *smoDuringUndoUndoer) Undo(tx *Tx, rec *wal.Record) error {
	u.undone = append(u.undone, rec.LSN)
	if !u.didSMO {
		u.didSMO = true
		tok := tx.BeginNTA()
		tx.LogUpdate(30, wal.OpIdxFormat, []byte("undo-smo"), false)
		dummy := tx.EndNTA(tok)
		r, _ := tx.mgr.log.Read(dummy)
		u.dummyUndoNxt = r.UndoNxtLSN
		// NOTE: tx.UndoNxtLSN now equals the token (rec.LSN); the CLR below
		// moves it past rec.
	}
	tx.LogCLR(rec.Page, rec.Op, rec.Payload, rec.PrevLSN)
	return nil
}
