package workload

import "testing"

func TestDeterminism(t *testing.T) {
	spec := Spec{Keys: 100, Dist: Zipf, ReadFrac: 0.5, InsertFrac: 0.3, DeleteFrac: 0.1, Seed: 42}
	a, b := New(spec), New(spec)
	for i := 0; i < 1000; i++ {
		oa, ob := a.Next(), b.Next()
		if oa.Kind != ob.Kind || string(oa.Key) != string(ob.Key) {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestMixFractions(t *testing.T) {
	g := New(Spec{Keys: 1000, ReadFrac: 0.7, InsertFrac: 0.2, DeleteFrac: 0.1, Seed: 1})
	counts := map[Kind]int{}
	for i := 0; i < 10000; i++ {
		counts[g.Next().Kind]++
	}
	if counts[Read] < 6500 || counts[Read] > 7500 {
		t.Fatalf("reads = %d, want ~7000", counts[Read])
	}
	if counts[Insert] < 1500 || counts[Insert] > 2500 {
		t.Fatalf("inserts = %d, want ~2000", counts[Insert])
	}
}

func TestSequentialKeys(t *testing.T) {
	g := New(Spec{Keys: 10, Dist: Sequential, InsertFrac: 1})
	k0, k1 := g.Next().Key, g.Next().Key
	if string(k0) >= string(k1) {
		t.Fatalf("sequential keys not increasing: %s %s", k0, k1)
	}
}

func TestZipfSkew(t *testing.T) {
	g := New(Spec{Keys: 10000, Dist: Zipf, ReadFrac: 1, Seed: 3})
	hot := 0
	for i := 0; i < 10000; i++ {
		if string(g.Next().Key) == string(KeyFor(0)) {
			hot++
		}
	}
	if hot < 1000 {
		t.Fatalf("zipf hot key drawn %d times out of 10000; not skewed", hot)
	}
}

func TestKeyForOrdering(t *testing.T) {
	if string(KeyFor(9)) >= string(KeyFor(10)) {
		t.Fatal("byte order != numeric order")
	}
}
