package workload

import "testing"

func TestDeterminism(t *testing.T) {
	spec := Spec{Keys: 100, Dist: Zipf, ReadFrac: 0.5, InsertFrac: 0.3, DeleteFrac: 0.1, Seed: 42}
	a, b := New(spec), New(spec)
	for i := 0; i < 1000; i++ {
		oa, ob := a.Next(), b.Next()
		if oa.Kind != ob.Kind || string(oa.Key) != string(ob.Key) {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestMixFractions(t *testing.T) {
	g := New(Spec{Keys: 1000, ReadFrac: 0.7, InsertFrac: 0.2, DeleteFrac: 0.1, Seed: 1})
	counts := map[Kind]int{}
	for i := 0; i < 10000; i++ {
		counts[g.Next().Kind]++
	}
	if counts[Read] < 6500 || counts[Read] > 7500 {
		t.Fatalf("reads = %d, want ~7000", counts[Read])
	}
	if counts[Insert] < 1500 || counts[Insert] > 2500 {
		t.Fatalf("inserts = %d, want ~2000", counts[Insert])
	}
}

func TestSequentialKeys(t *testing.T) {
	g := New(Spec{Keys: 10, Dist: Sequential, InsertFrac: 1})
	k0, k1 := g.Next().Key, g.Next().Key
	if string(k0) >= string(k1) {
		t.Fatalf("sequential keys not increasing: %s %s", k0, k1)
	}
}

func TestZipfSkew(t *testing.T) {
	g := New(Spec{Keys: 10000, Dist: Zipf, ReadFrac: 1, Seed: 3})
	hot := 0
	for i := 0; i < 10000; i++ {
		if string(g.Next().Key) == string(KeyFor(0)) {
			hot++
		}
	}
	if hot < 1000 {
		t.Fatalf("zipf hot key drawn %d times out of 10000; not skewed", hot)
	}
}

func TestKeyForOrdering(t *testing.T) {
	if string(KeyFor(9)) >= string(KeyFor(10)) {
		t.Fatal("byte order != numeric order")
	}
}

// TestNamedMixesDeterministic exercises every named mix generator under a
// fixed seed: two generators over the same spec must produce identical
// streams, and every generated op must be well-formed for its kind.
func TestNamedMixesDeterministic(t *testing.T) {
	for _, m := range Mixes() {
		spec, err := SpecFor(m, 512, 42)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if sum := spec.ReadFrac + spec.InsertFrac + spec.DeleteFrac + spec.IndexScanFrac; sum > 1 {
			t.Fatalf("%s: fractions sum to %v > 1", m, sum)
		}
		a, b := New(spec), New(spec)
		counts := map[Kind]int{}
		for i := 0; i < 2000; i++ {
			oa, ob := a.Next(), b.Next()
			if oa.Kind != ob.Kind || string(oa.Key) != string(ob.Key) || string(oa.Value) != string(ob.Value) {
				t.Fatalf("%s: streams diverged at op %d", m, i)
			}
			if len(oa.Key) == 0 {
				t.Fatalf("%s: empty key at op %d", m, i)
			}
			if oa.Kind == Insert && len(oa.Value) == 0 {
				t.Fatalf("%s: insert without value at op %d", m, i)
			}
			counts[oa.Kind]++
		}
		// Each mix must actually produce its declared op kinds (and only
		// those): a zero fraction must stay zero, a positive one must show
		// up within 2000 draws.
		fracs := map[Kind]float64{
			Read: spec.ReadFrac, Insert: spec.InsertFrac, Delete: spec.DeleteFrac,
			IndexScan: spec.IndexScanFrac,
			ScanShort: 1 - spec.ReadFrac - spec.InsertFrac - spec.DeleteFrac - spec.IndexScanFrac,
		}
		for kind, frac := range fracs {
			switch {
			case frac == 0 && counts[kind] > 0:
				t.Fatalf("%s: %v ops generated with zero fraction", m, kind)
			case frac >= 0.01 && counts[kind] == 0:
				t.Fatalf("%s: no %v ops generated with fraction %v", m, kind, frac)
			}
		}
	}
}

// TestMVCCMixShape pins the snapshot-read mix's defining properties: read
// domination (the snapshot path must dwarf the write traffic) and zipfian
// skew (writers churn hot keys, so version chains actually form).
func TestMVCCMixShape(t *testing.T) {
	spec, err := SpecFor(MixMVCC, 2048, 7)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Dist != Zipf {
		t.Fatalf("mvcc mix dist = %v, want Zipf", spec.Dist)
	}
	g := New(spec)
	reads, writes := 0, 0
	for i := 0; i < 10000; i++ {
		switch g.Next().Kind {
		case Read, ScanShort:
			reads++
		default:
			writes++
		}
	}
	if reads < 9300 {
		t.Fatalf("mvcc mix reads = %d/10000, want >= 9300", reads)
	}
	if writes == 0 {
		t.Fatal("mvcc mix generated no writes; chains would never form")
	}
}

// TestIndexMixShape pins the secondary-index mix's defining properties:
// index-scan domination with a real write trickle, so index maintenance
// and index reads contend in the same run.
func TestIndexMixShape(t *testing.T) {
	spec, err := SpecFor(MixIndex, 2048, 7)
	if err != nil {
		t.Fatal(err)
	}
	g := New(spec)
	scans, writes := 0, 0
	for i := 0; i < 10000; i++ {
		switch g.Next().Kind {
		case IndexScan:
			scans++
		case Insert, Delete:
			writes++
		}
	}
	if scans < 6500 {
		t.Fatalf("index mix scans = %d/10000, want >= 6500", scans)
	}
	if writes < 2000 {
		t.Fatalf("index mix writes = %d/10000, want >= 2000", writes)
	}
}

func TestSpecForUnknownMix(t *testing.T) {
	if _, err := SpecFor(Mix("nope"), 10, 1); err == nil {
		t.Fatal("unknown mix accepted")
	}
}
