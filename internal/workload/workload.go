// Package workload provides deterministic workload generators for the
// benchmark harness: key distributions (uniform, zipfian, sequential) and
// operation mixes over a bounded key space. Determinism (explicit seeds)
// keeps bench runs comparable across protocols.
package workload

import (
	"fmt"
	"math/rand"
)

// Kind is an operation type.
type Kind int

const (
	// Read fetches a key.
	Read Kind = iota
	// Insert stores a new row (or re-inserts a deleted key).
	Insert
	// Delete removes a row.
	Delete
	// ScanShort reads a short range (16 keys).
	ScanShort
	// IndexScan reads a short secondary-key range through a secondary
	// index (the driver defines the index and derives the range from Key).
	IndexScan
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	case IndexScan:
		return "index-scan"
	default:
		return "scan"
	}
}

// Dist is a key distribution.
type Dist int

const (
	// Uniform draws keys uniformly from the key space.
	Uniform Dist = iota
	// Zipf draws keys with zipfian skew (hot spots).
	Zipf
	// Sequential draws monotonically increasing keys (append pattern).
	Sequential
)

// Spec describes a workload.
type Spec struct {
	// Keys is the size of the key space.
	Keys int
	// Dist selects the key distribution.
	Dist Dist
	// ReadFrac, InsertFrac, DeleteFrac, IndexScanFrac select the op mix;
	// the remainder becomes short scans. They must sum to <= 1.
	ReadFrac, InsertFrac, DeleteFrac, IndexScanFrac float64
	// ValueSize is the payload size of inserts.
	ValueSize int
	// Seed makes the stream deterministic.
	Seed int64
}

// Op is one generated operation.
type Op struct {
	Kind  Kind
	Key   []byte
	Value []byte
}

// Generator produces a deterministic operation stream.
type Generator struct {
	spec Spec
	rng  *rand.Rand
	zipf *rand.Zipf
	seq  int
}

// New builds a generator for spec.
func New(spec Spec) *Generator {
	if spec.Keys <= 0 {
		spec.Keys = 10000
	}
	if spec.ValueSize <= 0 {
		spec.ValueSize = 32
	}
	g := &Generator{spec: spec, rng: rand.New(rand.NewSource(spec.Seed))}
	if spec.Dist == Zipf {
		g.zipf = rand.NewZipf(g.rng, 1.2, 1, uint64(spec.Keys-1))
	}
	return g
}

// KeyFor formats key number i; the fixed width keeps byte order equal to
// numeric order.
func KeyFor(i int) []byte { return []byte(fmt.Sprintf("k%08d", i)) }

func (g *Generator) nextKeyNum() int {
	switch g.spec.Dist {
	case Zipf:
		return int(g.zipf.Uint64())
	case Sequential:
		g.seq++
		return g.seq - 1
	default:
		return g.rng.Intn(g.spec.Keys)
	}
}

// Next returns the next operation in the stream.
func (g *Generator) Next() Op {
	n := g.nextKeyNum()
	op := Op{Key: KeyFor(n)}
	r := g.rng.Float64()
	switch {
	case r < g.spec.ReadFrac:
		op.Kind = Read
	case r < g.spec.ReadFrac+g.spec.InsertFrac:
		op.Kind = Insert
		op.Value = g.Value(n)
	case r < g.spec.ReadFrac+g.spec.InsertFrac+g.spec.DeleteFrac:
		op.Kind = Delete
	case r < g.spec.ReadFrac+g.spec.InsertFrac+g.spec.DeleteFrac+g.spec.IndexScanFrac:
		op.Kind = IndexScan
	default:
		op.Kind = ScanShort
	}
	return op
}

// Mix names a canonical operation mix shared by the bench and chaos
// harnesses. A mix pins everything except the key space and seed, so runs
// of different protocols over the same mix are directly comparable.
type Mix string

const (
	// MixReadHeavy is 90/10 read/insert over uniform keys.
	MixReadHeavy Mix = "read-heavy"
	// MixWriteHeavy is 20/50/30 read/insert/delete over uniform keys.
	MixWriteHeavy Mix = "write-heavy"
	// MixHotKey is all inserts over zipfian keys: lock-conflict fodder.
	MixHotKey Mix = "hot-key"
	// MixScan is mostly short scans with a trickle of inserts.
	MixScan Mix = "scan"
	// MixMVCC is 95/4/1 read/insert/delete over zipfian keys: the
	// snapshot-read benchmark mix — read-dominated with enough hot-key
	// churn that versions actually chain.
	MixMVCC Mix = "mvcc"
	// MixIndex is 70% secondary-index range scans with a 20/10
	// insert/delete write trickle over uniform keys: the secondary-index
	// benchmark mix — scan-dominated with enough churn that index
	// maintenance rides along in most transactions.
	MixIndex Mix = "index"
)

// Mixes returns every named mix in stable order, for enumeration by tests
// and tools.
func Mixes() []Mix {
	return []Mix{MixReadHeavy, MixWriteHeavy, MixHotKey, MixScan, MixMVCC, MixIndex}
}

// SpecFor returns the canonical Spec for a named mix over a key space with
// a seed. Unknown names are an error, not a silent default — a bench run
// against the wrong mix would produce a comparable-looking, wrong number.
func SpecFor(m Mix, keys int, seed int64) (Spec, error) {
	s := Spec{Keys: keys, Seed: seed}
	switch m {
	case MixReadHeavy:
		s.ReadFrac, s.InsertFrac = 0.9, 0.1
	case MixWriteHeavy:
		s.ReadFrac, s.InsertFrac, s.DeleteFrac = 0.2, 0.5, 0.3
	case MixHotKey:
		s.Dist, s.InsertFrac = Zipf, 1
	case MixScan:
		s.InsertFrac = 0.05 // remainder (0.95) becomes short scans
	case MixMVCC:
		s.Dist = Zipf
		s.ReadFrac, s.InsertFrac, s.DeleteFrac = 0.95, 0.04, 0.01
	case MixIndex:
		s.InsertFrac, s.DeleteFrac, s.IndexScanFrac = 0.2, 0.1, 0.7
	default:
		return Spec{}, fmt.Errorf("workload: unknown mix %q", m)
	}
	return s, nil
}

// Value builds a deterministic payload for key number n.
func (g *Generator) Value(n int) []byte {
	v := make([]byte, g.spec.ValueSize)
	for i := range v {
		v[i] = byte('a' + (n+i)%26)
	}
	return v
}
