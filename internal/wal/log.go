package wal

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ariesim/internal/storage"
	"ariesim/internal/trace"
)

// Log is the write-ahead log manager. Records live in a single virtual
// byte address space; a record's LSN is one plus its byte offset, so LSNs
// are monotonically increasing and directly comparable with page_LSNs.
//
// The log models the volatile log buffer + stable log file split that
// ARIES depends on: Append places a record in the buffer, Force hardens
// every record up to an LSN, and Crash discards the unforced tail. The
// WAL protocol proper (force before writing a dirty page; force at commit)
// is enforced by the buffer pool and transaction manager, which call Force
// with the relevant LSNs.
type Log struct {
	mu      sync.Mutex
	recs    []*Record // decoded records, in order
	offs    []LSN     // recs[i].LSN, for binary search
	nextOff LSN       // next byte offset to assign (LSN-1 of next record)
	stable  LSN       // highest LSN whose record (entirely) is on stable storage
	master  LSN       // "master record": LSN of the last end-checkpoint, forced separately
	bytes   uint64

	// Costed log device + group commit. forceDelay simulates the latency of
	// one physical flush (zero: instantaneous, the historical model).
	// While a flush is in flight (flushing == true, only possible with a
	// nonzero delay) the device is busy; concurrent Force callers park on
	// flushCond. With group commit enabled, a flush hardens up to flushWant
	// — the max LSN requested by every caller that arrived before the flush
	// started — so parked callers usually wake already satisfied. With it
	// disabled, a flush hardens only its leader's own LSN and each waiter
	// re-flushes for itself: the serial force pipeline the old code modeled.
	forceDelay time.Duration
	groupOff   bool // group commit disabled (serial per-caller flushes)
	flushing   bool
	flushWant  LSN
	flushGen   uint64 // bumped by crash so an in-flight flush dies with its epoch
	flushCond  *sync.Cond

	// damage records byte-level corruption planted in the stored image of
	// individual records (torn log writes, media rot). It is consulted by
	// the CRC sweep that every crash performs: the surviving log is the
	// prefix up to the first record that no longer decodes.
	damage    map[LSN][]damageSpot
	truncates uint64 // torn-tail truncations performed by crash sweeps

	// stableNotify, when set, is invoked (outside the log mutex) after a
	// public operation advances the stable LSN — the hardening watermark a
	// log shipper streams from. The callback receives the stable LSN at
	// notification time; it must be cheap and must not call back into
	// methods that force the log.
	stableNotify func(LSN)

	stats *trace.Stats
}

// damageSpot is one corrupted byte in a record's stored image.
type damageSpot struct {
	off int // byte offset within the encoded record
	xor byte
}

// NewLog creates an empty log reporting into stats (which may be nil).
func NewLog(stats *trace.Stats) *Log {
	l := &Log{stats: stats, damage: make(map[LSN][]damageSpot)}
	l.flushCond = sync.NewCond(&l.mu)
	return l
}

// SetForceDelay configures the simulated latency of one physical log
// flush. Zero (the default) keeps forces instantaneous, so existing tests
// and single-threaded callers see no change.
func (l *Log) SetForceDelay(d time.Duration) {
	l.mu.Lock()
	l.forceDelay = d
	l.mu.Unlock()
}

// SetGroupCommit enables (default) or disables force coalescing. Disabled,
// every Force caller whose LSN is not yet stable performs its own serial
// flush — the baseline configuration the concurrency benchmark compares
// against.
func (l *Log) SetGroupCommit(enabled bool) {
	l.mu.Lock()
	l.groupOff = !enabled
	l.mu.Unlock()
}

// GroupCommit reports whether force coalescing is enabled.
func (l *Log) GroupCommit() bool {
	l.mu.Lock()
	on := !l.groupOff
	l.mu.Unlock()
	return on
}

// SetStableNotify installs (or, with nil, removes) the stable-LSN watermark
// callback: after any Force/ForceAll/AppendForce that advances the stable
// LSN, fn is called with the new watermark, outside the log mutex. This is
// the streaming hook continuous log shipping rides on — the shipper wakes
// on each notification and ships the newly hardened suffix. A crash does
// NOT notify (stable only rewinds there), and a Clone does not inherit the
// callback: the successor log belongs to a new epoch the old shipper must
// never observe.
func (l *Log) SetStableNotify(fn func(LSN)) {
	l.mu.Lock()
	l.stableNotify = fn
	l.mu.Unlock()
}

// notifyStable fires the watermark callback when post > pre. Called with
// l.mu released.
func (l *Log) notifyStable(pre, post LSN, fn func(LSN)) {
	if fn != nil && post > pre {
		fn(post)
	}
}

// Append assigns the next LSN to r and adds it to the log buffer. The
// record is volatile until a Force covers it. Append returns the LSN.
// The stats counters are updated under the log mutex so an observer can
// never see the record list advanced while LogRecords/LogBytes lag.
func (l *Log) Append(r *Record) LSN {
	enc := len(r.Encode()) // realistic byte accounting
	l.mu.Lock()
	lsn := l.appendLocked(r, enc)
	l.mu.Unlock()
	return lsn
}

// appendLocked is Append's body; the caller holds l.mu and passes the
// record's encoded size (computed outside the lock).
func (l *Log) appendLocked(r *Record, enc int) LSN {
	r.LSN = l.nextOff + 1
	l.recs = append(l.recs, r)
	l.offs = append(l.offs, r.LSN)
	l.nextOff += LSN(enc)
	l.bytes += uint64(enc)
	if l.stats != nil {
		l.stats.LogRecords.Add(1)
		l.stats.LogBytes.Add(uint64(enc))
	}
	return r.LSN
}

// AppendForce appends r and hardens it — the commit-path combination.
//
// With group commit enabled it is an append followed by a coalescing
// force: the flush sleeps outside the log latch, so concurrent committers
// overlap their device waits and share flushes.
//
// Disabled, it models the classic serial commit path: the log latch is
// held from the append through the device flush, so each committer pays
// the full flush latency alone and every other append stalls behind it.
// (A mere stable-LSN check before flushing would let commits ride flushes
// they never asked for — implicit batching — which is exactly the effect
// the no-group-commit baseline must not get for free.)
func (l *Log) AppendForce(r *Record) LSN {
	enc := len(r.Encode())
	l.mu.Lock()
	pre := l.stable
	lsn := l.appendLocked(r, enc)
	if !l.groupOff {
		l.forceLocked(lsn)
		post, fn := l.stable, l.stableNotify
		l.mu.Unlock()
		l.notifyStable(pre, post, fn)
		return lsn
	}
	if l.forceDelay > 0 {
		gen := l.flushGen
		storage.SpinWait(l.forceDelay) // latch held across the device write
		if gen != l.flushGen {         // crashed under us: the record died with its epoch
			l.mu.Unlock()
			return lsn
		}
	}
	if lsn > l.stable {
		l.stable = lsn
		if l.stats != nil {
			l.stats.LogForces.Add(1)
		}
	}
	post, fn := l.stable, l.stableNotify
	l.mu.Unlock()
	l.notifyStable(pre, post, fn)
	return lsn
}

// Force hardens the log up to and including lsn (a no-op if already
// stable). This is the synchronous log I/O that commit and the steal
// policy pay for. Concurrent callers group-commit: while one flush is in
// flight, later arrivals register the LSN they need and park; the next
// flush hardens up to the maximum registered LSN, so one device write
// satisfies every parked caller at once. (A caller's record is always
// already in the buffer when it forces, and LSNs are assigned in append
// order, so a flush that started with high-water mark W covers every
// record with LSN <= W.)
func (l *Log) Force(lsn LSN) {
	l.mu.Lock()
	pre := l.stable
	l.forceLocked(lsn)
	post, fn := l.stable, l.stableNotify
	l.mu.Unlock()
	l.notifyStable(pre, post, fn)
}

// ForceAll hardens the entire log. The last-LSN read and the force happen
// under one lock acquisition, so every record appended before the call is
// covered — there is no window for a concurrent append to slip a record
// between the snapshot and the flush start.
func (l *Log) ForceAll() {
	l.mu.Lock()
	pre := l.stable
	if n := len(l.recs); n > 0 {
		l.forceLocked(l.recs[n-1].LSN)
	}
	post, fn := l.stable, l.stableNotify
	l.mu.Unlock()
	l.notifyStable(pre, post, fn)
}

// forceLocked hardens the log up to lsn. Caller holds l.mu; the lock is
// released only while a simulated flush is sleeping. The stable-LSN
// advance and the LogForces bump happen under the same critical section,
// keeping the counters consistent with the log state at every instant.
func (l *Log) forceLocked(lsn LSN) {
	entryGen := l.flushGen
	if lsn > l.flushWant {
		l.flushWant = lsn
	}
	waited, flushed := false, false
	for lsn > l.stable {
		if l.flushGen != entryGen {
			// The log was crashed while this force was parked or flushing:
			// the records it covered are gone with the epoch. Unwind; the
			// caller is a zombie and its commit will be refused upstream.
			return
		}
		if l.flushing {
			// Device busy: park until the in-flight flush completes.
			if !waited {
				waited = true
				if l.stats != nil {
					l.stats.ForceWaiters.Add(1)
				}
			}
			l.flushCond.Wait()
			continue
		}
		want := l.flushWant
		if l.groupOff {
			want = lsn // serial baseline: flush only what this caller needs
		}
		if l.forceDelay <= 0 {
			// Instantaneous device: no in-flight window to coalesce into.
			l.stable = want
			if l.stats != nil {
				l.stats.LogForces.Add(1)
			}
			flushed = true
			continue
		}
		l.flushing = true
		gen := l.flushGen
		delay := l.forceDelay
		l.mu.Unlock()
		storage.SpinWait(delay)
		l.mu.Lock()
		l.flushing = false
		if gen == l.flushGen { // a crash during the flush discards it
			if want > l.stable {
				l.stable = want
				if l.stats != nil {
					l.stats.LogForces.Add(1)
				}
				flushed = true
			}
		}
		l.flushCond.Broadcast()
	}
	if waited && !flushed && l.stats != nil {
		// Hardened entirely by someone else's flush: a group commit.
		l.stats.GroupCommits.Add(1)
	}
}

// StableLSN returns the highest forced LSN.
func (l *Log) StableLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stable
}

// NextLSN returns the LSN the next appended record will receive. Because
// LSNs are byte addresses, a standby appending the exact record stream the
// primary logged reproduces the primary's LSNs — NextLSN is therefore the
// "expected next" mark replication gap detection compares against.
func (l *Log) NextLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextOff + 1
}

// MaxLSN returns the LSN of the most recently appended record (NilLSN if
// the log is empty).
func (l *Log) MaxLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.recs) == 0 {
		return NilLSN
	}
	return l.recs[len(l.recs)-1].LSN
}

// Bytes returns the total bytes appended (volatile + stable).
func (l *Log) Bytes() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// NumRecords returns the number of appended records.
func (l *Log) NumRecords() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// SetMaster durably stores the checkpoint anchor (the "master record" kept
// at a well-known disk location in real systems). Callers must have forced
// the checkpoint records first.
func (l *Log) SetMaster(lsn LSN) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn > l.stable {
		panic("wal: master record set before checkpoint was forced")
	}
	l.master = lsn
}

// Master returns the checkpoint anchor LSN (NilLSN if none).
func (l *Log) Master() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.master
}

func (l *Log) idxOf(lsn LSN) (int, bool) {
	i := sort.Search(len(l.offs), func(i int) bool { return l.offs[i] >= lsn })
	if i < len(l.offs) && l.offs[i] == lsn {
		return i, true
	}
	return 0, false
}

// Read returns the record at lsn.
func (l *Log) Read(lsn LSN) (*Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i, ok := l.idxOf(lsn); ok {
		return l.recs[i], nil
	}
	return nil, fmt.Errorf("wal: no record at LSN %d", lsn)
}

// Scan invokes fn on every record with LSN >= from, in order, until fn
// returns false. It snapshots the record list so fn may use the log.
func (l *Log) Scan(from LSN, fn func(*Record) bool) {
	for _, r := range l.SnapshotFrom(from) {
		if !fn(r) {
			return
		}
	}
}

// SnapshotFrom returns a read-only view of every record with LSN >= from,
// in order. The view shares the log's backing array — records are
// immutable once appended, and later appends never mutate the viewed
// prefix — so ONE log scan can be fanned out across many consumers
// (restart redo workers) with zero copying. Callers must not modify the
// returned slice or the records it holds.
func (l *Log) SnapshotFrom(from LSN) []*Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	i := sort.Search(len(l.offs), func(i int) bool { return l.offs[i] >= from })
	return l.recs[i:len(l.recs):len(l.recs)]
}

// SnapshotStable returns a read-only view of every record with
// from <= LSN <= stable, together with the stable and master LSNs, all
// captured under one lock acquisition — the consistent stable-prefix
// snapshot the archive and the log shipper are defined against. Like
// SnapshotFrom, the view shares the log's backing array (records are
// immutable once appended) so callers must not modify it; unlike
// SnapshotFrom it excludes the volatile tail, so concurrent appends and
// forces racing the call can only land strictly after the returned prefix.
func (l *Log) SnapshotStable(from LSN) (recs []*Record, stable, master LSN) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lo := sort.Search(len(l.offs), func(i int) bool { return l.offs[i] >= from })
	hi := sort.Search(len(l.offs), func(i int) bool { return l.offs[i] > l.stable })
	if lo > hi {
		lo = hi
	}
	return l.recs[lo:hi:hi], l.stable, l.master
}

// Records returns all records from LSN from onward (test/verification aid).
func (l *Log) Records(from LSN) []*Record {
	var out []*Record
	l.Scan(from, func(r *Record) bool { out = append(out, r); return true })
	return out
}

// Crash simulates loss of volatile state: every record after the stable
// LSN disappears, exactly as an unforced log buffer would. The master
// record survives only because SetMaster requires a prior force.
//
// Every crash also performs the CRC sweep a restart would run over the
// stable log: if any surviving record was corrupted (CorruptStored, or a
// torn tail from CrashWithTornTail), the log is truncated at the first
// record that fails its CRC — everything from there on is lost.
func (l *Log) Crash() {
	l.crash(0, false)
}

// CrashWithTornTail crashes the log but lets up to extra unforced records
// reach stable storage — a real log device writes sequentially, so records
// past the last explicit force may survive a power cut — with the last
// survivor torn mid-record. The crash sweep detects the torn record by its
// CRC and truncates there, so the surviving log is the forced prefix plus
// extra-1 intact unforced records.
func (l *Log) CrashWithTornTail(extra int) {
	l.crash(extra, true)
}

func (l *Log) crash(extra int, tear bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	i := sort.Search(len(l.offs), func(i int) bool { return l.offs[i] > l.stable })
	keep := i + extra
	if keep > len(l.recs) {
		keep = len(l.recs)
	}
	if tear && keep > i && keep > 0 {
		// Tear the last survivor: its trailing half never hit the platter.
		last := l.recs[keep-1]
		l.damage[last.LSN] = append(l.damage[last.LSN],
			damageSpot{off: last.EncodedSize() / 2, xor: 0xA5})
	}
	l.recs = l.recs[:keep]
	l.offs = l.offs[:keep]
	l.sweepLocked()
	if n := len(l.recs); n > 0 {
		last := l.recs[n-1]
		l.nextOff = last.LSN - 1 + LSN(last.EncodedSize())
		l.stable = last.LSN
	} else {
		l.nextOff = 0
		l.stable = NilLSN
	}
	l.bytes = uint64(l.nextOff)
	if l.master > l.stable {
		l.master = NilLSN
	}
	// Fence any in-flight or parked force: its epoch is gone. Parked
	// waiters wake, observe the generation change, and unwind.
	l.flushGen++
	l.flushWant = l.stable
	if l.flushCond != nil {
		l.flushCond.Broadcast()
	}
}

// sweepLocked re-reads every damaged surviving record the way a restart
// reads the stable log — encoded bytes, with planted corruption applied —
// and truncates the log at the first record that fails to decode.
func (l *Log) sweepLocked() {
	if len(l.damage) == 0 {
		return
	}
	cut := -1
	for i, r := range l.recs {
		spots, ok := l.damage[r.LSN]
		if !ok {
			continue
		}
		b := r.Encode()
		for _, s := range spots {
			if s.off >= 0 && s.off < len(b) {
				b[s.off] ^= s.xor
			}
		}
		if _, _, err := DecodeRecord(b); err != nil {
			cut = i
			break
		}
	}
	if cut < 0 {
		return
	}
	for _, r := range l.recs[cut:] {
		delete(l.damage, r.LSN)
	}
	l.recs = l.recs[:cut]
	l.offs = l.offs[:cut]
	l.truncates++
	if l.stats != nil {
		l.stats.TornTailTruncations.Add(1)
	}
}

// CorruptStored plants byte-level corruption (XOR of mask at byte off) in
// the stored image of the record at lsn. The corruption takes effect at
// the next crash, when the CRC sweep re-reads the stable log: the log is
// truncated at the first record that no longer decodes.
func (l *Log) CorruptStored(lsn LSN, off int, mask byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.idxOf(lsn); !ok {
		return fmt.Errorf("wal: no record at LSN %d", lsn)
	}
	l.damage[lsn] = append(l.damage[lsn], damageSpot{off: off, xor: mask})
	return nil
}

// TornTailTruncations reports how many crash sweeps found a bad-CRC record
// and truncated the log there.
func (l *Log) TornTailTruncations() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncates
}

// Clone deep-copies the log's stable state into a new Log reporting into
// stats. Records are shared (they are immutable once appended); slices,
// marks, and planted damage are copied. Used to fork an engine for
// crash-point sweeps without disturbing the original.
func (l *Log) Clone(stats *trace.Stats) *Log {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := &Log{
		recs:       append([]*Record(nil), l.recs...),
		offs:       append([]LSN(nil), l.offs...),
		nextOff:    l.nextOff,
		stable:     l.stable,
		master:     l.master,
		bytes:      l.bytes,
		truncates:  l.truncates,
		damage:     make(map[LSN][]damageSpot, len(l.damage)),
		forceDelay: l.forceDelay,
		groupOff:   l.groupOff,
		stats:      stats,
	}
	out.flushCond = sync.NewCond(&out.mu)
	for lsn, spots := range l.damage {
		out.damage[lsn] = append([]damageSpot(nil), spots...)
	}
	return out
}

// TruncateTo is a failure-injection hook for crash-point testing: it
// rewinds BOTH the stable mark and the log contents to lsn, simulating a
// crash in a run whose last force reached exactly lsn. It must only be
// used when no page with a higher page_LSN has reached the disk (the WAL
// protocol would forbid that state); tests assert this themselves.
func (l *Log) TruncateTo(lsn LSN) {
	l.mu.Lock()
	l.stable = lsn
	if l.master > lsn {
		l.master = NilLSN
	}
	l.mu.Unlock()
	l.Crash()
}

// CodecRoundTrip re-encodes and decodes every stable record, verifying the
// on-log format end to end. Used by tests and the crash tool.
func (l *Log) CodecRoundTrip() error {
	for _, r := range l.Records(NilLSN + 1) {
		got, n, err := DecodeRecord(r.Encode())
		if err != nil {
			return fmt.Errorf("LSN %d: %w", r.LSN, err)
		}
		if n != r.EncodedSize() {
			return fmt.Errorf("LSN %d: size %d != %d", r.LSN, n, r.EncodedSize())
		}
		got.LSN = r.LSN
		if got.String() != r.String() {
			return fmt.Errorf("LSN %d: round trip mismatch:\n  %s\n  %s", r.LSN, r, got)
		}
	}
	return nil
}
