package wal

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ariesim/internal/storage"
	"ariesim/internal/trace"
)

// ErrLogCrashed reports an append-force whose record died with a crashed log
// epoch: the LSN was assigned but the record never reached stable storage
// and never will. Callers must not acknowledge anything that depended on it.
var ErrLogCrashed = errors.New("wal: log crashed during append-force")

// Log is the write-ahead log manager. Records live in a single virtual
// byte address space; a record's LSN is one plus its byte offset, so LSNs
// are monotonically increasing and directly comparable with page_LSNs.
//
// The log models the volatile log buffer + stable log file split that
// ARIES depends on: Append places a record in the buffer, Force hardens
// every record up to an LSN, and Crash discards the unforced tail. The
// WAL protocol proper (force before writing a dirty page; force at commit)
// is enforced by the buffer pool and transaction manager, which call Force
// with the relevant LSNs.
//
// The append path is a lock-free reservation pipeline (see reserve.go):
// Append claims its byte range and slot with one atomic fetch-add, publishes
// the record, and advances the contiguity watermark. Only the flush pipeline
// (group commit), the crash fence, and the marks (stable/master) are
// mutex-guarded — and every consumer of "the log's contents" (snapshots,
// archive, shipping, redo) reads the watermarked prefix, which is hole-free
// by construction.
type Log struct {
	// Reservation pipeline (lock-free append path; see reserve.go).
	resv   atomic.Uint64             // packed claim word: records<<40 | bytes
	dir    atomic.Pointer[[]*logSeg] // slot directory, grown by CAS
	filled atomic.Uint64             // contiguity watermark: slots [0,filled) published

	// crashMu fences appends against crash truncation: appenders hold the
	// shared side (non-serializing among themselves) across claim+publish;
	// Crash, TruncateTo, and Clone hold it exclusively, so they only ever
	// observe a log with no reservation mid-fill — truncation happens at
	// the watermark, never mid-hole. Lock order: serialMu > crashMu > mu.
	crashMu sync.RWMutex

	// serialMu is the append latch of the no-group-commit baseline: held
	// across claim+publish by every append, and across the device flush by
	// AppendForce, so each committer pays the full flush latency alone and
	// every other append stalls behind it — the classic serial commit path
	// the concurrency benchmark compares against. Unused (never locked)
	// with group commit on.
	serialMu sync.Mutex
	groupOff atomic.Bool // group commit disabled (serial per-caller flushes)

	mu     sync.Mutex
	stable LSN // highest LSN whose record (entirely) is on stable storage
	master LSN // "master record": LSN of the last end-checkpoint, forced separately

	// Costed log device + group commit. forceDelay simulates the latency of
	// one physical flush (zero: instantaneous, the historical model).
	// While a flush is in flight (flushing == true, only possible with a
	// nonzero delay) the device is busy; concurrent Force callers park on
	// flushCond. With group commit enabled, a flush hardens up to flushWant
	// — the max LSN requested by every caller that arrived before the flush
	// started — so parked callers usually wake already satisfied. With it
	// disabled, a flush hardens only its leader's own LSN and each waiter
	// re-flushes for itself: the serial force pipeline the old code modeled.
	forceDelay time.Duration
	flushing   bool
	flushWant  LSN
	flushGen   atomic.Uint64 // bumped by crash (under mu) so in-flight flushes and watermark waits die with their epoch
	flushCond  *sync.Cond

	// Stable-notify sequencer. Deliveries are strictly monotonic within a
	// crash epoch: at most one goroutine delivers at a time (notifyBusy),
	// it always delivers the current stable mark, and notifyDone records
	// the highest value handed out — a lower watermark can never be
	// delivered after a higher one, no matter how forces interleave.
	// notifyGen is bumped by crash so an in-flight delivery from the dead
	// epoch cannot record its value.
	notifyFn   func(LSN)
	notifyDone LSN
	notifyBusy bool
	notifyGen  uint64

	// publishGate, when non-nil, is called by reserveFill between the claim
	// and the slot publish with the claimed slot index. Test-only: it lets a
	// schedule-pinned test hold one reservation open inside the
	// claim→publish window while other appenders publish past it. Installed
	// before any appender starts (never mutated concurrently).
	publishGate func(slot uint64)

	// damage records byte-level corruption planted in the stored image of
	// individual records (torn log writes, media rot). It is consulted by
	// the CRC sweep that every crash performs: the surviving log is the
	// prefix up to the first record that no longer decodes.
	damage    map[LSN][]damageSpot
	truncates uint64 // torn-tail truncations performed by crash sweeps

	stats *trace.Stats
}

// damageSpot is one corrupted byte in a record's stored image.
type damageSpot struct {
	off int // byte offset within the encoded record
	xor byte
}

// NewLog creates an empty log reporting into stats (which may be nil).
func NewLog(stats *trace.Stats) *Log {
	l := &Log{stats: stats, damage: make(map[LSN][]damageSpot)}
	l.flushCond = sync.NewCond(&l.mu)
	return l
}

// SetForceDelay configures the simulated latency of one physical log
// flush. Zero (the default) keeps forces instantaneous, so existing tests
// and single-threaded callers see no change.
func (l *Log) SetForceDelay(d time.Duration) {
	l.mu.Lock()
	l.forceDelay = d
	l.mu.Unlock()
}

// SetGroupCommit enables (default) or disables force coalescing. Disabled,
// every Force caller whose LSN is not yet stable performs its own serial
// flush, and the append path serializes on the append latch — the baseline
// configuration the concurrency benchmark compares against.
func (l *Log) SetGroupCommit(enabled bool) {
	l.groupOff.Store(!enabled)
}

// GroupCommit reports whether force coalescing is enabled.
func (l *Log) GroupCommit() bool {
	return !l.groupOff.Load()
}

// SetStableNotify installs (or, with nil, removes) the stable-LSN watermark
// callback: after any Force/ForceAll/AppendForce that advances the stable
// LSN, fn is called with the new watermark, outside the log mutex. This is
// the streaming hook continuous log shipping rides on — the shipper wakes
// on each notification and ships the newly hardened suffix. Deliveries are
// strictly increasing within a crash epoch and coalesce under bursts (a
// burst of forces may produce one callback carrying the highest watermark).
// A crash does NOT notify (stable only rewinds there), and a Clone does not
// inherit the callback: the successor log belongs to a new epoch the old
// shipper must never observe.
func (l *Log) SetStableNotify(fn func(LSN)) {
	l.mu.Lock()
	l.notifyFn = fn
	l.notifyDone = l.stable // fire only on advances from here on
	l.mu.Unlock()
}

// deliverNotify drains the notify sequencer. At most one goroutine delivers
// at a time; it hands out the current stable mark outside the mutex and
// loops while the mark moved during delivery (the forcer that moved it saw
// notifyBusy and left delivery to us). notifyDone only ever rises within an
// epoch, so delivered watermarks are strictly increasing — the out-of-order
// delivery the old post-unlock callback allowed cannot happen. Called with
// l.mu NOT held.
func (l *Log) deliverNotify() {
	l.mu.Lock()
	for {
		fn := l.notifyFn
		if fn == nil || l.notifyBusy || l.stable <= l.notifyDone {
			l.mu.Unlock()
			return
		}
		l.notifyBusy = true
		lsn := l.stable
		gen := l.notifyGen
		l.mu.Unlock()
		fn(lsn)
		l.mu.Lock()
		l.notifyBusy = false
		if l.notifyGen == gen && lsn > l.notifyDone {
			l.notifyDone = lsn
		}
	}
}

// Append assigns the next LSN to r and adds it to the log buffer. The
// record is volatile until a Force covers it. Append returns the LSN.
//
// With group commit on this is the lock-free reservation path: one atomic
// fetch-add claims the byte range and slot, and concurrent appenders never
// serialize. With it off, appends take the serial append latch so they
// stall behind a committer's latch-held flush — the baseline's defining
// cost.
func (l *Log) Append(r *Record) LSN {
	enc := len(r.Encode()) // realistic byte accounting, outside any lock
	if l.groupOff.Load() {
		l.serialMu.Lock()
		defer l.serialMu.Unlock()
	}
	l.crashMu.RLock()
	lsn := l.reserveFill(r, enc)
	l.crashMu.RUnlock()
	return lsn
}

// AppendForce appends r and hardens it — the commit-path combination.
//
// With group commit enabled it is a lock-free append followed by a
// coalescing force: the flush sleeps outside the log latch, so concurrent
// committers overlap their device waits and share flushes.
//
// Disabled, it models the classic serial commit path: the append latch is
// held from the claim through the device flush, so each committer pays the
// full flush latency alone and every other append stalls behind it.
// (A mere stable-LSN check before flushing would let commits ride flushes
// they never asked for — implicit batching — which is exactly the effect
// the no-group-commit baseline must not get for free.)
//
// If a crash lands while the record is being hardened, AppendForce returns
// the dead record's LSN together with ErrLogCrashed: the record is gone
// with its epoch and the caller must not acknowledge the commit.
func (l *Log) AppendForce(r *Record) (LSN, error) {
	enc := len(r.Encode())
	if l.groupOff.Load() {
		return l.appendForceSerial(r, enc)
	}
	l.crashMu.RLock()
	lsn := l.reserveFill(r, enc)
	l.crashMu.RUnlock()
	if !l.Force(lsn) {
		return lsn, ErrLogCrashed
	}
	return lsn, nil
}

// appendForceSerial is AppendForce's no-group-commit body: claim and fill
// under the append latch, then flush with the latch still held. The log
// mutex is NOT held across the device wait, so a crash can land mid-flush;
// the generation check detects it and reports the zombie record instead of
// silently returning a dead LSN.
func (l *Log) appendForceSerial(r *Record, enc int) (LSN, error) {
	l.serialMu.Lock()
	defer l.serialMu.Unlock()
	l.crashMu.RLock()
	lsn := l.reserveFill(r, enc)
	l.crashMu.RUnlock()
	l.mu.Lock()
	gen := l.flushGen.Load()
	if l.forceDelay > 0 {
		l.mu.Unlock()
		storage.SpinWait(l.forceDelay) // append latch held across the device write
		l.mu.Lock()
	}
	if l.flushGen.Load() != gen { // crashed under us: the record died with its epoch
		l.mu.Unlock()
		return lsn, ErrLogCrashed
	}
	if lsn > l.stable {
		l.stable = lsn
		if l.stats != nil {
			l.stats.LogForces.Add(1)
		}
	}
	l.mu.Unlock()
	l.deliverNotify()
	return lsn, nil
}

// awaitFilled blocks until the contiguity watermark covers lsn — i.e. every
// reservation below lsn has been published — so that a force can never
// harden a prefix with a hole in it. Returns false if a crash fenced the
// wait (the target epoch is gone), true otherwise; if lsn lies beyond the
// claimed frontier there is nothing to wait for and the wait ends when the
// outstanding reservations drain. Lock-free: the stall spins on the
// watermark, counting one WatermarkStalls per stalled wait.
func (l *Log) awaitFilled(lsn LSN) bool {
	if l.filledLSN() >= lsn {
		return true
	}
	gen := l.flushGen.Load()
	stalled := false
	for l.filledLSN() < lsn {
		count, _ := unpackResv(l.resv.Load())
		if l.filled.Load() >= count {
			// Every claimed reservation is published and the watermark is
			// still below lsn: the target is beyond the frontier (a force
			// of a not-yet-appended LSN). Nothing left to wait for.
			return true
		}
		if l.flushGen.Load() != gen {
			return false
		}
		if !stalled {
			stalled = true
			if l.stats != nil {
				l.stats.WatermarkStalls.Add(1)
			}
		}
		runtime.Gosched()
	}
	return true
}

// Force hardens the log up to and including lsn (a no-op if already
// stable). This is the synchronous log I/O that commit and the steal
// policy pay for. Concurrent callers group-commit: while one flush is in
// flight, later arrivals register the LSN they need and park; the next
// flush hardens up to the maximum registered LSN, so one device write
// satisfies every parked caller at once. Force first waits for the
// contiguity watermark to cover lsn, so the hardened prefix can never
// contain an unpublished reservation.
//
// Force reports whether lsn is stable on return; false means a crash
// fenced the wait and the records it covered are gone with their epoch.
// Callers that do not commit on the result may ignore it.
func (l *Log) Force(lsn LSN) bool {
	if !l.awaitFilled(lsn) {
		return false
	}
	l.mu.Lock()
	ok := l.forceLocked(lsn)
	l.mu.Unlock()
	l.deliverNotify()
	return ok
}

// ForceAll hardens the entire log. The claimed frontier is snapshotted at
// entry and the force waits for the watermark to reach it, so every record
// whose append began before the call is covered — there is no window for a
// concurrent append to slip a record between the snapshot and the flush
// start, and no hole below the flushed mark.
func (l *Log) ForceAll() {
	count, _ := unpackResv(l.resv.Load())
	if count == 0 {
		return
	}
	gen := l.flushGen.Load()
	stalled := false
	for l.filled.Load() < count {
		if l.flushGen.Load() != gen {
			return
		}
		if !stalled {
			stalled = true
			if l.stats != nil {
				l.stats.WatermarkStalls.Add(1)
			}
		}
		runtime.Gosched()
	}
	l.mu.Lock()
	l.forceLocked(l.filledLSN())
	l.mu.Unlock()
	l.deliverNotify()
}

// forceLocked hardens the log up to lsn. Caller holds l.mu and has already
// awaited the contiguity watermark; the lock is released only while a
// simulated flush is sleeping. The stable-LSN advance and the LogForces
// bump happen under the same critical section, keeping the counters
// consistent with the log state at every instant. Returns false if a crash
// fenced the force (the records it covered are gone with the epoch).
func (l *Log) forceLocked(lsn LSN) bool {
	entryGen := l.flushGen.Load()
	if lsn > l.flushWant {
		l.flushWant = lsn
	}
	waited, flushed := false, false
	for lsn > l.stable {
		if l.flushGen.Load() != entryGen {
			// The log was crashed while this force was parked or flushing:
			// the records it covered are gone with the epoch. Unwind; the
			// caller is a zombie and its commit must be refused.
			return false
		}
		if l.flushing {
			// Device busy: park until the in-flight flush completes.
			if !waited {
				waited = true
				if l.stats != nil {
					l.stats.ForceWaiters.Add(1)
				}
			}
			l.flushCond.Wait()
			continue
		}
		want := l.flushWant
		if l.groupOff.Load() {
			want = lsn // serial baseline: flush only what this caller needs
		}
		if l.forceDelay <= 0 {
			// Instantaneous device: no in-flight window to coalesce into.
			l.stable = want
			if l.stats != nil {
				l.stats.LogForces.Add(1)
			}
			flushed = true
			continue
		}
		l.flushing = true
		gen := l.flushGen.Load()
		delay := l.forceDelay
		l.mu.Unlock()
		storage.SpinWait(delay)
		l.mu.Lock()
		l.flushing = false
		if gen == l.flushGen.Load() { // a crash during the flush discards it
			if want > l.stable {
				l.stable = want
				if l.stats != nil {
					l.stats.LogForces.Add(1)
				}
				flushed = true
			}
		}
		l.flushCond.Broadcast()
	}
	if waited && !flushed && l.stats != nil {
		// Hardened entirely by someone else's flush: a group commit.
		l.stats.GroupCommits.Add(1)
	}
	return true
}

// StableLSN returns the highest forced LSN.
func (l *Log) StableLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stable
}

// NextLSN returns the LSN the next appended record will receive. Because
// LSNs are byte addresses, a standby appending the exact record stream the
// primary logged reproduces the primary's LSNs — NextLSN is therefore the
// "expected next" mark replication gap detection compares against.
func (l *Log) NextLSN() LSN {
	l.crashMu.RLock()
	defer l.crashMu.RUnlock()
	_, off := unpackResv(l.resv.Load())
	return off + 1
}

// MaxLSN returns the LSN of the most recently appended record under the
// contiguity watermark (NilLSN if the log is empty).
func (l *Log) MaxLSN() LSN {
	l.crashMu.RLock()
	defer l.crashMu.RUnlock()
	return l.filledLSN()
}

// Bytes returns the total bytes appended (volatile + stable), up to the
// contiguity watermark.
func (l *Log) Bytes() uint64 {
	l.crashMu.RLock()
	defer l.crashMu.RUnlock()
	f := l.filled.Load()
	if f == 0 {
		return 0
	}
	r := l.slotAt(f - 1)
	return uint64(r.LSN) - 1 + uint64(r.EncodedSize())
}

// NumRecords returns the number of appended records under the contiguity
// watermark.
func (l *Log) NumRecords() int {
	l.crashMu.RLock()
	defer l.crashMu.RUnlock()
	return int(l.filled.Load())
}

// SetMaster durably stores the checkpoint anchor (the "master record" kept
// at a well-known disk location in real systems). Callers must have forced
// the checkpoint records first.
func (l *Log) SetMaster(lsn LSN) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn > l.stable {
		panic("wal: master record set before checkpoint was forced")
	}
	l.master = lsn
}

// Master returns the checkpoint anchor LSN (NilLSN if none).
func (l *Log) Master() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.master
}

// Read returns the record at lsn.
//
// Appends publish out of slot order: a record can sit published at slot i
// while an earlier reservation (slot j < i, another appender) is still
// inside its claim→publish window, which parks the contiguity watermark at
// j. A reader chasing an undo chain lands in exactly that window — the
// transaction's own just-appended record is published but not yet covered —
// so a watermark-capped search must not conclude "no such record" while
// unpublished reservations remain below the claimed frontier. Read waits
// out the transient hole (mirroring awaitFilled): it returns the record as
// soon as the watermark covers it, and reports absence only once the LSN is
// provably beyond every claim or every claimed reservation has published.
// The wait cannot deadlock or outlive the epoch: Read holds crashMu shared,
// so no crash truncates mid-wait, and every unpublished reservation it can
// wait on is owned by an appender that already holds crashMu shared too —
// the publish it waits for can never park behind a pending exclusive locker.
func (l *Log) Read(lsn LSN) (*Record, error) {
	l.crashMu.RLock()
	defer l.crashMu.RUnlock()
	for {
		i, n := l.searchFilled(lsn)
		if i < n {
			if r := l.slotAt(i); r.LSN == lsn {
				return r, nil
			}
		}
		count, off := unpackResv(l.resv.Load())
		if lsn > off {
			// Beyond every claimed byte: no reservation can hold this LSN.
			break
		}
		if l.filled.Load() >= count {
			// Every claimed reservation has published and the watermark
			// covers the frontier; one fresh search is authoritative.
			if i, n := l.searchFilled(lsn); i < n {
				if r := l.slotAt(i); r.LSN == lsn {
					return r, nil
				}
			}
			break
		}
		runtime.Gosched()
	}
	return nil, fmt.Errorf("wal: no record at LSN %d", lsn)
}

// Scan invokes fn on every record with LSN >= from, in order, until fn
// returns false. It snapshots the record list so fn may use the log.
func (l *Log) Scan(from LSN, fn func(*Record) bool) {
	for _, r := range l.SnapshotFrom(from) {
		if !fn(r) {
			return
		}
	}
}

// SnapshotFrom returns a read-only view of every record with LSN >= from,
// in order, up to the contiguity watermark. The records are shared (they
// are immutable once appended) and only the pointer slice is materialized,
// so ONE log scan can still be fanned out across many consumers (restart
// redo workers) cheaply. Callers must not modify the returned records.
func (l *Log) SnapshotFrom(from LSN) []*Record {
	l.crashMu.RLock()
	defer l.crashMu.RUnlock()
	lo, n := l.searchFilled(from)
	return l.prefix(lo, n)
}

// SnapshotStable returns a read-only view of every record with
// from <= LSN <= stable, together with the stable and master LSNs — the
// consistent stable-prefix snapshot the archive and the log shipper are
// defined against. The stable mark can only cover watermarked records
// (Force awaits the watermark before advancing it), so the snapshot is
// hole-free by construction; concurrent appends and forces racing the call
// can only land strictly after the returned prefix.
func (l *Log) SnapshotStable(from LSN) (recs []*Record, stable, master LSN) {
	l.crashMu.RLock()
	defer l.crashMu.RUnlock()
	l.mu.Lock()
	stable, master = l.stable, l.master
	l.mu.Unlock()
	lo, n := l.searchFilled(from)
	hi := lo + uint64(sort.Search(int(n-lo), func(i int) bool {
		return l.slotAt(lo+uint64(i)).LSN > stable
	}))
	return l.prefix(lo, hi), stable, master
}

// Records returns all records from LSN from onward (test/verification aid).
func (l *Log) Records(from LSN) []*Record {
	var out []*Record
	l.Scan(from, func(r *Record) bool { out = append(out, r); return true })
	return out
}

// Crash simulates loss of volatile state: every record after the stable
// LSN disappears, exactly as an unforced log buffer would. The master
// record survives only because SetMaster requires a prior force.
//
// Every crash also performs the CRC sweep a restart would run over the
// stable log: if any surviving record was corrupted (CorruptStored, or a
// torn tail from CrashWithTornTail), the log is truncated at the first
// record that fails its CRC — everything from there on is lost.
func (l *Log) Crash() {
	l.crashMu.Lock()
	defer l.crashMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.crashLocked(0, false)
}

// CrashWithTornTail crashes the log but lets up to extra unforced records
// reach stable storage — a real log device writes sequentially, so records
// past the last explicit force may survive a power cut — with the last
// survivor torn mid-record. The crash sweep detects the torn record by its
// CRC and truncates there, so the surviving log is the forced prefix plus
// extra-1 intact unforced records.
func (l *Log) CrashWithTornTail(extra int) {
	l.crashMu.Lock()
	defer l.crashMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.crashLocked(extra, true)
}

// TruncateTo is a failure-injection hook for crash-point testing: it
// rewinds BOTH the stable mark and the log contents to lsn, simulating a
// crash in a run whose last force reached exactly lsn. The rewind and the
// crash happen in ONE critical section — a concurrent append or force can
// never observe the rewound stable mark with the old contents (the window
// the old two-step implementation left open). It must only be used when no
// page with a higher page_LSN has reached the disk (the WAL protocol would
// forbid that state); tests assert this themselves.
func (l *Log) TruncateTo(lsn LSN) {
	l.crashMu.Lock()
	defer l.crashMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stable = lsn
	if l.master > lsn {
		l.master = NilLSN
	}
	l.crashLocked(0, false)
}

// crashLocked is the crash body. Caller holds crashMu exclusively and l.mu:
// no appender is between claim and publish, so the watermark can be dragged
// to the claimed frontier and the record list materialized without holes —
// the crash-truncation rule "truncate at the watermark, never mid-hole"
// holds by construction. Unfilled reservations cannot exist here; claimed
// records above the surviving prefix are discarded and their slots cleared,
// and the reservation word is rewound so the address space continues from
// the survivor.
func (l *Log) crashLocked(extra int, tear bool) {
	l.advanceFilled()
	claimed, _ := unpackResv(l.resv.Load())
	recs := l.prefix(0, claimed)
	i := sort.Search(len(recs), func(i int) bool { return recs[i].LSN > l.stable })
	keep := i + extra
	if keep > len(recs) {
		keep = len(recs)
	}
	if tear && keep > i && keep > 0 {
		// Tear the last survivor: its trailing half never hit the platter.
		last := recs[keep-1]
		l.damage[last.LSN] = append(l.damage[last.LSN],
			damageSpot{off: last.EncodedSize() / 2, xor: 0xA5})
	}
	recs = l.sweepDamaged(recs[:keep])
	n := uint64(len(recs))
	var nextOff LSN
	if n > 0 {
		last := recs[n-1]
		nextOff = last.LSN - 1 + LSN(last.EncodedSize())
		l.stable = last.LSN
	} else {
		nextOff = 0
		l.stable = NilLSN
	}
	l.filled.Store(n)
	for j := n; j < claimed; j++ {
		l.clearSlot(j)
	}
	l.resv.Store(packResv(n, nextOff))
	if l.master > l.stable {
		l.master = NilLSN
	}
	// Fence any in-flight or parked force and any watermark wait: their
	// epoch is gone. Parked waiters wake, observe the generation change,
	// and unwind.
	l.flushGen.Add(1)
	l.flushWant = l.stable
	if l.flushCond != nil {
		l.flushCond.Broadcast()
	}
	// Rebase the notify sequencer on the rewound watermark. A delivery in
	// flight belongs to the dead epoch; the generation bump keeps it from
	// recording its value, so post-crash advances notify from the rewound
	// mark. (A crash itself never notifies: stable only rewinds here.)
	l.notifyGen++
	l.notifyDone = l.stable
}

// sweepDamaged re-reads every damaged surviving record the way a restart
// reads the stable log — encoded bytes, with planted corruption applied —
// and truncates the list at the first record that fails to decode.
func (l *Log) sweepDamaged(recs []*Record) []*Record {
	if len(l.damage) == 0 {
		return recs
	}
	cut := -1
	for i, r := range recs {
		spots, ok := l.damage[r.LSN]
		if !ok {
			continue
		}
		b := r.Encode()
		for _, s := range spots {
			if s.off >= 0 && s.off < len(b) {
				b[s.off] ^= s.xor
			}
		}
		if _, _, err := DecodeRecord(b); err != nil {
			cut = i
			break
		}
	}
	if cut < 0 {
		return recs
	}
	for _, r := range recs[cut:] {
		delete(l.damage, r.LSN)
	}
	l.truncates++
	if l.stats != nil {
		l.stats.TornTailTruncations.Add(1)
	}
	return recs[:cut]
}

// CorruptStored plants byte-level corruption (XOR of mask at byte off) in
// the stored image of the record at lsn. The corruption takes effect at
// the next crash, when the CRC sweep re-reads the stable log: the log is
// truncated at the first record that no longer decodes.
func (l *Log) CorruptStored(lsn LSN, off int, mask byte) error {
	l.crashMu.RLock()
	defer l.crashMu.RUnlock()
	i, n := l.searchFilled(lsn)
	if i >= n || l.slotAt(i).LSN != lsn {
		return fmt.Errorf("wal: no record at LSN %d", lsn)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.damage[lsn] = append(l.damage[lsn], damageSpot{off: off, xor: mask})
	return nil
}

// TornTailTruncations reports how many crash sweeps found a bad-CRC record
// and truncated the log there.
func (l *Log) TornTailTruncations() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncates
}

// Clone deep-copies the log's state into a new Log reporting into stats.
// Records are shared (they are immutable once appended); the slot
// directory, marks, and planted damage are copied. Clone holds the crash
// fence exclusively, so no reservation is mid-fill and the copy is
// hole-free. Used to fork an engine for crash-point sweeps without
// disturbing the original.
func (l *Log) Clone(stats *trace.Stats) *Log {
	l.crashMu.Lock()
	defer l.crashMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.advanceFilled()
	count, off := unpackResv(l.resv.Load())
	out := NewLog(stats)
	for i := uint64(0); i < count; i++ {
		out.setSlot(i, l.slotAt(i))
	}
	out.filled.Store(count)
	out.resv.Store(packResv(count, off))
	out.stable = l.stable
	out.master = l.master
	out.truncates = l.truncates
	out.forceDelay = l.forceDelay
	out.groupOff.Store(l.groupOff.Load())
	for lsn, spots := range l.damage {
		out.damage[lsn] = append([]damageSpot(nil), spots...)
	}
	return out
}

// CodecRoundTrip re-encodes and decodes every stable record, verifying the
// on-log format end to end. Used by tests and the crash tool.
func (l *Log) CodecRoundTrip() error {
	for _, r := range l.Records(NilLSN + 1) {
		got, n, err := DecodeRecord(r.Encode())
		if err != nil {
			return fmt.Errorf("LSN %d: %w", r.LSN, err)
		}
		if n != r.EncodedSize() {
			return fmt.Errorf("LSN %d: size %d != %d", r.LSN, n, r.EncodedSize())
		}
		got.LSN = r.LSN
		if got.String() != r.String() {
			return fmt.Errorf("LSN %d: round trip mismatch:\n  %s\n  %s", r.LSN, r, got)
		}
	}
	return nil
}
