package wal

import (
	"fmt"
	"sort"
	"sync"

	"ariesim/internal/trace"
)

// Log is the write-ahead log manager. Records live in a single virtual
// byte address space; a record's LSN is one plus its byte offset, so LSNs
// are monotonically increasing and directly comparable with page_LSNs.
//
// The log models the volatile log buffer + stable log file split that
// ARIES depends on: Append places a record in the buffer, Force hardens
// every record up to an LSN, and Crash discards the unforced tail. The
// WAL protocol proper (force before writing a dirty page; force at commit)
// is enforced by the buffer pool and transaction manager, which call Force
// with the relevant LSNs.
type Log struct {
	mu      sync.Mutex
	recs    []*Record // decoded records, in order
	offs    []LSN     // recs[i].LSN, for binary search
	nextOff LSN       // next byte offset to assign (LSN-1 of next record)
	stable  LSN       // highest LSN whose record (entirely) is on stable storage
	master  LSN       // "master record": LSN of the last end-checkpoint, forced separately
	bytes   uint64

	// damage records byte-level corruption planted in the stored image of
	// individual records (torn log writes, media rot). It is consulted by
	// the CRC sweep that every crash performs: the surviving log is the
	// prefix up to the first record that no longer decodes.
	damage    map[LSN][]damageSpot
	truncates uint64 // torn-tail truncations performed by crash sweeps

	stats *trace.Stats
}

// damageSpot is one corrupted byte in a record's stored image.
type damageSpot struct {
	off int // byte offset within the encoded record
	xor byte
}

// NewLog creates an empty log reporting into stats (which may be nil).
func NewLog(stats *trace.Stats) *Log {
	return &Log{stats: stats, damage: make(map[LSN][]damageSpot)}
}

// Append assigns the next LSN to r and adds it to the log buffer. The
// record is volatile until a Force covers it. Append returns the LSN.
func (l *Log) Append(r *Record) LSN {
	enc := len(r.Encode()) // realistic byte accounting
	l.mu.Lock()
	r.LSN = l.nextOff + 1
	l.recs = append(l.recs, r)
	l.offs = append(l.offs, r.LSN)
	l.nextOff += LSN(enc)
	l.bytes += uint64(enc)
	l.mu.Unlock()
	if l.stats != nil {
		l.stats.LogRecords.Add(1)
		l.stats.LogBytes.Add(uint64(enc))
	}
	return r.LSN
}

// Force hardens the log up to and including lsn (a no-op if already
// stable). This is the synchronous log I/O that commit and the
// steal policy pay for.
func (l *Log) Force(lsn LSN) {
	l.mu.Lock()
	forced := false
	if lsn > l.stable {
		l.stable = lsn
		forced = true
	}
	l.mu.Unlock()
	if forced && l.stats != nil {
		l.stats.LogForces.Add(1)
	}
}

// ForceAll hardens the entire log.
func (l *Log) ForceAll() {
	l.mu.Lock()
	var last LSN
	if n := len(l.recs); n > 0 {
		last = l.recs[n-1].LSN
	}
	l.mu.Unlock()
	if last != NilLSN {
		l.Force(last)
	}
}

// StableLSN returns the highest forced LSN.
func (l *Log) StableLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stable
}

// MaxLSN returns the LSN of the most recently appended record (NilLSN if
// the log is empty).
func (l *Log) MaxLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.recs) == 0 {
		return NilLSN
	}
	return l.recs[len(l.recs)-1].LSN
}

// Bytes returns the total bytes appended (volatile + stable).
func (l *Log) Bytes() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// NumRecords returns the number of appended records.
func (l *Log) NumRecords() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// SetMaster durably stores the checkpoint anchor (the "master record" kept
// at a well-known disk location in real systems). Callers must have forced
// the checkpoint records first.
func (l *Log) SetMaster(lsn LSN) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn > l.stable {
		panic("wal: master record set before checkpoint was forced")
	}
	l.master = lsn
}

// Master returns the checkpoint anchor LSN (NilLSN if none).
func (l *Log) Master() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.master
}

func (l *Log) idxOf(lsn LSN) (int, bool) {
	i := sort.Search(len(l.offs), func(i int) bool { return l.offs[i] >= lsn })
	if i < len(l.offs) && l.offs[i] == lsn {
		return i, true
	}
	return 0, false
}

// Read returns the record at lsn.
func (l *Log) Read(lsn LSN) (*Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i, ok := l.idxOf(lsn); ok {
		return l.recs[i], nil
	}
	return nil, fmt.Errorf("wal: no record at LSN %d", lsn)
}

// Scan invokes fn on every record with LSN >= from, in order, until fn
// returns false. It snapshots the record list so fn may use the log.
func (l *Log) Scan(from LSN, fn func(*Record) bool) {
	l.mu.Lock()
	i := sort.Search(len(l.offs), func(i int) bool { return l.offs[i] >= from })
	snapshot := l.recs[i:]
	l.mu.Unlock()
	for _, r := range snapshot {
		if !fn(r) {
			return
		}
	}
}

// Records returns all records from LSN from onward (test/verification aid).
func (l *Log) Records(from LSN) []*Record {
	var out []*Record
	l.Scan(from, func(r *Record) bool { out = append(out, r); return true })
	return out
}

// Crash simulates loss of volatile state: every record after the stable
// LSN disappears, exactly as an unforced log buffer would. The master
// record survives only because SetMaster requires a prior force.
//
// Every crash also performs the CRC sweep a restart would run over the
// stable log: if any surviving record was corrupted (CorruptStored, or a
// torn tail from CrashWithTornTail), the log is truncated at the first
// record that fails its CRC — everything from there on is lost.
func (l *Log) Crash() {
	l.crash(0, false)
}

// CrashWithTornTail crashes the log but lets up to extra unforced records
// reach stable storage — a real log device writes sequentially, so records
// past the last explicit force may survive a power cut — with the last
// survivor torn mid-record. The crash sweep detects the torn record by its
// CRC and truncates there, so the surviving log is the forced prefix plus
// extra-1 intact unforced records.
func (l *Log) CrashWithTornTail(extra int) {
	l.crash(extra, true)
}

func (l *Log) crash(extra int, tear bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	i := sort.Search(len(l.offs), func(i int) bool { return l.offs[i] > l.stable })
	keep := i + extra
	if keep > len(l.recs) {
		keep = len(l.recs)
	}
	if tear && keep > i && keep > 0 {
		// Tear the last survivor: its trailing half never hit the platter.
		last := l.recs[keep-1]
		l.damage[last.LSN] = append(l.damage[last.LSN],
			damageSpot{off: last.EncodedSize() / 2, xor: 0xA5})
	}
	l.recs = l.recs[:keep]
	l.offs = l.offs[:keep]
	l.sweepLocked()
	if n := len(l.recs); n > 0 {
		last := l.recs[n-1]
		l.nextOff = last.LSN - 1 + LSN(last.EncodedSize())
		l.stable = last.LSN
	} else {
		l.nextOff = 0
		l.stable = NilLSN
	}
	l.bytes = uint64(l.nextOff)
	if l.master > l.stable {
		l.master = NilLSN
	}
}

// sweepLocked re-reads every damaged surviving record the way a restart
// reads the stable log — encoded bytes, with planted corruption applied —
// and truncates the log at the first record that fails to decode.
func (l *Log) sweepLocked() {
	if len(l.damage) == 0 {
		return
	}
	cut := -1
	for i, r := range l.recs {
		spots, ok := l.damage[r.LSN]
		if !ok {
			continue
		}
		b := r.Encode()
		for _, s := range spots {
			if s.off >= 0 && s.off < len(b) {
				b[s.off] ^= s.xor
			}
		}
		if _, _, err := DecodeRecord(b); err != nil {
			cut = i
			break
		}
	}
	if cut < 0 {
		return
	}
	for _, r := range l.recs[cut:] {
		delete(l.damage, r.LSN)
	}
	l.recs = l.recs[:cut]
	l.offs = l.offs[:cut]
	l.truncates++
	if l.stats != nil {
		l.stats.TornTailTruncations.Add(1)
	}
}

// CorruptStored plants byte-level corruption (XOR of mask at byte off) in
// the stored image of the record at lsn. The corruption takes effect at
// the next crash, when the CRC sweep re-reads the stable log: the log is
// truncated at the first record that no longer decodes.
func (l *Log) CorruptStored(lsn LSN, off int, mask byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.idxOf(lsn); !ok {
		return fmt.Errorf("wal: no record at LSN %d", lsn)
	}
	l.damage[lsn] = append(l.damage[lsn], damageSpot{off: off, xor: mask})
	return nil
}

// TornTailTruncations reports how many crash sweeps found a bad-CRC record
// and truncated the log there.
func (l *Log) TornTailTruncations() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncates
}

// Clone deep-copies the log's stable state into a new Log reporting into
// stats. Records are shared (they are immutable once appended); slices,
// marks, and planted damage are copied. Used to fork an engine for
// crash-point sweeps without disturbing the original.
func (l *Log) Clone(stats *trace.Stats) *Log {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := &Log{
		recs:      append([]*Record(nil), l.recs...),
		offs:      append([]LSN(nil), l.offs...),
		nextOff:   l.nextOff,
		stable:    l.stable,
		master:    l.master,
		bytes:     l.bytes,
		truncates: l.truncates,
		damage:    make(map[LSN][]damageSpot, len(l.damage)),
		stats:     stats,
	}
	for lsn, spots := range l.damage {
		out.damage[lsn] = append([]damageSpot(nil), spots...)
	}
	return out
}

// TruncateTo is a failure-injection hook for crash-point testing: it
// rewinds BOTH the stable mark and the log contents to lsn, simulating a
// crash in a run whose last force reached exactly lsn. It must only be
// used when no page with a higher page_LSN has reached the disk (the WAL
// protocol would forbid that state); tests assert this themselves.
func (l *Log) TruncateTo(lsn LSN) {
	l.mu.Lock()
	l.stable = lsn
	if l.master > lsn {
		l.master = NilLSN
	}
	l.mu.Unlock()
	l.Crash()
}

// CodecRoundTrip re-encodes and decodes every stable record, verifying the
// on-log format end to end. Used by tests and the crash tool.
func (l *Log) CodecRoundTrip() error {
	for _, r := range l.Records(NilLSN + 1) {
		got, n, err := DecodeRecord(r.Encode())
		if err != nil {
			return fmt.Errorf("LSN %d: %w", r.LSN, err)
		}
		if n != r.EncodedSize() {
			return fmt.Errorf("LSN %d: size %d != %d", r.LSN, n, r.EncodedSize())
		}
		got.LSN = r.LSN
		if got.String() != r.String() {
			return fmt.Errorf("LSN %d: round trip mismatch:\n  %s\n  %s", r.LSN, r, got)
		}
	}
	return nil
}
