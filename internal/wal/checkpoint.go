package wal

import (
	"encoding/binary"
	"fmt"

	"ariesim/internal/storage"
)

// TxState is a transaction's state as carried in checkpoint records and
// reconstructed by restart analysis.
type TxState uint8

const (
	// TxActive: in-flight; a loser if the log holds no commit record.
	TxActive TxState = iota + 1
	// TxPrepared: in-doubt under two-phase commit; restart reacquires its
	// locks and awaits the coordinator's decision.
	TxPrepared
	// TxCommitted: commit record logged but end record not yet written.
	TxCommitted
	// TxRollingBack: an abort record was logged; restart finishes the undo.
	TxRollingBack
)

func (s TxState) String() string {
	switch s {
	case TxActive:
		return "active"
	case TxPrepared:
		return "prepared"
	case TxCommitted:
		return "committed"
	case TxRollingBack:
		return "rolling-back"
	default:
		return fmt.Sprintf("txstate%d", uint8(s))
	}
}

// TxTableEntry is one row of the transaction table.
type TxTableEntry struct {
	TxID       TxID
	State      TxState
	LastLSN    LSN
	UndoNxtLSN LSN
}

// DPTEntry is one row of the dirty page table: the page and its recovery
// LSN (the earliest log record that might not be reflected on disk).
type DPTEntry struct {
	Page   storage.PageID
	RecLSN LSN
}

// CheckpointData is the payload of an end-checkpoint record: fuzzy copies
// of the transaction table and dirty page table.
type CheckpointData struct {
	Txs []TxTableEntry
	DPT []DPTEntry
}

// Encode serializes the checkpoint payload.
func (c *CheckpointData) Encode() []byte {
	b := make([]byte, 0, 8+len(c.Txs)*21+len(c.DPT)*12)
	var tmp [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		b = append(b, tmp[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:8], v)
		b = append(b, tmp[:8]...)
	}
	put32(uint32(len(c.Txs)))
	for _, t := range c.Txs {
		put32(uint32(t.TxID))
		b = append(b, uint8(t.State))
		put64(uint64(t.LastLSN))
		put64(uint64(t.UndoNxtLSN))
	}
	put32(uint32(len(c.DPT)))
	for _, d := range c.DPT {
		put32(uint32(d.Page))
		put64(uint64(d.RecLSN))
	}
	return b
}

// DecodeCheckpointData parses an end-checkpoint payload.
func DecodeCheckpointData(b []byte) (*CheckpointData, error) {
	c := &CheckpointData{}
	off := 0
	need := func(n int) error {
		if off+n > len(b) {
			return fmt.Errorf("wal: checkpoint payload truncated at %d (+%d of %d)", off, n, len(b))
		}
		return nil
	}
	if err := need(4); err != nil {
		return nil, err
	}
	nTx := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	for i := 0; i < nTx; i++ {
		if err := need(21); err != nil {
			return nil, err
		}
		t := TxTableEntry{
			TxID:  TxID(binary.LittleEndian.Uint32(b[off:])),
			State: TxState(b[off+4]),
		}
		t.LastLSN = LSN(binary.LittleEndian.Uint64(b[off+5:]))
		t.UndoNxtLSN = LSN(binary.LittleEndian.Uint64(b[off+13:]))
		off += 21
		c.Txs = append(c.Txs, t)
	}
	if err := need(4); err != nil {
		return nil, err
	}
	nDP := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	for i := 0; i < nDP; i++ {
		if err := need(12); err != nil {
			return nil, err
		}
		c.DPT = append(c.DPT, DPTEntry{
			Page:   storage.PageID(binary.LittleEndian.Uint32(b[off:])),
			RecLSN: LSN(binary.LittleEndian.Uint64(b[off+4:])),
		})
		off += 12
	}
	return c, nil
}

// LockSpec names one lock held by a prepared transaction, carried in the
// prepare record so restart analysis can reacquire it.
type LockSpec struct {
	Space uint8
	Mode  uint8
	A, B  uint64
}

// EncodeLocks serializes a prepare record's lock list.
func EncodeLocks(locks []LockSpec) []byte {
	b := make([]byte, 4+len(locks)*18)
	binary.LittleEndian.PutUint32(b, uint32(len(locks)))
	off := 4
	for _, l := range locks {
		b[off] = l.Space
		b[off+1] = l.Mode
		binary.LittleEndian.PutUint64(b[off+2:], l.A)
		binary.LittleEndian.PutUint64(b[off+10:], l.B)
		off += 18
	}
	return b
}

// DecodeLocks parses a prepare record's lock list.
func DecodeLocks(b []byte) ([]LockSpec, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("wal: lock list truncated")
	}
	n := int(binary.LittleEndian.Uint32(b))
	if len(b) < 4+n*18 {
		return nil, fmt.Errorf("wal: lock list claims %d entries, have %d bytes", n, len(b))
	}
	out := make([]LockSpec, n)
	off := 4
	for i := range out {
		out[i] = LockSpec{
			Space: b[off],
			Mode:  b[off+1],
			A:     binary.LittleEndian.Uint64(b[off+2:]),
			B:     binary.LittleEndian.Uint64(b[off+10:]),
		}
		off += 18
	}
	return out, nil
}
