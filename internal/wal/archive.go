package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Log archiving and shipping. Media recovery needs the log back to the
// oldest image copy; real systems therefore archive the stable log to
// offline storage, and a hot standby consumes the same byte stream
// incrementally. Archive serializes the stable prefix with the on-log
// record codec, ReadArchive reconstructs a Log from an archive stream, and
// Segment frames a resumable slice of that stream (sequence number, epoch,
// per-segment CRC) for continuous shipping over a lossy channel. Every
// record round-trips through Encode/DecodeRecord — the same codec a
// file-backed log would use — so the wire format is pinned by tests.

const (
	archiveMagic = uint32(0x41524C47) // "ARLG"
	segmentMagic = uint32(0x41525347) // "ARSG"
)

// Typed archive-stream errors. Callers classify with errors.Is.
var (
	// ErrArchiveTorn reports an archive stream that ends mid-record — the
	// tail was torn off in transit or on the media, exactly like a torn WAL
	// tail. It is RECOVERABLE: ReadArchive returns the intact prefix
	// alongside this error, and a shipper treats the loss as a gap to
	// re-request.
	ErrArchiveTorn = errors.New("wal: archive tail torn")
	// ErrArchiveCorrupt reports corruption in the middle of an archive
	// stream: a record fails its CRC (or carries a garbage length) while
	// more data follows. Unlike a torn tail there is no way to trust
	// anything at or after the damage, so the stream is rejected outright.
	ErrArchiveCorrupt = errors.New("wal: archive corrupt mid-stream")
	// ErrSegmentCorrupt reports a replication segment whose frame CRC or
	// record codec check failed — the channel damaged it in flight. The
	// receiver discards the frame and NAKs.
	ErrSegmentCorrupt = errors.New("wal: replication segment corrupt")
)

// Archive writes the stable log prefix to w: a small header (magic,
// stable LSN, master LSN) followed by the encoded records. It returns the
// number of records written.
//
// Snapshot contract: the archive is exactly the stable prefix at one
// instant between the call and its return (records and watermarks are
// captured under a single lock acquisition). Writers may keep appending
// and forcing concurrently; everything they harden after that instant is
// excluded, nothing before it is ever missing, and the header's stable LSN
// always equals the LSN of the last archived record.
func (l *Log) Archive(w io.Writer) (int, error) {
	recs, stable, master := l.SnapshotStable(NilLSN + 1)

	bw := bufio.NewWriter(w)
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:4], archiveMagic)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(stable))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(master))
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	for _, r := range recs {
		if _, err := bw.Write(r.Encode()); err != nil {
			return 0, err
		}
	}
	return len(recs), bw.Flush()
}

// ReadArchive reconstructs a Log from an archive stream. The returned log
// is fully stable (everything in an archive was forced by definition) and
// ready for recovery replay.
//
// Damage is classified, not silently swallowed:
//
//   - A torn tail — the stream simply stops mid-record — is recoverable,
//     exactly like a torn WAL tail: the intact prefix is returned as a
//     usable log TOGETHER with ErrArchiveTorn, so the caller can decide
//     whether the loss matters (media recovery shrugs; a shipper
//     re-requests the missing suffix).
//   - Mid-stream corruption — a record that fails its CRC or carries a
//     garbage length while more bytes follow — is unrecoverable: nothing
//     at or beyond the damage can be trusted to re-frame, so ReadArchive
//     rejects the stream with ErrArchiveCorrupt.
func ReadArchive(r io.Reader) (*Log, error) {
	br := bufio.NewReader(r)
	var hdr [20]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("wal: archive header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != archiveMagic {
		return nil, fmt.Errorf("wal: not a log archive")
	}
	stable := LSN(binary.LittleEndian.Uint64(hdr[4:12]))
	master := LSN(binary.LittleEndian.Uint64(hdr[12:20]))

	l := NewLog(nil)
	// moreData reports whether any byte follows the current read position —
	// the discriminator between a torn tail and mid-stream corruption.
	moreData := func() bool {
		_, err := br.Peek(1)
		return err == nil
	}
	var readErr error
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			if err != io.EOF {
				readErr = ErrArchiveTorn // stream died inside a length prefix
			}
			break
		}
		total := binary.LittleEndian.Uint32(lenBuf[:])
		if total < recHeaderSize {
			if moreData() {
				return nil, fmt.Errorf("%w: record length %d", ErrArchiveCorrupt, total)
			}
			readErr = ErrArchiveTorn
			break
		}
		buf := make([]byte, total)
		copy(buf, lenBuf[:])
		if _, err := io.ReadFull(br, buf[4:]); err != nil {
			readErr = ErrArchiveTorn // record body truncated: the stream ended here
			break
		}
		rec, _, err := DecodeRecord(buf)
		if err != nil {
			if moreData() {
				return nil, fmt.Errorf("%w: %v", ErrArchiveCorrupt, err)
			}
			readErr = ErrArchiveTorn // bad CRC on the final record: torn tail
			break
		}
		l.Append(rec)
	}
	if max := l.MaxLSN(); stable > max {
		stable = max // archive tail was lost; clamp the stable mark
	}
	l.Force(stable)
	if master != NilLSN && master <= stable {
		l.SetMaster(master)
	}
	return l, readErr
}

// Segment is one resumable slice of the stable log stream: the unit a
// shipper sends and a standby applies. Segments carry enough framing to
// survive a lossy channel — a sequence number and the previous segment's
// last LSN for gap/reorder detection, an epoch for zombie-primary fencing,
// the shipper's stable and master watermarks, an optional catalog-meta
// snapshot, and a whole-frame CRC.
type Segment struct {
	// Epoch is the cluster generation the sender believes it leads. A
	// receiver that has promoted past this epoch rejects the segment: the
	// sender is a zombie of a dead primacy.
	Epoch uint64
	// Seq numbers segments within an epoch, starting at 1. Duplicates and
	// reorderings show up as non-monotonic sequence numbers.
	Seq uint64
	// PrevLSN is the LSN of the last record of the previous segment
	// (NilLSN for the first). A receiver whose applied tail does not match
	// has a gap and must NAK.
	PrevLSN LSN
	// Stable and Master are the sender's watermarks at ship time.
	Stable LSN
	Master LSN
	// Meta, when non-nil, is the primary's current catalog blob; the
	// standby persists it so a promotion sees every table the shipped log
	// references (DDL can happen mid-stream).
	Meta []byte
	// Records is the shipped log slice, contiguous and in LSN order.
	Records []*Record
}

// FirstLSN returns the LSN of the segment's first record (NilLSN if empty).
func (s *Segment) FirstLSN() LSN {
	if len(s.Records) == 0 {
		return NilLSN
	}
	return s.Records[0].LSN
}

// LastLSN returns the LSN of the segment's last record (PrevLSN if empty:
// an empty segment — a heartbeat — extends nothing).
func (s *Segment) LastLSN() LSN {
	if len(s.Records) == 0 {
		return s.PrevLSN
	}
	return s.Records[len(s.Records)-1].LSN
}

// segment frame layout, all little-endian:
//
//	magic u32 | epoch u64 | seq u64 | prev u64 | stable u64 | master u64 |
//	firstLSN u64 | metaLen u32 | count u32 | bodyLen u32 | crc u32 |
//	meta bytes | body (count × encoded records)
//
// The CRC is CRC32-Castagnoli over the entire frame with the crc field
// zeroed — header fields included, so a flipped sequence number or epoch is
// as detectable as a flipped payload byte.
const segHeaderSize = 4 + 8 + 8 + 8 + 8 + 8 + 8 + 4 + 4 + 4 + 4

// Encode serializes the segment into one self-checking frame.
func (s *Segment) Encode() []byte {
	bodyLen := 0
	for _, r := range s.Records {
		bodyLen += r.EncodedSize()
	}
	b := make([]byte, segHeaderSize+len(s.Meta)+bodyLen)
	binary.LittleEndian.PutUint32(b[0:4], segmentMagic)
	binary.LittleEndian.PutUint64(b[4:12], s.Epoch)
	binary.LittleEndian.PutUint64(b[12:20], s.Seq)
	binary.LittleEndian.PutUint64(b[20:28], uint64(s.PrevLSN))
	binary.LittleEndian.PutUint64(b[28:36], uint64(s.Stable))
	binary.LittleEndian.PutUint64(b[36:44], uint64(s.Master))
	binary.LittleEndian.PutUint64(b[44:52], uint64(s.FirstLSN()))
	binary.LittleEndian.PutUint32(b[52:56], uint32(len(s.Meta)))
	binary.LittleEndian.PutUint32(b[56:60], uint32(len(s.Records)))
	binary.LittleEndian.PutUint32(b[60:64], uint32(bodyLen))
	// crc at [64:68] stays zero while hashing.
	off := segHeaderSize
	off += copy(b[off:], s.Meta)
	for _, r := range s.Records {
		off += copy(b[off:], r.Encode())
	}
	binary.LittleEndian.PutUint32(b[64:68], crc32.Checksum(b, recCRCTable))
	return b
}

// DecodeSegment parses and verifies one segment frame. Any damage — bad
// magic, bad frame CRC, bad lengths, a record that fails its own codec, or
// a record stream that is not contiguous in LSN — returns ErrSegmentCorrupt
// (wrapped with detail): the channel mangled the frame and the receiver
// should discard it and NAK.
func DecodeSegment(b []byte) (*Segment, error) {
	if len(b) < segHeaderSize {
		return nil, fmt.Errorf("%w: frame %d bytes", ErrSegmentCorrupt, len(b))
	}
	if binary.LittleEndian.Uint32(b[0:4]) != segmentMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSegmentCorrupt)
	}
	metaLen := int(binary.LittleEndian.Uint32(b[52:56]))
	count := int(binary.LittleEndian.Uint32(b[56:60]))
	bodyLen := int(binary.LittleEndian.Uint32(b[60:64]))
	if metaLen < 0 || bodyLen < 0 || segHeaderSize+metaLen+bodyLen != len(b) {
		return nil, fmt.Errorf("%w: frame length mismatch", ErrSegmentCorrupt)
	}
	stored := binary.LittleEndian.Uint32(b[64:68])
	check := make([]byte, len(b))
	copy(check, b)
	binary.LittleEndian.PutUint32(check[64:68], 0)
	if stored != crc32.Checksum(check, recCRCTable) {
		return nil, fmt.Errorf("%w: frame CRC mismatch", ErrSegmentCorrupt)
	}
	s := &Segment{
		Epoch:   binary.LittleEndian.Uint64(b[4:12]),
		Seq:     binary.LittleEndian.Uint64(b[12:20]),
		PrevLSN: LSN(binary.LittleEndian.Uint64(b[20:28])),
		Stable:  LSN(binary.LittleEndian.Uint64(b[28:36])),
		Master:  LSN(binary.LittleEndian.Uint64(b[36:44])),
	}
	firstLSN := LSN(binary.LittleEndian.Uint64(b[44:52]))
	if metaLen > 0 {
		s.Meta = append([]byte(nil), b[segHeaderSize:segHeaderSize+metaLen]...)
	}
	body := b[segHeaderSize+metaLen:]
	lsn := firstLSN
	for i := 0; i < count; i++ {
		rec, n, err := DecodeRecord(body)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrSegmentCorrupt, i, err)
		}
		rec.LSN = lsn
		lsn += LSN(n)
		s.Records = append(s.Records, rec)
		body = body[n:]
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("%w: %d trailing body bytes", ErrSegmentCorrupt, len(body))
	}
	return s, nil
}

// ShipFrom builds the segment covering every stable record with
// LSN >= from, stamped with the given epoch, sequence number, and
// previous-segment tail. The record slice is the log's own backing array
// (zero copy; records are immutable), and the watermarks are captured in
// the same instant as the records — the Archive snapshot contract applied
// to a suffix. An empty result (nothing new hardened) is a valid heartbeat
// segment.
func (l *Log) ShipFrom(from LSN, epoch, seq uint64, prev LSN) *Segment {
	recs, stable, master := l.SnapshotStable(from)
	return &Segment{
		Epoch:   epoch,
		Seq:     seq,
		PrevLSN: prev,
		Stable:  stable,
		Master:  master,
		Records: recs,
	}
}
