package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Log archiving. Media recovery needs the log back to the oldest image
// copy; real systems therefore archive the stable log to offline storage.
// Archive serializes the stable prefix with the on-log record codec, and
// ReadArchive reconstructs a Log from an archive stream — together they
// also pin the wire format (every record round-trips through Encode/
// DecodeRecord, the same codec a file-backed log would use).

const archiveMagic = uint32(0x41524C47) // "ARLG"

// Archive writes the stable log prefix to w: a small header (magic,
// stable LSN, master LSN) followed by the encoded records. It returns the
// number of records written.
func (l *Log) Archive(w io.Writer) (int, error) {
	l.mu.Lock()
	stable := l.stable
	master := l.master
	recs := make([]*Record, 0, len(l.recs))
	for _, r := range l.recs {
		if r.LSN <= stable {
			recs = append(recs, r)
		}
	}
	l.mu.Unlock()

	bw := bufio.NewWriter(w)
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:4], archiveMagic)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(stable))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(master))
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	for _, r := range recs {
		if _, err := bw.Write(r.Encode()); err != nil {
			return 0, err
		}
	}
	return len(recs), bw.Flush()
}

// ReadArchive reconstructs a Log from an archive stream. The returned log
// is fully stable (everything in an archive was forced by definition) and
// ready for recovery replay.
//
// A torn or corrupted archive tail is tolerated the same way a torn log
// tail is: the stream is read record by record and truncated at the first
// record that is incomplete or fails its CRC — the intact prefix is still
// usable for media recovery or standby construction.
func ReadArchive(r io.Reader) (*Log, error) {
	br := bufio.NewReader(r)
	var hdr [20]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("wal: archive header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != archiveMagic {
		return nil, fmt.Errorf("wal: not a log archive")
	}
	stable := LSN(binary.LittleEndian.Uint64(hdr[4:12]))
	master := LSN(binary.LittleEndian.Uint64(hdr[12:20]))

	l := NewLog(nil)
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			break // EOF or torn mid-length: end of usable archive
		}
		total := binary.LittleEndian.Uint32(lenBuf[:])
		if total < recHeaderSize {
			break // garbage length: treat as torn tail
		}
		buf := make([]byte, total)
		copy(buf, lenBuf[:])
		if _, err := io.ReadFull(br, buf[4:]); err != nil {
			break // record body truncated
		}
		rec, _, err := DecodeRecord(buf)
		if err != nil {
			break // bad CRC: stop at the intact prefix
		}
		l.Append(rec)
	}
	if max := l.MaxLSN(); stable > max {
		stable = max // archive tail was lost; clamp the stable mark
	}
	l.Force(stable)
	if master != NilLSN && master <= stable {
		l.SetMaster(master)
	}
	return l, nil
}
