package wal

import (
	"errors"
	"testing"

	"ariesim/internal/trace"
)

func TestRecordCRCDetectsCorruption(t *testing.T) {
	r := upd(3, NilLSN, 9, "payload-under-test")
	b := r.Encode()
	if _, _, err := DecodeRecord(b); err != nil {
		t.Fatalf("clean record does not decode: %v", err)
	}
	// Flip one byte anywhere past the length prefix; the CRC must catch it.
	for _, off := range []int{4, 8, 12, len(b) - 1} {
		c := append([]byte(nil), b...)
		c[off] ^= 0x10
		if _, _, err := DecodeRecord(c); !errors.Is(err, ErrBadRecordCRC) {
			t.Fatalf("corruption at byte %d: got %v, want ErrBadRecordCRC", off, err)
		}
	}
}

// TestCrashWithTornTailTruncates simulates a power cut mid log write: the
// forced prefix plus some unforced records survive, but the last survivor
// is torn. The crash-time CRC sweep must truncate at the torn record.
func TestCrashWithTornTailTruncates(t *testing.T) {
	st := &trace.Stats{}
	l := NewLog(st)
	var lsns []LSN
	var prev LSN
	for i := 0; i < 6; i++ {
		prev = l.Append(upd(1, prev, 5, "rec"))
		lsns = append(lsns, prev)
	}
	l.Force(lsns[2]) // records 0..2 explicitly forced

	l.CrashWithTornTail(2) // records 3 and 4 hit the platter; 4 is torn

	if got := l.NumRecords(); got != 4 {
		t.Fatalf("%d records survive, want 4 (forced 3 + 1 intact unforced)", got)
	}
	if l.StableLSN() != lsns[3] {
		t.Fatalf("stable = %d, want %d", l.StableLSN(), lsns[3])
	}
	if _, err := l.Read(lsns[4]); err == nil {
		t.Fatal("torn record still readable")
	}
	if l.TornTailTruncations() != 1 || st.TornTailTruncations.Load() != 1 {
		t.Fatalf("truncations = %d / stats %d, want 1 / 1",
			l.TornTailTruncations(), st.TornTailTruncations.Load())
	}

	// The log must accept new appends after the truncation, with LSNs
	// continuing from the surviving prefix.
	next := l.Append(upd(2, NilLSN, 6, "after"))
	if next != lsns[4] {
		t.Fatalf("post-truncation append at LSN %d, want %d (reusing the torn slot)", next, lsns[4])
	}
}

// TestCorruptStoredMidLogTruncatesSuffix plants corruption in the middle
// of the stable log: the crash sweep must truncate at the first bad-CRC
// record, dropping even intact records after it — recovery can only trust
// a prefix, never records beyond a gap.
func TestCorruptStoredMidLogTruncatesSuffix(t *testing.T) {
	l := NewLog(nil)
	var lsns []LSN
	var prev LSN
	for i := 0; i < 5; i++ {
		prev = l.Append(upd(1, prev, 5, "rec"))
		lsns = append(lsns, prev)
	}
	l.ForceAll()
	if err := l.CorruptStored(lsns[2], 10, 0x80); err != nil {
		t.Fatal(err)
	}
	if err := l.CorruptStored(lsns[2]+999, 0, 1); err == nil {
		t.Fatal("CorruptStored accepted a nonexistent LSN")
	}

	// Damage is latent until a crash re-reads the stable log.
	if l.NumRecords() != 5 {
		t.Fatal("damage took effect before the crash")
	}
	l.Crash()
	if got := l.NumRecords(); got != 2 {
		t.Fatalf("%d records survive, want 2 (truncated at first bad CRC)", got)
	}
	if l.StableLSN() != lsns[1] {
		t.Fatalf("stable = %d, want %d", l.StableLSN(), lsns[1])
	}
}

// TestTornTailCannotOutliveMaster verifies that a master record pointing
// past a torn-away checkpoint is discarded with the tail.
func TestTornTailCannotOutliveMaster(t *testing.T) {
	l := NewLog(nil)
	a := l.Append(upd(1, NilLSN, 5, "a"))
	l.Force(a)
	begin := l.Append(&Record{Type: RecBeginCkpt})
	end := l.Append(&Record{Type: RecEndCkpt, PrevLSN: begin})
	l.Force(end)
	l.SetMaster(begin)
	if err := l.CorruptStored(begin, 9, 0xFF); err != nil {
		t.Fatal(err)
	}
	l.Crash()
	if l.NumRecords() != 1 {
		t.Fatalf("%d records survive, want 1", l.NumRecords())
	}
	if l.Master() != NilLSN {
		t.Fatalf("master = %d still points into the truncated tail", l.Master())
	}
}
