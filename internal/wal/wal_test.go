package wal

import (
	"testing"
	"testing/quick"

	"ariesim/internal/storage"
	"ariesim/internal/trace"
)

func upd(tx TxID, prev LSN, page storage.PageID, payload string) *Record {
	return &Record{
		Type: RecUpdate, TxID: tx, PrevLSN: prev,
		Page: page, Op: OpIdxInsertKey, Payload: []byte(payload),
	}
}

func TestAppendAssignsMonotonicLSNs(t *testing.T) {
	l := NewLog(nil)
	var prev LSN
	for i := 0; i < 100; i++ {
		lsn := l.Append(upd(1, prev, 5, "x"))
		if lsn <= prev {
			t.Fatalf("LSN %d not greater than %d", lsn, prev)
		}
		prev = lsn
	}
	if l.NumRecords() != 100 {
		t.Fatalf("NumRecords = %d", l.NumRecords())
	}
	// LSN spacing equals encoded size.
	recs := l.Records(1)
	for i := 1; i < len(recs); i++ {
		if recs[i].LSN != recs[i-1].LSN+LSN(recs[i-1].EncodedSize()) {
			t.Fatalf("LSN %d does not follow %d by encoded size %d",
				recs[i].LSN, recs[i-1].LSN, recs[i-1].EncodedSize())
		}
	}
}

func TestReadAndScan(t *testing.T) {
	l := NewLog(nil)
	l1 := l.Append(upd(1, NilLSN, 5, "a"))
	l2 := l.Append(upd(1, l1, 6, "b"))
	l3 := l.Append(upd(2, NilLSN, 7, "c"))
	r, err := l.Read(l2)
	if err != nil || string(r.Payload) != "b" {
		t.Fatalf("Read(l2) = %v, %v", r, err)
	}
	if _, err := l.Read(l2 + 1); err == nil {
		t.Fatal("Read of non-record LSN succeeded")
	}
	var got []LSN
	l.Scan(l2, func(r *Record) bool { got = append(got, r.LSN); return true })
	if len(got) != 2 || got[0] != l2 || got[1] != l3 {
		t.Fatalf("Scan from l2 = %v", got)
	}
	// Early termination.
	n := 0
	l.Scan(NilLSN+1, func(r *Record) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Scan did not stop: %d", n)
	}
}

func TestCrashDropsUnforcedTail(t *testing.T) {
	l := NewLog(nil)
	l1 := l.Append(upd(1, NilLSN, 5, "keep"))
	l.Force(l1)
	l2 := l.Append(upd(1, l1, 5, "lose"))
	_ = l2
	l.Crash()
	if l.NumRecords() != 1 {
		t.Fatalf("records after crash = %d, want 1", l.NumRecords())
	}
	// New appends continue at the same address space position.
	l3 := l.Append(upd(2, NilLSN, 5, "post-crash"))
	if l3 != l2 {
		t.Fatalf("post-crash LSN %d, want reuse of %d", l3, l2)
	}
}

func TestCrashKeepsForcedEverything(t *testing.T) {
	l := NewLog(nil)
	for i := 0; i < 10; i++ {
		l.Append(upd(1, NilLSN, 5, "r"))
	}
	l.ForceAll()
	l.Crash()
	if l.NumRecords() != 10 {
		t.Fatalf("records after crash = %d, want 10", l.NumRecords())
	}
}

func TestMasterRequiresForce(t *testing.T) {
	l := NewLog(nil)
	lsn := l.Append(&Record{Type: RecEndCkpt, Payload: (&CheckpointData{}).Encode()})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetMaster of unforced LSN did not panic")
			}
		}()
		l.SetMaster(lsn)
	}()
	l.Force(lsn)
	l.SetMaster(lsn)
	if l.Master() != lsn {
		t.Fatalf("Master = %d, want %d", l.Master(), lsn)
	}
	l.Crash()
	if l.Master() != lsn {
		t.Fatal("master record lost despite force")
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	r := &Record{
		Type: RecCLR, TxID: 77, PrevLSN: 1234, UndoNxtLSN: 999,
		Page: 42, Op: OpIdxDeleteKey, RedoOnly: true, Payload: []byte("payload"),
	}
	got, n, err := DecodeRecord(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if n != r.EncodedSize() {
		t.Fatalf("consumed %d, want %d", n, r.EncodedSize())
	}
	if got.Type != r.Type || got.TxID != r.TxID || got.PrevLSN != r.PrevLSN ||
		got.UndoNxtLSN != r.UndoNxtLSN || got.Page != r.Page || got.Op != r.Op ||
		!got.RedoOnly || string(got.Payload) != "payload" {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, r)
	}
}

func TestRecordCodecErrors(t *testing.T) {
	if _, _, err := DecodeRecord([]byte{1, 2}); err == nil {
		t.Error("short buffer decoded")
	}
	r := upd(1, NilLSN, 1, "abc")
	enc := r.Encode()
	enc[0] = 255 // absurd length
	if _, _, err := DecodeRecord(enc); err == nil {
		t.Error("overlong record decoded")
	}
}

func TestQuickRecordCodec(t *testing.T) {
	f := func(typ uint8, tx uint32, prev, undo uint64, page uint32, op uint16, redoOnly bool, payload []byte) bool {
		r := &Record{
			Type: RecType(typ%9 + 1), TxID: TxID(tx), PrevLSN: LSN(prev),
			UndoNxtLSN: LSN(undo), Page: storage.PageID(page),
			Op: OpCode(op % 16), RedoOnly: redoOnly, Payload: payload,
		}
		got, n, err := DecodeRecord(r.Encode())
		if err != nil || n != r.EncodedSize() {
			return false
		}
		got.LSN = r.LSN
		return got.String() == r.String() && string(got.Payload) == string(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordPredicates(t *testing.T) {
	u := upd(1, NilLSN, 5, "x")
	if !u.Redoable() || !u.Undoable() || u.IsCLR() {
		t.Error("update predicates wrong")
	}
	redoOnly := &Record{Type: RecUpdate, Page: 5, Op: OpIdxSetBits, RedoOnly: true}
	if redoOnly.Undoable() {
		t.Error("redo-only update claims undoable")
	}
	clr := &Record{Type: RecCLR, Page: 5, Op: OpIdxDeleteKey}
	if !clr.Redoable() || clr.Undoable() || !clr.IsCLR() {
		t.Error("CLR predicates wrong")
	}
	dummy := &Record{Type: RecDummyCLR, UndoNxtLSN: 3}
	if dummy.Redoable() || dummy.Undoable() || !dummy.IsCLR() {
		t.Error("dummy CLR predicates wrong")
	}
	commit := &Record{Type: RecCommit}
	if commit.Redoable() || commit.Undoable() {
		t.Error("commit predicates wrong")
	}
}

func TestCheckpointDataRoundTrip(t *testing.T) {
	c := &CheckpointData{
		Txs: []TxTableEntry{
			{TxID: 1, State: TxActive, LastLSN: 100, UndoNxtLSN: 90},
			{TxID: 2, State: TxPrepared, LastLSN: 200, UndoNxtLSN: 200},
		},
		DPT: []DPTEntry{{Page: 5, RecLSN: 50}, {Page: 9, RecLSN: 77}},
	}
	got, err := DecodeCheckpointData(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Txs) != 2 || len(got.DPT) != 2 {
		t.Fatalf("lengths: %d txs %d dpt", len(got.Txs), len(got.DPT))
	}
	if got.Txs[1] != c.Txs[1] || got.DPT[0] != c.DPT[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := DecodeCheckpointData([]byte{1}); err == nil {
		t.Error("truncated checkpoint decoded")
	}
	empty, err := DecodeCheckpointData((&CheckpointData{}).Encode())
	if err != nil || len(empty.Txs) != 0 || len(empty.DPT) != 0 {
		t.Fatalf("empty checkpoint round trip: %+v, %v", empty, err)
	}
}

func TestLockSpecRoundTrip(t *testing.T) {
	locks := []LockSpec{{Space: 1, Mode: 2, A: 3, B: 4}, {Space: 5, Mode: 1, A: ^uint64(0), B: 0}}
	got, err := DecodeLocks(EncodeLocks(locks))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != locks[0] || got[1] != locks[1] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := DecodeLocks([]byte{9}); err == nil {
		t.Error("truncated lock list decoded")
	}
	if _, err := DecodeLocks(EncodeLocks(locks)[:10]); err == nil {
		t.Error("short lock list decoded")
	}
}

func TestStatsAccounting(t *testing.T) {
	st := &trace.Stats{}
	l := NewLog(st)
	lsn := l.Append(upd(1, NilLSN, 5, "x"))
	l.Force(lsn)
	l.Force(lsn) // second force is a no-op
	if st.LogRecords.Load() != 1 || st.LogForces.Load() != 1 {
		t.Fatalf("stats: records=%d forces=%d", st.LogRecords.Load(), st.LogForces.Load())
	}
	if st.LogBytes.Load() == 0 || st.LogBytes.Load() != l.Bytes() {
		t.Fatalf("byte accounting mismatch: %d vs %d", st.LogBytes.Load(), l.Bytes())
	}
}

func TestCodecRoundTripSweep(t *testing.T) {
	l := NewLog(nil)
	prev := NilLSN
	for i := 0; i < 50; i++ {
		prev = l.Append(upd(TxID(i%3+1), prev, storage.PageID(i), "payload"))
	}
	l.Append(&Record{Type: RecCommit, TxID: 1, PrevLSN: prev})
	l.ForceAll()
	if err := l.CodecRoundTrip(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAppendForce(t *testing.T) {
	l := NewLog(&trace.Stats{})
	done := make(chan LSN, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			var last LSN
			for i := 0; i < 500; i++ {
				last = l.Append(upd(TxID(g+1), last, storage.PageID(i%7), "concurrent"))
				if i%50 == 0 {
					l.Force(last)
				}
			}
			done <- last
		}(g)
	}
	seen := map[LSN]bool{}
	for g := 0; g < 8; g++ {
		lsn := <-done
		if seen[lsn] {
			t.Fatal("duplicate LSN across goroutines")
		}
		seen[lsn] = true
	}
	if l.NumRecords() != 4000 {
		t.Fatalf("NumRecords = %d, want 4000", l.NumRecords())
	}
	// All LSNs unique and ordered.
	recs := l.Records(1)
	for i := 1; i < len(recs); i++ {
		if recs[i].LSN <= recs[i-1].LSN {
			t.Fatal("LSNs not strictly increasing")
		}
	}
}
