package wal

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ariesim/internal/trace"
)

// Group-commit and force-atomicity tests: the costed log device (a nonzero
// force delay) opens the windows these tests aim at — an in-flight flush
// that concurrent forces must coalesce into, and a sleep during which
// appends and crashes can race the force.

func appendN(l *Log, n int) []LSN {
	lsns := make([]LSN, n)
	for i := range lsns {
		lsns[i] = l.Append(&Record{Type: RecUpdate, TxID: TxID(i + 1), Op: OpDataInsert, Payload: []byte("gc")})
	}
	return lsns
}

// TestGroupCommitCoalesces: N concurrent forces against a slow device
// complete with far fewer physical flushes than callers, and the trace
// counters prove the batching.
func TestGroupCommitCoalesces(t *testing.T) {
	stats := &trace.Stats{}
	l := NewLog(stats)
	l.SetForceDelay(2 * time.Millisecond)
	lsns := appendN(l, 16)

	start := make(chan struct{})
	var wg sync.WaitGroup
	for _, lsn := range lsns {
		wg.Add(1)
		go func(lsn LSN) {
			defer wg.Done()
			<-start
			l.Force(lsn)
		}(lsn)
	}
	close(start)
	wg.Wait()

	if got := l.StableLSN(); got < lsns[len(lsns)-1] {
		t.Fatalf("stable %d after forcing all, want >= %d", got, lsns[len(lsns)-1])
	}
	forces := stats.LogForces.Load()
	grouped := stats.GroupCommits.Load()
	if forces >= 16 {
		t.Errorf("LogForces = %d, want < 16 (coalescing)", forces)
	}
	if forces+grouped < 16-uint64(forces) {
		t.Errorf("forces %d + grouped %d cannot account for 16 callers", forces, grouped)
	}
	if grouped == 0 {
		t.Error("GroupCommits = 0, want > 0: no caller rode a shared flush")
	}
	if stats.ForceWaiters.Load() == 0 {
		t.Error("ForceWaiters = 0, want > 0: nobody parked behind the in-flight flush")
	}
}

// TestNoGroupCommitFlushesSerially: with coalescing disabled each caller
// whose LSN is not yet stable performs its own flush; forcing ascending
// LSNs one by one pays one physical flush each.
func TestNoGroupCommitFlushesSerially(t *testing.T) {
	stats := &trace.Stats{}
	l := NewLog(stats)
	l.SetGroupCommit(false)
	l.SetForceDelay(100 * time.Microsecond)
	lsns := appendN(l, 5)
	for _, lsn := range lsns {
		l.Force(lsn)
	}
	if got := stats.LogForces.Load(); got != 5 {
		t.Fatalf("LogForces = %d, want 5 (one per serial force)", got)
	}
	if got := stats.GroupCommits.Load(); got != 0 {
		t.Fatalf("GroupCommits = %d, want 0 with group commit disabled", got)
	}
}

// TestGroupCommitSatisfiesParkedCaller: a caller arriving while a flush
// covering its LSN is in flight returns without its own flush.
func TestGroupCommitSatisfiesParkedCaller(t *testing.T) {
	stats := &trace.Stats{}
	l := NewLog(stats)
	l.SetForceDelay(5 * time.Millisecond)
	lsns := appendN(l, 2)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // leader forces the max LSN
		defer wg.Done()
		l.Force(lsns[1])
	}()
	time.Sleep(1 * time.Millisecond) // let the leader's flush take flight
	l.Force(lsns[0])                 // smaller LSN: covered by the in-flight want
	wg.Wait()

	if got := l.StableLSN(); got != lsns[1] {
		t.Fatalf("stable = %d, want %d", got, lsns[1])
	}
	if forces := stats.LogForces.Load(); forces > 2 {
		t.Errorf("LogForces = %d, want <= 2", forces)
	}
}

// TestForceAllCoversPriorAppends is the regression test for the ForceAll
// race: the last-LSN snapshot and the force now happen under one lock
// acquisition, so every record appended before the call is hardened —
// even while an appender keeps the log moving.
func TestForceAllCoversPriorAppends(t *testing.T) {
	for _, delay := range []time.Duration{0, 200 * time.Microsecond} {
		l := NewLog(nil)
		l.SetForceDelay(delay)
		var last atomic.Uint64 // LSN of the most recently appended record
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lsn := l.Append(&Record{Type: RecUpdate, TxID: 1, Op: OpDataInsert, Payload: []byte("x")})
				last.Store(uint64(lsn))
			}
		}()
		rounds := 50
		if delay > 0 {
			rounds = 10
		}
		for i := 0; i < rounds; i++ {
			appended := LSN(last.Load()) // happened-before the ForceAll below
			l.ForceAll()
			if stable := l.StableLSN(); stable < appended {
				t.Fatalf("delay %v: ForceAll left LSN %d volatile (stable %d)", delay, appended, stable)
			}
		}
		close(stop)
		wg.Wait()
	}
}

// TestStatsNeverLagLogState is the regression test for the torn-counter
// race: LogRecords/LogBytes/LogForces are folded under the log mutex, so
// an observer that reads the log state first can never see the counters
// behind it.
func TestStatsNeverLagLogState(t *testing.T) {
	stats := &trace.Stats{}
	l := NewLog(stats)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				lsn := l.Append(&Record{Type: RecUpdate, TxID: TxID(w + 1), Op: OpDataInsert, Payload: []byte("y")})
				l.Force(lsn)
			}
		}(w)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		// Read log state BEFORE counters: anything visible in the state
		// must already be accounted for.
		n := uint64(l.NumRecords())
		if c := stats.LogRecords.Load(); c < n {
			t.Fatalf("LogRecords %d < visible records %d", c, n)
		}
		b := l.Bytes()
		if lb := stats.LogBytes.Load(); lb < b {
			t.Fatalf("LogBytes %d < visible bytes %d", lb, b)
		}
		if l.StableLSN() != NilLSN && stats.LogForces.Load() == 0 {
			t.Fatal("stable LSN advanced with LogForces still 0")
		}
	}
	close(stop)
	wg.Wait()
}

// TestCrashFencesInflightFlush: a crash landing while a flush sleeps must
// not let the flush resurrect the discarded tail when it wakes.
func TestCrashFencesInflightFlush(t *testing.T) {
	l := NewLog(nil)
	l.SetForceDelay(5 * time.Millisecond)
	lsns := appendN(l, 3)
	l.Force(lsns[0]) // stable prefix: record 0

	done := make(chan struct{})
	go func() {
		defer close(done)
		l.Force(lsns[2]) // flush takes flight for the full log
	}()
	time.Sleep(1 * time.Millisecond)
	l.Crash() // discards records 1..2 and bumps the flush generation
	<-done    // the fenced force must unwind, not hang

	if got := l.StableLSN(); got != lsns[0] {
		t.Fatalf("stable = %d after crash, want %d (in-flight flush must die with its epoch)", got, lsns[0])
	}
	if got := l.MaxLSN(); got != lsns[0] {
		t.Fatalf("max = %d after crash, want %d", got, lsns[0])
	}
}
