package wal

import (
	"bytes"
	"errors"
	"testing"

	"ariesim/internal/storage"
)

func TestArchiveRoundTrip(t *testing.T) {
	l := NewLog(nil)
	var prev LSN
	for i := 0; i < 100; i++ {
		prev = l.Append(upd(TxID(i%4+1), prev, storage.PageID(i%9), "archived payload"))
	}
	ckpt := l.Append(&Record{Type: RecEndCkpt, Payload: (&CheckpointData{}).Encode()})
	l.Force(ckpt)
	l.SetMaster(ckpt)
	// One unforced record: must NOT be archived.
	l.Append(upd(1, prev, 3, "volatile tail"))

	var buf bytes.Buffer
	n, err := l.Archive(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 101 {
		t.Fatalf("archived %d records, want 101", n)
	}
	got, err := ReadArchive(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRecords() != 101 {
		t.Fatalf("restored %d records", got.NumRecords())
	}
	if got.Master() != l.Master() {
		t.Fatalf("master %d, want %d", got.Master(), l.Master())
	}
	// Record-for-record equality, including LSNs (same address space).
	want := l.Records(1)[:101]
	have := got.Records(1)
	for i := range want {
		if want[i].String() != have[i].String() {
			t.Fatalf("record %d differs:\n  %s\n  %s", i, want[i], have[i])
		}
	}
	// The restored log accepts new appends at the right position.
	next := got.Append(upd(9, 0, 1, "post-restore"))
	if next <= want[len(want)-1].LSN {
		t.Fatalf("post-restore LSN %d not beyond archive end", next)
	}
}

func TestReadArchiveRejectsGarbage(t *testing.T) {
	if _, err := ReadArchive(bytes.NewReader([]byte("not an archive at all......"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadArchive(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
	// A truncated record body is a torn archive tail: recoverable. The
	// intact prefix comes back as a usable log, flagged ErrArchiveTorn so
	// callers who need the whole stream (a shipper) know the tail is gone.
	l := NewLog(nil)
	first := l.Append(upd(1, 0, 1, "intact"))
	last := l.Append(upd(2, 0, 1, "torn"))
	l.Force(last)
	var buf bytes.Buffer
	if _, err := l.Archive(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	got, err := ReadArchive(bytes.NewReader(trunc))
	if !errors.Is(err, ErrArchiveTorn) {
		t.Fatalf("torn archive tail: err = %v, want ErrArchiveTorn", err)
	}
	if got == nil {
		t.Fatal("torn archive tail must return the intact prefix")
	}
	if got.NumRecords() != 1 || got.MaxLSN() != first {
		t.Fatalf("want intact prefix of 1 record at LSN %d, got %d records max LSN %d",
			first, got.NumRecords(), got.MaxLSN())
	}
	if got.StableLSN() != first {
		t.Fatalf("stable mark not clamped to surviving tail: %d", got.StableLSN())
	}
}

func TestReadArchiveMidStreamCorruption(t *testing.T) {
	l := NewLog(nil)
	var prev LSN
	for i := 0; i < 10; i++ {
		prev = l.Append(upd(1, prev, storage.PageID(i), "mid-stream corruption target"))
	}
	l.Force(prev)
	var buf bytes.Buffer
	if _, err := l.Archive(&buf); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte well inside the stream (not the last record):
	// unrecoverable — the whole stream must be rejected, no partial log.
	b := append([]byte(nil), buf.Bytes()...)
	b[len(b)/2] ^= 0x40
	got, err := ReadArchive(bytes.NewReader(b))
	if !errors.Is(err, ErrArchiveCorrupt) {
		t.Fatalf("mid-stream corruption: err = %v, want ErrArchiveCorrupt", err)
	}
	if got != nil {
		t.Fatal("corrupt archive must not yield a partial log")
	}
	// Same flip on the FINAL record is indistinguishable from a torn tail
	// (nothing follows to prove the stream continued) — recoverable.
	b2 := append([]byte(nil), buf.Bytes()...)
	b2[len(b2)-3] ^= 0x40
	got2, err := ReadArchive(bytes.NewReader(b2))
	if !errors.Is(err, ErrArchiveTorn) {
		t.Fatalf("corrupt final record: err = %v, want ErrArchiveTorn", err)
	}
	if got2 == nil || got2.NumRecords() != 9 {
		t.Fatalf("corrupt final record: want 9-record prefix, got %v", got2)
	}
}

// TestArchiveMidBurst archives while a writer keeps appending and forcing.
// The archive must capture a consistent stable prefix — replaying it must
// be byte-identical to the primary's log up to the archived stable mark,
// with the header watermark matching the last archived record. Run with
// -race to check the snapshot path against concurrent appenders.
func TestArchiveMidBurst(t *testing.T) {
	l := NewLog(nil)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var prev LSN
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			prev = l.Append(upd(TxID(i%8+1), prev, storage.PageID(i%16), "burst payload for mid-archive snapshot"))
			if i%3 == 0 {
				l.Force(prev)
			}
		}
	}()
	for i := 0; i < 25; i++ {
		var buf bytes.Buffer
		n, err := l.Archive(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadArchive(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("archive %d: %v", i, err)
		}
		if got.NumRecords() != n {
			t.Fatalf("archive %d: wrote %d records, restored %d", i, n, got.NumRecords())
		}
		if n == 0 {
			continue
		}
		// The restored stable mark must equal the last archived record's
		// LSN, and every restored record must be byte-identical to the
		// primary's copy at the same LSN.
		have := got.Records(1)
		if got.StableLSN() != have[len(have)-1].LSN {
			t.Fatalf("archive %d: stable %d != last record LSN %d",
				i, got.StableLSN(), have[len(have)-1].LSN)
		}
		want := l.Records(1)[:n]
		for j := range want {
			if !bytes.Equal(want[j].Encode(), have[j].Encode()) {
				t.Fatalf("archive %d record %d: bytes differ", i, j)
			}
		}
	}
	close(stop)
	<-done
}

func TestSegmentRoundTrip(t *testing.T) {
	l := NewLog(nil)
	var prev LSN
	for i := 0; i < 20; i++ {
		prev = l.Append(upd(TxID(i%3+1), prev, storage.PageID(i%5), "segment payload"))
	}
	l.Force(prev)
	seg := l.ShipFrom(NilLSN+1, 7, 1, NilLSN)
	seg.Meta = []byte(`{"tables":["t"]}`)
	if seg.LastLSN() != l.StableLSN() {
		t.Fatalf("segment tail %d != stable %d", seg.LastLSN(), l.StableLSN())
	}
	got, err := DecodeSegment(seg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 7 || got.Seq != 1 || got.PrevLSN != NilLSN ||
		got.Stable != seg.Stable || got.Master != seg.Master {
		t.Fatalf("header mismatch: %+v vs %+v", got, seg)
	}
	if string(got.Meta) != string(seg.Meta) {
		t.Fatalf("meta mismatch: %q", got.Meta)
	}
	if len(got.Records) != len(seg.Records) {
		t.Fatalf("%d records, want %d", len(got.Records), len(seg.Records))
	}
	for i := range seg.Records {
		if got.Records[i].LSN != seg.Records[i].LSN ||
			got.Records[i].String() != seg.Records[i].String() {
			t.Fatalf("record %d differs:\n  %s\n  %s", i, seg.Records[i], got.Records[i])
		}
	}
	// Resumable: ship only the suffix after an already-applied point.
	mid := seg.Records[10].LSN
	suffix := l.ShipFrom(mid, 7, 2, seg.Records[9].LSN)
	if suffix.FirstLSN() != mid || len(suffix.Records) != 10 {
		t.Fatalf("suffix ships from %d with %d records", suffix.FirstLSN(), len(suffix.Records))
	}
	if _, err := DecodeSegment(suffix.Encode()); err != nil {
		t.Fatal(err)
	}
	// Empty segment (heartbeat) round-trips too.
	hb := l.ShipFrom(l.StableLSN()+1, 7, 3, seg.LastLSN())
	if len(hb.Records) != 0 || hb.LastLSN() != seg.LastLSN() {
		t.Fatalf("heartbeat: %d records, tail %d", len(hb.Records), hb.LastLSN())
	}
	if _, err := DecodeSegment(hb.Encode()); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentDetectsCorruption(t *testing.T) {
	l := NewLog(nil)
	var prev LSN
	for i := 0; i < 8; i++ {
		prev = l.Append(upd(1, prev, storage.PageID(i), "corrupt-me"))
	}
	l.Force(prev)
	clean := l.ShipFrom(NilLSN+1, 3, 5, NilLSN).Encode()
	// Every single-byte flip anywhere in the frame must be caught.
	for _, pos := range []int{0, 5, 13, 21, 29, 37, 45, 53, 57, 61, 65, segHeaderSize + 1, len(clean) / 2, len(clean) - 1} {
		b := append([]byte(nil), clean...)
		b[pos] ^= 0x01
		if _, err := DecodeSegment(b); !errors.Is(err, ErrSegmentCorrupt) {
			t.Fatalf("flip at %d: err = %v, want ErrSegmentCorrupt", pos, err)
		}
	}
	// Truncation too.
	for _, cut := range []int{0, 3, segHeaderSize - 1, len(clean) - 1} {
		if _, err := DecodeSegment(clean[:cut]); !errors.Is(err, ErrSegmentCorrupt) {
			t.Fatalf("cut to %d: err = %v, want ErrSegmentCorrupt", cut, err)
		}
	}
	if _, err := DecodeSegment(clean); err != nil {
		t.Fatalf("clean frame rejected: %v", err)
	}
}

func TestArchiveEmptyLog(t *testing.T) {
	l := NewLog(nil)
	var buf bytes.Buffer
	n, err := l.Archive(&buf)
	if err != nil || n != 0 {
		t.Fatalf("Archive empty: %d, %v", n, err)
	}
	got, err := ReadArchive(&buf)
	if err != nil || got.NumRecords() != 0 {
		t.Fatalf("ReadArchive empty: %d records, %v", got.NumRecords(), err)
	}
}
