package wal

import (
	"bytes"
	"testing"

	"ariesim/internal/storage"
)

func TestArchiveRoundTrip(t *testing.T) {
	l := NewLog(nil)
	var prev LSN
	for i := 0; i < 100; i++ {
		prev = l.Append(upd(TxID(i%4+1), prev, storage.PageID(i%9), "archived payload"))
	}
	ckpt := l.Append(&Record{Type: RecEndCkpt, Payload: (&CheckpointData{}).Encode()})
	l.Force(ckpt)
	l.SetMaster(ckpt)
	// One unforced record: must NOT be archived.
	l.Append(upd(1, prev, 3, "volatile tail"))

	var buf bytes.Buffer
	n, err := l.Archive(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 101 {
		t.Fatalf("archived %d records, want 101", n)
	}
	got, err := ReadArchive(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRecords() != 101 {
		t.Fatalf("restored %d records", got.NumRecords())
	}
	if got.Master() != l.Master() {
		t.Fatalf("master %d, want %d", got.Master(), l.Master())
	}
	// Record-for-record equality, including LSNs (same address space).
	want := l.Records(1)[:101]
	have := got.Records(1)
	for i := range want {
		if want[i].String() != have[i].String() {
			t.Fatalf("record %d differs:\n  %s\n  %s", i, want[i], have[i])
		}
	}
	// The restored log accepts new appends at the right position.
	next := got.Append(upd(9, 0, 1, "post-restore"))
	if next <= want[len(want)-1].LSN {
		t.Fatalf("post-restore LSN %d not beyond archive end", next)
	}
}

func TestReadArchiveRejectsGarbage(t *testing.T) {
	if _, err := ReadArchive(bytes.NewReader([]byte("not an archive at all......"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadArchive(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
	// A truncated record body is a torn archive tail: the intact prefix
	// survives and the torn record is dropped.
	l := NewLog(nil)
	first := l.Append(upd(1, 0, 1, "intact"))
	last := l.Append(upd(2, 0, 1, "torn"))
	l.Force(last)
	var buf bytes.Buffer
	if _, err := l.Archive(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	got, err := ReadArchive(bytes.NewReader(trunc))
	if err != nil {
		t.Fatalf("torn archive tail rejected entirely: %v", err)
	}
	if got.NumRecords() != 1 || got.MaxLSN() != first {
		t.Fatalf("want intact prefix of 1 record at LSN %d, got %d records max LSN %d",
			first, got.NumRecords(), got.MaxLSN())
	}
	if got.StableLSN() != first {
		t.Fatalf("stable mark not clamped to surviving tail: %d", got.StableLSN())
	}
}

func TestArchiveEmptyLog(t *testing.T) {
	l := NewLog(nil)
	var buf bytes.Buffer
	n, err := l.Archive(&buf)
	if err != nil || n != 0 {
		t.Fatalf("Archive empty: %d, %v", n, err)
	}
	got, err := ReadArchive(&buf)
	if err != nil || got.NumRecords() != 0 {
		t.Fatalf("ReadArchive empty: %d records, %v", got.NumRecords(), err)
	}
}
