package wal

import (
	"sync"
	"testing"
)

// The stable-notify hook is the shipper's wakeup: it must fire exactly when
// the stable watermark advances, with the new watermark, outside the log
// latch (re-entering the log from the callback must not deadlock).
func TestStableNotify(t *testing.T) {
	l := NewLog(nil)
	var mu sync.Mutex
	var seen []LSN
	l.SetStableNotify(func(lsn LSN) {
		_ = l.StableLSN() // re-entering the log from the callback is legal
		mu.Lock()
		seen = append(seen, lsn)
		mu.Unlock()
	})

	a := l.Append(upd(1, 0, 1, "a"))
	b := l.Append(upd(1, a, 1, "b"))
	l.Force(a)
	l.Force(a) // no advance: no callback
	l.Force(b)
	c, _ := l.AppendForce(upd(2, 0, 2, "c"))
	l.ForceAll() // already stable: no callback
	scratch := l.Append(upd(2, c, 2, "volatile"))
	l.ForceAll()

	mu.Lock()
	defer mu.Unlock()
	want := []LSN{a, b, c, scratch}
	if len(seen) != len(want) {
		t.Fatalf("notified %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("notified %v, want %v", seen, want)
		}
	}
}
