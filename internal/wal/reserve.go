package wal

import (
	"sort"
	"sync/atomic"
)

// Lock-free LSN reservation pipeline.
//
// Appenders claim their byte range and slot index with ONE atomic fetch-add
// on a packed reservation word, publish the record into a slot directory,
// and fold their completion into the contiguity watermark ("filled-up-to").
// Force, group commit, snapshots, and the stable-notify hook are all defined
// against the watermark — never against a mutex-guarded record list — so the
// hot append path takes no lock at all in the group-commit configuration.
//
// Layout of the reservation word (Log.resv):
//
//	bits 63..40  records claimed so far (= the next record's slot index)
//	bits 39..0   bytes claimed so far   (= the next record's LSN - 1)
//
// Packing both fields into one word is what makes the claim atomic: a single
// Add hands the caller a unique slot index AND the matching byte range, so
// slot order and LSN order can never disagree. The fields bound the log at
// ~16.7M records and 1 TiB of bytes; the claim panics well before either
// field can carry into the other.
//
// The watermark (Log.filled) is the count of contiguously published slots.
// Every record with slot index < filled is visible; a record may be published
// at index >= filled while an earlier reservation is still filling — that is
// the transient hole no consumer is allowed to see. The crash rule follows:
// a crash truncates to the stable prefix, and stable can only ever cover
// watermarked records (Force waits for the watermark before registering),
// so the surviving log is hole-free by construction.
const (
	segShift = 9
	segSize  = 1 << segShift
	segMask  = segSize - 1

	resvIdxShift = 40
	resvOffMask  = (uint64(1) << resvIdxShift) - 1

	maxResvRecords = (uint64(1) << (64 - resvIdxShift)) - 1
	maxResvBytes   = resvOffMask
)

// logSeg is one fixed-size block of the slot directory. Segments are only
// ever appended to the directory, and a slot is written exactly once per
// epoch (crash truncation clears the tail under exclusive crashMu), so
// readers can chase dir -> segment -> slot with three atomic loads.
type logSeg struct {
	slots [segSize]atomic.Pointer[Record]
}

func packResv(count uint64, off LSN) uint64 {
	return count<<resvIdxShift | uint64(off)
}

func unpackResv(w uint64) (count uint64, off LSN) {
	return w >> resvIdxShift, LSN(w & resvOffMask)
}

// slotAt returns the record published at slot i, or nil if the slot is
// unpublished (a hole, the frontier, or beyond the directory).
func (l *Log) slotAt(i uint64) *Record {
	dirp := l.dir.Load()
	if dirp == nil {
		return nil
	}
	d := *dirp
	seg := i >> segShift
	if seg >= uint64(len(d)) {
		return nil
	}
	return d[seg].slots[i&segMask].Load()
}

// setSlot publishes r at slot i, growing the segment directory if needed.
// Growth copies only the (small) slice of segment pointers and installs it
// with a CAS; the segments themselves are shared, so records published
// through an older directory view remain reachable through every newer one.
func (l *Log) setSlot(i uint64, r *Record) {
	seg := i >> segShift
	for {
		dirp := l.dir.Load()
		var d []*logSeg
		if dirp != nil {
			d = *dirp
		}
		if seg < uint64(len(d)) {
			d[seg].slots[i&segMask].Store(r)
			return
		}
		nd := make([]*logSeg, seg+1)
		copy(nd, d)
		for j := len(d); j < len(nd); j++ {
			nd[j] = &logSeg{}
		}
		if l.dir.CompareAndSwap(dirp, &nd) {
			nd[seg].slots[i&segMask].Store(r)
			return
		}
	}
}

func (l *Log) clearSlot(i uint64) {
	dirp := l.dir.Load()
	if dirp == nil {
		return
	}
	d := *dirp
	seg := i >> segShift
	if seg >= uint64(len(d)) {
		return
	}
	d[seg].slots[i&segMask].Store(nil)
}

// advanceFilled folds published slots into the contiguity watermark: it
// walks the frontier forward while the next slot is published. The classic
// CAS-scan is stall-free: if this appender's CAS loses, the winner (or a
// later publisher) has already re-driven the scan past the same slot, and
// the loop re-reads from the current frontier, so the watermark can lag a
// published slot only while some goroutine is still inside this loop.
// Callers hold crashMu (shared or exclusive), so the frontier cannot be
// concurrently truncated out from under the scan.
func (l *Log) advanceFilled() {
	for {
		f := l.filled.Load()
		if l.slotAt(f) == nil {
			return
		}
		l.filled.CompareAndSwap(f, f+1)
	}
}

// filledLSN returns the LSN of the last record under the contiguity
// watermark (NilLSN if none). Lock-free; callers racing a crash truncation
// may observe a value from just before the crash, which is the same answer
// a mutex acquired just before the crash would have produced.
func (l *Log) filledLSN() LSN {
	for {
		f := l.filled.Load()
		if f == 0 {
			return NilLSN
		}
		if r := l.slotAt(f - 1); r != nil {
			return r.LSN
		}
		// Raced a crash truncation between the two loads; re-read.
	}
}

// reserveFill is the lock-free append: claim the byte range and slot with
// one fetch-add, publish, advance the watermark. Caller holds crashMu.RLock
// (shared — appenders never serialize on it) so a crash cannot truncate
// between the claim and the publish, which is exactly the window that would
// otherwise leave a permanent hole. The stats counters are bumped between
// claim and publish so an observer can never see the record list advanced
// while LogRecords/LogBytes lag.
func (l *Log) reserveFill(r *Record, enc int) LSN {
	w := l.resv.Add(uint64(1)<<resvIdxShift | uint64(enc))
	count, end := unpackResv(w)
	if count >= maxResvRecords || uint64(end) >= maxResvBytes-uint64(enc) {
		panic("wal: log reservation address space exhausted")
	}
	r.LSN = end - LSN(enc) + 1
	if l.stats != nil {
		l.stats.AppendReservations.Add(1)
		l.stats.LogRecords.Add(1)
		l.stats.LogBytes.Add(uint64(enc))
	}
	if l.publishGate != nil {
		l.publishGate(count - 1)
	}
	l.setSlot(count-1, r)
	l.advanceFilled()
	return r.LSN
}

// prefix materializes slots [lo, hi) into a fresh slice. Records themselves
// are shared (immutable once appended); only the pointer slice is allocated.
func (l *Log) prefix(lo, hi uint64) []*Record {
	out := make([]*Record, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, l.slotAt(i))
	}
	return out
}

// searchFilled returns the index of the first watermarked record with
// LSN >= from, and the watermark count. Caller holds crashMu.RLock.
func (l *Log) searchFilled(from LSN) (uint64, uint64) {
	n := l.filled.Load()
	i := sort.Search(int(n), func(i int) bool { return l.slotAt(uint64(i)).LSN >= from })
	return uint64(i), n
}
