package wal

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ariesim/internal/trace"
)

// Property and regression tests for the lock-free reservation pipeline.
// Run under -race these exercise the claim/publish/watermark protocol the
// way the mutex log never could: many appenders in flight at once, holes
// opening and closing at the frontier, forces and crashes racing the fill.

// checkDense asserts recs is a dense byte-accurate LSN sequence: each
// record's LSN is its predecessor's LSN plus the predecessor's encoded
// size, with the first anchored at firstLSN (0 = don't check).
func checkDense(t *testing.T, recs []*Record, firstLSN LSN) {
	t.Helper()
	if len(recs) == 0 {
		return
	}
	if firstLSN != 0 && recs[0].LSN != firstLSN {
		t.Fatalf("first LSN %d, want %d", recs[0].LSN, firstLSN)
	}
	for i := 1; i < len(recs); i++ {
		want := recs[i-1].LSN + LSN(recs[i-1].EncodedSize())
		if recs[i].LSN != want {
			t.Fatalf("hole at index %d: LSN %d, want %d (prev %d + %d bytes)",
				i, recs[i].LSN, want, recs[i-1].LSN, recs[i-1].EncodedSize())
		}
	}
}

// TestConcurrentReservationsDense: N concurrent appenders with mixed
// payload sizes produce unique, dense, byte-accurate LSN ranges — the
// packed-claim invariant that slot order and byte order can never disagree.
func TestConcurrentReservationsDense(t *testing.T) {
	const workers, perWorker = 8, 400
	st := &trace.Stats{}
	l := NewLog(st)
	var wg sync.WaitGroup
	lsns := make([][]LSN, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(w)}, w%7+1) // mixed sizes
			for i := 0; i < perWorker; i++ {
				lsn := l.Append(&Record{Type: RecUpdate, TxID: TxID(w + 1), Op: OpDataInsert, Payload: payload})
				lsns[w] = append(lsns[w], lsn)
			}
		}(w)
	}
	wg.Wait()

	if got := l.NumRecords(); got != workers*perWorker {
		t.Fatalf("NumRecords = %d, want %d", got, workers*perWorker)
	}
	if got := st.AppendReservations.Load(); got != workers*perWorker {
		t.Fatalf("AppendReservations = %d, want %d", got, workers*perWorker)
	}
	recs := l.Records(NilLSN + 1)
	checkDense(t, recs, NilLSN+1)
	// Every worker's LSNs strictly increasing and present exactly once.
	seen := make(map[LSN]bool, workers*perWorker)
	for _, r := range recs {
		if seen[r.LSN] {
			t.Fatalf("duplicate LSN %d", r.LSN)
		}
		seen[r.LSN] = true
	}
	for w := range lsns {
		for i, lsn := range lsns[w] {
			if !seen[lsn] {
				t.Fatalf("worker %d append %d: LSN %d missing from log", w, i, lsn)
			}
			if i > 0 && lsn <= lsns[w][i-1] {
				t.Fatalf("worker %d: LSNs not increasing", w)
			}
		}
	}
	if st.LogBytes.Load() != l.Bytes() {
		t.Fatalf("LogBytes %d != Bytes %d after quiesce", st.LogBytes.Load(), l.Bytes())
	}
}

// TestSnapshotStableNeverExposesHole: while appenders race and forcers
// harden arbitrary appended LSNs, every SnapshotStable must be a dense
// prefix ending exactly at the reported stable mark — a reservation still
// filling below the mark can never leak into the snapshot.
func TestSnapshotStableNeverExposesHole(t *testing.T) {
	st := &trace.Stats{}
	l := NewLog(st)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lsn := l.Append(&Record{Type: RecUpdate, TxID: TxID(w + 1), Op: OpDataInsert, Payload: []byte("hole?")})
				if i%8 == w {
					l.Force(lsn)
				}
			}
		}(w)
	}
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		recs, stable, _ := l.SnapshotStable(NilLSN + 1)
		if stable == NilLSN {
			continue
		}
		if len(recs) == 0 {
			t.Fatal("stable mark set but snapshot empty")
		}
		checkDense(t, recs, NilLSN+1)
		if last := recs[len(recs)-1]; last.LSN != stable {
			t.Fatalf("snapshot ends at %d, stable mark %d", last.LSN, stable)
		}
	}
	close(stop)
	wg.Wait()
}

// TestArchiveUnderConcurrentAppends: the archive reads the same stable
// prefix, so an archive taken under full append concurrency must restore
// to a dense log whose stable mark equals its last record.
func TestArchiveUnderConcurrentAppends(t *testing.T) {
	l := NewLog(nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lsn := l.Append(&Record{Type: RecUpdate, TxID: TxID(w + 1), Op: OpDataInsert, Payload: []byte("arch")})
				if i%16 == 0 {
					l.Force(lsn)
				}
			}
		}(w)
	}
	for round := 0; round < 20; round++ {
		var buf bytes.Buffer
		if _, err := l.Archive(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadArchive(&buf)
		if err != nil {
			t.Fatal(err)
		}
		recs := got.Records(NilLSN + 1)
		checkDense(t, recs, NilLSN+1)
		if len(recs) > 0 && got.StableLSN() != recs[len(recs)-1].LSN {
			t.Fatalf("restored stable %d != last record %d", got.StableLSN(), recs[len(recs)-1].LSN)
		}
		if err := got.CodecRoundTrip(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestCrashAtEveryBoundaryMatchesPrefix: a concurrently-built log, forced
// and then crash-truncated at every record boundary, must be byte-identical
// to the corresponding prefix of the full log — the reservation pipeline
// may not perturb crash truncation at any point.
func TestCrashAtEveryBoundaryMatchesPrefix(t *testing.T) {
	l := NewLog(nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				l.Append(&Record{Type: RecUpdate, TxID: TxID(w + 1), Op: OpDataInsert,
					Payload: []byte(fmt.Sprintf("w%d-%d", w, i))})
			}
		}(w)
	}
	wg.Wait()
	l.ForceAll()
	full := l.Records(NilLSN + 1)
	checkDense(t, full, NilLSN+1)
	for i := range full {
		L := full[i].LSN
		fork := l.Clone(nil)
		fork.TruncateTo(L)
		got := fork.Records(NilLSN + 1)
		if len(got) != i+1 {
			t.Fatalf("boundary %d: %d records survive, want %d", L, len(got), i+1)
		}
		for j := range got {
			if !bytes.Equal(got[j].Encode(), full[j].Encode()) {
				t.Fatalf("boundary %d: record %d differs from prefix", L, j)
			}
		}
		if fork.StableLSN() != L || fork.MaxLSN() != L {
			t.Fatalf("boundary %d: stable %d max %d", L, fork.StableLSN(), fork.MaxLSN())
		}
	}
}

// TestStableNotifyMonotonicUnderConcurrentForces is the regression test for
// out-of-order stable-notify delivery: with the callback fired after the
// mutex was dropped, two forces completing out of order could deliver a
// lower watermark after a higher one. The notify sequencer must deliver
// strictly increasing watermarks no matter how forces interleave.
func TestStableNotifyMonotonicUnderConcurrentForces(t *testing.T) {
	l := NewLog(nil)
	// A costed device widens the window: while one flush sleeps, a crowd of
	// forcers parks, wakes together when it completes, and drains through
	// the callback while the NEXT flush is already advancing the mark.
	l.SetForceDelay(50 * time.Microsecond)
	var mu sync.Mutex
	var high LSN
	var violation string
	l.SetStableNotify(func(lsn LSN) {
		mu.Lock()
		if lsn <= high && violation == "" {
			violation = fmt.Sprintf("delivered %d after %d", lsn, high)
		}
		if lsn > high {
			high = lsn
		}
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				lsn := l.Append(&Record{Type: RecUpdate, TxID: TxID(w + 1), Op: OpDataInsert, Payload: []byte("n")})
				l.Force(lsn)
			}
		}(w)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if violation != "" {
		t.Fatalf("non-monotonic stable-notify: %s", violation)
	}
	if high == NilLSN {
		t.Fatal("no notifications delivered")
	}
}

// TestTruncateToAtomicUnderConcurrentForce is the regression test for the
// TruncateTo window: rewinding the stable mark and crashing used to be two
// critical sections, so a force sneaking between them re-advanced the mark
// and the crash kept records the truncation was supposed to drop. Merged
// into one critical section, TruncateTo(L) always leaves MaxLSN <= L.
func TestTruncateToAtomicUnderConcurrentForce(t *testing.T) {
	for round := 0; round < 60; round++ {
		l := NewLog(nil)
		var lsns []LSN
		for i := 0; i < 6; i++ {
			lsns = append(lsns, l.Append(&Record{Type: RecUpdate, TxID: 1, Op: OpDataInsert, Payload: []byte("t")}))
		}
		l.ForceAll()
		last := lsns[len(lsns)-1]
		stop := make(chan struct{})
		var started sync.WaitGroup
		var wg sync.WaitGroup
		// Several forcers spin hot on the log mutex so that at the moment
		// TruncateTo runs, at least one is actively contending — the old
		// two-critical-section window let such a force re-advance the
		// rewound stable mark between the rewind and the crash.
		for f := 0; f < 4; f++ {
			wg.Add(1)
			started.Add(1)
			go func() {
				defer wg.Done()
				first := true
				for {
					select {
					case <-stop:
						if first {
							started.Done()
						}
						return
					default:
					}
					l.Force(last)
					if first {
						first = false
						started.Done()
					}
				}
			}()
		}
		started.Wait() // every forcer is live and contending
		L := lsns[0]
		l.TruncateTo(L)
		got := l.MaxLSN()
		close(stop)
		wg.Wait()
		if got > L {
			t.Fatalf("round %d: TruncateTo(%d) left MaxLSN %d — a concurrent force re-advanced the rewound mark", round, L, got)
		}
	}
}

// TestAppendForceSurfacesCrash is the regression test for AppendForce's
// zombie return: a crash landing during the flush used to hand back the
// dead record's LSN with no signal. Both the serial (latch-held) and the
// group-commit paths must now report ErrLogCrashed.
func TestAppendForceSurfacesCrash(t *testing.T) {
	for _, group := range []bool{false, true} {
		l := NewLog(nil)
		l.SetGroupCommit(group)
		l.SetForceDelay(5 * time.Millisecond)
		seed := l.Append(&Record{Type: RecUpdate, TxID: 1, Op: OpDataInsert, Payload: []byte("s")})
		l.Force(seed)

		errCh := make(chan error, 1)
		go func() {
			_, err := l.AppendForce(&Record{Type: RecCommit, TxID: 1})
			errCh <- err
		}()
		time.Sleep(1 * time.Millisecond) // let the flush take flight
		l.Crash()
		if err := <-errCh; !errors.Is(err, ErrLogCrashed) {
			t.Fatalf("group=%v: AppendForce returned %v, want ErrLogCrashed", group, err)
		}
		if got := l.StableLSN(); got != seed {
			t.Fatalf("group=%v: stable %d after crash, want %d", group, got, seed)
		}
	}
}

// TestAppendForceSucceedsBothModes: the fixed signature still reports clean
// successes as nil in both configurations.
func TestAppendForceSucceedsBothModes(t *testing.T) {
	for _, group := range []bool{false, true} {
		st := &trace.Stats{}
		l := NewLog(st)
		l.SetGroupCommit(group)
		lsn, err := l.AppendForce(&Record{Type: RecCommit, TxID: 1})
		if err != nil {
			t.Fatalf("group=%v: %v", group, err)
		}
		if l.StableLSN() != lsn {
			t.Fatalf("group=%v: stable %d, want %d", group, l.StableLSN(), lsn)
		}
	}
}

// TestReadWaitsOutClaimPublishWindow is the schedule-pinned regression for
// the undo-chain race: appender A is parked inside its claim→publish window
// (via the publishGate test hook) while appender B claims the next slot and
// publishes. B's record now exists in the slot directory but the contiguity
// watermark is parked below it at A's hole. The pre-fix Read consulted only
// the watermark-capped search and immediately reported B's record missing —
// which is exactly how a rolling-back transaction chasing its own PrevLSN
// chain hit "undo chain broken: wal: no record at LSN". The fixed Read must
// wait out the transient hole and return the record once A publishes, while
// still reporting a genuinely absent LSN (beyond every claim) without
// blocking.
func TestReadWaitsOutClaimPublishWindow(t *testing.T) {
	l := NewLog(nil)
	gate := make(chan struct{})
	entered := make(chan struct{})
	l.publishGate = func(slot uint64) {
		if slot == 0 {
			close(entered)
			<-gate
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		l.Append(&Record{Type: RecUpdate, TxID: 1, Op: OpDataInsert, Payload: []byte("a")})
	}()
	<-entered

	// A holds slot 0 unpublished; B publishes at slot 1. The watermark
	// cannot advance past A's hole, so B's record is exactly the
	// published-but-uncovered state the race exposes.
	lsnB := l.Append(&Record{Type: RecUpdate, TxID: 2, Op: OpDataInsert, Payload: []byte("b")})

	// A genuinely absent LSN (beyond every claimed byte) must still be
	// reported promptly even while the hole is open.
	if _, err := l.Read(lsnB + 4096); err == nil {
		t.Fatal("Read of an unclaimed LSN succeeded")
	}

	type readRes struct {
		r   *Record
		err error
	}
	got := make(chan readRes, 1)
	go func() {
		r, err := l.Read(lsnB)
		got <- readRes{r, err}
	}()

	select {
	case rr := <-got:
		if rr.err != nil {
			t.Fatalf("Read(%d) inside the claim→publish window: %v (published record reported missing — the undo-chain race)", lsnB, rr.err)
		}
		t.Fatalf("Read(%d) returned before the watermark could cover the record", lsnB)
	case <-time.After(50 * time.Millisecond):
		// Fixed behavior: Read is waiting out the hole.
	}

	close(gate)
	wg.Wait()
	rr := <-got
	if rr.err != nil {
		t.Fatalf("Read(%d) after the hole closed: %v", lsnB, rr.err)
	}
	if rr.r.LSN != lsnB || rr.r.TxID != 2 {
		t.Fatalf("Read(%d) = {LSN %d, TxID %d}, want B's record", lsnB, rr.r.LSN, rr.r.TxID)
	}
}
