// Package wal implements write-ahead logging for ariesim: log sequence
// numbers, the log record model (undo-redo updates, redo-only updates,
// compensation log records, dummy CLRs for nested top actions, transaction
// status records, fuzzy checkpoints), a binary codec, and a log manager
// with an explicit stable prefix so crashes can be simulated faithfully
// (everything after the last Force is lost).
//
// The design follows ARIES (Mohan et al., TODS 1992) as summarized in
// ARIES/IM §1.2: every page carries a page_LSN; CLRs are redo-only and
// chain via UndoNxtLSN to bound logging during (possibly repeated)
// rollbacks; a dummy CLR closes a nested top action by pointing past the
// action's log records.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"ariesim/internal/storage"
)

// LSN is a log sequence number: one plus the byte offset of the record in
// the log address space, so LSNs increase monotonically and 0 is "nil".
type LSN uint64

// NilLSN is the null LSN (no predecessor, unset page_LSN).
const NilLSN LSN = 0

// TxID identifies a transaction. 0 is reserved for system activity.
type TxID uint32

// RecType classifies log records.
type RecType uint8

const (
	// RecUpdate is a forward-processing update, normally undo-redo; an
	// update with RedoOnly set cannot be undone (e.g. SM_Bit resets).
	RecUpdate RecType = iota + 1
	// RecCLR is a compensation log record: redo-only, written during undo,
	// chained via UndoNxtLSN to the predecessor of the record it undoes.
	RecCLR
	// RecDummyCLR terminates a nested top action: a CLR with no page
	// action whose UndoNxtLSN points just before the action began.
	RecDummyCLR
	// RecCommit marks a transaction committed (forced at commit).
	RecCommit
	// RecAbort marks the start of a total rollback.
	RecAbort
	// RecEnd marks a transaction fully finished (after commit processing
	// or rollback completion).
	RecEnd
	// RecPrepare marks an in-doubt (two-phase commit) transaction; its
	// payload carries the locks to reacquire during restart.
	RecPrepare
	// RecBeginCkpt and RecEndCkpt delimit a fuzzy checkpoint; the end
	// record carries the dirty page table and transaction table.
	RecBeginCkpt
	RecEndCkpt
)

func (t RecType) String() string {
	switch t {
	case RecUpdate:
		return "update"
	case RecCLR:
		return "clr"
	case RecDummyCLR:
		return "dummy-clr"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	case RecEnd:
		return "end"
	case RecPrepare:
		return "prepare"
	case RecBeginCkpt:
		return "begin-ckpt"
	case RecEndCkpt:
		return "end-ckpt"
	default:
		return fmt.Sprintf("rectype%d", uint8(t))
	}
}

// OpCode identifies the page operation an update (or the compensating
// action a CLR) performs. Redo is dispatched purely on (OpCode, payload) in
// a page-oriented fashion; undo of forward updates is dispatched through
// the owning resource manager, which may choose a logical path.
type OpCode uint16

const (
	OpNone OpCode = iota

	// Index manager operations.
	OpIdxInsertKey   // insert one key cell into a leaf
	OpIdxDeleteKey   // delete one key cell from a leaf
	OpIdxFormat      // format a fresh index page with a full cell image
	OpIdxSplitLeft   // remove the moved upper cells from the split page
	OpIdxChainFix    // rewrite a sibling chain pointer
	OpIdxSplitParent // post a separator (high key, child) into a parent
	OpIdxDeleteChild // remove a child entry from a parent
	OpIdxReplacePage // physical full-page replace (root split/collapse)
	OpIdxFreePage    // mark an index page free (page deletion)
	OpIdxSetBits     // redo-only flag-byte update (SM_Bit/Delete_Bit resets)

	// Compensating index actions (the redo bodies of CLRs written when a
	// partially completed SMO is undone page-oriented).
	OpIdxUnsplitLeft   // put the moved cells back (undo of OpIdxSplitLeft)
	OpIdxUnsplitParent // remove a posted separator (undo of OpIdxSplitParent)
	OpIdxUndeleteChild // restore a removed child entry (undo of OpIdxDeleteChild)
	OpIdxUnfreePage    // restore a freed page's empty shell (undo of OpIdxFreePage)

	// Free-space map operations.
	OpFSMAlloc // set an allocation bit
	OpFSMFree  // clear an allocation bit

	// Record (data) manager operations.
	OpDataFormat   // format a fresh data page
	OpDataInsert   // add a record at a stable slot (or revive its ghost)
	OpDataDelete   // ghost a record in a stable slot
	OpDataPurge    // physically remove a committed ghost (redo-only)
	OpDataChainFix // rewrite a data-page chain pointer
	OpDataFree     // mark a data page free (undo of OpDataFormat)
)

func (o OpCode) String() string {
	names := [...]string{
		"none", "idx-insert", "idx-delete", "idx-format", "idx-split-left",
		"idx-chain-fix", "idx-split-parent", "idx-delete-child",
		"idx-replace-page", "idx-free-page", "idx-set-bits",
		"idx-unsplit-left", "idx-unsplit-parent", "idx-undelete-child",
		"idx-unfree-page",
		"fsm-alloc", "fsm-free", "data-format", "data-insert", "data-delete",
		"data-purge", "data-chain-fix", "data-free",
	}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("op%d", uint16(o))
}

// Record is a log record. PrevLSN chains a transaction's records backward;
// UndoNxtLSN (CLRs only) points at the next record to undo, letting
// rollback skip already-compensated work.
type Record struct {
	LSN        LSN // assigned by Log.Append
	PrevLSN    LSN
	TxID       TxID
	Type       RecType
	UndoNxtLSN LSN
	Page       storage.PageID
	Op         OpCode
	RedoOnly   bool
	Payload    []byte
}

// IsCLR reports whether the record is any kind of compensation record.
func (r *Record) IsCLR() bool { return r.Type == RecCLR || r.Type == RecDummyCLR }

// Redoable reports whether the record describes a page action that the
// redo pass must consider.
func (r *Record) Redoable() bool {
	return (r.Type == RecUpdate || r.Type == RecCLR) && r.Op != OpNone && r.Page != storage.InvalidPageID
}

// Undoable reports whether rollback must compensate this record.
func (r *Record) Undoable() bool {
	return r.Type == RecUpdate && !r.RedoOnly && r.Op != OpNone
}

// On-log record layout: length u32 | CRC32-C u32 | body. The CRC covers
// everything after itself (body and payload), so a torn log tail — a
// record only partially on stable storage when the machine died — is
// detected at restart and the log truncated there, rather than replaying
// garbage (ARIES' partial-record assumption, made checkable).
const recHeaderSize = 4 + 4 + 1 + 1 + 4 + 8 + 8 + 4 + 2

// ErrBadRecordCRC reports a log record whose stored CRC does not match its
// bytes: a torn or corrupted log tail.
var ErrBadRecordCRC = errors.New("wal: log record CRC mismatch")

// EncodedSize returns the on-log size of the record.
func (r *Record) EncodedSize() int { return recHeaderSize + len(r.Payload) }

// Encode serializes the record (excluding its LSN, which is its address).
func (r *Record) Encode() []byte {
	b := make([]byte, r.EncodedSize())
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(b)))
	b[8] = uint8(r.Type)
	if r.RedoOnly {
		b[9] = 1
	}
	binary.LittleEndian.PutUint32(b[10:14], uint32(r.TxID))
	binary.LittleEndian.PutUint64(b[14:22], uint64(r.PrevLSN))
	binary.LittleEndian.PutUint64(b[22:30], uint64(r.UndoNxtLSN))
	binary.LittleEndian.PutUint32(b[30:34], uint32(r.Page))
	binary.LittleEndian.PutUint16(b[34:36], uint16(r.Op))
	copy(b[recHeaderSize:], r.Payload)
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(b[8:], recCRCTable))
	return b
}

var recCRCTable = crc32.MakeTable(crc32.Castagnoli)

// DecodeRecord parses one record from the head of b, returning it and the
// number of bytes consumed. A CRC mismatch returns ErrBadRecordCRC.
func DecodeRecord(b []byte) (*Record, int, error) {
	if len(b) < recHeaderSize {
		return nil, 0, fmt.Errorf("wal: record header truncated (%d bytes)", len(b))
	}
	total := int(binary.LittleEndian.Uint32(b[0:4]))
	if total < recHeaderSize || total > len(b) {
		return nil, 0, fmt.Errorf("wal: record length %d invalid (have %d)", total, len(b))
	}
	if crc := binary.LittleEndian.Uint32(b[4:8]); crc != crc32.Checksum(b[8:total], recCRCTable) {
		return nil, 0, ErrBadRecordCRC
	}
	r := &Record{
		Type:       RecType(b[8]),
		RedoOnly:   b[9] == 1,
		TxID:       TxID(binary.LittleEndian.Uint32(b[10:14])),
		PrevLSN:    LSN(binary.LittleEndian.Uint64(b[14:22])),
		UndoNxtLSN: LSN(binary.LittleEndian.Uint64(b[22:30])),
		Page:       storage.PageID(binary.LittleEndian.Uint32(b[30:34])),
		Op:         OpCode(binary.LittleEndian.Uint16(b[34:36])),
	}
	if total > recHeaderSize {
		r.Payload = make([]byte, total-recHeaderSize)
		copy(r.Payload, b[recHeaderSize:total])
	}
	return r, total, nil
}

func (r *Record) String() string {
	return fmt.Sprintf("LSN %d %s tx=%d op=%s page=%d prev=%d undoNxt=%d payload=%dB",
		r.LSN, r.Type, r.TxID, r.Op, r.Page, r.PrevLSN, r.UndoNxtLSN, len(r.Payload))
}
