package storage

import (
	"errors"
	"fmt"
)

// Free-space-map codec.
//
// Page allocation must be recoverable: a page split allocates a page, and
// repeating history at restart must reproduce that allocation. ariesim
// therefore keeps the allocator's state in an ordinary page (FSMPageID)
// whose bitmap is mutated only through logged operations, all inside the
// same nested top action as the SMO that needed the page (DESIGN.md §4).
//
// The bitmap occupies the page body after the header: bit b set means page
// (FirstAllocatablePageID + b) is allocated. One 4 KiB FSM page manages
// ~32k pages (≈128 MiB at 4 KiB pages), ample for the reproduction; the
// codec reports exhaustion explicitly.

// ErrDiskFull reports FSM bitmap exhaustion.
var ErrDiskFull = errors.New("storage: free-space map exhausted")

// FSMCapacity returns how many pages an FSM page of the given size manages.
func FSMCapacity(pageSize int) int { return (pageSize - headerSize) * 8 }

// FormatFSM initializes p as the free-space-map page.
func FormatFSM(p *Page) {
	p.Format(FSMPageID, PageTypeFSM, 0)
}

// FSMBitForPage maps a page ID to its bitmap index.
func FSMBitForPage(id PageID) (int, error) {
	if id < FirstAllocatablePageID {
		return 0, fmt.Errorf("storage: page %d is not FSM-managed", id)
	}
	return int(id - FirstAllocatablePageID), nil
}

// FSMPageForBit maps a bitmap index back to a page ID.
func FSMPageForBit(bit int) PageID {
	return FirstAllocatablePageID + PageID(bit)
}

// FSMIsSet reports whether bit is set (page allocated) in the FSM page.
func FSMIsSet(p *Page, bit int) bool {
	byteOff := headerSize + bit/8
	if byteOff >= p.Size() {
		return false
	}
	return p.b[byteOff]&(1<<(bit%8)) != 0
}

// FSMSet sets or clears an allocation bit. This is the physical action
// described by FSM log records; redo and undo both funnel through it.
func FSMSet(p *Page, bit int, on bool) error {
	byteOff := headerSize + bit/8
	if byteOff >= p.Size() {
		return ErrDiskFull
	}
	mask := byte(1) << (bit % 8)
	if on {
		p.b[byteOff] |= mask
	} else {
		p.b[byteOff] &^= mask
	}
	return nil
}

// FSMFindFree returns the lowest clear bit, i.e. the next page to allocate.
func FSMFindFree(p *Page) (int, error) {
	body := p.b[headerSize:]
	for i, by := range body {
		if by == 0xFF {
			continue
		}
		for j := 0; j < 8; j++ {
			if by&(1<<j) == 0 {
				return i*8 + j, nil
			}
		}
	}
	return 0, ErrDiskFull
}

// FSMCountAllocated returns the number of set bits (verification sweeps).
func FSMCountAllocated(p *Page) int {
	n := 0
	for _, by := range p.b[headerSize:] {
		for ; by != 0; by &= by - 1 {
			n++
		}
	}
	return n
}
