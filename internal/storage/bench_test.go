package storage

import (
	"fmt"
	"testing"
)

// Micro-benchmarks of the byte-level substrate: these bound the cost of
// every page operation the engine performs.

func benchLeaf(b *testing.B, nKeys int) *Page {
	b.Helper()
	p := NewPage(DefaultPageSize)
	p.Format(1, PageTypeIndex, 0)
	for i := 0; i < nKeys; i++ {
		k := Key{Val: []byte(fmt.Sprintf("key%08d", i*2)), RID: RID{Page: PageID(i), Slot: 1}}
		if err := p.InsertCellAt(i, EncodeLeafCell(k)); err != nil {
			b.Fatal(err)
		}
	}
	return p
}

func BenchmarkPageInsertDeleteCell(b *testing.B) {
	p := benchLeaf(b, 100)
	cell := EncodeLeafCell(Key{Val: []byte("key00000101"), RID: RID{Page: 9, Slot: 9}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.InsertCellAt(50, cell); err != nil {
			b.Fatal(err)
		}
		if _, err := p.DeleteCellAt(50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeafCellCodec(b *testing.B) {
	k := Key{Val: []byte("key00001234"), RID: RID{Page: 77, Slot: 3}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell := EncodeLeafCell(k)
		if _, err := DecodeLeafCell(cell); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageCompaction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := benchLeaf(b, 100)
		for j := 0; j < 50; j++ {
			if _, err := p.DeleteCellAt(j); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		p.compact()
	}
}

func BenchmarkDiskReadWrite(b *testing.B) {
	d := NewDisk(DefaultPageSize)
	buf := make([]byte, DefaultPageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Write(PageID(i%64+2), buf); err != nil {
			b.Fatal(err)
		}
		if err := d.Read(PageID(i%64+2), buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFSMFindFree(b *testing.B) {
	p := NewPage(DefaultPageSize)
	FormatFSM(p)
	// Half-full bitmap: realistic search depth.
	for i := 0; i < FSMCapacity(DefaultPageSize)/2; i++ {
		_ = FSMSet(p, i, true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FSMFindFree(p); err != nil {
			b.Fatal(err)
		}
	}
}
