package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPageFormatHeader(t *testing.T) {
	p := NewPage(DefaultPageSize)
	p.Format(7, PageTypeIndex, 2)
	if p.ID() != 7 {
		t.Errorf("ID = %d, want 7", p.ID())
	}
	if p.Type() != PageTypeIndex {
		t.Errorf("Type = %v, want index", p.Type())
	}
	if p.Level() != 2 || p.IsLeaf() {
		t.Errorf("Level = %d, IsLeaf = %v", p.Level(), p.IsLeaf())
	}
	if p.NSlots() != 0 {
		t.Errorf("NSlots = %d, want 0", p.NSlots())
	}
	if p.LSN() != 0 {
		t.Errorf("LSN = %d, want 0", p.LSN())
	}
	if p.SMBit() || p.DeleteBit() {
		t.Error("fresh page has warning bits set")
	}
}

func TestPageHeaderRoundTrip(t *testing.T) {
	p := NewPage(DefaultPageSize)
	p.Format(3, PageTypeIndex, 0)
	p.SetLSN(0xDEADBEEF01)
	p.SetPrev(11)
	p.SetNext(12)
	p.SetRightmost(13)
	p.SetSMBit(true)
	p.SetDeleteBit(true)
	if p.LSN() != 0xDEADBEEF01 || p.Prev() != 11 || p.Next() != 12 || p.Rightmost() != 13 {
		t.Fatalf("header fields did not round-trip: lsn=%x prev=%d next=%d rm=%d",
			p.LSN(), p.Prev(), p.Next(), p.Rightmost())
	}
	if !p.SMBit() || !p.DeleteBit() {
		t.Fatal("flag bits did not round-trip")
	}
	p.SetSMBit(false)
	if p.SMBit() || !p.DeleteBit() {
		t.Fatal("clearing SM_Bit disturbed Delete_Bit")
	}
}

func TestPageFlagsSurviveBytesCopy(t *testing.T) {
	p := NewPage(512)
	p.Format(2, PageTypeIndex, 0)
	p.SetSMBit(true)
	q := PageFromBytes(append([]byte(nil), p.Bytes()...))
	if !q.SMBit() {
		t.Fatal("SM_Bit lost across byte copy")
	}
}

func TestDenseInsertDeleteOrdering(t *testing.T) {
	p := NewPage(512)
	p.Format(1, PageTypeIndex, 0)
	// Insert c, a, b at sorted positions.
	mustInsert := func(i int, s string) {
		t.Helper()
		if err := p.InsertCellAt(i, []byte(s)); err != nil {
			t.Fatalf("InsertCellAt(%d, %q): %v", i, s, err)
		}
	}
	mustInsert(0, "ccc")
	mustInsert(0, "aaa")
	mustInsert(1, "bbb")
	want := []string{"aaa", "bbb", "ccc"}
	for i, w := range want {
		if got := string(p.MustCell(i)); got != w {
			t.Errorf("cell %d = %q, want %q", i, got, w)
		}
	}
	got, err := p.DeleteCellAt(1)
	if err != nil || string(got) != "bbb" {
		t.Fatalf("DeleteCellAt(1) = %q, %v", got, err)
	}
	if p.NSlots() != 2 || string(p.MustCell(1)) != "ccc" {
		t.Fatalf("after delete: nslots=%d cell1=%q", p.NSlots(), p.MustCell(1))
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDensePageFullAndCompaction(t *testing.T) {
	p := NewPage(256)
	p.Format(1, PageTypeIndex, 0)
	cell := bytes.Repeat([]byte{'x'}, 40)
	n := 0
	for p.InsertCellAt(n, cell) == nil {
		n++
	}
	if n == 0 {
		t.Fatal("no cells fit at all")
	}
	// Delete one, insert again: must succeed via garbage reclamation.
	if _, err := p.DeleteCellAt(0); err != nil {
		t.Fatal(err)
	}
	if err := p.InsertCellAt(0, cell); err != nil {
		t.Fatalf("reinsert after delete failed: %v", err)
	}
	if err := p.InsertCellAt(0, cell); err != ErrPageFull {
		t.Fatalf("expected ErrPageFull, got %v", err)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStableSlotsPreserveRIDs(t *testing.T) {
	p := NewPage(512)
	p.Format(9, PageTypeData, 0)
	s0, err := p.AddCell([]byte("rec0"))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := p.AddCell([]byte("rec1"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.AddCell([]byte("rec2"))
	if err != nil {
		t.Fatal(err)
	}
	if s0 != 0 || s1 != 1 || s2 != 2 {
		t.Fatalf("slots = %d,%d,%d", s0, s1, s2)
	}
	if _, err := p.RemoveCell(s1); err != nil {
		t.Fatal(err)
	}
	// rec2 must still be reachable at its original slot.
	c, ok := p.Cell(int(s2))
	if !ok || string(c) != "rec2" {
		t.Fatalf("cell %d = %q, %v after removal of slot 1", s2, c, ok)
	}
	if _, ok := p.Cell(int(s1)); ok {
		t.Fatal("freed slot still readable")
	}
	// Reuse of the freed slot.
	s3, err := p.AddCell([]byte("rec3"))
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 {
		t.Fatalf("AddCell reused slot %d, want %d", s3, s1)
	}
	if p.LiveCells() != 3 {
		t.Fatalf("LiveCells = %d, want 3", p.LiveCells())
	}
}

func TestAddCellAtReproducesSlots(t *testing.T) {
	p := NewPage(512)
	p.Format(9, PageTypeData, 0)
	if err := p.AddCellAt(3, []byte("late")); err != nil {
		t.Fatal(err)
	}
	if p.NSlots() != 4 {
		t.Fatalf("NSlots = %d, want 4", p.NSlots())
	}
	for i := 0; i < 3; i++ {
		if _, ok := p.Cell(i); ok {
			t.Fatalf("intermediate slot %d should be free", i)
		}
	}
	c, ok := p.Cell(3)
	if !ok || string(c) != "late" {
		t.Fatalf("Cell(3) = %q, %v", c, ok)
	}
	if err := p.AddCellAt(3, []byte("dup")); err == nil {
		t.Fatal("AddCellAt over occupied slot succeeded")
	}
	if err := p.AddCellAt(1, []byte("fill")); err != nil {
		t.Fatal(err)
	}
	if c, ok := p.Cell(1); !ok || string(c) != "fill" {
		t.Fatalf("Cell(1) = %q, %v", c, ok)
	}
}

func TestStableCompactionKeepsSlots(t *testing.T) {
	p := NewPage(256)
	p.Format(9, PageTypeData, 0)
	var slots []uint16
	for {
		s, err := p.AddCell(bytes.Repeat([]byte{'a' + byte(len(slots))}, 20))
		if err != nil {
			break
		}
		slots = append(slots, s)
	}
	if len(slots) < 3 {
		t.Fatalf("only %d cells fit", len(slots))
	}
	// Free every other cell, then add a big one forcing compaction.
	for i := 0; i < len(slots); i += 2 {
		if _, err := p.RemoveCell(slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.AddCell(bytes.Repeat([]byte{'Z'}, 30)); err != nil {
		t.Fatalf("AddCell after frees: %v", err)
	}
	for i := 1; i < len(slots); i += 2 {
		c, ok := p.Cell(int(slots[i]))
		if !ok || c[0] != 'a'+byte(i) {
			t.Fatalf("slot %d corrupted by compaction: %q %v", slots[i], c, ok)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLeafCellRoundTrip(t *testing.T) {
	k := Key{Val: []byte("hello"), RID: RID{Page: 42, Slot: 7}}
	got, err := DecodeLeafCell(EncodeLeafCell(k))
	if err != nil {
		t.Fatal(err)
	}
	if got.Compare(k) != 0 {
		t.Fatalf("round trip: got %v want %v", got, k)
	}
}

func TestNodeCellRoundTrip(t *testing.T) {
	k := Key{Val: []byte("high"), RID: RID{Page: 1, Slot: 2}}
	gk, child, err := DecodeNodeCell(EncodeNodeCell(k, 99))
	if err != nil {
		t.Fatal(err)
	}
	if gk.Compare(k) != 0 || child != 99 {
		t.Fatalf("round trip: got %v/%d want %v/99", gk, child, k)
	}
}

func TestCellDecodeErrors(t *testing.T) {
	if _, err := DecodeLeafCell([]byte{1}); err == nil {
		t.Error("short leaf cell decoded")
	}
	if _, _, err := DecodeNodeCell([]byte{9, 0, 'x'}); err == nil {
		t.Error("truncated node cell decoded")
	}
	// valLen claims more than available
	bad := EncodeLeafCell(Key{Val: []byte("abcd")})
	bad[0] = 200
	if _, err := DecodeLeafCell(bad); err == nil {
		t.Error("oversized valLen decoded")
	}
}

func TestKeyCompare(t *testing.T) {
	cases := []struct {
		a, b Key
		want int
	}{
		{Key{Val: []byte("a")}, Key{Val: []byte("b")}, -1},
		{Key{Val: []byte("b")}, Key{Val: []byte("a")}, 1},
		{Key{Val: []byte("a"), RID: RID{1, 1}}, Key{Val: []byte("a"), RID: RID{1, 2}}, -1},
		{Key{Val: []byte("a"), RID: RID{2, 0}}, Key{Val: []byte("a"), RID: RID{1, 9}}, 1},
		{Key{Val: []byte("a"), RID: RID{1, 1}}, Key{Val: []byte("a"), RID: RID{1, 1}}, 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if MinKeyFor([]byte("k")).Compare(MaxKeyFor([]byte("k"))) >= 0 {
		t.Error("MinKeyFor >= MaxKeyFor")
	}
}

func TestKeyCloneIndependence(t *testing.T) {
	src := []byte("mutable")
	k := Key{Val: src, RID: RID{1, 1}}
	c := k.Clone()
	src[0] = 'X'
	if c.Val[0] == 'X' {
		t.Fatal("Clone aliases source buffer")
	}
}

// quickCell is a quick.Generator-friendly cell payload.
func TestQuickLeafCellRoundTrip(t *testing.T) {
	f := func(val []byte, page uint32, slot uint16) bool {
		if len(val) > 1000 {
			val = val[:1000]
		}
		k := Key{Val: val, RID: RID{Page: PageID(page), Slot: slot}}
		got, err := DecodeLeafCell(EncodeLeafCell(k))
		return err == nil && got.Compare(k) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDensePageModel drives a dense page against a slice model with
// random inserts/deletes and checks full equivalence plus invariants.
func TestQuickDensePageModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewPage(1024)
	p.Format(5, PageTypeIndex, 0)
	var model [][]byte
	for step := 0; step < 5000; step++ {
		if rng.Intn(2) == 0 || len(model) == 0 {
			cell := make([]byte, rng.Intn(60)+1)
			for i := range cell {
				cell[i] = byte(rng.Intn(256))
			}
			pos := rng.Intn(len(model) + 1)
			err := p.InsertCellAt(pos, cell)
			if err == ErrPageFull {
				continue
			}
			if err != nil {
				t.Fatalf("step %d: insert: %v", step, err)
			}
			model = append(model, nil)
			copy(model[pos+1:], model[pos:])
			model[pos] = cell
		} else {
			pos := rng.Intn(len(model))
			got, err := p.DeleteCellAt(pos)
			if err != nil {
				t.Fatalf("step %d: delete: %v", step, err)
			}
			if !bytes.Equal(got, model[pos]) {
				t.Fatalf("step %d: deleted %x, model %x", step, got, model[pos])
			}
			model = append(model[:pos], model[pos+1:]...)
		}
		if p.NSlots() != len(model) {
			t.Fatalf("step %d: nslots %d != model %d", step, p.NSlots(), len(model))
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	for i, want := range model {
		if got := p.MustCell(i); !bytes.Equal(got, want) {
			t.Fatalf("final cell %d mismatch", i)
		}
	}
}

// TestQuickStableSlotModel does the same for stable-slot (data) pages.
func TestQuickStableSlotModel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewPage(1024)
	p.Format(6, PageTypeData, 0)
	model := map[uint16][]byte{}
	for step := 0; step < 5000; step++ {
		if rng.Intn(2) == 0 || len(model) == 0 {
			cell := make([]byte, rng.Intn(60)+1)
			rng.Read(cell)
			slot, err := p.AddCell(cell)
			if err == ErrPageFull {
				continue
			}
			if err != nil {
				t.Fatalf("step %d: add: %v", step, err)
			}
			if _, dup := model[slot]; dup {
				t.Fatalf("step %d: slot %d double-allocated", step, slot)
			}
			model[slot] = cell
		} else {
			var victim uint16
			for s := range model {
				victim = s
				break
			}
			got, err := p.RemoveCell(victim)
			if err != nil {
				t.Fatalf("step %d: remove: %v", step, err)
			}
			if !bytes.Equal(got, model[victim]) {
				t.Fatalf("step %d: removed wrong payload", step)
			}
			delete(model, victim)
		}
		if p.LiveCells() != len(model) {
			t.Fatalf("step %d: live %d != model %d", step, p.LiveCells(), len(model))
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	for slot, want := range model {
		got, ok := p.Cell(int(slot))
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("final slot %d mismatch", slot)
		}
	}
}

func TestFSMAllocateFreeCycle(t *testing.T) {
	p := NewPage(DefaultPageSize)
	FormatFSM(p)
	bit, err := FSMFindFree(p)
	if err != nil || bit != 0 {
		t.Fatalf("first free bit = %d, %v", bit, err)
	}
	if err := FSMSet(p, bit, true); err != nil {
		t.Fatal(err)
	}
	if !FSMIsSet(p, 0) {
		t.Fatal("bit 0 not set")
	}
	bit2, err := FSMFindFree(p)
	if err != nil || bit2 != 1 {
		t.Fatalf("second free bit = %d, %v", bit2, err)
	}
	if err := FSMSet(p, 0, false); err != nil {
		t.Fatal(err)
	}
	bit3, _ := FSMFindFree(p)
	if bit3 != 0 {
		t.Fatalf("freed bit not reused: got %d", bit3)
	}
	if got := FSMPageForBit(5); got != FirstAllocatablePageID+5 {
		t.Fatalf("FSMPageForBit(5) = %d", got)
	}
	b, err := FSMBitForPage(FirstAllocatablePageID + 5)
	if err != nil || b != 5 {
		t.Fatalf("FSMBitForPage = %d, %v", b, err)
	}
	if _, err := FSMBitForPage(0); err == nil {
		t.Fatal("FSMBitForPage(0) should fail")
	}
}

func TestFSMExhaustion(t *testing.T) {
	p := NewPage(256) // tiny FSM: (256-36)*8 = 1760 bits
	FormatFSM(p)
	cap := FSMCapacity(256)
	for i := 0; i < cap; i++ {
		if err := FSMSet(p, i, true); err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
	}
	if _, err := FSMFindFree(p); err != ErrDiskFull {
		t.Fatalf("want ErrDiskFull, got %v", err)
	}
	if got := FSMCountAllocated(p); got != cap {
		t.Fatalf("allocated count = %d, want %d", got, cap)
	}
	if err := FSMSet(p, cap+100, true); err != ErrDiskFull {
		t.Fatalf("out-of-range set: want ErrDiskFull, got %v", err)
	}
}

func TestDiskReadWriteCorrupt(t *testing.T) {
	d := NewDisk(512)
	buf := make([]byte, 512)
	if err := d.Read(9, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unwritten page not zeroed")
		}
	}
	data := bytes.Repeat([]byte{0xAB}, 512)
	if err := d.Write(9, data); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's buffer must not affect the disk copy.
	data[0] = 0
	if err := d.Read(9, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAB {
		t.Fatal("disk aliased the writer's buffer")
	}
	if !d.Exists(9) || d.Exists(10) {
		t.Fatal("Exists wrong")
	}
	d.Corrupt(9)
	if d.Exists(9) {
		t.Fatal("Corrupt did not destroy page")
	}
	if err := d.Write(9, make([]byte, 100)); err == nil {
		t.Fatal("short write accepted")
	}
	if err := d.Read(9, make([]byte, 100)); err == nil {
		t.Fatal("short read accepted")
	}
}

func TestDiskSnapshotRestore(t *testing.T) {
	d := NewDisk(512)
	pg := bytes.Repeat([]byte{1}, 512)
	_ = d.Write(3, pg)
	snap := d.Snapshot()
	_ = d.Write(3, bytes.Repeat([]byte{2}, 512))
	_ = d.Write(4, bytes.Repeat([]byte{3}, 512))
	d.Restore(3, snap)
	buf := make([]byte, 512)
	_ = d.Read(3, buf)
	if buf[0] != 1 {
		t.Fatal("Restore did not bring back snapshot content")
	}
	d.Restore(4, snap) // page 4 absent at dump time
	if d.Exists(4) {
		t.Fatal("Restore of page absent from snapshot should remove it")
	}
}

func TestDiskMetaRoundTrip(t *testing.T) {
	d := NewDisk(512)
	d.WriteMeta([]byte("catalog"))
	if got := string(d.ReadMeta()); got != "catalog" {
		t.Fatalf("meta = %q", got)
	}
}

func TestDiskConcurrentAccess(t *testing.T) {
	d := NewDisk(512)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			buf := make([]byte, 512)
			for i := 0; i < 200; i++ {
				id := PageID(i % 10)
				if g%2 == 0 {
					page := bytes.Repeat([]byte{byte(g)}, 512)
					if err := d.Write(id, page); err != nil {
						done <- err
						return
					}
				} else if err := d.Read(id, buf); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if d.ReadCount() == 0 || d.WriteCount() == 0 {
		t.Fatal("I/O counters not advancing")
	}
}

func ExampleEncodeLeafCell() {
	k := Key{Val: []byte("alice"), RID: RID{Page: 12, Slot: 3}}
	cell := EncodeLeafCell(k)
	back, _ := DecodeLeafCell(cell)
	fmt.Println(back.String())
	// Output: "alice"(12.3)
}
