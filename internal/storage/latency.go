package storage

import (
	"runtime"
	"time"
)

// SpinWait charges a simulated device latency by busy-waiting, yielding
// the processor between clock checks. The simulator's latencies are tens
// to hundreds of microseconds; time.Sleep on a coarse-timer kernel rounds
// every nap up to a millisecond-plus tick, which destroys the scale
// separation between a 25µs page read and a 200µs log flush and adds
// phase-dependent jitter that can double a run's wall clock. Spinning
// keeps sub-tick precision, and concurrent waiters overlap exactly like
// independent requests on a real device queue. Callers charge latency
// only when explicitly configured (benchmarks), so the burned CPU is
// bounded by the simulated device concurrency.
func SpinWait(d time.Duration) {
	if d <= 0 {
		return
	}
	for t0 := time.Now(); time.Since(t0) < d; {
		runtime.Gosched()
	}
}
