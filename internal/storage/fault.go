package storage

import (
	"errors"
	"math/rand"
	"sync"
)

// Fault injection. ARIES/IM's correctness claims rest on a failure model —
// crashes at arbitrary points, media loss, detectably-torn page writes —
// so the simulated disk can play the adversary: a FaultInjector decides
// the fate of every page I/O under a seeded deterministic schedule. The
// upper layers are expected to degrade gracefully: transient errors are
// retried by the buffer pool, and silent corruption (torn writes, bit
// flips) is caught by the page CRC on the next read and repaired through
// media recovery.

// Typed I/O errors. Callers classify failures with errors.Is.
var (
	// ErrTransientIO reports a device error that may succeed on retry.
	ErrTransientIO = errors.New("storage: transient I/O error")
	// ErrPermanentIO reports a device error pinned to a page; it persists
	// until the page is rewritten (the "sector" is remapped by a write,
	// e.g. the one media recovery performs).
	ErrPermanentIO = errors.New("storage: permanent I/O error")
	// ErrChecksum reports that a page's content does not match its stored
	// CRC: a torn write, a bit flip, or other silent media corruption.
	ErrChecksum = errors.New("storage: page checksum mismatch")
)

// WriteFate is the outcome a FaultInjector assigns to one page write.
type WriteFate uint8

const (
	// WriteOK stores the page intact.
	WriteOK WriteFate = iota
	// WriteFail stores nothing and fails the write with ErrTransientIO.
	WriteFail
	// WriteTorn stores a prefix of the new page and the suffix of the old
	// page (a power-cut mid-write), and reports success: silent corruption
	// that only the page CRC can surface later.
	WriteTorn
	// WriteBitFlip stores the page with one bit flipped and reports
	// success: silent corruption caught by the page CRC.
	WriteBitFlip
)

// WriteDecision is a fate plus its parameter.
type WriteDecision struct {
	Fate WriteFate
	// Offset parameterizes the fate: for WriteTorn it is the byte index
	// where the stored page switches from new to old bytes; for
	// WriteBitFlip it is the bit index to flip.
	Offset int
}

// FaultInjector decides the fate of each disk I/O. Implementations must be
// safe for concurrent use; the Disk consults them under no lock of its own.
type FaultInjector interface {
	// ReadFault is consulted before each page read; a non-nil error fails
	// the read (typically wrapping ErrTransientIO or ErrPermanentIO).
	ReadFault(id PageID) error
	// WriteFault is consulted before each page write and picks its fate.
	WriteFault(id PageID, pageSize int) WriteDecision
}

// FaultConfig parameterizes the seeded Faults injector. All probabilities
// are per-operation in [0,1].
type FaultConfig struct {
	// Seed makes the fault schedule deterministic.
	Seed int64
	// ReadErrorProb injects transient read errors.
	ReadErrorProb float64
	// WriteErrorProb injects clean transient write failures.
	WriteErrorProb float64
	// TornWriteProb injects torn page writes (silent corruption).
	TornWriteProb float64
	// BitFlipProb injects one-bit corruption on writes (silent).
	BitFlipProb float64
	// MaxConsecutive caps consecutive injected faults (reads and writes
	// counted separately) so capped retry loops always converge; after the
	// cap, the next operation is forced to succeed. Default 2.
	MaxConsecutive int
}

// Faults is a seeded, deterministic FaultInjector with bounded adversity:
// it never injects more than MaxConsecutive faults in a row, so the buffer
// pool's capped retries are guaranteed to make progress.
type Faults struct {
	mu          sync.Mutex
	cfg         FaultConfig
	rng         *rand.Rand
	consecRead  int
	consecWrite int
	permanent   map[PageID]bool

	readFaults  uint64
	writeFaults uint64
	tornWrites  uint64
	bitFlips    uint64
}

// NewFaults creates an injector for cfg.
func NewFaults(cfg FaultConfig) *Faults {
	if cfg.MaxConsecutive <= 0 {
		cfg.MaxConsecutive = 2
	}
	return &Faults{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		permanent: make(map[PageID]bool),
	}
}

// FailPagePermanently marks a page so every read of it fails with
// ErrPermanentIO until the page is rewritten (any write remaps it).
func (f *Faults) FailPagePermanently(id PageID) {
	f.mu.Lock()
	f.permanent[id] = true
	f.mu.Unlock()
}

// ReadFault implements FaultInjector.
func (f *Faults) ReadFault(id PageID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.permanent[id] {
		f.readFaults++
		return ErrPermanentIO
	}
	if f.consecRead >= f.cfg.MaxConsecutive {
		f.consecRead = 0
		return nil
	}
	if f.rng.Float64() < f.cfg.ReadErrorProb {
		f.consecRead++
		f.readFaults++
		return ErrTransientIO
	}
	f.consecRead = 0
	return nil
}

// WriteFault implements FaultInjector. A write to a permanently failed
// page remaps it (subsequent reads succeed), mirroring sector remapping.
func (f *Faults) WriteFault(id PageID, pageSize int) WriteDecision {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.permanent, id)
	if f.consecWrite >= f.cfg.MaxConsecutive {
		f.consecWrite = 0
		return WriteDecision{Fate: WriteOK}
	}
	r := f.rng.Float64()
	switch {
	case r < f.cfg.WriteErrorProb:
		f.consecWrite++
		f.writeFaults++
		return WriteDecision{Fate: WriteFail}
	case r < f.cfg.WriteErrorProb+f.cfg.TornWriteProb:
		f.consecWrite++
		f.tornWrites++
		// Tear strictly inside the page so old and new actually mix.
		off := 8 + f.rng.Intn(pageSize-16)
		return WriteDecision{Fate: WriteTorn, Offset: off}
	case r < f.cfg.WriteErrorProb+f.cfg.TornWriteProb+f.cfg.BitFlipProb:
		f.consecWrite++
		f.bitFlips++
		return WriteDecision{Fate: WriteBitFlip, Offset: f.rng.Intn(pageSize * 8)}
	}
	f.consecWrite = 0
	return WriteDecision{Fate: WriteOK}
}

// FaultCounts summarizes what the injector has done so far.
type FaultCounts struct {
	ReadFaults  uint64
	WriteFaults uint64
	TornWrites  uint64
	BitFlips    uint64
}

// Counts returns the injected-fault totals.
func (f *Faults) Counts() FaultCounts {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FaultCounts{
		ReadFaults:  f.readFaults,
		WriteFaults: f.writeFaults,
		TornWrites:  f.tornWrites,
		BitFlips:    f.bitFlips,
	}
}
