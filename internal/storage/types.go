// Package storage implements the byte-level storage substrate of ariesim:
// page identifiers, record identifiers, index keys, slotted pages with the
// ARIES/IM page header (page_LSN, SM_Bit, Delete_Bit, level, sibling
// chains), a free-space-map codec, and a simulated crash-safe disk.
//
// Everything above this package manipulates pages only through the logged
// operations of the index and record managers; this package provides the
// raw mechanics those operations are built from.
package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// PageID identifies a page on the disk. Page 0 is never allocated and acts
// as the nil page ID; page 1 is the engine's free-space map.
type PageID uint32

// InvalidPageID is the nil page reference (chain terminators, no-child).
const InvalidPageID PageID = 0

// FSMPageID is the fixed location of the free-space-map page.
const FSMPageID PageID = 1

// FirstAllocatablePageID is the first page ID handed out by the FSM.
const FirstAllocatablePageID PageID = 2

// RID identifies a record in a data page: (data page, stable slot number).
// Under ARIES/IM data-only locking, the lock name of an index key is the
// RID embedded in the key — locking the key locks the record.
type RID struct {
	Page PageID
	Slot uint16
}

// NilRID is the zero RID, used for keys that carry no record reference
// (search boundary probes).
var NilRID = RID{}

// Compare orders RIDs by (page, slot).
func (r RID) Compare(o RID) int {
	switch {
	case r.Page < o.Page:
		return -1
	case r.Page > o.Page:
		return 1
	case r.Slot < o.Slot:
		return -1
	case r.Slot > o.Slot:
		return 1
	default:
		return 0
	}
}

func (r RID) String() string { return fmt.Sprintf("(%d.%d)", r.Page, r.Slot) }

// Key is a full index key as defined in the paper §1.1: a key value plus
// the RID of the record containing that value. In a nonunique index
// duplicate values are ordered by RID, making every full key distinct.
type Key struct {
	Val []byte
	RID RID
}

// Compare orders keys by value, breaking ties by RID.
func (k Key) Compare(o Key) int {
	if c := bytes.Compare(k.Val, o.Val); c != 0 {
		return c
	}
	return k.RID.Compare(o.RID)
}

// Clone deep-copies the key so callers may retain it after the source page
// is unlatched.
func (k Key) Clone() Key {
	v := make([]byte, len(k.Val))
	copy(v, k.Val)
	return Key{Val: v, RID: k.RID}
}

func (k Key) String() string { return fmt.Sprintf("%q%s", k.Val, k.RID) }

// MinKeyFor returns the smallest possible full key for a value: the probe
// used to position at the first instance of a (possibly duplicated) value.
func MinKeyFor(val []byte) Key { return Key{Val: val, RID: RID{}} }

// MaxKeyFor returns the largest possible full key for a value: the probe
// used to position strictly past every instance of a value.
func MaxKeyFor(val []byte) Key {
	return Key{Val: val, RID: RID{Page: PageID(^uint32(0)), Slot: ^uint16(0)}}
}

// Leaf and nonleaf index cell codecs. A leaf cell is a full key; a nonleaf
// cell is a full (high) key plus the child page it bounds. Both are stored
// as slotted-page cell payloads.
//
//	leaf:    u16 valLen | val | u32 ridPage | u16 ridSlot
//	nonleaf: u16 valLen | val | u32 ridPage | u16 ridSlot | u32 child

const leafCellOverhead = 2 + 4 + 2
const nodeCellOverhead = leafCellOverhead + 4

// EncodeLeafCell serializes a leaf index cell.
func EncodeLeafCell(k Key) []byte {
	b := make([]byte, leafCellOverhead+len(k.Val))
	binary.LittleEndian.PutUint16(b[0:2], uint16(len(k.Val)))
	copy(b[2:], k.Val)
	off := 2 + len(k.Val)
	binary.LittleEndian.PutUint32(b[off:off+4], uint32(k.RID.Page))
	binary.LittleEndian.PutUint16(b[off+4:off+6], k.RID.Slot)
	return b
}

// DecodeLeafCell parses a leaf index cell. The returned key aliases the
// cell buffer; callers holding it past unlatch must Clone.
func DecodeLeafCell(b []byte) (Key, error) {
	if len(b) < leafCellOverhead {
		return Key{}, fmt.Errorf("storage: leaf cell too short (%d bytes)", len(b))
	}
	vl := int(binary.LittleEndian.Uint16(b[0:2]))
	if len(b) < leafCellOverhead+vl {
		return Key{}, fmt.Errorf("storage: leaf cell truncated (valLen=%d, have %d)", vl, len(b))
	}
	off := 2 + vl
	return Key{
		Val: b[2:off:off],
		RID: RID{
			Page: PageID(binary.LittleEndian.Uint32(b[off : off+4])),
			Slot: binary.LittleEndian.Uint16(b[off+4 : off+6]),
		},
	}, nil
}

// EncodeNodeCell serializes a nonleaf index cell: high key + child pointer.
// Per the paper §1.1 the high key bounds the child strictly from above.
func EncodeNodeCell(high Key, child PageID) []byte {
	b := make([]byte, nodeCellOverhead+len(high.Val))
	binary.LittleEndian.PutUint16(b[0:2], uint16(len(high.Val)))
	copy(b[2:], high.Val)
	off := 2 + len(high.Val)
	binary.LittleEndian.PutUint32(b[off:off+4], uint32(high.RID.Page))
	binary.LittleEndian.PutUint16(b[off+4:off+6], high.RID.Slot)
	binary.LittleEndian.PutUint32(b[off+6:off+10], uint32(child))
	return b
}

// DecodeNodeCell parses a nonleaf index cell.
func DecodeNodeCell(b []byte) (Key, PageID, error) {
	if len(b) < nodeCellOverhead {
		return Key{}, 0, fmt.Errorf("storage: node cell too short (%d bytes)", len(b))
	}
	vl := int(binary.LittleEndian.Uint16(b[0:2]))
	if len(b) < nodeCellOverhead+vl {
		return Key{}, 0, fmt.Errorf("storage: node cell truncated (valLen=%d, have %d)", vl, len(b))
	}
	off := 2 + vl
	k := Key{
		Val: b[2:off:off],
		RID: RID{
			Page: PageID(binary.LittleEndian.Uint32(b[off : off+4])),
			Slot: binary.LittleEndian.Uint16(b[off+4 : off+6]),
		},
	}
	return k, PageID(binary.LittleEndian.Uint32(b[off+6 : off+10])), nil
}

// LeafCellSize returns the stored size of a leaf cell for key k, excluding
// the slot-directory entry.
func LeafCellSize(k Key) int { return leafCellOverhead + len(k.Val) }

// NodeCellSize returns the stored size of a nonleaf cell for high key k.
func NodeCellSize(k Key) int { return nodeCellOverhead + len(k.Val) }
