package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Disk simulates the stable storage a database rides on. It is the half of
// the system that survives a crash: the buffer pool, lock table, and
// transaction table are volatile, while Disk pages and the forced log
// prefix persist.
//
// Semantics modeled on real disks:
//   - every stored page carries a CRC32-C stamped at write time and verified
//     at read time, so torn writes and bit flips are detected (ErrChecksum)
//     rather than served as valid data,
//   - reading a never-written page returns zeroes (a freshly extended file),
//   - a page can be deliberately corrupted to exercise media recovery,
//   - an optional FaultInjector can fail reads/writes (transient or
//     permanent), tear a write (prefix of new + suffix of old bytes), or
//     flip a bit — all under a seeded deterministic schedule.
type Disk struct {
	mu       sync.RWMutex
	pageSize int
	pages    map[PageID][]byte
	meta     []byte
	inj      FaultInjector

	reads       atomic.Uint64
	writes      atomic.Uint64
	readErrors  atomic.Uint64
	writeErrors atomic.Uint64
	checksumErr atomic.Uint64

	ioDelay atomic.Int64 // simulated per-page device latency, ns
}

// NewDisk creates an empty disk with the given page size.
func NewDisk(pageSize int) *Disk {
	if pageSize < headerSize+64 || pageSize > MaxPageSize {
		panic(fmt.Sprintf("storage: invalid disk page size %d", pageSize))
	}
	return &Disk{pageSize: pageSize, pages: make(map[PageID][]byte)}
}

// PageSize returns the disk's page size.
func (d *Disk) PageSize() int { return d.pageSize }

// SetIODelay charges a simulated device latency on every page read and
// write (default 0, so tier-1 tests stay instantaneous). The sleep happens
// outside the disk's internal lock: concurrent I/Os to different pages
// overlap, exactly like independent requests on a real device queue —
// which is what makes serialized-I/O designs measurably slow.
func (d *Disk) SetIODelay(delay time.Duration) { d.ioDelay.Store(int64(delay)) }

// IODelay returns the configured per-page device latency.
func (d *Disk) IODelay() time.Duration { return time.Duration(d.ioDelay.Load()) }

func (d *Disk) sleepIO() {
	if ns := d.ioDelay.Load(); ns > 0 {
		SpinWait(time.Duration(ns))
	}
}

// SetInjector installs (or, with nil, removes) a fault injector. Faults
// apply only to page reads and writes, not to meta or snapshot access.
func (d *Disk) SetInjector(inj FaultInjector) {
	d.mu.Lock()
	d.inj = inj
	d.mu.Unlock()
}

func (d *Disk) injector() FaultInjector {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.inj
}

// Injector returns the installed fault injector (nil when none). The
// engine uses it to carry the fault schedule onto the successor disk when
// a crash orphans the current one.
func (d *Disk) Injector() FaultInjector { return d.injector() }

// Read copies page id into buf (which must be pageSize long). A page that
// was never written reads as zeroes. Reads verify the page checksum and
// fail with ErrChecksum on a mismatch; an installed injector may also fail
// the read with ErrTransientIO or ErrPermanentIO.
func (d *Disk) Read(id PageID, buf []byte) error {
	if len(buf) != d.pageSize {
		return fmt.Errorf("storage: read buffer is %d bytes, want %d", len(buf), d.pageSize)
	}
	d.reads.Add(1)
	d.sleepIO()
	if inj := d.injector(); inj != nil {
		if err := inj.ReadFault(id); err != nil {
			d.readErrors.Add(1)
			return fmt.Errorf("%w (page %d)", err, id)
		}
	}
	d.mu.RLock()
	src, ok := d.pages[id]
	if ok {
		copy(buf, src)
	} else {
		for i := range buf {
			buf[i] = 0
		}
	}
	d.mu.RUnlock()
	if ok && !PageFromBytes(buf).VerifyChecksum() {
		d.checksumErr.Add(1)
		return fmt.Errorf("%w (page %d)", ErrChecksum, id)
	}
	return nil
}

// Write atomically replaces page id with data, stamping the page checksum
// on the stored copy. An installed injector may fail the write cleanly
// (ErrTransientIO; nothing stored), tear it (a mix of new and old bytes is
// stored, with the new checksum — success is reported but the next read
// fails its CRC), or flip a bit (likewise silent).
func (d *Disk) Write(id PageID, data []byte) error {
	if len(data) != d.pageSize {
		return fmt.Errorf("storage: write of %d bytes, want %d", len(data), d.pageSize)
	}
	d.writes.Add(1)
	d.sleepIO()
	cp := make([]byte, len(data))
	copy(cp, data)
	PageFromBytes(cp).UpdateChecksum()
	if inj := d.injector(); inj != nil {
		dec := inj.WriteFault(id, d.pageSize)
		switch dec.Fate {
		case WriteFail:
			d.writeErrors.Add(1)
			return fmt.Errorf("%w (page %d)", ErrTransientIO, id)
		case WriteTorn:
			d.mu.Lock()
			if old, ok := d.pages[id]; ok && dec.Offset > 0 && dec.Offset < d.pageSize {
				copy(cp[dec.Offset:], old[dec.Offset:])
			}
			d.pages[id] = cp
			d.mu.Unlock()
			return nil
		case WriteBitFlip:
			if off := dec.Offset; off >= 0 && off < d.pageSize*8 {
				cp[off/8] ^= 1 << (off % 8)
			}
			d.mu.Lock()
			d.pages[id] = cp
			d.mu.Unlock()
			return nil
		}
	}
	d.mu.Lock()
	d.pages[id] = cp
	d.mu.Unlock()
	return nil
}

// Exists reports whether the page was ever written.
func (d *Disk) Exists(id PageID) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.pages[id]
	return ok
}

// Corrupt destroys a page, simulating a media failure on it. Subsequent
// reads return zeroes until media recovery rewrites the page.
func (d *Disk) Corrupt(id PageID) {
	d.mu.Lock()
	delete(d.pages, id)
	d.mu.Unlock()
}

// CorruptBits XORs mask into a stored byte of page id without restamping
// the checksum, planting silent corruption that the next read detects.
// It is a no-op for pages that were never written.
func (d *Disk) CorruptBits(id PageID, off int, mask byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if b, ok := d.pages[id]; ok && off >= 0 && off < len(b) {
		b[off] ^= mask
	}
}

// Snapshot deep-copies every written page: the mechanism behind fuzzy
// image copies (archive dumps) for media recovery.
func (d *Disk) Snapshot() map[PageID][]byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[PageID][]byte, len(d.pages))
	for id, b := range d.pages {
		cp := make([]byte, len(b))
		copy(cp, b)
		out[id] = cp
	}
	return out
}

// Clone deep-copies the disk (pages and meta, not the injector or
// counters). Used to fork an engine's stable state for crash-point sweeps.
func (d *Disk) Clone() *Disk {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := NewDisk(d.pageSize)
	for id, b := range d.pages {
		cp := make([]byte, len(b))
		copy(cp, b)
		out.pages[id] = cp
	}
	out.meta = make([]byte, len(d.meta))
	copy(out.meta, d.meta)
	out.ioDelay.Store(d.ioDelay.Load()) // the hardware stays slow across a crash
	return out
}

// Restore writes back a single page from a snapshot (media recovery step 1;
// step 2 is rolling the page forward from the log). The snapshot bytes are
// stored verbatim — they already carry the checksum stamped when they were
// first written, so a corrupt snapshot page stays detectable. The restore
// bypasses the fault injector: it models rewriting a remapped sector.
func (d *Disk) Restore(id PageID, snapshot map[PageID][]byte) {
	if b, ok := snapshot[id]; ok {
		cp := make([]byte, len(b))
		copy(cp, b)
		d.mu.Lock()
		d.pages[id] = cp
		d.mu.Unlock()
	} else {
		d.Corrupt(id) // page did not exist at dump time
	}
}

// WriteMeta stores the engine's catalog blob. This stands in for the host
// system's catalog/file directory; it is not part of the logged page space
// (see DESIGN.md §4, "catalog durability").
func (d *Disk) WriteMeta(b []byte) {
	cp := make([]byte, len(b))
	copy(cp, b)
	d.mu.Lock()
	d.meta = cp
	d.mu.Unlock()
}

// ReadMeta returns the catalog blob.
func (d *Disk) ReadMeta() []byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	cp := make([]byte, len(d.meta))
	copy(cp, d.meta)
	return cp
}

// NumPages returns the count of pages ever written.
func (d *Disk) NumPages() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.pages)
}

// PageIDs lists every written page (verification sweeps).
func (d *Disk) PageIDs() []PageID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ids := make([]PageID, 0, len(d.pages))
	for id := range d.pages {
		ids = append(ids, id)
	}
	return ids
}

// ReadCount reports total page reads (synchronous I/O accounting).
func (d *Disk) ReadCount() uint64 { return d.reads.Load() }

// WriteCount reports total page writes.
func (d *Disk) WriteCount() uint64 { return d.writes.Load() }

// ReadErrorCount reports reads failed by the fault injector.
func (d *Disk) ReadErrorCount() uint64 { return d.readErrors.Load() }

// WriteErrorCount reports writes failed by the fault injector.
func (d *Disk) WriteErrorCount() uint64 { return d.writeErrors.Load() }

// ChecksumErrorCount reports reads that failed page-checksum verification.
func (d *Disk) ChecksumErrorCount() uint64 { return d.checksumErr.Load() }
