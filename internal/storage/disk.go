package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Disk simulates the stable storage a database rides on. It is the half of
// the system that survives a crash: the buffer pool, lock table, and
// transaction table are volatile, while Disk pages and the forced log
// prefix persist.
//
// Semantics modeled on real disks:
//   - whole-page writes are atomic (no torn pages; ARIES assumes a page is
//     either fully written or not at all, detectable otherwise via CRCs),
//   - reading a never-written page returns zeroes (a freshly extended file),
//   - a page can be deliberately corrupted to exercise media recovery.
type Disk struct {
	mu       sync.RWMutex
	pageSize int
	pages    map[PageID][]byte
	meta     []byte

	reads  atomic.Uint64
	writes atomic.Uint64
}

// NewDisk creates an empty disk with the given page size.
func NewDisk(pageSize int) *Disk {
	if pageSize < headerSize+64 || pageSize > MaxPageSize {
		panic(fmt.Sprintf("storage: invalid disk page size %d", pageSize))
	}
	return &Disk{pageSize: pageSize, pages: make(map[PageID][]byte)}
}

// PageSize returns the disk's page size.
func (d *Disk) PageSize() int { return d.pageSize }

// Read copies page id into buf (which must be pageSize long). A page that
// was never written reads as zeroes.
func (d *Disk) Read(id PageID, buf []byte) error {
	if len(buf) != d.pageSize {
		return fmt.Errorf("storage: read buffer is %d bytes, want %d", len(buf), d.pageSize)
	}
	d.reads.Add(1)
	d.mu.RLock()
	defer d.mu.RUnlock()
	if src, ok := d.pages[id]; ok {
		copy(buf, src)
	} else {
		for i := range buf {
			buf[i] = 0
		}
	}
	return nil
}

// Write atomically replaces page id with data.
func (d *Disk) Write(id PageID, data []byte) error {
	if len(data) != d.pageSize {
		return fmt.Errorf("storage: write of %d bytes, want %d", len(data), d.pageSize)
	}
	d.writes.Add(1)
	cp := make([]byte, len(data))
	copy(cp, data)
	d.mu.Lock()
	d.pages[id] = cp
	d.mu.Unlock()
	return nil
}

// Exists reports whether the page was ever written.
func (d *Disk) Exists(id PageID) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.pages[id]
	return ok
}

// Corrupt destroys a page, simulating a media failure on it. Subsequent
// reads return zeroes until media recovery rewrites the page.
func (d *Disk) Corrupt(id PageID) {
	d.mu.Lock()
	delete(d.pages, id)
	d.mu.Unlock()
}

// Snapshot deep-copies every written page: the mechanism behind fuzzy
// image copies (archive dumps) for media recovery.
func (d *Disk) Snapshot() map[PageID][]byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[PageID][]byte, len(d.pages))
	for id, b := range d.pages {
		cp := make([]byte, len(b))
		copy(cp, b)
		out[id] = cp
	}
	return out
}

// Restore writes back a single page from a snapshot (media recovery step 1;
// step 2 is rolling the page forward from the log).
func (d *Disk) Restore(id PageID, snapshot map[PageID][]byte) {
	if b, ok := snapshot[id]; ok {
		_ = d.Write(id, b)
	} else {
		d.Corrupt(id) // page did not exist at dump time
	}
}

// WriteMeta stores the engine's catalog blob. This stands in for the host
// system's catalog/file directory; it is not part of the logged page space
// (see DESIGN.md §4, "catalog durability").
func (d *Disk) WriteMeta(b []byte) {
	cp := make([]byte, len(b))
	copy(cp, b)
	d.mu.Lock()
	d.meta = cp
	d.mu.Unlock()
}

// ReadMeta returns the catalog blob.
func (d *Disk) ReadMeta() []byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	cp := make([]byte, len(d.meta))
	copy(cp, d.meta)
	return cp
}

// NumPages returns the count of pages ever written.
func (d *Disk) NumPages() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.pages)
}

// PageIDs lists every written page (verification sweeps).
func (d *Disk) PageIDs() []PageID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ids := make([]PageID, 0, len(d.pages))
	for id := range d.pages {
		ids = append(ids, id)
	}
	return ids
}

// ReadCount reports total page reads (synchronous I/O accounting).
func (d *Disk) ReadCount() uint64 { return d.reads.Load() }

// WriteCount reports total page writes.
func (d *Disk) WriteCount() uint64 { return d.writes.Load() }
