package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// PageType distinguishes the on-disk page kinds.
type PageType uint8

const (
	PageTypeFree  PageType = 0 // never-written or deallocated page
	PageTypeIndex PageType = 1
	PageTypeData  PageType = 2
	PageTypeFSM   PageType = 3
)

func (t PageType) String() string {
	switch t {
	case PageTypeFree:
		return "free"
	case PageTypeIndex:
		return "index"
	case PageTypeData:
		return "data"
	case PageTypeFSM:
		return "fsm"
	default:
		return fmt.Sprintf("type%d", uint8(t))
	}
}

// Page flag bits (paper §2.1, §3). SM_Bit warns traversers that the page
// participated in a structure modification operation that may not have
// completed; Delete_Bit records that a key delete freed space on a leaf and
// forces a point of structural consistency before that space is consumed.
const (
	FlagSMBit     uint8 = 0x01
	FlagDeleteBit uint8 = 0x02
)

// Page header layout. Every page carries a page_LSN as required by ARIES:
// the LSN of the log record describing the most recent update to the page.
// The checksum covers the whole page except the checksum field itself; it is
// stamped by the disk at write time and verified at read time, making torn
// writes and bit flips detectable (ARIES' "detectable via CRCs" assumption).
const (
	offPageID    = 0  // u32
	offPageLSN   = 4  // u64
	offType      = 12 // u8
	offFlags     = 13 // u8
	offLevel     = 14 // u8 (0 = leaf)
	offNSlots    = 16 // u16
	offCellStart = 18 // u16: lowest byte offset occupied by cell content
	offPrev      = 20 // u32: left sibling (leaf chain)
	offNext      = 24 // u32: right sibling (leaf chain)
	offRightmost = 28 // u32: rightmost child (nonleaf only)
	offGarbage   = 32 // u16: dead cell bytes reclaimable by compaction
	offChecksum  = 36 // u32: CRC32-C of the page excluding this field
	headerSize   = 40
)

// freeSlotMarker flags a stable-slot directory entry whose record was
// removed; the slot number stays valid for reuse so RIDs remain stable.
const freeSlotMarker uint16 = 0xFFFF

// MaxPageSize bounds page sizes so offsets fit in the u16 header fields.
const MaxPageSize = 32 * 1024

// DefaultPageSize matches the common 4 KiB database page.
const DefaultPageSize = 4096

// ErrPageFull reports that a cell does not fit even after compaction; the
// caller must run a structure modification operation (page split).
var ErrPageFull = errors.New("storage: page full")

// ErrBadSlot reports an out-of-range or freed slot reference.
var ErrBadSlot = errors.New("storage: bad slot")

// Page is a fixed-size byte buffer with slotted-page accessors. Index pages
// use dense slots (positions shift on insert/delete, keeping cells sorted);
// data pages use stable slots (slot numbers survive removals so RIDs stay
// valid). Physical consistency of a Page is the caller's responsibility and
// is provided by page latches in the buffer pool.
type Page struct {
	b []byte
}

// NewPage allocates a zeroed page buffer of the given size.
func NewPage(size int) *Page {
	if size < headerSize+64 || size > MaxPageSize {
		panic(fmt.Sprintf("storage: invalid page size %d", size))
	}
	return &Page{b: make([]byte, size)}
}

// PageFromBytes wraps an existing buffer (e.g. read from disk) as a Page.
// The buffer is aliased, not copied.
func PageFromBytes(b []byte) *Page { return &Page{b: b} }

// Bytes exposes the raw page buffer (for disk writes and physical logging).
func (p *Page) Bytes() []byte { return p.b }

// Size returns the page size in bytes.
func (p *Page) Size() int { return len(p.b) }

// Clone deep-copies the page.
func (p *Page) Clone() *Page {
	b := make([]byte, len(p.b))
	copy(b, p.b)
	return &Page{b: b}
}

// Format initializes the header for a fresh page of the given type. All
// slots are cleared and the cell area reset.
func (p *Page) Format(id PageID, typ PageType, level uint8) {
	for i := range p.b {
		p.b[i] = 0
	}
	p.setU32(offPageID, uint32(id))
	p.b[offType] = uint8(typ)
	p.b[offLevel] = level
	p.setU16(offCellStart, uint16(len(p.b)))
}

func (p *Page) u16(off int) uint16       { return binary.LittleEndian.Uint16(p.b[off:]) }
func (p *Page) u32(off int) uint32       { return binary.LittleEndian.Uint32(p.b[off:]) }
func (p *Page) u64(off int) uint64       { return binary.LittleEndian.Uint64(p.b[off:]) }
func (p *Page) setU16(off int, v uint16) { binary.LittleEndian.PutUint16(p.b[off:], v) }
func (p *Page) setU32(off int, v uint32) { binary.LittleEndian.PutUint32(p.b[off:], v) }
func (p *Page) setU64(off int, v uint64) { binary.LittleEndian.PutUint64(p.b[off:], v) }

// ID returns the page's own ID as recorded in its header.
func (p *Page) ID() PageID { return PageID(p.u32(offPageID)) }

// LSN returns the page_LSN: the LSN of the log record for the most recent
// update applied to this page (ARIES §"page_LSN").
func (p *Page) LSN() uint64 { return p.u64(offPageLSN) }

// SetLSN records the LSN of the update just applied.
func (p *Page) SetLSN(lsn uint64) { p.setU64(offPageLSN, lsn) }

// castagnoli is the CRC32-C polynomial table (the variant hardware-CRC
// instructions implement, and what real engines use for page checksums).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the stored page checksum.
func (p *Page) Checksum() uint32 { return p.u32(offChecksum) }

// ComputeChecksum computes the CRC32-C over the page contents, excluding
// the checksum field itself.
func (p *Page) ComputeChecksum() uint32 {
	c := crc32.Update(0, castagnoli, p.b[:offChecksum])
	return crc32.Update(c, castagnoli, p.b[offChecksum+4:])
}

// UpdateChecksum recomputes and stores the page checksum. The disk calls
// this on the copy it persists; in-memory (buffer pool) pages carry stale
// checksums, which is fine because verification happens only at the disk
// read boundary.
func (p *Page) UpdateChecksum() { p.setU32(offChecksum, p.ComputeChecksum()) }

// VerifyChecksum reports whether the stored checksum matches the contents.
func (p *Page) VerifyChecksum() bool { return p.Checksum() == p.ComputeChecksum() }

// Type returns the page type.
func (p *Page) Type() PageType { return PageType(p.b[offType]) }

// SetType changes the page type (page deallocation marks pages free).
func (p *Page) SetType(t PageType) { p.b[offType] = uint8(t) }

// Level returns the page's height in the tree; 0 means leaf.
func (p *Page) Level() uint8 { return p.b[offLevel] }

// SetLevel sets the tree level.
func (p *Page) SetLevel(l uint8) { p.b[offLevel] = l }

// IsLeaf reports whether an index page is at the leaf level.
func (p *Page) IsLeaf() bool { return p.b[offLevel] == 0 }

// SMBit reports the structure-modification warning bit (paper §2.1).
func (p *Page) SMBit() bool { return p.b[offFlags]&FlagSMBit != 0 }

// SetSMBit sets or clears the SM_Bit.
func (p *Page) SetSMBit(on bool) { p.setFlag(FlagSMBit, on) }

// DeleteBit reports the freed-space warning bit (paper §3, Figure 11).
func (p *Page) DeleteBit() bool { return p.b[offFlags]&FlagDeleteBit != 0 }

// SetDeleteBit sets or clears the Delete_Bit.
func (p *Page) SetDeleteBit(on bool) { p.setFlag(FlagDeleteBit, on) }

func (p *Page) setFlag(f uint8, on bool) {
	if on {
		p.b[offFlags] |= f
	} else {
		p.b[offFlags] &^= f
	}
}

// Flags returns the raw flag byte (for physical logging of flag state).
func (p *Page) Flags() uint8 { return p.b[offFlags] }

// SetFlags overwrites the raw flag byte.
func (p *Page) SetFlags(f uint8) { p.b[offFlags] = f }

// Prev returns the left sibling in the doubly linked leaf chain.
func (p *Page) Prev() PageID { return PageID(p.u32(offPrev)) }

// SetPrev links the left sibling.
func (p *Page) SetPrev(id PageID) { p.setU32(offPrev, uint32(id)) }

// Next returns the right sibling in the doubly linked leaf chain.
func (p *Page) Next() PageID { return PageID(p.u32(offNext)) }

// SetNext links the right sibling.
func (p *Page) SetNext(id PageID) { p.setU32(offNext, uint32(id)) }

// Rightmost returns a nonleaf page's rightmost child: the one child that
// has no associated high key (paper §1.1).
func (p *Page) Rightmost() PageID { return PageID(p.u32(offRightmost)) }

// SetRightmost sets the rightmost child pointer.
func (p *Page) SetRightmost(id PageID) { p.setU32(offRightmost, uint32(id)) }

// NSlots returns the number of slot-directory entries, including freed
// stable slots.
func (p *Page) NSlots() int { return int(p.u16(offNSlots)) }

func (p *Page) setNSlots(n int) { p.setU16(offNSlots, uint16(n)) }

func (p *Page) cellStart() int     { return int(p.u16(offCellStart)) }
func (p *Page) setCellStart(v int) { p.setU16(offCellStart, uint16(v)) }

func (p *Page) garbage() int     { return int(p.u16(offGarbage)) }
func (p *Page) setGarbage(v int) { p.setU16(offGarbage, uint16(v)) }

func (p *Page) slotOff(i int) int { return headerSize + 2*i }

func (p *Page) slot(i int) uint16       { return p.u16(p.slotOff(i)) }
func (p *Page) setSlot(i int, v uint16) { p.setU16(p.slotOff(i), v) }

// contiguous returns the free bytes between the end of the slot directory
// and the lowest cell.
func (p *Page) contiguous() int {
	return p.cellStart() - (headerSize + 2*p.NSlots())
}

// FreeSpace returns the bytes reclaimable for new cells assuming one new
// slot-directory entry: contiguous space plus compactable garbage, minus
// the slot entry itself.
func (p *Page) FreeSpace() int {
	f := p.contiguous() + p.garbage() - 2
	if f < 0 {
		return 0
	}
	return f
}

// HasRoomFor reports whether a payload of n bytes fits (with its length
// prefix and a new slot entry), possibly after compaction.
func (p *Page) HasRoomFor(n int) bool { return p.FreeSpace() >= n+2 }

// PageCapacity returns the largest cell payload an empty page of the given
// size can hold (one slot entry and the cell length prefix accounted for).
func PageCapacity(pageSize int) int { return pageSize - headerSize - 2 - 2 }

// Cell returns the payload of slot i. ok is false for freed stable slots.
// The returned slice aliases the page buffer.
func (p *Page) Cell(i int) (payload []byte, ok bool) {
	if i < 0 || i >= p.NSlots() {
		return nil, false
	}
	off := p.slot(i)
	if off == freeSlotMarker {
		return nil, false
	}
	n := int(p.u16(int(off)))
	return p.b[int(off)+2 : int(off)+2+n], true
}

// MustCell returns slot i's payload, panicking on a bad slot. It is used
// on index pages where freed slots cannot occur.
func (p *Page) MustCell(i int) []byte {
	c, ok := p.Cell(i)
	if !ok {
		panic(fmt.Sprintf("storage: bad cell %d on page %d (nslots=%d)", i, p.ID(), p.NSlots()))
	}
	return c
}

// placeCell writes payload into the cell area and returns its offset,
// compacting first if contiguous space is insufficient. Callers must have
// verified total space with HasRoomFor (including the slot entry they are
// about to create).
func (p *Page) placeCell(payload []byte, newSlots int) (uint16, error) {
	need := len(payload) + 2
	if p.contiguous()-2*newSlots < need {
		p.compact()
		if p.contiguous()-2*newSlots < need {
			return 0, ErrPageFull
		}
	}
	off := p.cellStart() - need
	p.setU16(off, uint16(len(payload)))
	copy(p.b[off+2:], payload)
	p.setCellStart(off)
	return uint16(off), nil
}

// InsertCellAt inserts a cell at dense position i, shifting later slots up
// by one. Used by index pages, which keep cells sorted by key.
func (p *Page) InsertCellAt(i int, payload []byte) error {
	n := p.NSlots()
	if i < 0 || i > n {
		return fmt.Errorf("%w: insert at %d of %d", ErrBadSlot, i, n)
	}
	if !p.HasRoomFor(len(payload)) {
		return ErrPageFull
	}
	off, err := p.placeCell(payload, 1)
	if err != nil {
		return err
	}
	// Shift slot entries [i, n) up one position.
	copy(p.b[p.slotOff(i+1):p.slotOff(n+1)], p.b[p.slotOff(i):p.slotOff(n)])
	p.setSlot(i, off)
	p.setNSlots(n + 1)
	return nil
}

// DeleteCellAt removes the cell at dense position i, shifting later slots
// down. It returns a copy of the removed payload (needed for undo logging).
func (p *Page) DeleteCellAt(i int) ([]byte, error) {
	n := p.NSlots()
	if i < 0 || i >= n {
		return nil, fmt.Errorf("%w: delete at %d of %d", ErrBadSlot, i, n)
	}
	off := p.slot(i)
	if off == freeSlotMarker {
		return nil, fmt.Errorf("%w: delete of freed slot %d", ErrBadSlot, i)
	}
	size := int(p.u16(int(off)))
	out := make([]byte, size)
	copy(out, p.b[int(off)+2:int(off)+2+size])
	copy(p.b[p.slotOff(i):p.slotOff(n-1)], p.b[p.slotOff(i+1):p.slotOff(n)])
	p.setNSlots(n - 1)
	p.setGarbage(p.garbage() + size + 2)
	return out, nil
}

// AddCell places a cell in the first free stable slot (or a new one) and
// returns its slot number. Used by data pages: the slot number becomes part
// of the record's RID and must never change.
func (p *Page) AddCell(payload []byte) (uint16, error) {
	n := p.NSlots()
	slot := -1
	for i := 0; i < n; i++ {
		if p.slot(i) == freeSlotMarker {
			slot = i
			break
		}
	}
	newSlots := 0
	if slot == -1 {
		if !p.HasRoomFor(len(payload)) {
			return 0, ErrPageFull
		}
		slot, newSlots = n, 1
	} else if p.FreeSpace()+2 < len(payload)+2 { // reusing a slot: no new entry
		return 0, ErrPageFull
	}
	off, err := p.placeCell(payload, newSlots)
	if err != nil {
		return 0, err
	}
	if newSlots == 1 {
		p.setNSlots(n + 1)
	}
	p.setSlot(slot, off)
	return uint16(slot), nil
}

// AddCellAt places a cell in a specific stable slot, extending the slot
// directory as needed. Used by redo and undo, which must reproduce exact
// slot numbers.
func (p *Page) AddCellAt(slot uint16, payload []byte) error {
	n := p.NSlots()
	newSlots := 0
	if int(slot) >= n {
		newSlots = int(slot) + 1 - n
	} else if p.slot(int(slot)) != freeSlotMarker {
		return fmt.Errorf("%w: slot %d occupied", ErrBadSlot, slot)
	}
	off, err := p.placeCell(payload, newSlots)
	if err != nil {
		return err
	}
	for i := n; i < n+newSlots; i++ {
		p.setSlot(i, freeSlotMarker)
	}
	if newSlots > 0 {
		p.setNSlots(int(slot) + 1)
	}
	p.setSlot(int(slot), off)
	return nil
}

// RemoveCell frees a stable slot, returning a copy of its payload.
func (p *Page) RemoveCell(slot uint16) ([]byte, error) {
	if int(slot) >= p.NSlots() {
		return nil, fmt.Errorf("%w: remove of slot %d (nslots=%d)", ErrBadSlot, slot, p.NSlots())
	}
	off := p.slot(int(slot))
	if off == freeSlotMarker {
		return nil, fmt.Errorf("%w: remove of freed slot %d", ErrBadSlot, slot)
	}
	size := int(p.u16(int(off)))
	out := make([]byte, size)
	copy(out, p.b[int(off)+2:int(off)+2+size])
	p.setSlot(int(slot), freeSlotMarker)
	p.setGarbage(p.garbage() + size + 2)
	return out, nil
}

// LiveCells returns the number of non-freed slots.
func (p *Page) LiveCells() int {
	live := 0
	for i, n := 0, p.NSlots(); i < n; i++ {
		if p.slot(i) != freeSlotMarker {
			live++
		}
	}
	return live
}

// compact rewrites all live cells contiguously at the end of the page,
// reclaiming garbage. Slot numbers are preserved.
func (p *Page) compact() {
	n := p.NSlots()
	type live struct {
		slot int
		data []byte
	}
	cells := make([]live, 0, n)
	for i := 0; i < n; i++ {
		off := p.slot(i)
		if off == freeSlotMarker {
			continue
		}
		size := int(p.u16(int(off)))
		data := make([]byte, size)
		copy(data, p.b[int(off)+2:int(off)+2+size])
		cells = append(cells, live{i, data})
	}
	w := len(p.b)
	for _, c := range cells {
		w -= len(c.data) + 2
		p.setU16(w, uint16(len(c.data)))
		copy(p.b[w+2:], c.data)
		p.setSlot(c.slot, uint16(w))
	}
	p.setCellStart(w)
	p.setGarbage(0)
}

// CheckInvariants validates the structural integrity of the slotted page.
// Used by tests and the crash-torture verifier.
func (p *Page) CheckInvariants() error {
	n := p.NSlots()
	if headerSize+2*n > p.cellStart() {
		return fmt.Errorf("page %d: slot directory overlaps cell area", p.ID())
	}
	if p.cellStart() > len(p.b) {
		return fmt.Errorf("page %d: cellStart %d beyond page end", p.ID(), p.cellStart())
	}
	for i := 0; i < n; i++ {
		off := p.slot(i)
		if off == freeSlotMarker {
			continue
		}
		if int(off) < p.cellStart() || int(off)+2 > len(p.b) {
			return fmt.Errorf("page %d: slot %d offset %d outside cell area [%d,%d)", p.ID(), i, off, p.cellStart(), len(p.b))
		}
		size := int(p.u16(int(off)))
		if int(off)+2+size > len(p.b) {
			return fmt.Errorf("page %d: slot %d cell overruns page", p.ID(), i)
		}
	}
	return nil
}
