// Package data implements the record manager: data pages of records
// addressed by stable RIDs, with commit-duration record locks and logged
// insert/delete/purge operations.
//
// Deletes are "ghosted": the record stays on the page with a ghost flag so
// the delete can always be undone page-oriented (no relocation — RIDs are
// referenced by index keys and must never move). Ghosts are physically
// purged, with a redo-only log record, only when a later insert needs the
// space and the ghost's record lock is free — i.e. the deleter committed.
// This mirrors the "uncommitted delete leaves a tripping point" discipline
// the paper builds its index protocols around (§2.6), applied to data.
package data

import (
	"encoding/binary"
	"fmt"

	"ariesim/internal/storage"
)

// Ghost flag inside a data cell's leading flags byte.
const cellGhost = 0x01

// wrapRecord builds a cell payload: flags byte + record bytes.
func wrapRecord(rec []byte) []byte {
	out := make([]byte, 1+len(rec))
	copy(out[1:], rec)
	return out
}

// unwrapCell splits a cell payload into (ghost, record).
func unwrapCell(cell []byte) (bool, []byte) {
	if len(cell) == 0 {
		return false, nil
	}
	return cell[0]&cellGhost != 0, cell[1:]
}

// insertPayload is the body of OpDataInsert and of the CLR that revives a
// ghost when a delete is undone.
type insertPayload struct {
	Slot   uint16
	Record []byte
}

func (p insertPayload) encode() []byte {
	b := make([]byte, 2+len(p.Record))
	binary.LittleEndian.PutUint16(b, p.Slot)
	copy(b[2:], p.Record)
	return b
}

func decodeInsertPayload(b []byte) (insertPayload, error) {
	if len(b) < 2 {
		return insertPayload{}, fmt.Errorf("data: insert payload %d bytes", len(b))
	}
	return insertPayload{Slot: binary.LittleEndian.Uint16(b), Record: b[2:]}, nil
}

// deletePayload is the body of OpDataDelete: the slot plus the record
// image (needed to undo the ghosting and to verify redo).
type deletePayload = insertPayload

// SlotOfPayload extracts the target slot from an OpDataInsert or
// OpDataDelete payload. Online restart uses it to derive the record lock
// name — DataLockName(gran, record.Page, slot) — a loser transaction must
// reacquire before the engine reopens.
func SlotOfPayload(b []byte) (uint16, error) {
	p, err := decodeInsertPayload(b)
	if err != nil {
		return 0, err
	}
	return p.Slot, nil
}

// purgePayload is the body of OpDataPurge (redo-only physical removal).
type purgePayload struct {
	Slot uint16
}

func (p purgePayload) encode() []byte {
	b := make([]byte, 2)
	binary.LittleEndian.PutUint16(b, p.Slot)
	return b
}

func decodePurgePayload(b []byte) (purgePayload, error) {
	if len(b) != 2 {
		return purgePayload{}, fmt.Errorf("data: purge payload %d bytes", len(b))
	}
	return purgePayload{Slot: binary.LittleEndian.Uint16(b)}, nil
}

// formatPayload is the body of OpDataFormat: chain pointers for the fresh
// data page.
type formatPayload struct {
	Prev, Next storage.PageID
}

func (p formatPayload) encode() []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint32(b, uint32(p.Prev))
	binary.LittleEndian.PutUint32(b[4:], uint32(p.Next))
	return b
}

func decodeFormatPayload(b []byte) (formatPayload, error) {
	if len(b) != 8 {
		return formatPayload{}, fmt.Errorf("data: format payload %d bytes", len(b))
	}
	return formatPayload{
		Prev: storage.PageID(binary.LittleEndian.Uint32(b)),
		Next: storage.PageID(binary.LittleEndian.Uint32(b[4:])),
	}, nil
}

// chainFixPayload is the body of OpDataChainFix.
type chainFixPayload struct {
	Next bool // true: rewrite Next; false: rewrite Prev
	Old  storage.PageID
	New  storage.PageID
}

func (p chainFixPayload) encode() []byte {
	b := make([]byte, 9)
	if p.Next {
		b[0] = 1
	}
	binary.LittleEndian.PutUint32(b[1:], uint32(p.Old))
	binary.LittleEndian.PutUint32(b[5:], uint32(p.New))
	return b
}

func decodeChainFixPayload(b []byte) (chainFixPayload, error) {
	if len(b) != 9 {
		return chainFixPayload{}, fmt.Errorf("data: chain-fix payload %d bytes", len(b))
	}
	return chainFixPayload{
		Next: b[0] == 1,
		Old:  storage.PageID(binary.LittleEndian.Uint32(b[1:])),
		New:  storage.PageID(binary.LittleEndian.Uint32(b[5:])),
	}, nil
}
