package data

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"ariesim/internal/buffer"
	"ariesim/internal/lock"
	"ariesim/internal/space"
	"ariesim/internal/storage"
	"ariesim/internal/trace"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

type env struct {
	log   *wal.Log
	disk  *storage.Disk
	pool  *buffer.Pool
	locks *lock.Manager
	mgr   *txn.Manager
	dm    *Manager
	stats *trace.Stats
}

// router sends data ops to the data manager and FSM ops to space.
type router struct{ e *env }

func (r router) Undo(tx *txn.Tx, rec *wal.Record) error {
	switch rec.Op {
	case wal.OpFSMAlloc, wal.OpFSMFree:
		return space.Undo(tx, r.e.pool, rec)
	default:
		return r.e.dm.Undo(tx, rec)
	}
}

func newEnv(t *testing.T, pageSize int, gran lock.Granularity) *env {
	t.Helper()
	e := &env{stats: &trace.Stats{}}
	e.log = wal.NewLog(e.stats)
	e.disk = storage.NewDisk(pageSize)
	e.pool = buffer.NewPool(e.disk, e.log, 64, e.stats)
	e.locks = lock.NewManager(e.stats)
	e.mgr = txn.NewManager(e.log, e.locks)
	e.dm = NewManager(e.pool, gran, e.stats)
	e.mgr.SetUndoer(router{e})
	return e
}

func (e *env) createTable(t *testing.T) *Table {
	t.Helper()
	tx := e.mgr.Begin()
	tbl, err := e.dm.CreateTable(tx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestInsertFetchRoundTrip(t *testing.T) {
	e := newEnv(t, 512, lock.GranRecord)
	tbl := e.createTable(t)
	tx := e.mgr.Begin()
	rid, err := tbl.Insert(tx, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Fetch(tx, rid, false)
	if err != nil || string(got) != "hello" {
		t.Fatalf("Fetch = %q, %v", got, err)
	}
	// The inserter holds a commit-duration X lock on the RID.
	if !e.locks.HoldsAtLeast(lock.Owner(tx.ID), e.dm.LockName(rid), lock.X) {
		t.Fatal("inserted record not X-locked")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteGhostsThenFetchFails(t *testing.T) {
	e := newEnv(t, 512, lock.GranRecord)
	tbl := e.createTable(t)
	tx := e.mgr.Begin()
	rid, _ := tbl.Insert(tx, []byte("doomed"))
	_ = tx.Commit()

	tx2 := e.mgr.Begin()
	if err := tbl.Delete(tx2, rid, false); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Fetch(tx2, rid, false); !errors.Is(err, ErrNotFound) {
		t.Fatalf("fetch of deleted: %v", err)
	}
	if err := tbl.Delete(tx2, rid, false); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	_ = tx2.Commit()
}

func TestRollbackRestoresInsertAndDelete(t *testing.T) {
	e := newEnv(t, 512, lock.GranRecord)
	tbl := e.createTable(t)
	setup := e.mgr.Begin()
	keep, _ := tbl.Insert(setup, []byte("keep"))
	_ = setup.Commit()

	tx := e.mgr.Begin()
	added, _ := tbl.Insert(tx, []byte("added"))
	if err := tbl.Delete(tx, keep, false); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	check := e.mgr.Begin()
	if got, err := tbl.Fetch(check, keep, false); err != nil || string(got) != "keep" {
		t.Fatalf("deleted record not restored: %q, %v", got, err)
	}
	if _, err := tbl.Fetch(check, added, false); !errors.Is(err, ErrNotFound) {
		t.Fatalf("inserted record survived rollback: %v", err)
	}
	_ = check.Commit()
}

func TestScanAllSeesOnlyLiveRecords(t *testing.T) {
	e := newEnv(t, 512, lock.GranRecord)
	tbl := e.createTable(t)
	tx := e.mgr.Begin()
	var rids []storage.RID
	for i := 0; i < 5; i++ {
		rid, err := tbl.Insert(tx, []byte{byte('a' + i)})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	_ = tbl.Delete(tx, rids[2], true) // inserter already holds the lock
	_ = tx.Commit()
	all, err := tbl.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("ScanAll = %d records, want 4", len(all))
	}
	if _, ok := all[rids[2]]; ok {
		t.Fatal("ghost visible in scan")
	}
}

func TestTableExtensionAcrossPages(t *testing.T) {
	e := newEnv(t, 256, lock.GranRecord)
	tbl := e.createTable(t)
	tx := e.mgr.Begin()
	rec := bytes.Repeat([]byte{'r'}, 30)
	seen := map[storage.PageID]bool{}
	for i := 0; i < 40; i++ {
		rid, err := tbl.Insert(tx, rec)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		seen[rid.Page] = true
	}
	if len(seen) < 3 {
		t.Fatalf("only %d pages used; extension not exercised", len(seen))
	}
	_ = tx.Commit()
	all, _ := tbl.ScanAll()
	if len(all) != 40 {
		t.Fatalf("ScanAll = %d", len(all))
	}
}

func TestExtensionSurvivesRollback(t *testing.T) {
	// The NTA makes the new page permanent even though the extender
	// rolls back; another transaction's record on that page survives.
	e := newEnv(t, 256, lock.GranRecord)
	tbl := e.createTable(t)
	filler := e.mgr.Begin()
	rec := bytes.Repeat([]byte{'f'}, 30)
	var lastRID storage.RID
	for i := 0; i < 20; i++ {
		lastRID, _ = tbl.Insert(filler, rec)
	}
	_ = filler.Commit()

	extender := e.mgr.Begin()
	rid, err := tbl.Insert(extender, bytes.Repeat([]byte{'x'}, 100))
	if err != nil {
		t.Fatal(err)
	}
	if rid.Page == lastRID.Page {
		t.Skip("insert did not extend; adjust sizes")
	}
	// Another transaction rides on the new page.
	rider := e.mgr.Begin()
	riderRID, err := tbl.Insert(rider, []byte("rider"))
	if err != nil {
		t.Fatal(err)
	}
	_ = rider.Commit()
	if err := extender.Rollback(); err != nil {
		t.Fatal(err)
	}
	check := e.mgr.Begin()
	if got, err := tbl.Fetch(check, riderRID, false); err != nil || string(got) != "rider" {
		t.Fatalf("rider record lost: %q, %v", got, err)
	}
	if _, err := tbl.Fetch(check, rid, false); !errors.Is(err, ErrNotFound) {
		t.Fatalf("extender's record survived: %v", err)
	}
	_ = check.Commit()
	// The extension page must still be allocated (NTA completed).
	if ok, _ := space.IsAllocated(e.pool, riderRID.Page); !ok {
		t.Fatal("extension page deallocated by rollback")
	}
}

func TestGhostPurgeReclaimsSpace(t *testing.T) {
	e := newEnv(t, 256, lock.GranRecord)
	tbl := e.createTable(t)
	// Fill page 1 exactly, then delete everything and commit.
	fill := e.mgr.Begin()
	rec := bytes.Repeat([]byte{'g'}, 30)
	var rids []storage.RID
	for {
		rid, err := tbl.Insert(fill, rec)
		if err != nil {
			t.Fatal(err)
		}
		if rid.Page != tbl.FirstPage {
			break // spilled to page 2: page 1 is full
		}
		rids = append(rids, rid)
	}
	for _, rid := range rids {
		if err := tbl.Delete(fill, rid, true); err != nil {
			t.Fatal(err)
		}
	}
	_ = fill.Commit()

	// A new insert starting its walk at the head must reclaim the full
	// first page via ghost purge rather than spilling onward.
	tbl.mu.Lock()
	tbl.hint = tbl.FirstPage
	tbl.mu.Unlock()
	tx := e.mgr.Begin()
	rid, err := tbl.Insert(tx, rec)
	if err != nil {
		t.Fatal(err)
	}
	if rid.Page != tbl.FirstPage {
		t.Fatalf("insert went to page %d; ghosts not purged", rid.Page)
	}
	_ = tx.Commit()
}

func TestGhostOfUncommittedDeleteNotPurged(t *testing.T) {
	e := newEnv(t, 256, lock.GranRecord)
	tbl := e.createTable(t)
	fill := e.mgr.Begin()
	rec := bytes.Repeat([]byte{'u'}, 30)
	var rids []storage.RID
	for {
		rid, err := tbl.Insert(fill, rec)
		if err != nil {
			t.Fatal(err)
		}
		if rid.Page != tbl.FirstPage {
			break
		}
		rids = append(rids, rid)
	}
	_ = fill.Commit()

	deleter := e.mgr.Begin()
	if err := tbl.Delete(deleter, rids[0], false); err != nil {
		t.Fatal(err)
	}
	// deleter has NOT committed: its ghost must not be purged.
	other := e.mgr.Begin()
	rid, err := tbl.Insert(other, rec)
	if err != nil {
		t.Fatal(err)
	}
	if rid.Page == tbl.FirstPage {
		t.Fatal("insert consumed an uncommitted delete's space")
	}
	_ = other.Commit()
	// After the deleter rolls back, the record is intact.
	if err := deleter.Rollback(); err != nil {
		t.Fatal(err)
	}
	check := e.mgr.Begin()
	if _, err := tbl.Fetch(check, rids[0], false); err != nil {
		t.Fatalf("undone delete lost its record: %v", err)
	}
	_ = check.Commit()
}

func TestPageGranularityLocking(t *testing.T) {
	e := newEnv(t, 512, lock.GranPage)
	tbl := e.createTable(t)
	tx := e.mgr.Begin()
	rid, _ := tbl.Insert(tx, []byte("pagelocked"))
	name := e.dm.LockName(rid)
	if name.Space != lock.SpacePage {
		t.Fatalf("lock space = %v", name.Space)
	}
	// Another transaction cannot touch any record on the same page.
	other := e.mgr.Begin()
	err := e.locks.Request(lock.Owner(other.ID), name, lock.S, lock.Commit, true)
	if !errors.Is(err, lock.ErrNotGranted) {
		t.Fatalf("page lock not exclusive: %v", err)
	}
	_ = tx.Commit()
	_ = other.Commit()
}

func TestFetchWithLockTakesSLock(t *testing.T) {
	e := newEnv(t, 512, lock.GranRecord)
	tbl := e.createTable(t)
	w := e.mgr.Begin()
	rid, _ := tbl.Insert(w, []byte("x"))
	_ = w.Commit()
	r := e.mgr.Begin()
	if _, err := tbl.Fetch(r, rid, true); err != nil {
		t.Fatal(err)
	}
	if !e.locks.HoldsAtLeast(lock.Owner(r.ID), e.dm.LockName(rid), lock.S) {
		t.Fatal("locking fetch left no S lock")
	}
	_ = r.Commit()
}

func TestOversizeRecordRejected(t *testing.T) {
	e := newEnv(t, 256, lock.GranRecord)
	tbl := e.createTable(t)
	tx := e.mgr.Begin()
	if _, err := tbl.Insert(tx, bytes.Repeat([]byte{'z'}, 400)); err == nil {
		t.Fatal("oversize record accepted")
	}
	_ = tx.Rollback()
}

func TestApplyRedoReconstructsPage(t *testing.T) {
	// Run a workload, then replay its log onto virgin pages and compare
	// against the live pages — the page-oriented redo contract.
	e := newEnv(t, 512, lock.GranRecord)
	tbl := e.createTable(t)
	tx := e.mgr.Begin()
	var rids []storage.RID
	for i := 0; i < 8; i++ {
		rid, _ := tbl.Insert(tx, []byte(fmt.Sprintf("rec-%d", i)))
		rids = append(rids, rid)
	}
	_ = tbl.Delete(tx, rids[3], true)
	_ = tx.Commit()

	rebuilt := map[storage.PageID]*storage.Page{}
	for _, r := range e.log.Records(1) {
		if !r.Redoable() || r.Page == storage.FSMPageID {
			continue
		}
		p := rebuilt[r.Page]
		if p == nil {
			p = storage.NewPage(512)
			rebuilt[r.Page] = p
		}
		if err := ApplyRedo(p, r); err != nil {
			t.Fatalf("redo %s: %v", r, err)
		}
	}
	if err := e.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for id, p := range rebuilt {
		live := make([]byte, 512)
		_ = e.disk.Read(id, live)
		lp := storage.PageFromBytes(live)
		// Compare live cells (LSNs differ: replay doesn't set them).
		if lp.NSlots() != p.NSlots() || lp.LiveCells() != p.LiveCells() {
			t.Fatalf("page %d: slots %d/%d live %d/%d", id, lp.NSlots(), p.NSlots(), lp.LiveCells(), p.LiveCells())
		}
		for i := 0; i < lp.NSlots(); i++ {
			lc, lok := lp.Cell(i)
			rc, rok := p.Cell(i)
			if lok != rok || !bytes.Equal(lc, rc) {
				t.Fatalf("page %d slot %d differs after replay", id, i)
			}
		}
	}
}

func TestDataUndoErrorsOnForeignOp(t *testing.T) {
	e := newEnv(t, 512, lock.GranRecord)
	tx := e.mgr.Begin()
	err := e.dm.Undo(tx, &wal.Record{Op: wal.OpIdxInsertKey, Page: 3})
	if err == nil {
		t.Fatal("foreign op undone")
	}
	_ = tx.Rollback()
}

// benchEnv builds a minimal data-manager environment for benchmarks.
type benchT struct {
	mgr *txn.Manager
	tbl *Table
}

func benchEnv(b *testing.B) *benchT {
	b.Helper()
	e := &env{stats: &trace.Stats{}}
	e.log = wal.NewLog(e.stats)
	e.disk = storage.NewDisk(4096)
	e.pool = buffer.NewPool(e.disk, e.log, 512, e.stats)
	e.locks = lock.NewManager(e.stats)
	e.mgr = txn.NewManager(e.log, e.locks)
	e.dm = NewManager(e.pool, lock.GranRecord, e.stats)
	e.mgr.SetUndoer(router{e})
	tx := e.mgr.Begin()
	tbl, err := e.dm.CreateTable(tx, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	return &benchT{mgr: e.mgr, tbl: tbl}
}
