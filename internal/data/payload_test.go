package data

import (
	"bytes"
	"testing"

	"ariesim/internal/storage"
)

func TestInsertPayloadRoundTrip(t *testing.T) {
	p := insertPayload{Slot: 7, Record: []byte("payload-bytes")}
	got, err := decodeInsertPayload(p.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Slot != 7 || !bytes.Equal(got.Record, p.Record) {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := decodeInsertPayload([]byte{1}); err == nil {
		t.Fatal("short payload decoded")
	}
	// Empty record is legal.
	e, err := decodeInsertPayload(insertPayload{Slot: 3}.encode())
	if err != nil || e.Slot != 3 || len(e.Record) != 0 {
		t.Fatalf("empty record round trip: %+v, %v", e, err)
	}
}

func TestPurgePayloadRoundTrip(t *testing.T) {
	got, err := decodePurgePayload(purgePayload{Slot: 42}.encode())
	if err != nil || got.Slot != 42 {
		t.Fatalf("round trip: %+v, %v", got, err)
	}
	for _, bad := range [][]byte{nil, {1}, {1, 2, 3}} {
		if _, err := decodePurgePayload(bad); err == nil {
			t.Fatalf("bad purge payload %v decoded", bad)
		}
	}
}

func TestFormatPayloadRoundTrip(t *testing.T) {
	p := formatPayload{Prev: 11, Next: 22}
	got, err := decodeFormatPayload(p.encode())
	if err != nil || got != p {
		t.Fatalf("round trip: %+v, %v", got, err)
	}
	if _, err := decodeFormatPayload(make([]byte, 7)); err == nil {
		t.Fatal("short format payload decoded")
	}
}

func TestChainFixPayloadRoundTrip(t *testing.T) {
	for _, next := range []bool{true, false} {
		p := chainFixPayload{Next: next, Old: 5, New: 9}
		got, err := decodeChainFixPayload(p.encode())
		if err != nil || got != p {
			t.Fatalf("round trip: %+v, %v", got, err)
		}
	}
	if _, err := decodeChainFixPayload(make([]byte, 5)); err == nil {
		t.Fatal("short chain-fix payload decoded")
	}
}

func TestGhostCellCodec(t *testing.T) {
	cell := wrapRecord([]byte("rec"))
	ghost, rec := unwrapCell(cell)
	if ghost || string(rec) != "rec" {
		t.Fatalf("fresh cell: ghost=%v rec=%q", ghost, rec)
	}
	cell[0] |= cellGhost
	ghost, rec = unwrapCell(cell)
	if !ghost || string(rec) != "rec" {
		t.Fatalf("ghosted cell: ghost=%v rec=%q", ghost, rec)
	}
	if g, r := unwrapCell(nil); g || r != nil {
		t.Fatal("nil cell mishandled")
	}
}

func BenchmarkDataInsertDelete(b *testing.B) {
	e := struct {
		disk *storage.Disk
	}{storage.NewDisk(4096)}
	_ = e
	env := benchEnv(b)
	tbl := env.tbl
	tx := env.mgr.Begin()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rid, err := tbl.Insert(tx, []byte("benchmark-record-payload-32-bytes"))
		if err != nil {
			b.Fatal(err)
		}
		if err := tbl.Delete(tx, rid, true); err != nil {
			b.Fatal(err)
		}
		if i%1000 == 999 {
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
			tx = env.mgr.Begin()
		}
	}
	b.StopTimer()
	_ = tx.Commit()
}
