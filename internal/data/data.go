package data

import (
	"errors"
	"fmt"
	"sync"

	"ariesim/internal/buffer"
	"ariesim/internal/latch"
	"ariesim/internal/lock"
	"ariesim/internal/space"
	"ariesim/internal/storage"
	"ariesim/internal/trace"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

// ErrNotFound reports a fetch or delete of a RID that holds no live record.
var ErrNotFound = errors.New("data: record not found")

// Manager is the record manager. One Manager serves every table of an
// engine; tables are thin handles over their page chains.
type Manager struct {
	pool  *buffer.Pool
	gran  lock.Granularity
	stats *trace.Stats
}

// NewManager creates a record manager over pool using the given lock
// granularity for record locks.
func NewManager(pool *buffer.Pool, gran lock.Granularity, stats *trace.Stats) *Manager {
	return &Manager{pool: pool, gran: gran, stats: stats}
}

// Granularity returns the data lock granularity in force.
func (m *Manager) Granularity() lock.Granularity { return m.gran }

// LockName names the data lock protecting rid — the same name ARIES/IM's
// index manager uses as the key lock under data-only locking.
func (m *Manager) LockName(rid storage.RID) lock.Name {
	return lock.DataLockName(m.gran, uint64(rid.Page), rid.Slot)
}

// Table is a handle on one table's data page chain.
type Table struct {
	ID        uint64
	FirstPage storage.PageID
	m         *Manager

	mu   sync.Mutex
	hint storage.PageID // last page known to have had room
}

// CreateTable allocates and formats the first data page of a new table
// within tx. The caller persists (ID, FirstPage) in its catalog.
func (m *Manager) CreateTable(tx *txn.Tx, id uint64) (*Table, error) {
	pid, err := space.Alloc(tx, m.pool)
	if err != nil {
		return nil, err
	}
	f, err := m.pool.Fix(pid)
	if err != nil {
		return nil, err
	}
	defer m.pool.Unfix(f)
	f.Latch.Acquire(latch.X)
	defer f.Latch.Release(latch.X)
	lsn := tx.LogUpdate(pid, wal.OpDataFormat, formatPayload{}.encode(), false)
	f.Page.Format(pid, storage.PageTypeData, 0)
	f.Page.SetLSN(uint64(lsn))
	m.pool.MarkDirty(f, lsn)
	return &Table{ID: id, FirstPage: pid, m: m, hint: pid}, nil
}

// OpenTable rebinds a handle to an existing table (after restart).
func (m *Manager) OpenTable(id uint64, firstPage storage.PageID) *Table {
	return &Table{ID: id, FirstPage: firstPage, m: m, hint: firstPage}
}

func (t *Table) intentLock(tx *txn.Tx, mode lock.Mode) error {
	return tx.Lock(lock.TableName(t.ID), mode, lock.Commit, false)
}

// Insert stores rec and returns its RID, holding a commit-duration X lock
// on it. Under data-only locking this lock doubles as the lock on every
// index key that will reference the record.
func (t *Table) Insert(tx *txn.Tx, rec []byte) (storage.RID, error) {
	if err := t.intentLock(tx, lock.IX); err != nil {
		return storage.RID{}, err
	}
	if 1+len(rec) > storage.PageCapacity(t.m.pool.PageSize()) {
		return storage.RID{}, fmt.Errorf("data: record of %d bytes exceeds page capacity", len(rec))
	}
	t.mu.Lock()
	start := t.hint
	t.mu.Unlock()

	tryRun := func(from, until storage.PageID) (storage.RID, storage.PageID, error) {
		pid := from
		last := pid
		for pid != storage.InvalidPageID && pid != until {
			rid, next, err := t.tryInsertOn(tx, pid, rec)
			if err != nil || rid != (storage.RID{}) {
				return rid, pid, err
			}
			last = pid
			pid = next
		}
		return storage.RID{}, last, nil
	}

	// Phase 1: from the hint to the end of the chain.
	rid, tail, err := tryRun(start, storage.InvalidPageID)
	if err != nil {
		return storage.RID{}, err
	}
	// Phase 2: wrap to the head in case earlier pages regained space
	// (purged ghosts).
	if rid == (storage.RID{}) && start != t.FirstPage {
		rid, _, err = tryRun(t.FirstPage, start)
		if err != nil {
			return storage.RID{}, err
		}
	}
	// Phase 3: extend the table with fresh pages inside nested top
	// actions, so each page survives even if tx later rolls back (other
	// transactions may have inserted into it meanwhile).
	for attempt := 0; rid == (storage.RID{}); attempt++ {
		if attempt > 1_000_000 {
			return storage.RID{}, errors.New("data: insert livelock")
		}
		newPid, err := t.extend(tx, tail)
		if err != nil {
			return storage.RID{}, err
		}
		rid, tail, err = tryRun(newPid, storage.InvalidPageID)
		if err != nil {
			return storage.RID{}, err
		}
	}
	t.mu.Lock()
	t.hint = rid.Page
	t.mu.Unlock()
	return rid, nil
}

// tryInsertOn attempts the insert on page pid. It returns the RID on
// success; a zero RID with next set means "advance to next page"; a zero
// RID with next == InvalidPageID means the chain ended.
func (t *Table) tryInsertOn(tx *txn.Tx, pid storage.PageID, rec []byte) (storage.RID, storage.PageID, error) {
	cell := wrapRecord(rec)
	for {
		f, err := t.m.pool.Fix(pid)
		if err != nil {
			return storage.RID{}, 0, err
		}
		f.Latch.Acquire(latch.X)
		if !f.Page.HasRoomFor(len(cell)) {
			t.purgeGhosts(tx, f)
		}
		if !f.Page.HasRoomFor(len(cell)) {
			next := f.Page.Next()
			f.Latch.Release(latch.X)
			t.m.pool.Unfix(f)
			return storage.RID{}, next, nil
		}
		slot := t.freeSlot(f.Page)
		rid := storage.RID{Page: pid, Slot: slot}
		name := t.m.LockName(rid)
		// Lock the new record conditionally while holding the latch; on
		// denial (a rare reused slot whose old lock lingers), fall back to
		// the unconditional protocol: unlatch, wait, revalidate.
		if err := tx.Lock(name, lock.X, lock.Commit, true); err != nil {
			f.Latch.Release(latch.X)
			t.m.pool.Unfix(f)
			if err := tx.Lock(name, lock.X, lock.Commit, false); err != nil {
				return storage.RID{}, 0, err
			}
			// Revalidate from scratch; the page may have changed shape.
			continue
		}
		lsn := tx.LogUpdate(pid, wal.OpDataInsert, insertPayload{Slot: slot, Record: rec}.encode(), false)
		if err := f.Page.AddCellAt(slot, cell); err != nil {
			f.Latch.Release(latch.X)
			t.m.pool.Unfix(f)
			return storage.RID{}, 0, fmt.Errorf("data: insert apply on page %d slot %d: %w", pid, slot, err)
		}
		f.Page.SetLSN(uint64(lsn))
		t.m.pool.MarkDirty(f, lsn)
		f.Latch.Release(latch.X)
		t.m.pool.Unfix(f)
		return rid, 0, nil
	}
}

// freeSlot picks the insertion slot: the first freed stable slot, or a new
// one at the end of the directory.
func (t *Table) freeSlot(p *storage.Page) uint16 {
	n := p.NSlots()
	for i := 0; i < n; i++ {
		if _, ok := p.Cell(i); !ok {
			return uint16(i)
		}
	}
	return uint16(n)
}

// purgeGhosts physically removes ghost records whose locks are free — the
// deleter committed, so the space is reclaimable. Purges are logged
// redo-only: they are never undone.
func (t *Table) purgeGhosts(tx *txn.Tx, f *buffer.Frame) {
	for i := 0; i < f.Page.NSlots(); i++ {
		cell, ok := f.Page.Cell(i)
		if !ok {
			continue
		}
		ghost, _ := unwrapCell(cell)
		if !ghost {
			continue
		}
		rid := storage.RID{Page: f.ID(), Slot: uint16(i)}
		name := t.m.LockName(rid)
		// Skip our own uncommitted deletes.
		if tx.HoldsLock(name) {
			continue
		}
		// An instant conditional X grant proves no one holds the lock.
		if err := tx.Lock(name, lock.X, lock.Instant, true); err != nil {
			continue
		}
		lsn := tx.LogUpdate(f.ID(), wal.OpDataPurge, purgePayload{Slot: uint16(i)}.encode(), true)
		if _, err := f.Page.RemoveCell(uint16(i)); err != nil {
			panic(fmt.Sprintf("data: purge of verified ghost failed: %v", err))
		}
		f.Page.SetLSN(uint64(lsn))
		t.m.pool.MarkDirty(f, lsn)
	}
}

// extend appends a fresh data page after tail inside a nested top action.
func (t *Table) extend(tx *txn.Tx, tail storage.PageID) (storage.PageID, error) {
	tok := tx.BeginNTA()
	pid, err := space.Alloc(tx, t.m.pool)
	if err != nil {
		return 0, err
	}
	nf, err := t.m.pool.Fix(pid)
	if err != nil {
		return 0, err
	}
	nf.Latch.Acquire(latch.X)
	lsn := tx.LogUpdate(pid, wal.OpDataFormat, formatPayload{Prev: tail}.encode(), false)
	nf.Page.Format(pid, storage.PageTypeData, 0)
	nf.Page.SetPrev(tail)
	nf.Page.SetLSN(uint64(lsn))
	t.m.pool.MarkDirty(nf, lsn)
	nf.Latch.Release(latch.X)
	t.m.pool.Unfix(nf)

	tf, err := t.m.pool.Fix(tail)
	if err != nil {
		return 0, err
	}
	tf.Latch.Acquire(latch.X)
	if tf.Page.Next() != storage.InvalidPageID {
		// Another transaction extended concurrently; free ours and use theirs.
		next := tf.Page.Next()
		tf.Latch.Release(latch.X)
		t.m.pool.Unfix(tf)
		if err := space.Free(tx, t.m.pool, pid); err != nil {
			return 0, err
		}
		tx.EndNTA(tok)
		return next, nil
	}
	lsn = tx.LogUpdate(tail, wal.OpDataChainFix,
		chainFixPayload{Next: true, Old: storage.InvalidPageID, New: pid}.encode(), false)
	tf.Page.SetNext(pid)
	tf.Page.SetLSN(uint64(lsn))
	t.m.pool.MarkDirty(tf, lsn)
	tf.Latch.Release(latch.X)
	t.m.pool.Unfix(tf)
	tx.EndNTA(tok)
	return pid, nil
}

// Delete ghosts the record at rid. If locked is false the record X lock is
// acquired here; the index manager passes true when the lock is already
// held (data-only locking acquires it once per record operation).
func (t *Table) Delete(tx *txn.Tx, rid storage.RID, locked bool) error {
	if err := t.intentLock(tx, lock.IX); err != nil {
		return err
	}
	if !locked {
		if err := tx.Lock(t.m.LockName(rid), lock.X, lock.Commit, false); err != nil {
			return err
		}
	}
	f, err := t.m.pool.Fix(rid.Page)
	if err != nil {
		return err
	}
	defer t.m.pool.Unfix(f)
	f.Latch.Acquire(latch.X)
	defer f.Latch.Release(latch.X)
	cell, ok := f.Page.Cell(int(rid.Slot))
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, rid)
	}
	ghost, rec := unwrapCell(cell)
	if ghost {
		return fmt.Errorf("%w: %s (already deleted)", ErrNotFound, rid)
	}
	recCopy := append([]byte(nil), rec...)
	lsn := tx.LogUpdate(rid.Page, wal.OpDataDelete, deletePayload{Slot: rid.Slot, Record: recCopy}.encode(), false)
	cell[0] |= cellGhost
	f.Page.SetLSN(uint64(lsn))
	t.m.pool.MarkDirty(f, lsn)
	return nil
}

// Fetch returns the record at rid. With lockIt the caller gets a
// commit-duration S lock first (standalone reads); the index fetch path
// passes false because ARIES/IM's index manager has already locked the key
// (= the record) during the index access (paper §2.1).
func (t *Table) Fetch(tx *txn.Tx, rid storage.RID, lockIt bool) ([]byte, error) {
	if err := t.intentLock(tx, lock.IS); err != nil {
		return nil, err
	}
	if lockIt {
		if err := tx.Lock(t.m.LockName(rid), lock.S, lock.Commit, false); err != nil {
			return nil, err
		}
	}
	f, err := t.m.pool.Fix(rid.Page)
	if err != nil {
		return nil, err
	}
	defer t.m.pool.Unfix(f)
	f.Latch.Acquire(latch.S)
	defer f.Latch.Release(latch.S)
	cell, ok := f.Page.Cell(int(rid.Slot))
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, rid)
	}
	ghost, rec := unwrapCell(cell)
	if ghost {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, rid)
	}
	return append([]byte(nil), rec...), nil
}

// FetchNoLock reads the record at rid with latches only: no intent lock,
// no record lock, no transaction. Snapshot readers call it after the
// index positioned them; ghost records are reported (not skipped) so the
// caller can distinguish "deleted on the page" from "missing slot" when
// it consults the version store. A missing or reused slot returns
// ok=false rather than an error — on the lock-free path that is a benign
// race with a purge, resolved by the caller's chain re-check.
func (t *Table) FetchNoLock(rid storage.RID) (rec []byte, ghost, ok bool, err error) {
	f, err := t.m.pool.Fix(rid.Page)
	if err != nil {
		return nil, false, false, err
	}
	defer t.m.pool.Unfix(f)
	f.Latch.Acquire(latch.S)
	defer f.Latch.Release(latch.S)
	if f.Page.Type() != storage.PageTypeData {
		return nil, false, false, nil
	}
	cell, present := f.Page.Cell(int(rid.Slot))
	if !present {
		return nil, false, false, nil
	}
	g, raw := unwrapCell(cell)
	if g {
		return nil, true, true, nil
	}
	return append([]byte(nil), raw...), false, true, nil
}

// ScanAll returns every live record in the table, bypassing locking: the
// verification sweep used by tests and the crash tool on a quiesced engine.
func (t *Table) ScanAll() (map[storage.RID][]byte, error) {
	out := make(map[storage.RID][]byte)
	pid := t.FirstPage
	for pid != storage.InvalidPageID {
		f, err := t.m.pool.Fix(pid)
		if err != nil {
			return nil, err
		}
		f.Latch.Acquire(latch.S)
		for i := 0; i < f.Page.NSlots(); i++ {
			cell, ok := f.Page.Cell(i)
			if !ok {
				continue
			}
			if ghost, rec := unwrapCell(cell); !ghost {
				out[storage.RID{Page: pid, Slot: uint16(i)}] = append([]byte(nil), rec...)
			}
		}
		next := f.Page.Next()
		f.Latch.Release(latch.S)
		t.m.pool.Unfix(f)
		pid = next
	}
	return out, nil
}

// ApplyRedo reapplies a data-manager log record to the page during the
// redo pass. The caller holds the page exclusively and has already decided
// by LSN comparison that the record is missing from the page.
func ApplyRedo(p *storage.Page, rec *wal.Record) error {
	switch rec.Op {
	case wal.OpDataFormat:
		pl, err := decodeFormatPayload(rec.Payload)
		if err != nil {
			return err
		}
		p.Format(rec.Page, storage.PageTypeData, 0)
		p.SetPrev(pl.Prev)
		p.SetNext(pl.Next)
		return nil
	case wal.OpDataInsert:
		pl, err := decodeInsertPayload(rec.Payload)
		if err != nil {
			return err
		}
		if cell, ok := p.Cell(int(pl.Slot)); ok {
			// Reviving a ghost (CLR of a delete).
			cell[0] &^= cellGhost
			return nil
		}
		return p.AddCellAt(pl.Slot, wrapRecord(pl.Record))
	case wal.OpDataDelete:
		pl, err := decodeInsertPayload(rec.Payload)
		if err != nil {
			return err
		}
		cell, ok := p.Cell(int(pl.Slot))
		if !ok {
			return fmt.Errorf("data: redo delete of missing slot %d on page %d", pl.Slot, rec.Page)
		}
		cell[0] |= cellGhost
		return nil
	case wal.OpDataPurge:
		pl, err := decodePurgePayload(rec.Payload)
		if err != nil {
			return err
		}
		_, err = p.RemoveCell(pl.Slot)
		return err
	case wal.OpDataChainFix:
		pl, err := decodeChainFixPayload(rec.Payload)
		if err != nil {
			return err
		}
		if pl.Next {
			p.SetNext(pl.New)
		} else {
			p.SetPrev(pl.New)
		}
		return nil
	case wal.OpDataFree:
		p.Format(rec.Page, storage.PageTypeFree, 0)
		return nil
	default:
		return fmt.Errorf("data: not a data op: %s", rec.Op)
	}
}

// Undo compensates one data-manager record during rollback. Data undos are
// always page-oriented: ghosting guarantees the space and slot survive.
func (m *Manager) Undo(tx *txn.Tx, rec *wal.Record) error {
	f, err := m.pool.Fix(rec.Page)
	if err != nil {
		return err
	}
	defer m.pool.Unfix(f)
	f.Latch.Acquire(latch.X)
	defer f.Latch.Release(latch.X)

	switch rec.Op {
	case wal.OpDataInsert:
		pl, err := decodeInsertPayload(rec.Payload)
		if err != nil {
			return err
		}
		lsn := tx.LogCLR(rec.Page, wal.OpDataPurge, purgePayload{Slot: pl.Slot}.encode(), rec.PrevLSN)
		if _, err := f.Page.RemoveCell(pl.Slot); err != nil {
			return fmt.Errorf("data: undo insert: %w", err)
		}
		f.Page.SetLSN(uint64(lsn))
		m.pool.MarkDirty(f, lsn)
		return nil
	case wal.OpDataDelete:
		pl, err := decodeInsertPayload(rec.Payload)
		if err != nil {
			return err
		}
		cell, ok := f.Page.Cell(int(pl.Slot))
		if !ok {
			return fmt.Errorf("data: undo delete: slot %d gone from page %d", pl.Slot, rec.Page)
		}
		lsn := tx.LogCLR(rec.Page, wal.OpDataInsert, insertPayload{Slot: pl.Slot, Record: pl.Record}.encode(), rec.PrevLSN)
		cell[0] &^= cellGhost
		f.Page.SetLSN(uint64(lsn))
		m.pool.MarkDirty(f, lsn)
		return nil
	case wal.OpDataFormat:
		// Undoing a table-extension format: the page reverts to a free
		// shell; the FSM undo (a separate record) releases its bit.
		lsn := tx.LogCLR(rec.Page, wal.OpDataFree, nil, rec.PrevLSN)
		f.Page.Format(rec.Page, storage.PageTypeFree, 0)
		f.Page.SetLSN(uint64(lsn))
		m.pool.MarkDirty(f, lsn)
		return nil
	case wal.OpDataChainFix:
		pl, err := decodeChainFixPayload(rec.Payload)
		if err != nil {
			return err
		}
		inv := chainFixPayload{Next: pl.Next, Old: pl.New, New: pl.Old}
		lsn := tx.LogCLR(rec.Page, wal.OpDataChainFix, inv.encode(), rec.PrevLSN)
		if pl.Next {
			f.Page.SetNext(pl.Old)
		} else {
			f.Page.SetPrev(pl.Old)
		}
		f.Page.SetLSN(uint64(lsn))
		m.pool.MarkDirty(f, lsn)
		return nil
	default:
		return fmt.Errorf("data: cannot undo op %s", rec.Op)
	}
}
