package recovery

import (
	"sync"
	"sync/atomic"

	"ariesim/internal/buffer"
	"ariesim/internal/storage"
	"ariesim/internal/trace"
	"ariesim/internal/wal"
)

// Perpetual redo: the standby's apply engine. A hot standby is a restart
// whose redo pass never ends — each shipped log slice is one more batch of
// the same strictly page-oriented replay that crash restart runs, using
// the same page_LSN guard and the same page-partitioned parallelism as the
// restart redo pass. There is no analysis and no DPT on a standby: the
// batch itself tells us which pages it touches, and the page_LSN guard
// makes re-application of an already-applied record a no-op, so duplicate
// delivery is harmless.

// BatchStats tallies one ApplyRecords call.
type BatchStats struct {
	Applied int // redoable records applied (page_LSN advanced)
	Skipped int // redoable records skipped by the page_LSN guard
	Scanned int // total records scanned (including non-redoable)
}

// ApplyRecords replays recs — a contiguous, LSN-ordered log slice — onto
// pool with up to workers parallel partitions. Partitioning is by
// buffer.ShardHash(page), identical to the restart redo pass: per-page LSN
// order is the only ordering redo needs (paper §3), so workers never
// synchronize. Safe to call repeatedly with overlapping slices; the
// page_LSN guard skips anything already applied.
func ApplyRecords(pool *buffer.Pool, recs []*wal.Record, workers int, stats *trace.Stats) (BatchStats, error) {
	var bs BatchStats
	if len(recs) == 0 {
		return bs, nil
	}
	// The batch's own "DPT": first (minimum) LSN per touched page. Records
	// below this threshold don't exist in the batch, so redoPartition's
	// rec-LSN filter is a no-op gate — exactly what we want.
	pages := make(map[storage.PageID]wal.LSN)
	for _, r := range recs {
		if !r.Redoable() {
			continue
		}
		if _, ok := pages[r.Page]; !ok {
			pages[r.Page] = r.LSN
		}
	}
	if len(pages) == 0 {
		bs.Scanned = len(recs)
		return bs, nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(pages) {
		workers = len(pages)
	}
	parts := make([]map[storage.PageID]wal.LSN, workers)
	for i := range parts {
		parts[i] = make(map[storage.PageID]wal.LSN)
	}
	for pid, lsn := range pages {
		parts[int(buffer.ShardHash(pid)%uint64(workers))][pid] = lsn
	}

	var abort atomic.Bool
	results := make([]redoResult, workers)
	if workers == 1 {
		results[0] = redoPartition(pool, recs, parts[0], nil, 0, stats, &abort)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				results[w] = redoPartition(pool, recs, parts[w], nil, 0, stats, &abort)
			}(w)
		}
		wg.Wait()
	}
	var err error
	for _, res := range results {
		bs.Applied += res.applied
		bs.Skipped += res.skipped
		if res.scanned > bs.Scanned {
			bs.Scanned = res.scanned // every worker scans the whole batch
		}
		if res.err != nil && err == nil {
			err = res.err
		}
	}
	return bs, err
}
