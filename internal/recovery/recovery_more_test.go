package recovery

import (
	"fmt"
	"testing"

	"ariesim/internal/core"
	"ariesim/internal/storage"
	"ariesim/internal/wal"
)

// TestCrashMatrixWithPageDeletes extends the crash-point sweep with a
// workload whose deletes empty pages (page-deletion SMOs in the log), so
// truncation points land inside and around page-delete nested top actions.
func TestCrashMatrixWithPageDeletes(t *testing.T) {
	build := func() (*env, wal.LSN, wal.LSN) {
		e := newEnv(t, core.Config{ID: 1})
		tx := e.tm.Begin()
		e.insertRange(tx, 0, 150)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		insertCommit := tx.LastLSN()
		// Drain a large contiguous range: guarantees page deletions.
		drain := e.tm.Begin()
		e.deleteRange(drain, 20, 120)
		if err := drain.Commit(); err != nil {
			t.Fatal(err)
		}
		if e.stats.PageDeletes.Load() == 0 {
			t.Fatal("workload caused no page deletions")
		}
		return e, insertCommit, drain.LastLSN()
	}
	probe, _, _ := build()
	all := probe.log.Records(1)
	step := len(all) / 10
	for idx := step; idx < len(all); idx += step {
		idx := idx
		t.Run(fmt.Sprintf("cut-%d", idx), func(t *testing.T) {
			e, insertCommit, drainCommit := build()
			if e.disk.WriteCount() != 0 {
				t.Fatal("pages stolen; truncation unfaithful")
			}
			recs := e.log.Records(1)
			cut := recs[idx].LSN
			e.log.TruncateTo(cut)
			e.pool.Crash()
			e.restart()
			want := map[int]bool{}
			for i := 0; i < 150; i++ {
				want[i] = insertCommit <= cut
			}
			if drainCommit <= cut {
				for i := 20; i < 120; i++ {
					want[i] = false
				}
			}
			e.expectKeySet(want)
		})
	}
}

// TestMediaRecoveryOfFSMPage destroys the free-space-map page itself and
// rebuilds it from the dump + log; subsequent SMOs must still allocate
// correctly (no double allocation of live pages).
func TestMediaRecoveryOfFSMPage(t *testing.T) {
	e := newEnv(t, core.Config{ID: 1})
	tx := e.tm.Begin()
	e.insertRange(tx, 0, 150)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := e.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	img := TakeImageCopy(e.disk, e.log)
	tx2 := e.tm.Begin()
	e.insertRange(tx2, 150, 300) // more allocations after the dump
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := e.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	e.pool.Crash()
	e.disk.Corrupt(storage.FSMPageID)
	if err := RecoverPage(e.disk, e.log, img, storage.FSMPageID); err != nil {
		t.Fatal(err)
	}
	// The restored FSM must agree with the live tree: new inserts must not
	// clobber existing pages.
	tx3 := e.tm.Begin()
	e.insertRange(tx3, 300, 450)
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{}
	for i := 0; i < 450; i++ {
		want[i] = true
	}
	e.expectKeySet(want)
}

// TestRestartIdempotent runs restart twice in a row (crash immediately
// after a completed restart): the second pass must be a no-op
// semantically.
func TestRestartIdempotent(t *testing.T) {
	e := newEnv(t, core.Config{ID: 1})
	tx := e.tm.Begin()
	e.insertRange(tx, 0, 80)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	loser := e.tm.Begin()
	e.insertRange(loser, 80, 100)
	e.log.ForceAll()
	e.crash()
	e.restart()
	e.crash() // nothing new forced beyond what restart wrote + forced
	rep := e.restart()
	if rep.LosersUndone != 0 {
		t.Fatalf("second restart undid %d losers", rep.LosersUndone)
	}
	want := map[int]bool{}
	for i := 0; i < 80; i++ {
		want[i] = true
	}
	for i := 80; i < 100; i++ {
		want[i] = false
	}
	e.expectKeySet(want)
}

// TestCheckpointMidWorkloadSweep takes a fuzzy checkpoint in the middle of
// live transactions, then crashes at points after it: analysis must start
// from the checkpoint yet still recover pre-checkpoint dirty pages via the
// checkpoint's DPT.
func TestCheckpointMidWorkloadSweep(t *testing.T) {
	e := newEnv(t, core.Config{ID: 1})
	t1 := e.tm.Begin()
	e.insertRange(t1, 0, 60) // dirties pages before the checkpoint
	// Fuzzy checkpoint with t1 still in flight.
	e.tm.Checkpoint(e.pool)
	e.insertRange(t1, 60, 90)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	t2 := e.tm.Begin()
	e.insertRange(t2, 100, 120)
	e.log.ForceAll()
	master := e.log.Master() // restart itself checkpoints, moving Master
	e.crash()
	rep := e.restart()
	if rep.AnalyzedFrom != master {
		t.Fatalf("analysis from %d, checkpoint at %d", rep.AnalyzedFrom, master)
	}
	if rep.RedoFrom >= master {
		t.Fatalf("redo from %d did not reach back before the checkpoint (master %d)",
			rep.RedoFrom, master)
	}
	want := map[int]bool{}
	for i := 0; i < 90; i++ {
		want[i] = true
	}
	for i := 100; i < 120; i++ {
		want[i] = false
	}
	e.expectKeySet(want)
}

// TestLoserWithLogicalUndoAtRestartAfterStolenPages combines steals (dirty
// pages on disk ahead of some log records) with restart logical undo.
func TestLoserWithLogicalUndoAtRestartAfterStolenPages(t *testing.T) {
	e := newEnv(t, core.Config{ID: 1})
	tx := e.tm.Begin()
	e.insertRange(tx, 0, 100)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Loser deletes a key...
	loser := e.tm.Begin()
	if err := e.ix.Delete(loser, key(30)); err != nil {
		t.Fatal(err)
	}
	// ...a committed transaction splits the loser's leaf (space reshaped).
	filler := e.tm.Begin()
	for j := 0; j < 60; j++ {
		k := storage.Key{Val: append(append([]byte(nil), key(25).Val...), byte('a'+j%26), byte('a'+(j/26)%26)),
			RID: storage.RID{Page: storage.PageID(7000 + j), Slot: 1}}
		if err := e.ix.Insert(filler, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := filler.Commit(); err != nil {
		t.Fatal(err)
	}
	// Steal everything to disk, then crash with the loser in flight.
	if err := e.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	e.log.ForceAll()
	e.crash()
	rep := e.restart()
	if rep.LosersUndone != 1 {
		t.Fatalf("losers = %d", rep.LosersUndone)
	}
	if rep.RedosApplied != 0 {
		t.Fatalf("redo applied %d records onto fully flushed pages", rep.RedosApplied)
	}
	// The loser's delete was undone; all committed keys survive.
	if err := e.ix.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	dump, err := e.ix.Dump()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range dump {
		if string(k.Val) == string(key(30).Val) {
			found = true
		}
	}
	if !found {
		t.Fatal("loser's deleted key not restored")
	}
	if len(dump) != 100+60 {
		t.Fatalf("index holds %d keys, want 160", len(dump))
	}
}

// TestAnalysisSkipsEndedTransactions verifies the transaction-table
// bookkeeping: committed+ended and rolled-back+ended transactions leave no
// residue for the undo pass.
func TestAnalysisSkipsEndedTransactions(t *testing.T) {
	e := newEnv(t, core.Config{ID: 1})
	a := e.tm.Begin()
	e.insertRange(a, 0, 10)
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	b := e.tm.Begin()
	e.insertRange(b, 10, 20)
	if err := b.Rollback(); err != nil {
		t.Fatal(err)
	}
	e.log.ForceAll()
	e.crash()
	rep := e.restart()
	if rep.LosersUndone != 0 {
		t.Fatalf("ended transactions treated as losers: %d", rep.LosersUndone)
	}
	want := map[int]bool{}
	for i := 0; i < 10; i++ {
		want[i] = true
	}
	for i := 10; i < 20; i++ {
		want[i] = false
	}
	e.expectKeySet(want)
}

// TestInDoubtRollbackDecision: after restart reacquires a prepared
// transaction's locks, the coordinator's abort decision rolls it back —
// its updates vanish and its locks release.
func TestInDoubtRollbackDecision(t *testing.T) {
	e := newEnv(t, core.Config{ID: 1})
	tx := e.tm.Begin()
	e.insertRange(tx, 0, 8)
	if err := tx.Prepare(); err != nil {
		t.Fatal(err)
	}
	e.crash()
	rep := e.restart()
	if len(rep.InDoubt) != 1 {
		t.Fatalf("in-doubt = %v", rep.InDoubt)
	}
	adopted := e.tm.Lookup(tx.ID)
	if adopted == nil {
		t.Fatal("in-doubt transaction not adopted")
	}
	if err := adopted.Rollback(); err != nil {
		t.Fatal(err)
	}
	e.expectKeySet(map[int]bool{0: false, 1: false, 2: false, 3: false, 4: false, 5: false, 6: false, 7: false})
	// And the lock table is clean for new work.
	w := e.tm.Begin()
	e.insertRange(w, 0, 8)
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{}
	for i := 0; i < 8; i++ {
		want[i] = true
	}
	e.expectKeySet(want)
}

// TestInDoubtSurvivesSecondCrash: an undecided in-doubt transaction must
// remain in-doubt across ANOTHER crash/restart cycle (its prepare record
// keeps it alive until a decision is logged).
func TestInDoubtSurvivesSecondCrash(t *testing.T) {
	e := newEnv(t, core.Config{ID: 1})
	tx := e.tm.Begin()
	e.insertRange(tx, 0, 5)
	if err := tx.Prepare(); err != nil {
		t.Fatal(err)
	}
	e.crash()
	e.restart()
	e.crash()
	rep := e.restart()
	if len(rep.InDoubt) != 1 || rep.InDoubt[0] != tx.ID {
		t.Fatalf("in-doubt after second crash = %v", rep.InDoubt)
	}
	adopted := e.tm.Lookup(tx.ID)
	if err := adopted.Commit(); err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{}
	for i := 0; i < 5; i++ {
		want[i] = true
	}
	e.expectKeySet(want)
}
