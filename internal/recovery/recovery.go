// Package recovery implements ARIES restart recovery (paper §1.2) and
// page-oriented media recovery (§5) for ariesim.
//
// Restart makes three passes over the log:
//
//   - analysis: from the last checkpoint to the end of the log, rebuilding
//     the transaction table and dirty page table;
//   - redo: from the minimum recLSN, repeating history — every logged page
//     action (including CLRs, including in-flight transactions' updates)
//     whose effect is missing from its page (page_LSN < record LSN) is
//     reapplied, strictly page-oriented;
//   - undo: the losers' updates are rolled back in a single global
//     reverse-LSN sweep, writing CLRs; this global order is what
//     guarantees that an incomplete SMO is undone before any logical undo
//     needs to traverse its tree (§3 "Restart Undo Considerations").
//
// Locks are reacquired only for in-doubt (prepared) transactions, from
// the lock lists carried in their prepare records.
package recovery

import (
	"errors"
	"fmt"
	"sort"

	"ariesim/internal/buffer"
	"ariesim/internal/core"
	"ariesim/internal/data"
	"ariesim/internal/latch"
	"ariesim/internal/lock"
	"ariesim/internal/space"
	"ariesim/internal/storage"
	"ariesim/internal/trace"
	"ariesim/internal/txn"
	"ariesim/internal/wal"
)

// routeRedo dispatches one record's redo to its resource manager.
func routeRedo(p *storage.Page, rec *wal.Record) error {
	switch {
	case rec.Op >= wal.OpIdxInsertKey && rec.Op <= wal.OpIdxUnfreePage:
		return core.ApplyRedo(p, rec)
	case rec.Op == wal.OpFSMAlloc || rec.Op == wal.OpFSMFree:
		return space.ApplyRedo(p, rec)
	case rec.Op >= wal.OpDataFormat && rec.Op <= wal.OpDataFree:
		return data.ApplyRedo(p, rec)
	default:
		return fmt.Errorf("recovery: no resource manager for op %s", rec.Op)
	}
}

// Report summarizes a restart for tests and the bench harness.
type Report struct {
	AnalyzedFrom  wal.LSN
	RedoFrom      wal.LSN
	RecordsSeen   int
	RedosApplied  int
	RedosSkipped  int
	LosersUndone  int
	InDoubt       []wal.TxID
	LocksRestored int
}

// ErrRestartInterrupted reports that a restart stopped early because its
// undo-step budget ran out — the crash-during-restart case. The engine is
// NOT open: volatile state must be discarded and restart run again. ARIES
// guarantees the rerun is correct because the CLRs written so far make the
// partial undo repeatable without re-undoing compensated work.
var ErrRestartInterrupted = errors.New("recovery: restart interrupted mid-undo")

// RestartOpts tunes a restart run.
type RestartOpts struct {
	// MaxUndoSteps, when positive, crashes the restart after that many undo
	// steps (each step writes one CLR or closes one loser) by returning
	// ErrRestartInterrupted. Zero or negative means run to completion.
	// Used by the crash-point sweep to exercise repeated restarts.
	MaxUndoSteps int
}

// Restart runs the three recovery passes. The caller supplies the freshly
// constructed (post-crash) managers: an empty lock manager, a transaction
// manager with its undoer wired to the reopened index/record managers, and
// a buffer pool over the surviving disk. stats may be nil.
func Restart(log *wal.Log, pool *buffer.Pool, tm *txn.Manager, locks *lock.Manager, stats *trace.Stats) (*Report, error) {
	return RestartWith(log, pool, tm, locks, stats, RestartOpts{})
}

// RestartWith is Restart with options; see RestartOpts.
func RestartWith(log *wal.Log, pool *buffer.Pool, tm *txn.Manager, locks *lock.Manager, stats *trace.Stats, opts RestartOpts) (*Report, error) {
	rep := &Report{}
	txTable, dpt, maxTx, err := analyze(log, rep)
	if err != nil {
		return nil, err
	}
	tm.SetNextID(maxTx + 1)
	if err := redo(log, pool, dpt, rep, stats); err != nil {
		return nil, err
	}
	if err := reacquireLocks(log, tm, txTable, rep); err != nil {
		return nil, err
	}
	if err := undoLosers(tm, txTable, rep, opts.MaxUndoSteps); err != nil {
		return rep, err
	}
	// Post-restart checkpoint bounds the next restart's analysis pass.
	tm.Checkpoint(pool)
	return rep, nil
}

// analyze rebuilds the transaction table and dirty page table.
func analyze(log *wal.Log, rep *Report) (map[wal.TxID]*wal.TxTableEntry, map[storage.PageID]wal.LSN, wal.TxID, error) {
	txTable := map[wal.TxID]*wal.TxTableEntry{}
	dpt := map[storage.PageID]wal.LSN{}
	var maxTx wal.TxID

	start := wal.NilLSN + 1
	if master := log.Master(); master != wal.NilLSN {
		// Prime the tables from the checkpoint's end record.
		var primed bool
		log.Scan(master, func(r *wal.Record) bool {
			if r.Type == wal.RecEndCkpt {
				ckpt, err := wal.DecodeCheckpointData(r.Payload)
				if err == nil {
					for i := range ckpt.Txs {
						e := ckpt.Txs[i]
						txTable[e.TxID] = &e
						if e.TxID > maxTx {
							maxTx = e.TxID
						}
					}
					for _, d := range ckpt.DPT {
						dpt[d.Page] = d.RecLSN
					}
				}
				primed = true
				return false
			}
			return true
		})
		if primed {
			start = master
		}
		// Not primed: the crash tore the fuzzy checkpoint apart — the
		// begin-ckpt the master record points at is stable but its
		// end-ckpt (carrying the tx table and DPT) was lost with the
		// unforced tail. The checkpoint is unusable; analyze from the
		// start of the log as if it never happened. (SetMaster runs only
		// after the end record is forced, so this state needs the stable
		// mark itself to rewind — a torn log tail or a crash-point
		// truncation landing between the two checkpoint records.)
	}
	rep.AnalyzedFrom = start

	log.Scan(start, func(r *wal.Record) bool {
		rep.RecordsSeen++
		if r.TxID != 0 {
			if r.TxID > maxTx {
				maxTx = r.TxID
			}
			e := txTable[r.TxID]
			if e == nil {
				e = &wal.TxTableEntry{TxID: r.TxID, State: wal.TxActive}
				txTable[r.TxID] = e
			}
			e.LastLSN = r.LSN
			switch {
			case r.IsCLR():
				e.UndoNxtLSN = r.UndoNxtLSN
			case r.Type == wal.RecUpdate && r.RedoOnly:
				// Never undone; leaves the chain untouched (mirrors txn.Log).
			default:
				e.UndoNxtLSN = r.LSN
			}
			switch r.Type {
			case wal.RecCommit:
				e.State = wal.TxCommitted
			case wal.RecAbort:
				e.State = wal.TxRollingBack
			case wal.RecPrepare:
				e.State = wal.TxPrepared
			case wal.RecEnd:
				delete(txTable, r.TxID)
			}
		}
		if r.Redoable() {
			if _, ok := dpt[r.Page]; !ok {
				dpt[r.Page] = r.LSN
			}
		}
		return true
	})
	// Committed-but-not-ended transactions need only their end record.
	for id, e := range txTable {
		if e.State == wal.TxCommitted {
			delete(txTable, id)
		}
	}
	return txTable, dpt, maxTx, nil
}

// redo repeats history from the minimum recLSN.
func redo(log *wal.Log, pool *buffer.Pool, dpt map[storage.PageID]wal.LSN, rep *Report, stats *trace.Stats) error {
	if len(dpt) == 0 {
		return nil
	}
	redoFrom := wal.LSN(^uint64(0))
	for _, l := range dpt {
		if l < redoFrom {
			redoFrom = l
		}
	}
	rep.RedoFrom = redoFrom
	var redoErr error
	log.Scan(redoFrom, func(r *wal.Record) bool {
		if !r.Redoable() {
			return true
		}
		rec, ok := dpt[r.Page]
		if !ok || r.LSN < rec {
			return true
		}
		f, err := pool.Fix(r.Page)
		if err != nil {
			redoErr = err
			return false
		}
		f.Latch.Acquire(latch.X)
		if f.Page.LSN() < uint64(r.LSN) {
			if err := routeRedo(f.Page, r); err != nil {
				f.Latch.Release(latch.X)
				pool.Unfix(f)
				redoErr = fmt.Errorf("recovery: redo of %s: %w", r, err)
				return false
			}
			f.Page.SetLSN(uint64(r.LSN))
			pool.MarkDirty(f, r.LSN)
			rep.RedosApplied++
			if stats != nil {
				stats.RedoApplied.Add(1)
			}
		} else {
			rep.RedosSkipped++
			if stats != nil {
				stats.RedoSkipped.Add(1)
			}
		}
		f.Latch.Release(latch.X)
		pool.Unfix(f)
		return true
	})
	return redoErr
}

// reacquireLocks restores the locks of in-doubt transactions from their
// prepare records, so new transactions cannot see their uncommitted data.
func reacquireLocks(log *wal.Log, tm *txn.Manager, txTable map[wal.TxID]*wal.TxTableEntry, rep *Report) error {
	for _, e := range txTable {
		if e.State != wal.TxPrepared {
			continue
		}
		rep.InDoubt = append(rep.InDoubt, e.TxID)
		// Adopt the in-doubt transaction so the coordinator's eventual
		// decision (commit or rollback) can be executed against it.
		tm.AdoptLoser(*e)
		// Find the prepare record by walking the PrevLSN chain.
		lsn := e.LastLSN
		for lsn != wal.NilLSN {
			r, err := log.Read(lsn)
			if err != nil {
				return err
			}
			if r.Type == wal.RecPrepare {
				specs, err := wal.DecodeLocks(r.Payload)
				if err != nil {
					return err
				}
				for _, s := range specs {
					name := lock.Name{Space: lock.Space(s.Space), A: s.A, B: s.B}
					if err := tm.Locks().Request(lock.Owner(e.TxID), name, lock.Mode(s.Mode), lock.Commit, false); err != nil {
						return fmt.Errorf("recovery: reacquire %v for tx %d: %w", name, e.TxID, err)
					}
					rep.LocksRestored++
				}
				break
			}
			lsn = r.PrevLSN
		}
	}
	sort.Slice(rep.InDoubt, func(i, j int) bool { return rep.InDoubt[i] < rep.InDoubt[j] })
	return nil
}

// undoLosers rolls back every in-flight transaction in one global
// reverse-LSN sweep, exactly as the ARIES undo pass prescribes. A positive
// maxSteps budget interrupts the pass after that many steps (simulating a
// crash during restart); the CLRs already written keep the rerun correct.
func undoLosers(tm *txn.Manager, txTable map[wal.TxID]*wal.TxTableEntry, rep *Report, maxSteps int) error {
	losers := map[wal.TxID]*txn.Tx{}
	for _, e := range txTable {
		if e.State == wal.TxActive || e.State == wal.TxRollingBack {
			losers[e.TxID] = tm.AdoptLoser(*e)
		}
	}
	rep.LosersUndone = len(losers)
	steps := 0
	for len(losers) > 0 {
		// Pick the loser with the maximum UndoNxtLSN.
		var victim *txn.Tx
		for _, t := range losers {
			if t.UndoNxtLSN() == wal.NilLSN {
				t.EndLoser()
				delete(losers, t.ID)
				continue
			}
			if victim == nil || t.UndoNxtLSN() > victim.UndoNxtLSN() {
				victim = t
			}
		}
		if victim == nil {
			break
		}
		if maxSteps > 0 && steps >= maxSteps {
			return ErrRestartInterrupted
		}
		if err := victim.UndoStep(); err != nil {
			return err
		}
		steps++
		if victim.UndoNxtLSN() == wal.NilLSN {
			victim.EndLoser()
			delete(losers, victim.ID)
		}
	}
	return nil
}

// ImageCopy is a fuzzy archive dump: a point-in-time copy of the disk
// pages plus the stable-log position at dump time. It is taken without
// quiescing anything (the log makes the copy action-consistent).
type ImageCopy struct {
	Pages   map[storage.PageID][]byte
	DumpLSN wal.LSN
}

// TakeImageCopy snapshots the disk for media recovery. Pages whose stored
// checksum no longer matches (a torn write or bit flip that happened to be
// on disk at dump time) are left out of the image: including them would
// poison recovery, because their mixed content can carry a high page_LSN
// that makes roll-forward skip the very records needed to fix them. An
// omitted page is simply rebuilt from scratch by replaying its full log
// history.
func TakeImageCopy(disk *storage.Disk, log *wal.Log) *ImageCopy {
	pages := disk.Snapshot()
	for id, b := range pages {
		if !storage.PageFromBytes(b).VerifyChecksum() {
			delete(pages, id)
		}
	}
	return &ImageCopy{Pages: pages, DumpLSN: log.StableLSN()}
}

// RecoverPage rebuilds a single damaged page from the image copy plus one
// forward pass of the log — the paper's §5 page-oriented media recovery:
// no tree traversal, no other pages, index pages handled exactly like data
// pages. Only records on the stable log are applied: writing a page whose
// page_LSN exceeded the stable LSN would violate the WAL protocol (the
// disk may never be ahead of the log), and is also unnecessary — every
// disk version the page ever had was forced-covered before it was written.
func RecoverPage(disk *storage.Disk, log *wal.Log, img *ImageCopy, pid storage.PageID) error {
	page := storage.NewPage(disk.PageSize())
	if b, ok := img.Pages[pid]; ok {
		copy(page.Bytes(), b)
	}
	stable := log.StableLSN()
	var applyErr error
	log.Scan(wal.NilLSN+1, func(r *wal.Record) bool {
		if r.LSN > stable {
			return false
		}
		if r.Page != pid || !r.Redoable() {
			return true
		}
		if page.LSN() >= uint64(r.LSN) {
			return true
		}
		if err := routeRedo(page, r); err != nil {
			applyErr = fmt.Errorf("recovery: media redo of %s: %w", r, err)
			return false
		}
		page.SetLSN(uint64(r.LSN))
		return true
	})
	if applyErr != nil {
		return applyErr
	}
	return disk.Write(pid, page.Bytes())
}

// Boundaries returns the LSN of every log record strictly after `after`:
// the full set of crash points a sweep must exercise. Truncating the log
// at boundary L simulates a crash whose last successful force covered
// exactly the records up to and including L.
func Boundaries(log *wal.Log, after wal.LSN) []wal.LSN {
	var out []wal.LSN
	log.Scan(after+1, func(r *wal.Record) bool {
		if r.LSN > after {
			out = append(out, r.LSN)
		}
		return true
	})
	return out
}
